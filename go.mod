module navaug

go 1.24
