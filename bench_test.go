// Package navaug's top-level benchmark harness: one benchmark per
// experiment (E1..E10), i.e. per table/figure-equivalent of the paper's
// claims, plus micro-benchmarks of the two core constructions.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark executes the same code path as `navsim run
// -exp <id>` at a reduced scale (override with NAVAUG_BENCH_SCALE) and
// reports the headline measurement of the experiment as a custom metric so
// the paper-shape can be read straight from the benchmark output.
package navaug

import (
	"os"
	"strconv"
	"testing"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/dist"
	"navaug/internal/experiments"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/route"
	"navaug/internal/scenario"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

// treeDecomposer wires the Theorem 2 scheme to the centroid decomposition
// used by the micro-benchmark below.
func treeDecomposer(g *graph.Graph) (*decomp.PathDecomposition, error) {
	return decomp.TreeCentroid(g)
}

// benchScale returns the experiment size scale used by the benchmarks.
// The default keeps a full `go test -bench=.` run to a few minutes; set
// NAVAUG_BENCH_SCALE=1.0 to reproduce the EXPERIMENTS.md numbers exactly.
func benchScale() float64 {
	if v := os.Getenv("NAVAUG_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.25
}

func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:  experiments.DefaultConfig().Seed,
		Scale: benchScale(),
	}
}

func benchmarkExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runner := scenario.NewRunner(cfg)
		tables, err := runner.RunSpec(e)
		runner.Close()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no data", id)
		}
	}
}

// BenchmarkE1UniformSqrtN regenerates the E1 sweep: uniform scheme greedy
// diameters across families with their ~n^0.5 fits.
func BenchmarkE1UniformSqrtN(b *testing.B) { benchmarkExperiment(b, "E1") }

// BenchmarkE2NameIndependentLowerBound regenerates the E2 table: identity vs
// adversarial labelings of matrix schemes on the path (Theorem 1).
func BenchmarkE2NameIndependentLowerBound(b *testing.B) { benchmarkExperiment(b, "E2") }

// BenchmarkE3TreesPolylog regenerates the E3 sweep: Theorem 2 scheme vs
// uniform on trees (Corollary 1, O(log³ n)).
func BenchmarkE3TreesPolylog(b *testing.B) { benchmarkExperiment(b, "E3") }

// BenchmarkE4ATFreePolylog regenerates the E4 sweep: Theorem 2 scheme vs
// uniform on interval graphs (Corollary 1, O(log² n)).
func BenchmarkE4ATFreePolylog(b *testing.B) { benchmarkExperiment(b, "E4") }

// BenchmarkE5Theorem2GeneralGraphs regenerates the E5 sweep: the O(√n)
// fallback of Theorem 2 on grids and sparse random graphs.
func BenchmarkE5Theorem2GeneralGraphs(b *testing.B) { benchmarkExperiment(b, "E5") }

// BenchmarkE6LabelSizeLowerBound regenerates the E6 sweep: compressed-label
// schemes on the path vs the Theorem 3 lower bound.
func BenchmarkE6LabelSizeLowerBound(b *testing.B) { benchmarkExperiment(b, "E6") }

// BenchmarkE7BallSchemeCubeRoot regenerates the E7 sweep: the Theorem 4 ball
// scheme's ~n^{1/3} scaling across families.
func BenchmarkE7BallSchemeCubeRoot(b *testing.B) { benchmarkExperiment(b, "E7") }

// BenchmarkE8BarrierCrossover regenerates the E8 table: uniform vs ball
// greedy diameters and the crossover sizes.
func BenchmarkE8BarrierCrossover(b *testing.B) { benchmarkExperiment(b, "E8") }

// BenchmarkE9KleinbergBaseline regenerates the E9 table: distance-harmonic
// baselines vs the ball scheme on paths and grids.
func BenchmarkE9KleinbergBaseline(b *testing.B) { benchmarkExperiment(b, "E9") }

// BenchmarkE10Ablations regenerates the E10 ablation tables for the
// Theorem 2 and Theorem 4 constructions.
func BenchmarkE10Ablations(b *testing.B) { benchmarkExperiment(b, "E10") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the primitives that dominate experiment runtime.
// ---------------------------------------------------------------------------

// BenchmarkBallContactDraw measures a single Theorem 4 long-range contact
// draw (one bounded BFS plus a uniform pick) on a 256x256 grid.
func BenchmarkBallContactDraw(b *testing.B) {
	g := gen.Grid2D(256, 256)
	inst, err := augment.NewBallScheme().Prepare(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(rng.Intn(g.N()))
		if c := inst.Contact(u, rng); int(c) >= g.N() {
			b.Fatal("bad contact")
		}
	}
}

// BenchmarkTheorem2ContactDraw measures a single (M, L) contact draw on a
// 65535-node binary tree (ancestor enumeration plus label lookup).
func BenchmarkTheorem2ContactDraw(b *testing.B) {
	g := gen.BinaryTree(65535)
	scheme := augment.NewTheorem2Scheme(treeDecomposer)
	inst, err := scheme.Prepare(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(rng.Intn(g.N()))
		if c := inst.Contact(u, rng); int(c) >= g.N() {
			b.Fatal("bad contact")
		}
	}
}

// BenchmarkAPSP measures the parallel exact distance-matrix construction
// (the Theorem 2 default metric) on a 2304-node grid.
func BenchmarkAPSP(b *testing.B) {
	g := gen.Grid2D(48, 48)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := dist.NewAPSP(g)
		if a.Dist(0, graph.NodeID(g.N()-1)) != 94 {
			b.Fatal("bad corner distance")
		}
	}
}

// BenchmarkLandmarkOracle measures landmark-sketch construction (16
// farthest-point landmarks) on a 65536-node grid, the large-n fallback
// where the exact matrix stops being feasible.
func BenchmarkLandmarkOracle(b *testing.B) {
	g := gen.Grid2D(256, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := dist.NewLandmarkOracle(g, 16, xrand.New(1))
		if o.K() != 16 {
			b.Fatal("bad landmark count")
		}
	}
}

// BenchmarkTwoHopBuild measures construction of the exact 2-hop-cover
// oracle on a 16384-node preferential-attachment graph — the hub-dominated
// regime the labeling is designed for (E12 rides this to n = 2^20).
func BenchmarkTwoHopBuild(b *testing.B) {
	g := gen.PowerLawAttachment(16384, 2, xrand.New(4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := dist.NewTwoHop(g)
		b.ReportMetric(o.AvgLabel(), "avg-label")
	}
}

// BenchmarkTwoHopQuery measures a single exact point-to-point query (one
// merged scan over two sorted hub lists) against the oracle built above —
// the per-step cost greedy routing pays on unstructured graphs at large n.
func BenchmarkTwoHopQuery(b *testing.B) {
	g := gen.PowerLawAttachment(16384, 2, xrand.New(4))
	o := dist.NewTwoHop(g)
	rng := xrand.New(2)
	const mask = 1<<12 - 1
	us := make([]graph.NodeID, mask+1)
	vs := make([]graph.NodeID, mask+1)
	for i := range us {
		us[i] = graph.NodeID(rng.Intn(g.N()))
		vs[i] = graph.NodeID(rng.Intn(g.N()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o.Dist(us[i&mask], vs[i&mask]) < 0 {
			b.Fatal("connected graph reported unreachable pair")
		}
	}
}

// BenchmarkLandmarkOracleQuery measures a single O(k) bound query against
// the oracle built above.
func BenchmarkLandmarkOracleQuery(b *testing.B) {
	g := gen.Grid2D(256, 256)
	o := dist.NewLandmarkOracle(g, 16, xrand.New(1))
	rng := xrand.New(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := graph.NodeID(rng.Intn(g.N()))
		v := graph.NodeID(rng.Intn(g.N()))
		if o.Dist(u, v) < 0 {
			b.Fatal("grid pair reported unreachable")
		}
	}
}

// ---------------------------------------------------------------------------
// Contact micro-benchmarks: one steady-state long-range draw per iteration
// on the n=4096 mesh (64x64 grid).  These pin the Prepare-vs-Contact cost
// contract: Prepare may be heavy (it runs outside the timer), Contact must
// be O(1) amortised and allocation-free.
// ---------------------------------------------------------------------------

// sinkNode keeps the compiler from eliding the Contact calls.
var sinkNode graph.NodeID

func benchmarkContact(b *testing.B, scheme augment.Scheme, g *graph.Graph) {
	inst, err := scheme.Prepare(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	// Pre-draw the query nodes so the timer sees only Contact.
	const mask = 1<<10 - 1
	us := make([]graph.NodeID, mask+1)
	for i := range us {
		us[i] = graph.NodeID(rng.Intn(g.N()))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkNode = inst.Contact(us[i&mask], rng)
	}
}

func meshGraph() *graph.Graph { return gen.Grid2D(64, 64) }

func BenchmarkContact_uniform(b *testing.B) {
	benchmarkContact(b, augment.NewUniformScheme(), meshGraph())
}

// The harmonic and ball benchmarks prepare eagerly so the timer sees the
// steady-state O(1) draw, not the one-off lazy row builds.

func BenchmarkContact_harmonic(b *testing.B) {
	benchmarkContact(b, &augment.HarmonicScheme{Exponent: 2, EagerPrepare: true}, meshGraph())
}

func BenchmarkContact_harmonicR1(b *testing.B) {
	benchmarkContact(b, &augment.HarmonicScheme{Exponent: 1, EagerPrepare: true}, meshGraph())
}

func BenchmarkContact_theorem2(b *testing.B) {
	benchmarkContact(b, augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.BFSLayers(g, 0)
	}), meshGraph())
}

func BenchmarkContact_ball(b *testing.B) {
	benchmarkContact(b, &augment.BallScheme{EagerPrepare: true}, meshGraph())
}

func BenchmarkContact_matrix(b *testing.B) {
	g := meshGraph()
	labels, err := augment.NewBlockLabels(g.N(), 512)
	if err != nil {
		b.Fatal(err)
	}
	benchmarkContact(b, &augment.MatrixLabelingScheme{
		Matrix: augment.NewHarmonicMatrix(512),
		Labels: labels,
	}, g)
}

// BenchmarkRoutingTrial_harmonic measures one complete greedy routing trial
// (extremal pair of the n=4096 mesh) with a reused route.Scratch: the
// steady-state unit of Monte Carlo work, which must not allocate at all.
func BenchmarkRoutingTrial_harmonic(b *testing.B) {
	g := meshGraph()
	inst, err := (&augment.HarmonicScheme{Exponent: 2, EagerPrepare: true}).Prepare(g)
	if err != nil {
		b.Fatal(err)
	}
	s, t, _ := dist.ExtremalPair(g)
	// Hold the field as a dist.Source so interface boxing happens once, as
	// the engine does per pair, keeping the trial itself allocation-free.
	var d dist.Source = dist.NewField(g.BFS(t), t)
	scratch := route.NewScratch(g.N())
	rng := xrand.New(3)
	opts := route.Options{Scratch: scratch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := route.Greedy(g, inst, s, t, d, rng, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Reached {
			b.Fatal("trial hit the step cap")
		}
	}
}

// BenchmarkRoutingTrial_analyticSource routes the same trial shape through
// an analytic dist.Source (closed-form torus metric, O(1) memory per
// query) instead of a BFS field — the large-n hot path of E11.  Compare
// with BenchmarkRoutingTrial_fieldSource to see the interface-call
// overhead the O(1)-memory path trades for never materialising a field.
func BenchmarkRoutingTrial_analyticSource(b *testing.B) {
	g := gen.Torus2D(64, 64)
	metric := gen.Torus2DMetric(64, 64)
	inst, err := augment.NewAnalyticBall(metric).Prepare(g)
	if err != nil {
		b.Fatal(err)
	}
	s, t, _ := dist.ExtremalPair(g)
	scratch := route.NewScratch(g.N())
	rng := xrand.New(3)
	opts := route.Options{Scratch: scratch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := route.Greedy(g, inst, s, t, metric, rng, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Reached {
			b.Fatal("trial hit the step cap")
		}
	}
}

// BenchmarkRoutingTrial_fieldSource is the same trial against the wrapped
// BFS field, isolating the Source-vs-slice cost on identical routes.
func BenchmarkRoutingTrial_fieldSource(b *testing.B) {
	g := gen.Torus2D(64, 64)
	metric := gen.Torus2DMetric(64, 64)
	inst, err := augment.NewAnalyticBall(metric).Prepare(g)
	if err != nil {
		b.Fatal(err)
	}
	s, t, _ := dist.ExtremalPair(g)
	// Hold the field as a dist.Source so interface boxing happens once, as
	// the engine does per pair, keeping the trial itself allocation-free.
	var d dist.Source = dist.NewField(g.BFS(t), t)
	scratch := route.NewScratch(g.N())
	rng := xrand.New(3)
	opts := route.Options{Scratch: scratch}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := route.Greedy(g, inst, s, t, d, rng, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Reached {
			b.Fatal("trial hit the step cap")
		}
	}
}

// benchmarkEstimateEndToEnd measures a whole greedy-diameter estimation of
// the harmonic scheme on the n=4096 mesh at the sim default scale (16 pairs
// x 8 trials) — the macro path the Contact micro-benchmarks feed: Prepare
// once, then 128 routed walks.
func benchmarkEstimateEndToEnd(b *testing.B, scheme augment.Scheme) {
	g := meshGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := sim.EstimateGreedyDiameter(g, scheme,
			sim.Config{Seed: 1, IncludeExtremalPair: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(est.GreedyDiameter, "greedy-diam")
	}
}

func BenchmarkEstimate_EndToEnd(b *testing.B) {
	benchmarkEstimateEndToEnd(b, augment.NewHarmonicScheme(2))
}

// BenchmarkEstimate_EndToEnd_NoPrecompute pins the cost of the
// bounded-memory fallback path (one BFS + CDF scan per draw), which is what
// harmonic estimation degrades to above the precompute threshold — and,
// power-table aside, what every draw cost before the sampler subsystem.
func BenchmarkEstimate_EndToEnd_NoPrecompute(b *testing.B) {
	benchmarkEstimateEndToEnd(b, &augment.HarmonicScheme{Exponent: 2, MaxPrecomputeNodes: -1})
}

// BenchmarkGreedyDiameterEstimateBallGrid measures a full greedy-diameter
// estimation (the unit of work every experiment repeats) for the ball scheme
// on a 128x128 grid.
func BenchmarkGreedyDiameterEstimateBallGrid(b *testing.B) {
	g := gen.Grid2D(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := sim.EstimateGreedyDiameter(g, augment.NewBallScheme(),
			sim.Config{Pairs: 8, Trials: 4, Seed: uint64(i) + 1, IncludeExtremalPair: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(est.GreedyDiameter, "greedy-diam")
	}
}
