#!/usr/bin/env bash
# peak-rss.sh <ceiling-kb> <output-file> <command...>
#
# Runs the command with stdout redirected to the output file while polling
# its VmHWM (peak resident set), then fails if the command failed or its
# peak RSS reached the ceiling.  Shared by the bounded-RSS million-node
# experiment smokes (E11, E12) so the polling harness cannot drift between
# jobs.
set -u
ceiling=$1
out=$2
shift 2
"$@" > "$out" &
PID=$!
peak=0
while kill -0 "$PID" 2>/dev/null; do
  cur=$(awk '/VmHWM/{print $2}' "/proc/$PID/status" 2>/dev/null || echo 0)
  [ -n "$cur" ] && [ "$cur" -gt "$peak" ] && peak=$cur
  sleep 0.2
done
wait "$PID"
status=$?
echo "peak RSS: ${peak} kB (ceiling ${ceiling} kB)"
if [ "$status" -ne 0 ]; then
  echo "command failed with status $status" >&2
  exit "$status"
fi
[ "$peak" -lt "$ceiling" ]
