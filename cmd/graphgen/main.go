// Command graphgen generates graphs from the built-in families and writes
// them in the library's text edge-list format (or Graphviz DOT), printing a
// short structural summary to stderr.
//
// Usage:
//
//	graphgen -family grid -n 1024 [-seed 1] [-dot] [-o out.graph]
//	graphgen -families
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/xrand"
)

func main() {
	family := flag.String("family", "grid", "graph family ("+strings.Join(core.GraphFamilies(), ", ")+")")
	n := flag.Int("n", 1024, "approximate number of nodes")
	seed := flag.Uint64("seed", 1, "random seed for random families")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of the edge-list format")
	out := flag.String("o", "", "output file (default stdout)")
	listFamilies := flag.Bool("families", false, "list the known graph families and exit")
	flag.Parse()

	if *listFamilies {
		fmt.Println(strings.Join(core.GraphFamilies(), "\n"))
		return
	}

	g, err := core.GraphByName(*family, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *dot {
		if _, err := io.WriteString(w, g.DOT()); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
	} else {
		if _, err := g.WriteTo(w); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
	}

	diamEst := dist.EstimateDiameter(g, 4, xrand.New(*seed))
	fmt.Fprintf(os.Stderr, "generated %v: max degree %d, avg degree %.2f, diameter >= %d\n",
		g, g.MaxDegree(), g.AverageDegree(), diamEst)
}
