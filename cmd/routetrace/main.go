// Command routetrace runs a single greedy routing trial on an augmented
// graph and prints the hop-by-hop trace, which is handy for building
// intuition about how each scheme navigates.
//
// Usage:
//
//	routetrace -family grid -n 1024 -scheme ball -s 0 -t 1023 [-seed 7] [-lookahead]
//
// A negative -s or -t picks the endpoints of an (approximately) diametral
// pair automatically.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/route"
	"navaug/internal/xrand"
)

func main() {
	family := flag.String("family", "grid", "graph family ("+strings.Join(core.GraphFamilies(), ", ")+")")
	n := flag.Int("n", 1024, "approximate number of nodes")
	schemeName := flag.String("scheme", "ball", "augmentation scheme ("+strings.Join(core.SchemeNames(), ", ")+")")
	src := flag.Int("s", -1, "source node (negative = auto)")
	dst := flag.Int("t", -1, "target node (negative = auto)")
	seed := flag.Uint64("seed", 7, "random seed")
	lookahead := flag.Bool("lookahead", false, "use neighbour-of-neighbour lookahead routing")
	flag.Parse()

	if err := run(*family, *n, *schemeName, *src, *dst, *seed, *lookahead); err != nil {
		fmt.Fprintf(os.Stderr, "routetrace: %v\n", err)
		os.Exit(1)
	}
}

func run(family string, n int, schemeName string, src, dst int, seed uint64, lookahead bool) error {
	g, err := core.GraphByName(family, n, seed)
	if err != nil {
		return err
	}
	scheme, err := core.SchemeByName(schemeName)
	if err != nil {
		return err
	}
	inst, err := scheme.Prepare(g)
	if err != nil {
		return err
	}

	s, t := graph.NodeID(src), graph.NodeID(dst)
	if src < 0 || dst < 0 {
		s, t, _ = dist.ExtremalPair(g)
	}
	distToTarget := g.BFS(t)
	if distToTarget[s] == graph.Unreachable {
		return fmt.Errorf("target %d unreachable from source %d", t, s)
	}
	field := dist.NewField(distToTarget, t)
	rng := xrand.New(seed)
	var res route.Result
	if lookahead {
		res, err = route.GreedyWithLookahead(g, inst, s, t, field, rng, route.Options{Trace: true})
	} else {
		res, err = route.Greedy(g, inst, s, t, field, rng, route.Options{Trace: true})
	}
	if err != nil {
		return err
	}

	fmt.Printf("graph:   %v\n", g)
	fmt.Printf("scheme:  %s\n", scheme.Name())
	fmt.Printf("route:   %d -> %d (graph distance %d)\n", s, t, distToTarget[s])
	fmt.Printf("steps:   %d (%d via long-range links), reached=%v\n", res.Steps, res.LongLinksUsed, res.Reached)
	fmt.Println("trace (node, distance to target):")
	for i, v := range res.Path {
		marker := ""
		if i > 0 {
			prev := res.Path[i-1]
			if !g.HasEdge(prev, v) {
				marker = "  <- long-range link"
			}
		}
		fmt.Printf("  %4d: node %-8d dist %-6d%s\n", i, v, distToTarget[v], marker)
	}
	return nil
}
