package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"navaug/internal/fault"
	"navaug/internal/serve"
	"navaug/internal/snapshot"
)

// chaosRecord is the bench-file record a chaos run appends: the degraded-
// mode throughput measurement plus the recovery verdict.
type chaosRecord struct {
	Snapshot    string   `json:"snapshot"`
	Faults      string   `json:"faults"`
	Corrupt     string   `json:"corrupt,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
	Mode        string   `json:"mode"`
	Conns       int      `json:"conns"`
	DurationS   float64  `json:"duration_s"`

	Load serve.LoadResult `json:"load"`

	Panics    int64 `json:"panics"`
	Repairs   int64 `json:"repairs"`
	Shed      int64 `json:"shed"`
	Approx    int64 `json:"approx_answers"`
	Recovered bool  `json:"recovered"`
}

// runChaos spins up an in-process server over the snapshot, injects the
// fault schedule, measures degraded-mode throughput with the loadgen
// client, then verifies recovery: after the faults clear, a fixed probe
// set must answer byte-identically to its pre-fault baseline.
func runChaos(c *command, args []string) error {
	fs := newFlagSet(c)
	snapPath := fs.String("snapshot", "", "path to the .navsnap file to torture (required)")
	faults := fs.String("faults", "stall:shard=0,delay=50ms,dur=3s;storm:p=0.1,delay=3s,dur=3s",
		"fault-injection spec active during the measured window")
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the fault-injection draw stream")
	corrupt := fs.String("corrupt", "", "additionally corrupt this snapshot section before the tolerant load (metric, twohop or scheme)")
	mode := fs.String("mode", "route", "loadgen query mix: dist or route")
	duration := fs.Duration("duration", 5*time.Second, "measured chaos window")
	conns := fs.Int("conns", 16, "concurrent loadgen connections")
	retries := fs.Int("retries", 0, "loadgen retry budget per request")
	workers := fs.Int("workers", 2, "server query pool size")
	queue := fs.Int("queue", 4, "server task queue bound")
	timeout := fs.Duration("timeout", 500*time.Millisecond, "server per-request timeout")
	landmarks := fs.Int("landmarks", 0, "landmark count for the approximate tier (0 = default)")
	seed := fs.Uint64("seed", 1, "loadgen sampling seed")
	out := fs.String("out", "", "append the chaos record to this JSON bench file (e.g. BENCH_serve.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapPath == "" {
		fs.Usage()
		return fmt.Errorf("chaos requires -snapshot")
	}
	inj, err := fault.Parse(*faults, *faultSeed)
	if err != nil {
		return err
	}

	b, err := os.ReadFile(*snapPath)
	if err != nil {
		return err
	}
	if *corrupt != "" {
		if err := snapshot.CorruptSection(b, *corrupt); err != nil {
			return err
		}
	}
	snap, err := snapshot.ReadBytesTolerant(b)
	if err != nil {
		return err
	}
	if len(snap.Quarantined) > 0 {
		fmt.Fprintf(os.Stderr, "navsim chaos: quarantined sections %v\n", snap.Quarantined)
	}
	srv, err := serve.New(snap, serve.Options{
		Workers: *workers, QueueDepth: *queue, RequestTimeout: *timeout,
		Landmarks: *landmarks, Faults: inj,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	probes := chaosProbeSet(base, snap)
	baseline, err := chaosProbe(probes)
	if err != nil {
		return fmt.Errorf("pre-fault baseline: %w", err)
	}

	fmt.Fprintf(os.Stderr, "navsim chaos: faults ACTIVE: %s\n", *faults)
	inj.Activate()
	res, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		BaseURL: base, Mode: *mode, Duration: *duration,
		Warmup: 0, Conns: *conns, Seed: *seed, Retries: *retries,
	})
	if err != nil {
		return err
	}
	inj.Deactivate()

	// Recovery: poll until the server reports healthy (repairs restored,
	// ladder back on its exact rung), then the probe set must be
	// byte-identical to the baseline.  Quarantined-at-load sections keep
	// the server degraded forever; recovery then only means stable answers.
	recovered := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		chaosProbe(probes) // feed the pool so half-open breakers get probe tasks
		st := chaosStats(base)
		if !st.Degraded || len(snap.Quarantined) > 0 && st.BreakersOpen == 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	after, err := chaosProbe(probes)
	if err == nil && len(snap.Quarantined) == 0 {
		recovered = true
		for i := range baseline {
			if string(after[i]) != string(baseline[i]) {
				recovered = false
				fmt.Fprintf(os.Stderr, "navsim chaos: probe %d diverged after faults cleared:\n  before: %s\n  after:  %s\n",
					i, baseline[i], after[i])
			}
		}
	}

	st := chaosStats(base)
	rec := chaosRecord{
		Snapshot: *snapPath, Faults: *faults, Corrupt: *corrupt,
		Quarantined: snap.Quarantined,
		Mode:        *mode, Conns: *conns, DurationS: duration.Seconds(),
		Load:   *res,
		Panics: st.Panics, Repairs: st.Repairs, Shed: st.Shed, Approx: st.ApproxAnswers,
		Recovered: recovered,
	}
	fmt.Printf("chaos window: %s under %q\n", *duration, *faults)
	fmt.Printf("goodput:      %.0f ok-queries/s (%d ok, %d shed, %d timeouts, %d 5xx)\n",
		res.GoodputPerS, res.OK, res.Shed429, res.Timeouts, res.Errors5xx)
	fmt.Printf("latency ms:   p50 %.3f  p99 %.3f  max %.3f (ok responses only)\n",
		res.Latency.P50, res.Latency.P99, res.Latency.Max)
	fmt.Printf("server:       %d panics recovered, %d repairs, %d shed, %d approx answers\n",
		st.Panics, st.Repairs, st.Shed, st.ApproxAnswers)
	if len(snap.Quarantined) > 0 {
		fmt.Printf("recovered:    n/a (sections %v quarantined at load; server stays degraded)\n", snap.Quarantined)
	} else {
		fmt.Printf("recovered:    %v (post-fault probes byte-identical to baseline)\n", recovered)
		if !recovered {
			return fmt.Errorf("chaos: server did not recover byte-identical answers")
		}
	}
	if res.OK == 0 {
		return fmt.Errorf("chaos: zero goodput during the fault window")
	}
	if *out != "" {
		if err := appendBenchRecord(*out, "chaos", rec); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "navsim chaos: appended record to %s\n", *out)
	}
	return nil
}

// chaosProbeSet picks a fixed, size-aware set of query URLs used for the
// byte-identity check around the fault window.
func chaosProbeSet(base string, snap *snapshot.Snapshot) []string {
	n := snap.Graph.N()
	pair := func(a, b int) (int, int) { return a % n, b % n }
	u1, v1 := pair(3, 2*n/3)
	u2, v2 := pair(n/7, n-1)
	urls := []string{
		fmt.Sprintf("%s/v1/dist?u=%d&v=%d", base, u1, v1),
		fmt.Sprintf("%s/v1/dist?u=%d&v=%d", base, u2, v2),
	}
	if len(snap.Schemes) > 0 {
		urls = append(urls,
			fmt.Sprintf("%s/v1/route?s=%d&t=%d", base, u1, v2),
			fmt.Sprintf("%s/v1/route?s=%d&t=%d", base, v1, u2),
		)
	}
	return urls
}

func chaosProbe(urls []string) ([][]byte, error) {
	out := make([][]byte, len(urls))
	for i, u := range urls {
		resp, err := http.Get(u)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("probe %s: HTTP %d: %s", u, resp.StatusCode, body)
		}
		out[i] = body
	}
	return out, nil
}

// chaosStats reads the robustness slice of /v1/stats; errors degrade to a
// zero value since the caller only uses it for reporting and polling.
func chaosStats(base string) (st struct {
	Shed          int64    `json:"shed"`
	Panics        int64    `json:"panics"`
	Repairs       int64    `json:"repairs"`
	ApproxAnswers int64    `json:"approx_answers"`
	BreakersOpen  int      `json:"breakers_open"`
	Degraded      bool     `json:"degraded"`
	Quarantined   []string `json:"quarantined"`
}) {
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		return st
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(&st)
	return st
}
