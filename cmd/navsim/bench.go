package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// appendBenchRecord merges one record into the named array of a JSON bench
// file (creating the file as `{key: [record]}` when absent), so repeated
// snapshot/loadgen runs accumulate into a single BENCH_serve.json instead
// of clobbering each other.
func appendBenchRecord(path, key string, record any) error {
	doc := map[string]json.RawMessage{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &doc); err != nil {
			return fmt.Errorf("bench file %s is not a JSON object: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	var arr []json.RawMessage
	if raw, ok := doc[key]; ok {
		if err := json.Unmarshal(raw, &arr); err != nil {
			return fmt.Errorf("bench file %s key %q is not an array: %w", path, key, err)
		}
	}
	rec, err := json.Marshal(record)
	if err != nil {
		return err
	}
	arr = append(arr, rec)
	merged, err := json.Marshal(arr)
	if err != nil {
		return err
	}
	doc[key] = merged
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
