// Command navsim runs the paper-reproduction experiments (E1..E13,
// including the E11 large-n mode that sweeps million-node tori and
// hypercubes through analytic O(1) distance oracles, the E12
// universality sweep that reaches million-node unstructured graphs through
// the exact 2-hop-cover oracle, and the E13 churn experiment that routes
// on dynamic graphs maintained by incremental 2-hop label repair under a
// per-batch budget), ad-hoc greedy-diameter estimations, and
// the routing-as-a-service mode: `snapshot` freezes built oracles and
// augmentation tables into a .navsnap file, `serve` answers distance and
// routing queries over HTTP from such a file with no rebuild, and
// `loadgen` benchmarks a running server.
//
// Run `navsim <command> -h` for any command's flags; `navsim help` lists
// the commands.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/exact"
	"navaug/internal/experiments"
	"navaug/internal/scenario"
	"navaug/internal/sim"
)

// command is one navsim subcommand.  Every command registers its flags on
// the FlagSet newFlagSet builds from this struct, so registration, -h
// output and the global help all render from the same table.
type command struct {
	name     string
	synopsis string // one-line flag sketch for the command list
	summary  string // one-sentence description
	run      func(c *command, args []string) error
}

var commands = []*command{
	{
		name:     "list",
		synopsis: "[-format text|md]",
		summary:  "List the available experiments with their claims (md generates EXPERIMENTS.md).",
		run:      runList,
	},
	{
		name: "run",
		synopsis: "[-exp E1,E7] [-scale 1.0] [-seed N] [-format text|csv|md|json] [-precision 0.1]\n" +
			"               [-workers N] [-parallel N] [-pairs N] [-trials N] [-max-trials N]\n" +
			"               [-oracle auto|analytic|twohop|twohop-packed|field] [-no-analytic] [-quiet]",
		summary: "Run the selected experiments (default: all) and print the report.",
		run:     runExperiments,
	},
	{
		name: "estimate",
		synopsis: "-family grid -n 4096 -scheme ball [-pairs 12] [-trials 6] [-precision 0.1]\n" +
			"               [-seed N] [-workers N] [-oracle auto|analytic|twohop|twohop-packed|field]",
		summary: "Estimate the greedy diameter of one (family, scheme) combination.",
		run:     runEstimate,
	},
	{
		name:     "exact",
		synopsis: "-family path -n 400 -scheme uniform [-seed N]",
		summary:  "Compute the exact greedy diameter (no sampling) for small instances.",
		run:      runExact,
	},
	{
		name: "snapshot",
		synopsis: "-family powerlaw-tree -n 1048576 -o graph.navsnap [-seed N] [-scheme ball,uniform]\n" +
			"               [-draws K] [-oracle auto|analytic|twohop|twohop-packed|field] [-bench-out BENCH_serve.json]",
		summary: "Build a graph, its distance oracle and frozen augmentations, and write a .navsnap.",
		run:     runSnapshot,
	},
	{
		name: "serve",
		synopsis: "-snapshot graph.navsnap [-addr 127.0.0.1:8080] [-workers N] [-queue N] [-timeout 2s]\n" +
			"               [-max-batch N] [-landmarks N] [-faults SPEC] [-drain 1s]",
		summary: "Serve distance and greedy-routing queries over HTTP from a snapshot (no rebuild).",
		run:     runServe,
	},
	{
		name: "loadgen",
		synopsis: "[-url http://127.0.0.1:8080] [-mode dist|route] [-rate R] [-duration 5s] [-conns N]\n" +
			"               [-batch N] [-keys uniform|zipf] [-zipf 1.1] [-seed N] [-retries N] [-out BENCH_serve.json]",
		summary: "Benchmark a running navsim serve instance and record throughput and latency.",
		run:     runLoadgen,
	},
	{
		name: "chaos",
		synopsis: "-snapshot graph.navsnap [-faults SPEC] [-corrupt twohop] [-duration 5s] [-conns N]\n" +
			"               [-mode dist|route] [-retries N] [-workers N] [-queue N] [-out BENCH_serve.json]",
		summary: "Torture a snapshot in-process under injected faults and verify goodput, shedding and byte-identical recovery.",
		run:     runChaos,
	},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "-h" || name == "--help" || name == "help" {
		usage()
		return
	}
	for _, c := range commands {
		if c.name != name {
			continue
		}
		if err := c.run(c, os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "navsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "navsim: unknown command %q\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: navsim <command> [flags]")
	fmt.Fprintln(os.Stderr)
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  navsim %s %s\n      %s\n", c.name, c.synopsis, c.summary)
	}
	fmt.Fprintln(os.Stderr, "\nRun 'navsim <command> -h' for a command's full flag reference.")
}

// newFlagSet builds the command's FlagSet with the unified -h output:
// usage line, summary, then the registered flags.
func newFlagSet(c *command) *flag.FlagSet {
	fs := flag.NewFlagSet("navsim "+c.name, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: navsim %s %s\n\n%s\n\nflags:\n", c.name, c.synopsis, c.summary)
		fs.PrintDefaults()
	}
	return fs
}

func runList(c *command, args []string) error {
	fs := newFlagSet(c)
	format := fs.String("format", "text", "output format: text or md")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "text":
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
	case "md", "markdown":
		fmt.Println("# Experiments")
		fmt.Println()
		fmt.Println("One scenario per claim of the paper, generated from the spec registry")
		fmt.Println("(`navsim list -format md`).  Run any of them with")
		fmt.Println("`navsim run -exp <id>`; add `-precision 0.1` for adaptive sampling and")
		fmt.Println("`-format json` for machine-readable output with a run manifest.")
		for _, e := range experiments.All() {
			fmt.Printf("\n## %s — %s\n\n**Claim.** %s\n", e.ID, e.Title, e.Claim)
		}
	default:
		return fmt.Errorf("unknown list format %q (known: text, md)", *format)
	}
	return nil
}

func runExperiments(c *command, args []string) error {
	fs := newFlagSet(c)
	expList := fs.String("exp", "", "comma-separated experiment ids (default: all)")
	scale := fs.Float64("scale", 1.0, "size scale factor (1.0 = EXPERIMENTS.md sizes)")
	seed := fs.Uint64("seed", experiments.DefaultConfig().Seed, "random seed")
	format := fs.String("format", "text", "output format: text, csv, md or json")
	workers := fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS; never affects results)")
	parallel := fs.Int("parallel", 0, "concurrent scenario cells (0 = GOMAXPROCS; never affects results)")
	pairs := fs.Int("pairs", 0, "override source/target pairs per estimate")
	trials := fs.Int("trials", 0, "override augmentation redraws per pair")
	precision := fs.Float64("precision", 0, "adaptive mode: target 95% CI half-width relative to the mean (0 = fixed budgets)")
	maxTrials := fs.Int("max-trials", 0, "adaptive mode: per-pair trial cap (0 = 8x the base budget)")
	oracle := fs.String("oracle", "auto", "distance-source policy: auto, analytic, twohop, twohop-packed or field (identical results; cost knob)")
	noAnalytic := fs.Bool("no-analytic", false, "force BFS-field-backed distances (legacy spelling of -oracle field)")
	quiet := fs.Bool("quiet", false, "suppress the per-cell progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := dist.ParseSourcePolicy(*oracle)
	if err != nil {
		return err
	}
	// Reject bad formats before spending minutes running the suite.
	switch strings.ToLower(*format) {
	case "", "text", "txt", "csv", "markdown", "md", "json":
	default:
		return fmt.Errorf("unknown format %q (known: text, csv, md, json)", *format)
	}
	cfg := scenario.Config{
		Seed:       *seed,
		Scale:      *scale,
		Workers:    *workers,
		Parallel:   *parallel,
		Pairs:      *pairs,
		Trials:     *trials,
		Precision:  *precision,
		MaxTrials:  *maxTrials,
		Oracle:     policy,
		NoAnalytic: *noAnalytic,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	var ids []string
	if *expList != "" {
		ids = strings.Split(*expList, ",")
	}
	rep, err := core.RunSuite(ids, cfg)
	if rep != nil {
		// Render even when an experiment failed: the report carries the
		// completed experiments plus per-experiment error fields (the table
		// formats stop at the first failed experiment on their own).
		if renderErr := rep.Render(os.Stdout, *format); err == nil {
			err = renderErr
		}
	}
	return err
}

func runEstimate(c *command, args []string) error {
	fs := newFlagSet(c)
	family := fs.String("family", "grid", "graph family ("+strings.Join(core.GraphFamilies(), ", ")+")")
	n := fs.Int("n", 4096, "approximate graph size")
	schemeName := fs.String("scheme", "ball", "augmentation scheme ("+strings.Join(core.SchemeNames(), ", ")+")")
	pairs := fs.Int("pairs", 12, "source/target pairs")
	trials := fs.Int("trials", 6, "augmentation redraws per pair")
	precision := fs.Float64("precision", 0, "adaptive mode: target 95% CI half-width relative to the mean (0 = fixed budget)")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	oracle := fs.String("oracle", "auto", "distance-source policy: auto, analytic, twohop, twohop-packed or field (identical results; cost knob)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := dist.ParseSourcePolicy(*oracle)
	if err != nil {
		return err
	}
	g, err := core.GraphByName(*family, *n, *seed)
	if err != nil {
		return err
	}
	scheme, err := core.SchemeByName(*schemeName)
	if err != nil {
		return err
	}
	ag, err := core.Augment(g, scheme)
	if err != nil {
		return err
	}
	est, err := ag.EstimateGreedyDiameter(sim.Config{
		Pairs:               *pairs,
		Trials:              *trials,
		Seed:                *seed,
		Workers:             *workers,
		TargetCI:            *precision,
		IncludeExtremalPair: true,
		Policy:              policy,
	})
	if err != nil {
		return err
	}
	fmt.Printf("graph:            %v\n", g)
	fmt.Printf("scheme:           %s\n", est.Scheme)
	fmt.Printf("greedy diameter:  %.2f (max over %d sampled pairs of per-pair mean)\n", est.GreedyDiameter, len(est.PairStats))
	fmt.Printf("mean steps:       %.2f ± %.2f (95%% CI over pair means)\n", est.MeanSteps, est.CI95)
	fmt.Printf("mean long links:  %.2f per route\n", est.MeanLongLinks)
	if est.Adaptive {
		fmt.Printf("samples:          %d routed trials (adaptive, per-pair CI target %.3g)\n", est.Samples, est.TargetCI)
	} else {
		fmt.Printf("samples:          %d routed trials\n", est.Samples)
	}
	return nil
}

func runExact(c *command, args []string) error {
	fs := newFlagSet(c)
	family := fs.String("family", "path", "graph family ("+strings.Join(core.GraphFamilies(), ", ")+")")
	n := fs.Int("n", 400, "approximate graph size (exact computation is cubic; keep n small)")
	schemeName := fs.String("scheme", "uniform", "augmentation scheme ("+strings.Join(core.SchemeNames(), ", ")+")")
	seed := fs.Uint64("seed", 1, "random seed for graph generation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := core.GraphByName(*family, *n, *seed)
	if err != nil {
		return err
	}
	scheme, err := core.SchemeByName(*schemeName)
	if err != nil {
		return err
	}
	res, err := exact.SchemeGreedyDiameter(g, scheme)
	if err != nil {
		return err
	}
	fmt.Printf("graph:                 %v\n", g)
	fmt.Printf("scheme:                %s\n", scheme.Name())
	fmt.Printf("exact greedy diameter: %.4f (pair %d -> %d)\n", res.GreedyDiameter, res.ArgSource, res.ArgTarget)
	fmt.Printf("mean pair expectation: %.4f\n", res.MeanExpectation)
	return nil
}
