// Command navsim runs the paper-reproduction experiments (E1..E12,
// including the E11 large-n mode that sweeps million-node tori and
// hypercubes through analytic O(1) distance oracles, and the E12
// universality sweep that reaches million-node unstructured graphs through
// the exact 2-hop-cover oracle) and ad-hoc greedy-diameter estimations
// through the scenario engine.
//
// Usage:
//
//	navsim list [-format text|md]
//	    List the available experiments with their claims; the md format is
//	    what EXPERIMENTS.md is generated from.
//
//	navsim run [-exp E1,E7] [-scale 1.0] [-seed N] [-format text|csv|md|json]
//	           [-precision 0.1] [-workers N] [-parallel N] [-oracle auto|analytic|twohop|field]
//	           [-no-analytic] [-quiet]
//	    Run the selected experiments (default: all) on one shared scenario
//	    runner and print the report.  -precision enables streaming adaptive
//	    estimation; -workers/-parallel only change wall-clock, never results.
//	    -oracle picks the distance-source tier greedy routing steers by
//	    (auto: analytic metric, else a 2-hop-cover oracle on large graphs
//	    within a label budget, else BFS fields); every tier is exact, so the
//	    report is byte-identical under every policy — only build time, query
//	    time and memory change.  -no-analytic is the legacy spelling of
//	    -oracle field.  Progress goes to stderr, the report to stdout.
//
//	navsim estimate -family grid -n 4096 -scheme ball [-pairs 12] [-trials 6]
//	           [-precision 0.1] [-seed N]
//	    Estimate the greedy diameter of one (family, scheme) combination.
//
//	navsim exact -family path -n 400 -scheme uniform [-seed N]
//	    Compute the exact greedy diameter (no sampling) for small instances.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/exact"
	"navaug/internal/experiments"
	"navaug/internal/scenario"
	"navaug/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = runList(os.Args[2:])
	case "run":
		err = runExperiments(os.Args[2:])
	case "estimate":
		err = runEstimate(os.Args[2:])
	case "exact":
		err = runExact(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "navsim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "navsim: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  navsim list [-format text|md]
  navsim run [-exp E1,E7] [-scale 1.0] [-seed N] [-format text|csv|md|json] [-precision 0.1]
             [-workers N] [-parallel N] [-pairs N] [-trials N] [-max-trials N]
             [-oracle auto|analytic|twohop|field] [-no-analytic] [-quiet]
  navsim estimate -family grid -n 4096 -scheme ball [-pairs 12] [-trials 6] [-precision 0.1] [-seed N]
             [-workers N] [-oracle auto|analytic|twohop|field]
  navsim exact -family path -n 400 -scheme uniform [-seed N]`)
}

func runList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	format := fs.String("format", "text", "output format: text or md")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "text":
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
	case "md", "markdown":
		fmt.Println("# Experiments")
		fmt.Println()
		fmt.Println("One scenario per claim of the paper, generated from the spec registry")
		fmt.Println("(`navsim list -format md`).  Run any of them with")
		fmt.Println("`navsim run -exp <id>`; add `-precision 0.1` for adaptive sampling and")
		fmt.Println("`-format json` for machine-readable output with a run manifest.")
		for _, e := range experiments.All() {
			fmt.Printf("\n## %s — %s\n\n**Claim.** %s\n", e.ID, e.Title, e.Claim)
		}
	default:
		return fmt.Errorf("unknown list format %q (known: text, md)", *format)
	}
	return nil
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	expList := fs.String("exp", "", "comma-separated experiment ids (default: all)")
	scale := fs.Float64("scale", 1.0, "size scale factor (1.0 = EXPERIMENTS.md sizes)")
	seed := fs.Uint64("seed", experiments.DefaultConfig().Seed, "random seed")
	format := fs.String("format", "text", "output format: text, csv, md or json")
	workers := fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS; never affects results)")
	parallel := fs.Int("parallel", 0, "concurrent scenario cells (0 = GOMAXPROCS; never affects results)")
	pairs := fs.Int("pairs", 0, "override source/target pairs per estimate")
	trials := fs.Int("trials", 0, "override augmentation redraws per pair")
	precision := fs.Float64("precision", 0, "adaptive mode: target 95% CI half-width relative to the mean (0 = fixed budgets)")
	maxTrials := fs.Int("max-trials", 0, "adaptive mode: per-pair trial cap (0 = 8x the base budget)")
	oracle := fs.String("oracle", "auto", "distance-source policy: auto, analytic, twohop or field (identical results; cost knob)")
	noAnalytic := fs.Bool("no-analytic", false, "force BFS-field-backed distances (legacy spelling of -oracle field)")
	quiet := fs.Bool("quiet", false, "suppress the per-cell progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := dist.ParseSourcePolicy(*oracle)
	if err != nil {
		return err
	}
	// Reject bad formats before spending minutes running the suite.
	switch strings.ToLower(*format) {
	case "", "text", "txt", "csv", "markdown", "md", "json":
	default:
		return fmt.Errorf("unknown format %q (known: text, csv, md, json)", *format)
	}
	cfg := scenario.Config{
		Seed:       *seed,
		Scale:      *scale,
		Workers:    *workers,
		Parallel:   *parallel,
		Pairs:      *pairs,
		Trials:     *trials,
		Precision:  *precision,
		MaxTrials:  *maxTrials,
		Oracle:     policy,
		NoAnalytic: *noAnalytic,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	var ids []string
	if *expList != "" {
		ids = strings.Split(*expList, ",")
	}
	rep, err := core.RunSuite(ids, cfg)
	if rep != nil {
		// Render even when an experiment failed: the report carries the
		// completed experiments plus per-experiment error fields (the table
		// formats stop at the first failed experiment on their own).
		if renderErr := rep.Render(os.Stdout, *format); err == nil {
			err = renderErr
		}
	}
	return err
}

func runEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	family := fs.String("family", "grid", "graph family ("+strings.Join(core.GraphFamilies(), ", ")+")")
	n := fs.Int("n", 4096, "approximate graph size")
	schemeName := fs.String("scheme", "ball", "augmentation scheme ("+strings.Join(core.SchemeNames(), ", ")+")")
	pairs := fs.Int("pairs", 12, "source/target pairs")
	trials := fs.Int("trials", 6, "augmentation redraws per pair")
	precision := fs.Float64("precision", 0, "adaptive mode: target 95% CI half-width relative to the mean (0 = fixed budget)")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	oracle := fs.String("oracle", "auto", "distance-source policy: auto, analytic, twohop or field (identical results; cost knob)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	policy, err := dist.ParseSourcePolicy(*oracle)
	if err != nil {
		return err
	}
	g, err := core.GraphByName(*family, *n, *seed)
	if err != nil {
		return err
	}
	scheme, err := core.SchemeByName(*schemeName)
	if err != nil {
		return err
	}
	ag, err := core.Augment(g, scheme)
	if err != nil {
		return err
	}
	est, err := ag.EstimateGreedyDiameter(sim.Config{
		Pairs:               *pairs,
		Trials:              *trials,
		Seed:                *seed,
		Workers:             *workers,
		TargetCI:            *precision,
		IncludeExtremalPair: true,
		Policy:              policy,
	})
	if err != nil {
		return err
	}
	fmt.Printf("graph:            %v\n", g)
	fmt.Printf("scheme:           %s\n", est.Scheme)
	fmt.Printf("greedy diameter:  %.2f (max over %d sampled pairs of per-pair mean)\n", est.GreedyDiameter, len(est.PairStats))
	fmt.Printf("mean steps:       %.2f ± %.2f (95%% CI over pair means)\n", est.MeanSteps, est.CI95)
	fmt.Printf("mean long links:  %.2f per route\n", est.MeanLongLinks)
	if est.Adaptive {
		fmt.Printf("samples:          %d routed trials (adaptive, per-pair CI target %.3g)\n", est.Samples, est.TargetCI)
	} else {
		fmt.Printf("samples:          %d routed trials\n", est.Samples)
	}
	return nil
}

func runExact(args []string) error {
	fs := flag.NewFlagSet("exact", flag.ExitOnError)
	family := fs.String("family", "path", "graph family ("+strings.Join(core.GraphFamilies(), ", ")+")")
	n := fs.Int("n", 400, "approximate graph size (exact computation is cubic; keep n small)")
	schemeName := fs.String("scheme", "uniform", "augmentation scheme ("+strings.Join(core.SchemeNames(), ", ")+")")
	seed := fs.Uint64("seed", 1, "random seed for graph generation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := core.GraphByName(*family, *n, *seed)
	if err != nil {
		return err
	}
	scheme, err := core.SchemeByName(*schemeName)
	if err != nil {
		return err
	}
	res, err := exact.SchemeGreedyDiameter(g, scheme)
	if err != nil {
		return err
	}
	fmt.Printf("graph:                 %v\n", g)
	fmt.Printf("scheme:                %s\n", scheme.Name())
	fmt.Printf("exact greedy diameter: %.4f (pair %d -> %d)\n", res.GreedyDiameter, res.ArgSource, res.ArgTarget)
	fmt.Printf("mean pair expectation: %.4f\n", res.MeanExpectation)
	return nil
}
