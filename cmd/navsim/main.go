// Command navsim runs the paper-reproduction experiments (E1..E10) and
// ad-hoc greedy-diameter estimations.
//
// Usage:
//
//	navsim list
//	    List the available experiments with their claims.
//
//	navsim run [-exp E1,E7] [-scale 1.0] [-seed N] [-format text|csv|md] [-workers N]
//	    Run the selected experiments (default: all) and print their tables.
//
//	navsim estimate -family grid -n 4096 -scheme ball [-pairs 12] [-trials 6] [-seed N]
//	    Estimate the greedy diameter of one (family, scheme) combination.
//
//	navsim exact -family path -n 400 -scheme uniform [-seed N]
//	    Compute the exact greedy diameter (no sampling) for small instances.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"navaug/internal/core"
	"navaug/internal/exact"
	"navaug/internal/experiments"
	"navaug/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = runList()
	case "run":
		err = runExperiments(os.Args[2:])
	case "estimate":
		err = runEstimate(os.Args[2:])
	case "exact":
		err = runExact(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "navsim: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "navsim: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  navsim list
  navsim run [-exp E1,E7] [-scale 1.0] [-seed N] [-format text|csv|md] [-workers N] [-pairs N] [-trials N]
  navsim estimate -family grid -n 4096 -scheme ball [-pairs 12] [-trials 6] [-seed N] [-workers N]
  navsim exact -family path -n 400 -scheme uniform [-seed N]`)
}

func runList() error {
	for _, e := range experiments.All() {
		fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
	}
	return nil
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	expList := fs.String("exp", "", "comma-separated experiment ids (default: all)")
	scale := fs.Float64("scale", 1.0, "size scale factor (1.0 = EXPERIMENTS.md sizes)")
	seed := fs.Uint64("seed", experiments.DefaultConfig().Seed, "random seed")
	format := fs.String("format", "text", "output format: text, csv or md")
	workers := fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	pairs := fs.Int("pairs", 0, "override source/target pairs per estimate")
	trials := fs.Int("trials", 0, "override augmentation redraws per pair")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{
		Seed:    *seed,
		Scale:   *scale,
		Workers: *workers,
		Pairs:   *pairs,
		Trials:  *trials,
	}
	var selected []experiments.Experiment
	if *expList == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expList, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)", id, strings.Join(experiments.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}
	for _, e := range selected {
		fmt.Printf("\n#### %s — %s\n", e.ID, e.Title)
		fmt.Printf("claim: %s\n\n", e.Claim)
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(os.Stdout, *format); err != nil {
				return err
			}
			fmt.Println()
		}
	}
	return nil
}

func runEstimate(args []string) error {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	family := fs.String("family", "grid", "graph family ("+strings.Join(core.GraphFamilies(), ", ")+")")
	n := fs.Int("n", 4096, "approximate graph size")
	schemeName := fs.String("scheme", "ball", "augmentation scheme ("+strings.Join(core.SchemeNames(), ", ")+")")
	pairs := fs.Int("pairs", 12, "source/target pairs")
	trials := fs.Int("trials", 6, "augmentation redraws per pair")
	seed := fs.Uint64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := core.GraphByName(*family, *n, *seed)
	if err != nil {
		return err
	}
	scheme, err := core.SchemeByName(*schemeName)
	if err != nil {
		return err
	}
	ag, err := core.Augment(g, scheme)
	if err != nil {
		return err
	}
	est, err := ag.EstimateGreedyDiameter(sim.Config{
		Pairs:               *pairs,
		Trials:              *trials,
		Seed:                *seed,
		Workers:             *workers,
		IncludeExtremalPair: true,
	})
	if err != nil {
		return err
	}
	fmt.Printf("graph:            %v\n", g)
	fmt.Printf("scheme:           %s\n", est.Scheme)
	fmt.Printf("greedy diameter:  %.2f (max over %d sampled pairs of per-pair mean)\n", est.GreedyDiameter, len(est.PairStats))
	fmt.Printf("mean steps:       %.2f ± %.2f (95%% CI over pair means)\n", est.MeanSteps, est.CI95)
	fmt.Printf("mean long links:  %.2f per route\n", est.MeanLongLinks)
	fmt.Printf("samples:          %d routed trials\n", est.Samples)
	return nil
}

func runExact(args []string) error {
	fs := flag.NewFlagSet("exact", flag.ExitOnError)
	family := fs.String("family", "path", "graph family ("+strings.Join(core.GraphFamilies(), ", ")+")")
	n := fs.Int("n", 400, "approximate graph size (exact computation is cubic; keep n small)")
	schemeName := fs.String("scheme", "uniform", "augmentation scheme ("+strings.Join(core.SchemeNames(), ", ")+")")
	seed := fs.Uint64("seed", 1, "random seed for graph generation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, err := core.GraphByName(*family, *n, *seed)
	if err != nil {
		return err
	}
	scheme, err := core.SchemeByName(*schemeName)
	if err != nil {
		return err
	}
	res, err := exact.SchemeGreedyDiameter(g, scheme)
	if err != nil {
		return err
	}
	fmt.Printf("graph:                 %v\n", g)
	fmt.Printf("scheme:                %s\n", scheme.Name())
	fmt.Printf("exact greedy diameter: %.4f (pair %d -> %d)\n", res.GreedyDiameter, res.ArgSource, res.ArgTarget)
	fmt.Printf("mean pair expectation: %.4f\n", res.MeanExpectation)
	return nil
}
