package main

import (
	"context"
	"fmt"
	"time"

	"navaug/internal/serve"
)

func runLoadgen(c *command, args []string) error {
	fs := newFlagSet(c)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of the navsim serve instance")
	mode := fs.String("mode", "dist", "query mix: dist or route")
	rate := fs.Float64("rate", 0, "target request rate in req/s (open loop, wrk2-style); 0 = closed loop at max throughput")
	duration := fs.Duration("duration", 5*time.Second, "measured window")
	warmup := fs.Duration("warmup", 500*time.Millisecond, "unmeasured warmup traffic before the window")
	conns := fs.Int("conns", 4, "concurrent client connections")
	batch := fs.Int("batch", 1, "pairs per request (1 = GET endpoints, >1 = POST batches)")
	keys := fs.String("keys", "uniform", "query key distribution: uniform or zipf")
	zipfExp := fs.Float64("zipf", 1.1, "zipf exponent when -keys zipf")
	seed := fs.Uint64("seed", 1, "sampling seed")
	scheme := fs.String("scheme", "", "frozen scheme for route mode (default: first packed)")
	draw := fs.Int("draw", 0, "frozen draw index for route mode")
	retries := fs.Int("retries", 0, "retry budget per request for 429/timeout/5xx/conn errors (0 = no retries; capped exponential backoff with jitter)")
	out := fs.String("out", "", "append the result record to this JSON bench file (e.g. BENCH_serve.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := serve.RunLoad(context.Background(), serve.LoadOptions{
		BaseURL:  *url,
		Mode:     *mode,
		Rate:     *rate,
		Duration: *duration,
		Warmup:   *warmup,
		Conns:    *conns,
		Batch:    *batch,
		KeyDist:  *keys,
		ZipfExp:  *zipfExp,
		Seed:     *seed,
		Scheme:   *scheme,
		Draw:     *draw,
		Retries:  *retries,
	})
	if err != nil {
		return err
	}

	loop := "closed loop"
	if res.OpenLoop {
		loop = fmt.Sprintf("open loop @ %.0f req/s", res.TargetRate)
	}
	fmt.Printf("target:      %s (%s, n=%d, oracle %s)\n", *url, res.ServerFamily, res.ServerN, res.ServerOracle)
	fmt.Printf("workload:    %s, %s keys, batch %d, %d conns, %s, %.1fs\n",
		res.Mode, res.KeyDist, res.Batch, res.Conns, loop, res.DurationS)
	fmt.Printf("throughput:  %.0f req/s = %.0f %s-queries/s (%d requests, %d ok, %d errors)\n",
		res.RequestsPerS, res.QueriesPerS, res.Mode, res.Requests, res.OK, res.Errors)
	fmt.Printf("goodput:     %.0f ok-queries/s\n", res.GoodputPerS)
	if res.Errors > 0 || res.Retries > 0 {
		fmt.Printf("errors:      %d shed (429), %d timeouts, %d 5xx, %d conn; %d retries\n",
			res.Shed429, res.Timeouts, res.Errors5xx, res.ConnErrors, res.Retries)
	}
	fmt.Printf("latency ms:  p50 %.3f  p90 %.3f  p99 %.3f  p99.9 %.3f  max %.3f  mean %.3f  (over ok responses only)\n",
		res.Latency.P50, res.Latency.P90, res.Latency.P99, res.Latency.P999, res.Latency.Max, res.Latency.Mean)
	if res.ServerPeakRSS > 0 {
		fmt.Printf("server rss:  %.1f MB peak\n", float64(res.ServerPeakRSS)/1e6)
	}
	if *out != "" {
		if err := appendBenchRecord(*out, "loadgen", res); err != nil {
			return err
		}
	}
	return nil
}
