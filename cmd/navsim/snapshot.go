package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/snapshot"
)

// snapshotBenchRecord is the BENCH_serve.json entry one snapshot build
// emits: the one-off build cost next to the load cost it amortises away.
type snapshotBenchRecord struct {
	Family          string   `json:"family"`
	N               int      `json:"n"`
	M               int      `json:"m"`
	Seed            uint64   `json:"seed"`
	Oracle          string   `json:"oracle"`
	Schemes         []string `json:"schemes"`
	Draws           int      `json:"draws"`
	Bytes           int64    `json:"bytes"`
	BuildGraphS     float64  `json:"build_graph_s"`
	BuildOracleS    float64  `json:"build_oracle_s"`
	PrepareSchemesS float64  `json:"prepare_schemes_s"`
	RebuildS        float64  `json:"rebuild_s"`
	WriteS          float64  `json:"write_s"`
	LoadS           float64  `json:"load_s"`
	LoadVsRebuild   float64  `json:"speedup_load_vs_rebuild"`
	TwoHopAvgLabel  float64  `json:"twohop_avg_label,omitempty"`
	TwoHopMaxLabel  int      `json:"twohop_max_label,omitempty"`
}

func runSnapshot(c *command, args []string) error {
	fs := newFlagSet(c)
	family := fs.String("family", "", "graph family ("+strings.Join(core.GraphFamilies(), ", ")+")")
	n := fs.Int("n", 0, "approximate graph size")
	seed := fs.Uint64("seed", 1, "run seed (the graph matches a `navsim run` at this seed)")
	schemes := fs.String("scheme", "ball", "comma-separated augmentation schemes to freeze")
	draws := fs.Int("draws", 1, "frozen full contact tables per scheme")
	oracle := fs.String("oracle", "auto", "distance tier to pack: auto, analytic, twohop, twohop-packed or field (field packs none)")
	out := fs.String("o", "", "output .navsnap path (required)")
	benchOut := fs.String("bench-out", "", "append a build/load timing record to this JSON bench file")
	quiet := fs.Bool("quiet", false, "suppress build progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *family == "" || *n <= 0 || *out == "" {
		fs.Usage()
		return fmt.Errorf("snapshot requires -family, -n and -o")
	}
	policy, err := dist.ParseSourcePolicy(*oracle)
	if err != nil {
		return err
	}
	opts := core.SnapshotOptions{
		Family:  *family,
		N:       *n,
		Seed:    *seed,
		Schemes: splitTrim(*schemes),
		Draws:   *draws,
		Oracle:  policy,
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}
	snap, stats, err := core.BuildSnapshot(opts)
	if err != nil {
		return err
	}

	start := time.Now()
	if err := snap.WriteFile(*out); err != nil {
		return err
	}
	writeTime := time.Since(start)
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}

	// Always reload what was written: it verifies every checksum end to
	// end, and times the load path the bench record reports.
	start = time.Now()
	loaded, err := snapshot.ReadFile(*out)
	if err != nil {
		return fmt.Errorf("verifying written snapshot: %w", err)
	}
	loadTime := time.Since(start)
	if loaded.Graph.N() != snap.Graph.N() || loaded.Graph.M() != snap.Graph.M() {
		return fmt.Errorf("verifying written snapshot: reloaded graph %v does not match built %v", loaded.Graph, snap.Graph)
	}

	rec := snapshotBenchRecord{
		Family:          opts.Family,
		N:               snap.Graph.N(),
		M:               snap.Graph.M(),
		Seed:            opts.Seed,
		Oracle:          string(policy),
		Schemes:         opts.Schemes,
		Draws:           opts.Draws,
		Bytes:           info.Size(),
		BuildGraphS:     stats.GraphBuild.Seconds(),
		BuildOracleS:    stats.OracleBuild.Seconds(),
		PrepareSchemesS: stats.SchemesPrepare.Seconds(),
		RebuildS:        stats.Rebuild().Seconds(),
		WriteS:          writeTime.Seconds(),
		LoadS:           loadTime.Seconds(),
		TwoHopAvgLabel:  stats.TwoHopAvgLabel,
		TwoHopMaxLabel:  stats.TwoHopMaxLabel,
	}
	if loadTime > 0 {
		rec.LoadVsRebuild = stats.Rebuild().Seconds() / loadTime.Seconds()
	}
	fmt.Printf("wrote %s: %v, %d bytes, oracle %s\n", *out, snap.Graph, info.Size(), string(policy))
	fmt.Printf("build %.2fs (graph %.2fs, oracle %.2fs, schemes %.2fs), write %.3fs, load+verify %.3fs (%.0fx faster than rebuild)\n",
		rec.RebuildS, rec.BuildGraphS, rec.BuildOracleS, rec.PrepareSchemesS, rec.WriteS, rec.LoadS, rec.LoadVsRebuild)
	if *benchOut != "" {
		if err := appendBenchRecord(*benchOut, "snapshots", rec); err != nil {
			return err
		}
	}
	return nil
}

func splitTrim(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
