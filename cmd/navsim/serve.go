package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"navaug/internal/serve"
	"navaug/internal/snapshot"
)

func runServe(c *command, args []string) error {
	fs := newFlagSet(c)
	snapPath := fs.String("snapshot", "", "path to the .navsnap file to serve (required)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "query pool size (0 = one per CPU)")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request timeout")
	maxBatch := fs.Int("max-batch", 8192, "max pairs per batched request")
	fieldCache := fs.Int("field-cache", 64, "BFS field cache capacity (only used when the snapshot packs no O(1) tier)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapPath == "" {
		fs.Usage()
		return fmt.Errorf("serve requires -snapshot")
	}

	start := time.Now()
	snap, err := snapshot.ReadFile(*snapPath)
	if err != nil {
		return err
	}
	srv, err := serve.New(snap, serve.Options{
		Workers:        *workers,
		RequestTimeout: *timeout,
		MaxBatch:       *maxBatch,
		FieldCacheSize: *fieldCache,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "navsim serve: loaded %s (%v) in %.3fs; listening on http://%s\n",
		*snapPath, snap.Graph, time.Since(start).Seconds(), ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "navsim serve: %v, shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errCh // Serve has returned ErrServerClosed by now
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
