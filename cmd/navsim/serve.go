package main

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"navaug/internal/fault"
	"navaug/internal/serve"
	"navaug/internal/snapshot"
)

func runServe(c *command, args []string) error {
	fs := newFlagSet(c)
	snapPath := fs.String("snapshot", "", "path to the .navsnap file to serve (required)")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "query pool size (0 = one per CPU)")
	queue := fs.Int("queue", 0, "task queue bound; excess load is shed with 429 (0 = max(16, 4x workers))")
	timeout := fs.Duration("timeout", 2*time.Second, "per-request timeout")
	maxBatch := fs.Int("max-batch", 8192, "max pairs per batched request")
	fieldCache := fs.Int("field-cache", 64, "BFS field cache capacity (only used when the snapshot packs no O(1) tier)")
	landmarks := fs.Int("landmarks", 0, "landmark count for the approximate degraded tier (0 = default 16, negative disables)")
	faults := fs.String("faults", "", "fault-injection spec, e.g. 'stall:shard=0,delay=50ms;storm:p=0.1,delay=3s' (testing only)")
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the fault-injection draw stream")
	drain := fs.Duration("drain", time.Second, "grace between flipping readiness and closing the listener on SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapPath == "" {
		fs.Usage()
		return fmt.Errorf("serve requires -snapshot")
	}
	var inj *fault.Injector
	if *faults != "" {
		var err error
		if inj, err = fault.Parse(*faults, *faultSeed); err != nil {
			return err
		}
	}

	// Bind before loading and serve "loading" 503s until the snapshot is in:
	// liveness is up the moment the process owns the port, readiness only
	// once queries can actually be answered.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	var handler atomic.Pointer[http.Handler]
	loading := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/livez" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, `{"status":"alive"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"loading"}`)
	}))
	handler.Store(&loading)
	httpSrv := &http.Server{
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			(*handler.Load()).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "navsim serve: listening on http://%s (loading)\n", ln.Addr())

	start := time.Now()
	snap, err := snapshot.ReadFileTolerant(*snapPath)
	if err != nil {
		ln.Close()
		return err
	}
	if len(snap.Quarantined) > 0 {
		fmt.Fprintf(os.Stderr, "navsim serve: WARNING: quarantined damaged sections %v; serving degraded\n",
			snap.Quarantined)
	}
	srv, err := serve.New(snap, serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxBatch:       *maxBatch,
		FieldCacheSize: *fieldCache,
		Landmarks:      *landmarks,
		Faults:         inj,
	})
	if err != nil {
		ln.Close()
		return err
	}
	defer srv.Close()
	ready := srv.Handler()
	handler.Store(&ready)
	if inj != nil {
		inj.Activate()
		fmt.Fprintf(os.Stderr, "navsim serve: fault injection ACTIVE: %s\n", *faults)
	}
	fmt.Fprintf(os.Stderr, "navsim serve: loaded %s (%v) in %.3fs; ready\n",
		*snapPath, snap.Graph, time.Since(start).Seconds())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		// Graceful drain: flip readiness first so load balancers stop
		// sending traffic, give them the grace window, then close the
		// listener and wait for in-flight requests to complete.
		fmt.Fprintf(os.Stderr, "navsim serve: %v, draining\n", sig)
		srv.BeginDrain()
		time.Sleep(*drain)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		<-errCh // Serve has returned ErrServerClosed by now
		return nil
	case err := <-errCh:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	}
}
