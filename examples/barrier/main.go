// Barrier: watch the √n barrier being crossed.
//
// Theorem 1 says no name-independent (in particular, no matrix-based scheme
// without a good labeling) can beat Θ(√n) greedy routing on every graph;
// Theorem 4's ball scheme reaches Õ(n^{1/3}).  This example sweeps the path
// graph — the hardest simple case — and prints the greedy diameter of both
// schemes along with the fitted scaling exponents.
//
// Run with:
//
//	go run ./examples/barrier
package main

import (
	"fmt"
	"log"
	"math"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/sim"
)

func main() {
	sizes := []int{1024, 2048, 4096, 8192, 16384, 32768}
	build := func(n int) (*graph.Graph, error) { return gen.Path(n), nil }
	cfg := sim.Config{Pairs: 10, Trials: 4, Seed: 13, IncludeExtremalPair: true}

	uniformResults, err := sim.Sweep(sizes, build, augment.NewUniformScheme(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	ballResults, err := sim.Sweep(sizes, build, augment.NewBallScheme(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %14s %14s %10s %12s %12s\n", "n", "uniform gd", "ball gd", "ratio", "sqrt(n)", "n^(1/3)")
	for i, n := range sizes {
		u := uniformResults[i].Estimate.GreedyDiameter
		b := ballResults[i].Estimate.GreedyDiameter
		fmt.Printf("%8d %14.1f %14.1f %10.2f %12.1f %12.1f\n",
			n, u, b, u/b, math.Sqrt(float64(n)), math.Cbrt(float64(n)))
	}

	uniFit, err := sim.FitPower(uniformResults)
	if err != nil {
		log.Fatal(err)
	}
	ballFit, err := sim.FitPower(ballResults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted scaling: uniform ≈ n^%.2f (paper: 0.5), ball ≈ n^%.2f (paper: 1/3 up to polylogs)\n",
		uniFit.Exponent, ballFit.Exponent)
	fmt.Println("The widening gap in the ratio column is the √n barrier being overcome.")
}
