// Treeroute: the Theorem 2 matrix scheme on trees.
//
// Trees have pathshape O(log n), so the paper's (M, L) scheme — an ancestor
// matrix over a centroid path decomposition, mixed with the uniform matrix —
// routes in O(log³ n) expected steps, while any name-independent scheme is
// stuck at Ω(√n).  The example builds increasingly large random trees, runs
// both schemes, and prints the scaling side by side.
//
// Run with:
//
//	go run ./examples/treeroute
package main

import (
	"fmt"
	"log"
	"math"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

func main() {
	theorem2 := augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.TreeCentroid(g)
	})
	uniform := augment.NewUniformScheme()

	fmt.Printf("%8s %12s %14s %14s %12s %12s\n",
		"n", "tree diam", "theorem2 gd", "uniform gd", "log2^3(n)", "sqrt(n)")
	rng := xrand.New(11)
	for _, n := range []int{511, 1023, 2047, 4095, 8191, 16383} {
		g := gen.RandomTree(n, rng)
		cfg := sim.Config{Pairs: 10, Trials: 5, Seed: uint64(n), IncludeExtremalPair: true}

		t2, err := sim.EstimateGreedyDiameter(g, theorem2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		uni, err := sim.EstimateGreedyDiameter(g, uniform, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d %12d %14.1f %14.1f %12.1f %12.1f\n",
			n, g.Diameter(), t2.GreedyDiameter, uni.GreedyDiameter,
			math.Pow(math.Log2(float64(n)), 3), math.Sqrt(float64(n)))
	}
	fmt.Println("\nThe theorem2 column should stay roughly flat (polylogarithmic) while the uniform column")
	fmt.Println("keeps growing like √n — exactly the separation Corollary 1 of the paper predicts.")

	// Show the machinery underneath once, on a small tree.
	small := gen.BinaryTree(63)
	pd, err := decomp.TreeCentroid(small)
	if err != nil {
		log.Fatal(err)
	}
	apsp := smallMetric(small)
	fmt.Printf("\nunder the hood for a 63-node binary tree: centroid path decomposition with %d bags, "+
		"width %d, shape %d\n", pd.B(), pd.Width(), pd.Shape(apsp, small.N()))
}

func smallMetric(g *graph.Graph) func(u, v graph.NodeID) int32 {
	rows := make([][]int32, g.N())
	for u := 0; u < g.N(); u++ {
		rows[u] = g.BFS(graph.NodeID(u))
	}
	return func(u, v graph.NodeID) int32 { return rows[u][v] }
}
