// Milgram: a small-world "six degrees of separation" simulation.
//
// The example models Milgram's letter-forwarding experiment on a 2D grid of
// acquaintances: each person knows their grid neighbours plus one long-range
// contact.  Three ways of wiring the long-range contacts are compared:
//
//   - uniformly at random (the name-independent baseline, Θ(√n) forwarding),
//   - Kleinberg's distance-harmonic wiring with exponent 2 (polylog, but only
//     because the exponent matches the grid's dimension),
//   - the paper's universal ball scheme (Õ(n^{1/3}) on *any* topology).
//
// Run with:
//
//	go run ./examples/milgram
package main

import (
	"fmt"
	"log"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/route"
	"navaug/internal/xrand"
)

func main() {
	const side = 90 // 8100 people
	g := gen.Grid2D(side, side)
	fmt.Printf("population: %d people on a %dx%d grid of acquaintances\n\n", g.N(), side, side)

	schemes := []augment.Scheme{
		augment.NewUniformScheme(),
		augment.NewHarmonicScheme(2),
		augment.NewBallScheme(),
	}

	// A fixed set of "letters": random (source, target) pairs, the same for
	// every wiring so the comparison is fair.
	rng := xrand.New(1967) // the year of Milgram's paper
	type letter struct{ from, to graph.NodeID }
	letters := make([]letter, 30)
	for i := range letters {
		letters[i] = letter{
			from: graph.NodeID(rng.Intn(g.N())),
			to:   graph.NodeID(rng.Intn(g.N())),
		}
	}

	fmt.Printf("%-14s %14s %14s %14s\n", "wiring", "mean hops", "median-ish", "worst letter")
	for _, scheme := range schemes {
		inst, err := scheme.Prepare(g)
		if err != nil {
			log.Fatal(err)
		}
		hops := make([]int, 0, len(letters))
		total := 0
		worst := 0
		for i, l := range letters {
			src := dist.NewField(g.BFS(l.to), l.to)
			res, err := route.Greedy(g, inst, l.from, l.to, src, xrand.New(uint64(i)+7), route.Options{})
			if err != nil {
				log.Fatal(err)
			}
			if !res.Reached {
				log.Fatalf("letter %d was lost under %s", i, scheme.Name())
			}
			hops = append(hops, res.Steps)
			total += res.Steps
			if res.Steps > worst {
				worst = res.Steps
			}
		}
		mid := middle(hops)
		fmt.Printf("%-14s %14.1f %14d %14d\n", scheme.Name(), float64(total)/float64(len(letters)), mid, worst)
	}
	fmt.Println("\nMilgram observed chains of about six acquaintances; greedy forwarding over an augmented")
	fmt.Println("grid reproduces the qualitative effect, and the universal ball scheme does so without any")
	fmt.Println("knowledge of the grid's dimension — that is the point of the paper.")
}

func middle(xs []int) int {
	cp := append([]int(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
			cp[j-1], cp[j] = cp[j], cp[j-1]
		}
	}
	return cp[len(cp)/2]
}
