// Quickstart: augment a graph, route greedily, estimate the greedy diameter.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"navaug/internal/augment"
	"navaug/internal/core"
	"navaug/internal/graph/gen"
	"navaug/internal/sim"
)

func main() {
	// 1. Build a graph.  Any connected graph works; here a 64x64 mesh.
	g := gen.Grid2D(64, 64)
	fmt.Printf("graph: %v (diameter %d)\n\n", g, g.Diameter())

	// 2. Pick an augmentation scheme.  The ball scheme is the paper's
	//    Theorem 4 construction: every node links to a uniform node of a
	//    random-scale ball around it.
	ag, err := core.Augment(g, augment.NewBallScheme())
	if err != nil {
		log.Fatal(err)
	}

	// 3. Route a single message greedily between two far-apart corners and
	//    print what happened.
	res, err := ag.Route(0, int32(g.N()-1), 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one greedy route corner-to-corner: %d steps (%d long-range hops) over graph distance %d\n\n",
		res.Steps, res.LongLinksUsed, g.Diameter())

	// 4. Estimate the greedy diameter: the maximum over source/target pairs
	//    of the expected number of greedy steps.  This is the quantity every
	//    theorem in the paper bounds.
	est, err := ag.EstimateGreedyDiameter(sim.Config{Pairs: 12, Trials: 6, Seed: 1, IncludeExtremalPair: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy diameter estimate under %q: %.1f steps (mean %.1f ± %.1f, %d samples)\n",
		est.Scheme, est.GreedyDiameter, est.MeanSteps, est.CI95, est.Samples)

	// 5. Compare against the uniform scheme (the √n baseline).
	uni, err := core.Augment(g, augment.NewUniformScheme())
	if err != nil {
		log.Fatal(err)
	}
	uniEst, err := uni.EstimateGreedyDiameter(sim.Config{Pairs: 12, Trials: 6, Seed: 1, IncludeExtremalPair: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy diameter estimate under %q: %.1f steps\n", uniEst.Scheme, uniEst.GreedyDiameter)
	fmt.Printf("\nball / uniform ratio: %.2f (Theorem 4 says this drops like ~n^(-1/6) as n grows)\n",
		est.GreedyDiameter/uniEst.GreedyDiameter)
}
