// Compare: every scheme on every family, one table.
//
// This example runs all of the paper's augmentation schemes (plus the
// no-augmentation and Kleinberg-harmonic baselines) on a selection of graph
// families at a fixed size and prints the greedy diameter estimates as a
// matrix.  It is the quickest way to see which scheme is universal and which
// is specialised.
//
// Run with:
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"
	"os"

	"navaug/internal/augment"
	"navaug/internal/core"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/report"
	"navaug/internal/sim"
)

func main() {
	const n = 4096
	families := []string{"path", "grid", "binary-tree", "interval", "gnp"}

	schemes := []augment.Scheme{
		augment.NewNoAugmentation(),
		augment.NewUniformScheme(),
		augment.NewHarmonicScheme(1),
		augment.NewBallScheme(),
	}

	table := report.NewTable(fmt.Sprintf("greedy diameter estimates at n ≈ %d", n),
		append([]string{"family", "diameter"}, schemeNames(schemes)...)...)

	for _, fam := range families {
		g, err := core.GraphByName(fam, n, 5)
		if err != nil {
			log.Fatal(err)
		}
		row := []any{fam, int(g.Diameter())}
		for _, s := range schemes {
			est, err := sim.EstimateGreedyDiameter(g, s, sim.Config{Pairs: 8, Trials: 4, Seed: 5, IncludeExtremalPair: true})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, est.GreedyDiameter)
		}
		table.AddRow(row...)
	}

	// The Theorem 2 scheme needs a per-family decomposition; add it as a
	// second table for the families it is designed for.
	t2 := report.NewTable("Theorem 2 (M,L) scheme on its target families",
		"family", "decomposition", "greedy diameter")
	treeScheme := augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.TreeCentroid(g)
	})
	bfsScheme := augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.BFSLayers(g, 0)
	})
	for _, c := range []struct {
		family string
		scheme augment.Scheme
		label  string
	}{
		{"binary-tree", treeScheme, "centroid"},
		{"path", treeScheme, "centroid"},
		{"grid", bfsScheme, "bfs-layers"},
	} {
		g, err := core.GraphByName(c.family, n, 5)
		if err != nil {
			log.Fatal(err)
		}
		est, err := sim.EstimateGreedyDiameter(g, c.scheme, sim.Config{Pairs: 8, Trials: 4, Seed: 5, IncludeExtremalPair: true})
		if err != nil {
			log.Fatal(err)
		}
		t2.AddRow(c.family, c.label, est.GreedyDiameter)
	}

	if err := table.RenderText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := t2.RenderText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println("Reading guide: 'none' is the plain diameter, 'uniform' is the √n baseline, 'harmonic-r1' is")
	fmt.Println("excellent only where its exponent matches the growth of the graph, and 'ball' (Theorem 4)")
	fmt.Println("is the universal scheme that stays sub-√n everywhere.")
}

func schemeNames(schemes []augment.Scheme) []string {
	out := make([]string, len(schemes))
	for i, s := range schemes {
		out[i] = s.Name()
	}
	return out
}
