// Package churn drives dynamic-graph experiments: it turns a static base
// graph into a deterministic stream of edge delta batches (deletions paired
// with fresh insertions at a configured rate), applies them through the
// incremental 2-hop repair oracle (dist.DynTwoHop), resamples the dirtied
// nodes' augmentation contacts, and hands the resulting final graph, oracle
// and frozen contact tables to the scenario engine.
//
// Determinism contract: the whole pipeline is a pure function of
// (base graph, seed, Spec, dirty sets).  The delta stream depends only on
// the seed and StreamKey — NOT on the repair budget — so two runs differing
// only in budget churn identical edges and dirty identical nodes; only the
// repair quality (oracle debt) differs.  That separation is what lets
// experiment E13 attribute routing degradation to the budget alone.
package churn

import (
	"fmt"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// Spec configures one churn pipeline.
type Spec struct {
	// Rate is the fraction of the current edge set deleted (and replaced by
	// the same number of fresh random edges) per batch.  Each batch deletes
	// at least one edge, so tiny graphs still churn.
	Rate float64
	// Batches is the number of delta batches applied.
	Batches int
	// RepairBudget caps how many dirty nodes the oracle re-labels per batch:
	// < 0 means unlimited (the oracle stays exact), 0 means track debt only
	// (answers go stale until a compaction).
	RepairBudget int
	// CompactEvery > 0 rebases the overlay into a fresh CSR and rebuilds the
	// oracle from scratch after every CompactEvery batches — except after the
	// final batch, so measurements see the budget's effect, not a rebuild's.
	CompactEvery int
}

// Key identifies the full spec, including the repair budget.  It is part of
// the scenario engine's graph cache identity: cells with different budgets
// must not share a pipeline.
func (s Spec) Key() string {
	return fmt.Sprintf("%s-k%d", s.StreamKey(), s.RepairBudget)
}

// StreamKey identifies the delta stream alone — rate, batch count and
// compaction cadence, but NOT the repair budget.  Seeding the stream from
// StreamKey makes the churned edges and dirty sets identical across budget
// cells.
func (s Spec) StreamKey() string {
	return fmt.Sprintf("r%g-b%d-c%d", s.Rate, s.Batches, s.CompactEvery)
}

// Result is everything a churn pipeline produced.
type Result struct {
	Spec Spec
	// Base is the graph the pipeline started from; Final is the compacted
	// CSR after the last batch (the graph routing runs on).
	Base  *graph.Graph
	Final *graph.Graph
	// Dyn is the dynamic graph at its final state; Gen is its generation.
	Dyn *graph.DynGraph
	Gen uint64
	// Oracle is the incrementally repaired distance oracle, generation-
	// checked against Dyn.  Its debt reflects the configured budget.
	Oracle *dist.DynTwoHop
	// Fields is a field cache over Final, stamped with Gen so stale reads
	// fail loud (dist.FieldCache.FieldAt).
	Fields *dist.FieldCache
	// Seed is the stream seed the pipeline ran with.
	Seed uint64
	// Dirty holds, per batch, the sorted dirty set ApplyBatch reported.
	Dirty [][]graph.NodeID

	// Stream and repair tallies.
	EdgesDeleted  int
	EdgesInserted int
	DirtyTotal    int64
	PatchedTotal  int64
	DebtRemaining int
	Rebuilds      int64
	// Components and LargestComponent describe Final's connectivity — churn
	// can disconnect a graph, and the sim reports such pairs as unreachable
	// rather than erroring (see internal/graph/ops.go).
	Components       int
	LargestComponent int
}

// Run executes the churn pipeline on base: Batches delta batches at the
// spec's rate, each applied through a DynTwoHop repair step with the spec's
// budget, with periodic compaction.  All randomness comes from seed; equal
// (base, seed, spec) produce identical results at every worker count
// (workers only parallelises the oracle's label construction, which is
// worker-count invariant by dist.TwoHop's contract).
func Run(base *graph.Graph, seed uint64, spec Spec, workers int) (*Result, error) {
	if spec.Batches <= 0 {
		return nil, fmt.Errorf("churn: spec needs at least one batch, got %d", spec.Batches)
	}
	if spec.Rate < 0 || spec.Rate > 1 {
		return nil, fmt.Errorf("churn: rate %g out of [0,1]", spec.Rate)
	}
	d := graph.NewDynGraph(base)
	oracle, err := dist.NewDynTwoHop(d, dist.TwoHopOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	res := &Result{Spec: spec, Base: base, Dyn: d, Oracle: oracle, Seed: seed}
	rng := xrand.New(seed)
	for b := 0; b < spec.Batches; b++ {
		deltas := nextBatch(d, rng, spec.Rate)
		for _, dl := range deltas {
			if dl.Op == graph.DeltaDelete {
				res.EdgesDeleted++
			} else {
				res.EdgesInserted++
			}
		}
		dirty, err := oracle.ApplyBatch(d, deltas, spec.RepairBudget)
		if err != nil {
			return nil, fmt.Errorf("churn: batch %d: %w", b, err)
		}
		res.Dirty = append(res.Dirty, dirty)
		if spec.CompactEvery > 0 && (b+1)%spec.CompactEvery == 0 && b+1 < spec.Batches {
			d.Rebase()
			if err := oracle.Rebuild(d); err != nil {
				return nil, fmt.Errorf("churn: rebuild after batch %d: %w", b, err)
			}
		}
	}
	res.Gen = d.Gen()
	if err := oracle.CheckGen(res.Gen); err != nil {
		return nil, err
	}
	res.Final = d.Compact()
	res.Fields = dist.NewFieldCacheAt(res.Final, 64, res.Gen)
	st := oracle.Stats()
	res.DirtyTotal = st.DirtyTotal
	res.PatchedTotal = st.PatchedTotal
	res.DebtRemaining = oracle.Debt()
	res.Rebuilds = st.Rebuilds
	for _, comp := range res.Final.Components() {
		res.Components++
		if len(comp) > res.LargestComponent {
			res.LargestComponent = len(comp)
		}
	}
	return res, nil
}

// nextBatch draws one delta batch from the stream rng: k deletions of
// current edges (k = max(1, rate·m)) and up to k insertions of fresh
// non-edges.  Insertion candidates are rejection-sampled against the
// pre-batch edge set plus the batch itself; an insertion that finds no free
// slot in 128 attempts is dropped (dense graphs), which only shrinks the
// batch deterministically.
func nextBatch(d *graph.DynGraph, rng *xrand.RNG, rate float64) []graph.Delta {
	edges := d.Edges()
	k := int(rate * float64(len(edges)))
	if k < 1 {
		k = 1
	}
	if k > len(edges) {
		k = len(edges)
	}
	deltas := make([]graph.Delta, 0, 2*k)
	pending := make(map[[2]graph.NodeID]bool, 2*k)
	for i := 0; i < k && len(edges) > 0; i++ {
		j := rng.Intn(len(edges))
		e := edges[j]
		edges[j] = edges[len(edges)-1]
		edges = edges[:len(edges)-1]
		deltas = append(deltas, graph.Delta{U: e.U, V: e.V, Op: graph.DeltaDelete})
		pending[[2]graph.NodeID{e.U, e.V}] = true
	}
	n := d.N()
	for i := 0; i < k; i++ {
		for attempt := 0; attempt < 128; attempt++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			key := [2]graph.NodeID{u, v}
			if pending[key] || d.HasEdge(u, v) {
				continue
			}
			pending[key] = true
			deltas = append(deltas, graph.Delta{U: u, V: v, Op: graph.DeltaInsert})
			break
		}
	}
	return deltas
}

// FrozenTable freezes one full contact table of scheme s for the churned
// graph: a base draw over the pre-churn graph (seeded by the stream seed
// and the scheme name), then — batch by batch, in stream order — a local
// redraw of exactly the nodes that batch dirtied (augment.ResampleDirty).
// Clean nodes keep their original frozen contact throughout, mirroring how
// a deployed overlay would only re-establish links whose underlying
// distances actually changed.
func FrozenTable(res *Result, s augment.Scheme) (*augment.Static, error) {
	inst, err := s.Prepare(res.Base)
	if err != nil {
		return nil, err
	}
	tabSeed := res.Seed ^ hash64(s.Name())
	contacts := augment.SampleAll(inst, res.Base.N(), xrand.New(tabSeed))
	for b, dirty := range res.Dirty {
		augment.ResampleDirty(inst, contacts, dirty, tabSeed, uint64(b+1))
	}
	return augment.NewStatic(s.Name(), contacts)
}

// hash64 is FNV-1a, matching internal/scenario's string hash (churn cannot
// import scenario — scenario imports churn).
func hash64(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
