package churn_test

import (
	"testing"

	"navaug/internal/augment"
	"navaug/internal/churn"
	"navaug/internal/dist"
	"navaug/internal/dist/disttest"
	"navaug/internal/graph"
	"navaug/internal/route"
	"navaug/internal/xrand"
)

func churnTestGraph(n, extra int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(int32(i-1), int32(i))
	}
	for i := 0; i < extra; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.SetName("churn-test").Build()
}

func sameCSR(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	aOff, aAdj := a.RawCSR()
	bOff, bAdj := b.RawCSR()
	if len(aOff) != len(bOff) || len(aAdj) != len(bAdj) {
		t.Fatal("CSR shape mismatch")
	}
	for i := range aOff {
		if aOff[i] != bOff[i] {
			t.Fatalf("offsets[%d]: %d vs %d", i, aOff[i], bOff[i])
		}
	}
	for i := range aAdj {
		if aAdj[i] != bAdj[i] {
			t.Fatalf("adj[%d]: %d vs %d", i, aAdj[i], bAdj[i])
		}
	}
}

// TestRunDeterminism pins the stream contract: equal (base, seed, spec)
// yield identical final graphs, dirty sets, and tallies — at every worker
// count, and across repair budgets for everything except repair quality.
func TestRunDeterminism(t *testing.T) {
	base := churnTestGraph(150, 60, 9)
	spec := churn.Spec{Rate: 0.02, Batches: 5, RepairBudget: -1, CompactEvery: 3}

	a, err := churn.Run(base, 1234, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b, err := churn.Run(base, 1234, spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		sameCSR(t, a.Final, b.Final)
		if len(a.Dirty) != len(b.Dirty) {
			t.Fatal("dirty batch count differs")
		}
		for i := range a.Dirty {
			if len(a.Dirty[i]) != len(b.Dirty[i]) {
				t.Fatalf("batch %d dirty size differs", i)
			}
			for j := range a.Dirty[i] {
				if a.Dirty[i][j] != b.Dirty[i][j] {
					t.Fatalf("batch %d dirty[%d] differs", i, j)
				}
			}
		}
		if a.EdgesDeleted != b.EdgesDeleted || a.EdgesInserted != b.EdgesInserted || a.Gen != b.Gen {
			t.Fatalf("tallies differ: %+v vs %+v", a, b)
		}
	}

	// A different budget must churn the same edges and dirty the same nodes
	// — only the repair state may differ.  This is the StreamKey separation.
	c, err := churn.Run(base, 1234, churn.Spec{Rate: 0.02, Batches: 5, RepairBudget: 0, CompactEvery: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	sameCSR(t, a.Final, c.Final)
	for i := range a.Dirty {
		if len(a.Dirty[i]) != len(c.Dirty[i]) {
			t.Fatalf("budget changed batch %d dirty set", i)
		}
	}
	if a.DebtRemaining != 0 {
		t.Fatal("unlimited budget left debt")
	}
	if spec.Key() == c.Spec.Key() {
		t.Fatal("budget missing from Spec.Key")
	}
	if spec.StreamKey() != c.Spec.StreamKey() {
		t.Fatal("budget leaked into StreamKey")
	}
}

// TestRunUnlimitedBudgetExact: with an unlimited budget the repaired oracle
// must be exact on the final graph (the disttest conformance suite), and
// the generation-stamped field cache must serve at the final generation.
func TestRunUnlimitedBudgetExact(t *testing.T) {
	base := churnTestGraph(120, 50, 3)
	res, err := churn.Run(base, 77, churn.Spec{Rate: 0.03, Batches: 4, RepairBudget: -1, CompactEvery: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	disttest.Exact(t, res.Final, res.Oracle)
	if res.Fields.Generation() != res.Gen {
		t.Fatalf("field cache at gen %d, pipeline at %d", res.Fields.Generation(), res.Gen)
	}
	if _, err := res.Fields.FieldAt(0, res.Gen); err != nil {
		t.Fatal(err)
	}
	if _, err := res.Fields.FieldAt(0, res.Gen+1); err == nil {
		t.Fatal("stale field served")
	}
	if res.Rebuilds < 2 {
		t.Fatalf("compaction cadence did not rebuild (rebuilds=%d)", res.Rebuilds)
	}
}

// TestRunZeroBudgetTracksDebt: budget 0 repairs nothing between
// compactions, so debt equals the dirty nodes accumulated since the last
// rebuild.
func TestRunZeroBudgetTracksDebt(t *testing.T) {
	base := churnTestGraph(100, 40, 5)
	res, err := churn.Run(base, 42, churn.Spec{Rate: 0.05, Batches: 3, RepairBudget: 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.DebtRemaining == 0 {
		t.Fatal("zero budget produced no debt")
	}
	if res.PatchedTotal != 0 {
		t.Fatalf("zero budget patched %d nodes", res.PatchedTotal)
	}
	if res.DirtyTotal == 0 {
		t.Fatal("churn dirtied nothing")
	}
}

// TestFrozenTableDeterminismAndLocality: the frozen contact table is a pure
// function of (result, scheme), and only ever-dirty nodes may differ from a
// plain pre-churn freeze.
func TestFrozenTableDeterminismAndLocality(t *testing.T) {
	base := churnTestGraph(130, 50, 11)
	spec := churn.Spec{Rate: 0.03, Batches: 4, RepairBudget: -1}
	res, err := churn.Run(base, 2024, spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	scheme := augment.NewUniformScheme()
	ta, err := churn.FrozenTable(res, scheme)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := churn.FrozenTable(res, scheme)
	if err != nil {
		t.Fatal(err)
	}
	for u := range ta.Contacts() {
		if ta.Contacts()[u] != tb.Contacts()[u] {
			t.Fatalf("node %d: table differs across identical runs", u)
		}
	}

	// Clean nodes (never dirtied by any batch) keep the base draw.
	inst, err := scheme.Prepare(res.Base)
	if err != nil {
		t.Fatal(err)
	}
	baseTable := augment.SampleAll(inst, base.N(), xrand.New(res.Seed^churnHash(scheme.Name())))
	everDirty := make(map[graph.NodeID]bool)
	for _, batch := range res.Dirty {
		for _, u := range batch {
			everDirty[u] = true
		}
	}
	if len(everDirty) == 0 {
		t.Fatal("churn dirtied nothing")
	}
	for u, c := range ta.Contacts() {
		if !everDirty[graph.NodeID(u)] && c != baseTable[u] {
			t.Fatalf("clean node %d was resampled", u)
		}
	}
}

// churnHash mirrors the package's FNV-1a so the test can reproduce the
// table seed.
func churnHash(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// TestRouteTraceAgreement: steering greedy routing by the repaired oracle
// produces hop-for-hop the same route as steering by an exact BFS field on
// the final graph — the oracle is a drop-in distance source.
func TestRouteTraceAgreement(t *testing.T) {
	base := churnTestGraph(140, 60, 21)
	res, err := churn.Run(base, 555, churn.Spec{Rate: 0.02, Batches: 4, RepairBudget: -1, CompactEvery: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	table, err := churn.FrozenTable(res, augment.NewUniformScheme())
	if err != nil {
		t.Fatal(err)
	}
	g := res.Final
	rng := xrand.New(9)
	pairs := 0
	for pairs < 25 {
		s := graph.NodeID(rng.Intn(g.N()))
		tgt := graph.NodeID(rng.Intn(g.N()))
		if s == tgt || res.Oracle.Dist(s, tgt) == graph.Unreachable {
			continue
		}
		pairs++
		field := dist.NewField(res.Fields.Field(tgt), tgt)
		opts := route.Options{Trace: true}
		ra, err := route.Greedy(g, table, s, tgt, res.Oracle, xrand.New(77), opts)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := route.Greedy(g, table, s, tgt, field, xrand.New(77), opts)
		if err != nil {
			t.Fatal(err)
		}
		if ra.Steps != rb.Steps || ra.Reached != rb.Reached || len(ra.Path) != len(rb.Path) {
			t.Fatalf("pair (%d,%d): oracle route %+v vs field route %+v", s, tgt, ra, rb)
		}
		for i := range ra.Path {
			if ra.Path[i] != rb.Path[i] {
				t.Fatalf("pair (%d,%d): paths diverge at hop %d", s, tgt, i)
			}
		}
	}
}
