package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/route"
	"navaug/internal/stats"
	"navaug/internal/xrand"
)

// Engine is a persistent Monte Carlo engine: a worker pool whose workers
// own reusable routing scratch, shared across many estimations.  One engine
// can serve several concurrent Estimate calls (the scenario runner submits
// cells from multiple scenarios at once); results are deterministic for a
// fixed Config regardless of the worker count or of what else runs on the
// pool, because every pair derives its RNG stream from the seed and the
// pair index alone and the batch schedule depends only on the pair's own
// trial results.
type Engine struct {
	workers   int
	tasks     chan engineTask
	wg        sync.WaitGroup
	closeOnce sync.Once
}

type engineTask struct {
	run  func(*workerState)
	done *sync.WaitGroup
}

// workerState is the per-worker reusable state: one routing Scratch per
// graph size this worker has routed on, so steady-state trials allocate
// nothing even when estimations over different graphs interleave.  The map
// is capped so a long-lived engine never retains more than a handful of
// O(n) scratches per worker; eviction picks an arbitrary entry — scratch
// identity never affects results.
type workerState struct {
	scratches map[int]*route.Scratch
}

const maxWorkerScratches = 8

func (ws *workerState) scratchFor(n int) *route.Scratch {
	s, ok := ws.scratches[n]
	if !ok {
		if len(ws.scratches) >= maxWorkerScratches {
			for k := range ws.scratches {
				delete(ws.scratches, k)
				break
			}
		}
		s = route.NewScratch(n)
		ws.scratches[n] = s
	}
	return s
}

// NewEngine starts an engine with the given pool size (<= 0 means
// GOMAXPROCS).  Callers that are done with the engine should Close it to
// release the workers.
func NewEngine(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers, tasks: make(chan engineTask)}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			ws := &workerState{scratches: make(map[int]*route.Scratch)}
			for t := range e.tasks {
				t.run(ws)
				t.done.Done()
			}
		}()
	}
	return e
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Close shuts the worker pool down.  Close is idempotent; an engine must
// not be used after Close.
func (e *Engine) Close() {
	e.closeOnce.Do(func() {
		close(e.tasks)
		e.wg.Wait()
	})
}

// pairState carries one pair's streaming estimation state across batches.
// Exactly one task touches a pairState per round, so no locking is needed;
// the round barrier publishes it to the scheduling goroutine.
type pairState struct {
	pair Pair
	rng  *xrand.RNG
	// src answers distance-to-target queries for this pair: the run's
	// shared analytic source when one is configured, otherwise the pair's
	// BFS field wrapped as a dist.Field on first use.
	src dist.Source
	// distST is dist(source, target), recorded when src is resolved.
	distST      int32
	steps       []float64
	longLinks   float64
	failed      int
	attempts    int
	unreachable bool
	done        bool
	err         error
}

// Estimate prepares scheme on g and runs the Monte Carlo estimation on this
// engine's pool.
func (e *Engine) Estimate(g *graph.Graph, scheme augment.Scheme, cfg Config) (*Estimate, error) {
	inst, err := scheme.Prepare(g)
	if err != nil {
		return nil, fmt.Errorf("sim: preparing scheme %s: %w", scheme.Name(), err)
	}
	return e.EstimateInstance(g, scheme.Name(), inst, cfg)
}

// EstimateInstance runs the Monte Carlo estimation for an already-prepared
// augmentation instance.  This is the entry point the scenario runner uses
// so that a scheme prepared once on a graph is shared by every scenario
// measuring that (graph, scheme) cell.
//
// In fixed-budget mode (Config.TargetCI == 0) every pair runs exactly
// Config.Trials trials.  In adaptive mode (TargetCI > 0) trials run in
// deterministic batches — Config.Trials at first, then doubling — until the
// 95% CI half-width of the pair's mean step count drops to
// TargetCI·max(1, mean) or the pair reaches Config.MaxTrials.
func (e *Engine) EstimateInstance(g *graph.Graph, schemeName string, inst augment.Instance, cfg Config) (*Estimate, error) {
	cfg = cfg.withDefaults()
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("sim: graph must have at least 2 nodes, got %d", n)
	}
	pairs, err := selectPairs(g, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DistSource == nil && cfg.DistFields == nil && cfg.Policy != "" {
		// Resolve the distance tier for this one estimation the way the
		// scenario runner does per graph; nil means BFS fields below.
		metric, _ := gen.MetricFor(g)
		cfg.DistSource = cfg.Policy.ResolveWith(g, metric, cfg.Workers)
	}
	var fields *dist.FieldCache
	if cfg.DistSource == nil {
		fields = cfg.DistFields
		if fields == nil {
			// A private per-run cache: bounded near the worker count because
			// each pair fetches its field once and holds it for all trials, so
			// keeping more than the concurrently-active fields would only pin
			// memory.
			fields = dist.NewFieldCache(g, e.workers+1)
		} else if fields.Graph() != g {
			return nil, fmt.Errorf("sim: Config.DistFields was built over a different graph")
		}
	}

	adaptive := cfg.TargetCI > 0
	maxTrials := cfg.MaxTrials
	if maxTrials <= 0 {
		maxTrials = 32 * cfg.Trials
	}
	states := make([]*pairState, len(pairs))
	for i, p := range pairs {
		states[i] = &pairState{
			pair: p,
			// Deterministic per-pair stream: independent of worker scheduling,
			// continued across batches so the adaptive schedule never forks it.
			rng:   xrand.New(cfg.Seed + 0x9e3779b97f4a7c15*uint64(i+1)),
			steps: make([]float64, 0, cfg.Trials),
		}
	}

	batch := cfg.Trials
	for {
		var done sync.WaitGroup
		scheduled := 0
		for _, st := range states {
			if st.done {
				continue
			}
			b := batch
			if adaptive && st.attempts+b > maxTrials {
				b = maxTrials - st.attempts
			}
			if b <= 0 {
				st.done = true
				continue
			}
			st := st
			done.Add(1)
			scheduled++
			e.tasks <- engineTask{done: &done, run: func(ws *workerState) {
				runBatch(g, inst, st, b, cfg, fields, ws.scratchFor(n))
			}}
		}
		if scheduled == 0 {
			break
		}
		done.Wait()
		// Propagate the error of the lowest-indexed failing pair so the
		// reported error does not depend on worker scheduling.
		for _, st := range states {
			if st.err != nil {
				return nil, st.err
			}
		}
		if !adaptive {
			break
		}
		for _, st := range states {
			if st.done {
				continue
			}
			if st.attempts >= maxTrials || pairConverged(st, cfg.TargetCI) {
				st.done = true
			}
		}
		batch *= 2
	}

	est := &Estimate{
		Scheme:    schemeName,
		GraphName: g.Name(),
		N:         n,
		M:         g.M(),
		PairStats: make([]PairStats, len(states)),
		Adaptive:  adaptive,
		TargetCI:  cfg.TargetCI,
	}
	pairMeans := make([]float64, 0, len(states))
	var longLinks float64
	var routed int
	for i, st := range states {
		ps := PairStats{
			Pair:        st.pair,
			Dist:        st.distST,
			Steps:       stats.NewSummary(st.steps),
			Failed:      st.failed,
			Unreachable: st.unreachable,
		}
		if len(st.steps) > 0 {
			ps.MeanLongLinks = st.longLinks / float64(len(st.steps))
		}
		est.PairStats[i] = ps
		if st.unreachable {
			// No trials ran; the pair is reported in the unreachable count
			// and excluded from every mean (a zero-step "route" between
			// components would drag the estimates toward fiction).
			est.Unreachable++
			continue
		}
		est.Samples += st.attempts
		routed += len(st.steps)
		if ps.Steps.Mean > est.GreedyDiameter {
			est.GreedyDiameter = ps.Steps.Mean
		}
		longLinks += st.longLinks
		pairMeans = append(pairMeans, ps.Steps.Mean)
	}
	// The grand mean and its CI are computed over per-pair means (pairs get
	// uniform weight even when the adaptive schedule gave them different
	// trial counts — the estimand is the same per-pair mean either way).
	grand := stats.NewSummary(pairMeans)
	est.MeanSteps = grand.Mean
	est.CI95 = grand.CI95()
	if routed > 0 {
		est.MeanLongLinks = longLinks / float64(routed)
	}
	return est, nil
}

// pairConverged reports whether a pair's mean step count is known tightly
// enough: the 95% CI half-width is within targetCI·max(1, mean).  At least
// two successful trials are required before a pair may converge.
func pairConverged(st *pairState, targetCI float64) bool {
	if len(st.steps) < 2 {
		return false
	}
	s := stats.NewSummary(st.steps)
	return s.CI95() <= targetCI*math.Max(1, s.Mean)
}

// runBatch executes b routing trials of one pair, continuing the pair's own
// RNG stream, and folds the outcomes into its state.
func runBatch(g *graph.Graph, inst augment.Instance, st *pairState, b int, cfg Config, fields *dist.FieldCache, scratch *route.Scratch) {
	if st.src == nil {
		// Resolve the pair's distance source once: the run-wide analytic
		// source when configured (O(1) memory, no field), otherwise this
		// target's BFS field from the shared cache.
		if cfg.DistSource != nil {
			st.src = cfg.DistSource
		} else {
			st.src = dist.NewField(fields.Field(st.pair.Target), st.pair.Target)
		}
		st.distST = st.src.Dist(st.pair.Source, st.pair.Target)
		if st.distST == graph.Unreachable {
			// Disconnected pair: routing is undefined, so the pair runs no
			// trials and is *counted*, not errored — churn legitimately cuts
			// graphs apart, and spinning against MaxSteps or silently
			// resampling would both misreport it (internal/graph/ops.go).
			st.unreachable = true
			st.done = true
			return
		}
	}
	opts := route.Options{MaxSteps: cfg.MaxSteps, Scratch: scratch}
	for trial := 0; trial < b; trial++ {
		var res route.Result
		var err error
		if cfg.Lookahead {
			res, err = route.GreedyWithLookahead(g, inst, st.pair.Source, st.pair.Target, st.src, st.rng, opts)
		} else {
			res, err = route.Greedy(g, inst, st.pair.Source, st.pair.Target, st.src, st.rng, opts)
		}
		if err != nil {
			st.err = err
			st.done = true
			return
		}
		st.attempts++
		if !res.Reached {
			st.failed++
			continue
		}
		st.steps = append(st.steps, float64(res.Steps))
		st.longLinks += float64(res.LongLinksUsed)
	}
}
