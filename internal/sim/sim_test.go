package sim

import (
	"math"
	"sync"
	"testing"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

func TestEstimateNoAugmentationEqualsDistance(t *testing.T) {
	g := gen.Path(200)
	cfg := Config{
		FixedPairs: []Pair{{Source: 0, Target: 199}, {Source: 10, Target: 60}},
		Trials:     3,
		Seed:       1,
	}
	est, err := EstimateGreedyDiameter(g, augment.NewNoAugmentation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.GreedyDiameter != 199 {
		t.Fatalf("greedy diameter %v, want 199", est.GreedyDiameter)
	}
	if est.MeanSteps != (199+50)/2.0 {
		t.Fatalf("mean steps %v", est.MeanSteps)
	}
	if est.MeanLongLinks != 0 {
		t.Fatal("no-augmentation run reported long links")
	}
	if est.Samples != 6 {
		t.Fatalf("samples %d", est.Samples)
	}
	for _, ps := range est.PairStats {
		if ps.Failed != 0 {
			t.Fatal("failures reported")
		}
	}
}

func TestEstimateDeterministicAcrossWorkerCounts(t *testing.T) {
	g := gen.Grid2D(20, 20)
	base := Config{Pairs: 8, Trials: 4, Seed: 99, IncludeExtremalPair: true}
	cfg1 := base
	cfg1.Workers = 1
	cfg8 := base
	cfg8.Workers = 8
	e1, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if e1.MeanSteps != e8.MeanSteps || e1.GreedyDiameter != e8.GreedyDiameter {
		t.Fatalf("results depend on worker count: %v vs %v", e1.MeanSteps, e8.MeanSteps)
	}
}

func TestEstimateDeterministicAcrossRuns(t *testing.T) {
	g := gen.Cycle(500)
	cfg := Config{Pairs: 6, Trials: 5, Seed: 1234}
	a, err := EstimateGreedyDiameter(g, augment.NewBallScheme(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateGreedyDiameter(g, augment.NewBallScheme(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanSteps != b.MeanSteps || a.GreedyDiameter != b.GreedyDiameter {
		t.Fatal("same seed produced different estimates")
	}
}

func TestEstimateDifferentSeedsDiffer(t *testing.T) {
	g := gen.Cycle(500)
	a, _ := EstimateGreedyDiameter(g, augment.NewUniformScheme(), Config{Pairs: 6, Trials: 5, Seed: 1})
	b, _ := EstimateGreedyDiameter(g, augment.NewUniformScheme(), Config{Pairs: 6, Trials: 5, Seed: 2})
	if a.MeanSteps == b.MeanSteps {
		t.Fatal("different seeds produced byte-identical estimates (suspicious)")
	}
}

func TestEstimateRejectsTinyGraph(t *testing.T) {
	if _, err := EstimateGreedyDiameter(gen.Path(1), augment.NewUniformScheme(), Config{}); err == nil {
		t.Fatal("single-node graph accepted")
	}
}

func TestEstimateRejectsBadFixedPairs(t *testing.T) {
	g := gen.Path(10)
	cfg := Config{FixedPairs: []Pair{{Source: 0, Target: 50}}}
	if _, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), cfg); err == nil {
		t.Fatal("out-of-range fixed pair accepted")
	}
}

func TestEstimateDisconnectedPairCounted(t *testing.T) {
	// A disconnected pair is an expected outcome (churned graphs fall
	// apart), so it must be counted as unreachable — not an error, which is
	// what an earlier version did and which made any churn run with a split
	// component abort wholesale.
	g := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).Build()
	cfg := Config{FixedPairs: []Pair{{Source: 0, Target: 3}}}
	est, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), cfg)
	if err != nil {
		t.Fatalf("disconnected pair errored: %v", err)
	}
	if est.Unreachable != 1 || !est.PairStats[0].Unreachable {
		t.Fatalf("disconnected pair not counted: %+v", est)
	}
}

func TestEstimatePropagatesPrepareError(t *testing.T) {
	g := gen.Cycle(10)
	bad := augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.OfPathGraph(g) // cycle is not a path -> error
	})
	if _, err := EstimateGreedyDiameter(g, bad, Config{Pairs: 2, Trials: 1}); err == nil {
		t.Fatal("Prepare error not propagated")
	}
}

func TestExtremalPairIncluded(t *testing.T) {
	g := gen.Path(300)
	cfg := Config{Pairs: 4, Trials: 1, Seed: 5, IncludeExtremalPair: true}
	est, err := EstimateGreedyDiameter(g, augment.NewNoAugmentation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// With the extremal pair included and no augmentation, the greedy
	// diameter estimate must be the true diameter 299.
	if est.GreedyDiameter != 299 {
		t.Fatalf("extremal pair missing: greedy diameter %v", est.GreedyDiameter)
	}
}

func TestUniformSchemeSqrtNShape(t *testing.T) {
	// The core sanity check behind E1: on a long cycle, uniform augmentation
	// needs far fewer steps than the diameter but far more than polylog.
	g := gen.Cycle(4000)
	cfg := Config{Pairs: 10, Trials: 4, Seed: 7, IncludeExtremalPair: true}
	est, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sqrtN := math.Sqrt(4000)
	if est.GreedyDiameter < 0.3*sqrtN {
		t.Fatalf("uniform greedy diameter %v suspiciously below √n=%v", est.GreedyDiameter, sqrtN)
	}
	if est.GreedyDiameter > 8*sqrtN {
		t.Fatalf("uniform greedy diameter %v far above O(√n)=%v", est.GreedyDiameter, sqrtN)
	}
}

func TestBallSchemeBeatsUniformOnLargePath(t *testing.T) {
	// The headline Theorem 4 effect, at small scale: on a long path the ball
	// scheme should need noticeably fewer steps than the uniform scheme.
	g := gen.Path(8000)
	cfg := Config{Pairs: 8, Trials: 3, Seed: 11, IncludeExtremalPair: true}
	ests, err := CompareSchemes(g, []augment.Scheme{augment.NewUniformScheme(), augment.NewBallScheme()}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniform, ball := ests[0], ests[1]
	if ball.GreedyDiameter >= uniform.GreedyDiameter {
		t.Fatalf("ball scheme (%v) did not beat uniform (%v) on n=8000 path",
			ball.GreedyDiameter, uniform.GreedyDiameter)
	}
}

func TestSharedDistFieldsMatchPrivate(t *testing.T) {
	// A caller-supplied field cache must leave results untouched (fields are
	// deterministic) while amortising the per-target BFS across schemes.
	g := gen.Grid2D(15, 15)
	cfg := Config{Pairs: 6, Trials: 3, Seed: 41, IncludeExtremalPair: true}
	private, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	shared := cfg
	shared.DistFields = dist.NewFieldCache(g, 0)
	cached, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), shared)
	if err != nil {
		t.Fatal(err)
	}
	if private.MeanSteps != cached.MeanSteps || private.GreedyDiameter != cached.GreedyDiameter {
		t.Fatalf("shared cache changed results: %v vs %v", private.MeanSteps, cached.MeanSteps)
	}
	if shared.DistFields.Len() == 0 {
		t.Fatal("shared cache was never used")
	}
	// A second run over the same pairs must not grow the cache.
	before := shared.DistFields.Len()
	if _, err := EstimateGreedyDiameter(g, augment.NewBallScheme(), shared); err != nil {
		t.Fatal(err)
	}
	if shared.DistFields.Len() != before {
		t.Fatalf("cache grew from %d to %d on identical pairs", before, shared.DistFields.Len())
	}
}

func TestCompareSchemesOrderAndNames(t *testing.T) {
	g := gen.Grid2D(10, 10)
	schemes := []augment.Scheme{augment.NewNoAugmentation(), augment.NewUniformScheme()}
	ests, err := CompareSchemes(g, schemes, Config{Pairs: 3, Trials: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ests) != 2 || ests[0].Scheme != "none" || ests[1].Scheme != "uniform" {
		t.Fatalf("unexpected comparison output: %+v", ests)
	}
	if ests[0].N != 100 || ests[0].GraphName == "" {
		t.Fatal("graph metadata missing")
	}
}

func TestSweepAndFit(t *testing.T) {
	sizes := []int{200, 400, 800, 1600}
	build := func(n int) (*graph.Graph, error) { return gen.Path(n), nil }
	results, err := Sweep(sizes, build, augment.NewNoAugmentation(),
		Config{Pairs: 2, Trials: 1, Seed: 17, IncludeExtremalPair: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(sizes) {
		t.Fatalf("%d results", len(results))
	}
	fit, err := FitPower(results)
	if err != nil {
		t.Fatal(err)
	}
	// Without augmentation the greedy diameter is the diameter = n-1, so the
	// fitted exponent must be essentially 1.
	if math.Abs(fit.Exponent-1) > 0.05 {
		t.Fatalf("no-augmentation sweep exponent %v, want ~1", fit.Exponent)
	}
}

func TestSweepPropagatesBuildErrors(t *testing.T) {
	build := func(n int) (*graph.Graph, error) {
		return nil, errBuild
	}
	if _, err := Sweep([]int{10}, build, augment.NewUniformScheme(), Config{}); err == nil {
		t.Fatal("build error not propagated")
	}
}

var errBuild = &buildError{}

type buildError struct{}

func (*buildError) Error() string { return "build failed" }

func TestLookaheadConfigRuns(t *testing.T) {
	g := gen.Grid2D(15, 15)
	cfg := Config{Pairs: 4, Trials: 2, Seed: 23, Lookahead: true}
	est, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 8 {
		t.Fatalf("samples %d", est.Samples)
	}
	for _, ps := range est.PairStats {
		if ps.Failed != 0 {
			t.Fatal("lookahead routing failed to reach targets")
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Pairs != 16 || c.Trials != 8 {
		t.Fatalf("defaults %+v", c)
	}
}

func TestEngineReuseAcrossEstimations(t *testing.T) {
	e := NewEngine(2)
	defer e.Close()
	cfg := Config{Pairs: 4, Trials: 2, Seed: 9, IncludeExtremalPair: true}
	small, err := e.Estimate(gen.Path(100), augment.NewUniformScheme(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	big, err := e.Estimate(gen.Grid2D(12, 12), augment.NewBallScheme(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := EstimateGreedyDiameter(gen.Path(100), augment.NewUniformScheme(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if small.MeanSteps != oneShot.MeanSteps || small.GreedyDiameter != oneShot.GreedyDiameter {
		t.Fatalf("engine reuse changed results: %v vs %v", small.MeanSteps, oneShot.MeanSteps)
	}
	if big.N != 144 {
		t.Fatalf("second estimation on reused engine broken: %+v", big)
	}
}

func TestEngineConcurrentEstimations(t *testing.T) {
	// One pool, several concurrent estimations (the scenario-runner shape):
	// results must match the serial ones exactly.
	e := NewEngine(3)
	defer e.Close()
	cfg := Config{Pairs: 5, Trials: 3, Seed: 77, IncludeExtremalPair: true}
	graphs := []*graph.Graph{gen.Path(300), gen.Cycle(300), gen.Grid2D(17, 17)}
	want := make([]*Estimate, len(graphs))
	for i, g := range graphs {
		est, err := e.Estimate(g, augment.NewUniformScheme(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = est
	}
	got := make([]*Estimate, len(graphs))
	errs := make([]error, len(graphs))
	var wg sync.WaitGroup
	for i, g := range graphs {
		wg.Add(1)
		go func(i int, g *graph.Graph) {
			defer wg.Done()
			got[i], errs[i] = e.Estimate(g, augment.NewUniformScheme(), cfg)
		}(i, g)
	}
	wg.Wait()
	for i := range graphs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got[i].MeanSteps != want[i].MeanSteps || got[i].GreedyDiameter != want[i].GreedyDiameter {
			t.Fatalf("concurrent estimation %d diverged: %v vs %v", i, got[i].MeanSteps, want[i].MeanSteps)
		}
	}
}

func TestAdaptiveStopsEarlyOnZeroVariance(t *testing.T) {
	// Without augmentation every trial of a pair takes exactly dist(s,t)
	// steps, so the CI collapses after the first batch and the adaptive
	// schedule must stop at the base budget instead of the cap.
	g := gen.Path(200)
	cfg := Config{
		FixedPairs: []Pair{{Source: 0, Target: 199}, {Source: 10, Target: 60}},
		Trials:     3,
		MaxTrials:  96,
		TargetCI:   0.05,
		Seed:       1,
	}
	est, err := EstimateGreedyDiameter(g, augment.NewNoAugmentation(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Adaptive || est.TargetCI != 0.05 {
		t.Fatalf("adaptive metadata missing: %+v", est)
	}
	if est.Samples != 6 {
		t.Fatalf("zero-variance pairs should stop at 2 pairs x 3 trials, spent %d", est.Samples)
	}
	if est.GreedyDiameter != 199 {
		t.Fatalf("greedy diameter %v, want 199", est.GreedyDiameter)
	}
}

func TestAdaptiveSpendsMoreOnNoisyPairs(t *testing.T) {
	g := gen.Cycle(2000)
	base := Config{Pairs: 6, Trials: 4, Seed: 3, IncludeExtremalPair: true}
	fixed, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), base)
	if err != nil {
		t.Fatal(err)
	}
	tight := base
	tight.TargetCI = 0.05
	tight.MaxTrials = 256
	adaptive, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), tight)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Samples <= fixed.Samples {
		t.Fatalf("tight CI target should need more trials than the %d fixed ones, got %d",
			fixed.Samples, adaptive.Samples)
	}
	for _, ps := range adaptive.PairStats {
		ci := ps.Steps.CI95()
		if ps.Steps.Count < 256 && ci > 0.05*math.Max(1, ps.Steps.Mean)+1e-9 {
			t.Fatalf("pair %+v stopped at %d trials with CI %v above target", ps.Pair, ps.Steps.Count, ci)
		}
	}
}

func TestAdaptiveDeterministicAcrossWorkerCounts(t *testing.T) {
	g := gen.Grid2D(20, 20)
	base := Config{Pairs: 6, Trials: 3, Seed: 99, IncludeExtremalPair: true, TargetCI: 0.1, MaxTrials: 48}
	cfg1 := base
	cfg1.Workers = 1
	cfg7 := base
	cfg7.Workers = 7
	e1, err := EstimateGreedyDiameter(g, augment.NewBallScheme(), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	e7, err := EstimateGreedyDiameter(g, augment.NewBallScheme(), cfg7)
	if err != nil {
		t.Fatal(err)
	}
	if e1.MeanSteps != e7.MeanSteps || e1.GreedyDiameter != e7.GreedyDiameter || e1.Samples != e7.Samples {
		t.Fatalf("adaptive results depend on worker count: %v/%d vs %v/%d",
			e1.MeanSteps, e1.Samples, e7.MeanSteps, e7.Samples)
	}
}

// TestEngineScratchReuseAcrossManySizes exercises the per-worker scratch
// map past its eviction cap: one long-lived engine serves estimations over
// more distinct graph sizes than maxWorkerScratches, interleaved and
// repeated so evicted sizes are revisited.  Scratch identity (fresh,
// reused, or rebuilt after eviction) must never affect results — every
// estimate must equal the one a fresh transient engine computes.
func TestEngineScratchReuseAcrossManySizes(t *testing.T) {
	e := NewEngine(1) // one worker so every size shares a single scratch map
	defer e.Close()
	cfg := Config{Pairs: 3, Trials: 2, Seed: 5, IncludeExtremalPair: true}
	sizes := []int{50, 64, 80, 100, 128, 150, 180, 200, 230, 260}
	if len(sizes) <= maxWorkerScratches {
		t.Fatalf("test needs more sizes (%d) than the scratch cap (%d)", len(sizes), maxWorkerScratches)
	}
	want := make([]*Estimate, len(sizes))
	for i, n := range sizes {
		est, err := EstimateGreedyDiameter(gen.Cycle(n), augment.NewUniformScheme(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = est
	}
	// Two passes: the second revisits sizes whose scratches were evicted
	// during the first.
	for pass := 0; pass < 2; pass++ {
		for i, n := range sizes {
			got, err := e.Estimate(gen.Cycle(n), augment.NewUniformScheme(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.MeanSteps != want[i].MeanSteps || got.GreedyDiameter != want[i].GreedyDiameter {
				t.Fatalf("pass %d size %d: scratch reuse changed results: %v vs %v",
					pass, n, got.MeanSteps, want[i].MeanSteps)
			}
		}
	}
}

// TestDistSourceMatchesFieldBacked: routing through an analytic dist.Source
// must reproduce the field-backed estimates exactly, pair stats included.
func TestDistSourceMatchesFieldBacked(t *testing.T) {
	g := gen.Torus2D(16, 16)
	base := Config{Pairs: 5, Trials: 3, Seed: 21, IncludeExtremalPair: true}
	fieldBacked, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), base)
	if err != nil {
		t.Fatal(err)
	}
	withSource := base
	withSource.DistSource = gen.Torus2DMetric(16, 16)
	analytic, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), withSource)
	if err != nil {
		t.Fatal(err)
	}
	if fieldBacked.MeanSteps != analytic.MeanSteps || fieldBacked.GreedyDiameter != analytic.GreedyDiameter {
		t.Fatalf("analytic source changed results: %v vs %v", analytic.MeanSteps, fieldBacked.MeanSteps)
	}
	for i := range fieldBacked.PairStats {
		fp, ap := fieldBacked.PairStats[i], analytic.PairStats[i]
		if fp.Dist != ap.Dist || fp.Steps.Mean != ap.Steps.Mean {
			t.Fatalf("pair %d diverged between source kinds: %+v vs %+v", i, fp, ap)
		}
	}
}

// TestEstimatePolicyEquivalence pins sim.Config.Policy: the same estimation
// through per-target BFS fields, the 2-hop-cover oracle, the auto resolver
// and (on a family with a closed form) the analytic metric must agree on
// every number — all tiers are exact, so the policy is a pure cost knob.
func TestEstimatePolicyEquivalence(t *testing.T) {
	rng := xrand.New(31)
	graphs := []*graph.Graph{
		gen.PowerLawAttachment(600, 2, rng), // no analytic metric: twohop vs fields
		gen.Torus2D(16, 16),                 // analytic metric available
	}
	for _, g := range graphs {
		var want *Estimate
		for _, policy := range []dist.SourcePolicy{dist.PolicyField, dist.PolicyTwoHop, dist.PolicyAuto, dist.PolicyAnalytic} {
			cfg := Config{Pairs: 6, Trials: 3, Seed: 9, IncludeExtremalPair: true, Policy: policy}
			est, err := EstimateGreedyDiameter(g, augment.NewUniformScheme(), cfg)
			if err != nil {
				t.Fatalf("%v under %q: %v", g, policy, err)
			}
			if want == nil {
				want = est
				continue
			}
			if est.GreedyDiameter != want.GreedyDiameter || est.MeanSteps != want.MeanSteps ||
				est.CI95 != want.CI95 || est.MeanLongLinks != want.MeanLongLinks || est.Samples != want.Samples {
				t.Fatalf("%v: estimate under %q diverges from the field-backed estimate:\n%+v\nvs\n%+v",
					g, policy, est, want)
			}
			for i := range want.PairStats {
				if est.PairStats[i].Dist != want.PairStats[i].Dist {
					t.Fatalf("%v: pair %d distance %d under %q, want %d",
						g, i, est.PairStats[i].Dist, policy, want.PairStats[i].Dist)
				}
			}
		}
	}
}

// TestDisconnectedPairCountedNotErrored pins the disconnection contract
// (internal/graph/ops.go): a sampled pair whose endpoints sit in different
// components runs no trials, is reported in the Unreachable counters, and
// never errors the estimation or skews the means of the reachable pairs.
func TestDisconnectedPairCountedNotErrored(t *testing.T) {
	// Two components: a path 0..4 and a path 5..9.
	b := graph.NewBuilder(10)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
		b.AddEdge(graph.NodeID(5+i), graph.NodeID(6+i))
	}
	g := b.Build()
	cfg := Config{
		FixedPairs: []Pair{
			{Source: 0, Target: 4}, // reachable, distance 4
			{Source: 0, Target: 7}, // cross-component
			{Source: 5, Target: 9}, // reachable, distance 4
		},
		Trials: 2,
		Seed:   3,
	}
	est, err := EstimateGreedyDiameter(g, augment.NewNoAugmentation(), cfg)
	if err != nil {
		t.Fatalf("disconnected pair errored the run: %v", err)
	}
	if est.Unreachable != 1 {
		t.Fatalf("Unreachable = %d, want 1", est.Unreachable)
	}
	ps := est.PairStats[1]
	if !ps.Unreachable || ps.Dist != graph.Unreachable || ps.Steps.Count != 0 || ps.Failed != 0 {
		t.Fatalf("unreachable pair misreported: %+v", ps)
	}
	// The reachable pairs' statistics are untouched by the dead pair.
	if est.GreedyDiameter != 4 || est.MeanSteps != 4 {
		t.Fatalf("means skewed by unreachable pair: gd=%v mean=%v", est.GreedyDiameter, est.MeanSteps)
	}
	if est.Samples != 4 {
		t.Fatalf("Samples = %d, want 4 (2 trials x 2 reachable pairs)", est.Samples)
	}
	for _, p := range []PairStats{est.PairStats[0], est.PairStats[2]} {
		if p.Unreachable || p.Steps.Mean != 4 {
			t.Fatalf("reachable pair misreported: %+v", p)
		}
	}
}
