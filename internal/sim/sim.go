// Package sim is the Monte Carlo engine that estimates greedy diameters of
// augmented graphs.  It samples source/target pairs, redraws the
// augmentation several times per pair, routes greedily, and aggregates the
// step counts into an Estimate.
//
// The workhorse is the persistent Engine (see engine.go): a reusable worker
// pool that serves many estimations — fixed-budget or streaming/adaptive —
// and can be shared by concurrently-running scenarios.  The free functions
// in this file are convenience wrappers that spin up a transient engine for
// one-shot callers; results are identical either way because every (pair,
// trial) block derives its RNG stream from the seed and the pair index
// alone, never from worker scheduling.
package sim

import (
	"fmt"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/stats"
	"navaug/internal/xrand"
)

// Pair is a source/target pair for routing.
type Pair struct {
	Source, Target graph.NodeID
}

// Config tunes an estimation run.
type Config struct {
	// Pairs is the number of source/target pairs to sample (default 16).
	// When FixedPairs is non-empty it is ignored.
	Pairs int
	// Trials is the number of independent augmentation draws (and routings)
	// per pair (default 8).  In adaptive mode (TargetCI > 0) it is the size
	// of the first batch and the minimum per-pair budget.
	Trials int
	// Seed drives all sampling; runs with equal seeds produce equal results.
	Seed uint64
	// Workers is the worker pool size used by the transient-engine wrappers
	// (default GOMAXPROCS).  Engine methods ignore it — the engine owns its
	// pool.  The worker count never affects results.
	Workers int
	// MaxSteps caps a single routing walk (default: route's own default).
	MaxSteps int
	// FixedPairs, when non-empty, replaces random pair sampling entirely.
	FixedPairs []Pair
	// IncludeExtremalPair adds a two-sweep (approximately diametral) pair to
	// the sampled pairs, which sharpens the greedy-diameter estimate since
	// the diameter is a maximum over pairs.  Default true when sampling.
	IncludeExtremalPair bool
	// Lookahead routes with one hop of neighbour-of-neighbour lookahead
	// (extension experiment) instead of plain greedy routing.
	Lookahead bool
	// DistSource, when non-nil, supplies O(1) point-to-point distances for
	// greedy routing (an analytic closed-form metric of a structured graph
	// family, see gen.MetricFor).  It takes precedence over DistFields and
	// avoids materialising any per-target distance field, so memory per
	// query stays O(1) even at n >= 10^6.  The source must agree with BFS
	// hop distances on the graph; results are identical either way.
	DistSource dist.Source
	// DistFields, when non-nil, supplies the per-target distance fields
	// greedy routing steers by.  It must be a cache over the same graph.
	// When nil (and DistSource is nil) a private cache is created per
	// estimation run; the scenario runner and CompareSchemes share one
	// cache per graph, so each target's BFS is paid once rather than once
	// per scheme.  Fields are deterministic, so sharing never affects
	// results.
	DistFields *dist.FieldCache
	// Policy resolves the distance source when neither DistSource nor
	// DistFields is supplied: the engine applies it to the graph (looking
	// up the family's analytic metric via gen.MetricFor) exactly as the
	// scenario runner does, so one-shot estimations honour the same
	// -oracle knob.  Empty keeps the legacy behaviour (per-target BFS
	// fields).  The policy never affects results, only cost: every tier
	// answers exact BFS distances.
	Policy dist.SourcePolicy
	// TargetCI, when positive, switches the run to streaming adaptive
	// estimation: each pair keeps running deterministic trial batches until
	// the 95% CI half-width of its mean step count is at most
	// TargetCI·max(1, mean), or the pair has spent MaxTrials trials.
	TargetCI float64
	// MaxTrials caps the per-pair budget in adaptive mode
	// (default 32·Trials).  Ignored in fixed-budget mode.
	MaxTrials int
}

func (c Config) withDefaults() Config {
	if c.Pairs <= 0 {
		c.Pairs = 16
	}
	if c.Trials <= 0 {
		c.Trials = 8
	}
	return c
}

// PairStats aggregates the routing trials of one source/target pair.
type PairStats struct {
	Pair          Pair
	Dist          int32 // graph distance between the endpoints
	Steps         stats.Summary
	MeanLongLinks float64
	Failed        int // trials that hit the step cap (should be zero)
	// Unreachable marks a pair whose target is in a different component
	// (Dist == graph.Unreachable).  Such pairs run no trials and are
	// reported, never silently resampled and never an error: disconnection
	// is an expected outcome on churned graphs (see the contract in
	// internal/graph/ops.go).
	Unreachable bool
}

// Estimate is the outcome of a greedy-diameter estimation.
type Estimate struct {
	Scheme    string
	GraphName string
	N, M      int
	PairStats []PairStats
	// MeanSteps is the grand mean over per-pair means.
	MeanSteps float64
	// GreedyDiameter is the Monte Carlo estimate of diam(G, φ): the maximum
	// over sampled pairs of the per-pair mean number of steps.
	GreedyDiameter float64
	// CI95 is the half-width of the 95% confidence interval of MeanSteps.
	CI95 float64
	// MeanLongLinks is the average number of long-range hops per route.
	MeanLongLinks float64
	// Samples is the total number of routed trials across all pairs.
	Samples int
	// Unreachable counts sampled pairs whose endpoints are disconnected.
	// They contribute to no mean: routing is only defined within a
	// component, and the count itself is the degradation signal.
	Unreachable int
	// Adaptive records whether the streaming adaptive schedule was used,
	// and TargetCI the relative CI target it ran against.
	Adaptive bool
	TargetCI float64
}

// EstimateGreedyDiameter runs the Monte Carlo estimation of the greedy
// diameter of g under the given scheme on a transient engine.
func EstimateGreedyDiameter(g *graph.Graph, scheme augment.Scheme, cfg Config) (*Estimate, error) {
	e := NewEngine(cfg.Workers)
	defer e.Close()
	return e.Estimate(g, scheme, cfg)
}

// selectPairs picks the source/target pairs for an estimation run.
func selectPairs(g *graph.Graph, cfg Config) ([]Pair, error) {
	if len(cfg.FixedPairs) > 0 {
		for _, p := range cfg.FixedPairs {
			if int(p.Source) < 0 || int(p.Source) >= g.N() || int(p.Target) < 0 || int(p.Target) >= g.N() {
				return nil, fmt.Errorf("sim: fixed pair (%d,%d) out of range", p.Source, p.Target)
			}
		}
		return append([]Pair(nil), cfg.FixedPairs...), nil
	}
	rng := xrand.New(cfg.Seed ^ 0x5eed5eed5eed5eed)
	pairs := make([]Pair, 0, cfg.Pairs)
	if cfg.IncludeExtremalPair && cfg.Pairs >= 2 {
		s, t, _ := dist.ExtremalPair(g)
		pairs = append(pairs, Pair{Source: s, Target: t})
	}
	const maxResample = 64
	for len(pairs) < cfg.Pairs {
		var p Pair
		ok := false
		for attempt := 0; attempt < maxResample; attempt++ {
			s := graph.NodeID(rng.Intn(g.N()))
			t := graph.NodeID(rng.Intn(g.N()))
			if s == t {
				continue
			}
			p = Pair{Source: s, Target: t}
			ok = true
			break
		}
		if !ok {
			return nil, fmt.Errorf("sim: could not sample distinct source/target pairs")
		}
		pairs = append(pairs, p)
	}
	return pairs, nil
}

// CompareSchemes estimates the greedy diameter of g under each scheme with
// the same configuration (and therefore the same sampled pairs), returning
// estimates in the order the schemes were given.  One engine and one
// distance-field cache are shared across the schemes.
func CompareSchemes(g *graph.Graph, schemes []augment.Scheme, cfg Config) ([]*Estimate, error) {
	e := NewEngine(cfg.Workers)
	defer e.Close()
	if cfg.DistSource == nil && cfg.DistFields == nil {
		cfg.DistFields = dist.NewFieldCache(g, 0)
	}
	out := make([]*Estimate, 0, len(schemes))
	for _, s := range schemes {
		est, err := e.Estimate(g, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: scheme %s: %w", s.Name(), err)
		}
		out = append(out, est)
	}
	return out, nil
}

// SweepResult is one point of a size sweep.
type SweepResult struct {
	N        int
	Estimate *Estimate
}

// Sweep estimates the greedy diameter of scheme over a family of graphs
// produced by build for each size.  The per-size seeds are derived from
// cfg.Seed so the whole sweep is reproducible.
func Sweep(sizes []int, build func(n int) (*graph.Graph, error), scheme augment.Scheme, cfg Config) ([]SweepResult, error) {
	e := NewEngine(cfg.Workers)
	defer e.Close()
	out := make([]SweepResult, 0, len(sizes))
	for i, n := range sizes {
		g, err := build(n)
		if err != nil {
			return nil, fmt.Errorf("sim: building graph for n=%d: %w", n, err)
		}
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		// Every size is a different graph, so a caller-supplied field cache
		// must not leak across sizes; each estimation builds its own.
		c.DistFields = nil
		est, err := e.Estimate(g, scheme, c)
		if err != nil {
			return nil, fmt.Errorf("sim: n=%d: %w", n, err)
		}
		out = append(out, SweepResult{N: g.N(), Estimate: est})
	}
	return out, nil
}

// FitPower fits greedy diameter ≈ C·n^e over the sweep results.
func FitPower(results []SweepResult) (stats.PowerFit, error) {
	x := make([]float64, 0, len(results))
	y := make([]float64, 0, len(results))
	for _, r := range results {
		x = append(x, float64(r.N))
		y = append(y, r.Estimate.GreedyDiameter)
	}
	return stats.PowerLaw(x, y)
}
