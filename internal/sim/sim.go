// Package sim is the Monte Carlo engine that estimates greedy diameters of
// augmented graphs.  It samples source/target pairs, redraws the
// augmentation several times per pair, routes greedily, and aggregates the
// step counts into an Estimate.  Work is spread over a worker pool; results
// are deterministic for a fixed Config.Seed regardless of the number of
// workers because every (pair, trial) block derives its RNG stream from the
// seed and the pair index alone.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/route"
	"navaug/internal/stats"
	"navaug/internal/xrand"
)

// Pair is a source/target pair for routing.
type Pair struct {
	Source, Target graph.NodeID
}

// Config tunes an estimation run.
type Config struct {
	// Pairs is the number of source/target pairs to sample (default 16).
	// When FixedPairs is non-empty it is ignored.
	Pairs int
	// Trials is the number of independent augmentation draws (and routings)
	// per pair (default 8).
	Trials int
	// Seed drives all sampling; runs with equal seeds produce equal results.
	Seed uint64
	// Workers is the worker pool size (default GOMAXPROCS).
	Workers int
	// MaxSteps caps a single routing walk (default: route's own default).
	MaxSteps int
	// FixedPairs, when non-empty, replaces random pair sampling entirely.
	FixedPairs []Pair
	// IncludeExtremalPair adds a two-sweep (approximately diametral) pair to
	// the sampled pairs, which sharpens the greedy-diameter estimate since
	// the diameter is a maximum over pairs.  Default true when sampling.
	IncludeExtremalPair bool
	// Lookahead routes with one hop of neighbour-of-neighbour lookahead
	// (extension experiment) instead of plain greedy routing.
	Lookahead bool
	// DistFields, when non-nil, supplies the per-target distance fields
	// greedy routing steers by.  It must be a cache over the same graph.
	// When nil a private cache is created per estimation run; CompareSchemes
	// shares one cache across its schemes (same graph, same pairs), so each
	// target's BFS is paid once rather than once per scheme.  Fields are
	// deterministic, so sharing never affects results.
	DistFields *dist.FieldCache
}

func (c Config) withDefaults() Config {
	if c.Pairs <= 0 {
		c.Pairs = 16
	}
	if c.Trials <= 0 {
		c.Trials = 8
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// PairStats aggregates the routing trials of one source/target pair.
type PairStats struct {
	Pair          Pair
	Dist          int32 // graph distance between the endpoints
	Steps         stats.Summary
	MeanLongLinks float64
	Failed        int // trials that hit the step cap (should be zero)
}

// Estimate is the outcome of EstimateGreedyDiameter.
type Estimate struct {
	Scheme    string
	GraphName string
	N, M      int
	PairStats []PairStats
	// MeanSteps is the grand mean over every routed trial.
	MeanSteps float64
	// GreedyDiameter is the Monte Carlo estimate of diam(G, φ): the maximum
	// over sampled pairs of the per-pair mean number of steps.
	GreedyDiameter float64
	// CI95 is the half-width of the 95% confidence interval of MeanSteps.
	CI95 float64
	// MeanLongLinks is the average number of long-range hops per route.
	MeanLongLinks float64
	// Samples is the total number of routed trials.
	Samples int
}

// EstimateGreedyDiameter runs the Monte Carlo estimation of the greedy
// diameter of g under the given scheme.
func EstimateGreedyDiameter(g *graph.Graph, scheme augment.Scheme, cfg Config) (*Estimate, error) {
	cfg = cfg.withDefaults()
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("sim: graph must have at least 2 nodes, got %d", n)
	}
	inst, err := scheme.Prepare(g)
	if err != nil {
		return nil, fmt.Errorf("sim: preparing scheme %s: %w", scheme.Name(), err)
	}
	pairs, err := selectPairs(g, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DistFields == nil {
		// A private per-run cache: bounded near the worker count because each
		// pair fetches its field once and holds it for all trials, so keeping
		// more than the concurrently-active fields would only pin memory.
		cfg.DistFields = dist.NewFieldCache(g, cfg.Workers+1)
	} else if cfg.DistFields.Graph() != g {
		return nil, fmt.Errorf("sim: Config.DistFields was built over a different graph")
	}

	results := make([]PairStats, len(pairs))
	tasks := make(chan int)
	var wg sync.WaitGroup
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }

	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One trial scratch per worker, reused across every pair and
			// trial this worker routes: no per-trial allocation.
			scratch := route.NewScratch(n)
			for idx := range tasks {
				ps, err := runPair(g, inst, pairs[idx], idx, cfg, scratch)
				if err != nil {
					fail(err)
					continue
				}
				results[idx] = ps
			}
		}()
	}
	for idx := range pairs {
		tasks <- idx
	}
	close(tasks)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	est := &Estimate{
		Scheme:    scheme.Name(),
		GraphName: g.Name(),
		N:         n,
		M:         g.M(),
		PairStats: results,
	}
	pairMeans := make([]float64, 0, len(results))
	var longLinks float64
	for _, ps := range results {
		if ps.Steps.Mean > est.GreedyDiameter {
			est.GreedyDiameter = ps.Steps.Mean
		}
		longLinks += ps.MeanLongLinks * float64(ps.Steps.Count)
		pairMeans = append(pairMeans, ps.Steps.Mean)
	}
	// The grand mean and its CI are computed over per-pair means (every pair
	// runs the same number of trials, so the weighting is uniform).
	grand := stats.NewSummary(pairMeans)
	est.MeanSteps = grand.Mean
	est.CI95 = grand.CI95()
	est.Samples = len(pairs) * cfg.Trials
	if est.Samples > 0 {
		est.MeanLongLinks = longLinks / float64(est.Samples)
	}
	return est, nil
}

// selectPairs picks the source/target pairs for an estimation run.
func selectPairs(g *graph.Graph, cfg Config) ([]Pair, error) {
	if len(cfg.FixedPairs) > 0 {
		for _, p := range cfg.FixedPairs {
			if int(p.Source) < 0 || int(p.Source) >= g.N() || int(p.Target) < 0 || int(p.Target) >= g.N() {
				return nil, fmt.Errorf("sim: fixed pair (%d,%d) out of range", p.Source, p.Target)
			}
		}
		return append([]Pair(nil), cfg.FixedPairs...), nil
	}
	rng := xrand.New(cfg.Seed ^ 0x5eed5eed5eed5eed)
	pairs := make([]Pair, 0, cfg.Pairs)
	if cfg.IncludeExtremalPair && cfg.Pairs >= 2 {
		s, t, _ := dist.ExtremalPair(g)
		pairs = append(pairs, Pair{Source: s, Target: t})
	}
	const maxResample = 64
	for len(pairs) < cfg.Pairs {
		var p Pair
		ok := false
		for attempt := 0; attempt < maxResample; attempt++ {
			s := graph.NodeID(rng.Intn(g.N()))
			t := graph.NodeID(rng.Intn(g.N()))
			if s == t {
				continue
			}
			p = Pair{Source: s, Target: t}
			ok = true
			break
		}
		if !ok {
			return nil, fmt.Errorf("sim: could not sample distinct source/target pairs")
		}
		pairs = append(pairs, p)
	}
	return pairs, nil
}

// runPair executes all trials of one pair, routing through the calling
// worker's reusable scratch.
func runPair(g *graph.Graph, inst augment.Instance, p Pair, pairIdx int, cfg Config, scratch *route.Scratch) (PairStats, error) {
	distToTarget := cfg.DistFields.Field(p.Target)
	if distToTarget[p.Source] == graph.Unreachable {
		return PairStats{}, fmt.Errorf("sim: pair (%d,%d) is disconnected", p.Source, p.Target)
	}
	// Deterministic per-pair stream: independent of worker scheduling.
	rng := xrand.New(cfg.Seed + 0x9e3779b97f4a7c15*uint64(pairIdx+1))
	steps := make([]float64, 0, cfg.Trials)
	longLinks := 0.0
	failed := 0
	opts := route.Options{MaxSteps: cfg.MaxSteps, Scratch: scratch}
	for trial := 0; trial < cfg.Trials; trial++ {
		var res route.Result
		var err error
		if cfg.Lookahead {
			res, err = route.GreedyWithLookahead(g, inst, p.Source, p.Target, distToTarget, rng, opts)
		} else {
			res, err = route.Greedy(g, inst, p.Source, p.Target, distToTarget, rng, opts)
		}
		if err != nil {
			return PairStats{}, err
		}
		if !res.Reached {
			failed++
			continue
		}
		steps = append(steps, float64(res.Steps))
		longLinks += float64(res.LongLinksUsed)
	}
	ps := PairStats{Pair: p, Dist: distToTarget[p.Source], Steps: stats.NewSummary(steps), Failed: failed}
	if len(steps) > 0 {
		ps.MeanLongLinks = longLinks / float64(len(steps))
	}
	return ps, nil
}

// CompareSchemes estimates the greedy diameter of g under each scheme with
// the same configuration (and therefore the same sampled pairs), returning
// estimates in the order the schemes were given.
func CompareSchemes(g *graph.Graph, schemes []augment.Scheme, cfg Config) ([]*Estimate, error) {
	if cfg.DistFields == nil {
		cfg.DistFields = dist.NewFieldCache(g, 0)
	}
	out := make([]*Estimate, 0, len(schemes))
	for _, s := range schemes {
		est, err := EstimateGreedyDiameter(g, s, cfg)
		if err != nil {
			return nil, fmt.Errorf("sim: scheme %s: %w", s.Name(), err)
		}
		out = append(out, est)
	}
	return out, nil
}

// SweepResult is one point of a size sweep.
type SweepResult struct {
	N        int
	Estimate *Estimate
}

// Sweep estimates the greedy diameter of scheme over a family of graphs
// produced by build for each size.  The per-size seeds are derived from
// cfg.Seed so the whole sweep is reproducible.
func Sweep(sizes []int, build func(n int) (*graph.Graph, error), scheme augment.Scheme, cfg Config) ([]SweepResult, error) {
	out := make([]SweepResult, 0, len(sizes))
	for i, n := range sizes {
		g, err := build(n)
		if err != nil {
			return nil, fmt.Errorf("sim: building graph for n=%d: %w", n, err)
		}
		c := cfg
		c.Seed = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		// Every size is a different graph, so a caller-supplied field cache
		// must not leak across sizes; each estimation builds its own.
		c.DistFields = nil
		est, err := EstimateGreedyDiameter(g, scheme, c)
		if err != nil {
			return nil, fmt.Errorf("sim: n=%d: %w", n, err)
		}
		out = append(out, SweepResult{N: g.N(), Estimate: est})
	}
	return out, nil
}

// FitPower fits greedy diameter ≈ C·n^e over the sweep results.
func FitPower(results []SweepResult) (stats.PowerFit, error) {
	x := make([]float64, 0, len(results))
	y := make([]float64, 0, len(results))
	for _, r := range results {
		x = append(x, float64(r.N))
		y = append(y, r.Estimate.GreedyDiameter)
	}
	return stats.PowerLaw(x, y)
}
