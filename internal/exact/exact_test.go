package exact

import (
	"math"
	"testing"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

func mustDistributional(t *testing.T, scheme augment.Scheme, g *graph.Graph) augment.Distributional {
	t.Helper()
	inst, err := scheme.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := inst.(augment.Distributional)
	if !ok {
		t.Fatalf("%s does not implement Distributional", scheme.Name())
	}
	return d
}

func TestExpectedStepsNoAugmentationEqualsDistance(t *testing.T) {
	g := gen.Grid2D(6, 6)
	inst := mustDistributional(t, augment.NewNoAugmentation(), g)
	target := graph.NodeID(35)
	exp, err := ExpectedSteps(g, inst, target)
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(target)
	for v := range exp {
		if math.Abs(exp[v]-float64(dist[v])) > 1e-12 {
			t.Fatalf("node %d: exact %v, distance %d", v, exp[v], dist[v])
		}
	}
}

// Hand-computed example: path 0-1-2, target 2, uniform scheme.
// E[T(2)] = 0, E[T(1)] = 1 (its neighbour 2 is the target; no contact can
// beat distance 0), and from node 0 the contact is 2 with probability 1/3
// (one step) and otherwise the walk goes through node 1 (two steps), so
// E[T(0)] = 1/3·1 + 2/3·2 = 5/3.
func TestExpectedStepsHandComputedUniformPath3(t *testing.T) {
	g := gen.Path(3)
	inst := mustDistributional(t, augment.NewUniformScheme(), g)
	exp, err := ExpectedSteps(g, inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if exp[2] != 0 {
		t.Fatalf("E[T(2)] = %v", exp[2])
	}
	if math.Abs(exp[1]-1) > 1e-12 {
		t.Fatalf("E[T(1)] = %v, want 1", exp[1])
	}
	if math.Abs(exp[0]-5.0/3.0) > 1e-12 {
		t.Fatalf("E[T(0)] = %v, want 5/3", exp[0])
	}
}

func TestExpectedStepsBoundedByDistance(t *testing.T) {
	rng := xrand.New(3)
	g := gen.ConnectedGNP(120, 0.03, rng)
	for _, scheme := range []augment.Scheme{
		augment.NewUniformScheme(),
		augment.NewBallScheme(),
		augment.NewHarmonicScheme(1),
	} {
		inst := mustDistributional(t, scheme, g)
		target := graph.NodeID(17)
		exp, err := ExpectedSteps(g, inst, target)
		if err != nil {
			t.Fatal(err)
		}
		dist := g.BFS(target)
		for v := range exp {
			if dist[v] == graph.Unreachable {
				continue
			}
			if exp[v] > float64(dist[v])+1e-9 {
				t.Fatalf("%s: E[T(%d)] = %v exceeds distance %d", scheme.Name(), v, exp[v], dist[v])
			}
			if exp[v] < 0 {
				t.Fatalf("%s: negative expectation at %d", scheme.Name(), v)
			}
		}
	}
}

func TestExpectedStepsUnreachableMarked(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).Build()
	inst := mustDistributional(t, augment.NewNoAugmentation(), g)
	exp, err := ExpectedSteps(g, inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if exp[2] != -1 || exp[3] != -1 {
		t.Fatal("unreachable nodes should be marked with -1")
	}
}

func TestExpectedStepsInputValidation(t *testing.T) {
	g := gen.Path(5)
	inst := mustDistributional(t, augment.NewUniformScheme(), g)
	if _, err := ExpectedSteps(g, inst, 9); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	empty := graph.NewBuilder(0).Build()
	if _, err := ExpectedSteps(empty, inst, 0); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestPairExpectation(t *testing.T) {
	g := gen.Path(50)
	inst := mustDistributional(t, augment.NewNoAugmentation(), g)
	e, err := PairExpectation(g, inst, 0, 49)
	if err != nil {
		t.Fatal(err)
	}
	if e != 49 {
		t.Fatalf("pair expectation %v, want 49", e)
	}
	dg := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).Build()
	dinst := mustDistributional(t, augment.NewNoAugmentation(), dg)
	if _, err := PairExpectation(dg, dinst, 0, 3); err == nil {
		t.Fatal("disconnected pair accepted")
	}
}

// The Monte Carlo estimator must agree with the exact DP on fixed pairs.
func TestMonteCarloMatchesExact(t *testing.T) {
	g := gen.Path(200)
	schemes := []augment.Scheme{
		augment.NewUniformScheme(),
		augment.NewBallScheme(),
		augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
			return decomp.OfPathGraph(g)
		}),
	}
	for _, scheme := range schemes {
		inst := mustDistributional(t, scheme, g)
		want, err := PairExpectation(g, inst, 0, 199)
		if err != nil {
			t.Fatal(err)
		}
		est, err := sim.EstimateGreedyDiameter(g, scheme, sim.Config{
			FixedPairs: []sim.Pair{{Source: 0, Target: 199}},
			Trials:     3000,
			Seed:       11,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := est.MeanSteps
		// 3000 trials: allow a 6% relative band plus a small absolute slack.
		if math.Abs(got-want) > 0.06*want+1.5 {
			t.Fatalf("%s: Monte Carlo %v vs exact %v", scheme.Name(), got, want)
		}
	}
}

func TestGreedyDiameterExactSmallPath(t *testing.T) {
	g := gen.Path(40)
	res, err := SchemeGreedyDiameter(g, augment.NewNoAugmentation())
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedyDiameter != 39 {
		t.Fatalf("exact greedy diameter %v, want 39", res.GreedyDiameter)
	}
	if res.ArgSource == res.ArgTarget {
		t.Fatal("argmax pair degenerate")
	}
	// The extremal pair of an unaugmented path is one of the two endpoints
	// pairs.
	d := res.ArgSource - res.ArgTarget
	if d != 39 && d != -39 {
		t.Fatalf("argmax pair (%d,%d) is not an endpoint pair", res.ArgSource, res.ArgTarget)
	}
	if res.MeanExpectation <= 0 || res.MeanExpectation >= 39 {
		t.Fatalf("mean expectation %v out of range", res.MeanExpectation)
	}
}

func TestGreedyDiameterUniformBelowDiameter(t *testing.T) {
	g := gen.Path(120)
	res, err := SchemeGreedyDiameter(g, augment.NewUniformScheme())
	if err != nil {
		t.Fatal(err)
	}
	if res.GreedyDiameter >= 119 {
		t.Fatalf("uniform augmentation did not help at all: %v", res.GreedyDiameter)
	}
	// Peleg's bound: at most ~3√n.
	if res.GreedyDiameter > 3*math.Sqrt(120)+5 {
		t.Fatalf("uniform greedy diameter %v above the 3√n bound", res.GreedyDiameter)
	}
}

func TestBallBeatsUniformExactlyOnLongPair(t *testing.T) {
	// Exact computation of the end-to-end pair expectation on a path long
	// enough for the Theorem 4 asymptotics to have kicked in: the ball
	// scheme must strictly beat the uniform scheme.
	g := gen.Path(4096)
	uniInst := mustDistributional(t, augment.NewUniformScheme(), g)
	ballInst := mustDistributional(t, augment.NewBallScheme(), g)
	uni, err := PairExpectation(g, uniInst, 0, 4095)
	if err != nil {
		t.Fatal(err)
	}
	ball, err := PairExpectation(g, ballInst, 0, 4095)
	if err != nil {
		t.Fatal(err)
	}
	if ball >= uni {
		t.Fatalf("exact: ball %v not below uniform %v on the (0,4095) pair", ball, uni)
	}
	// And both must be dramatic improvements over plain walking.
	if uni > 3*math.Sqrt(4096)+10 {
		t.Fatalf("uniform pair expectation %v above the 3√n bound", uni)
	}
}

func TestGreedyDiameterRequiresConnected(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).Build()
	if _, err := SchemeGreedyDiameter(g, augment.NewUniformScheme()); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestSchemeGreedyDiameterRejectsNonDistributional(t *testing.T) {
	g := gen.Path(10)
	opaque := opaqueScheme{}
	if _, err := SchemeGreedyDiameter(g, opaque); err == nil {
		t.Fatal("non-distributional scheme accepted")
	}
}

// opaqueScheme is an Instance without ContactDistribution, used to test the
// graceful failure path.
type opaqueScheme struct{}

func (opaqueScheme) Name() string { return "opaque" }
func (opaqueScheme) Prepare(g *graph.Graph) (augment.Instance, error) {
	return augment.InstanceFunc(func(u graph.NodeID, rng *xrand.RNG) graph.NodeID { return u }), nil
}

func BenchmarkExpectedStepsUniformPath(b *testing.B) {
	g := gen.Path(2000)
	inst, _ := augment.NewUniformScheme().Prepare(g)
	d := inst.(augment.Distributional)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExpectedSteps(g, d, 1999); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactGreedyDiameterSmallGrid(b *testing.B) {
	g := gen.Grid2D(12, 12)
	inst, _ := augment.NewUniformScheme().Prepare(g)
	d := inst.(augment.Distributional)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyDiameter(g, d); err != nil {
			b.Fatal(err)
		}
	}
}
