// Package exact computes exact expected greedy-routing step counts and
// exact greedy diameters for augmented graphs whose schemes expose their
// contact distributions (augment.Distributional).
//
// The computation exploits the same structural fact the lazy sampler relies
// on: greedy routing strictly decreases the distance to the target, so a
// node is visited at most once and the choice made at a node depends only on
// that node's own (independently drawn) long-range contact.  The expected
// number of steps to the target therefore satisfies an acyclic recurrence
//
//	E[T(t)]   = 0
//	E[T(u)]   = 1 + Σ_v φ_u(v) · E[T(step(u, v))]
//
// where step(u, v) is the neighbour of u (among the local neighbours and the
// contact v) closest to the target, and nodes can be processed in order of
// increasing distance to t.  One target costs O(n·(n + Δ)) time where Δ is
// the maximum degree; the exact greedy diameter over all pairs costs n times
// that, so it is intended for small and medium instances and, above all, for
// validating the Monte Carlo estimator.
package exact

import (
	"fmt"
	"sort"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// ExpectedSteps returns, for every source u, the exact expected number of
// greedy-routing steps from u to target under the given distributional
// augmentation.  Unreachable sources get -1.
func ExpectedSteps(g *graph.Graph, inst augment.Distributional, target graph.NodeID) ([]float64, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("exact: empty graph")
	}
	if int(target) < 0 || int(target) >= n {
		return nil, fmt.Errorf("exact: target %d out of range [0,%d)", target, n)
	}
	distToTarget := g.BFS(target)

	// Process nodes by increasing distance to the target so that every
	// step(u, v) has already been solved when u is processed.
	order := make([]graph.NodeID, 0, n)
	for v := 0; v < n; v++ {
		if distToTarget[v] != graph.Unreachable {
			order = append(order, graph.NodeID(v))
		}
	}
	sort.Slice(order, func(i, j int) bool { return distToTarget[order[i]] < distToTarget[order[j]] })

	expected := make([]float64, n)
	for i := range expected {
		expected[i] = -1
	}
	for _, u := range order {
		if u == target {
			expected[u] = 0
			continue
		}
		// The local part of the greedy step does not depend on the contact:
		// precompute the best local neighbour once.
		localBest, localDist := bestLocalNeighbour(g, u, distToTarget)
		phi := inst.ContactDistribution(u)
		if len(phi) != n {
			return nil, fmt.Errorf("exact: distribution of node %d has length %d, want %d", u, len(phi), n)
		}
		e := 1.0
		for v, p := range phi {
			if p == 0 {
				continue
			}
			next := localBest
			if dv := distToTarget[v]; dv != graph.Unreachable && dv < localDist {
				next = graph.NodeID(v)
			}
			e += p * expected[next]
		}
		expected[u] = e
	}
	return expected, nil
}

// bestLocalNeighbour returns the neighbour of u closest to the target using
// the same tie-breaking rule as route.Greedy (smallest node id), together
// with its distance.  Greedy routing always has an improving local move, so
// the result is well defined for u != target in a connected component.
func bestLocalNeighbour(g *graph.Graph, u graph.NodeID, distToTarget []int32) (graph.NodeID, int32) {
	best := u
	bestDist := distToTarget[u]
	for _, v := range g.Neighbors(u) {
		d := distToTarget[v]
		if d == graph.Unreachable {
			continue
		}
		if d < bestDist || (d == bestDist && v < best) {
			best = v
			bestDist = d
		}
	}
	return best, bestDist
}

// PairExpectation returns the exact expected number of greedy steps from s
// to t.
func PairExpectation(g *graph.Graph, inst augment.Distributional, s, t graph.NodeID) (float64, error) {
	exp, err := ExpectedSteps(g, inst, t)
	if err != nil {
		return 0, err
	}
	if int(s) < 0 || int(s) >= len(exp) {
		return 0, fmt.Errorf("exact: source %d out of range", s)
	}
	if exp[s] < 0 {
		return 0, fmt.Errorf("exact: target %d unreachable from source %d", t, s)
	}
	return exp[s], nil
}

// Result is the outcome of a GreedyDiameter computation.
type Result struct {
	// GreedyDiameter is max over ordered pairs (s, t) of E[steps s→t].
	GreedyDiameter float64
	// ArgSource and ArgTarget realise the maximum.
	ArgSource, ArgTarget graph.NodeID
	// MeanExpectation is the average of E[steps s→t] over all ordered pairs
	// with s ≠ t.
	MeanExpectation float64
}

// GreedyDiameter computes the exact greedy diameter of (G, φ): the maximum
// over all ordered source/target pairs of the expected number of greedy
// steps.  It requires a connected graph and costs one ExpectedSteps solve
// per target, so keep n in the low thousands.
func GreedyDiameter(g *graph.Graph, inst augment.Distributional) (Result, error) {
	n := g.N()
	if n == 0 {
		return Result{}, fmt.Errorf("exact: empty graph")
	}
	if !g.IsConnected() {
		return Result{}, fmt.Errorf("exact: greedy diameter requires a connected graph")
	}
	// The contact distributions do not depend on the target, so compute them
	// once and reuse them across the n single-target solves.
	cached := &cachedDistributions{inst: inst, dists: make([][]float64, n)}
	res := Result{}
	totalPairs := 0
	sum := 0.0
	for t := graph.NodeID(0); int(t) < n; t++ {
		exp, err := ExpectedSteps(g, cached, t)
		if err != nil {
			return Result{}, err
		}
		for s := graph.NodeID(0); int(s) < n; s++ {
			if s == t {
				continue
			}
			e := exp[s]
			sum += e
			totalPairs++
			if e > res.GreedyDiameter {
				res.GreedyDiameter = e
				res.ArgSource = s
				res.ArgTarget = t
			}
		}
	}
	if totalPairs > 0 {
		res.MeanExpectation = sum / float64(totalPairs)
	}
	return res, nil
}

// cachedDistributions memoises ContactDistribution calls; GreedyDiameter
// uses it because the distributions are target-independent.
type cachedDistributions struct {
	inst  augment.Distributional
	dists [][]float64
}

// Contact delegates to the wrapped instance (unused by the DP but required
// by the Distributional interface).
func (c *cachedDistributions) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	return c.inst.Contact(u, rng)
}

// ContactDistribution returns the memoised distribution of u.
func (c *cachedDistributions) ContactDistribution(u graph.NodeID) []float64 {
	if c.dists[u] == nil {
		c.dists[u] = c.inst.ContactDistribution(u)
	}
	return c.dists[u]
}

// SchemeGreedyDiameter is a convenience wrapper: it prepares the scheme on g
// and computes the exact greedy diameter, failing if the scheme does not
// expose contact distributions.
func SchemeGreedyDiameter(g *graph.Graph, scheme augment.Scheme) (Result, error) {
	inst, err := scheme.Prepare(g)
	if err != nil {
		return Result{}, err
	}
	d, ok := inst.(augment.Distributional)
	if !ok {
		return Result{}, fmt.Errorf("exact: scheme %s does not expose contact distributions", scheme.Name())
	}
	return GreedyDiameter(g, d)
}
