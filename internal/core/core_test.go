package core

import (
	"strings"
	"testing"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/sim"
)

func TestAugmentAndRoute(t *testing.T) {
	g := gen.Grid2D(12, 12)
	ag, err := Augment(g, augment.NewBallScheme())
	if err != nil {
		t.Fatal(err)
	}
	if ag.Graph() != g {
		t.Fatal("Graph() does not return the underlying graph")
	}
	if ag.SchemeName() != "ball" {
		t.Fatalf("scheme name %q", ag.SchemeName())
	}
	if ag.Instance() == nil {
		t.Fatal("Instance() is nil")
	}
	res, err := ag.Route(0, 143, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("routing failed")
	}
	if len(res.Path) != res.Steps+1 {
		t.Fatalf("trace length %d for %d steps", len(res.Path), res.Steps)
	}
}

func TestAugmentPropagatesErrors(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if _, err := Augment(g, augment.NewUniformScheme()); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestEstimateGreedyDiameterViaFacade(t *testing.T) {
	g := gen.Path(500)
	ag, err := Augment(g, augment.NewUniformScheme())
	if err != nil {
		t.Fatal(err)
	}
	est, err := ag.EstimateGreedyDiameter(sim.Config{Pairs: 4, Trials: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 8 || est.GreedyDiameter <= 0 {
		t.Fatalf("estimate %+v", est)
	}
}

func TestSchemeByNameAllKnown(t *testing.T) {
	names := []string{"none", "uniform", "ball", "theorem2", "theorem2-tree", "theorem2-bfs", "harmonic", "harmonic:2"}
	for _, name := range names {
		s, err := SchemeByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s == nil {
			t.Fatalf("%s: nil scheme", name)
		}
	}
	if _, err := SchemeByName("bogus"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := SchemeByName("harmonic:abc"); err == nil {
		t.Fatal("bad harmonic exponent accepted")
	}
	if len(SchemeNames()) == 0 {
		t.Fatal("SchemeNames empty")
	}
}

func TestSchemeByNameCaseInsensitive(t *testing.T) {
	if _, err := SchemeByName("  Uniform "); err != nil {
		t.Fatal(err)
	}
}

func TestHarmonicSchemeExponentParsed(t *testing.T) {
	s, err := SchemeByName("harmonic:2.5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.Name(), "2.5") {
		t.Fatalf("exponent lost: %s", s.Name())
	}
}

func TestGraphByNameAllFamilies(t *testing.T) {
	for _, fam := range GraphFamilies() {
		g, err := GraphByName(fam, 60, 42)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.N() < 2 {
			t.Fatalf("%s: too small (%d nodes)", fam, g.N())
		}
		if !g.IsConnected() {
			t.Fatalf("%s: not connected", fam)
		}
	}
}

func TestGraphByNameErrors(t *testing.T) {
	if _, err := GraphByName("nope", 10, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := GraphByName("path", 0, 1); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestGraphByNameDeterministicForSeed(t *testing.T) {
	a, err := GraphByName("random-tree", 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GraphByName("random-tree", 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different edges")
		}
	}
}

func TestGraphByNameSizesApproximate(t *testing.T) {
	g, err := GraphByName("grid", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 31x31 = 961
	if g.N() != 961 {
		t.Fatalf("grid size %d, want 961", g.N())
	}
	h, err := GraphByName("hypercube", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 512 {
		t.Fatalf("hypercube size %d, want 512", h.N())
	}
}

func TestEndToEndTheorem2OnTreeViaNames(t *testing.T) {
	g, err := GraphByName("binary-tree", 1023, 3)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := SchemeByName("theorem2-tree")
	if err != nil {
		t.Fatal(err)
	}
	ag, err := Augment(g, scheme)
	if err != nil {
		t.Fatal(err)
	}
	est, err := ag.EstimateGreedyDiameter(sim.Config{Pairs: 6, Trials: 4, Seed: 9, IncludeExtremalPair: true})
	if err != nil {
		t.Fatal(err)
	}
	// Polylog regime: on a 1023-node tree the greedy diameter should be well
	// below the ~64 steps a √n-scheme would need only if... keep the check
	// loose: below half the diameter-based worst case and above zero.
	if est.GreedyDiameter <= 0 || est.GreedyDiameter > 200 {
		t.Fatalf("suspicious greedy diameter %v", est.GreedyDiameter)
	}
}
