// Package core is the high-level façade of the library: it ties together
// graphs, augmentation schemes, greedy routing and the Monte Carlo engine
// behind a small API that the examples and command-line tools use.
//
// The three central operations are:
//
//   - Augment: bind a Scheme to a Graph, obtaining an AugmentedGraph;
//   - AugmentedGraph.Route: run one greedy routing trial between two nodes;
//   - AugmentedGraph.EstimateGreedyDiameter: Monte Carlo estimate of
//     diam(G, φ), the quantity all of the paper's theorems bound.
//
// The package also exposes a registry of the paper's schemes by name and a
// registry of graph families by name so tools can be driven from strings.
package core

import (
	"fmt"
	"sort"
	"strings"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/dist"
	"navaug/internal/experiments"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/route"
	"navaug/internal/scenario"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

// AugmentedGraph is a graph together with a prepared augmentation scheme —
// the pair (G, φ) of the paper.
type AugmentedGraph struct {
	g      *graph.Graph
	scheme augment.Scheme
	inst   augment.Instance
}

// Augment prepares scheme on g and returns the augmented graph.
func Augment(g *graph.Graph, scheme augment.Scheme) (*AugmentedGraph, error) {
	inst, err := scheme.Prepare(g)
	if err != nil {
		return nil, fmt.Errorf("core: preparing %s on %v: %w", scheme.Name(), g, err)
	}
	return &AugmentedGraph{g: g, scheme: scheme, inst: inst}, nil
}

// Graph returns the underlying graph.
func (a *AugmentedGraph) Graph() *graph.Graph { return a.g }

// SchemeName returns the name of the augmentation scheme in use.
func (a *AugmentedGraph) SchemeName() string { return a.scheme.Name() }

// Instance exposes the prepared augmentation instance (for advanced use such
// as eagerly sampling a full set of long-range links).
func (a *AugmentedGraph) Instance() augment.Instance { return a.inst }

// Route runs one greedy routing trial from s to t with a fresh draw of the
// long-range links along the way, returning the route result (with trace).
func (a *AugmentedGraph) Route(s, t graph.NodeID, seed uint64) (route.Result, error) {
	src := dist.NewField(a.g.BFS(t), t)
	rng := xrand.New(seed)
	return route.Greedy(a.g, a.inst, s, t, src, rng, route.Options{Trace: true})
}

// EstimateGreedyDiameter estimates diam(G, φ) by Monte Carlo sampling.
func (a *AugmentedGraph) EstimateGreedyDiameter(cfg sim.Config) (*sim.Estimate, error) {
	return sim.EstimateGreedyDiameter(a.g, a.scheme, cfg)
}

// RunSuite runs the selected experiments (nil or empty ids = all) on one
// shared scenario runner — graphs, distance fields and prepared schemes are
// built once and shared across every experiment of the run, and cells
// execute concurrently on one persistent engine — and returns the full
// report (manifest + per-experiment tables).
//
// The returned error is the first experiment failure in selection order;
// the report is still returned with per-experiment Error fields filled, so
// callers can render partial results.
func RunSuite(ids []string, cfg scenario.Config) (*report.Report, error) {
	var specs []scenario.Spec
	if len(ids) == 0 {
		specs = experiments.All()
	} else {
		for _, id := range ids {
			spec, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return nil, fmt.Errorf("core: unknown experiment %q (known: %s)",
					id, strings.Join(experiments.IDs(), ", "))
			}
			specs = append(specs, spec)
		}
	}
	cfg = cfg.WithDefaults()
	runner := scenario.NewRunner(cfg)
	defer runner.Close()
	results := runner.RunAll(specs)

	rep := &report.Report{
		Manifest: report.Manifest{
			Tool:           "navsim",
			FormatVersion:  report.FormatVersion,
			Seed:           cfg.Seed,
			Scale:          cfg.Scale,
			Precision:      cfg.Precision,
			PairsOverride:  cfg.Pairs,
			TrialsOverride: cfg.Trials,
			MaxTrials:      cfg.MaxTrials,
		},
	}
	var firstErr error
	for _, res := range results {
		rep.Manifest.Experiments = append(rep.Manifest.Experiments, res.Spec.ID)
		er := report.ExperimentResult{
			ID:     res.Spec.ID,
			Title:  res.Spec.Title,
			Claim:  res.Spec.Claim,
			Tables: res.Tables,
		}
		if res.Err != nil {
			er.Error = res.Err.Error()
			if firstErr == nil {
				firstErr = res.Err
			}
		}
		rep.Experiments = append(rep.Experiments, er)
	}
	return rep, firstErr
}

// SchemeByName instantiates one of the paper's schemes from a string
// identifier.  Recognised names:
//
//	none            no augmentation (baseline)
//	uniform         uniform scheme (Peleg, Theorem 1 upper bound)
//	ball            Theorem 4 ball scheme (the Õ(n^{1/3}) construction)
//	harmonic:<r>    distance-harmonic scheme with exponent r (Kleinberg baseline)
//	theorem2        Theorem 2 (M, L) scheme with automatic decomposition choice
//	theorem2-tree   Theorem 2 scheme wired to the centroid tree decomposition
//	theorem2-bfs    Theorem 2 scheme wired to the BFS-layer decomposition
func SchemeByName(name string) (augment.Scheme, error) {
	lower := strings.ToLower(strings.TrimSpace(name))
	switch {
	case lower == "none":
		return augment.NewNoAugmentation(), nil
	case lower == "uniform":
		return augment.NewUniformScheme(), nil
	case lower == "ball":
		return augment.NewBallScheme(), nil
	case lower == "theorem2":
		return augment.NewTheorem2Scheme(nil), nil
	case lower == "theorem2-tree":
		return augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
			return decomp.TreeCentroid(g)
		}), nil
	case lower == "theorem2-bfs":
		return augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
			return decomp.BFSLayers(g, 0)
		}), nil
	case strings.HasPrefix(lower, "harmonic:"):
		var r float64
		if _, err := fmt.Sscanf(lower, "harmonic:%g", &r); err != nil {
			return nil, fmt.Errorf("core: bad harmonic exponent in %q", name)
		}
		return augment.NewHarmonicScheme(r), nil
	case lower == "harmonic":
		return augment.NewHarmonicScheme(1), nil
	default:
		return nil, fmt.Errorf("core: unknown scheme %q (known: %s)", name, strings.Join(SchemeNames(), ", "))
	}
}

// SchemeNames lists the scheme identifiers understood by SchemeByName.
func SchemeNames() []string {
	return []string{"none", "uniform", "ball", "harmonic:<r>", "theorem2", "theorem2-tree", "theorem2-bfs"}
}

// GraphByName builds a graph of a named family at (approximately) the given
// size.  Recognised families:
//
//	path, cycle, grid, grid3d, torus, hypercube, complete, star,
//	binary-tree, balanced-tree, random-tree, attachment-tree, caterpillar,
//	spider, comb, interval, gnp, regular, watts-strogatz, powerlaw,
//	powerlaw-tree, lollipop, barbell
func GraphByName(family string, n int, seed uint64) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: graph size must be >= 1, got %d", n)
	}
	rng := xrand.New(seed)
	switch strings.ToLower(strings.TrimSpace(family)) {
	case "path":
		return gen.Path(n), nil
	case "cycle":
		return gen.Cycle(maxInt(n, 3)), nil
	case "grid":
		side := intSqrt(n)
		return gen.Grid2D(side, side), nil
	case "grid3d":
		side := intCbrt(n)
		return gen.Grid3D(side, side, side), nil
	case "torus":
		side := maxInt(intSqrt(n), 3)
		return gen.Torus2D(side, side), nil
	case "hypercube":
		d := 0
		for 1<<uint(d+1) <= n {
			d++
		}
		return gen.Hypercube(d), nil
	case "complete":
		return gen.Complete(n), nil
	case "star":
		return gen.Star(n), nil
	case "binary-tree", "bintree":
		return gen.BinaryTree(n), nil
	case "balanced-tree":
		depth := 0
		for count := 1; count < n; count = count*3 + 1 {
			depth++
		}
		return gen.BalancedTree(3, depth), nil
	case "random-tree", "rtree":
		return gen.RandomTree(n, rng), nil
	case "attachment-tree", "ratree":
		return gen.RandomAttachmentTree(n, rng), nil
	case "caterpillar":
		spine := maxInt(n/4, 1)
		return gen.Caterpillar(spine, 3), nil
	case "spider":
		legLen := maxInt((n-1)/8, 1)
		return gen.Spider(8, legLen), nil
	case "comb":
		spine := maxInt(n/4, 1)
		return gen.Comb(spine, 3), nil
	case "interval":
		g, _ := gen.RandomIntervalGraph(n, 3.0, rng)
		return g, nil
	case "gnp":
		return gen.ConnectedGNP(n, 3.0/float64(n), rng), nil
	case "regular":
		d := 4
		if n <= d {
			d = maxInt(n-1, 1)
		}
		if n*d%2 != 0 {
			d++
		}
		return gen.RandomRegular(n, d, rng)
	case "powerlaw", "plaw":
		if n < 3 {
			return nil, fmt.Errorf("core: powerlaw needs n >= 3")
		}
		return gen.PowerLawAttachment(n, 2, rng), nil
	case "powerlaw-tree", "plaw-tree":
		if n < 2 {
			return nil, fmt.Errorf("core: powerlaw-tree needs n >= 2")
		}
		return gen.PowerLawAttachment(n, 1, rng), nil
	case "watts-strogatz", "ws":
		if n < 5 {
			return nil, fmt.Errorf("core: watts-strogatz needs n >= 5")
		}
		return gen.WattsStrogatz(n, 2, 0.1, rng), nil
	case "lollipop":
		clique := maxInt(intSqrt(n), 2)
		return gen.Lollipop(clique, n-clique), nil
	case "barbell":
		clique := maxInt(intSqrt(n), 2)
		return gen.Barbell(clique, maxInt(n-2*clique, 0)), nil
	default:
		return nil, fmt.Errorf("core: unknown graph family %q (known: %s)", family, strings.Join(GraphFamilies(), ", "))
	}
}

// GraphFamilies lists the family names understood by GraphByName.
func GraphFamilies() []string {
	fams := []string{
		"path", "cycle", "grid", "grid3d", "torus", "hypercube", "complete", "star",
		"binary-tree", "balanced-tree", "random-tree", "attachment-tree", "caterpillar",
		"spider", "comb", "interval", "gnp", "regular", "watts-strogatz", "powerlaw",
		"powerlaw-tree", "lollipop", "barbell",
	}
	sort.Strings(fams)
	return fams
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

func intCbrt(n int) int {
	s := 1
	for (s+1)*(s+1)*(s+1) <= n {
		s++
	}
	return s
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
