package core

import (
	"fmt"
	"io"
	"time"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph/gen"
	"navaug/internal/scenario"
	"navaug/internal/snapshot"
	"navaug/internal/xrand"
)

// SnapshotOptions configures BuildSnapshot.
type SnapshotOptions struct {
	// Family and N name the graph instance (see GraphByName).
	Family string
	N      int
	// Seed is the run seed; the graph is built with the exact per-(family,
	// n) derivation a scenario run at this seed uses (scenario.GraphSeed),
	// so the snapshot freezes the same instance `navsim run` measures.
	Seed uint64
	// Schemes are the augmentation schemes to prepare and freeze
	// (SchemeByName names); empty means ["ball"].
	Schemes []string
	// Draws is the number of frozen full contact tables per scheme
	// (default 1).  Serving picks a table per request via the draw
	// parameter.
	Draws int
	// Oracle picks which O(1) distance tier the snapshot packs.  It reuses
	// dist.SourcePolicy with one serving-minded deviation: under
	// PolicyAuto a metric-less graph gets a 2-hop build at the auto label
	// budget at *every* size, not only above dist.TwoHopAutoMinNodes — a
	// snapshot is built once and served many times, so the build is worth
	// it even where a single estimation run would prefer BFS fields.  A
	// budget-aborted build leaves the snapshot with no O(1) tier (the
	// serve layer then falls back to a bounded per-target field cache).
	Oracle dist.SourcePolicy
	// Progress, when non-nil, receives one line per build stage.
	Progress io.Writer
}

// SnapshotBuildStats records where a snapshot build spent its time — the
// rebuild cost a loaded snapshot avoids.
type SnapshotBuildStats struct {
	GraphBuild     time.Duration
	OracleBuild    time.Duration
	SchemesPrepare time.Duration
	TwoHopAvgLabel float64
	TwoHopMaxLabel int
}

// Rebuild is the total one-off cost the snapshot amortises away.
func (s *SnapshotBuildStats) Rebuild() time.Duration {
	return s.GraphBuild + s.OracleBuild + s.SchemesPrepare
}

// BuildSnapshot builds every artefact a `navsim serve` instance needs —
// graph, O(1) distance tier, frozen augmentation tables — and packs them
// into a Snapshot.  It is the write side of the routing-as-a-service
// pipeline: everything heavy happens here, exactly once, so that loading
// the snapshot is pure validation.
func BuildSnapshot(opts SnapshotOptions) (*snapshot.Snapshot, *SnapshotBuildStats, error) {
	if opts.N < 2 {
		return nil, nil, fmt.Errorf("core: snapshot graph needs n >= 2, got %d", opts.N)
	}
	if opts.Draws <= 0 {
		opts.Draws = 1
	}
	if opts.Draws > snapshot.MaxDraws {
		return nil, nil, fmt.Errorf("core: %d draws exceed the snapshot cap %d", opts.Draws, snapshot.MaxDraws)
	}
	if len(opts.Schemes) == 0 {
		opts.Schemes = []string{"ball"}
	}
	if opts.Oracle == "" {
		opts.Oracle = dist.PolicyAuto
	}
	progress := func(format string, args ...any) {
		if opts.Progress != nil {
			fmt.Fprintf(opts.Progress, "[snapshot] "+format+"\n", args...)
		}
	}
	stats := &SnapshotBuildStats{}

	start := time.Now()
	g, err := GraphByName(opts.Family, opts.N, scenario.GraphSeed(opts.Seed, opts.Family, opts.N))
	if err != nil {
		return nil, nil, err
	}
	stats.GraphBuild = time.Since(start)
	progress("built %v in %.2fs", g, stats.GraphBuild.Seconds())

	metric, hasMetric := gen.MetricFor(g)
	var th *dist.TwoHop
	start = time.Now()
	switch opts.Oracle {
	case dist.PolicyField:
		// Pack no O(1) tier; serve falls back to BFS fields.
	case dist.PolicyAnalytic:
		if !hasMetric {
			return nil, nil, fmt.Errorf("core: family %s has no analytic metric to pack (oracle %q)", opts.Family, opts.Oracle)
		}
	case dist.PolicyTwoHop:
		th = dist.NewTwoHop(g)
	case dist.PolicyTwoHopPacked:
		th = dist.NewTwoHopWith(g, dist.TwoHopOptions{Packed: true})
	case dist.PolicyAuto:
		if !hasMetric {
			th = dist.NewTwoHopWith(g, dist.TwoHopOptions{MaxAvgLabel: dist.TwoHopAutoMaxAvgLabel, Packed: true})
			if th == nil {
				progress("2-hop build aborted at the %g avg-label budget; packing no O(1) tier", float64(dist.TwoHopAutoMaxAvgLabel))
			}
		}
	default:
		return nil, nil, fmt.Errorf("core: unknown oracle policy %q", opts.Oracle)
	}
	stats.OracleBuild = time.Since(start)
	if th != nil {
		stats.TwoHopAvgLabel = th.AvgLabel()
		stats.TwoHopMaxLabel = th.MaxLabel()
		kind := "raw"
		if th.Packed() {
			kind = "packed"
		}
		progress("2-hop labels built in %.2fs (avg %.1f, max %d, %.1f MB %s)",
			stats.OracleBuild.Seconds(), th.AvgLabel(), th.MaxLabel(), float64(th.MemoryBytes())/1e6, kind)
	} else if hasMetric && opts.Oracle != dist.PolicyField {
		progress("analytic metric %q packed (no label build needed)", g.Name())
	}

	snap := &snapshot.Snapshot{
		Meta: snapshot.Meta{
			Tool:          "navsim",
			FormatVersion: snapshot.FormatVersion,
			Family:        opts.Family,
			N:             g.N(),
			M:             g.M(),
			Seed:          opts.Seed,
			Oracle:        string(opts.Oracle),
		},
		Graph:  g,
		TwoHop: th,
	}
	if hasMetric && opts.Oracle != dist.PolicyField {
		snap.MetricName = g.Name()
		snap.Metric = metric
	}

	start = time.Now()
	for _, name := range opts.Schemes {
		scheme, err := SchemeByName(name)
		if err != nil {
			return nil, nil, err
		}
		inst, err := scheme.Prepare(g)
		if err != nil {
			return nil, nil, fmt.Errorf("core: preparing scheme %s for snapshot: %w", scheme.Name(), err)
		}
		// Per-(scheme, draw) seed stream, derived from the run seed and
		// stable identifiers only, so the frozen tables are reproducible.
		base := opts.Seed ^ scenario.Hash64("snapshot|"+scheme.Name())
		table := snapshot.SchemeTable{Name: scheme.Name(), Seed: base}
		for k := 0; k < opts.Draws; k++ {
			rng := xrand.New(base + uint64(k)*0x9e3779b97f4a7c15)
			table.Draws = append(table.Draws, augment.SampleAll(inst, g.N(), rng))
		}
		snap.Schemes = append(snap.Schemes, table)
		progress("froze scheme %s (%d draw(s))", scheme.Name(), opts.Draws)
	}
	stats.SchemesPrepare = time.Since(start)
	return snap, stats, nil
}
