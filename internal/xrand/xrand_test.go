package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide too often: %d/100", same)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(99)
	b := New(99)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Reseed does not reproduce New")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Split()
	c2 := parent.Split()
	equal := 0
	for i := 0; i < 200; i++ {
		if c1.Uint64() == c2.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("sibling streams overlap: %d/200 equal outputs", equal)
	}
}

func TestSplitNCount(t *testing.T) {
	kids := New(3).SplitN(8)
	if len(kids) != 8 {
		t.Fatalf("SplitN returned %d generators", len(kids))
	}
	seen := map[uint64]bool{}
	for _, k := range kids {
		v := k.Uint64()
		if seen[v] {
			t.Fatal("two children produced identical first output")
		}
		seen[v] = true
	}
}

func TestIntnRange(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowersOfTwo(t *testing.T) {
	r := New(13)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestInt31nRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		if v := r.Int31n(1000); v < 0 || v >= 1000 {
			t.Fatalf("Int31n out of range: %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(23)
	sum := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean far from 0.5: %v", mean)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(29)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expect := float64(draws) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 0.1*expect {
			t.Fatalf("bucket %d count %d deviates >10%% from %v", i, c, expect)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(31)
	check := func(n uint8) bool {
		p := r.Perm(int(n))
		if len(p) != int(n) {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerm32IsPermutation(t *testing.T) {
	r := New(37)
	p := r.Perm32(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in Perm32")
		}
		seen[v] = true
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(41)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatal("Shuffle changed the multiset")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(43)
	n := 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean too far from 0: %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance too far from 1: %v", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(47)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / float64(n); math.Abs(mean-1) > 0.03 {
		t.Fatalf("exponential mean too far from 1: %v", mean)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(53)
	p := 0.25
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	want := (1 - p) / p // expected number of failures before first success
	if mean := sum / float64(n); math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean %v, want about %v", mean, want)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Geometric(0)
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(59)
	weights := []float64{1, 2, 3, 4}
	counts := make([]int, len(weights))
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.WeightedChoice(weights)]++
	}
	total := 10.0
	for i, w := range weights {
		got := float64(counts[i]) / float64(n)
		want := w / total
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("weight %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestWeightedChoicePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestSampleDistinct(t *testing.T) {
	r := New(61)
	check := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw) % (n + 1)
		s := r.Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleCoverage(t *testing.T) {
	// Sampling 1 of n repeatedly should hit every element eventually.
	r := New(67)
	hit := make([]bool, 10)
	for i := 0; i < 2000; i++ {
		hit[r.Sample(10, 1)[0]] = true
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("element %d never sampled", i)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(71)
	trues := 0
	n := 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)/float64(n)-0.5) > 0.01 {
		t.Fatalf("Bool imbalance: %d/%d", trues, n)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000)
	}
	_ = sink
}
