// Package xrand provides a small, fast, deterministic and splittable
// pseudo-random number generator used throughout the simulator.
//
// The generator is xoshiro256** seeded through SplitMix64.  It is not
// cryptographically secure; it is designed for reproducible Monte Carlo
// experiments: a simulation seeded with a fixed 64-bit seed produces the
// same results regardless of the number of worker goroutines, because each
// logical stream is derived with Split rather than by sharing one generator.
package xrand

import "math"

// RNG is a xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct instances with New or Split.
// An RNG is not safe for concurrent use; derive one per goroutine.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the SplitMix64 state and returns the next output.
// It is used to expand seeds into full xoshiro state vectors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
// Distinct seeds yield independent-looking streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator state as if it had been created by New(seed).
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// xoshiro must not start in the all-zero state.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x853c49e6748fea9b
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a new generator from this one.  The child stream is
// statistically independent of the parent's subsequent output, which makes
// Split suitable for handing one RNG to each worker goroutine.
func (r *RNG) Split() *RNG {
	// Mix two outputs through SplitMix64 so that consecutive splits land in
	// well-separated regions of the state space.
	seed := r.Uint64() ^ rotl(r.Uint64(), 33) ^ 0xa3ec647659359acd
	return New(seed)
}

// SplitN derives n independent child generators.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n).  It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n).  It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int31n called with non-positive n")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n).  It panics if n == 0.
// Lemire-style rejection keeps the result unbiased.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	threshold := -n % n // (2^64 - n) mod n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniform random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Perm32 returns a uniform random permutation of [0, n) as int32 values.
func (r *RNG) Perm32(n int) []int32 {
	p := make([]int32, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = int32(i)
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Box–Muller, polar form).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Geometric returns a geometric variate with success probability p,
// counting the number of failures before the first success (support {0,1,...}).
// It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric needs 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// WeightedChoice returns an index drawn proportionally to the non-negative
// weights.  It panics if the weights are empty or sum to zero.
func (r *RNG) WeightedChoice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("xrand: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("xrand: WeightedChoice needs positive total weight")
	}
	x := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Sample picks k distinct integers uniformly from [0, n) in O(k) expected
// time using Floyd's algorithm.  The result order is unspecified.
// It panics if k > n or either argument is negative.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("xrand: Sample needs 0 <= k <= n")
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
