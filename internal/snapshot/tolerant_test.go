package snapshot_test

// Tolerant-read quarantine: a snapshot with a damaged *optional* section
// (metric, twohop, scheme) still loads under ReadBytesTolerant — minus
// exactly the damaged artefact, named in Snapshot.Quarantined — while the
// strict reader keeps rejecting the same bytes.  Damage to the mandatory
// meta/graph sections fails both readers.  This is the load-path half of
// the serving stack's degradation ladder.

import (
	"reflect"
	"testing"

	"navaug/internal/dist"
	"navaug/internal/snapshot"
)

// corrupted returns a copy of b with the named section's payload damaged.
func corrupted(t *testing.T, b []byte, kind string) []byte {
	t.Helper()
	c := append([]byte(nil), b...)
	if err := snapshot.CorruptSection(c, kind); err != nil {
		t.Fatalf("CorruptSection(%s): %v", kind, err)
	}
	return c
}

func TestTolerantReadQuarantinesTwoHop(t *testing.T) {
	fresh, b := buildCase(t, "ratree", 256, dist.PolicyTwoHop, "ball", "uniform")
	bad := corrupted(t, b, "twohop")

	if _, err := snapshot.ReadBytes(bad); err == nil {
		t.Fatal("strict reader accepted a corrupt twohop section")
	}
	s, err := snapshot.ReadBytesTolerant(bad)
	if err != nil {
		t.Fatalf("tolerant read: %v", err)
	}
	if !reflect.DeepEqual(s.Quarantined, []string{"twohop"}) {
		t.Fatalf("Quarantined = %v, want [twohop]", s.Quarantined)
	}
	if s.TwoHop != nil {
		t.Fatal("quarantined twohop section still decoded")
	}
	if s.Source() != nil {
		t.Fatal("Source() non-nil with the only oracle quarantined")
	}
	// Everything else must survive untouched.
	if s.Graph == nil || s.Graph.N() != fresh.Graph.N() || s.Graph.M() != fresh.Graph.M() {
		t.Fatal("graph damaged by an unrelated quarantine")
	}
	if !reflect.DeepEqual(s.Schemes, fresh.Schemes) {
		t.Fatal("schemes damaged by an unrelated quarantine")
	}
}

func TestTolerantReadQuarantinesScheme(t *testing.T) {
	fresh, b := buildCase(t, "ratree", 256, dist.PolicyTwoHop, "ball", "uniform")
	bad := corrupted(t, b, "scheme") // hits the first scheme section

	if _, err := snapshot.ReadBytes(bad); err == nil {
		t.Fatal("strict reader accepted a corrupt scheme section")
	}
	s, err := snapshot.ReadBytesTolerant(bad)
	if err != nil {
		t.Fatalf("tolerant read: %v", err)
	}
	if !reflect.DeepEqual(s.Quarantined, []string{"scheme[0]"}) {
		t.Fatalf("Quarantined = %v, want [scheme[0]]", s.Quarantined)
	}
	// The second scheme survives; the oracle survives.
	if len(s.Schemes) != 1 || !reflect.DeepEqual(s.Schemes[0], fresh.Schemes[1]) {
		t.Fatalf("surviving schemes wrong: got %d tables", len(s.Schemes))
	}
	if s.TwoHop == nil {
		t.Fatal("twohop lost to an unrelated quarantine")
	}
}

func TestTolerantReadQuarantinesMetric(t *testing.T) {
	_, b := buildCase(t, "torus", 256, dist.PolicyAuto, "ball")
	bad := corrupted(t, b, "metric")

	if _, err := snapshot.ReadBytes(bad); err == nil {
		t.Fatal("strict reader accepted a corrupt metric section")
	}
	s, err := snapshot.ReadBytesTolerant(bad)
	if err != nil {
		t.Fatalf("tolerant read: %v", err)
	}
	if !reflect.DeepEqual(s.Quarantined, []string{"metric"}) {
		t.Fatalf("Quarantined = %v, want [metric]", s.Quarantined)
	}
	if s.Metric != nil || s.MetricName != "" {
		t.Fatal("quarantined metric still resolved")
	}
}

func TestTolerantReadStillRejectsMandatoryDamage(t *testing.T) {
	_, b := buildCase(t, "ratree", 64, dist.PolicyTwoHop)
	for _, kind := range []string{"meta", "graph"} {
		bad := corrupted(t, b, kind)
		if _, err := snapshot.ReadBytesTolerant(bad); err == nil {
			t.Errorf("tolerant reader accepted a corrupt %s section", kind)
		}
	}
	// Structural damage (the section table itself) also stays fatal.
	table := append([]byte(nil), b...)
	table[26] ^= 0xFF
	if _, err := snapshot.ReadBytesTolerant(table); err == nil {
		t.Error("tolerant reader accepted a corrupt section table")
	}
}

func TestTolerantReadCleanFileHasNoQuarantine(t *testing.T) {
	fresh, b := buildCase(t, "ratree", 256, dist.PolicyTwoHop, "ball")
	s, err := snapshot.ReadBytesTolerant(b)
	if err != nil {
		t.Fatalf("tolerant read of clean bytes: %v", err)
	}
	if s.Quarantined != nil {
		t.Fatalf("clean file quarantined %v", s.Quarantined)
	}
	if s.TwoHop == nil || len(s.Schemes) != len(fresh.Schemes) {
		t.Fatal("tolerant read of a clean file dropped sections")
	}
}
