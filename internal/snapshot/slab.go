package snapshot

import (
	"encoding/binary"
	"unsafe"
)

// This file is the slab codec: bulk []int32/[]int64 <-> little-endian byte
// conversions.  The format is always little-endian on the wire; on
// little-endian hosts (every platform the experiments run on) the
// conversions are zero-copy — the decoder returns a typed view aliasing
// the file buffer and the encoder appends the raw backing bytes — which is
// what makes snapshot loading an mmap-friendly O(validation) pass instead
// of an O(bytes) decode.  Big-endian or misaligned inputs take the
// explicit encoding/binary loop, so correctness never depends on the fast
// path.

// hostLittleEndian reports the byte order of the running host, probed once.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// viewInt32 decodes b (len divisible by 4) as little-endian int32s,
// aliasing b on aligned little-endian hosts.  Callers own the resulting
// slice's immutability contract: it may share memory with b.
func viewInt32(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// viewInt64 decodes b (len divisible by 8) as little-endian int64s,
// aliasing b on aligned little-endian hosts.
func viewInt64(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// appendInt32s appends v to buf in little-endian order.
func appendInt32s(buf []byte, v []int32) []byte {
	if len(v) == 0 {
		return buf
	}
	if hostLittleEndian {
		return append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*4)...)
	}
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
	}
	return buf
}

// appendInt64s appends v to buf in little-endian order.
func appendInt64s(buf []byte, v []int64) []byte {
	if len(v) == 0 {
		return buf
	}
	if hostLittleEndian {
		return append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)...)
	}
	for _, x := range v {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
	}
	return buf
}
