package snapshot_test

// Snapshot round-trip conformance: a .navsnap written from freshly built
// artefacts and read back must answer every distance and routing query
// byte-identically to the in-process build it froze — exhaustively on
// graphs up to disttest.ExhaustiveMaxNodes nodes, sampled at n=4096.  The
// suite also pins write determinism (equal snapshots serialise to
// byte-identical files, and write → read → write is a fixpoint), which is
// what makes the checksums meaningful across toolchain runs.

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"navaug/internal/augment"
	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/dist/disttest"
	"navaug/internal/graph"
	"navaug/internal/route"
	"navaug/internal/snapshot"
	"navaug/internal/xrand"
)

// buildCase builds one snapshot and returns it with its serialised bytes.
func buildCase(t *testing.T, family string, n int, oracle dist.SourcePolicy, schemes ...string) (*snapshot.Snapshot, []byte) {
	t.Helper()
	snap, _, err := core.BuildSnapshot(core.SnapshotOptions{
		Family:  family,
		N:       n,
		Seed:    1,
		Schemes: schemes,
		Draws:   2,
		Oracle:  oracle,
	})
	if err != nil {
		t.Fatalf("BuildSnapshot(%s, %d): %v", family, n, err)
	}
	b, err := snap.Bytes()
	if err != nil {
		t.Fatalf("Bytes(%s, %d): %v", family, n, err)
	}
	return snap, b
}

func TestRoundTripConformance(t *testing.T) {
	cases := []struct {
		family string
		n      int
		oracle dist.SourcePolicy
	}{
		{"ratree", 256, dist.PolicyTwoHop},       // exhaustive, 2-hop tier
		{"gnp", 300, dist.PolicyTwoHop},          // exhaustive, non-tree cover
		{"torus", 256, dist.PolicyAuto},          // exhaustive, analytic tier
		{"powerlaw-tree", 4096, dist.PolicyAuto}, // sampled, auto → 2-hop
		{"grid", 4096, dist.PolicyAuto},          // sampled, analytic tier
	}
	for _, tc := range cases {
		t.Run(tc.family, func(t *testing.T) {
			fresh, b := buildCase(t, tc.family, tc.n, tc.oracle, "ball", "uniform")
			loaded, err := snapshot.ReadBytes(b)
			if err != nil {
				t.Fatalf("ReadBytes: %v", err)
			}

			// Write determinism and read→write fixpoint.
			b2, err := fresh.Bytes()
			if err != nil {
				t.Fatalf("second Bytes: %v", err)
			}
			if !bytes.Equal(b, b2) {
				t.Fatalf("serialisation is not deterministic")
			}
			b3, err := loaded.Bytes()
			if err != nil {
				t.Fatalf("re-serialising loaded snapshot: %v", err)
			}
			if !bytes.Equal(b, b3) {
				t.Fatalf("write → read → write is not a fixpoint")
			}

			// Structural identity.
			if loaded.Meta != fresh.Meta {
				t.Fatalf("meta drifted: %+v vs %+v", loaded.Meta, fresh.Meta)
			}
			if loaded.Graph.Name() != fresh.Graph.Name() ||
				loaded.Graph.N() != fresh.Graph.N() || loaded.Graph.M() != fresh.Graph.M() {
				t.Fatalf("graph drifted: %v vs %v", loaded.Graph, fresh.Graph)
			}
			if !reflect.DeepEqual(loaded.Schemes, fresh.Schemes) {
				t.Fatalf("scheme tables drifted")
			}

			// The loaded O(1) tier must exist and match ground truth.
			src := loaded.Source()
			if src == nil {
				t.Fatalf("loaded snapshot has no O(1) distance tier")
			}
			disttest.Exact(t, loaded.Graph, src)

			// Byte-identical answers against the fresh tier, every packed
			// oracle kind: exhaustive when small, sampled otherwise.
			freshSrc := fresh.Source()
			comparePairs(t, loaded.Graph, freshSrc, src)
			if fresh.TwoHop != nil {
				if loaded.TwoHop == nil {
					t.Fatalf("2-hop tier lost in round trip")
				}
				comparePairs(t, loaded.Graph, fresh.TwoHop, loaded.TwoHop)
			}
			if fresh.MetricName != "" && loaded.Metric == nil {
				t.Fatalf("analytic tier lost in round trip")
			}

			compareRoutes(t, fresh, loaded)
		})
	}
}

// comparePairs asserts two sources agree pair-for-pair: all pairs for
// graphs within the exhaustive budget, seeded random pairs beyond.
func comparePairs(t *testing.T, g *graph.Graph, want, got dist.Source) {
	t.Helper()
	n := g.N()
	if n <= disttest.ExhaustiveMaxNodes {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				w, l := want.Dist(graph.NodeID(u), graph.NodeID(v)), got.Dist(graph.NodeID(u), graph.NodeID(v))
				if w != l {
					t.Fatalf("Dist(%d,%d): fresh %d, loaded %d", u, v, w, l)
				}
			}
		}
		return
	}
	rng := xrand.New(7)
	for i := 0; i < 20000; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if w, l := want.Dist(u, v), got.Dist(u, v); w != l {
			t.Fatalf("Dist(%d,%d): fresh %d, loaded %d", u, v, w, l)
		}
	}
}

// compareRoutes routes seeded (s, t) pairs over every frozen draw on both
// the fresh and the loaded snapshot and requires identical results —
// steps, long links, reachability and full traced paths.  With frozen
// contact tables greedy routing is fully deterministic, so any divergence
// is a serialisation bug.
func compareRoutes(t *testing.T, fresh, loaded *snapshot.Snapshot) {
	t.Helper()
	n := fresh.Graph.N()
	rng := xrand.New(11)
	opts := route.Options{Trace: true}
	for si := range fresh.Schemes {
		for k := range fresh.Schemes[si].Draws {
			instF, err := fresh.Schemes[si].Instance(k)
			if err != nil {
				t.Fatal(err)
			}
			instL, err := loaded.Schemes[si].Instance(k)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 32; trial++ {
				s, dst := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
				rf, errF := route.Greedy(fresh.Graph, instF, s, dst, fresh.Source(), xrand.New(99), opts)
				rl, errL := route.Greedy(loaded.Graph, instL, s, dst, loaded.Source(), xrand.New(99), opts)
				if (errF == nil) != (errL == nil) {
					t.Fatalf("route(%d,%d): fresh err %v, loaded err %v", s, dst, errF, errL)
				}
				if errF != nil {
					continue
				}
				if !reflect.DeepEqual(rf, rl) {
					t.Fatalf("route(%d,%d) scheme %s draw %d diverged: fresh %+v, loaded %+v",
						s, dst, fresh.Schemes[si].Name, k, rf, rl)
				}
			}
		}
	}
}

func TestWriteFileReadFile(t *testing.T) {
	snap, b := buildCase(t, "ratree", 128, dist.PolicyTwoHop, "ball")
	path := filepath.Join(t.TempDir(), "rt.navsnap")
	if err := snap.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, b) {
		t.Fatalf("WriteFile bytes differ from Bytes()")
	}
	loaded, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if loaded.Graph.N() != snap.Graph.N() {
		t.Fatalf("loaded n = %d, want %d", loaded.Graph.N(), snap.Graph.N())
	}
	// Leftover temp files would mean WriteFile is not atomic-by-rename.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("expected only the snapshot in the temp dir, found %d entries", len(entries))
	}
}

func TestSourcePrecedence(t *testing.T) {
	// Analytic metric preferred over 2-hop when both are packed.
	snap, b := buildCase(t, "torus", 100, dist.PolicyTwoHop)
	if snap.MetricName == "" || snap.TwoHop == nil {
		t.Fatalf("expected both tiers packed, got metric=%q twohop=%v", snap.MetricName, snap.TwoHop != nil)
	}
	loaded, err := snapshot.ReadBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Source() != loaded.Metric {
		t.Fatalf("Source() should prefer the analytic metric")
	}

	// No tier at all → nil Source, with no typed-nil footgun.
	bare, bb := buildCase(t, "gnp", 64, dist.PolicyField)
	if bare.Source() != nil {
		t.Fatalf("fresh field-policy snapshot should have nil Source")
	}
	loadedBare, err := snapshot.ReadBytes(bb)
	if err != nil {
		t.Fatal(err)
	}
	if loadedBare.Source() != nil {
		t.Fatalf("loaded field-policy snapshot should have nil Source")
	}
}

func TestSchemeLookup(t *testing.T) {
	snap, _ := buildCase(t, "ratree", 64, dist.PolicyTwoHop, "ball", "uniform")
	first, err := snap.Scheme("")
	if err != nil || first.Name != "ball" {
		t.Fatalf(`Scheme("") = %v, %v; want the ball table`, first, err)
	}
	if _, err := snap.Scheme("uniform"); err != nil {
		t.Fatalf("Scheme(uniform): %v", err)
	}
	if _, err := snap.Scheme("nope"); err == nil {
		t.Fatalf("Scheme(nope) should fail")
	}
	if _, err := first.Instance(-1); err == nil {
		t.Fatalf("Instance(-1) should fail")
	}
	if _, err := first.Instance(len(first.Draws)); err == nil {
		t.Fatalf("Instance(out of range) should fail")
	}
	inst, err := first.Instance(0)
	if err != nil {
		t.Fatal(err)
	}
	static, ok := inst.(*augment.Static)
	if !ok {
		t.Fatalf("frozen instance is %T, want *augment.Static", inst)
	}
	if static.Name() != "ball" {
		t.Fatalf("frozen instance name = %q, want ball", static.Name())
	}
}

func TestSchemeDrawsAreReproducible(t *testing.T) {
	a, _ := buildCase(t, "ratree", 200, dist.PolicyField, "ball")
	b, _ := buildCase(t, "ratree", 200, dist.PolicyField, "ball")
	if !reflect.DeepEqual(a.Schemes, b.Schemes) {
		t.Fatalf("same seed produced different frozen tables")
	}
}
