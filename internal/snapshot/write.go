package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"io"
	"os"
)

// Bytes serialises the snapshot into a fresh buffer in the wire format
// described in the package comment.  Serialisation is deterministic: equal
// snapshots produce byte-identical files (the round-trip tests rely on
// write → read → write fixpointing).
func (s *Snapshot) Bytes() ([]byte, error) {
	if s.Graph == nil {
		return nil, fmt.Errorf("snapshot: no graph to write")
	}
	type section struct {
		kind    uint32
		payload []byte
	}
	var secs []section

	metaJSON, err := json.Marshal(s.Meta)
	if err != nil {
		return nil, fmt.Errorf("snapshot: encoding meta: %w", err)
	}
	secs = append(secs, section{kindMeta, metaJSON})

	gp, err := encodeGraph(s)
	if err != nil {
		return nil, err
	}
	secs = append(secs, section{kindGraph, gp})

	if s.MetricName != "" {
		secs = append(secs, section{kindMetric, encodeString(s.MetricName)})
	}
	if s.TwoHop != nil {
		tp, err := encodeTwoHop(s)
		if err != nil {
			return nil, err
		}
		kind := kindTwoHop
		if s.TwoHop.Packed() {
			kind = kindTwoHopPacked
		}
		secs = append(secs, section{kind, tp})
	}
	for i := range s.Schemes {
		sp, err := encodeScheme(s, &s.Schemes[i])
		if err != nil {
			return nil, err
		}
		secs = append(secs, section{kindScheme, sp})
	}
	if len(secs) > MaxSections {
		return nil, fmt.Errorf("snapshot: %d sections exceed the format cap %d", len(secs), MaxSections)
	}

	// Lay the payloads out 8-aligned after the section table and assemble.
	tableEnd := headerSize + sectionEntrySize*len(secs)
	total := align8(tableEnd)
	offsets := make([]int, len(secs))
	for i, sec := range secs {
		offsets[i] = total
		total = align8(total + len(sec.payload))
	}
	out := make([]byte, total)
	copy(out[0:8], MagicV1)
	binary.LittleEndian.PutUint32(out[8:12], FormatVersion)
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(secs)))
	for i, sec := range secs {
		e := out[headerSize+sectionEntrySize*i:]
		binary.LittleEndian.PutUint32(e[0:4], sec.kind)
		binary.LittleEndian.PutUint32(e[4:8], 0) // flags
		binary.LittleEndian.PutUint64(e[8:16], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(sec.payload)))
		binary.LittleEndian.PutUint64(e[24:32], crc64.Checksum(sec.payload, crcTable))
		binary.LittleEndian.PutUint64(e[32:40], 0) // reserved
		copy(out[offsets[i]:], sec.payload)
	}
	binary.LittleEndian.PutUint64(out[16:24],
		crc64.Checksum(out[headerSize:tableEnd], crcTable))
	return out, nil
}

// WriteTo implements io.WriterTo over Bytes.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	b, err := s.Bytes()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// writeChunk is the unit of the temp-file write loop; small enough that a
// kill mid-write reliably lands between chunks in the crash tests, large
// enough that syscall count stays negligible for real snapshots.
const writeChunk = 256 << 10

// writeStallHook, when set (by tests only), runs after every chunk lands in
// the temp file.  The crash-safety test uses it to signal "mid-write" to a
// parent process that then SIGKILLs this one.
var writeStallHook func(written int, f *os.File)

// WriteFile crash-safely writes the snapshot to path: the bytes go to a
// temp file in the destination directory, are fsynced, and only then
// renamed over path, with the directory fsynced after the rename.  A
// writer killed at any instant — including `kill -9` mid-write — therefore
// leaves either the old file intact or the new file complete; the only
// other residue is an unloadable .navsnap-tmp-* temp file (which never
// matches a server's -snapshot path).  TestWriteFileKillDuringWrite pins
// this by killing a real child process mid-write.
func (s *Snapshot) WriteFile(path string) error {
	b, err := s.Bytes()
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dirOf(path), ".navsnap-tmp-*")
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	for written := 0; written < len(b); {
		end := written + writeChunk
		if end > len(b) {
			end = len(b)
		}
		if _, err := tmp.Write(b[written:end]); err != nil {
			return cleanup(err)
		}
		written = end
		if writeStallHook != nil {
			writeStallHook(written, tmp)
		}
	}
	// fsync before rename: otherwise a power cut after the rename could
	// surface the new name pointing at unflushed (zero-filled) data, which
	// is exactly the half-written state the atomic rename is meant to
	// exclude.
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dirOf(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Filesystems that refuse fsync on directories don't get to fail the
// write — the rename itself already happened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i+1]
		}
	}
	return "."
}

func encodeGraph(s *Snapshot) ([]byte, error) {
	g := s.Graph
	name := g.Name()
	if len(name) > MaxNameLen {
		return nil, fmt.Errorf("snapshot: graph name of %d bytes exceeds cap %d", len(name), MaxNameLen)
	}
	if g.N() > MaxNodes {
		return nil, fmt.Errorf("snapshot: graph of %d nodes exceeds format cap %d", g.N(), MaxNodes)
	}
	offsets, adj := g.RawCSR()
	var e enc
	e.u64(uint64(g.N()))
	e.u64(uint64(g.M()))
	e.str(name)
	e.i64s(offsets)
	e.i32s(adj)
	return e.buf, nil
}

func encodeTwoHop(s *Snapshot) ([]byte, error) {
	t := s.TwoHop
	if t.N() != s.Graph.N() {
		return nil, fmt.Errorf("snapshot: 2-hop oracle covers %d nodes, graph has %d", t.N(), s.Graph.N())
	}
	var e enc
	if t.Packed() {
		order, poff, blob := t.RawPacked()
		e.u64(uint64(t.N()))
		e.u64(uint64(len(blob)))
		e.i32s(order)
		e.i64s(poff)
		e.raw(blob)
		return e.buf, nil
	}
	order, index, hubs, dists := t.Raw()
	e.u64(uint64(t.N()))
	e.u64(uint64(len(hubs)))
	e.i32s(order)
	e.i64s(index)
	e.i32s(hubs)
	e.i32s(dists)
	return e.buf, nil
}

func encodeScheme(s *Snapshot, st *SchemeTable) ([]byte, error) {
	n := s.Graph.N()
	if len(st.Name) > MaxNameLen {
		return nil, fmt.Errorf("snapshot: scheme name of %d bytes exceeds cap %d", len(st.Name), MaxNameLen)
	}
	if len(st.Draws) == 0 || len(st.Draws) > MaxDraws {
		return nil, fmt.Errorf("snapshot: scheme %s has %d draws, want 1..%d", st.Name, len(st.Draws), MaxDraws)
	}
	var e enc
	e.u64(uint64(len(st.Draws)))
	e.u64(uint64(n))
	e.u64(st.Seed)
	e.str(st.Name)
	for k, draw := range st.Draws {
		if len(draw) != n {
			return nil, fmt.Errorf("snapshot: scheme %s draw %d covers %d nodes, graph has %d", st.Name, k, len(draw), n)
		}
		e.i32s(draw)
	}
	return e.buf, nil
}

func encodeString(v string) []byte {
	var e enc
	e.str(v)
	return e.buf
}

func align8(v int) int { return (v + 7) &^ 7 }

// enc is a small append-only little-endian encoder; every slab it emits is
// zero-padded to 8 bytes so the next field stays aligned (matching the
// reader's cursor, which re-aligns after every slab).
type enc struct{ buf []byte }

func (e *enc) pad() {
	for len(e.buf)%8 != 0 {
		e.buf = append(e.buf, 0)
	}
}

func (e *enc) u64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// str emits a u64 length followed by the raw bytes, padded to 8.
func (e *enc) str(v string) {
	e.u64(uint64(len(v)))
	e.buf = append(e.buf, v...)
	e.pad()
}

// raw emits the bytes as-is, padded to 8 (length is carried separately).
func (e *enc) raw(v []byte) {
	e.buf = append(e.buf, v...)
	e.pad()
}

func (e *enc) i32s(v []int32) {
	e.buf = appendInt32s(e.buf, v)
	e.pad()
}

func (e *enc) i64s(v []int64) {
	e.buf = appendInt64s(e.buf, v)
}
