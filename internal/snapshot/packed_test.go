package snapshot_test

// Packed-oracle snapshot section (kind 6): round-trip fidelity, write
// determinism, tolerant-read quarantine and backward compatibility with
// raw-section (kind 4) files.  The compressed representation must be
// invisible at the query layer — only the bytes on disk shrink.

import (
	"bytes"
	"reflect"
	"testing"

	"navaug/internal/dist"
	"navaug/internal/snapshot"
)

func TestRoundTripPackedTwoHop(t *testing.T) {
	fresh, b := buildCase(t, "gnp", 300, dist.PolicyTwoHopPacked, "ball", "uniform")
	if fresh.TwoHop == nil || !fresh.TwoHop.Packed() {
		t.Fatalf("twohop-packed policy did not produce a packed oracle")
	}
	loaded, err := snapshot.ReadBytes(b)
	if err != nil {
		t.Fatalf("ReadBytes: %v", err)
	}
	if loaded.TwoHop == nil || !loaded.TwoHop.Packed() {
		t.Fatal("packed oracle did not survive the round trip packed")
	}

	// Write determinism and the write → read → write fixpoint, same as the
	// raw section.
	b2, err := fresh.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("packed serialisation is not deterministic")
	}
	b3, err := loaded.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b3) {
		t.Fatal("write → read → write is not a fixpoint for the packed section")
	}

	// Every distance byte-identical to the fresh build, and exact.
	comparePairs(t, loaded.Graph, fresh.TwoHop, loaded.TwoHop)
	compareRoutes(t, fresh, loaded)

	// The same build stored raw must give the same answers and a larger
	// file: the compression is real and purely representational.
	rawSnap, rawBytes := buildCase(t, "gnp", 300, dist.PolicyTwoHop, "ball", "uniform")
	comparePairs(t, loaded.Graph, rawSnap.TwoHop, loaded.TwoHop)
	if len(b) >= len(rawBytes) {
		t.Fatalf("packed snapshot (%d B) not smaller than raw (%d B)", len(b), len(rawBytes))
	}
}

func TestTolerantReadQuarantinesPackedTwoHop(t *testing.T) {
	fresh, b := buildCase(t, "gnp", 300, dist.PolicyTwoHopPacked, "ball")
	bad := corrupted(t, b, "twohop-packed")

	if _, err := snapshot.ReadBytes(bad); err == nil {
		t.Fatal("strict reader accepted a corrupt twohop-packed section")
	}
	s, err := snapshot.ReadBytesTolerant(bad)
	if err != nil {
		t.Fatalf("tolerant read: %v", err)
	}
	if !reflect.DeepEqual(s.Quarantined, []string{"twohop-packed"}) {
		t.Fatalf("Quarantined = %v, want [twohop-packed]", s.Quarantined)
	}
	if s.TwoHop != nil {
		t.Fatal("quarantined packed section still decoded")
	}
	if s.Graph == nil || s.Graph.N() != fresh.Graph.N() {
		t.Fatal("graph damaged by an unrelated quarantine")
	}
	if !reflect.DeepEqual(s.Schemes, fresh.Schemes) {
		t.Fatal("schemes damaged by an unrelated quarantine")
	}
}
