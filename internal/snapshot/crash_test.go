package snapshot

// Crash-safety for WriteFile, proven with a real kill: the parent test
// re-executes this test binary as a helper process that starts a WriteFile
// and blocks mid-write (via writeStallHook), then SIGKILLs it and inspects
// the destination directory.  The contract: no half-written bytes are ever
// reachable under the final name — a killed fresh write leaves the final
// path absent, a killed overwrite leaves the previous file byte-identical —
// and whatever temp residue remains is not loadable by either reader.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"navaug/internal/graph/gen"
)

// crashSnapshot builds a deterministic snapshot big enough to span several
// write chunks, so the helper reliably blocks with a partial temp file.
func crashSnapshot() *Snapshot {
	g := gen.Path(60000) // ~1 MiB serialised, ≫ writeChunk
	return &Snapshot{
		Meta:  Meta{Tool: "crash-test", FormatVersion: FormatVersion, Family: "path", N: g.N(), M: g.M(), Seed: 1},
		Graph: g,
	}
}

// TestWriteFileKillHelper is not a test: it is the body of the helper
// process.  It fsyncs after the first chunk, drops a marker file so the
// parent knows the write is mid-flight, and blocks until killed.
func TestWriteFileKillHelper(t *testing.T) {
	dir := os.Getenv("NAVSNAP_CRASH_DIR")
	if dir == "" {
		t.Skip("helper body; driven by TestWriteFileKillDuringWrite")
	}
	writeStallHook = func(written int, f *os.File) {
		f.Sync() // make the partial temp file durable before advertising it
		if written >= writeChunk {
			if err := os.WriteFile(filepath.Join(dir, "midwrite.marker"), []byte("x"), 0o644); err != nil {
				os.Exit(3)
			}
			select {} // hold the write open until the parent kills us
		}
	}
	crashSnapshot().WriteFile(filepath.Join(dir, "out.navsnap"))
	os.Exit(2) // unreachable unless the kill never came
}

func runKilledWrite(t *testing.T, dir string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestWriteFileKillHelper$")
	cmd.Env = append(os.Environ(), "NAVSNAP_CRASH_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper: %v", err)
	}
	marker := filepath.Join(dir, "midwrite.marker")
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, err := os.Stat(marker); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatal("helper never reached mid-write")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Process.Signal(syscall.SIGKILL)
	err := cmd.Wait()
	if err == nil {
		t.Fatal("helper exited cleanly; the kill landed after the write")
	}
}

func TestWriteFileKillDuringWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a helper process")
	}
	final := "out.navsnap"

	t.Run("fresh", func(t *testing.T) {
		dir := t.TempDir()
		runKilledWrite(t, dir)
		if _, err := os.Stat(filepath.Join(dir, final)); !os.IsNotExist(err) {
			t.Fatalf("killed fresh write left something under the final name (stat err: %v)", err)
		}
		assertTempResidueUnloadable(t, dir)
	})

	t.Run("overwrite", func(t *testing.T) {
		dir := t.TempDir()
		// A valid, different snapshot already lives at the final path.
		old := &Snapshot{Meta: Meta{Tool: "crash-test", FormatVersion: FormatVersion, Family: "path", N: 100, M: 99, Seed: 7}, Graph: gen.Path(100)}
		path := filepath.Join(dir, final)
		if err := old.WriteFile(path); err != nil {
			t.Fatalf("seeding old snapshot: %v", err)
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		runKilledWrite(t, dir)
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("old snapshot gone after killed overwrite: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("old snapshot bytes changed under a killed overwrite")
		}
		if _, err := ReadFile(path); err != nil {
			t.Fatalf("old snapshot no longer loads: %v", err)
		}
		assertTempResidueUnloadable(t, dir)
	})
}

// assertTempResidueUnloadable confirms any leftover temp file is (a) named
// so no server would open it and (b) rejected by both readers anyway.
func assertTempResidueUnloadable(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sawTemp := false
	for _, e := range entries {
		name := e.Name()
		if name == "midwrite.marker" || name == "out.navsnap" {
			continue
		}
		if !strings.HasPrefix(name, ".navsnap-tmp-") {
			t.Fatalf("unexpected residue %q after killed write", name)
		}
		sawTemp = true
		p := filepath.Join(dir, name)
		if _, err := ReadFile(p); err == nil {
			t.Fatalf("half-written temp file %q loads strictly", name)
		}
		if _, err := ReadFileTolerant(p); err == nil {
			t.Fatalf("half-written temp file %q loads tolerantly", name)
		}
	}
	if !sawTemp {
		t.Fatal("no temp residue found; the helper was killed in the wrong state")
	}
}
