package snapshot

import (
	"encoding/binary"
	"fmt"
)

// CorruptSection flips a byte in the payload of the first section of the
// named kind ("meta", "graph", "metric", "twohop", "twohop-packed" or
// "scheme"), in place.
// The section table entry keeps the original checksum, so a strict
// ReadBytes rejects the buffer and a tolerant ReadBytesTolerant
// quarantines exactly that section.  It exists for fault injection — the
// chaos harness and the degradation tests use it to manufacture the
// damaged snapshots the tolerant reader is specified against.
func CorruptSection(b []byte, kind string) error {
	var want uint32
	switch kind {
	case "meta":
		want = kindMeta
	case "graph":
		want = kindGraph
	case "metric":
		want = kindMetric
	case "twohop":
		want = kindTwoHop
	case "twohop-packed":
		want = kindTwoHopPacked
	case "scheme":
		want = kindScheme
	default:
		return fmt.Errorf("snapshot: unknown section kind %q", kind)
	}
	if len(b) < headerSize || string(b[0:8]) != MagicV1 {
		return fmt.Errorf("snapshot: not a %s buffer", MagicV1)
	}
	count := binary.LittleEndian.Uint32(b[12:16])
	if count > MaxSections || headerSize+sectionEntrySize*int(count) > len(b) {
		return fmt.Errorf("snapshot: malformed section table")
	}
	for i := 0; i < int(count); i++ {
		e := b[headerSize+sectionEntrySize*i:]
		if binary.LittleEndian.Uint32(e[0:4]) != want {
			continue
		}
		offset := binary.LittleEndian.Uint64(e[8:16])
		length := binary.LittleEndian.Uint64(e[16:24])
		if length == 0 || offset > uint64(len(b)) || length > uint64(len(b))-offset {
			return fmt.Errorf("snapshot: section %d has no corruptible payload", i)
		}
		b[offset] ^= 0xFF
		return nil
	}
	return fmt.Errorf("snapshot: no %q section to corrupt", kind)
}
