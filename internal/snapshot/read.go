package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
)

// ReadFile loads a snapshot from disk.  The returned snapshot's big arrays
// alias the file buffer on little-endian hosts (zero-copy); the buffer
// stays reachable for the snapshot's lifetime.
func ReadFile(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ReadBytes(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// ReadFileTolerant is ReadFile under the tolerant (quarantining) reader:
// the file must still be structurally sound, but damaged optional
// sections are dropped into Snapshot.Quarantined instead of failing the
// load.  This is the serving-stack load path: a snapshot with a corrupt
// 2-hop section still serves, degraded, rather than refusing to start.
func ReadFileTolerant(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ReadBytesTolerant(b)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Read loads a snapshot from a stream (convenience over ReadBytes).
func Read(r io.Reader) (*Snapshot, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ReadBytes(b)
}

// ReadBytes parses and validates a snapshot from b.  The buffer must stay
// immutable afterwards: on little-endian hosts the returned graph, label
// and contact arrays are zero-copy views into it.
//
// Validation is layered so hostile input fails at bounded cost: header
// magic/version/table checksum first, then per-section bounds, alignment
// and payload checksums, then per-section structural parsing where every
// declared count is checked against the (already length-verified) section
// payload before any slice is materialised, and finally the semantic
// invariants of each artefact (graph.FromCSR, dist.TwoHopFromRaw, contact
// ranges, cross-section consistency).
func ReadBytes(b []byte) (*Snapshot, error) { return readBytes(b, false) }

// ReadBytesTolerant is ReadBytes with load-time quarantine: structural
// damage (header, section table, layout) and damage to the mandatory meta
// and graph sections still fail the load, but a checksum mismatch or parse
// error in an *optional* section (metric, twohop, scheme) drops just that
// section, recording it in Snapshot.Quarantined.  The returned snapshot is
// fully usable minus the quarantined artefacts — exactly the degraded
// state the serve layer's answer ladder is built for.
func ReadBytesTolerant(b []byte) (*Snapshot, error) { return readBytes(b, true) }

func readBytes(b []byte, tolerant bool) (*Snapshot, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("snapshot: %d bytes is shorter than the %d-byte header", len(b), headerSize)
	}
	if string(b[0:8]) != MagicV1 {
		return nil, fmt.Errorf("snapshot: bad magic %q", b[0:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (this reader handles %d)", v, FormatVersion)
	}
	count := binary.LittleEndian.Uint32(b[12:16])
	if count == 0 || count > MaxSections {
		return nil, fmt.Errorf("snapshot: section count %d out of range [1,%d]", count, MaxSections)
	}
	tableEnd := headerSize + sectionEntrySize*int(count)
	if tableEnd > len(b) {
		return nil, fmt.Errorf("snapshot: truncated section table (%d sections need %d bytes, file has %d)", count, tableEnd, len(b))
	}
	if got, want := crc64.Checksum(b[headerSize:tableEnd], crcTable), binary.LittleEndian.Uint64(b[16:24]); got != want {
		return nil, fmt.Errorf("snapshot: section table checksum mismatch (file %016x, computed %016x)", want, got)
	}

	s := &Snapshot{}
	var sawMeta, sawGraph, sawMetric, sawTwoHop bool
	var pendingTwoHop *cursor
	var pendingTwoHopPacked bool
	type schemePending struct {
		idx int // per-kind index, for the quarantine name
		c   *cursor
	}
	var pendingSchemes []schemePending
	schemeIdx := 0
	// quarantine drops one optional section under the tolerant reader.
	quarantine := func(kind uint32) {
		switch kind {
		case kindMetric:
			s.Quarantined = append(s.Quarantined, "metric")
		case kindTwoHop:
			s.Quarantined = append(s.Quarantined, "twohop")
		case kindTwoHopPacked:
			s.Quarantined = append(s.Quarantined, "twohop-packed")
		case kindScheme:
			s.Quarantined = append(s.Quarantined, fmt.Sprintf("scheme[%d]", schemeIdx))
		}
	}
	prevEnd := uint64(tableEnd)
	for i := 0; i < int(count); i++ {
		e := b[headerSize+sectionEntrySize*i:]
		kind := binary.LittleEndian.Uint32(e[0:4])
		flags := binary.LittleEndian.Uint32(e[4:8])
		offset := binary.LittleEndian.Uint64(e[8:16])
		length := binary.LittleEndian.Uint64(e[16:24])
		sum := binary.LittleEndian.Uint64(e[24:32])
		reserved := binary.LittleEndian.Uint64(e[32:40])
		if flags != 0 || reserved != 0 {
			return nil, fmt.Errorf("snapshot: section %d has non-zero reserved fields", i)
		}
		// Canonical layout only: payloads in table order, 8-aligned, with
		// zero padding between them.  Rejecting overlapping or out-of-order
		// sections keeps a hostile file from aliasing one slab under two
		// interpretations.
		if offset != uint64(align8(int(prevEnd))) {
			return nil, fmt.Errorf("snapshot: section %d payload at offset %d, canonical layout wants %d", i, offset, align8(int(prevEnd)))
		}
		if offset > uint64(len(b)) || length > uint64(len(b))-offset {
			return nil, fmt.Errorf("snapshot: section %d [%d,+%d) overruns the %d-byte file", i, offset, length, len(b))
		}
		for _, pad := range b[prevEnd:offset] {
			if pad != 0 {
				return nil, fmt.Errorf("snapshot: non-zero padding before section %d", i)
			}
		}
		prevEnd = offset + length
		payload := b[offset : offset+length]
		if got := crc64.Checksum(payload, crcTable); got != sum {
			if tolerant && (kind == kindMetric || kind == kindTwoHop || kind == kindTwoHopPacked || kind == kindScheme) {
				// The layout bookkeeping above already validated this slab's
				// place in the file; only its contents are damaged.  Keep the
				// saw-flags honest (a duplicate of a quarantined section is
				// still a duplicate) and drop just this artefact.
				switch kind {
				case kindMetric:
					if sawMetric {
						return nil, fmt.Errorf("snapshot: duplicate metric section")
					}
					sawMetric = true
				case kindTwoHop, kindTwoHopPacked:
					if sawTwoHop {
						return nil, fmt.Errorf("snapshot: duplicate 2-hop section")
					}
					sawTwoHop = true
				}
				quarantine(kind)
				if kind == kindScheme {
					schemeIdx++
				}
				continue
			}
			return nil, fmt.Errorf("snapshot: section %d (kind %d) checksum mismatch (file %016x, computed %016x)", i, kind, sum, got)
		}
		switch kind {
		case kindMeta:
			if sawMeta {
				return nil, fmt.Errorf("snapshot: duplicate meta section")
			}
			sawMeta = true
			if err := json.Unmarshal(payload, &s.Meta); err != nil {
				return nil, fmt.Errorf("snapshot: bad meta section: %w", err)
			}
		case kindGraph:
			if sawGraph {
				return nil, fmt.Errorf("snapshot: duplicate graph section")
			}
			sawGraph = true
			g, err := decodeGraph(&cursor{b: payload})
			if err != nil {
				return nil, err
			}
			s.Graph = g
		case kindMetric:
			if sawMetric {
				return nil, fmt.Errorf("snapshot: duplicate metric section")
			}
			sawMetric = true
			c := &cursor{b: payload}
			name, err := c.str("metric name")
			if err == nil {
				err = c.done()
			}
			if err != nil {
				if tolerant {
					quarantine(kind)
					continue
				}
				return nil, err
			}
			s.MetricName = name
		case kindTwoHop:
			if sawTwoHop {
				return nil, fmt.Errorf("snapshot: duplicate 2-hop section")
			}
			sawTwoHop = true
			pendingTwoHop = &cursor{b: payload}
		case kindTwoHopPacked:
			if sawTwoHop {
				return nil, fmt.Errorf("snapshot: duplicate 2-hop section")
			}
			sawTwoHop = true
			pendingTwoHop = &cursor{b: payload}
			pendingTwoHopPacked = true
		case kindScheme:
			pendingSchemes = append(pendingSchemes, schemePending{idx: schemeIdx, c: &cursor{b: payload}})
			schemeIdx++
		default:
			return nil, fmt.Errorf("snapshot: unknown section kind %d", kind)
		}
	}
	if uint64(len(b)) != uint64(align8(int(prevEnd))) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after the last section", uint64(len(b))-prevEnd)
	}
	for _, pad := range b[prevEnd:] {
		if pad != 0 {
			return nil, fmt.Errorf("snapshot: non-zero padding after the last section")
		}
	}
	if !sawGraph {
		return nil, fmt.Errorf("snapshot: no graph section")
	}
	if !sawMeta {
		return nil, fmt.Errorf("snapshot: no meta section")
	}
	if s.Meta.N != s.Graph.N() || s.Meta.M != s.Graph.M() {
		return nil, fmt.Errorf("snapshot: meta says n=%d m=%d, graph section holds n=%d m=%d",
			s.Meta.N, s.Meta.M, s.Graph.N(), s.Graph.M())
	}

	// The cross-referencing sections parse after the graph regardless of
	// their order in the table, so their node counts can be checked.
	if s.MetricName != "" {
		if err := resolveMetric(s); err != nil {
			if !tolerant {
				return nil, err
			}
			s.MetricName = ""
			quarantine(kindMetric)
		}
	}
	if pendingTwoHop != nil {
		decode, kind := decodeTwoHop, kindTwoHop
		if pendingTwoHopPacked {
			decode, kind = decodeTwoHopPacked, kindTwoHopPacked
		}
		t, err := decode(pendingTwoHop, s.Graph.N())
		if err != nil {
			if !tolerant {
				return nil, err
			}
			quarantine(kind)
		} else {
			s.TwoHop = t
		}
	}
	for _, p := range pendingSchemes {
		st, err := decodeScheme(p.c, s.Graph.N())
		if err != nil {
			if !tolerant {
				return nil, err
			}
			s.Quarantined = append(s.Quarantined, fmt.Sprintf("scheme[%d]", p.idx))
			continue
		}
		s.Schemes = append(s.Schemes, *st)
	}
	return s, nil
}

// resolveMetric turns the metric descriptor into the live analytic metric,
// enforcing the cross-section consistency checks of the strict reader.
func resolveMetric(s *Snapshot) error {
	if s.MetricName != s.Graph.Name() {
		return fmt.Errorf("snapshot: metric descriptor %q does not match graph name %q", s.MetricName, s.Graph.Name())
	}
	m, ok := gen.MetricFor(s.Graph)
	if !ok {
		return fmt.Errorf("snapshot: metric descriptor %q is not in the gen registry (registry drift?)", s.MetricName)
	}
	s.Metric = m
	return nil
}

func decodeGraph(c *cursor) (*graph.Graph, error) {
	n, err := c.count("node count", MaxNodes)
	if err != nil {
		return nil, err
	}
	m, err := c.count("edge count", MaxNodes*4)
	if err != nil {
		return nil, err
	}
	name, err := c.str("graph name")
	if err != nil {
		return nil, err
	}
	offsets, err := c.i64s("offsets", n+1)
	if err != nil {
		return nil, err
	}
	adj, err := c.i32s("adjacency", 2*m)
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	g, err := graph.FromCSR(name, n, offsets, adj)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return g, nil
}

func decodeTwoHop(c *cursor, graphN int) (*dist.TwoHop, error) {
	n, err := c.count("2-hop node count", MaxNodes)
	if err != nil {
		return nil, err
	}
	if n != graphN {
		return nil, fmt.Errorf("snapshot: 2-hop section covers %d nodes, graph has %d", n, graphN)
	}
	total, err := c.count("2-hop entry count", MaxNodes*64)
	if err != nil {
		return nil, err
	}
	order, err := c.i32s("hub order", n)
	if err != nil {
		return nil, err
	}
	index, err := c.i64s("label index", n+1)
	if err != nil {
		return nil, err
	}
	hubs, err := c.i32s("label hubs", total)
	if err != nil {
		return nil, err
	}
	dists, err := c.i32s("label dists", total)
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	t, err := dist.TwoHopFromRaw(n, order, index, hubs, dists)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return t, nil
}

// decodeTwoHopPacked parses the compressed 2-hop section; the heavy
// lifting — varint well-formedness, monotone offsets, rank and distance
// ranges — happens in dist.TwoHopPackedFromRaw, which walks every label
// stream once before accepting the oracle.
func decodeTwoHopPacked(c *cursor, graphN int) (*dist.TwoHop, error) {
	n, err := c.count("2-hop node count", MaxNodes)
	if err != nil {
		return nil, err
	}
	if n != graphN {
		return nil, fmt.Errorf("snapshot: 2-hop section covers %d nodes, graph has %d", n, graphN)
	}
	blobLen, err := c.count("2-hop blob length", len(c.b))
	if err != nil {
		return nil, err
	}
	order, err := c.i32s("hub order", n)
	if err != nil {
		return nil, err
	}
	poff, err := c.i64s("label offsets", n+1)
	if err != nil {
		return nil, err
	}
	blob, err := c.bytes("label blob", blobLen)
	if err != nil {
		return nil, err
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	t, err := dist.TwoHopPackedFromRaw(n, order, poff, blob)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return t, nil
}

func decodeScheme(c *cursor, graphN int) (*SchemeTable, error) {
	draws, err := c.count("draw count", MaxDraws)
	if err != nil {
		return nil, err
	}
	if draws == 0 {
		return nil, fmt.Errorf("snapshot: scheme section with zero draws")
	}
	n, err := c.count("scheme node count", MaxNodes)
	if err != nil {
		return nil, err
	}
	if n != graphN {
		return nil, fmt.Errorf("snapshot: scheme section covers %d nodes, graph has %d", n, graphN)
	}
	seed, err := c.u64("scheme seed")
	if err != nil {
		return nil, err
	}
	name, err := c.str("scheme name")
	if err != nil {
		return nil, err
	}
	st := &SchemeTable{Name: name, Seed: seed}
	for k := 0; k < draws; k++ {
		table, err := c.i32s("contact table", n)
		if err != nil {
			return nil, err
		}
		for u, v := range table {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("snapshot: scheme %s draw %d contact[%d] = %d out of range [0,%d)", name, k, u, v, n)
			}
		}
		st.Draws = append(st.Draws, table)
	}
	if err := c.done(); err != nil {
		return nil, err
	}
	return st, nil
}

// cursor walks one section payload, mirroring the writer's enc: every slab
// read re-aligns to 8 bytes, every count is bounds-checked against both
// its structural cap and the remaining payload length before a slice is
// materialised, and done() requires full (padding-only) consumption so
// trailing garbage is rejected.
type cursor struct {
	b   []byte
	off int
}

func (c *cursor) remaining() int { return len(c.b) - c.off }

func (c *cursor) u64(what string) (uint64, error) {
	if c.remaining() < 8 {
		return 0, fmt.Errorf("snapshot: truncated %s field", what)
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v, nil
}

// count reads a u64 and validates it as a non-negative int at most max.
func (c *cursor) count(what string, max int) (int, error) {
	v, err := c.u64(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(max) {
		return 0, fmt.Errorf("snapshot: %s %d exceeds cap %d", what, v, max)
	}
	return int(v), nil
}

// str reads a u64 length plus that many bytes, padded to 8.
func (c *cursor) str(what string) (string, error) {
	l, err := c.count(what+" length", MaxNameLen)
	if err != nil {
		return "", err
	}
	if c.remaining() < align8(l) {
		return "", fmt.Errorf("snapshot: truncated %s", what)
	}
	v := string(c.b[c.off : c.off+l])
	c.off += align8(l)
	return v, nil
}

// i32s returns a count-element int32 view of the next slab (padded to 8).
func (c *cursor) i32s(what string, count int) ([]int32, error) {
	need := align8(count * 4)
	if count < 0 || count > (len(c.b)-c.off)/4 || c.remaining() < need {
		return nil, fmt.Errorf("snapshot: %s declares %d entries, only %d bytes remain", what, count, c.remaining())
	}
	v := viewInt32(c.b[c.off : c.off+count*4])
	c.off += need
	return v, nil
}

// bytes returns a count-byte view of the next slab (padded to 8).
func (c *cursor) bytes(what string, count int) ([]byte, error) {
	need := align8(count)
	if count < 0 || c.remaining() < need {
		return nil, fmt.Errorf("snapshot: %s declares %d bytes, only %d remain", what, count, c.remaining())
	}
	v := c.b[c.off : c.off+count]
	c.off += need
	return v, nil
}

// i64s returns a count-element int64 view of the next slab.
func (c *cursor) i64s(what string, count int) ([]int64, error) {
	if count < 0 || count > (len(c.b)-c.off)/8 {
		return nil, fmt.Errorf("snapshot: %s declares %d entries, only %d bytes remain", what, count, c.remaining())
	}
	v := viewInt64(c.b[c.off : c.off+count*8])
	c.off += count * 8
	return v, nil
}

// done verifies the whole payload was consumed exactly (the writer's enc
// keeps every payload a multiple of 8, so a well-formed section has no
// trailing bytes at all).
func (c *cursor) done() error {
	if c.remaining() != 0 {
		return fmt.Errorf("snapshot: %d unconsumed bytes in section", c.remaining())
	}
	return nil
}
