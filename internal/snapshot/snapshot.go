// Package snapshot implements the persistent binary format for built
// routing artefacts — the layer that turns the repository's in-process
// oracles into a service: build once, snapshot to disk, and serve forever
// without re-running any build.
//
// A .navsnap file packs, per section:
//
//   - the graph CSR (offsets + adjacency, reconstructed zero-rebuild via
//     graph.FromCSR),
//   - the exact 2-hop-cover labels of dist.TwoHop (hub order, CSR index,
//     hub/distance slabs, reconstructed via dist.TwoHopFromRaw),
//   - the analytic-metric descriptor — the gen registry name under which
//     the loader re-resolves the closed-form metric via gen.MetricFor,
//   - one or more frozen augmentation tables: full contact draws sampled
//     from a prepared scheme at snapshot time, served as augment.Static
//     instances,
//   - a JSON meta section recording how the snapshot was built.
//
// # Wire format
//
// All integers are little-endian; every array slab starts 8-byte aligned
// and is zero-padded to a multiple of 8 bytes, so on little-endian hosts
// the reader hands out zero-copy views into the file buffer (an
// mmap-friendly layout: no decode pass touches the big slabs).  Big-endian
// or misaligned hosts fall back to an explicit conversion loop.
//
//	header (24 bytes):
//	  [0:8)    magic "NAVSNAP1"
//	  [8:12)   u32 format version (currently 1)
//	  [12:16)  u32 section count S (at most MaxSections)
//	  [16:24)  u64 CRC-64/ECMA of the section table bytes
//	section table (S × 40 bytes):
//	  u32 kind, u32 flags (0), u64 offset, u64 length, u64 CRC-64/ECMA
//	  of the payload, u64 reserved (0)
//	payloads: 8-byte aligned, in table order
//
// Readers verify the magic, version, table checksum, section bounds and
// alignment, and every payload checksum before parsing a byte of payload;
// each section parser then bounds-checks every declared count against the
// section length before allocating, so truncated, corrupted or hostile
// inputs fail with an error — never a panic or an unbounded allocation
// (FuzzSnapshotRead pins this).
package snapshot

import (
	"fmt"
	"hash/crc64"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph"
)

// Format constants.  MagicV1 both identifies the file type and pins the
// major layout; incompatible layout changes bump formatVersion.
const (
	MagicV1       = "NAVSNAP1"
	FormatVersion = 1

	headerSize       = 24
	sectionEntrySize = 40
)

// Section kinds.  A snapshot carries at most one 2-hop section, in either
// representation: kindTwoHop is the raw CSR label layout, kindTwoHopPacked
// the delta+varint compressed one (written when the oracle was built
// packed; readers predating it reject only snapshots that actually use
// it, raw snapshots are unchanged byte for byte).
const (
	kindMeta         uint32 = 1
	kindGraph        uint32 = 2
	kindMetric       uint32 = 3
	kindTwoHop       uint32 = 4
	kindScheme       uint32 = 5
	kindTwoHopPacked uint32 = 6
)

// Reader hardening caps: structural bounds checked before any allocation,
// keeping a hostile header from forcing gigabyte allocations the way the
// graph.Read text caps do.
const (
	// MaxSections bounds the section table.
	MaxSections = 64
	// MaxNodes bounds every per-node array (2^28 nodes ≫ the 2^20 regime
	// the experiments reach, while keeping n·8 bytes comfortably in range).
	MaxNodes = 1 << 28
	// MaxNameLen bounds embedded strings (graph/metric/scheme names).
	MaxNameLen = 4096
	// MaxDraws bounds the frozen augmentation tables per scheme section.
	MaxDraws = 1024
)

// crcTable is the CRC-64/ECMA table shared by writer and reader.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Meta is the JSON build-provenance section: which family/size/seed the
// snapshot froze and under which oracle policy it was built.  It is
// informational for /v1/stats and tooling; the binary sections are
// self-describing and cross-checked against it on load.
type Meta struct {
	Tool          string `json:"tool"`
	FormatVersion int    `json:"format_version"`
	Family        string `json:"family"`
	N             int    `json:"n"`
	M             int    `json:"m"`
	Seed          uint64 `json:"seed"`
	Oracle        string `json:"oracle,omitempty"`
}

// SchemeTable is one frozen augmentation: Draws[k][u] is the long-range
// contact of node u in the k-th full draw of the named scheme (sampled at
// snapshot build time from the prepared scheme with the recorded seed).
type SchemeTable struct {
	Name  string
	Seed  uint64
	Draws [][]graph.NodeID
}

// Instance wraps one frozen draw as an augment.Instance (an
// augment.Static); draw indexes Draws.
func (st *SchemeTable) Instance(draw int) (augment.Instance, error) {
	if draw < 0 || draw >= len(st.Draws) {
		return nil, fmt.Errorf("snapshot: scheme %s has %d draws, requested %d", st.Name, len(st.Draws), draw)
	}
	return augment.NewStatic(st.Name, st.Draws[draw])
}

// Snapshot is the in-memory form of a .navsnap file: every artefact ready
// to serve, with no build step between Read and the first query.
type Snapshot struct {
	Meta  Meta
	Graph *graph.Graph
	// MetricName, when non-empty, declares that the graph's closed-form
	// analytic metric is packed (by gen registry name — the metric itself
	// is pure code, so the descriptor is its name).  Read resolves it into
	// Metric and fails loudly if the registry no longer recognises it.
	MetricName string
	// Metric is the resolved analytic metric; nil when MetricName is empty.
	// Writers may leave it nil — only MetricName is serialised.
	Metric dist.Source
	// TwoHop is the packed exact 2-hop-cover oracle, nil when not built
	// (families with an analytic metric usually skip it).
	TwoHop *dist.TwoHop
	// Schemes are the frozen augmentation tables, in section order.
	Schemes []SchemeTable
	// Quarantined lists the optional sections a tolerant load (ReadBytesTolerant)
	// dropped because their checksum or structure was damaged — e.g.
	// "twohop", "metric", "scheme[2]".  A strict load never populates it:
	// the same damage is a hard error there.  Servers use it to enter the
	// degraded answer tier instead of refusing to start.
	Quarantined []string
}

// Source returns the snapshot's O(1) point-to-point distance tier: the
// analytic metric when packed, else the 2-hop oracle, else nil (callers
// fall back to per-target BFS fields; the serve layer does so with a
// bounded field cache).
func (s *Snapshot) Source() dist.Source {
	if s.Metric != nil {
		return s.Metric
	}
	if s.TwoHop != nil {
		// A typed-nil guard: a nil *dist.TwoHop must not escape as a
		// non-nil dist.Source.
		return s.TwoHop
	}
	return nil
}

// Scheme returns the named frozen scheme table ("" means the first one).
func (s *Snapshot) Scheme(name string) (*SchemeTable, error) {
	if len(s.Schemes) == 0 {
		return nil, fmt.Errorf("snapshot: no augmentation tables packed")
	}
	if name == "" {
		return &s.Schemes[0], nil
	}
	for i := range s.Schemes {
		if s.Schemes[i].Name == name {
			return &s.Schemes[i], nil
		}
	}
	return nil, fmt.Errorf("snapshot: no scheme %q packed (have: %s)", name, schemeNames(s.Schemes))
}

func schemeNames(tables []SchemeTable) string {
	out := ""
	for i := range tables {
		if i > 0 {
			out += ", "
		}
		out += tables[i].Name
	}
	return out
}
