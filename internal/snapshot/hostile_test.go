package snapshot_test

// Hostile-input hardening for the snapshot reader: truncations, corrupted
// headers and tables, checksum mismatches, overflowing declared lengths,
// structural inconsistencies — every one must come back as an error, never
// a panic or an unbounded allocation.  The bit-flip sweep pins the
// strongest property the format is designed for: flipping ANY single bit
// of a well-formed file makes the reader reject it (magic/version/count
// checks cover the header, CRC-64 covers the table and every payload, and
// the canonical-layout rules cover all padding bytes).

import (
	"encoding/binary"
	"hash/crc64"
	"strings"
	"testing"

	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/snapshot"
)

var ecma = crc64.MakeTable(crc64.ECMA)

// smallSnapshot builds one well-formed snapshot (graph + meta + 2-hop +
// one frozen scheme) reused as the mutation base.
func smallSnapshot(t testing.TB) (*snapshot.Snapshot, []byte) {
	t.Helper()
	snap, _, err := core.BuildSnapshot(core.SnapshotOptions{
		Family: "ratree", N: 48, Seed: 3,
		Schemes: []string{"ball"}, Draws: 1,
		Oracle: dist.PolicyTwoHop,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return snap, b
}

// mustFail asserts ReadBytes rejects the input with an error containing
// want (empty want = any error).
func mustFail(t *testing.T, b []byte, want, context string) {
	t.Helper()
	s, err := snapshot.ReadBytes(b)
	if err == nil {
		t.Fatalf("%s: ReadBytes accepted hostile input (got snapshot with n=%d)", context, s.Graph.N())
	}
	if want != "" && !strings.Contains(err.Error(), want) {
		t.Fatalf("%s: error %q does not mention %q", context, err, want)
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestReadRejectsTruncation(t *testing.T) {
	_, b := smallSnapshot(t)
	for _, cut := range []int{0, 1, 7, 8, 15, 23, 24, 63, len(b) / 3, len(b) / 2, len(b) - 8, len(b) - 1} {
		mustFail(t, b[:cut], "", "truncated")
	}
}

func TestReadRejectsHeaderCorruption(t *testing.T) {
	_, b := smallSnapshot(t)

	bad := clone(b)
	bad[0] = 'X'
	mustFail(t, bad, "bad magic", "magic")

	bad = clone(b)
	binary.LittleEndian.PutUint32(bad[8:12], 2)
	mustFail(t, bad, "unsupported format version", "version")

	bad = clone(b)
	binary.LittleEndian.PutUint32(bad[12:16], 0)
	mustFail(t, bad, "section count", "zero sections")

	bad = clone(b)
	binary.LittleEndian.PutUint32(bad[12:16], snapshot.MaxSections+1)
	mustFail(t, bad, "section count", "over-cap sections")

	bad = clone(b)
	bad[16] ^= 0x01
	mustFail(t, bad, "table checksum", "table CRC")
}

// patchEntry rewrites one u64 field of section entry i and refreshes the
// table checksum, so the mutation reaches the per-section validation layer;
// patchEntry32 does the same for the two u32 fields (kind, flags).
func patchEntry(b []byte, i, fieldOff int, v uint64) []byte {
	out := clone(b)
	binary.LittleEndian.PutUint64(out[24+40*i+fieldOff:], v)
	return fixTableCRC(out)
}

func patchEntry32(b []byte, i, fieldOff int, v uint32) []byte {
	out := clone(b)
	binary.LittleEndian.PutUint32(out[24+40*i+fieldOff:], v)
	return fixTableCRC(out)
}

func fixTableCRC(out []byte) []byte {
	count := binary.LittleEndian.Uint32(out[12:16])
	binary.LittleEndian.PutUint64(out[16:24], crc64.Checksum(out[24:24+40*int(count)], ecma))
	return out
}

func TestReadRejectsTableCorruption(t *testing.T) {
	_, b := smallSnapshot(t)
	entry := func(i, off int) uint64 {
		return binary.LittleEndian.Uint64(b[24+40*i+off:])
	}

	mustFail(t, patchEntry32(b, 0, 4, 7), "reserved", "non-zero flags")
	mustFail(t, patchEntry(b, 0, 32, 7), "reserved", "non-zero reserved")
	mustFail(t, patchEntry(b, 1, 8, entry(1, 8)+8), "canonical layout", "non-canonical offset")
	mustFail(t, patchEntry(b, 1, 16, 1<<60), "overruns", "overflowing length")
	mustFail(t, patchEntry(b, 0, 16, entry(0, 16)+uint64(len(b))), "overruns", "length past EOF")
	mustFail(t, patchEntry(b, 2, 24, entry(2, 24)^1), "checksum mismatch", "payload CRC in table")
	mustFail(t, patchEntry32(b, 0, 0, 9), "unknown section kind", "unknown kind")
}

func TestReadRejectsPayloadCorruption(t *testing.T) {
	_, b := smallSnapshot(t)
	count := int(binary.LittleEndian.Uint32(b[12:16]))
	firstPayload := int(binary.LittleEndian.Uint64(b[24+8:])) // section 0 offset
	if firstPayload < 24+40*count {
		t.Fatalf("unexpected layout: first payload at %d", firstPayload)
	}
	bad := clone(b)
	bad[firstPayload] ^= 0xff
	mustFail(t, bad, "checksum mismatch", "payload byte flip")
}

func TestReadRejectsTrailingBytes(t *testing.T) {
	_, b := smallSnapshot(t)
	mustFail(t, append(clone(b), 0, 0, 0, 0, 0, 0, 0, 0), "trailing", "appended zeros")
	mustFail(t, append(clone(b), 0xde, 0xad), "trailing", "appended garbage")
}

// TestReadRejectsEveryBitFlip is the sweep: every single-bit corruption of
// a valid file must be rejected.
func TestReadRejectsEveryBitFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("bit-flip sweep skipped in -short mode")
	}
	_, b := smallSnapshot(t)
	bad := clone(b)
	for i := range bad {
		for bit := 0; bit < 8; bit++ {
			bad[i] ^= 1 << bit
			if _, err := snapshot.ReadBytes(bad); err == nil {
				t.Fatalf("flipping bit %d of byte %d/%d went undetected", bit, i, len(bad))
			}
			bad[i] ^= 1 << bit
		}
	}
}

// rawSec / parseSecs / assemble let the structural tests recompose a valid
// file's sections into hostile layouts with correct checksums, so the
// errors exercised are the structural ones, not the CRC layer.
type rawSec struct {
	kind    uint32
	payload []byte
}

func parseSecs(t *testing.T, b []byte) []rawSec {
	t.Helper()
	count := int(binary.LittleEndian.Uint32(b[12:16]))
	out := make([]rawSec, count)
	for i := range out {
		e := b[24+40*i:]
		off := binary.LittleEndian.Uint64(e[8:16])
		length := binary.LittleEndian.Uint64(e[16:24])
		out[i] = rawSec{
			kind:    binary.LittleEndian.Uint32(e[0:4]),
			payload: clone(b[off : off+length]),
		}
	}
	return out
}

func assemble(secs []rawSec) []byte {
	align8 := func(v int) int { return (v + 7) &^ 7 }
	tableEnd := 24 + 40*len(secs)
	total := align8(tableEnd)
	offsets := make([]int, len(secs))
	for i, s := range secs {
		offsets[i] = total
		total = align8(total + len(s.payload))
	}
	out := make([]byte, total)
	copy(out, snapshot.MagicV1)
	binary.LittleEndian.PutUint32(out[8:12], snapshot.FormatVersion)
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(secs)))
	for i, s := range secs {
		e := out[24+40*i:]
		binary.LittleEndian.PutUint32(e[0:4], s.kind)
		binary.LittleEndian.PutUint64(e[8:16], uint64(offsets[i]))
		binary.LittleEndian.PutUint64(e[16:24], uint64(len(s.payload)))
		binary.LittleEndian.PutUint64(e[24:32], crc64.Checksum(s.payload, ecma))
		copy(out[offsets[i]:], s.payload)
	}
	binary.LittleEndian.PutUint64(out[16:24], crc64.Checksum(out[24:tableEnd], ecma))
	return out
}

func TestReadRejectsStructuralAbuse(t *testing.T) {
	_, b := smallSnapshot(t)
	secs := parseSecs(t, b)
	// The writer emits meta, graph, metric?, twohop?, schemes in order;
	// this base has meta=0, graph=1, twohop=2, scheme=3.
	if len(secs) != 4 {
		t.Fatalf("base snapshot has %d sections, expected 4", len(secs))
	}
	meta, g, th, sch := secs[0], secs[1], secs[2], secs[3]

	mustFail(t, assemble([]rawSec{meta, th, sch}), "no graph section", "missing graph")
	mustFail(t, assemble([]rawSec{g, th, sch}), "no meta section", "missing meta")
	mustFail(t, assemble([]rawSec{meta, g, g, th}), "duplicate graph", "duplicate graph")
	mustFail(t, assemble([]rawSec{meta, meta, g}), "duplicate meta", "duplicate meta")
	mustFail(t, assemble([]rawSec{meta, g, th, th}), "duplicate 2-hop", "duplicate twohop")

	// Structurally valid sections whose declared counts lie.
	hugeN := clone(g.payload)
	binary.LittleEndian.PutUint64(hugeN, snapshot.MaxNodes+1)
	mustFail(t, assemble([]rawSec{meta, rawSec{2, hugeN}}), "exceeds cap", "node count over cap")

	shrunkN := clone(g.payload)
	binary.LittleEndian.PutUint64(shrunkN, 47) // n lies; offsets slab now misparses
	mustFail(t, assemble([]rawSec{meta, rawSec{2, shrunkN}}), "", "understated node count")

	zeroDraws := clone(sch.payload)
	binary.LittleEndian.PutUint64(zeroDraws, 0)
	mustFail(t, assemble([]rawSec{meta, g, rawSec{5, zeroDraws}}), "", "zero draws")

	// A metric descriptor for a family with no registered metric.
	badMetric := []byte("bogus-metric-name")
	padded := make([]byte, 8+((len(badMetric)+7)&^7))
	binary.LittleEndian.PutUint64(padded, uint64(len(badMetric)))
	copy(padded[8:], badMetric)
	mustFail(t, assemble([]rawSec{meta, g, rawSec{3, padded}}), "does not match graph name", "alien metric name")
}

func TestReadRejectsSemanticLies(t *testing.T) {
	// Meta/graph cross-check: meta claims a different size.
	snap, _ := smallSnapshot(t)
	snap.Meta.N++
	lied, err := snap.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	mustFail(t, lied, "meta says", "meta/graph n mismatch")
	snap.Meta.N--

	// Contact table entry out of range: the writer only length-checks
	// draws, so this round-trips to the reader's range check.
	snap.Schemes[0].Draws[0][0] = int32(snap.Graph.N())
	oob, err := snap.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	mustFail(t, oob, "out of range", "contact out of range")
	snap.Schemes[0].Draws[0][0] = 0

	// A metric name that matches neither the graph name nor the registry.
	snap.MetricName = snap.Graph.Name()
	unreg, err := snap.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	mustFail(t, unreg, "not in the gen registry", "unregistered metric")
	snap.MetricName = ""
}
