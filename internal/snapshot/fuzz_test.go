package snapshot_test

// FuzzSnapshotRead follows the graph.Read fuzzing precedent: the reader
// must never panic, hang, or allocate unboundedly on arbitrary bytes, and
// anything it accepts must be semantically stable — re-serialising an
// accepted snapshot yields canonical bytes that read back to the same
// artefacts (a fixpoint).  The committed corpus under
// testdata/fuzz/FuzzSnapshotRead seeds the interesting regions: a fully
// valid file, truncations, and header-level corruptions.

import (
	"bytes"
	"encoding/binary"
	"testing"

	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/snapshot"
)

func FuzzSnapshotRead(f *testing.F) {
	snap, _, err := core.BuildSnapshot(core.SnapshotOptions{
		Family: "ratree", N: 24, Seed: 5,
		Schemes: []string{"uniform"}, Draws: 1,
		Oracle: dist.PolicyTwoHop,
	})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := snap.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:16])
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(snapshot.MagicV1))
	f.Add([]byte{})
	hostile := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(hostile[len(hostile)-8:], 1<<60)
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, b []byte) {
		s, err := snapshot.ReadBytes(b)
		if err != nil {
			return
		}
		// Whatever was accepted must survive a canonicalising round trip.
		out, err := s.Bytes()
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-serialise: %v", err)
		}
		s2, err := snapshot.ReadBytes(out)
		if err != nil {
			t.Fatalf("re-serialised snapshot rejected: %v", err)
		}
		out2, err := s2.Bytes()
		if err != nil {
			t.Fatalf("second re-serialisation failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("write(read(write)) is not a fixpoint")
		}
		if s2.Graph.N() != s.Graph.N() || s2.Graph.M() != s.Graph.M() ||
			s2.Graph.Name() != s.Graph.Name() ||
			(s2.TwoHop != nil) != (s.TwoHop != nil) ||
			s2.MetricName != s.MetricName || len(s2.Schemes) != len(s.Schemes) {
			t.Fatalf("round trip changed the snapshot's shape")
		}
	})
}
