package augment

import (
	"fmt"
	"math"

	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/sampler"
	"navaug/internal/xrand"
)

// This file implements analytic contact samplers: for schemes whose contact
// law depends only on the distance to the contact (harmonic, ball), a
// vertex-transitive analytic metric (dist.Transitive, implemented in
// internal/graph/gen for cycles, tori, hypercubes and complete graphs)
// lets a draw factor as
//
//	draw a distance d from the profile-weighted law, then a uniform
//	node at distance exactly d,
//
// which costs O(eccentricity) preprocessing once and O(1)-ish per draw —
// no BFS, no O(n) enumeration, no per-node tables.  The sampled law is
// exactly the generic scheme's (the equality is tested against
// ContactDistribution of the generic instances), so these are drop-in
// replacements that make the schemes usable at n >= 10^6.

// AnalyticHarmonicScheme is the distance-harmonic scheme (see
// HarmonicScheme) drawn through a vertex-transitive analytic metric:
// Pr(u→v) ∝ dist(u,v)^-Exponent, sampled as one alias draw over distances
// followed by one uniform sphere sample.
type AnalyticHarmonicScheme struct {
	// Exponent is the decay exponent r in Pr(u→v) ∝ dist(u,v)^-r.
	Exponent float64
	// Metric is the vertex-transitive analytic metric of the graph the
	// scheme will be prepared on.
	Metric dist.Transitive
}

// NewAnalyticHarmonic returns the harmonic scheme with exponent r sampling
// through the vertex-transitive metric t.
func NewAnalyticHarmonic(r float64, t dist.Transitive) *AnalyticHarmonicScheme {
	return &AnalyticHarmonicScheme{Exponent: r, Metric: t}
}

// Name implements Scheme.  The sampled law is identical to the generic
// harmonic scheme's, so it reports under the same name.
func (s *AnalyticHarmonicScheme) Name() string { return fmt.Sprintf("harmonic-r%g", s.Exponent) }

// Prepare implements Scheme: one alias table over the distance profile
// weighted by d^-r, built in O(eccentricity).
func (s *AnalyticHarmonicScheme) Prepare(g *graph.Graph) (Instance, error) {
	if s.Metric == nil {
		return nil, fmt.Errorf("augment: analytic harmonic scheme needs a metric")
	}
	if s.Metric.N() != g.N() {
		return nil, fmt.Errorf("augment: analytic metric covers %d nodes, graph has %d", s.Metric.N(), g.N())
	}
	if s.Exponent < 0 || math.IsNaN(s.Exponent) {
		return nil, fmt.Errorf("augment: harmonic exponent must be >= 0, got %g", s.Exponent)
	}
	ecc := s.Metric.Eccentricity()
	if ecc < 1 {
		return nil, fmt.Errorf("augment: analytic harmonic scheme needs a graph of diameter >= 1")
	}
	// weights[d] = |sphere(d)|·d^-r for d = 1..ecc (index 0 stays 0: a node
	// never draws itself under the harmonic law).
	weights := make([]float64, ecc+1)
	for d := int32(1); d <= ecc; d++ {
		weights[d] = s.Metric.SphereSize(d) * math.Pow(float64(d), -s.Exponent)
	}
	alias, err := sampler.NewAlias(weights)
	if err != nil {
		return nil, fmt.Errorf("augment: analytic harmonic alias table: %w", err)
	}
	return &analyticHarmonicInstance{metric: s.Metric, exponent: s.Exponent, dists: alias, weights: weights}, nil
}

type analyticHarmonicInstance struct {
	metric   dist.Transitive
	exponent float64
	dists    sampler.Alias
	weights  []float64
}

// Contact implements Instance: one O(1) alias draw of the distance, one
// uniform sphere sample.
func (h *analyticHarmonicInstance) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	d := h.dists.Draw(rng)
	return h.metric.SampleAtDistance(u, d, rng)
}

// ContactDistribution implements Distributional: φ_u(v) = d(u,v)^-r / Z,
// the same law the generic harmonic scheme reports.
func (h *analyticHarmonicInstance) ContactDistribution(u graph.NodeID) []float64 {
	n := h.metric.N()
	out := make([]float64, n)
	total := 0.0
	for _, w := range h.weights {
		total += w
	}
	if total == 0 {
		out[u] = 1
		return out
	}
	for v := 0; v < n; v++ {
		if graph.NodeID(v) == u {
			continue
		}
		d := h.metric.Dist(u, graph.NodeID(v))
		out[v] = math.Pow(float64(d), -h.exponent) / total
	}
	return out
}

// AnalyticBallScheme is the paper's Theorem 4 ball scheme (see BallScheme)
// drawn through a vertex-transitive analytic metric: a uniform scale
// k ∈ {1..⌈log n⌉}, then a uniform node of the ball B(u, 2^k) — sampled as
// one per-scale alias draw over distances followed by one uniform sphere
// sample, instead of enumerating the ball.
type AnalyticBallScheme struct {
	// Metric is the vertex-transitive analytic metric of the graph the
	// scheme will be prepared on.
	Metric dist.Transitive
}

// NewAnalyticBall returns the Theorem 4 scheme sampling through the
// vertex-transitive metric t.
func NewAnalyticBall(t dist.Transitive) *AnalyticBallScheme {
	return &AnalyticBallScheme{Metric: t}
}

// Name implements Scheme.  The sampled law is identical to the generic
// ball scheme's, so it reports under the same name.
func (s *AnalyticBallScheme) Name() string { return "ball" }

// Prepare implements Scheme: one alias table per scale over the distance
// profile truncated at the scale's radius (the ball always contains u
// itself at distance 0, whose draw means "no link", exactly like the
// generic sampling process).
func (s *AnalyticBallScheme) Prepare(g *graph.Graph) (Instance, error) {
	if s.Metric == nil {
		return nil, fmt.Errorf("augment: analytic ball scheme needs a metric")
	}
	n := g.N()
	if s.Metric.N() != n {
		return nil, fmt.Errorf("augment: analytic metric covers %d nodes, graph has %d", s.Metric.N(), n)
	}
	maxScale := dist.CeilLog2(n)
	if maxScale < 1 {
		maxScale = 1
	}
	ecc := s.Metric.Eccentricity()
	inst := &analyticBallInstance{
		metric:    s.Metric,
		maxScale:  maxScale,
		perScale:  make([]sampler.Alias, maxScale+1),
		ballSizes: make([]float64, maxScale+1),
	}
	weights := make([]float64, ecc+1)
	for k := 1; k <= maxScale; k++ {
		radius := scaleRadius32(k, n)
		if radius > ecc {
			radius = ecc
		}
		size := 0.0
		for d := int32(0); d <= radius; d++ {
			weights[d] = s.Metric.SphereSize(d)
			size += weights[d]
		}
		alias, err := sampler.NewAlias(weights[:radius+1])
		if err != nil {
			return nil, fmt.Errorf("augment: analytic ball alias table (scale %d): %w", k, err)
		}
		inst.perScale[k] = alias
		inst.ballSizes[k] = size
	}
	return inst, nil
}

// scaleRadius32 mirrors ballInstance.scaleRadius: 2^k with n standing in
// when the shift would overflow.
func scaleRadius32(k, n int) int32 {
	if k < 31 {
		return int32(1) << uint(k)
	}
	return int32(n)
}

type analyticBallInstance struct {
	metric   dist.Transitive
	maxScale int
	// perScale[k] samples a distance d with probability |sphere(d)|/|B_k|
	// for d within scale k's radius; index 0 is unused.
	perScale []sampler.Alias
	// ballSizes[k] = |B(u, 2^k)| (node-independent by vertex-transitivity).
	ballSizes []float64
}

// Contact implements Instance: uniform scale, O(1) alias draw of the
// distance within the ball, uniform sphere sample.  Distance 0 draws u
// itself — "no link" — with probability 1/|B_k|, exactly as enumerating
// the ball would.
func (b *analyticBallInstance) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	k := 1 + rng.Intn(b.maxScale)
	d := b.perScale[k].Draw(rng)
	if d == 0 {
		return u
	}
	return b.metric.SampleAtDistance(u, d, rng)
}

// ContactDistribution implements Distributional with the paper's formula
// φ_u(v) = (1/⌈log n⌉)·Σ_{k ≥ r(v)} 1/|B_k(u)| (r(v) the smallest scale
// whose ball contains v), matching the generic ball instance exactly.
func (b *analyticBallInstance) ContactDistribution(u graph.NodeID) []float64 {
	n := b.metric.N()
	phi := make([]float64, n)
	pScale := 1.0 / float64(b.maxScale)
	ecc := b.metric.Eccentricity()
	// perDist[d] = Σ over scales whose radius covers d of pScale/|B_k|.
	perDist := make([]float64, ecc+1)
	for k := 1; k <= b.maxScale; k++ {
		radius := scaleRadius32(k, n)
		if radius > ecc {
			radius = ecc
		}
		for d := int32(0); d <= radius; d++ {
			perDist[d] += pScale / b.ballSizes[k]
		}
	}
	for v := 0; v < n; v++ {
		phi[v] = perDist[b.metric.Dist(u, graph.NodeID(v))]
	}
	return phi
}
