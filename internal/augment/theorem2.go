package augment

import (
	"fmt"
	"math"

	"navaug/internal/decomp"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/label"
	"navaug/internal/xrand"
)

// Theorem2Scheme is the paper's matrix-based universal scheme (M, L) with
// M = (A + U) / 2:
//
//   - the labeling L comes from a path decomposition of the graph: bags are
//     numbered 1..b along the path and every node gets the highest-level bag
//     index among the bags containing it;
//   - the ancestor matrix A sends, for each ancestor j of the current label
//     (in the binary level hierarchy), probability 1/(1+log2 n) towards the
//     nodes labeled j;
//   - the uniform matrix U sends probability 1/n to every node, which keeps
//     the O(√n) guarantee on graphs with large pathshape.
//
// Greedy routing under (M, L) takes O(min{ps(G)·log² n, √n}) expected steps
// where ps(G) is the pathshape of the decomposition used.
//
// The scheme never materialises the n×n matrix: ancestors are enumerated on
// the fly and the uniform half is a direct uniform node draw.
type Theorem2Scheme struct {
	// Decompose produces the path decomposition the labeling is derived
	// from.  When nil, decomp.Best with an exact APSP metric is used, which
	// is only feasible for small graphs; experiments pass the construction
	// matching the graph family (clique path, centroid, ...).
	Decompose func(g *graph.Graph) (*decomp.PathDecomposition, error)
	// AncestorOnly drops the uniform half of M (ablation E10a).  The paper's
	// analysis needs the uniform half only to preserve the √n fallback.
	AncestorOnly bool
	// SchemeName overrides the default name in reports.
	SchemeName string
}

// NewTheorem2Scheme returns the (M, L) scheme built on the given path
// decomposition constructor.
func NewTheorem2Scheme(decompose func(g *graph.Graph) (*decomp.PathDecomposition, error)) *Theorem2Scheme {
	return &Theorem2Scheme{Decompose: decompose}
}

// Name implements Scheme.
func (s *Theorem2Scheme) Name() string {
	if s.SchemeName != "" {
		return s.SchemeName
	}
	if s.AncestorOnly {
		return "theorem2-ancestor-only"
	}
	return "theorem2"
}

type theorem2Instance struct {
	n            int
	labels       []int
	nodesByLabel [][]graph.NodeID
	maxAncestor  int     // ancestors are restricted to [1, maxAncestor] (= n per the paper)
	ancProb      float64 // 1 / (1 + log2 n)
	ancestorOnly bool
	// ancByLabel[ℓ] memoises label.Ancestors(ℓ, maxAncestor) for every label
	// the decomposition produced, so Contact never allocates: the per-draw
	// ancestor enumeration is paid once in Prepare.
	ancByLabel [][]int
}

// Prepare implements Scheme.
func (s *Theorem2Scheme) Prepare(g *graph.Graph) (Instance, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("augment: theorem2 scheme needs a non-empty graph")
	}
	decompose := s.Decompose
	if decompose == nil {
		decompose = func(g *graph.Graph) (*decomp.PathDecomposition, error) {
			pd, _ := decomp.Best(g, dist.NewAPSP(g).Dist)
			return pd, nil
		}
	}
	pd, err := decompose(g)
	if err != nil {
		return nil, fmt.Errorf("augment: theorem2 decomposition failed: %w", err)
	}
	pd = pd.Reduce()
	lab, err := label.FromPathDecomposition(g, pd)
	if err != nil {
		return nil, fmt.Errorf("augment: theorem2 labeling failed: %w", err)
	}
	logTerm := math.Log2(float64(n))
	if logTerm < 1 {
		logTerm = 1
	}
	inst := &theorem2Instance{
		n:            n,
		labels:       lab.Labels,
		nodesByLabel: lab.NodesByLabel,
		maxAncestor:  n,
		ancProb:      1.0 / (1.0 + logTerm),
		ancestorOnly: s.AncestorOnly,
	}
	maxLabel := 0
	for _, lbl := range lab.Labels {
		if lbl > maxLabel {
			maxLabel = lbl
		}
	}
	inst.ancByLabel = make([][]int, maxLabel+1)
	for lbl := 1; lbl <= maxLabel; lbl++ {
		inst.ancByLabel[lbl] = label.Ancestors(lbl, inst.maxAncestor)
	}
	return inst, nil
}

// Contact implements Instance.
func (t *theorem2Instance) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	useAncestor := t.ancestorOnly || rng.Bool()
	if !useAncestor {
		// Uniform half of M.
		return graph.NodeID(rng.Intn(t.n))
	}
	// Ancestor half: each ancestor j of label(u) within [1, n] receives
	// probability ancProb; the remaining mass is "no link".  The ancestor
	// list was memoised in Prepare, so this path is O(1) and allocation-free.
	anc := t.ancByLabel[t.labels[u]]
	if len(anc) == 0 {
		return u
	}
	x := rng.Float64()
	idx := int(x / t.ancProb)
	if idx >= len(anc) {
		return u // leftover mass: no long-range link this time
	}
	j := anc[idx]
	if j >= len(t.nodesByLabel) {
		return u // ancestor index beyond the number of bags: no node has it
	}
	cands := t.nodesByLabel[j]
	if len(cands) == 0 {
		return u
	}
	return cands[rng.Intn(len(cands))]
}

// ContactDistribution implements Distributional.  The distribution is the
// row of M = (A+U)/2 for label L(u), spread over the nodes carrying each
// target label: half the mass is uniform over all nodes, and the other half
// gives each ancestor label j of L(u) probability 1/(1+log2 n) split evenly
// among the nodes labeled j (unspent ancestor mass stays on u as "no link").
func (t *theorem2Instance) ContactDistribution(u graph.NodeID) []float64 {
	phi := make([]float64, t.n)
	uniformHalf := 0.5
	ancestorHalf := 0.5
	if t.ancestorOnly {
		uniformHalf = 0
		ancestorHalf = 1
	}
	if uniformHalf > 0 {
		p := uniformHalf / float64(t.n)
		for v := range phi {
			phi[v] += p
		}
	}
	spent := 0.0
	for _, j := range t.ancByLabel[t.labels[u]] {
		if j >= len(t.nodesByLabel) {
			continue
		}
		cands := t.nodesByLabel[j]
		if len(cands) == 0 {
			continue
		}
		p := ancestorHalf * t.ancProb / float64(len(cands))
		for _, v := range cands {
			phi[v] += p
		}
		spent += ancestorHalf * t.ancProb
	}
	// Whatever the ancestor half did not spend is "no link" mass on u.
	phi[u] += ancestorHalf - spent
	return phi
}
