package augment

import (
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// ResampleDirty redraws the long-range contacts of the dirty nodes in a
// frozen contact table, in place.  It is the augmentation half of churn
// repair: when edge deltas dirty a node (its distance field changed — see
// dist.DynTwoHop), the contact it drew from the pre-churn distribution no
// longer reflects the scheme, so the churn pipeline redraws exactly those
// nodes and leaves everyone else's frozen link untouched.
//
// Determinism: each dirty node's draw is seeded from (seed, gen, node)
// alone — one golden-ratio mix per node, independent of the dirty slice's
// length, of the order other nodes appear in, and of how many draws the
// instance consumes per contact.  The same (seed, gen, dirty set) therefore
// produces the same table on every run and at every worker count.
func ResampleDirty(inst Instance, contacts []graph.NodeID, dirty []graph.NodeID, seed, gen uint64) {
	rng := xrand.New(seed)
	for _, u := range dirty {
		rng.Reseed(seed ^ (gen+1)*0x9e3779b97f4a7c15 ^ (uint64(u)+1)*0xbf58476d1ce4e5b9)
		contacts[u] = inst.Contact(u, rng)
	}
}
