package augment

import (
	"fmt"
	"math"

	"navaug/internal/xrand"
)

// This file implements the constructive side of Theorem 1: for ANY
// augmentation matrix A of size n there is a labeling of the n-node path
// under which greedy routing needs Ω(√n) expected steps.  The proof is a
// counting argument showing some set I of ⌈√n⌉ labels has total internal
// probability mass below 1; assigning I to √n consecutive path nodes leaves
// that segment essentially free of internal shortcuts.
//
// AdversarialPathLabeling searches for such a set with a mix of structured
// candidates (arithmetic progressions, lightest rows) and randomised local
// search, then lays the labels out on the path.

// AdversarialLabeling is the result of the Theorem 1 construction.
type AdversarialLabeling struct {
	// Perm[v] is the 1-based label assigned to path node v (nodes are assumed
	// to be numbered 0..n-1 along the path).
	Perm []int
	// SegmentStart and SegmentEnd delimit (half-open) the block of path
	// positions carrying the low-mass label set I.
	SegmentStart, SegmentEnd int
	// Mass is Σ_{i≠j∈I} P(i,j), guaranteed < 1.
	Mass float64
	// Source and Target are the suggested endpoints for routing experiments:
	// both inside the segment, |segment|/3 apart, per the proof of Theorem 1.
	Source, Target int
}

// AdversarialPathLabeling finds a labeling of the n-node path (n = A.K())
// under which the matrix scheme has Ω(√n) greedy diameter.  It returns an
// error only if the search fails, which the counting argument guarantees
// not to happen for reasonable search budgets.
func AdversarialPathLabeling(a *Matrix, rng *xrand.RNG) (*AdversarialLabeling, error) {
	n := a.K()
	if n < 9 {
		return nil, fmt.Errorf("augment: adversarial labeling needs n >= 9, got %d", n)
	}
	s := int(math.Ceil(math.Sqrt(float64(n))))
	set, mass, ok := findLowMassSet(a, s, rng)
	if !ok {
		return nil, fmt.Errorf("augment: no label set of size %d with internal mass < 1 found", s)
	}

	// Lay out the labels: the segment of s consecutive positions starts at
	// n/3 (clamped), carrying the labels of I in random order; remaining
	// labels fill the rest of the path in random order.
	start := n / 3
	if start+s > n {
		start = n - s
	}
	inI := make([]bool, n+1)
	for _, lbl := range set {
		inI[lbl] = true
	}
	others := make([]int, 0, n-s)
	for lbl := 1; lbl <= n; lbl++ {
		if !inI[lbl] {
			others = append(others, lbl)
		}
	}
	rng.Shuffle(len(others), func(i, j int) { others[i], others[j] = others[j], others[i] })
	shuffledI := append([]int(nil), set...)
	rng.Shuffle(len(shuffledI), func(i, j int) { shuffledI[i], shuffledI[j] = shuffledI[j], shuffledI[i] })

	perm := make([]int, n)
	oi := 0
	ii := 0
	for v := 0; v < n; v++ {
		if v >= start && v < start+s {
			perm[v] = shuffledI[ii]
			ii++
		} else {
			perm[v] = others[oi]
			oi++
		}
	}
	third := s / 3
	if third < 1 {
		third = 1
	}
	return &AdversarialLabeling{
		Perm:         perm,
		SegmentStart: start,
		SegmentEnd:   start + s,
		Mass:         mass,
		Source:       start + third,
		Target:       start + 2*third,
	}, nil
}

// findLowMassSet looks for a size-s subset of [1,n] whose internal matrix
// mass is below 1.
func findLowMassSet(a *Matrix, s int, rng *xrand.RNG) ([]int, float64, bool) {
	n := a.K()
	best := []int(nil)
	bestMass := math.Inf(1)
	consider := func(set []int) bool {
		m := a.SubsetMass(set)
		if m < bestMass {
			bestMass = m
			best = append([]int(nil), set...)
		}
		return m < 1
	}

	// Candidate 1: arithmetic progression with spacing n/s (spread labels).
	if set := arithmeticSet(n, s); consider(set) {
		return best, bestMass, true
	}
	// Candidate 2: the s labels with the lightest row+column mass.
	if set := lightestSet(a, s); consider(set) {
		return best, bestMass, true
	}
	// Candidate 3: random restarts with greedy swaps.
	for restart := 0; restart < 30; restart++ {
		set := randomSet(n, s, rng)
		for iter := 0; iter < 4*s; iter++ {
			if consider(set) {
				return best, bestMass, true
			}
			// Swap out the heaviest contributor for a random outside label.
			worstIdx := heaviestMember(a, set)
			replacement := 1 + rng.Intn(n)
			for contains(set, replacement) {
				replacement = 1 + rng.Intn(n)
			}
			set[worstIdx] = replacement
		}
		if consider(set) {
			return best, bestMass, true
		}
	}
	return best, bestMass, bestMass < 1
}

func arithmeticSet(n, s int) []int {
	step := n / s
	if step < 1 {
		step = 1
	}
	set := make([]int, 0, s)
	for v := 1; v <= n && len(set) < s; v += step {
		set = append(set, v)
	}
	for lbl := 1; lbl <= n && len(set) < s; lbl++ {
		if !contains(set, lbl) {
			set = append(set, lbl)
		}
	}
	return set
}

func lightestSet(a *Matrix, s int) []int {
	n := a.K()
	type weighted struct {
		lbl  int
		mass float64
	}
	ws := make([]weighted, n)
	for i := 1; i <= n; i++ {
		total := a.RowSum(i)
		for j := 1; j <= n; j++ {
			total += a.P(j, i)
		}
		ws[i-1] = weighted{lbl: i, mass: total}
	}
	// selection by partial sort
	for i := 0; i < s; i++ {
		minIdx := i
		for j := i + 1; j < n; j++ {
			if ws[j].mass < ws[minIdx].mass {
				minIdx = j
			}
		}
		ws[i], ws[minIdx] = ws[minIdx], ws[i]
	}
	set := make([]int, s)
	for i := 0; i < s; i++ {
		set[i] = ws[i].lbl
	}
	return set
}

func randomSet(n, s int, rng *xrand.RNG) []int {
	picks := rng.Sample(n, s)
	set := make([]int, s)
	for i, p := range picks {
		set[i] = p + 1
	}
	return set
}

// heaviestMember returns the index in set of the label contributing the most
// internal mass (its row plus column restricted to the set).
func heaviestMember(a *Matrix, set []int) int {
	worst := 0
	worstMass := -1.0
	for idx, i := range set {
		m := 0.0
		for _, j := range set {
			if i != j {
				m += a.P(i, j) + a.P(j, i)
			}
		}
		if m > worstMass {
			worstMass = m
			worst = idx
		}
	}
	return worst
}

func contains(set []int, x int) bool {
	for _, v := range set {
		if v == x {
			return true
		}
	}
	return false
}
