package augment

import (
	"math"
	"testing"

	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

// Every scheme shipped with the package must implement Distributional, its
// distribution must be a proper probability vector, and the Contact sampler
// must match the distribution empirically.  These tests pin the sampler and
// the analytic form to each other, which is what makes the exact
// greedy-diameter DP in internal/exact trustworthy.

func allDistributionalSchemes(t *testing.T) map[string]struct {
	g    *graph.Graph
	inst Distributional
} {
	t.Helper()
	out := map[string]struct {
		g    *graph.Graph
		inst Distributional
	}{}
	add := func(name string, g *graph.Graph, scheme Scheme) {
		inst, err := scheme.Prepare(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, ok := inst.(Distributional)
		if !ok {
			t.Fatalf("%s: instance does not implement Distributional", name)
		}
		out[name] = struct {
			g    *graph.Graph
			inst Distributional
		}{g: g, inst: d}
	}

	rng := xrand.New(404)
	pathG := gen.Path(40)
	gridG := gen.Grid2D(7, 7)
	intervalG, model := gen.RandomIntervalGraph(40, 3, rng)

	add("none", pathG, NewNoAugmentation())
	add("uniform", pathG, NewUniformScheme())
	add("ball", gridG, NewBallScheme())
	add("ball-fixed2", gridG, &BallScheme{FixedScale: 2})
	add("ball-rank", pathG, &BallScheme{RankUniform: true})
	add("harmonic", gridG, NewHarmonicScheme(1.5))
	add("theorem2-path", pathG, NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.OfPathGraph(g)
	}))
	pd := decomp.IntervalCliquePath(model)
	add("theorem2-interval", intervalG, NewTheorem2Scheme(func(*graph.Graph) (*decomp.PathDecomposition, error) {
		return pd, nil
	}))
	add("matrix-bijective", pathG, &NameIndependentScheme{Matrix: NewHarmonicMatrix(40)})
	labels, err := NewBlockLabels(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	add("matrix-labeling", pathG, &MatrixLabelingScheme{Matrix: NewHarmonicMatrix(5), Labels: labels})
	return out
}

func TestContactDistributionsAreProbabilityVectors(t *testing.T) {
	for name, c := range allDistributionalSchemes(t) {
		n := c.g.N()
		for u := 0; u < n; u++ {
			dist := c.inst.ContactDistribution(graph.NodeID(u))
			if len(dist) != n {
				t.Fatalf("%s: distribution of node %d has length %d, want %d", name, u, len(dist), n)
			}
			sum := 0.0
			for v, p := range dist {
				if p < -1e-12 || p > 1+1e-9 {
					t.Fatalf("%s: φ_%d(%d) = %v out of range", name, u, v, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("%s: φ_%d sums to %v", name, u, sum)
			}
		}
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	const draws = 40000
	rng := xrand.New(77)
	for name, c := range allDistributionalSchemes(t) {
		// Check a handful of nodes per scheme to keep runtime modest.
		nodes := []graph.NodeID{0, graph.NodeID(c.g.N() / 2), graph.NodeID(c.g.N() - 1)}
		for _, u := range nodes {
			want := c.inst.ContactDistribution(u)
			counts := make([]int, c.g.N())
			for i := 0; i < draws; i++ {
				counts[c.inst.Contact(u, rng)]++
			}
			for v, p := range want {
				got := float64(counts[v]) / draws
				// Absolute tolerance: generous enough for 40k draws, tight
				// enough to catch systematically wrong distributions.
				if math.Abs(got-p) > 0.015+0.1*p {
					t.Fatalf("%s: node %d -> %d: empirical %v vs analytic %v", name, u, v, got, p)
				}
			}
		}
	}
}

func TestUniformDistributionExactForm(t *testing.T) {
	g := gen.Path(10)
	inst, _ := NewUniformScheme().Prepare(g)
	d := inst.(Distributional).ContactDistribution(3)
	for _, p := range d {
		if math.Abs(p-0.1) > 1e-12 {
			t.Fatalf("uniform distribution entry %v", p)
		}
	}
}

func TestNoAugmentationDistributionExactForm(t *testing.T) {
	g := gen.Path(5)
	inst, _ := NewNoAugmentation().Prepare(g)
	d := inst.(Distributional).ContactDistribution(2)
	for v, p := range d {
		want := 0.0
		if v == 2 {
			want = 1
		}
		if p != want {
			t.Fatalf("no-augmentation distribution entry %d = %v", v, p)
		}
	}
}

func TestBallDistributionMatchesPaperFormula(t *testing.T) {
	// Independent re-derivation of φ_u for the ball scheme on a small path,
	// mirroring the formula in the paper (and in the sampler test of
	// scheme_test.go) but compared against ContactDistribution directly.
	n := 16
	g := gen.Path(n)
	inst, _ := NewBallScheme().Prepare(g)
	d := inst.(Distributional).ContactDistribution(5)
	logN := 4
	want := make([]float64, n)
	for k := 1; k <= logN; k++ {
		radius := 1 << uint(k)
		var ball []int
		for v := 0; v < n; v++ {
			if abs(v-5) <= radius {
				ball = append(ball, v)
			}
		}
		for _, v := range ball {
			want[v] += 1.0 / (float64(logN) * float64(len(ball)))
		}
	}
	for v := 0; v < n; v++ {
		if math.Abs(d[v]-want[v]) > 1e-9 {
			t.Fatalf("ball distribution at %d: %v vs %v", v, d[v], want[v])
		}
	}
}

func TestHarmonicDistributionNormalisation(t *testing.T) {
	g := gen.Grid2D(5, 5)
	inst, _ := NewHarmonicScheme(2).Prepare(g)
	d := inst.(Distributional).ContactDistribution(12)
	if d[12] != 0 {
		t.Fatal("harmonic distribution must put no mass on the node itself when neighbours exist")
	}
	// Closer nodes get more mass: node 11 (distance 1) vs node 0 (distance 4).
	if d[11] <= d[0] {
		t.Fatal("harmonic distribution not decreasing in distance")
	}
}

func TestTheorem2DistributionUniformHalf(t *testing.T) {
	g := gen.Path(32)
	inst, _ := NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.OfPathGraph(g)
	}).Prepare(g)
	d := inst.(Distributional).ContactDistribution(7)
	// Every node receives at least the uniform half's 0.5/n.
	for v, p := range d {
		if p < 0.5/32-1e-12 {
			t.Fatalf("node %d receives %v < uniform half share", v, p)
		}
	}
}

func TestMatrixDistributionRespectsEmptyLabels(t *testing.T) {
	g := gen.Path(4)
	p := [][]float64{
		{0, 1, 0},
		{0, 1, 0},
		{0, 1, 0},
	}
	m, _ := NewMatrix(p)
	labels := []int{1, 1, 3, 3} // label 2 is empty
	inst, err := (&MatrixLabelingScheme{Matrix: m, Labels: labels}).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	d := inst.(Distributional).ContactDistribution(0)
	if d[0] != 1 {
		t.Fatalf("all mass should collapse to 'no link', got %v", d)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
