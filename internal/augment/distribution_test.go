package augment

import (
	"math"
	"testing"

	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

// Every scheme shipped with the package must implement Distributional, its
// distribution must be a proper probability vector, and the Contact sampler
// must match the distribution empirically.  These tests pin the sampler and
// the analytic form to each other, which is what makes the exact
// greedy-diameter DP in internal/exact trustworthy.

func allDistributionalSchemes(t *testing.T) map[string]struct {
	g    *graph.Graph
	inst Distributional
} {
	t.Helper()
	out := map[string]struct {
		g    *graph.Graph
		inst Distributional
	}{}
	add := func(name string, g *graph.Graph, scheme Scheme) {
		inst, err := scheme.Prepare(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		d, ok := inst.(Distributional)
		if !ok {
			t.Fatalf("%s: instance does not implement Distributional", name)
		}
		out[name] = struct {
			g    *graph.Graph
			inst Distributional
		}{g: g, inst: d}
	}

	rng := xrand.New(404)
	pathG := gen.Path(40)
	gridG := gen.Grid2D(7, 7)
	intervalG, model := gen.RandomIntervalGraph(40, 3, rng)

	add("none", pathG, NewNoAugmentation())
	add("uniform", pathG, NewUniformScheme())
	add("ball", gridG, NewBallScheme())
	add("ball-fixed2", gridG, &BallScheme{FixedScale: 2})
	add("ball-rank", pathG, &BallScheme{RankUniform: true})
	add("harmonic", gridG, NewHarmonicScheme(1.5))
	add("theorem2-path", pathG, NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.OfPathGraph(g)
	}))
	pd := decomp.IntervalCliquePath(model)
	add("theorem2-interval", intervalG, NewTheorem2Scheme(func(*graph.Graph) (*decomp.PathDecomposition, error) {
		return pd, nil
	}))
	add("matrix-bijective", pathG, &NameIndependentScheme{Matrix: NewHarmonicMatrix(40)})
	labels, err := NewBlockLabels(40, 5)
	if err != nil {
		t.Fatal(err)
	}
	add("matrix-labeling", pathG, &MatrixLabelingScheme{Matrix: NewHarmonicMatrix(5), Labels: labels})
	return out
}

func TestContactDistributionsAreProbabilityVectors(t *testing.T) {
	for name, c := range allDistributionalSchemes(t) {
		n := c.g.N()
		for u := 0; u < n; u++ {
			dist := c.inst.ContactDistribution(graph.NodeID(u))
			if len(dist) != n {
				t.Fatalf("%s: distribution of node %d has length %d, want %d", name, u, len(dist), n)
			}
			sum := 0.0
			for v, p := range dist {
				if p < -1e-12 || p > 1+1e-9 {
					t.Fatalf("%s: φ_%d(%d) = %v out of range", name, u, v, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("%s: φ_%d sums to %v", name, u, sum)
			}
		}
	}
}

func TestSamplerMatchesDistribution(t *testing.T) {
	const draws = 40000
	rng := xrand.New(77)
	for name, c := range allDistributionalSchemes(t) {
		// Check a handful of nodes per scheme to keep runtime modest.
		nodes := []graph.NodeID{0, graph.NodeID(c.g.N() / 2), graph.NodeID(c.g.N() - 1)}
		for _, u := range nodes {
			want := c.inst.ContactDistribution(u)
			counts := make([]int, c.g.N())
			for i := 0; i < draws; i++ {
				counts[c.inst.Contact(u, rng)]++
			}
			for v, p := range want {
				got := float64(counts[v]) / draws
				// Absolute tolerance: generous enough for 40k draws, tight
				// enough to catch systematically wrong distributions.
				if math.Abs(got-p) > 0.015+0.1*p {
					t.Fatalf("%s: node %d -> %d: empirical %v vs analytic %v", name, u, v, got, p)
				}
			}
		}
	}
}

// chiSquareQuantile approximates the upper quantile of the χ² distribution
// with df degrees of freedom via the Wilson–Hilferty transform; z is the
// standard-normal quantile of the desired significance level.
func chiSquareQuantile(df int, z float64) float64 {
	d := float64(df)
	c := 2.0 / (9.0 * d)
	x := 1 - c + z*math.Sqrt(c)
	return d * x * x * x
}

// TestSamplerChiSquareGoodnessOfFit is the statistical contract behind the
// O(1) samplers: for every shipped scheme, the empirical contact frequencies
// must fit the analytic ContactDistribution under a χ² goodness-of-fit test.
// Outcomes with expected count below 5 are pooled into one bin, per the
// usual validity rule.  Seeds are derived per (scheme, node), so the test is
// deterministic; the significance level (z = 4, roughly 3e-5 one-sided)
// keeps false alarms negligible across the ~30 tests while still failing
// hard on any systematically wrong sampler.
func TestSamplerChiSquareGoodnessOfFit(t *testing.T) {
	const draws = 50000
	for name, c := range allDistributionalSchemes(t) {
		n := c.g.N()
		seed := uint64(0x601d)
		for _, ch := range name {
			seed = seed*131 + uint64(ch)
		}
		for _, u := range []graph.NodeID{0, graph.NodeID(n / 2), graph.NodeID(n - 1)} {
			want := c.inst.ContactDistribution(u)
			rng := xrand.New(seed + uint64(u)*0x9e3779b97f4a7c15)
			counts := make([]int, n)
			for i := 0; i < draws; i++ {
				counts[c.inst.Contact(u, rng)]++
			}
			chi2 := 0.0
			bins := 0
			pooledExp, pooledObs := 0.0, 0.0
			for v, p := range want {
				exp := p * draws
				if exp == 0 {
					continue // covered by the zero-probability property test
				}
				if exp < 5 {
					pooledExp += exp
					pooledObs += float64(counts[v])
					continue
				}
				diff := float64(counts[v]) - exp
				chi2 += diff * diff / exp
				bins++
			}
			if pooledExp >= 5 {
				diff := pooledObs - pooledExp
				chi2 += diff * diff / pooledExp
				bins++
			}
			if bins < 2 {
				continue // degenerate distribution (e.g. all mass on one node)
			}
			if limit := chiSquareQuantile(bins-1, 4); chi2 > limit {
				t.Fatalf("%s: node %d: χ² = %.1f over %d bins exceeds %.1f — sampler does not match ContactDistribution",
					name, u, chi2, bins, limit)
			}
		}
	}
}

// TestSamplerNeverReturnsZeroProbabilityNode is the hard half of the
// sampler/distribution contract: a node with φ_u(v) = 0 must never be
// drawn, not merely be rare — the alias tables guarantee zero-weight
// outcomes are unreachable, and the fallback paths skip zero weights.
func TestSamplerNeverReturnsZeroProbabilityNode(t *testing.T) {
	const draws = 20000
	rng := xrand.New(0xbad0)
	for name, c := range allDistributionalSchemes(t) {
		n := c.g.N()
		for _, u := range []graph.NodeID{0, graph.NodeID(n / 2), graph.NodeID(n - 1)} {
			want := c.inst.ContactDistribution(u)
			for i := 0; i < draws; i++ {
				v := c.inst.Contact(u, rng)
				if want[v] == 0 {
					t.Fatalf("%s: node %d drew contact %d which has zero probability", name, u, v)
				}
			}
		}
	}
}

// TestSampleRowNeverReturnsZeroProbabilityColumn is the matrix-level form
// of the property: a column with zero mass in the row (and the "no link"
// outcome 0 when the row sums to exactly 1) must never come out of the
// row's alias table.
func TestSampleRowNeverReturnsZeroProbabilityColumn(t *testing.T) {
	m, err := NewMatrix([][]float64{
		{0, 0.5, 0, 0.5},   // leftover 0: outcome 0 must not appear
		{0.25, 0, 0, 0.25}, // leftover 0.5: outcome 0 is legitimate
		{0, 0, 1, 0},
		{0.1, 0, 0.2, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(0xc01)
	for i := 1; i <= m.K(); i++ {
		for trial := 0; trial < 20000; trial++ {
			j := m.SampleRow(i, rng)
			if j == 0 {
				if m.RowSum(i) == 1 {
					t.Fatalf("row %d: drew 'no link' from a row with full mass", i)
				}
				continue
			}
			if m.P(i, j) == 0 {
				t.Fatalf("row %d: drew zero-probability column %d", i, j)
			}
		}
	}
}

func TestUniformDistributionExactForm(t *testing.T) {
	g := gen.Path(10)
	inst, _ := NewUniformScheme().Prepare(g)
	d := inst.(Distributional).ContactDistribution(3)
	for _, p := range d {
		if math.Abs(p-0.1) > 1e-12 {
			t.Fatalf("uniform distribution entry %v", p)
		}
	}
}

func TestNoAugmentationDistributionExactForm(t *testing.T) {
	g := gen.Path(5)
	inst, _ := NewNoAugmentation().Prepare(g)
	d := inst.(Distributional).ContactDistribution(2)
	for v, p := range d {
		want := 0.0
		if v == 2 {
			want = 1
		}
		if p != want {
			t.Fatalf("no-augmentation distribution entry %d = %v", v, p)
		}
	}
}

func TestBallDistributionMatchesPaperFormula(t *testing.T) {
	// Independent re-derivation of φ_u for the ball scheme on a small path,
	// mirroring the formula in the paper (and in the sampler test of
	// scheme_test.go) but compared against ContactDistribution directly.
	n := 16
	g := gen.Path(n)
	inst, _ := NewBallScheme().Prepare(g)
	d := inst.(Distributional).ContactDistribution(5)
	logN := 4
	want := make([]float64, n)
	for k := 1; k <= logN; k++ {
		radius := 1 << uint(k)
		var ball []int
		for v := 0; v < n; v++ {
			if abs(v-5) <= radius {
				ball = append(ball, v)
			}
		}
		for _, v := range ball {
			want[v] += 1.0 / (float64(logN) * float64(len(ball)))
		}
	}
	for v := 0; v < n; v++ {
		if math.Abs(d[v]-want[v]) > 1e-9 {
			t.Fatalf("ball distribution at %d: %v vs %v", v, d[v], want[v])
		}
	}
}

func TestHarmonicDistributionNormalisation(t *testing.T) {
	g := gen.Grid2D(5, 5)
	inst, _ := NewHarmonicScheme(2).Prepare(g)
	d := inst.(Distributional).ContactDistribution(12)
	if d[12] != 0 {
		t.Fatal("harmonic distribution must put no mass on the node itself when neighbours exist")
	}
	// Closer nodes get more mass: node 11 (distance 1) vs node 0 (distance 4).
	if d[11] <= d[0] {
		t.Fatal("harmonic distribution not decreasing in distance")
	}
}

func TestTheorem2DistributionUniformHalf(t *testing.T) {
	g := gen.Path(32)
	inst, _ := NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.OfPathGraph(g)
	}).Prepare(g)
	d := inst.(Distributional).ContactDistribution(7)
	// Every node receives at least the uniform half's 0.5/n.
	for v, p := range d {
		if p < 0.5/32-1e-12 {
			t.Fatalf("node %d receives %v < uniform half share", v, p)
		}
	}
}

func TestMatrixDistributionRespectsEmptyLabels(t *testing.T) {
	g := gen.Path(4)
	p := [][]float64{
		{0, 1, 0},
		{0, 1, 0},
		{0, 1, 0},
	}
	m, _ := NewMatrix(p)
	labels := []int{1, 1, 3, 3} // label 2 is empty
	inst, err := (&MatrixLabelingScheme{Matrix: m, Labels: labels}).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	d := inst.(Distributional).ContactDistribution(0)
	if d[0] != 1 {
		t.Fatalf("all mass should collapse to 'no link', got %v", d)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
