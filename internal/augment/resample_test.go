package augment_test

import (
	"testing"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

func resampleTestGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(int32(i-1), int32(i))
	}
	return b.Build()
}

func TestResampleDirtyDeterminism(t *testing.T) {
	g := resampleTestGraph(64)
	inst, err := augment.NewUniformScheme().Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	base := augment.SampleAll(inst, g.N(), xrand.New(1))

	run := func(dirty []graph.NodeID) []graph.NodeID {
		contacts := append([]graph.NodeID(nil), base...)
		augment.ResampleDirty(inst, contacts, dirty, 7, 3)
		return contacts
	}
	a := run([]graph.NodeID{3, 10, 40})
	b := run([]graph.NodeID{3, 10, 40})
	for u := range a {
		if a[u] != b[u] {
			t.Fatalf("node %d: %d vs %d across identical runs", u, a[u], b[u])
		}
	}

	// Per-node draws depend only on (seed, gen, node): resampling a superset
	// gives the same contacts on the shared nodes, and untouched nodes keep
	// their frozen contact.
	c := run([]graph.NodeID{1, 3, 10, 40, 55})
	dirtySet := map[graph.NodeID]bool{3: true, 10: true, 40: true}
	for u := range a {
		if dirtySet[graph.NodeID(u)] {
			if a[u] != c[u] {
				t.Fatalf("node %d: draw depends on the rest of the dirty set", u)
			}
		} else if a[u] != base[u] {
			t.Fatalf("node %d: clean contact changed by resample", u)
		}
	}

	// A different generation redraws differently (for at least one node —
	// uniform over 64 nodes collides with probability ~3/64 per node).
	contacts := append([]graph.NodeID(nil), base...)
	augment.ResampleDirty(inst, contacts, []graph.NodeID{3, 10, 40}, 7, 4)
	same := 0
	for _, u := range []graph.NodeID{3, 10, 40} {
		if contacts[u] == a[u] {
			same++
		}
	}
	if same == 3 {
		t.Fatal("generation does not enter the resample seed")
	}
}
