// Package augment implements the augmentation schemes studied in the paper:
// the uniform scheme (Peleg's O(√n) bound), dense matrix-based schemes and
// the Theorem 1 adversarial labeling, the Theorem 2 ancestor-matrix scheme
// driven by a path decomposition, the Theorem 3 compressed-label schemes,
// and the headline Theorem 4 ball scheme with greedy diameter Õ(n^{1/3}).
//
// A Scheme describes how to augment any graph; Prepare builds per-graph
// state (distances, decompositions, labelings, sampling tables) and returns
// an Instance that draws long-range contacts node by node.  Instances are
// required to be safe for concurrent use: all mutable state lives in the
// *xrand.RNG passed to Contact, which each worker owns exclusively.
//
// The cost contract between the two phases is deliberately asymmetric:
// Prepare may be heavy — run BFS from every node, build per-node or per-row
// Walker alias tables (internal/sampler), precompute ancestor lists — while
// Contact must be O(1) amortised and allocation-free, because the Monte
// Carlo engine calls it on every hop of every routed trial.  Schemes whose
// exact per-node tables would need Θ(n²) memory (harmonic, ball) honour the
// contract up to a configurable node-count threshold and fall back to
// bounded-memory per-draw sampling beyond it.
//
// Greedy routing never revisits a node (the distance to the target strictly
// decreases every step), so drawing contacts lazily at first visit is
// statistically identical to drawing the whole augmentation up front.
// route.Scratch provides that per-trial memoisation allocation-free; the
// map-backed Memo wrapper remains for tests and one-off callers.
package augment

import (
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// Scheme is a recipe for augmenting any graph with one long-range link per
// node.
type Scheme interface {
	// Name returns a short identifier used in reports and benchmarks.
	Name() string
	// Prepare builds the per-graph state needed to draw long-range contacts.
	// Prepare may be heavy: all per-draw work a scheme can hoist (BFS
	// passes, alias tables, ancestor lists) belongs here, paid once per
	// graph, so that Contact stays on its O(1) budget.
	Prepare(g *graph.Graph) (Instance, error)
}

// Instance draws long-range contacts for a specific graph.
// Implementations must be safe for concurrent use by multiple goroutines.
type Instance interface {
	// Contact draws the long-range contact of u.  Returning u itself means
	// "no long-range link" (some schemes put probability mass on no link).
	//
	// Contact is the innermost call of the simulator's hot path and must be
	// O(1) amortised and allocation-free (schemes with a documented
	// precompute threshold may degrade to bounded-memory per-draw sampling
	// above it, never below).
	Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID
}

// Distributional is implemented by instances that can report the exact
// per-node contact distribution φ_u.  The returned vector has length N;
// entry v is Pr{contact of u is v}, and the entry at u itself carries the
// probability of having no effective long-range link (self contacts and
// unspent row mass).  The vector always sums to 1 (up to rounding).
//
// Every scheme shipped with the package implements Distributional, which is
// what the exact greedy-diameter dynamic program (internal/exact) and the
// sampler-vs-distribution tests build on.
type Distributional interface {
	Instance
	// ContactDistribution returns φ_u as a fresh slice of length N.
	ContactDistribution(u graph.NodeID) []float64
}

// InstanceFunc adapts a function to the Instance interface.
type InstanceFunc func(u graph.NodeID, rng *xrand.RNG) graph.NodeID

// Contact implements Instance.
func (f InstanceFunc) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID { return f(u, rng) }

// Memo memoises contact draws so that, within one routing trial, every node
// keeps a single consistent long-range contact.  A Memo is not safe for
// concurrent use; create one per routing trial (they are cheap).
type Memo struct {
	inst     Instance
	contacts map[graph.NodeID]graph.NodeID
}

// NewMemo wraps an Instance with per-trial memoisation.
func NewMemo(inst Instance) *Memo {
	return &Memo{inst: inst, contacts: make(map[graph.NodeID]graph.NodeID, 32)}
}

// Contact returns the memoised contact of u, drawing it on first use.
func (m *Memo) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	if c, ok := m.contacts[u]; ok {
		return c
	}
	c := m.inst.Contact(u, rng)
	m.contacts[u] = c
	return c
}

// Reset clears the memo so the wrapper can be reused for a fresh trial.
func (m *Memo) Reset() {
	clear(m.contacts)
}

// Drawn returns the number of distinct nodes whose contact has been drawn.
func (m *Memo) Drawn() int { return len(m.contacts) }

// SampleAll eagerly draws the long-range contact of every node, returning
// contacts[u] = long-range contact of u (possibly u itself).  It is used by
// tests and by experiments that need a full augmentation snapshot.
func SampleAll(inst Instance, n int, rng *xrand.RNG) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for u := 0; u < n; u++ {
		out[u] = inst.Contact(graph.NodeID(u), rng)
	}
	return out
}
