package augment

import (
	"fmt"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// UniformScheme is the name-independent uniform augmentation: every node's
// long-range contact is a uniformly random node.  Peleg observed that it
// makes every n-node graph O(√n)-navigable; Theorem 1 shows it is optimal
// among name-independent matrix schemes.
type UniformScheme struct{}

// NewUniformScheme returns the uniform scheme.
func NewUniformScheme() UniformScheme { return UniformScheme{} }

// Name implements Scheme.
func (UniformScheme) Name() string { return "uniform" }

// Prepare implements Scheme.
func (UniformScheme) Prepare(g *graph.Graph) (Instance, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("augment: uniform scheme needs a non-empty graph")
	}
	return &uniformInstance{n: n}, nil
}

type uniformInstance struct {
	n int
}

// Contact implements Instance.
func (u *uniformInstance) Contact(_ graph.NodeID, rng *xrand.RNG) graph.NodeID {
	return graph.NodeID(rng.Intn(u.n))
}

// ContactDistribution implements Distributional: every node is equally
// likely, including the node itself (which acts as "no link").
func (u *uniformInstance) ContactDistribution(_ graph.NodeID) []float64 {
	dist := make([]float64, u.n)
	p := 1.0 / float64(u.n)
	for i := range dist {
		dist[i] = p
	}
	return dist
}

// NoAugmentation is the degenerate scheme with no long-range links at all:
// greedy routing reduces to shortest-path walking in G, so the expected
// number of steps equals the distance.  It is the baseline in several
// experiments.
type NoAugmentation struct{}

// NewNoAugmentation returns the no-op scheme.
func NewNoAugmentation() NoAugmentation { return NoAugmentation{} }

// Name implements Scheme.
func (NoAugmentation) Name() string { return "none" }

// Prepare implements Scheme.
func (NoAugmentation) Prepare(g *graph.Graph) (Instance, error) {
	return &noAugmentationInstance{n: g.N()}, nil
}

type noAugmentationInstance struct {
	n int
}

// Contact implements Instance: the node itself, i.e. no long-range link.
func (*noAugmentationInstance) Contact(u graph.NodeID, _ *xrand.RNG) graph.NodeID { return u }

// ContactDistribution implements Distributional.
func (i *noAugmentationInstance) ContactDistribution(u graph.NodeID) []float64 {
	dist := make([]float64, i.n)
	dist[u] = 1
	return dist
}
