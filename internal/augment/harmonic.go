package augment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"navaug/internal/graph"
	"navaug/internal/sampler"
	"navaug/internal/xrand"
)

// HarmonicScheme is the distance-harmonic augmentation: the long-range
// contact of u is node v ≠ u with probability proportional to
// dist_G(u,v)^(-Exponent).  With Exponent equal to the dimension it is the
// scheme Kleinberg proved polylog-navigable on d-dimensional meshes [13];
// the paper uses it as the canonical example of a scheme that is excellent
// on specific classes but not universal (it degrades on paths and trees when
// the exponent does not match the growth rate).
type HarmonicScheme struct {
	// Exponent is the decay exponent r in Pr(u→v) ∝ dist(u,v)^-r.
	Exponent float64
	// MaxPrecomputeNodes bounds the graph size up to which the instance
	// keeps per-node alias tables (O(1) draws after a node's first, O(n²)
	// ints of memory).  Beyond it every draw falls back to bounded-memory
	// per-draw sampling.  Zero means DefaultPrecomputeNodes; negative
	// disables the tables entirely.
	MaxPrecomputeNodes int
	// EagerPrepare builds every node's alias table already in Prepare with
	// a parallel all-nodes BFS pass, instead of lazily on each node's first
	// draw.  Worth it when far more than n contacts will be drawn (exact
	// DPs, distribution tests, very long simulations).
	EagerPrepare bool
}

// DefaultPrecomputeNodes is the default graph-size ceiling for the O(n²)
// per-node alias tables of the harmonic and ball schemes.  At this size the
// flat tables cost n²·12 bytes ≈ 200 MiB, the upper end of what a
// simulation sweep should pin per prepared scheme.
const DefaultPrecomputeNodes = 4096

// NewHarmonicScheme returns the distance-harmonic scheme with exponent r.
func NewHarmonicScheme(r float64) *HarmonicScheme { return &HarmonicScheme{Exponent: r} }

// Name implements Scheme.
func (s *HarmonicScheme) Name() string { return fmt.Sprintf("harmonic-r%g", s.Exponent) }

type harmonicInstance struct {
	g        *graph.Graph
	exponent float64
	// powTable[d] memoises d^-r over every distance the graph can realise
	// (powTable[0] = 0 so "self" contributes no weight), shared by the
	// table and fallback paths.
	powTable []float64
	// tables holds the per-node alias rows (nil above the precompute
	// threshold): row u is the harmonic distribution of u's contact.
	tables *sampler.LazyRows
	// scratch pools the BFS buffers used by row fills and by the fallback
	// per-draw sampling path.
	scratch sync.Pool
}

type harmonicScratch struct {
	dist    []int32
	queue   []int32
	weights []float64
}

// precomputeLimit resolves the MaxPrecomputeNodes knob shared by the
// harmonic and ball schemes.
func precomputeLimit(configured int) int {
	switch {
	case configured == 0:
		return DefaultPrecomputeNodes
	case configured < 0:
		return 0
	default:
		return configured
	}
}

// Prepare implements Scheme.  Within the precompute threshold the instance
// carries one Walker alias table per node — filled lazily on the node's
// first draw (or all up front with EagerPrepare), after which Contact is a
// single O(1) table draw.  Beyond the threshold the instance keeps the
// bounded-memory per-draw sampling path.
func (s *HarmonicScheme) Prepare(g *graph.Graph) (Instance, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("augment: harmonic scheme needs a non-empty graph")
	}
	if s.Exponent < 0 || math.IsNaN(s.Exponent) {
		return nil, fmt.Errorf("augment: harmonic exponent must be >= 0, got %g", s.Exponent)
	}
	inst := &harmonicInstance{g: g, exponent: s.Exponent}
	// Distances are at most n-1, so one table covers every pow the scheme
	// can ever need; building it is O(n) math.Pow calls, paid once.
	inst.powTable = make([]float64, n)
	for d := 1; d < n; d++ {
		inst.powTable[d] = math.Pow(float64(d), -s.Exponent)
	}
	inst.scratch.New = func() any {
		return &harmonicScratch{
			dist:    make([]int32, n),
			queue:   make([]int32, 0, n),
			weights: make([]float64, n),
		}
	}
	if n <= precomputeLimit(s.MaxPrecomputeNodes) {
		inst.tables = sampler.NewLazyRows(n, n, inst)
		if s.EagerPrepare {
			inst.tables.BuildAll(runtime.GOMAXPROCS(0))
		}
	}
	return inst, nil
}

// FillRow implements sampler.RowFiller: one BFS from u, harmonic weights
// dist(u,·)^-r into the row (0 for u itself and unreachable nodes).
func (h *harmonicInstance) FillRow(u int32, weights []float64) {
	sc := h.scratch.Get().(*harmonicScratch)
	defer h.scratch.Put(sc)
	h.fillWeights(u, sc, weights)
}

// fillWeights runs one BFS from u and fills weights with the unnormalised
// harmonic weights dist(u,·)^-r (0 for u itself and unreachable nodes),
// returning the total weight.
func (h *harmonicInstance) fillWeights(u graph.NodeID, sc *harmonicScratch, weights []float64) float64 {
	for i := range sc.dist {
		sc.dist[i] = graph.Unreachable
	}
	h.g.BFSInto(u, sc.dist, sc.queue)
	total := 0.0
	for v, d := range sc.dist {
		if d <= 0 { // u itself or unreachable
			weights[v] = 0
			continue
		}
		w := h.powTable[d]
		weights[v] = w
		total += w
	}
	return total
}

// ContactDistribution implements Distributional: probabilities proportional
// to dist(u,·)^-r over all reachable nodes other than u (u keeps the mass
// only when it has no reachable neighbours at all).
func (h *harmonicInstance) ContactDistribution(u graph.NodeID) []float64 {
	n := h.g.N()
	out := make([]float64, n)
	d := h.g.BFS(u)
	total := 0.0
	for v, dv := range d {
		if dv <= 0 {
			continue
		}
		w := h.powTable[dv]
		out[v] = w
		total += w
	}
	if total == 0 {
		out[u] = 1
		return out
	}
	for v := range out {
		out[v] /= total
	}
	return out
}

// Contact implements Instance.  With tables present it is one O(1) alias
// draw (the node's row is built on its first draw); otherwise each draw
// runs one BFS from u and samples via a linear CDF scan.
func (h *harmonicInstance) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	if h.tables != nil {
		return h.tables.Draw(u, rng)
	}
	sc := h.scratch.Get().(*harmonicScratch)
	defer h.scratch.Put(sc)
	total := h.fillWeights(u, sc, sc.weights)
	if total == 0 {
		return u // isolated node: no candidates
	}
	x := rng.Float64() * total
	acc := 0.0
	for v, w := range sc.weights {
		if w == 0 {
			continue
		}
		acc += w
		if x < acc {
			return graph.NodeID(v)
		}
	}
	// Floating point slack: fall back to the last positive-weight node.
	for v := len(sc.weights) - 1; v >= 0; v-- {
		if sc.weights[v] > 0 {
			return graph.NodeID(v)
		}
	}
	return u
}
