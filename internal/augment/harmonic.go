package augment

import (
	"fmt"
	"math"
	"sync"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// HarmonicScheme is the distance-harmonic augmentation: the long-range
// contact of u is node v ≠ u with probability proportional to
// dist_G(u,v)^(-Exponent).  With Exponent equal to the dimension it is the
// scheme Kleinberg proved polylog-navigable on d-dimensional meshes [13];
// the paper uses it as the canonical example of a scheme that is excellent
// on specific classes but not universal (it degrades on paths and trees when
// the exponent does not match the growth rate).
type HarmonicScheme struct {
	// Exponent is the decay exponent r in Pr(u→v) ∝ dist(u,v)^-r.
	Exponent float64
}

// NewHarmonicScheme returns the distance-harmonic scheme with exponent r.
func NewHarmonicScheme(r float64) *HarmonicScheme { return &HarmonicScheme{Exponent: r} }

// Name implements Scheme.
func (s *HarmonicScheme) Name() string { return fmt.Sprintf("harmonic-r%g", s.Exponent) }

type harmonicInstance struct {
	g        *graph.Graph
	exponent float64
	scratch  sync.Pool
}

type harmonicScratch struct {
	dist    []int32
	queue   []int32
	weights []float64
}

// Prepare implements Scheme.
func (s *HarmonicScheme) Prepare(g *graph.Graph) (Instance, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("augment: harmonic scheme needs a non-empty graph")
	}
	if s.Exponent < 0 {
		return nil, fmt.Errorf("augment: harmonic exponent must be >= 0, got %g", s.Exponent)
	}
	inst := &harmonicInstance{g: g, exponent: s.Exponent}
	n := g.N()
	inst.scratch.New = func() any {
		return &harmonicScratch{
			dist:    make([]int32, n),
			queue:   make([]int32, 0, n),
			weights: make([]float64, n),
		}
	}
	return inst, nil
}

// ContactDistribution implements Distributional: probabilities proportional
// to dist(u,·)^-r over all reachable nodes other than u (u keeps the mass
// only when it has no reachable neighbours at all).
func (h *harmonicInstance) ContactDistribution(u graph.NodeID) []float64 {
	n := h.g.N()
	out := make([]float64, n)
	d := h.g.BFS(u)
	total := 0.0
	for v, dv := range d {
		if dv <= 0 {
			continue
		}
		w := math.Pow(float64(dv), -h.exponent)
		out[v] = w
		total += w
	}
	if total == 0 {
		out[u] = 1
		return out
	}
	for v := range out {
		out[v] /= total
	}
	return out
}

// Contact implements Instance.  Each draw runs one BFS from u and samples a
// node with probability proportional to dist(u,·)^-r.
func (h *harmonicInstance) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	sc := h.scratch.Get().(*harmonicScratch)
	defer h.scratch.Put(sc)
	for i := range sc.dist {
		sc.dist[i] = graph.Unreachable
	}
	h.g.BFSInto(u, sc.dist, sc.queue)
	total := 0.0
	for v, d := range sc.dist {
		if d <= 0 { // u itself or unreachable
			sc.weights[v] = 0
			continue
		}
		w := math.Pow(float64(d), -h.exponent)
		sc.weights[v] = w
		total += w
	}
	if total == 0 {
		return u // isolated node: no candidates
	}
	x := rng.Float64() * total
	acc := 0.0
	for v, w := range sc.weights {
		if w == 0 {
			continue
		}
		acc += w
		if x < acc {
			return graph.NodeID(v)
		}
	}
	// Floating point slack: fall back to the last positive-weight node.
	for v := len(sc.weights) - 1; v >= 0; v-- {
		if sc.weights[v] > 0 {
			return graph.NodeID(v)
		}
	}
	return u
}
