package augment

import (
	"math"
	"testing"

	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

// transitiveFixtures are the vertex-transitive (graph, metric) pairs the
// analytic samplers are checked on: odd/even cycles and torus dimensions,
// a hypercube and a complete graph, covering every sphere-multiplicity
// edge case.
func transitiveFixtures() []struct {
	name   string
	g      *graph.Graph
	metric dist.Transitive
} {
	return []struct {
		name   string
		g      *graph.Graph
		metric dist.Transitive
	}{
		{"cycle-odd", gen.Cycle(33), gen.CycleMetric(33)},
		{"cycle-even", gen.Cycle(32), gen.CycleMetric(32)},
		{"torus", gen.Torus2D(5, 8), gen.Torus2DMetric(5, 8)},
		{"hypercube", gen.Hypercube(5), gen.HypercubeMetric(5)},
		{"complete", gen.Complete(13), gen.CompleteMetric(13)},
	}
}

// TestAnalyticHarmonicMatchesGenericDistribution: the analytic harmonic
// sampler's contact law must equal the generic (BFS-backed) harmonic
// scheme's exactly, node by node.
func TestAnalyticHarmonicMatchesGenericDistribution(t *testing.T) {
	for _, fx := range transitiveFixtures() {
		for _, r := range []float64{1, 2} {
			generic, err := NewHarmonicScheme(r).Prepare(fx.g)
			if err != nil {
				t.Fatalf("%s: generic prepare: %v", fx.name, err)
			}
			analytic, err := NewAnalyticHarmonic(r, fx.metric).Prepare(fx.g)
			if err != nil {
				t.Fatalf("%s: analytic prepare: %v", fx.name, err)
			}
			assertSameDistribution(t, fx.name, fx.g.N(), generic.(Distributional), analytic.(Distributional))
		}
	}
}

// TestAnalyticBallMatchesGenericDistribution: same for the Theorem 4 ball
// scheme, whose law mixes per-scale uniform balls (including the self
// "no link" mass at distance 0).
func TestAnalyticBallMatchesGenericDistribution(t *testing.T) {
	for _, fx := range transitiveFixtures() {
		generic, err := NewBallScheme().Prepare(fx.g)
		if err != nil {
			t.Fatalf("%s: generic prepare: %v", fx.name, err)
		}
		analytic, err := NewAnalyticBall(fx.metric).Prepare(fx.g)
		if err != nil {
			t.Fatalf("%s: analytic prepare: %v", fx.name, err)
		}
		assertSameDistribution(t, fx.name, fx.g.N(), generic.(Distributional), analytic.(Distributional))
	}
}

func assertSameDistribution(t *testing.T, name string, n int, a, b Distributional) {
	t.Helper()
	for u := 0; u < n; u++ {
		da := a.ContactDistribution(graph.NodeID(u))
		db := b.ContactDistribution(graph.NodeID(u))
		for v := 0; v < n; v++ {
			if math.Abs(da[v]-db[v]) > 1e-9 {
				t.Fatalf("%s: phi_%d(%d) generic=%g analytic=%g", name, u, v, da[v], db[v])
			}
		}
	}
}

// TestAnalyticSamplersMatchTheirDistribution: the empirical frequency of
// analytic Contact draws must converge to the reported distribution (total
// variation check, mirroring the generic sampler-vs-distribution tests).
func TestAnalyticSamplersMatchTheirDistribution(t *testing.T) {
	rng := xrand.New(77)
	for _, fx := range transitiveFixtures() {
		schemes := []Scheme{
			NewAnalyticHarmonic(2, fx.metric),
			NewAnalyticBall(fx.metric),
		}
		for _, s := range schemes {
			inst, err := s.Prepare(fx.g)
			if err != nil {
				t.Fatalf("%s/%s: %v", fx.name, s.Name(), err)
			}
			d := inst.(Distributional)
			n := fx.g.N()
			u := graph.NodeID(n / 2)
			phi := d.ContactDistribution(u)
			const samples = 60000
			counts := make([]float64, n)
			for i := 0; i < samples; i++ {
				counts[inst.Contact(u, rng)]++
			}
			tv := 0.0
			for v := 0; v < n; v++ {
				tv += math.Abs(counts[v]/samples - phi[v])
			}
			tv /= 2
			// TV distance between the empirical law of 60k draws and a
			// distribution over <= 40 support points is ~O(sqrt(n/samples));
			// 0.03 gives a wide margin while still catching a wrong sampler.
			if tv > 0.03 {
				t.Fatalf("%s/%s: total variation %g between sampled and reported distribution", fx.name, s.Name(), tv)
			}
		}
	}
}

// TestAnalyticSchemesRouteAtMillionScale is the package-level witness of
// the large-n contract: preparing an analytic scheme on a million-node
// torus costs O(eccentricity), and a contact draw touches no O(n) state.
func TestAnalyticSchemesRouteAtMillionScale(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node prepare is unnecessary under -short")
	}
	const side = 1000
	g := gen.Torus2D(side, side) // 10^6 nodes
	metric := gen.Torus2DMetric(side, side)
	harm, err := NewAnalyticHarmonic(2, metric).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	ball, err := NewAnalyticBall(metric).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9)
	for i := 0; i < 2000; i++ {
		u := graph.NodeID(rng.Intn(side * side))
		if v := harm.Contact(u, rng); metric.Dist(u, v) == 0 && u != v {
			t.Fatal("harmonic drew an inconsistent contact")
		}
		if v := ball.Contact(u, rng); v < 0 || int(v) >= side*side {
			t.Fatal("ball drew an out-of-range contact")
		}
	}
}
