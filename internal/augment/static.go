package augment

import (
	"fmt"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// Static is an Instance backed by a frozen contact table: contacts[u] is
// the long-range contact of u (u itself meaning "no link"), drawn once and
// never redrawn.  It is how snapshots serve augmentations — a snapshot
// packs one or more full contact tables sampled from a prepared scheme at
// build time, and the serve layer routes over those concrete augmented
// graphs without ever re-running the scheme's Prepare.  Contact is a plain
// array read: O(1), allocation-free, trivially safe for concurrent use.
type Static struct {
	name     string
	contacts []graph.NodeID
}

// NewStatic wraps a contact table as an Instance.  Every entry must be a
// valid node id of the n-node graph the table was drawn on (entries equal
// to their own index mean "no long-range link").
func NewStatic(name string, contacts []graph.NodeID) (*Static, error) {
	n := graph.NodeID(len(contacts))
	for u, c := range contacts {
		if c < 0 || c >= n {
			return nil, fmt.Errorf("augment: static contact table entry %d = %d out of range [0,%d)", u, c, n)
		}
	}
	return &Static{name: name, contacts: contacts}, nil
}

// Freeze eagerly samples one full augmentation draw of inst on an n-node
// graph and freezes it as a Static table.  The draw consumes the rng
// exactly as SampleAll does, so equal seeds give equal tables.
func Freeze(name string, inst Instance, n int, rng *xrand.RNG) *Static {
	return &Static{name: name, contacts: SampleAll(inst, n, rng)}
}

// Name returns the identifier of the scheme the table was drawn from.
func (s *Static) Name() string { return s.name }

// N returns the number of nodes the table covers.
func (s *Static) N() int { return len(s.contacts) }

// Contacts exposes the underlying table as a shared, read-only slice.
func (s *Static) Contacts() []graph.NodeID { return s.contacts }

// Contact implements Instance by indexing the frozen table; the rng is
// ignored (the draw happened at freeze time).
func (s *Static) Contact(u graph.NodeID, _ *xrand.RNG) graph.NodeID { return s.contacts[u] }
