package augment

import (
	"math"
	"testing"
	"testing/quick"

	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix([][]float64{{0.5, 0.5}, {0.2, 0.3}}); err != nil {
		t.Fatalf("valid matrix rejected: %v", err)
	}
	if _, err := NewMatrix([][]float64{{0.5}, {0.2, 0.3}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	if _, err := NewMatrix([][]float64{{0.7, 0.7}, {0, 0}}); err == nil {
		t.Fatal("row sum > 1 accepted")
	}
	if _, err := NewMatrix([][]float64{{-0.1, 0}, {0, 0}}); err == nil {
		t.Fatal("negative entry accepted")
	}
	if _, err := NewMatrix([][]float64{{math.NaN(), 0}, {0, 0}}); err == nil {
		t.Fatal("NaN entry accepted")
	}
}

func TestMatrixAccessors(t *testing.T) {
	m, err := NewMatrix([][]float64{{0.1, 0.2}, {0.3, 0.4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 {
		t.Fatalf("K=%d", m.K())
	}
	if m.P(1, 2) != 0.2 || m.P(2, 1) != 0.3 {
		t.Fatal("P uses wrong indexing")
	}
	if math.Abs(m.RowSum(2)-0.7) > 1e-12 {
		t.Fatalf("RowSum(2)=%v", m.RowSum(2))
	}
}

func TestMatrixPanicsOnBadLabel(t *testing.T) {
	m := NewUniformMatrix(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.P(0, 1)
}

func TestSampleRowDistribution(t *testing.T) {
	m, err := NewMatrix([][]float64{
		{0.5, 0.25, 0}, // 0.25 left over = no link
		{0, 1, 0},
		{0, 0, 0}, // always no link
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	counts := map[int]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[m.SampleRow(1, rng)]++
	}
	if frac := float64(counts[1]) / draws; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("column 1 frequency %v, want 0.5", frac)
	}
	if frac := float64(counts[2]) / draws; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("column 2 frequency %v, want 0.25", frac)
	}
	if frac := float64(counts[0]) / draws; math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("no-link frequency %v, want 0.25", frac)
	}
	if counts[3] != 0 {
		t.Fatal("zero-probability column sampled")
	}
	for i := 0; i < 1000; i++ {
		if m.SampleRow(2, rng) != 2 {
			t.Fatal("deterministic row sampled wrong column")
		}
		if m.SampleRow(3, rng) != 0 {
			t.Fatal("empty row should always return no link")
		}
	}
}

func TestUniformMatrixProperties(t *testing.T) {
	m := NewUniformMatrix(10)
	for i := 1; i <= 10; i++ {
		if math.Abs(m.RowSum(i)-1) > 1e-9 {
			t.Fatalf("uniform row %d sums to %v", i, m.RowSum(i))
		}
		for j := 1; j <= 10; j++ {
			if math.Abs(m.P(i, j)-0.1) > 1e-12 {
				t.Fatal("uniform entry wrong")
			}
		}
	}
}

func TestHarmonicMatrixProperties(t *testing.T) {
	m := NewHarmonicMatrix(20)
	for i := 1; i <= 20; i++ {
		if m.P(i, i) != 0 {
			t.Fatal("harmonic diagonal must be zero")
		}
		if math.Abs(m.RowSum(i)-1) > 1e-9 {
			t.Fatalf("harmonic row %d sums to %v", i, m.RowSum(i))
		}
	}
	// Closer labels must get more mass.
	if m.P(1, 2) <= m.P(1, 10) {
		t.Fatal("harmonic matrix not decreasing with distance")
	}
}

func TestAncestorMatrixMatchesDefinition(t *testing.T) {
	k := 16
	m := NewAncestorMatrix(k)
	norm := 1.0 / (1.0 + math.Log2(float64(k)))
	// Ancestors of 3 within [1,16]: 3, 2, 4, 8, 16.
	for _, j := range []int{3, 2, 4, 8, 16} {
		if math.Abs(m.P(3, j)-norm) > 1e-12 {
			t.Fatalf("A(3,%d)=%v, want %v", j, m.P(3, j), norm)
		}
	}
	if m.P(3, 5) != 0 || m.P(3, 6) != 0 {
		t.Fatal("non-ancestor entries must be zero")
	}
	// Row sums must not exceed 1 (checked by the constructor, but assert a
	// specific row for clarity).
	if m.RowSum(1) > 1+1e-9 {
		t.Fatalf("row 1 sum %v", m.RowSum(1))
	}
}

func TestCombineMatrices(t *testing.T) {
	a := NewAncestorMatrix(8)
	u := NewUniformMatrix(8)
	m, err := Combine(a, u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			want := (a.P(i, j) + u.P(i, j)) / 2
			if math.Abs(m.P(i, j)-want) > 1e-12 {
				t.Fatal("combine entry wrong")
			}
		}
	}
	if _, err := Combine(NewUniformMatrix(3), NewUniformMatrix(4)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestSubsetMass(t *testing.T) {
	m := NewUniformMatrix(100)
	set := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	want := float64(10*9) / 100
	if math.Abs(m.SubsetMass(set)-want) > 1e-9 {
		t.Fatalf("SubsetMass=%v, want %v", m.SubsetMass(set), want)
	}
}

func TestNameIndependentSchemeIdentity(t *testing.T) {
	g := gen.Path(10)
	// Matrix that always sends label i to label i+1 (and the last to none).
	p := make([][]float64, 10)
	for i := range p {
		p[i] = make([]float64, 10)
		if i+1 < 10 {
			p[i][i+1] = 1
		}
	}
	m, err := NewMatrix(p)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := (&NameIndependentScheme{Matrix: m}).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	// Identity labeling: node v has label v+1, so node v's contact must be
	// node v+1, and the last node has no link.
	for v := 0; v < 9; v++ {
		if c := inst.Contact(int32(v), rng); c != int32(v+1) {
			t.Fatalf("contact of %d = %d, want %d", v, c, v+1)
		}
	}
	if c := inst.Contact(9, rng); c != 9 {
		t.Fatalf("last node should have no link, got %d", c)
	}
}

func TestNameIndependentSchemeWithPermutation(t *testing.T) {
	g := gen.Path(6)
	p := make([][]float64, 6)
	for i := range p {
		p[i] = make([]float64, 6)
		p[i][0] = 1 // every label points to label 1
	}
	m, _ := NewMatrix(p)
	perm := []int{3, 1, 2, 6, 5, 4} // node 1 carries label 1
	inst, err := (&NameIndependentScheme{Matrix: m, Perm: perm}).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	for v := 0; v < 6; v++ {
		if c := inst.Contact(int32(v), rng); c != 1 {
			t.Fatalf("contact of %d = %d, want node 1 (label 1)", v, c)
		}
	}
}

func TestNameIndependentSchemeValidation(t *testing.T) {
	g := gen.Path(5)
	m := NewUniformMatrix(4)
	if _, err := (&NameIndependentScheme{Matrix: m}).Prepare(g); err == nil {
		t.Fatal("size mismatch accepted")
	}
	m5 := NewUniformMatrix(5)
	if _, err := (&NameIndependentScheme{Matrix: m5, Perm: []int{1, 2, 3, 4, 4}}).Prepare(g); err == nil {
		t.Fatal("duplicate label accepted")
	}
	if _, err := (&NameIndependentScheme{Matrix: m5, Perm: []int{0, 1, 2, 3, 4}}).Prepare(g); err == nil {
		t.Fatal("label 0 accepted")
	}
}

func TestMatrixLabelingSchemeSharedLabels(t *testing.T) {
	g := gen.Path(9)
	// 3 labels, each label owns a block of 3 nodes; matrix always picks label 3.
	p := [][]float64{
		{0, 0, 1},
		{0, 0, 1},
		{0, 0, 1},
	}
	m, _ := NewMatrix(p)
	labels := []int{1, 1, 1, 2, 2, 2, 3, 3, 3}
	inst, err := (&MatrixLabelingScheme{Matrix: m, Labels: labels}).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	counts := map[int32]int{}
	for i := 0; i < 30000; i++ {
		c := inst.Contact(0, rng)
		if c < 6 {
			t.Fatalf("contact %d outside label-3 block", c)
		}
		counts[c]++
	}
	for v := int32(6); v < 9; v++ {
		frac := float64(counts[v]) / 30000
		if frac < 0.28 || frac > 0.39 {
			t.Fatalf("node %d picked with frequency %v, want ~1/3", v, frac)
		}
	}
}

func TestMatrixLabelingSchemeEmptyLabelMeansNoLink(t *testing.T) {
	g := gen.Path(4)
	p := [][]float64{
		{0, 1, 0},
		{0, 1, 0},
		{0, 1, 0},
	}
	m, _ := NewMatrix(p)
	labels := []int{1, 1, 3, 3} // nobody carries label 2
	inst, err := (&MatrixLabelingScheme{Matrix: m, Labels: labels}).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(6)
	for v := int32(0); v < 4; v++ {
		if c := inst.Contact(v, rng); c != v {
			t.Fatalf("empty target label should mean no link, got %d for %d", c, v)
		}
	}
}

func TestMatrixLabelingSchemeValidation(t *testing.T) {
	g := gen.Path(3)
	m := NewUniformMatrix(2)
	if _, err := (&MatrixLabelingScheme{Matrix: m, Labels: []int{1, 2}}).Prepare(g); err == nil {
		t.Fatal("short labeling accepted")
	}
	if _, err := (&MatrixLabelingScheme{Matrix: m, Labels: []int{1, 2, 3}}).Prepare(g); err == nil {
		t.Fatal("out-of-range label accepted")
	}
}

func TestAdversarialPathLabelingUniform(t *testing.T) {
	rng := xrand.New(7)
	n := 400
	adv, err := AdversarialPathLabeling(NewUniformMatrix(n), rng)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Mass >= 1 {
		t.Fatalf("adversarial mass %v >= 1", adv.Mass)
	}
	validatePermutation(t, adv.Perm, n)
	segLen := adv.SegmentEnd - adv.SegmentStart
	if segLen < 20 || segLen > 21 { // ceil(sqrt(400)) = 20
		t.Fatalf("segment length %d, want ~20", segLen)
	}
	if adv.Source < adv.SegmentStart || adv.Target >= adv.SegmentEnd || adv.Source >= adv.Target {
		t.Fatalf("suggested endpoints %d,%d outside segment [%d,%d)", adv.Source, adv.Target, adv.SegmentStart, adv.SegmentEnd)
	}
}

func TestAdversarialPathLabelingHarmonic(t *testing.T) {
	rng := xrand.New(8)
	n := 256
	adv, err := AdversarialPathLabeling(NewHarmonicMatrix(n), rng)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Mass >= 1 {
		t.Fatalf("harmonic adversarial mass %v >= 1", adv.Mass)
	}
	validatePermutation(t, adv.Perm, n)
	// The internal mass of the chosen set, recomputed independently, must
	// match and stay below 1.
	set := adv.Perm[adv.SegmentStart:adv.SegmentEnd]
	if m := NewHarmonicMatrix(n).SubsetMass(set); m >= 1 {
		t.Fatalf("recomputed segment mass %v >= 1", m)
	}
}

func TestAdversarialPathLabelingSmallNRejected(t *testing.T) {
	rng := xrand.New(9)
	if _, err := AdversarialPathLabeling(NewUniformMatrix(4), rng); err == nil {
		t.Fatal("tiny n accepted")
	}
}

func TestAdversarialLabelingPropertyAcrossMatrices(t *testing.T) {
	rng := xrand.New(10)
	check := func(seed uint16) bool {
		n := 100 + int(seed%100)
		// Random augmentation matrix with row sums <= 1.
		p := make([][]float64, n)
		local := xrand.New(uint64(seed) + 1)
		for i := range p {
			p[i] = make([]float64, n)
			// concentrate mass on a few random columns
			cols := local.Sample(n, 5)
			remaining := 1.0
			for _, c := range cols {
				v := local.Float64() * remaining
				p[i][c] = v
				remaining -= v
			}
		}
		m, err := NewMatrix(p)
		if err != nil {
			return false
		}
		adv, err := AdversarialPathLabeling(m, rng)
		if err != nil {
			return false
		}
		return adv.Mass < 1 && len(adv.Perm) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func validatePermutation(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n+1)
	for _, l := range perm {
		if l < 1 || l > n || seen[l] {
			t.Fatalf("bad permutation entry %d", l)
		}
		seen[l] = true
	}
}

func TestBlockLabels(t *testing.T) {
	labels, err := NewBlockLabels(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 10 {
		t.Fatal("length")
	}
	for v, l := range labels {
		if l < 1 || l > 3 {
			t.Fatalf("label %d out of range", l)
		}
		if v > 0 && labels[v-1] > l {
			t.Fatal("block labels must be non-decreasing along the path")
		}
	}
}

func TestCompressedLabelPathScheme(t *testing.T) {
	s, err := NewCompressedLabelPathScheme(1000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := gen.Path(1000)
	inst, err := s.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	// Contacts must always be valid nodes.
	for i := 0; i < 1000; i++ {
		u := int32(rng.Intn(1000))
		c := inst.Contact(u, rng)
		if c < 0 || c >= 1000 {
			t.Fatalf("contact %d out of range", c)
		}
	}
	if _, err := NewCompressedLabelPathScheme(100, 1.5); err == nil {
		t.Fatal("epsilon > 1 accepted")
	}
}

func TestLabelsForGraphSizeAndBound(t *testing.T) {
	if LabelsForGraphSize(10000, 0.5) != 100 {
		t.Fatalf("k=%d", LabelsForGraphSize(10000, 0.5))
	}
	if LabelsForGraphSize(100, 0) != 2 {
		t.Fatal("epsilon 0 should give the minimum of 2 labels")
	}
	if Theorem3LowerBoundExponent(1) != 0 {
		t.Fatal("epsilon=1 bound should be 0")
	}
	if math.Abs(Theorem3LowerBoundExponent(0.25)-0.25) > 1e-12 {
		t.Fatal("bound exponent wrong")
	}
}
