package augment

import (
	"fmt"
	"runtime"
	"sync"

	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/sampler"
	"navaug/internal/xrand"
)

// BallScheme is the paper's Theorem 4 universal augmentation scheme, the
// one that overcomes the √n barrier:
//
//	every node u independently picks a scale k uniformly in {1..⌈log n⌉}
//	and then a long-range contact uniformly at random in the ball
//	B(u, 2^k) of radius 2^k around u.
//
// Greedy routing under this scheme takes Õ(n^{1/3}) expected steps on every
// n-node graph.  The scheme is "a posteriori": drawing a contact requires
// knowing the ball, i.e. the structure of G around u.
type BallScheme struct {
	// FixedScale, when non-zero, disables the uniform choice of k and always
	// uses the given scale.  This is the E10 ablation showing that mixing all
	// scales is essential.
	FixedScale int
	// RankUniform, when true, picks the contact by first choosing a distance
	// d uniformly in [0, 2^k] and then a uniform node at distance exactly d
	// (if any), instead of uniformly over the ball.  Second E10 ablation.
	RankUniform bool
	// MaxPrecomputeNodes bounds the graph size up to which the instance
	// collapses the scale mixture into one per-node alias table (O(1) draws
	// after a node's first, O(n²) ints of memory).  Beyond it every draw
	// re-enumerates a ball with a pooled buffer.  Zero means
	// DefaultPrecomputeNodes; negative disables the tables.  The
	// RankUniform ablation always uses the enumeration path.
	MaxPrecomputeNodes int
	// EagerPrepare builds every node's alias table already in Prepare with
	// a parallel all-nodes pass instead of lazily on first draw.
	EagerPrepare bool
}

// NewBallScheme returns the Theorem 4 scheme.
func NewBallScheme() *BallScheme { return &BallScheme{} }

// Name implements Scheme.
func (s *BallScheme) Name() string {
	switch {
	case s.FixedScale > 0 && s.RankUniform:
		return fmt.Sprintf("ball-fixed%d-rank", s.FixedScale)
	case s.FixedScale > 0:
		return fmt.Sprintf("ball-fixed%d", s.FixedScale)
	case s.RankUniform:
		return "ball-rank"
	default:
		return "ball"
	}
}

// ballInstance carries the read-only graph, optional per-node alias tables
// over the composite contact distribution, and a pool of dist.BallBuffer
// scratch buffers for ball enumeration (row fills and the BFS fallback).
type ballInstance struct {
	g        *graph.Graph
	maxScale int
	fixed    int
	rankUnif bool
	// tables holds the per-node alias rows over φ_u (nil above the
	// precompute threshold and for the RankUniform ablation).
	tables    *sampler.LazyRows
	scratches sync.Pool
}

// Prepare implements Scheme.  Within the precompute threshold (and outside
// the RankUniform ablation) the instance folds each node's uniform-scale
// ball mixture into one alias table — built lazily on the node's first
// draw, or all up front with EagerPrepare — making Contact a single O(1)
// draw.  Otherwise Contact re-enumerates the drawn ball from a pooled
// buffer.
func (s *BallScheme) Prepare(g *graph.Graph) (Instance, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("augment: ball scheme needs a non-empty graph")
	}
	maxScale := dist.CeilLog2(n)
	if maxScale < 1 {
		maxScale = 1
	}
	if s.FixedScale > maxScale {
		return nil, fmt.Errorf("augment: fixed scale %d exceeds ⌈log n⌉ = %d", s.FixedScale, maxScale)
	}
	inst := &ballInstance{g: g, maxScale: maxScale, fixed: s.FixedScale, rankUnif: s.RankUniform}
	inst.scratches.New = func() any { return dist.NewBallBuffer(n) }
	if !s.RankUniform && n <= precomputeLimit(s.MaxPrecomputeNodes) {
		inst.tables = sampler.NewLazyRows(n, n, inst)
		if s.EagerPrepare {
			inst.tables.BuildAll(runtime.GOMAXPROCS(0))
		}
	}
	return inst, nil
}

// FillRow implements sampler.RowFiller with the composite distribution of
// node u's contact.
func (b *ballInstance) FillRow(u int32, weights []float64) {
	sc := b.scratches.Get().(*dist.BallBuffer)
	defer b.scratches.Put(sc)
	b.fillWeights(u, sc, weights)
}

// scaleRadius returns the ball radius of scale k: 2^k, with n standing in
// when the shift would overflow (effectively unbounded).  The raw 2^k is
// kept even when it exceeds n because the RankUniform ablation draws a
// distance uniformly in [0, radius], so clamping would change its law.
func (b *ballInstance) scaleRadius(k int) int32 {
	if k < 31 {
		return int32(1) << uint(k)
	}
	return int32(b.g.N())
}

// fillWeights computes the composite contact distribution φ_u into weights
// (length n): each admissible scale contributes 1/(scales·|B_k(u)|) to
// every member of B(u, 2^k).  The ball always contains u itself, whose
// entry carries the "no link" mass, exactly as the sampling process does.
//
// One enumeration at the largest radius suffices for every scale: the ball
// lists nodes in non-decreasing distance order, so each B_k is a prefix,
// and φ_u(v) = Σ_{k ≥ r(v)} pScale/|B_k| is a suffix sum over scales.
func (b *ballInstance) fillWeights(u graph.NodeID, sc *dist.BallBuffer, weights []float64) {
	for i := range weights {
		weights[i] = 0
	}
	loK, hiK := 1, b.maxScale
	if b.fixed > 0 {
		loK, hiK = b.fixed, b.fixed
	}
	pScale := 1.0 / float64(hiK-loK+1)
	nodes, dists := sc.Ball(b.g, u, b.scaleRadius(hiK))
	// suffix[k-loK] = Σ_{j ≥ k} pScale/|B_j(u)|, with |B_j| read off as the
	// prefix length of nodes within radius 2^j.  maxScale = ⌈log₂ n⌉ ≤ 31
	// for int32 node ids, so fixed-size stacks keep row builds allocation
	// free.
	var suffixArr [33]float64
	var sizesArr [32]int
	suffix := suffixArr[:hiK-loK+2]
	sizes := sizesArr[:hiK-loK+1]
	end := 0
	for k := loK; k <= hiK; k++ {
		radius := b.scaleRadius(k)
		for end < len(dists) && dists[end] <= radius {
			end++
		}
		sizes[k-loK] = end
	}
	for k := hiK; k >= loK; k-- {
		suffix[k-loK] = suffix[k-loK+1] + pScale/float64(sizes[k-loK])
	}
	// Nodes arrive in non-decreasing distance, so the smallest admissible
	// scale only ever moves forward.
	k := loK
	for i, v := range nodes {
		for dists[i] > b.scaleRadius(k) {
			k++
		}
		weights[v] = suffix[k-loK]
	}
}

// Contact implements Instance.
func (b *ballInstance) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	if b.tables != nil {
		return b.tables.Draw(u, rng)
	}
	k := b.fixed
	if k == 0 {
		k = 1 + rng.Intn(b.maxScale)
	}
	radius := b.scaleRadius(k)
	sc := b.scratches.Get().(*dist.BallBuffer)
	defer b.scratches.Put(sc)
	nodes, dists := sc.Ball(b.g, u, radius)
	if b.rankUnif {
		// Ablation: uniform over distances then uniform over the sphere.
		d := int32(rng.Intn(int(radius) + 1))
		// Collect nodes at distance exactly d; fall back to the ball when the
		// sphere is empty (d beyond the reachable range).
		lo, hi := -1, -1
		for i, dd := range dists {
			if dd == d {
				if lo == -1 {
					lo = i
				}
				hi = i
			}
		}
		if lo >= 0 {
			return nodes[lo+rng.Intn(hi-lo+1)]
		}
		return nodes[rng.Intn(len(nodes))]
	}
	return nodes[rng.Intn(len(nodes))]
}

// ContactDistribution implements Distributional using the paper's formula
//
//	φ_u(v) = (1/⌈log n⌉) · Σ_{k ≥ r(v)} 1/|B_k(u)|
//
// where r(v) is the smallest scale k ∈ {1..⌈log n⌉} with v ∈ B(u, 2^k) (for
// the FixedScale ablation only that scale contributes).  The RankUniform
// ablation's distribution is assembled per distance class instead.
func (b *ballInstance) ContactDistribution(u graph.NodeID) []float64 {
	n := b.g.N()
	phi := make([]float64, n)
	sc := b.scratches.Get().(*dist.BallBuffer)
	defer b.scratches.Put(sc)
	if !b.rankUnif {
		b.fillWeights(u, sc, phi)
		return phi
	}

	scales := make([]int, 0, b.maxScale)
	if b.fixed > 0 {
		scales = append(scales, b.fixed)
	} else {
		for k := 1; k <= b.maxScale; k++ {
			scales = append(scales, k)
		}
	}
	pScale := 1.0 / float64(len(scales))
	for _, k := range scales {
		radius := b.scaleRadius(k)
		nodes, dists := sc.Ball(b.g, u, radius)
		// Uniform over distances 0..radius, then uniform on the sphere at
		// that distance; empty spheres fall back to the whole ball.
		counts := make(map[int32]int, 8)
		for _, d := range dists {
			counts[d]++
		}
		emptySpheres := 0
		for d := int32(0); d <= radius; d++ {
			if counts[d] == 0 {
				emptySpheres++
			}
		}
		pDist := 1.0 / float64(radius+1)
		fallback := float64(emptySpheres) * pDist / float64(len(nodes))
		for i, v := range nodes {
			phi[v] += pScale * (pDist/float64(counts[dists[i]]) + fallback)
		}
	}
	return phi
}
