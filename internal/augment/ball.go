package augment

import (
	"fmt"
	"sync"

	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// BallScheme is the paper's Theorem 4 universal augmentation scheme, the
// one that overcomes the √n barrier:
//
//	every node u independently picks a scale k uniformly in {1..⌈log n⌉}
//	and then a long-range contact uniformly at random in the ball
//	B(u, 2^k) of radius 2^k around u.
//
// Greedy routing under this scheme takes Õ(n^{1/3}) expected steps on every
// n-node graph.  The scheme is "a posteriori": drawing a contact requires
// knowing the ball, i.e. the structure of G around u.
type BallScheme struct {
	// FixedScale, when non-zero, disables the uniform choice of k and always
	// uses the given scale.  This is the E10 ablation showing that mixing all
	// scales is essential.
	FixedScale int
	// RankUniform, when true, picks the contact by first choosing a distance
	// d uniformly in [0, 2^k] and then a uniform node at distance exactly d
	// (if any), instead of uniformly over the ball.  Second E10 ablation.
	RankUniform bool
}

// NewBallScheme returns the Theorem 4 scheme.
func NewBallScheme() *BallScheme { return &BallScheme{} }

// Name implements Scheme.
func (s *BallScheme) Name() string {
	switch {
	case s.FixedScale > 0 && s.RankUniform:
		return fmt.Sprintf("ball-fixed%d-rank", s.FixedScale)
	case s.FixedScale > 0:
		return fmt.Sprintf("ball-fixed%d", s.FixedScale)
	case s.RankUniform:
		return "ball-rank"
	default:
		return "ball"
	}
}

// ballInstance carries the read-only graph and a pool of dist.BallBuffer
// scratch buffers for the bounded BFS used to enumerate balls.
type ballInstance struct {
	g         *graph.Graph
	maxScale  int
	fixed     int
	rankUnif  bool
	scratches sync.Pool
}

// Prepare implements Scheme.
func (s *BallScheme) Prepare(g *graph.Graph) (Instance, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("augment: ball scheme needs a non-empty graph")
	}
	maxScale := dist.CeilLog2(n)
	if maxScale < 1 {
		maxScale = 1
	}
	if s.FixedScale > maxScale {
		return nil, fmt.Errorf("augment: fixed scale %d exceeds ⌈log n⌉ = %d", s.FixedScale, maxScale)
	}
	inst := &ballInstance{g: g, maxScale: maxScale, fixed: s.FixedScale, rankUnif: s.RankUniform}
	inst.scratches.New = func() any { return dist.NewBallBuffer(n) }
	return inst, nil
}

// Contact implements Instance.
func (b *ballInstance) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	k := b.fixed
	if k == 0 {
		k = 1 + rng.Intn(b.maxScale)
	}
	radius := int32(1)
	if k < 31 {
		radius = int32(1) << uint(k)
	} else {
		radius = int32(b.g.N()) // effectively unbounded
	}
	sc := b.scratches.Get().(*dist.BallBuffer)
	defer b.scratches.Put(sc)
	nodes, dists := sc.Ball(b.g, u, radius)
	if b.rankUnif {
		// Ablation: uniform over distances then uniform over the sphere.
		d := int32(rng.Intn(int(radius) + 1))
		// Collect nodes at distance exactly d; fall back to the ball when the
		// sphere is empty (d beyond the reachable range).
		lo, hi := -1, -1
		for i, dd := range dists {
			if dd == d {
				if lo == -1 {
					lo = i
				}
				hi = i
			}
		}
		if lo >= 0 {
			return nodes[lo+rng.Intn(hi-lo+1)]
		}
		return nodes[rng.Intn(len(nodes))]
	}
	return nodes[rng.Intn(len(nodes))]
}

// ContactDistribution implements Distributional using the paper's formula
//
//	φ_u(v) = (1/⌈log n⌉) · Σ_{k ≥ r(v)} 1/|B_k(u)|
//
// where r(v) is the smallest scale k ∈ {1..⌈log n⌉} with v ∈ B(u, 2^k) (for
// the FixedScale ablation only that scale contributes).  The RankUniform
// ablation's distribution is assembled per distance class instead.
func (b *ballInstance) ContactDistribution(u graph.NodeID) []float64 {
	n := b.g.N()
	phi := make([]float64, n)
	sc := b.scratches.Get().(*dist.BallBuffer)
	defer b.scratches.Put(sc)

	scales := make([]int, 0, b.maxScale)
	if b.fixed > 0 {
		scales = append(scales, b.fixed)
	} else {
		for k := 1; k <= b.maxScale; k++ {
			scales = append(scales, k)
		}
	}
	pScale := 1.0 / float64(len(scales))
	for _, k := range scales {
		radius := int32(1)
		if k < 31 {
			radius = int32(1) << uint(k)
		} else {
			radius = int32(n)
		}
		nodes, dists := sc.Ball(b.g, u, radius)
		if b.rankUnif {
			// Uniform over distances 0..radius, then uniform on the sphere at
			// that distance; empty spheres fall back to the whole ball.
			counts := make(map[int32]int, 8)
			for _, d := range dists {
				counts[d]++
			}
			emptySpheres := 0
			for d := int32(0); d <= radius; d++ {
				if counts[d] == 0 {
					emptySpheres++
				}
			}
			pDist := 1.0 / float64(radius+1)
			fallback := float64(emptySpheres) * pDist / float64(len(nodes))
			for i, v := range nodes {
				phi[v] += pScale * (pDist/float64(counts[dists[i]]) + fallback)
			}
		} else {
			p := pScale / float64(len(nodes))
			for _, v := range nodes {
				phi[v] += p
			}
		}
	}
	return phi
}
