package augment

import (
	"math"
	"sync"
	"testing"

	"navaug/internal/decomp"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

func TestUniformSchemeDistribution(t *testing.T) {
	g := gen.Path(20)
	inst, err := NewUniformScheme().Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	counts := make([]int, 20)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[inst.Contact(7, rng)]++
	}
	for v, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.05) > 0.01 {
			t.Fatalf("node %d frequency %v, want 0.05", v, frac)
		}
	}
}

func TestUniformSchemeEmptyGraph(t *testing.T) {
	if _, err := NewUniformScheme().Prepare(graph.NewBuilder(0).Build()); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestNoAugmentation(t *testing.T) {
	g := gen.Path(5)
	inst, err := NewNoAugmentation().Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	for v := int32(0); v < 5; v++ {
		if inst.Contact(v, rng) != v {
			t.Fatal("no-augmentation scheme must return the node itself")
		}
	}
	if NewNoAugmentation().Name() != "none" {
		t.Fatal("name")
	}
}

func TestBallSchemeContactsWithinBall(t *testing.T) {
	g := gen.Path(64)
	inst, err := NewBallScheme().Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	maxRadius := int32(64) // 2^ceil(log2 64) = 64
	for i := 0; i < 2000; i++ {
		u := graph.NodeID(rng.Intn(64))
		c := inst.Contact(u, rng)
		d := u - c
		if d < 0 {
			d = -d
		}
		if d > maxRadius {
			t.Fatalf("contact at distance %d exceeds max radius %d", d, maxRadius)
		}
	}
}

func TestBallSchemeScaleMixture(t *testing.T) {
	// On a long path, the distance distribution of contacts from a central
	// node should put noticeable mass both near (distance <= 2) and far
	// (distance > 32) because every scale k is equally likely.
	g := gen.Path(257)
	inst, err := NewBallScheme().Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(4)
	centre := graph.NodeID(128)
	near, far := 0, 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		c := inst.Contact(centre, rng)
		d := int(math.Abs(float64(c - centre)))
		if d <= 2 {
			near++
		}
		if d > 32 {
			far++
		}
	}
	if near < draws/40 {
		t.Fatalf("near contacts too rare: %d/%d", near, draws)
	}
	if far < draws/40 {
		t.Fatalf("far contacts too rare: %d/%d", far, draws)
	}
}

func TestBallSchemeFixedScale(t *testing.T) {
	g := gen.Path(128)
	inst, err := (&BallScheme{FixedScale: 1}).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	for i := 0; i < 2000; i++ {
		u := graph.NodeID(rng.Intn(128))
		c := inst.Contact(u, rng)
		d := u - c
		if d < 0 {
			d = -d
		}
		if d > 2 {
			t.Fatalf("fixed scale 1 should stay within radius 2, got %d", d)
		}
	}
	if _, err := (&BallScheme{FixedScale: 50}).Prepare(g); err == nil {
		t.Fatal("excessive fixed scale accepted")
	}
}

func TestBallSchemeRankUniform(t *testing.T) {
	g := gen.Path(128)
	inst, err := (&BallScheme{RankUniform: true}).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(6)
	for i := 0; i < 500; i++ {
		u := graph.NodeID(rng.Intn(128))
		c := inst.Contact(u, rng)
		if c < 0 || c >= 128 {
			t.Fatalf("contact %d out of range", c)
		}
	}
}

func TestBallSchemeNames(t *testing.T) {
	if NewBallScheme().Name() != "ball" {
		t.Fatal("default name")
	}
	if (&BallScheme{FixedScale: 3}).Name() != "ball-fixed3" {
		t.Fatal("fixed name")
	}
	if (&BallScheme{RankUniform: true}).Name() != "ball-rank" {
		t.Fatal("rank name")
	}
	if (&BallScheme{FixedScale: 2, RankUniform: true}).Name() != "ball-fixed2-rank" {
		t.Fatal("combined name")
	}
}

func TestBallSchemeConcurrentDraws(t *testing.T) {
	g := gen.Grid2D(40, 40)
	inst, err := NewBallScheme().Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	bad := make(chan int32, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for i := 0; i < 500; i++ {
				u := graph.NodeID(rng.Intn(g.N()))
				c := inst.Contact(u, rng)
				if c < 0 || int(c) >= g.N() {
					bad <- c
					return
				}
			}
		}(uint64(w) + 10)
	}
	wg.Wait()
	close(bad)
	if c, ok := <-bad; ok {
		t.Fatalf("concurrent draw produced invalid contact %d", c)
	}
}

func TestHarmonicSchemeFavoursCloseNodes(t *testing.T) {
	g := gen.Path(101)
	inst, err := NewHarmonicScheme(1).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	centre := graph.NodeID(50)
	distCounts := map[int]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		c := inst.Contact(centre, rng)
		d := int(math.Abs(float64(c - centre)))
		distCounts[d]++
	}
	if distCounts[0] != 0 {
		t.Fatal("harmonic scheme must never pick the node itself")
	}
	// P(dist=1) should be about 2x P(dist=2) (two nodes at each distance).
	r := float64(distCounts[1]) / float64(distCounts[2])
	if r < 1.6 || r > 2.5 {
		t.Fatalf("P(d=1)/P(d=2) = %v, want about 2", r)
	}
}

func TestHarmonicSchemeExponentZeroIsUniformOverOthers(t *testing.T) {
	g := gen.Complete(10)
	inst, err := NewHarmonicScheme(0).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(8)
	counts := make([]int, 10)
	const draws = 90000
	for i := 0; i < draws; i++ {
		counts[inst.Contact(0, rng)]++
	}
	if counts[0] != 0 {
		t.Fatal("self contact drawn")
	}
	for v := 1; v < 10; v++ {
		frac := float64(counts[v]) / draws
		if math.Abs(frac-1.0/9) > 0.01 {
			t.Fatalf("node %d frequency %v, want 1/9", v, frac)
		}
	}
}

func TestHarmonicSchemeRejectsNegativeExponent(t *testing.T) {
	if _, err := NewHarmonicScheme(-1).Prepare(gen.Path(5)); err == nil {
		t.Fatal("negative exponent accepted")
	}
}

func TestTheorem2SchemeOnPath(t *testing.T) {
	g := gen.Path(200)
	scheme := NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.OfPathGraph(g)
	})
	inst, err := scheme.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(9)
	// Contacts must be valid and the scheme should produce some long-range
	// (non-self, non-adjacent) contacts thanks to the uniform half.
	longRange := 0
	for i := 0; i < 5000; i++ {
		u := graph.NodeID(rng.Intn(200))
		c := inst.Contact(u, rng)
		if c < 0 || c >= 200 {
			t.Fatalf("contact %d out of range", c)
		}
		d := u - c
		if d < 0 {
			d = -d
		}
		if d > 1 {
			longRange++
		}
	}
	if longRange < 1000 {
		t.Fatalf("too few long-range contacts: %d/5000", longRange)
	}
}

func TestTheorem2SchemeAncestorTargetsBags(t *testing.T) {
	// With AncestorOnly, every non-self contact must carry an ancestor label
	// of the current node's label.
	g := gen.Path(64)
	pd, err := decomp.OfPathGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	scheme := &Theorem2Scheme{
		Decompose:    func(*graph.Graph) (*decomp.PathDecomposition, error) { return pd, nil },
		AncestorOnly: true,
	}
	inst, err := scheme.Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	ti := inst.(*theorem2Instance)
	rng := xrand.New(10)
	for i := 0; i < 5000; i++ {
		u := graph.NodeID(rng.Intn(64))
		c := inst.Contact(u, rng)
		if c == u {
			continue
		}
		// The contact's label must be an ancestor of u's label.
		ancFound := false
		for _, a := range ancestorsUpTo(ti.labels[u], ti.maxAncestor) {
			if ti.labels[c] == a {
				ancFound = true
				break
			}
		}
		if !ancFound {
			t.Fatalf("contact %d (label %d) is not an ancestor of node %d (label %d)",
				c, ti.labels[c], u, ti.labels[u])
		}
	}
}

func TestTheorem2SchemeDefaultDecomposition(t *testing.T) {
	// With a nil Decompose the scheme falls back to decomp.Best; it must
	// still produce a working instance on a small tree.
	g := gen.BalancedTree(2, 5)
	inst, err := NewTheorem2Scheme(nil).Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(11)
	for i := 0; i < 200; i++ {
		u := graph.NodeID(rng.Intn(g.N()))
		c := inst.Contact(u, rng)
		if c < 0 || int(c) >= g.N() {
			t.Fatalf("contact %d out of range", c)
		}
	}
}

func TestTheorem2SchemeNames(t *testing.T) {
	if NewTheorem2Scheme(nil).Name() != "theorem2" {
		t.Fatal("default name")
	}
	if (&Theorem2Scheme{AncestorOnly: true}).Name() != "theorem2-ancestor-only" {
		t.Fatal("ablation name")
	}
	if (&Theorem2Scheme{SchemeName: "custom"}).Name() != "custom" {
		t.Fatal("custom name")
	}
}

func TestTheorem2SchemeErrorPropagation(t *testing.T) {
	g := gen.Cycle(10)
	scheme := NewTheorem2Scheme(func(*graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.OfPathGraph(g) // fails: cycle is not a path
	})
	if _, err := scheme.Prepare(g); err == nil {
		t.Fatal("decomposition error not propagated")
	}
}

func TestMemoConsistency(t *testing.T) {
	g := gen.Path(50)
	inst, err := NewUniformScheme().Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(12)
	memo := NewMemo(inst)
	first := memo.Contact(10, rng)
	for i := 0; i < 100; i++ {
		if memo.Contact(10, rng) != first {
			t.Fatal("memoised contact changed within a trial")
		}
	}
	if memo.Drawn() != 1 {
		t.Fatalf("Drawn=%d, want 1", memo.Drawn())
	}
	memo.Reset()
	if memo.Drawn() != 0 {
		t.Fatal("Reset did not clear the memo")
	}
}

func TestSampleAllCoversAllNodes(t *testing.T) {
	g := gen.Cycle(30)
	inst, err := NewBallScheme().Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	contacts := SampleAll(inst, g.N(), xrand.New(13))
	if len(contacts) != 30 {
		t.Fatal("length")
	}
	for u, c := range contacts {
		if c < 0 || int(c) >= 30 {
			t.Fatalf("contact of %d out of range: %d", u, c)
		}
	}
}

// The ball scheme's distribution must match the paper's formula
// φ_u(v) = (1/⌈log n⌉) Σ_{k ≥ r(v)} 1/|B_k(u)| where r(v) is the smallest k
// with v ∈ B(u, 2^k).  Verify empirically on a small path.
func TestBallSchemeMatchesFormula(t *testing.T) {
	n := 16
	g := gen.Path(n)
	inst, err := NewBallScheme().Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	u := graph.NodeID(5)
	logN := dist.CeilLog2(n) // 4
	// Analytic distribution.
	want := make([]float64, n)
	for k := 1; k <= logN; k++ {
		radius := int32(1) << uint(k)
		ball := dist.Ball(g, u, radius)
		for _, v := range ball {
			want[v] += 1.0 / (float64(logN) * float64(len(ball)))
		}
	}
	rng := xrand.New(14)
	counts := make([]int, n)
	const draws = 300000
	for i := 0; i < draws; i++ {
		counts[inst.Contact(u, rng)]++
	}
	for v := 0; v < n; v++ {
		got := float64(counts[v]) / draws
		if math.Abs(got-want[v]) > 0.01 {
			t.Fatalf("node %d: empirical %v vs analytic %v", v, got, want[v])
		}
	}
}
