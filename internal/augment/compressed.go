package augment

import (
	"fmt"
	"math"
)

// This file provides the schemes used in the Theorem 3 experiment: matrix
// based augmentation of the path with a compressed label space of only
// k = n^ε labels.  Theorem 3 proves that any such scheme has greedy diameter
// Ω(n^β) for every β < (1-ε)/3; the block-harmonic construction below is a
// natural best-effort scheme in that regime (it reaches the right block
// quickly but has to walk inside the final block), so measuring it shows how
// the achievable greedy diameter degrades as labels shrink.

// NewBlockLabels returns the block labeling of the n-node path with k
// labels: consecutive blocks of ⌈n/k⌉ nodes share a label.
func NewBlockLabels(n, k int) ([]int, error) {
	if n < 1 || k < 1 {
		return nil, fmt.Errorf("augment: block labels need n >= 1 and k >= 1")
	}
	if k > n {
		k = n
	}
	blockSize := (n + k - 1) / k
	labels := make([]int, n)
	for v := 0; v < n; v++ {
		labels[v] = v/blockSize + 1
		if labels[v] > k {
			labels[v] = k
		}
	}
	return labels, nil
}

// NewCompressedLabelPathScheme builds the Theorem 3 experiment scheme for
// the n-node path: k = max(2, ⌈n^ε⌉) block labels with a harmonic matrix
// over label indices.  The identity node order of gen.Path is assumed (node
// v sits at path position v).
func NewCompressedLabelPathScheme(n int, epsilon float64) (Scheme, error) {
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("augment: epsilon must be in [0,1], got %g", epsilon)
	}
	k := int(math.Ceil(math.Pow(float64(n), epsilon)))
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	labels, err := NewBlockLabels(n, k)
	if err != nil {
		return nil, err
	}
	return &MatrixLabelingScheme{
		Matrix:     NewHarmonicMatrix(k),
		Labels:     labels,
		SchemeName: fmt.Sprintf("compressed-eps%.2f-k%d", epsilon, k),
	}, nil
}

// LabelsForGraphSize is a small helper returning the number of labels k
// corresponding to label size ε·log n bits, i.e. k = ⌈n^ε⌉ (at least 2).
func LabelsForGraphSize(n int, epsilon float64) int {
	k := int(math.Ceil(math.Pow(float64(n), epsilon)))
	if k < 2 {
		k = 2
	}
	if k > n {
		k = n
	}
	return k
}

// Theorem3LowerBoundExponent returns the exponent β = (1-ε)/3 of the paper's
// lower bound for label size ε·log n, for annotating experiment output.
func Theorem3LowerBoundExponent(epsilon float64) float64 {
	if epsilon >= 1 {
		return 0
	}
	return (1 - epsilon) / 3
}
