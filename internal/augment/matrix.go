package augment

import (
	"fmt"
	"math"

	"navaug/internal/graph"
	"navaug/internal/sampler"
	"navaug/internal/xrand"
)

// Matrix is an augmentation matrix in the sense of Definition 1: a k×k
// matrix of probabilities with row sums at most 1.  Entry (i, j) — both
// 1-based, matching the paper — is the probability that a node labeled i
// chooses label j for its long-range contact.  Row mass left over after all
// columns means "no long-range link".
//
// Each row carries a Walker alias table over its k+1 outcomes (the k
// columns plus the leftover "no link" mass), built once at construction, so
// SampleRow is O(1) and allocation-free instead of a per-draw binary search
// over a cumulative row.
type Matrix struct {
	k       int
	p       [][]float64 // 0-based internally
	rowSum  []float64   // per-row total probability mass
	rowProb [][]float64 // per-row alias acceptance probabilities, k+1 outcomes
	rowAlia [][]int32   // per-row alias redirects; outcome 0 is "no link"
}

// NewMatrix builds an augmentation matrix from 1-based-labelled rows given
// as a dense k×k slice (p[i][j] is the probability that label i+1 picks
// label j+1).  It returns an error if entries are out of range or a row sums
// to more than 1 (with a small tolerance for rounding).
func NewMatrix(p [][]float64) (*Matrix, error) {
	k := len(p)
	m := &Matrix{
		k:       k,
		p:       make([][]float64, k),
		rowSum:  make([]float64, k),
		rowProb: make([][]float64, k),
		rowAlia: make([][]int32, k),
	}
	const tol = 1e-9
	weights := make([]float64, k+1)
	scratch := make([]int32, k+1)
	for i, row := range p {
		if len(row) != k {
			return nil, fmt.Errorf("augment: matrix row %d has %d entries, want %d", i+1, len(row), k)
		}
		sum := 0.0
		m.p[i] = append([]float64(nil), row...)
		for j, v := range row {
			if v < -tol || v > 1+tol || math.IsNaN(v) {
				return nil, fmt.Errorf("augment: matrix entry (%d,%d)=%v out of [0,1]", i+1, j+1, v)
			}
			sum += v
			// Entries within the tolerance band may still be tiny negative
			// floating-point dust; the alias builder needs true weights.
			if v < 0 {
				v = 0
			}
			weights[j+1] = v
		}
		if sum > 1+1e-6 {
			return nil, fmt.Errorf("augment: matrix row %d sums to %v > 1", i+1, sum)
		}
		m.rowSum[i] = sum
		// Outcome 0 is the unspent "no link" mass; clamp rounding dust.
		weights[0] = 1 - sum
		if weights[0] < 0 {
			weights[0] = 0
		}
		m.rowProb[i] = make([]float64, k+1)
		m.rowAlia[i] = make([]int32, k+1)
		if err := sampler.BuildInto(m.rowProb[i], m.rowAlia[i], weights, scratch); err != nil {
			return nil, fmt.Errorf("augment: matrix row %d alias table: %w", i+1, err)
		}
	}
	return m, nil
}

// K returns the matrix dimension (the number of labels).
func (m *Matrix) K() int { return m.k }

// P returns entry (i, j) with 1-based label indices.
func (m *Matrix) P(i, j int) float64 {
	m.checkLabel(i)
	m.checkLabel(j)
	return m.p[i-1][j-1]
}

// RowSum returns the total probability mass of row i (1-based).
func (m *Matrix) RowSum(i int) float64 {
	m.checkLabel(i)
	return m.rowSum[i-1]
}

// SampleRow draws a column label from row i (1-based) in O(1) via the row's
// alias table.  It returns 0 when the leftover "no link" mass is drawn.
func (m *Matrix) SampleRow(i int, rng *xrand.RNG) int {
	m.checkLabel(i)
	return int(sampler.Draw(m.rowProb[i-1], m.rowAlia[i-1], rng))
}

// SubsetMass returns Σ_{i≠j, i,j ∈ labels} P(i,j), the quantity the
// Theorem 1 adversarial-labeling argument needs to be below 1.
func (m *Matrix) SubsetMass(labels []int) float64 {
	total := 0.0
	for _, i := range labels {
		for _, j := range labels {
			if i != j {
				total += m.P(i, j)
			}
		}
	}
	return total
}

func (m *Matrix) checkLabel(i int) {
	if i < 1 || i > m.k {
		panic(fmt.Sprintf("augment: label %d out of range [1,%d]", i, m.k))
	}
}

// NewUniformMatrix returns the k×k uniform matrix U with every entry 1/k.
func NewUniformMatrix(k int) *Matrix {
	p := make([][]float64, k)
	for i := range p {
		p[i] = make([]float64, k)
		for j := range p[i] {
			p[i][j] = 1.0 / float64(k)
		}
	}
	m, err := NewMatrix(p)
	if err != nil {
		panic("augment: uniform matrix construction failed: " + err.Error())
	}
	return m
}

// NewHarmonicMatrix returns the k×k matrix with P(i,j) ∝ 1/|i-j| (normalised
// per row).  Under the identity labeling of a path it reproduces Kleinberg's
// one-dimensional harmonic augmentation, which is the natural "cheating"
// name-dependent matrix that Theorem 1's adversarial labeling defeats.
func NewHarmonicMatrix(k int) *Matrix {
	p := make([][]float64, k)
	for i := 0; i < k; i++ {
		p[i] = make([]float64, k)
		z := 0.0
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			z += 1.0 / math.Abs(float64(i-j))
		}
		if z == 0 {
			continue
		}
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			p[i][j] = (1.0 / math.Abs(float64(i-j))) / z
		}
	}
	m, err := NewMatrix(p)
	if err != nil {
		panic("augment: harmonic matrix construction failed: " + err.Error())
	}
	return m
}

// NewAncestorMatrix returns the dense k×k version of the paper's matrix A:
// A(i,j) = 1/(1+log2 k) when j is an ancestor of i (including i itself) and
// j <= k, and 0 otherwise.  Theorem 2's structured scheme never materialises
// this matrix; the dense form exists for tests and small-scale experiments.
func NewAncestorMatrix(k int) *Matrix {
	norm := 1.0 / (1.0 + math.Log2(float64(maxIntA(k, 2))))
	p := make([][]float64, k)
	for i := 1; i <= k; i++ {
		p[i-1] = make([]float64, k)
		for _, j := range ancestorsUpTo(i, k) {
			p[i-1][j-1] = norm
		}
	}
	m, err := NewMatrix(p)
	if err != nil {
		panic("augment: ancestor matrix construction failed: " + err.Error())
	}
	return m
}

// Combine returns (a + b) / 2 entrywise, the M = (A+U)/2 construction of
// Theorem 2.  Both matrices must have the same dimension.
func Combine(a, b *Matrix) (*Matrix, error) {
	if a.k != b.k {
		return nil, fmt.Errorf("augment: cannot combine %d×%d with %d×%d", a.k, a.k, b.k, b.k)
	}
	p := make([][]float64, a.k)
	for i := 0; i < a.k; i++ {
		p[i] = make([]float64, a.k)
		for j := 0; j < a.k; j++ {
			p[i][j] = (a.p[i][j] + b.p[i][j]) / 2
		}
	}
	return NewMatrix(p)
}

// ancestorsUpTo mirrors label.Ancestors for the dense matrix without
// importing the label package (avoiding an import cycle is not the issue —
// keeping the matrix code self-contained is).
func ancestorsUpTo(x, maxValue int) []int {
	k := 0
	for x&(1<<uint(k)) == 0 {
		k++
	}
	var out []int
	for j := 0; k+j < 62 && 1<<uint(k+j) <= maxValue; j++ {
		target := k + j
		high := x &^ ((1 << uint(target+1)) - 1)
		a := high | (1 << uint(target))
		if a <= maxValue {
			out = append(out, a)
		}
	}
	return out
}

func maxIntA(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// NameIndependentScheme applies an augmentation matrix to a graph through
// an explicit bijective labeling: node v carries label Perm[v] ∈ [1, n] and
// draws its contact's label from row Perm[v] of the matrix.  Theorem 1
// studies the worst case of this construction over labelings.
type NameIndependentScheme struct {
	// Matrix is the n×n augmentation matrix (n must equal the graph size).
	Matrix *Matrix
	// Perm[v] is the 1-based label of node v; it must be a bijection onto
	// [1, n].  A nil Perm means the identity labeling Perm[v] = v+1.
	Perm []int
	// SchemeName overrides the default name in reports.
	SchemeName string
}

// Name implements Scheme.
func (s *NameIndependentScheme) Name() string {
	if s.SchemeName != "" {
		return s.SchemeName
	}
	return "matrix-bijective"
}

// Prepare implements Scheme.
func (s *NameIndependentScheme) Prepare(g *graph.Graph) (Instance, error) {
	n := g.N()
	if s.Matrix == nil || s.Matrix.K() != n {
		return nil, fmt.Errorf("augment: matrix size %d does not match graph size %d", s.Matrix.K(), n)
	}
	perm := s.Perm
	if perm == nil {
		perm = make([]int, n)
		for v := range perm {
			perm[v] = v + 1
		}
	}
	if len(perm) != n {
		return nil, fmt.Errorf("augment: labeling has %d entries for %d nodes", len(perm), n)
	}
	inverse := make([]graph.NodeID, n+1)
	seen := make([]bool, n+1)
	for v, lbl := range perm {
		if lbl < 1 || lbl > n {
			return nil, fmt.Errorf("augment: node %d has label %d outside [1,%d]", v, lbl, n)
		}
		if seen[lbl] {
			return nil, fmt.Errorf("augment: label %d assigned twice", lbl)
		}
		seen[lbl] = true
		inverse[lbl] = graph.NodeID(v)
	}
	return &nameIndependentInstance{n: n, m: s.Matrix, perm: append([]int(nil), perm...), inverse: inverse}, nil
}

type nameIndependentInstance struct {
	n       int
	m       *Matrix
	perm    []int
	inverse []graph.NodeID
}

// Contact implements Instance.
func (s *nameIndependentInstance) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	j := s.m.SampleRow(s.perm[u], rng)
	if j == 0 {
		return u
	}
	return s.inverse[j]
}

// ContactDistribution implements Distributional: row perm[u] of the matrix
// mapped through the label→node bijection, with the unspent row mass (and
// any self entry) kept on u.
func (s *nameIndependentInstance) ContactDistribution(u graph.NodeID) []float64 {
	dist := make([]float64, s.n)
	row := s.perm[u]
	spent := 0.0
	for j := 1; j <= s.m.K(); j++ {
		p := s.m.P(row, j)
		if p == 0 {
			continue
		}
		dist[s.inverse[j]] += p
		spent += p
	}
	dist[u] += 1 - spent
	return dist
}

// MatrixLabelingScheme applies a k×k augmentation matrix through a
// many-to-one labeling: several nodes may share a label.  Per the paper,
// after drawing a label j the contact is a uniformly random node carrying
// label j; if no node carries j the draw is wasted (no long-range link).
type MatrixLabelingScheme struct {
	Matrix *Matrix
	// Labels[v] ∈ [1, Matrix.K()] is the label of node v.
	Labels []int
	// SchemeName overrides the default name in reports.
	SchemeName string
}

// Name implements Scheme.
func (s *MatrixLabelingScheme) Name() string {
	if s.SchemeName != "" {
		return s.SchemeName
	}
	return fmt.Sprintf("matrix-k%d", s.Matrix.K())
}

// Prepare implements Scheme.
func (s *MatrixLabelingScheme) Prepare(g *graph.Graph) (Instance, error) {
	n := g.N()
	if len(s.Labels) != n {
		return nil, fmt.Errorf("augment: labeling has %d entries for %d nodes", len(s.Labels), n)
	}
	k := s.Matrix.K()
	byLabel := make([][]graph.NodeID, k+1)
	for v, lbl := range s.Labels {
		if lbl < 1 || lbl > k {
			return nil, fmt.Errorf("augment: node %d has label %d outside [1,%d]", v, lbl, k)
		}
		byLabel[lbl] = append(byLabel[lbl], graph.NodeID(v))
	}
	return &matrixLabelingInstance{
		n:       n,
		m:       s.Matrix,
		labels:  append([]int(nil), s.Labels...),
		byLabel: byLabel,
	}, nil
}

type matrixLabelingInstance struct {
	n       int
	m       *Matrix
	labels  []int
	byLabel [][]graph.NodeID
}

// Contact implements Instance.
func (s *matrixLabelingInstance) Contact(u graph.NodeID, rng *xrand.RNG) graph.NodeID {
	j := s.m.SampleRow(s.labels[u], rng)
	if j == 0 || len(s.byLabel[j]) == 0 {
		return u
	}
	cands := s.byLabel[j]
	return cands[rng.Intn(len(cands))]
}

// ContactDistribution implements Distributional: the matrix row of u's
// label, with each column's mass split evenly over the nodes carrying that
// label; mass on labels that no node carries (and unspent row mass) stays on
// u as "no link".
func (s *matrixLabelingInstance) ContactDistribution(u graph.NodeID) []float64 {
	dist := make([]float64, s.n)
	row := s.labels[u]
	spent := 0.0
	for j := 1; j <= s.m.K(); j++ {
		p := s.m.P(row, j)
		if p == 0 || len(s.byLabel[j]) == 0 {
			continue
		}
		share := p / float64(len(s.byLabel[j]))
		for _, v := range s.byLabel[j] {
			dist[v] += share
		}
		spent += p
	}
	dist[u] += 1 - spent
	return dist
}
