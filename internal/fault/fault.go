// Package fault is a deterministic, seeded fault-injection layer for the
// serving stack.  An Injector holds a schedule of fault windows — latency
// spikes, request-timeout storms, per-shard stalls, worker panics,
// simulated memory pressure, snapshot-section corruption — and the serve
// layer consults it at a handful of fixed points (request entry, pool task
// start, tier selection).  Chaos tests and `navsim chaos` build injectors
// from a compact schedule string (see Parse); production servers hold a
// nil *Injector, and every probe method no-ops on a nil receiver, so the
// disabled cost is one predictable nil check per probe point.
//
// Determinism: every probability draw comes from one SplitMix64 stream
// seeded at construction and indexed by an atomic sequence counter, so the
// stream of decisions is a pure function of the seed.  Which concurrent
// request observes which decision still depends on goroutine scheduling —
// chaos tests therefore assert aggregate contracts (bounded p99, nonzero
// goodput, zero escaped panics), while the unit tests pin the decision
// stream itself.
//
// Windows are expressed relative to Activate: a fault with Start s and
// Duration d fires only while s <= elapsed < s+d (Duration 0 means
// forever).  Before Activate is called the injector is dormant and every
// probe reports "no fault", which lets a harness bring a server up
// cleanly, take baseline measurements, and only then open the fault
// window.
package fault

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"
	"time"
)

// Kind names one fault mechanism.
type Kind string

const (
	// KindLatency delays a fraction P of requests by Delay at request
	// entry, before admission — a slow-network / GC-pause stand-in.
	KindLatency Kind = "latency"
	// KindStorm is a request-timeout storm: mechanically identical to
	// KindLatency but conventionally configured with Delay beyond the
	// server's request timeout, so the affected requests are answered by
	// the timeout layer, never by a worker.
	KindStorm Kind = "storm"
	// KindStall makes every pool task picked up by the matching shard
	// sleep for Delay before running — a wedged worker / bad core.
	KindStall Kind = "stall"
	// KindPanic makes a fraction P of pool tasks on the matching shard
	// panic before running the request — the worker-crash drill that
	// exercises recovery, circuit breaking and contact-row re-sampling.
	KindPanic Kind = "panic"
	// KindMem simulates memory pressure while its window is open: the
	// serve layer stops growing the BFS field cache and degrades to the
	// landmark-bound approximate tier instead.
	KindMem Kind = "mem"
	// KindCorrupt names a snapshot section ("twohop", "scheme", "metric",
	// ...) to corrupt before load, driving the load-time quarantine path.
	// It is consulted once by the harness (CorruptSections), not per
	// request, and ignores the window fields.
	KindCorrupt Kind = "corrupt"
)

// Fault is one scheduled fault window.
type Fault struct {
	Kind Kind
	// Shard selects which pool shard a stall/panic applies to; -1 means
	// every shard.  Ignored by the request-level kinds.
	Shard int
	// P is the per-event probability in [0,1] for latency/storm/panic
	// draws (stall and mem are unconditional while their window is open).
	P float64
	// Delay is the injected sleep for latency/storm/stall.
	Delay time.Duration
	// Start and Duration bound the fault window relative to Activate.
	// Duration 0 means the window never closes.
	Start    time.Duration
	Duration time.Duration
	// Section is the snapshot section kind for KindCorrupt.
	Section string
}

func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", f.Kind)
	sep := ":"
	put := func(format string, args ...any) {
		b.WriteString(sep)
		fmt.Fprintf(&b, format, args...)
		sep = ","
	}
	if f.Kind == KindCorrupt {
		put("section=%s", f.Section)
		return b.String()
	}
	if f.Shard >= 0 {
		put("shard=%d", f.Shard)
	}
	if f.P > 0 && f.P != 1 {
		put("p=%g", f.P)
	}
	if f.Delay > 0 {
		put("delay=%s", f.Delay)
	}
	if f.Start > 0 {
		put("start=%s", f.Start)
	}
	if f.Duration > 0 {
		put("dur=%s", f.Duration)
	}
	return b.String()
}

// Injector evaluates a fault schedule.  Safe for concurrent use; a nil
// *Injector is the canonical "fault injection disabled" value.
type Injector struct {
	faults []Fault
	seed   uint64
	seq    atomic.Uint64
	// activatedAt is the UnixNano timestamp of Activate, 0 while dormant.
	activatedAt atomic.Int64
}

// New builds an injector over the given schedule.  The injector starts
// dormant; call Activate to open the clock on the fault windows.
func New(seed uint64, faults ...Fault) *Injector {
	return &Injector{faults: faults, seed: seed}
}

// Activate starts (or restarts) the schedule clock.  Idempotent in the
// sense that re-activating simply re-bases the windows at "now".
func (i *Injector) Activate() {
	if i == nil {
		return
	}
	i.activatedAt.Store(time.Now().UnixNano())
}

// Deactivate returns the injector to the dormant state: every subsequent
// probe reports "no fault" until the next Activate.
func (i *Injector) Deactivate() {
	if i == nil {
		return
	}
	i.activatedAt.Store(0)
}

// Active reports whether the schedule clock is running and at least one
// non-corrupt fault window is currently open.
func (i *Injector) Active() bool {
	if i == nil {
		return false
	}
	elapsed, on := i.elapsed()
	if !on {
		return false
	}
	for idx := range i.faults {
		f := &i.faults[idx]
		if f.Kind != KindCorrupt && i.open(f, elapsed) {
			return true
		}
	}
	return false
}

// String renders the schedule back in the Parse grammar.
func (i *Injector) String() string {
	if i == nil || len(i.faults) == 0 {
		return ""
	}
	parts := make([]string, len(i.faults))
	for idx, f := range i.faults {
		parts[idx] = f.String()
	}
	return strings.Join(parts, ";")
}

func (i *Injector) elapsed() (time.Duration, bool) {
	at := i.activatedAt.Load()
	if at == 0 {
		return 0, false
	}
	return time.Duration(time.Now().UnixNano() - at), true
}

func (i *Injector) open(f *Fault, elapsed time.Duration) bool {
	if elapsed < f.Start {
		return false
	}
	return f.Duration == 0 || elapsed < f.Start+f.Duration
}

// draw returns the next deterministic uniform in [0,1): SplitMix64 over
// seed XOR an atomic sequence number, so the decision stream is a pure
// function of the seed while staying lock-free under concurrency.
func (i *Injector) draw() float64 {
	s := i.seed + 0x9e3779b97f4a7c15*(1+i.seq.Add(1))
	z := s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

func (i *Injector) hit(p float64) bool {
	if p >= 1 {
		return true
	}
	if p <= 0 {
		return false
	}
	return i.draw() < p
}

// RequestDelay returns the injected delay for the next incoming request —
// the sum of every open latency/storm window whose probability draw hits.
// Zero means the request proceeds untouched.
func (i *Injector) RequestDelay() time.Duration {
	if i == nil {
		return 0
	}
	elapsed, on := i.elapsed()
	if !on {
		return 0
	}
	var d time.Duration
	for idx := range i.faults {
		f := &i.faults[idx]
		if (f.Kind == KindLatency || f.Kind == KindStorm) && i.open(f, elapsed) && i.hit(f.P) {
			d += f.Delay
		}
	}
	return d
}

// StallDelay returns how long a pool task on the given shard must sleep
// before running (a wedged worker), or zero.
func (i *Injector) StallDelay(shard int) time.Duration {
	if i == nil {
		return 0
	}
	elapsed, on := i.elapsed()
	if !on {
		return 0
	}
	var d time.Duration
	for idx := range i.faults {
		f := &i.faults[idx]
		if f.Kind == KindStall && (f.Shard < 0 || f.Shard == shard) && i.open(f, elapsed) {
			d += f.Delay
		}
	}
	return d
}

// InjectPanic reports whether the next pool task on the given shard
// should panic.
func (i *Injector) InjectPanic(shard int) bool {
	if i == nil {
		return false
	}
	elapsed, on := i.elapsed()
	if !on {
		return false
	}
	for idx := range i.faults {
		f := &i.faults[idx]
		if f.Kind == KindPanic && (f.Shard < 0 || f.Shard == shard) && i.open(f, elapsed) && i.hit(f.P) {
			return true
		}
	}
	return false
}

// MemoryPressure reports whether a simulated memory-pressure window is
// open.
func (i *Injector) MemoryPressure() bool {
	if i == nil {
		return false
	}
	elapsed, on := i.elapsed()
	if !on {
		return false
	}
	for idx := range i.faults {
		f := &i.faults[idx]
		if f.Kind == KindMem && i.open(f, elapsed) {
			return true
		}
	}
	return false
}

// CorruptSections lists the snapshot section kinds the schedule asks the
// harness to corrupt before load.  Unlike the per-request probes this is
// window-independent: corruption happens once, at load time.
func (i *Injector) CorruptSections() []string {
	if i == nil {
		return nil
	}
	var out []string
	for idx := range i.faults {
		if i.faults[idx].Kind == KindCorrupt {
			out = append(out, i.faults[idx].Section)
		}
	}
	return out
}

// validate rejects malformed faults at construction time, so schedule
// errors surface when the harness starts rather than mid-drill.
func (f *Fault) validate() error {
	switch f.Kind {
	case KindLatency, KindStorm:
		if f.Delay <= 0 {
			return fmt.Errorf("fault: %s needs a positive delay", f.Kind)
		}
	case KindStall:
		if f.Delay <= 0 {
			return fmt.Errorf("fault: stall needs a positive delay")
		}
	case KindPanic:
	case KindMem:
	case KindCorrupt:
		if f.Section == "" {
			return fmt.Errorf("fault: corrupt needs section=<kind>")
		}
	default:
		return fmt.Errorf("fault: unknown kind %q", f.Kind)
	}
	if f.P < 0 || f.P > 1 || math.IsNaN(f.P) {
		return fmt.Errorf("fault: %s probability %v out of [0,1]", f.Kind, f.P)
	}
	if f.Start < 0 || f.Duration < 0 {
		return fmt.Errorf("fault: %s window (start %s, dur %s) must be non-negative", f.Kind, f.Start, f.Duration)
	}
	return nil
}
