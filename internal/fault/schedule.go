package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds an Injector from a compact schedule string, the grammar
// `navsim serve -faults` and `navsim chaos -faults` accept:
//
//	schedule := fault (";" fault)*
//	fault    := kind [":" key "=" val ("," key "=" val)*]
//	kind     := latency | storm | stall | panic | mem | corrupt
//	key      := shard | p | delay | start | dur | section
//
// Durations use Go syntax ("150ms", "3s").  Defaults: shard -1 for panic
// (every shard) and 0 for stall (stalling "every shard" is a dead server,
// not a drill), p=1, start=0, dur=0 (never closes).
//
// Example:
//
//	stall:shard=0,delay=150ms;storm:p=0.1,delay=3s,start=1s,dur=5s
//
// stalls every task on shard 0 for 150ms from activation onwards, and
// delays 10% of requests by 3s during seconds 1..6.
//
// An empty spec returns a nil Injector — the "disabled" value.
func Parse(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var faults []Fault
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := parseFault(part)
		if err != nil {
			return nil, err
		}
		faults = append(faults, f)
	}
	if len(faults) == 0 {
		return nil, nil
	}
	return New(seed, faults...), nil
}

// MustParse is Parse for schedules known valid at compile time (tests,
// default drill schedules); it panics on error.
func MustParse(spec string, seed uint64) *Injector {
	inj, err := Parse(spec, seed)
	if err != nil {
		panic(err)
	}
	return inj
}

func parseFault(part string) (Fault, error) {
	kindStr, rest, _ := strings.Cut(part, ":")
	f := Fault{Kind: Kind(strings.TrimSpace(kindStr)), Shard: -1, P: 1}
	if f.Kind == KindStall {
		// A stall drill targets one wedged worker by default; stalling
		// every shard is expressible with an explicit shard=-1.
		f.Shard = 0
	}
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return Fault{}, fmt.Errorf("fault: %q: option %q is not key=value", part, kv)
			}
			key, val = strings.TrimSpace(key), strings.TrimSpace(val)
			var err error
			switch key {
			case "shard":
				f.Shard, err = strconv.Atoi(val)
			case "p":
				f.P, err = strconv.ParseFloat(val, 64)
			case "delay":
				f.Delay, err = time.ParseDuration(val)
			case "start":
				f.Start, err = time.ParseDuration(val)
			case "dur":
				f.Duration, err = time.ParseDuration(val)
			case "section":
				f.Section = val
			default:
				return Fault{}, fmt.Errorf("fault: %q: unknown option %q", part, key)
			}
			if err != nil {
				return Fault{}, fmt.Errorf("fault: %q: option %q: %v", part, key, err)
			}
		}
	}
	if err := f.validate(); err != nil {
		return Fault{}, fmt.Errorf("%w (in %q)", err, part)
	}
	return f, nil
}
