package fault

import (
	"strings"
	"testing"
	"time"
)

func TestNilInjectorIsDisabled(t *testing.T) {
	var i *Injector
	if i.RequestDelay() != 0 || i.StallDelay(0) != 0 || i.InjectPanic(0) || i.MemoryPressure() {
		t.Fatal("nil injector injected a fault")
	}
	if i.Active() || i.String() != "" || i.CorruptSections() != nil {
		t.Fatal("nil injector reports state")
	}
	i.Activate() // must not panic
	i.Deactivate()
}

func TestDormantUntilActivate(t *testing.T) {
	i := MustParse("stall:shard=0,delay=10ms;mem;panic:p=1", 1)
	if i.StallDelay(0) != 0 || i.MemoryPressure() || i.InjectPanic(0) || i.Active() {
		t.Fatal("dormant injector fired before Activate")
	}
	i.Activate()
	if i.StallDelay(0) != 10*time.Millisecond || !i.MemoryPressure() || !i.InjectPanic(0) || !i.Active() {
		t.Fatal("activated injector did not fire")
	}
	i.Deactivate()
	if i.StallDelay(0) != 0 || i.MemoryPressure() || i.Active() {
		t.Fatal("deactivated injector still fires")
	}
}

func TestShardTargeting(t *testing.T) {
	i := MustParse("stall:shard=2,delay=5ms;panic:shard=1,p=1", 1)
	i.Activate()
	if i.StallDelay(0) != 0 || i.StallDelay(2) != 5*time.Millisecond {
		t.Fatal("stall did not target shard 2")
	}
	if i.InjectPanic(0) || !i.InjectPanic(1) {
		t.Fatal("panic did not target shard 1")
	}
	all := MustParse("panic:shard=-1,p=1", 1)
	all.Activate()
	if !all.InjectPanic(0) || !all.InjectPanic(7) {
		t.Fatal("shard=-1 panic did not hit every shard")
	}
}

func TestWindows(t *testing.T) {
	// A window starting 1h out never opens during the test; a 0-start
	// window with dur=0 never closes.
	i := MustParse("mem:start=1h;stall:shard=0,delay=1ms", 1)
	i.Activate()
	if i.MemoryPressure() {
		t.Fatal("future window already open")
	}
	if i.StallDelay(0) != time.Millisecond {
		t.Fatal("open-ended window not open")
	}
	// An already-elapsed window: rebase activation into the past.
	past := MustParse("mem:dur=1ms", 1)
	past.Activate()
	past.activatedAt.Store(time.Now().Add(-time.Second).UnixNano())
	if past.MemoryPressure() || past.Active() {
		t.Fatal("expired window still open")
	}
}

// TestDrawStreamDeterministic pins that the probability stream is a pure
// function of the seed: two injectors with equal seeds agree decision for
// decision, and a different seed disagrees somewhere.
func TestDrawStreamDeterministic(t *testing.T) {
	seq := func(seed uint64) []bool {
		i := MustParse("panic:p=0.5", seed)
		i.Activate()
		out := make([]bool, 256)
		for k := range out {
			out[k] = i.InjectPanic(0)
		}
		return out
	}
	a, b, c := seq(7), seq(7), seq(8)
	hits, differs := 0, false
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("same seed diverged at draw %d", k)
		}
		if a[k] != c[k] {
			differs = true
		}
		if a[k] {
			hits++
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical streams")
	}
	// p=0.5 over 256 draws: expect roughly half, loose bounds.
	if hits < 64 || hits > 192 {
		t.Fatalf("p=0.5 stream hit %d/256 draws", hits)
	}
}

func TestRequestDelaySumsOpenWindows(t *testing.T) {
	i := MustParse("latency:delay=2ms;storm:delay=3ms", 1)
	i.Activate()
	if d := i.RequestDelay(); d != 5*time.Millisecond {
		t.Fatalf("RequestDelay = %v, want 5ms", d)
	}
}

func TestCorruptSections(t *testing.T) {
	i := MustParse("corrupt:section=twohop;corrupt:section=scheme;stall:delay=1ms", 1)
	got := i.CorruptSections()
	if len(got) != 2 || got[0] != "twohop" || got[1] != "scheme" {
		t.Fatalf("CorruptSections = %v", got)
	}
	if i.Active() {
		t.Fatal("corrupt-only probes should not count as active request faults before Activate")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",
		"stall",                  // no delay
		"latency:delay=0s",       // non-positive delay
		"panic:p=1.5",            // p out of range
		"panic:p=nope",           // unparseable
		"stall:delay=5ms,foo=1",  // unknown key
		"stall:delay=5ms,shard",  // not key=value
		"corrupt",                // no section
		"mem:start=-1s",          // negative window
		"storm:delay=1s,dur=-1s", // negative duration
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted a malformed schedule", spec)
		}
	}
}

func TestParseEmptyAndRoundTrip(t *testing.T) {
	if inj, err := Parse("  ", 1); err != nil || inj != nil {
		t.Fatalf("empty spec: inj=%v err=%v, want nil,nil", inj, err)
	}
	spec := "stall:delay=150ms;storm:p=0.1,delay=3s,start=1s,dur=5s;mem;corrupt:section=twohop"
	i := MustParse(spec, 1)
	// String() must re-parse to an equivalent schedule.
	j := MustParse(i.String(), 1)
	if i.String() != j.String() {
		t.Fatalf("round trip: %q -> %q", i.String(), j.String())
	}
	if !strings.Contains(i.String(), "shard=0") {
		t.Fatalf("stall default shard not rendered: %q", i.String())
	}
}
