package graph

import "fmt"

// DynGraph is a mutable edge insert/delete overlay over an immutable CSR
// base graph.  It is the churn substrate: the base Graph stays shared and
// untouched (every reader that holds it keeps its exact view), while the
// overlay records which base edges are currently deleted and which extra
// edges have been inserted, per node, as small sorted slices.
//
// Cost model: the overlay is built for streams that touch a small fraction
// of the edge set between compactions.  Queries pay O(log overlay(u)) on
// touched nodes and nothing on untouched ones — when the overlay is empty
// every read path (Neighbors, BFSInto, Compact) delegates straight to the
// base CSR, byte-identical and allocation-free.  Periodic Rebase calls fold
// the overlay into a fresh CSR (identical to what Builder would produce
// from the same edge set) and clear it.
//
// Mutations go through Apply, which validates the whole delta batch against
// the current state before touching anything: an invalid delta (out of
// range, self-loop, inserting an existing edge, deleting a missing one)
// rejects the entire batch with an error and leaves the graph unchanged.
// Every applied batch bumps the generation counter — the handle that
// distance oracles and field caches use to refuse serving answers for a
// graph state they have not seen (see dist.DynTwoHop and
// dist.FieldCache.FieldAt).  Compaction does not change the edge set, so it
// does not change the generation.
//
// A DynGraph is not safe for concurrent use; the churn pipeline owns it
// single-threaded.  Concurrent readers that must survive mutation read
// through generation-stamped immutable artefacts instead (compacted CSRs,
// oracle states).
type DynGraph struct {
	base *Graph
	add  map[NodeID][]NodeID // extra neighbours per node, sorted
	del  map[NodeID][]NodeID // deleted base neighbours per node, sorted
	m    int64               // current undirected edge count
	gen  uint64              // number of applied delta batches
}

// DeltaOp says what a Delta does to its edge.
type DeltaOp uint8

const (
	// DeltaInsert inserts the edge {U, V}; it must not currently exist.
	DeltaInsert DeltaOp = iota
	// DeltaDelete deletes the edge {U, V}; it must currently exist.
	DeltaDelete
)

// Delta is one edge mutation of a churn stream.
type Delta struct {
	U, V NodeID
	Op   DeltaOp
}

// NewDynGraph wraps base in an empty overlay at generation 0.
func NewDynGraph(base *Graph) *DynGraph {
	return &DynGraph{
		base: base,
		add:  make(map[NodeID][]NodeID),
		del:  make(map[NodeID][]NodeID),
		m:    base.m,
	}
}

// Base returns the immutable CSR the overlay currently sits on.
func (d *DynGraph) Base() *Graph { return d.base }

// N returns the number of nodes (churn mutates edges only).
func (d *DynGraph) N() int { return d.base.N() }

// M returns the current number of undirected edges.
func (d *DynGraph) M() int { return int(d.m) }

// Gen returns the generation: the number of delta batches applied since
// creation.  Rebase preserves it — compaction changes the representation,
// not the graph.
func (d *DynGraph) Gen() uint64 { return d.gen }

// OverlayEmpty reports whether the overlay holds no pending deltas, i.e.
// the graph currently equals its base CSR exactly.
func (d *DynGraph) OverlayEmpty() bool { return len(d.add) == 0 && len(d.del) == 0 }

// Degree returns the current number of neighbours of u.
func (d *DynGraph) Degree(u NodeID) int {
	return d.base.Degree(u) - len(d.del[u]) + len(d.add[u])
}

// HasEdge reports whether {u, v} is currently an edge.
func (d *DynGraph) HasEdge(u, v NodeID) bool {
	if containsSorted(d.add[u], v) {
		return true
	}
	return d.base.HasEdge(u, v) && !containsSorted(d.del[u], v)
}

// AppendNeighbors appends the current neighbours of u, sorted increasing,
// to buf and returns the extended slice.  When the node is untouched by the
// overlay this is a straight copy of the base adjacency.
func (d *DynGraph) AppendNeighbors(buf []NodeID, u NodeID) []NodeID {
	baseNbr := d.base.Neighbors(u)
	dels, adds := d.del[u], d.add[u]
	if len(dels) == 0 && len(adds) == 0 {
		return append(buf, baseNbr...)
	}
	// Merge (base \ del) with add; all three inputs are sorted and add is
	// disjoint from base, so the output stays sorted and duplicate-free.
	i, j := 0, 0
	for i < len(baseNbr) || j < len(adds) {
		switch {
		case j >= len(adds) || (i < len(baseNbr) && baseNbr[i] < adds[j]):
			if !containsSorted(dels, baseNbr[i]) {
				buf = append(buf, baseNbr[i])
			}
			i++
		default:
			buf = append(buf, adds[j])
			j++
		}
	}
	return buf
}

// Edges returns a fresh slice of all current undirected edges with U < V.
func (d *DynGraph) Edges() []Edge {
	out := make([]Edge, 0, d.m)
	var nbr []NodeID
	for u := int32(0); u < int32(d.N()); u++ {
		nbr = d.AppendNeighbors(nbr[:0], u)
		for _, v := range nbr {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	return out
}

// Apply validates and applies one delta batch, bumping the generation by
// one.  Validation covers the entire batch against the current state plus
// the batch's own earlier deltas (a delete followed by a re-insert of the
// same edge is legal); any invalid delta rejects the whole batch with an
// error and leaves the graph — and its generation — untouched.
func (d *DynGraph) Apply(deltas []Delta) error {
	n := NodeID(d.N())
	pending := make(map[[2]NodeID]bool, len(deltas))
	for i, dl := range deltas {
		u, v := dl.U, dl.V
		if u > v {
			u, v = v, u
		}
		if u < 0 || v >= n {
			return fmt.Errorf("graph: delta %d: edge (%d,%d) out of range [0,%d)", i, dl.U, dl.V, n)
		}
		if u == v {
			return fmt.Errorf("graph: delta %d: self-loop at node %d", i, u)
		}
		key := [2]NodeID{u, v}
		exists, seen := pending[key]
		if !seen {
			exists = d.HasEdge(u, v)
		}
		switch dl.Op {
		case DeltaInsert:
			if exists {
				return fmt.Errorf("graph: delta %d: edge (%d,%d) already exists", i, u, v)
			}
			pending[key] = true
		case DeltaDelete:
			if !exists {
				return fmt.Errorf("graph: delta %d: edge (%d,%d) does not exist", i, u, v)
			}
			pending[key] = false
		default:
			return fmt.Errorf("graph: delta %d: unknown op %d", i, dl.Op)
		}
	}
	for _, dl := range deltas {
		d.applyOne(dl)
	}
	d.gen++
	return nil
}

// applyOne applies one pre-validated delta to the overlay.
func (d *DynGraph) applyOne(dl Delta) {
	switch dl.Op {
	case DeltaInsert:
		d.insertHalf(dl.U, dl.V)
		d.insertHalf(dl.V, dl.U)
		d.m++
	case DeltaDelete:
		d.deleteHalf(dl.U, dl.V)
		d.deleteHalf(dl.V, dl.U)
		d.m--
	}
}

func (d *DynGraph) insertHalf(u, v NodeID) {
	// Re-inserting a deleted base edge un-deletes it; otherwise it goes to
	// the add overlay.
	if s, ok := removeSorted(d.del[u], v); ok {
		d.setOverlay(d.del, u, s)
		return
	}
	d.add[u] = insertSorted(d.add[u], v)
}

func (d *DynGraph) deleteHalf(u, v NodeID) {
	// Deleting an overlay-inserted edge removes it from add; otherwise the
	// base edge is shadowed via the del overlay.
	if s, ok := removeSorted(d.add[u], v); ok {
		d.setOverlay(d.add, u, s)
		return
	}
	d.del[u] = insertSorted(d.del[u], v)
}

// setOverlay stores s under u, dropping the key when the slice is empty so
// OverlayEmpty (and with it the zero-overlay fast paths) stays exact.
func (d *DynGraph) setOverlay(m map[NodeID][]NodeID, u NodeID, s []NodeID) {
	if len(s) == 0 {
		delete(m, u)
		return
	}
	m[u] = s
}

// BFS computes hop distances from src on the current graph, with
// unreachable nodes at Unreachable, exactly like Graph.BFS.
func (d *DynGraph) BFS(src NodeID) []int32 {
	dist := make([]int32, d.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	d.BFSInto(src, dist, nil)
	return dist
}

// BFSInto runs BFS from src on the current graph into pre-filled scratch,
// mirroring Graph.BFSInto.  With an empty overlay it delegates to the base
// CSR — same code path, zero extra allocations.
func (d *DynGraph) BFSInto(src NodeID, dist []int32, queue []int32) int {
	if d.OverlayEmpty() {
		return d.base.BFSInto(src, dist, queue)
	}
	d.base.check(src)
	if len(dist) != d.N() {
		panic("graph: BFSInto dist slice has wrong length")
	}
	if cap(queue) < d.N() {
		queue = make([]int32, 0, d.N())
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	reached := 1
	var nbr []NodeID
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		nbr = d.AppendNeighbors(nbr[:0], u)
		for _, v := range nbr {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
				reached++
			}
		}
	}
	return reached
}

// Compact folds the overlay into a fresh immutable CSR identical — byte for
// byte — to what Builder.Build would produce from the current edge set.
// With an empty overlay it returns the base Graph itself (pointer
// identity), so the static path allocates nothing.
func (d *DynGraph) Compact() *Graph {
	if d.OverlayEmpty() {
		return d.base
	}
	n := d.base.n
	offsets := make([]int64, n+1)
	for u := int32(0); u < n; u++ {
		offsets[u+1] = offsets[u] + int64(d.Degree(u))
	}
	adj := make([]int32, offsets[n])
	var nbr []NodeID
	for u := int32(0); u < n; u++ {
		nbr = d.AppendNeighbors(nbr[:0], u)
		copy(adj[offsets[u]:offsets[u+1]], nbr)
	}
	return &Graph{
		n:       n,
		m:       offsets[n] / 2,
		offsets: offsets,
		adj:     adj,
		name:    d.base.name,
	}
}

// Rebase compacts the overlay into a fresh base CSR and clears it,
// returning the new base.  The edge set — and therefore the generation — is
// unchanged: Rebase is a representation change, and generation-checked
// consumers keep serving across it.
func (d *DynGraph) Rebase() *Graph {
	g := d.Compact()
	d.base = g
	clear(d.add)
	clear(d.del)
	return g
}

// containsSorted reports whether sorted slice s contains v.
func containsSorted(s []NodeID, v NodeID) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// insertSorted inserts v into sorted slice s, keeping it sorted.  v must
// not already be present.
func insertSorted(s []NodeID, v NodeID) []NodeID {
	i, hi := 0, len(s)
	for i < hi {
		mid := (i + hi) / 2
		if s[mid] < v {
			i = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// removeSorted removes v from sorted slice s, reporting whether it was
// present.
func removeSorted(s []NodeID, v NodeID) ([]NodeID, bool) {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s) || s[lo] != v {
		return s, false
	}
	copy(s[lo:], s[lo+1:])
	return s[:len(s)-1], true
}
