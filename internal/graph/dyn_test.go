package graph

import (
	"fmt"
	"testing"

	"navaug/internal/xrand"
)

// randomTestGraph builds a connected-ish random graph: a spanning path plus
// extra random edges, deduplicated by the Builder.
func randomTestGraph(n, extra int, rng *xrand.RNG) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(NodeID(i-1), NodeID(i))
	}
	for i := 0; i < extra; i++ {
		u := NodeID(rng.Intn(n))
		v := NodeID(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.SetName("rand").Build()
}

func TestTryAddEdgeErrors(t *testing.T) {
	b := NewBuilder(4)
	if err := b.TryAddEdge(0, 4); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if err := b.TryAddEdge(-1, 2); err == nil {
		t.Fatal("negative endpoint accepted")
	}
	if err := b.TryAddEdge(2, 2); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := b.TryAddEdge(0, 1); err != nil {
		t.Fatalf("valid edge rejected: %v", err)
	}
	if g := b.Build(); g.M() != 1 {
		t.Fatalf("expected 1 edge, got %d", g.M())
	}
}

func TestAddEdgeStillPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge did not panic on a self-loop")
		}
	}()
	NewBuilder(3).AddEdge(1, 1)
}

func TestDynGraphApplyValidation(t *testing.T) {
	base := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	cases := []struct {
		name   string
		deltas []Delta
	}{
		{"insert existing", []Delta{{U: 0, V: 1, Op: DeltaInsert}}},
		{"delete missing", []Delta{{U: 0, V: 3, Op: DeltaDelete}}},
		{"self-loop", []Delta{{U: 2, V: 2, Op: DeltaInsert}}},
		{"out of range", []Delta{{U: 0, V: 4, Op: DeltaInsert}}},
		{"negative", []Delta{{U: -1, V: 2, Op: DeltaDelete}}},
		{"double insert in batch", []Delta{{U: 0, V: 2, Op: DeltaInsert}, {U: 2, V: 0, Op: DeltaInsert}}},
		{"unknown op", []Delta{{U: 0, V: 2, Op: DeltaOp(9)}}},
		{"valid then invalid", []Delta{{U: 0, V: 2, Op: DeltaInsert}, {U: 1, V: 1, Op: DeltaInsert}}},
	}
	for _, tc := range cases {
		d := NewDynGraph(base)
		if err := d.Apply(tc.deltas); err == nil {
			t.Fatalf("%s: batch accepted", tc.name)
		}
		// A rejected batch must leave the graph and its generation untouched.
		if d.Gen() != 0 || !d.OverlayEmpty() || d.M() != base.M() {
			t.Fatalf("%s: rejected batch mutated the graph (gen=%d m=%d)", tc.name, d.Gen(), d.M())
		}
	}

	// Delete followed by re-insert of the same edge within one batch is legal.
	d := NewDynGraph(base)
	err := d.Apply([]Delta{{U: 0, V: 1, Op: DeltaDelete}, {U: 1, V: 0, Op: DeltaInsert}})
	if err != nil {
		t.Fatalf("delete+reinsert batch rejected: %v", err)
	}
	if !d.HasEdge(0, 1) || d.M() != base.M() || d.Gen() != 1 {
		t.Fatalf("delete+reinsert batch did not round-trip (m=%d gen=%d)", d.M(), d.Gen())
	}
}

// TestDynGraphOverlayVsCompacted is the overlay/compaction equivalence
// property test: after every random delta batch, the DynGraph view and an
// independently maintained edge set must agree on HasEdge/Degree/M, the
// compacted CSR must be byte-identical to a Builder-built graph over the
// same edges, and BFS must agree between the overlay and the compacted CSR.
func TestDynGraphOverlayVsCompacted(t *testing.T) {
	rng := xrand.New(42)
	base := randomTestGraph(96, 120, rng)
	d := NewDynGraph(base)

	// Reference edge set, maintained independently of the overlay.
	ref := make(map[[2]NodeID]bool)
	for _, e := range base.Edges() {
		ref[[2]NodeID{e.U, e.V}] = true
	}
	key := func(u, v NodeID) [2]NodeID {
		if u > v {
			u, v = v, u
		}
		return [2]NodeID{u, v}
	}

	n := base.N()
	for batch := 1; batch <= 12; batch++ {
		var deltas []Delta
		pending := make(map[[2]NodeID]bool)
		for len(deltas) < 9 {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			k := key(u, v)
			if pending[k] {
				continue
			}
			pending[k] = true
			exists := ref[k]
			if exists {
				deltas = append(deltas, Delta{U: u, V: v, Op: DeltaDelete})
				delete(ref, k)
			} else {
				deltas = append(deltas, Delta{U: u, V: v, Op: DeltaInsert})
				ref[k] = true
			}
		}
		if err := d.Apply(deltas); err != nil {
			t.Fatalf("batch %d rejected: %v", batch, err)
		}
		if d.Gen() != uint64(batch) {
			t.Fatalf("batch %d: gen=%d", batch, d.Gen())
		}
		if d.M() != len(ref) {
			t.Fatalf("batch %d: M=%d want %d", batch, d.M(), len(ref))
		}

		// Compacted CSR must match a Builder-built graph byte for byte.
		edges := make([]Edge, 0, len(ref))
		for k := range ref {
			edges = append(edges, Edge{U: k[0], V: k[1]})
		}
		want := FromEdges(n, edges)
		got := d.Compact()
		wantOff, wantAdj := want.RawCSR()
		gotOff, gotAdj := got.RawCSR()
		if len(wantOff) != len(gotOff) || len(wantAdj) != len(gotAdj) {
			t.Fatalf("batch %d: CSR shape mismatch", batch)
		}
		for i := range wantOff {
			if wantOff[i] != gotOff[i] {
				t.Fatalf("batch %d: offsets[%d] = %d want %d", batch, i, gotOff[i], wantOff[i])
			}
		}
		for i := range wantAdj {
			if wantAdj[i] != gotAdj[i] {
				t.Fatalf("batch %d: adj[%d] = %d want %d", batch, i, gotAdj[i], wantAdj[i])
			}
		}

		// Point queries agree with the reference set.
		for probe := 0; probe < 64; probe++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				continue
			}
			if d.HasEdge(u, v) != ref[key(u, v)] {
				t.Fatalf("batch %d: HasEdge(%d,%d) = %v", batch, u, v, d.HasEdge(u, v))
			}
		}
		for u := 0; u < n; u++ {
			if d.Degree(NodeID(u)) != want.Degree(NodeID(u)) {
				t.Fatalf("batch %d: Degree(%d) = %d want %d", batch, u, d.Degree(NodeID(u)), want.Degree(NodeID(u)))
			}
		}

		// BFS through the overlay equals BFS on the compacted CSR.
		for _, src := range []NodeID{0, NodeID(n / 2), NodeID(n - 1)} {
			dd := d.BFS(src)
			gd := got.BFS(src)
			for i := range dd {
				if dd[i] != gd[i] {
					t.Fatalf("batch %d: BFS(%d)[%d] = %d want %d", batch, src, i, dd[i], gd[i])
				}
			}
		}
	}

	// Rebase folds the overlay and preserves the edge set and generation.
	gen := d.Gen()
	g := d.Rebase()
	if !d.OverlayEmpty() || d.Gen() != gen || d.Base() != g {
		t.Fatal("Rebase did not clear the overlay in place")
	}
	if g.M() != len(ref) {
		t.Fatalf("Rebase lost edges: %d want %d", g.M(), len(ref))
	}
}

func TestDynGraphDeleteThenReinsertAcrossBatches(t *testing.T) {
	base := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	d := NewDynGraph(base)
	if err := d.Apply([]Delta{{U: 0, V: 1, Op: DeltaDelete}}); err != nil {
		t.Fatal(err)
	}
	if d.HasEdge(0, 1) || d.OverlayEmpty() {
		t.Fatal("delete not visible")
	}
	if err := d.Apply([]Delta{{U: 1, V: 0, Op: DeltaInsert}}); err != nil {
		t.Fatal(err)
	}
	// Re-inserting the deleted base edge must cancel the deletion entirely:
	// the overlay is empty again and the compacted graph IS the base.
	if !d.HasEdge(0, 1) || !d.OverlayEmpty() {
		t.Fatal("re-insert did not cancel the deletion")
	}
	if d.Compact() != base {
		t.Fatal("empty overlay must compact to the base graph itself")
	}
	if d.Gen() != 2 {
		t.Fatalf("gen=%d want 2", d.Gen())
	}
}

// TestDynGraphEmptyOverlayZeroAlloc pins the static-path contract: with an
// empty overlay, BFSInto with caller scratch allocates nothing and Compact
// returns the base graph pointer itself.
func TestDynGraphEmptyOverlayZeroAlloc(t *testing.T) {
	base := randomTestGraph(256, 256, xrand.New(7))
	d := NewDynGraph(base)
	dist := make([]int32, base.N())
	queue := make([]int32, 0, base.N())
	allocs := testing.AllocsPerRun(20, func() {
		for i := range dist {
			dist[i] = Unreachable
		}
		d.BFSInto(0, dist, queue)
	})
	if allocs != 0 {
		t.Fatalf("empty-overlay BFSInto allocates %.1f/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(20, func() {
		if d.Compact() != base {
			t.Fatal("empty overlay must compact to the base pointer")
		}
	})
	if allocs != 0 {
		t.Fatalf("empty-overlay Compact allocates %.1f/op, want 0", allocs)
	}
}

func TestDynGraphEdges(t *testing.T) {
	base := FromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	d := NewDynGraph(base)
	if err := d.Apply([]Delta{
		{U: 1, V: 2, Op: DeltaDelete},
		{U: 0, V: 3, Op: DeltaInsert},
	}); err != nil {
		t.Fatal(err)
	}
	got := fmt.Sprint(d.Edges())
	want := fmt.Sprint([]Edge{{0, 1}, {0, 3}, {2, 3}})
	if got != want {
		t.Fatalf("Edges() = %s want %s", got, want)
	}
}
