package graph

// This file contains structural queries that only depend on the CSR data:
// breadth-first search, connectivity, components, and eccentricity helpers.
// Distance oracles with caching and sampling live in internal/dist; the
// primitives here are allocation-conscious building blocks.
//
// Disconnection contract (churn can sever any graph, so every layer agrees
// on one convention):
//
//   - Pairwise distances use the Unreachable (-1) sentinel: BFS fields,
//     every dist.Source tier, and the routing validator all report an
//     unreachable pair as Unreachable, never as a large finite value.
//   - Whole-graph aggregates that are undefined on disconnected graphs
//     (Eccentricity, Diameter) return -1 rather than silently restricting
//     to a component.
//   - Component-local heuristics (TwoSweepDiameterLowerBound) stay
//     well-defined: they bound the diameter of the start node's component,
//     which is still a lower bound on the graph "diameter" under the
//     max-over-components reading, and they say so in their doc comment.
//   - The simulator neither errors, resamples, nor retries an unreachable
//     sampled pair: it counts it (sim.Estimate.Unreachable, the report
//     `unreachable` column) and excludes it from step aggregates.  Greedy
//     routing cannot spin against MaxSteps even when a stale oracle claims
//     a finite distance for a severed pair: every hop strictly decreases
//     the claimed (distance, id) key, so a walk terminates within the
//     initially claimed distance and surfaces as Reached=false.

// Unreachable marks an unreachable node in distance slices.
const Unreachable int32 = -1

// BFS computes hop distances from src to every node.  Unreachable nodes get
// Unreachable (-1).  The returned slice has length N.
func (g *Graph) BFS(src NodeID) []int32 {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = Unreachable
	}
	g.BFSInto(src, dist, nil)
	return dist
}

// BFSInto runs BFS from src writing distances into dist (which must have
// length N and be pre-filled with Unreachable) and using queue as scratch
// space if it has sufficient capacity.  It returns the number of reached
// nodes including src.  This variant lets hot loops avoid allocation.
func (g *Graph) BFSInto(src NodeID, dist []int32, queue []int32) int {
	g.check(src)
	if len(dist) != int(g.n) {
		panic("graph: BFSInto dist slice has wrong length")
	}
	if cap(queue) < int(g.n) {
		queue = make([]int32, 0, g.n)
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	reached := 1
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] == Unreachable {
				dist[v] = du + 1
				queue = append(queue, v)
				reached++
			}
		}
	}
	return reached
}

// BFSBounded explores the ball of the given radius around src and returns
// the visited nodes in non-decreasing distance order together with their
// distances.  src itself is included at distance 0.
func (g *Graph) BFSBounded(src NodeID, radius int32) (nodes []NodeID, dists []int32) {
	g.check(src)
	if radius < 0 {
		return nil, nil
	}
	seen := make(map[NodeID]int32, 16)
	seen[src] = 0
	nodes = append(nodes, src)
	dists = append(dists, 0)
	for head := 0; head < len(nodes); head++ {
		u := nodes[head]
		du := dists[head]
		if du == radius {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if _, ok := seen[v]; !ok {
				seen[v] = du + 1
				nodes = append(nodes, v)
				dists = append(dists, du+1)
			}
		}
	}
	return nodes, dists
}

// IsConnected reports whether the graph is connected.  The empty graph and
// single-node graph count as connected.
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == Unreachable {
			return false
		}
	}
	return true
}

// Components returns the connected components as slices of node ids.
// Components are ordered by their smallest node id.
func (g *Graph) Components() [][]NodeID {
	comp := make([]int32, g.n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]NodeID
	queue := make([]int32, 0, g.n)
	for s := int32(0); s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := int32(len(out))
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, s)
		members := []NodeID{s}
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range g.Neighbors(u) {
				if comp[v] == -1 {
					comp[v] = id
					queue = append(queue, v)
					members = append(members, v)
				}
			}
		}
		out = append(out, members)
	}
	return out
}

// Eccentricity returns the maximum BFS distance from u to any reachable
// node.  If some node is unreachable it returns -1.
func (g *Graph) Eccentricity(u NodeID) int32 {
	dist := g.BFS(u)
	ecc := int32(0)
	for _, d := range dist {
		if d == Unreachable {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter computes the exact diameter by running a BFS from every node.
// It returns -1 for disconnected graphs.  Intended for small graphs and
// tests; use dist.EstimateDiameter for large instances.
func (g *Graph) Diameter() int32 {
	if g.n == 0 {
		return 0
	}
	best := int32(0)
	for u := int32(0); u < g.n; u++ {
		e := g.Eccentricity(u)
		if e < 0 {
			return -1
		}
		if e > best {
			best = e
		}
	}
	return best
}

// TwoSweepDiameterLowerBound returns a lower bound on the diameter using the
// classic double-sweep heuristic: BFS from start, then BFS from the farthest
// node found.  On trees the bound is exact.  On a disconnected graph the
// sweeps never leave start's component, so the result bounds that
// component's diameter (unreachable nodes do not participate; they cannot
// produce a spurious bound).
func (g *Graph) TwoSweepDiameterLowerBound(start NodeID) int32 {
	if g.n == 0 {
		return 0
	}
	d1 := g.BFS(start)
	far := start
	for v, d := range d1 {
		if d > d1[far] {
			far = int32(v)
		}
	}
	d2 := g.BFS(far)
	best := int32(0)
	for _, d := range d2 {
		if d > best {
			best = d
		}
	}
	return best
}

// DegreeHistogram returns a slice h where h[d] is the number of nodes of
// degree d.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for u := int32(0); u < g.n; u++ {
		h[g.Degree(u)]++
	}
	return h
}

// InducedSubgraph returns the subgraph induced by the given nodes along with
// the mapping from new ids to original ids.  Duplicate nodes are ignored.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID) {
	index := make(map[NodeID]int32, len(nodes))
	orig := make([]NodeID, 0, len(nodes))
	for _, u := range nodes {
		g.check(u)
		if _, ok := index[u]; !ok {
			index[u] = int32(len(orig))
			orig = append(orig, u)
		}
	}
	b := NewBuilder(len(orig))
	for newU, u := range orig {
		for _, v := range g.Neighbors(u) {
			if newV, ok := index[v]; ok && int32(newU) < newV {
				b.AddEdge(int32(newU), newV)
			}
		}
	}
	return b.Build(), orig
}
