package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzGraphRead feeds arbitrary bytes to the text-format parser.  The
// contract under fuzzing: Read never panics and never over-allocates
// (malformed input, including hostile headers, yields an error), and any
// input it does accept must round-trip — WriteTo followed by Read
// reproduces the same node count, edge count, name and edge set.
func FuzzGraphRead(f *testing.F) {
	f.Add([]byte("graph 3 2 tiny\n0 1\n1 2\n"))
	f.Add([]byte("graph 2 1\n0 1\n"))
	f.Add([]byte("# comment\n\ngraph 4 3 with spaces in name\n0 1\n0 2\n0 3\n"))
	f.Add([]byte("graph 1 0 lonely\n"))
	f.Add([]byte("graph 3 2 dup\n0 1\n0 1\n")) // duplicate edges merge; count mismatch after merge
	f.Add([]byte("graph 99999999999 0\n"))     // hostile node count
	f.Add([]byte("graph 3 99999999999\n"))     // hostile edge count
	f.Add([]byte("graph 3 1\n0 0\n"))          // self-loop
	f.Add([]byte("graph 3 1\n0 7\n"))          // out of range
	f.Add([]byte("graph -1 0\n"))
	f.Add([]byte("graph 3 1\n0\n"))
	f.Add([]byte("notaheader\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking or hanging is not
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo failed on accepted graph: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round-trip Read failed: %v\ninput: %q", err, data)
		}
		assertSameGraph(t, g, g2)
	})
}

// FuzzGraphRoundTrip drives the writer side: it decodes the fuzz bytes
// into an arbitrary (valid) edge list, builds the graph and asserts the
// text format reproduces it exactly.
func FuzzGraphRoundTrip(f *testing.F) {
	f.Add(uint8(5), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint8(2), []byte{0, 1})
	f.Add(uint8(1), []byte{})
	f.Add(uint8(31), []byte{30, 0, 7, 19, 3, 3, 5, 6})
	f.Fuzz(func(t *testing.T, rawN uint8, edgeBytes []byte) {
		n := int(rawN)
		if n == 0 {
			n = 1
		}
		b := NewBuilder(n).SetName("fuzz-roundtrip")
		for i := 0; i+1 < len(edgeBytes); i += 2 {
			u := NodeID(int(edgeBytes[i]) % n)
			v := NodeID(int(edgeBytes[i+1]) % n)
			if u == v {
				continue
			}
			b.AddEdge(u, v)
		}
		g := b.Build()
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read of serialised graph: %v", err)
		}
		assertSameGraph(t, g, g2)
	})
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("round trip changed shape: %d/%d -> %d/%d nodes/edges", a.N(), a.M(), b.N(), b.M())
	}
	// WriteTo normalises whitespace inside names (fields are re-joined with
	// single spaces), so compare the normalised forms.
	if got, want := strings.Join(strings.Fields(b.Name()), " "), strings.Join(strings.Fields(a.Name()), " "); got != want {
		t.Fatalf("round trip changed name: %q -> %q", want, got)
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("round trip changed edge %d: %v -> %v", i, ea[i], eb[i])
		}
	}
}
