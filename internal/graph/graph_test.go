package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"navaug/internal/xrand"
)

func buildTriangleWithTail() *Graph {
	// 0-1, 1-2, 2-0 triangle plus tail 2-3-4
	return NewBuilder(5).
		AddEdge(0, 1).AddEdge(1, 2).AddEdge(2, 0).
		AddEdge(2, 3).AddEdge(3, 4).
		Build()
}

func TestBuilderBasics(t *testing.T) {
	g := buildTriangleWithTail()
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5", g.N())
	}
	if g.M() != 5 {
		t.Fatalf("M = %d, want 5", g.M())
	}
	if d := g.Degree(2); d != 3 {
		t.Fatalf("Degree(2) = %d, want 3", d)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("missing edge 0-1")
	}
	if g.HasEdge(0, 4) {
		t.Fatal("phantom edge 0-4")
	}
	if g.HasEdge(3, 3) {
		t.Fatal("self edge reported")
	}
}

func TestBuilderDeduplicatesEdges(t *testing.T) {
	g := NewBuilder(3).AddEdge(0, 1).AddEdge(1, 0).AddEdge(0, 1).AddEdge(1, 2).Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 after dedup", g.M())
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d, want 2", g.Degree(1))
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	NewBuilder(2).AddEdge(1, 1)
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestAddPath(t *testing.T) {
	g := NewBuilder(4).AddPath(0, 1, 2, 3).Build()
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("missing path edge")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewBuilder(5).AddEdge(0, 4).AddEdge(0, 2).AddEdge(0, 3).AddEdge(0, 1).Build()
	nbr := g.Neighbors(0)
	for i := 1; i < len(nbr); i++ {
		if nbr[i-1] >= nbr[i] {
			t.Fatalf("neighbours not sorted: %v", nbr)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := buildTriangleWithTail()
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges returned %d, want %d", len(edges), g.M())
	}
	g2 := FromEdges(g.N(), edges)
	if g2.M() != g.M() {
		t.Fatal("FromEdges changed edge count")
	}
	for _, e := range edges {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestBFSPath(t *testing.T) {
	// Path 0-1-2-3-4
	g := NewBuilder(5).AddPath(0, 1, 2, 3, 4).Build()
	dist := g.BFS(0)
	for i, want := range []int32{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Fatalf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).Build()
	dist := g.BFS(0)
	if dist[2] != Unreachable || dist[3] != Unreachable {
		t.Fatal("expected unreachable markers")
	}
}

func TestBFSIntoReusesBuffers(t *testing.T) {
	g := buildTriangleWithTail()
	dist := make([]int32, g.N())
	queue := make([]int32, 0, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	reached := g.BFSInto(0, dist, queue)
	if reached != 5 {
		t.Fatalf("reached = %d, want 5", reached)
	}
	if dist[4] != 3 {
		t.Fatalf("dist[4] = %d, want 3", dist[4])
	}
}

func TestBFSBounded(t *testing.T) {
	g := NewBuilder(6).AddPath(0, 1, 2, 3, 4, 5).Build()
	nodes, dists := g.BFSBounded(2, 2)
	if len(nodes) != 5 { // 0,1,2,3,4
		t.Fatalf("ball size %d, want 5", len(nodes))
	}
	for i, d := range dists {
		if d > 2 {
			t.Fatalf("node %d at distance %d > radius", nodes[i], d)
		}
	}
	if nodes[0] != 2 || dists[0] != 0 {
		t.Fatal("ball must start at the centre")
	}
	// Distances must be non-decreasing (BFS order).
	for i := 1; i < len(dists); i++ {
		if dists[i] < dists[i-1] {
			t.Fatal("BFSBounded distances not sorted")
		}
	}
}

func TestBFSBoundedNegativeRadius(t *testing.T) {
	g := buildTriangleWithTail()
	nodes, _ := g.BFSBounded(0, -1)
	if nodes != nil {
		t.Fatal("negative radius should yield empty ball")
	}
}

func TestIsConnected(t *testing.T) {
	if !buildTriangleWithTail().IsConnected() {
		t.Fatal("triangle with tail should be connected")
	}
	if NewBuilder(3).AddEdge(0, 1).Build().IsConnected() {
		t.Fatal("graph with isolated node reported connected")
	}
	if !NewBuilder(1).Build().IsConnected() {
		t.Fatal("single node should be connected")
	}
	if !NewBuilder(0).Build().IsConnected() {
		t.Fatal("empty graph should be connected")
	}
}

func TestComponents(t *testing.T) {
	g := NewBuilder(6).AddEdge(0, 1).AddEdge(2, 3).AddEdge(3, 4).Build()
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[len(c)]++
	}
	if sizes[2] != 1 || sizes[3] != 1 || sizes[1] != 1 {
		t.Fatalf("unexpected component sizes: %v", sizes)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := NewBuilder(5).AddPath(0, 1, 2, 3, 4).Build()
	if e := g.Eccentricity(2); e != 2 {
		t.Fatalf("Eccentricity(2) = %d, want 2", e)
	}
	if e := g.Eccentricity(0); e != 4 {
		t.Fatalf("Eccentricity(0) = %d, want 4", e)
	}
	if d := g.Diameter(); d != 4 {
		t.Fatalf("Diameter = %d, want 4", d)
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := NewBuilder(3).AddEdge(0, 1).Build()
	if d := g.Diameter(); d != -1 {
		t.Fatalf("Diameter of disconnected graph = %d, want -1", d)
	}
}

func TestTwoSweepOnPathIsExact(t *testing.T) {
	g := NewBuilder(10).AddPath(0, 1, 2, 3, 4, 5, 6, 7, 8, 9).Build()
	if lb := g.TwoSweepDiameterLowerBound(4); lb != 9 {
		t.Fatalf("two-sweep on path = %d, want 9", lb)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := buildTriangleWithTail()
	h := g.DegreeHistogram()
	// degrees: 0:2, 1:2, 2:3, 3:2, 4:1
	if h[1] != 1 || h[2] != 3 || h[3] != 1 {
		t.Fatalf("unexpected degree histogram: %v", h)
	}
}

func TestMaxAndAverageDegree(t *testing.T) {
	g := buildTriangleWithTail()
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	want := 2.0 * 5 / 5
	if g.AverageDegree() != want {
		t.Fatalf("AverageDegree = %v, want %v", g.AverageDegree(), want)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildTriangleWithTail()
	sub, orig := g.InducedSubgraph([]NodeID{0, 1, 2, 2})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced triangle has n=%d m=%d", sub.N(), sub.M())
	}
	if len(orig) != 3 {
		t.Fatalf("mapping length %d", len(orig))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := buildTriangleWithTail().WithName("tri-tail")
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %v vs %v", g2, g)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
	if g2.Name() != "tri-tail" {
		t.Fatalf("name lost: %q", g2.Name())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"nonsense 3 1\n0 1\n",
		"graph 2 1\n0 2\n",
		"graph 2 1\n1 1\n",
		"graph 2 2\n0 1\n",
		"graph 2 1\n0 x\n",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("Read accepted bad input %q", c)
		}
	}
}

func TestDOTContainsEdges(t *testing.T) {
	g := NewBuilder(3).AddEdge(0, 1).Build()
	dot := g.DOT()
	if !strings.Contains(dot, "0 -- 1") {
		t.Fatalf("DOT output missing edge: %s", dot)
	}
	if !strings.Contains(dot, "2;") {
		t.Fatalf("DOT output missing isolated node: %s", dot)
	}
}

func TestStringer(t *testing.T) {
	s := buildTriangleWithTail().WithName("x").String()
	if !strings.Contains(s, "n=5") || !strings.Contains(s, "m=5") {
		t.Fatalf("String() = %q", s)
	}
}

// Property: for random graphs, BFS distances obey the triangle inequality
// along edges (|d(u)-d(v)| <= 1 for every edge when both are reachable).
func TestBFSDistancesSmoothAcrossEdges(t *testing.T) {
	rng := xrand.New(123)
	check := func(seed uint32) bool {
		n := 2 + int(seed%40)
		b := NewBuilder(n)
		// random connected-ish graph: a random tree plus extra edges
		for v := 1; v < n; v++ {
			b.AddEdge(int32(v), int32(rng.Intn(v)))
		}
		extra := rng.Intn(n)
		for i := 0; i < extra; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		dist := g.BFS(0)
		for _, e := range g.Edges() {
			du, dv := dist[e.U], dist[e.V]
			if du == Unreachable || dv == Unreachable {
				continue
			}
			diff := du - dv
			if diff < -1 || diff > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: dedup + symmetry — HasEdge(u,v) == HasEdge(v,u) always, and the
// sum of degrees equals 2*M.
func TestHandshakeLemma(t *testing.T) {
	rng := xrand.New(321)
	check := func(seed uint32) bool {
		n := 2 + int(seed%30)
		b := NewBuilder(n)
		for i := 0; i < 3*n; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g := b.Build()
		sum := 0
		for u := int32(0); u < int32(n); u++ {
			sum += g.Degree(u)
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFSGridLike(b *testing.B) {
	// 100x100 grid built by hand to avoid importing gen (cycle-free deps).
	const side = 100
	gb := NewBuilder(side * side)
	id := func(x, y int) int32 { return int32(x*side + y) }
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			if x+1 < side {
				gb.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < side {
				gb.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	g := gb.Build()
	dist := make([]int32, g.N())
	queue := make([]int32, 0, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range dist {
			dist[j] = Unreachable
		}
		g.BFSInto(0, dist, queue)
	}
}
