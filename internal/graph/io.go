package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a minimal text interchange format for graphs so that
// the CLI tools can pipe graphs between each other and into files.
//
// Format (one record per line, '#' starts a comment):
//
//	graph <n> <m> [name]
//	<u> <v>            (m edge lines)

// MaxTextNodes and MaxTextEdges bound the sizes Read accepts.  The text
// format exists for piping experiment graphs between the CLI tools; the
// caps keep a hostile or corrupted header ("graph 99999999999 0") from
// forcing a multi-gigabyte allocation — or overflowing the int32 node-id
// space — before a single edge line has been seen.
const (
	MaxTextNodes = 1 << 24
	MaxTextEdges = 1 << 26
)

// WriteTo serialises the graph in the text edge-list format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "graph %d %d %s\n", g.n, g.m, g.name)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for u := int32(0); u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				n, err = fmt.Fprintf(bw, "%d %d\n", u, v)
				total += int64(n)
				if err != nil {
					return total, err
				}
			}
		}
	}
	return total, bw.Flush()
}

// Read parses a graph previously written with WriteTo.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var b *Builder
	var want, got int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if b == nil {
			if len(fields) < 3 || fields[0] != "graph" {
				return nil, fmt.Errorf("graph: bad header %q", line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: bad node count %q", fields[1])
			}
			if n > MaxTextNodes {
				return nil, fmt.Errorf("graph: node count %d exceeds the text-format cap %d", n, MaxTextNodes)
			}
			m, err := strconv.Atoi(fields[2])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("graph: bad edge count %q", fields[2])
			}
			if m > MaxTextEdges {
				return nil, fmt.Errorf("graph: edge count %d exceeds the text-format cap %d", m, MaxTextEdges)
			}
			want = m
			b = NewBuilder(n)
			if len(fields) > 3 {
				b.SetName(strings.Join(fields[3:], " "))
			}
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q", fields[0])
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q", fields[1])
		}
		if u < 0 || v < 0 || u >= b.N() || v >= b.N() {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range", u, v)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop at %d", u)
		}
		b.AddEdge(int32(u), int32(v))
		got++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: empty input")
	}
	if got != want {
		return nil, fmt.Errorf("graph: header promises %d edges, found %d", want, got)
	}
	return b.Build(), nil
}

// DOT renders the graph in Graphviz DOT syntax, which is convenient for
// eyeballing small instances.
func (g *Graph) DOT() string {
	var sb strings.Builder
	name := g.name
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(&sb, "graph %q {\n", name)
	for u := int32(0); u < g.n; u++ {
		if g.Degree(u) == 0 {
			fmt.Fprintf(&sb, "  %d;\n", u)
		}
	}
	for u := int32(0); u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				fmt.Fprintf(&sb, "  %d -- %d;\n", u, v)
			}
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
