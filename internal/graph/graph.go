// Package graph provides the immutable undirected graph representation used
// by the navigability simulator.
//
// Graphs are stored in compressed sparse row (CSR) form: a single flat
// adjacency slice plus per-node offsets.  Node identifiers are dense int32
// values in [0, N).  Graphs are built through a Builder and are immutable
// afterwards, which makes them safe for concurrent readers (the Monte Carlo
// engine shares one Graph across many goroutines).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node of a Graph.  IDs are dense in [0, N).
type NodeID = int32

// Edge is an undirected edge between two nodes.
type Edge struct {
	U, V NodeID
}

// Graph is an immutable undirected simple graph in CSR form.
type Graph struct {
	n       int32
	m       int64   // number of undirected edges
	offsets []int64 // len n+1
	adj     []int32 // len 2*m, neighbours of node i are adj[offsets[i]:offsets[i+1]]
	name    string
}

// Builder accumulates edges and produces an immutable Graph.
// Self-loops are rejected; duplicate edges are merged.
type Builder struct {
	n     int32
	edges []Edge
	name  string
}

// NewBuilder creates a builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Builder{n: int32(n)}
}

// SetName attaches a human-readable name reported by Graph.Name.
func (b *Builder) SetName(name string) *Builder {
	b.name = name
	return b
}

// N returns the number of nodes the builder was created with.
func (b *Builder) N() int { return int(b.n) }

// AddEdge records the undirected edge {u, v}.  It panics on out-of-range
// endpoints or self-loops; duplicates are allowed and merged at Build time.
// The panic is the right contract for generator code, where a bad edge is a
// programming error; data-driven inputs (delta streams, parsed edge lists)
// go through TryAddEdge instead.
func (b *Builder) AddEdge(u, v NodeID) *Builder {
	if err := b.TryAddEdge(u, v); err != nil {
		panic(err.Error())
	}
	return b
}

// TryAddEdge records the undirected edge {u, v}, returning an error instead
// of panicking on out-of-range endpoints or self-loops.  This is the entry
// point for external or churned input: a malformed edge in a delta stream
// must surface as an error the caller can reject, never as a process
// crash.  Duplicates are allowed and merged at Build time.
func (b *Builder) TryAddEdge(u, v NodeID) error {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	b.edges = append(b.edges, Edge{U: u, V: v})
	return nil
}

// AddPath adds edges forming a path through the listed nodes in order.
func (b *Builder) AddPath(nodes ...NodeID) *Builder {
	for i := 1; i < len(nodes); i++ {
		b.AddEdge(nodes[i-1], nodes[i])
	}
	return b
}

// Build produces the immutable Graph.  The builder may be reused afterwards,
// although that is rarely useful.
func (b *Builder) Build() *Graph {
	n := b.n
	// Normalise edges to (min,max) and deduplicate.
	norm := make([]Edge, 0, len(b.edges))
	for _, e := range b.edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		norm = append(norm, Edge{U: u, V: v})
	}
	sort.Slice(norm, func(i, j int) bool {
		if norm[i].U != norm[j].U {
			return norm[i].U < norm[j].U
		}
		return norm[i].V < norm[j].V
	})
	dedup := norm[:0]
	for i, e := range norm {
		if i == 0 || e != norm[i-1] {
			dedup = append(dedup, e)
		}
	}

	deg := make([]int64, n+1)
	for _, e := range dedup {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offsets := make([]int64, n+1)
	for i := int32(1); i <= n; i++ {
		offsets[i] = offsets[i-1] + deg[i]
	}
	adj := make([]int32, offsets[n])
	cursor := make([]int64, n)
	copy(cursor, offsets[:n])
	for _, e := range dedup {
		adj[cursor[e.U]] = e.V
		cursor[e.U]++
		adj[cursor[e.V]] = e.U
		cursor[e.V]++
	}
	// Sort each adjacency list for deterministic iteration order.
	for u := int32(0); u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		seg := adj[lo:hi]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
	return &Graph{
		n:       n,
		m:       int64(len(dedup)),
		offsets: offsets,
		adj:     adj,
		name:    b.name,
	}
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Build()
}

// RawCSR exposes the graph's CSR arrays as shared, read-only slices:
// offsets has length N+1 and adj has length 2·M, with the neighbours of
// node i (sorted increasing) at adj[offsets[i]:offsets[i+1]].  Callers must
// not modify either slice.  This is the serialisation entry point — the
// snapshot writer emits the arrays verbatim and FromCSR reconstructs the
// graph from them without re-running the Builder's sort/dedup pipeline.
func (g *Graph) RawCSR() (offsets []int64, adj []int32) {
	return g.offsets, g.adj
}

// FromCSR reconstructs a Graph directly from CSR arrays, taking ownership
// of the slices (callers must not modify them afterwards; they may alias a
// read-only snapshot buffer).  The arrays must satisfy every invariant
// Build establishes, and FromCSR verifies all of them — offsets monotone
// from 0 with len(adj) entries total, neighbour ids in range, each
// adjacency list strictly increasing (sorted, no duplicates, no
// self-loops), and edge symmetry (v in adj[u] iff u in adj[v]) — so a
// corrupted or hostile serialised graph is rejected instead of breaking
// BFS/routing invariants later.  The total cost is O(n + m·log deg).
func FromCSR(name string, n int, offsets []int64, adj []int32) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative node count %d", n)
	}
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("graph: offsets has length %d, want n+1 = %d", len(offsets), n+1)
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: offsets[0] = %d, want 0", offsets[0])
	}
	if offsets[n] != int64(len(adj)) {
		return nil, fmt.Errorf("graph: offsets[n] = %d, adjacency has %d entries", offsets[n], len(adj))
	}
	if len(adj)%2 != 0 {
		return nil, fmt.Errorf("graph: odd adjacency length %d (undirected graphs store each edge twice)", len(adj))
	}
	for u := 0; u < n; u++ {
		lo, hi := offsets[u], offsets[u+1]
		if lo > hi {
			return nil, fmt.Errorf("graph: offsets decrease at node %d (%d > %d)", u, lo, hi)
		}
		prev := int32(-1)
		for _, v := range adj[lo:hi] {
			if v < 0 || v >= int32(n) {
				return nil, fmt.Errorf("graph: neighbour %d of node %d out of range [0,%d)", v, u, n)
			}
			if v == int32(u) {
				return nil, fmt.Errorf("graph: self-loop at node %d", u)
			}
			if v <= prev {
				return nil, fmt.Errorf("graph: adjacency of node %d not strictly increasing (%d after %d)", u, v, prev)
			}
			prev = v
		}
	}
	g := &Graph{
		n:       int32(n),
		m:       int64(len(adj)) / 2,
		offsets: offsets,
		adj:     adj,
		name:    name,
	}
	// Symmetry: every stored arc must have its reverse.  Arc counts already
	// match (len(adj) is even and every arc is checked), so one direction
	// suffices.
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.Neighbors(u) {
			if !g.HasEdge(v, u) {
				return nil, fmt.Errorf("graph: asymmetric edge %d->%d has no reverse", u, v)
			}
		}
	}
	return g, nil
}

// N returns the number of nodes.
func (g *Graph) N() int { return int(g.n) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return int(g.m) }

// Name returns the graph's descriptive name ("" if unset).
func (g *Graph) Name() string { return g.name }

// WithName returns a shallow copy of g carrying the given name.
func (g *Graph) WithName(name string) *Graph {
	cp := *g
	cp.name = name
	return &cp
}

// Degree returns the number of neighbours of u.
func (g *Graph) Degree(u NodeID) int {
	g.check(u)
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the neighbours of u as a shared, read-only slice.
// Callers must not modify the returned slice.
func (g *Graph) Neighbors(u NodeID) []NodeID {
	g.check(u)
	return g.adj[g.offsets[u]:g.offsets[u+1]]
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v NodeID) bool {
	g.check(u)
	g.check(v)
	if u == v {
		return false
	}
	nbr := g.Neighbors(u)
	i := sort.Search(len(nbr), func(i int) bool { return nbr[i] >= v })
	return i < len(nbr) && nbr[i] == v
}

// Edges returns a fresh slice of all undirected edges with U < V.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := int32(0); u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	return out
}

// MaxDegree returns the maximum node degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	best := 0
	for u := int32(0); u < g.n; u++ {
		if d := g.Degree(u); d > best {
			best = d
		}
	}
	return best
}

// AverageDegree returns 2m/n, or 0 for the empty graph.
func (g *Graph) AverageDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(g.n)
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	name := g.name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s{n=%d m=%d}", name, g.n, g.m)
}

func (g *Graph) check(u NodeID) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}
