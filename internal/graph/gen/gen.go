// Package gen provides generators for the graph families used throughout
// the paper's experiments: paths, cycles, meshes, trees, AT-free graphs and
// assorted random families.  Deterministic families take only size
// parameters; random families additionally take an xrand.RNG so experiments
// stay reproducible.
//
// All generators return connected graphs unless documented otherwise, and
// panic on nonsensical size parameters (these are programming errors, not
// runtime conditions).
package gen

import (
	"fmt"

	"navaug/internal/graph"
)

// Path returns the path graph P_n with nodes 0-1-2-...-(n-1).
func Path(n int) *graph.Graph {
	requirePositive(n, "Path")
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("path-%d", n))
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

// Cycle returns the cycle graph C_n.  It requires n >= 3.
func Cycle(n int) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle requires n >= 3")
	}
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("cycle-%d", n))
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	requirePositive(n, "Complete")
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("complete-%d", n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with centre 0.
func Star(n int) *graph.Graph {
	requirePositive(n, "Star")
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("star-%d", n))
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

// Grid2D returns the rows x cols mesh.  Node (r,c) has id r*cols+c.
func Grid2D(rows, cols int) *graph.Graph {
	requirePositive(rows, "Grid2D rows")
	requirePositive(cols, "Grid2D cols")
	b := graph.NewBuilder(rows * cols).SetName(fmt.Sprintf("grid-%dx%d", rows, cols))
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	return b.Build()
}

// Torus2D returns the rows x cols torus (grid with wraparound edges).
// Both dimensions must be at least 3 to keep the graph simple.
func Torus2D(rows, cols int) *graph.Graph {
	if rows < 3 || cols < 3 {
		panic("gen: Torus2D requires rows, cols >= 3")
	}
	b := graph.NewBuilder(rows * cols).SetName(fmt.Sprintf("torus-%dx%d", rows, cols))
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id((r+1)%rows, c))
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
		}
	}
	return b.Build()
}

// Grid3D returns the x*y*z three-dimensional mesh.
func Grid3D(x, y, z int) *graph.Graph {
	requirePositive(x, "Grid3D x")
	requirePositive(y, "Grid3D y")
	requirePositive(z, "Grid3D z")
	b := graph.NewBuilder(x * y * z).SetName(fmt.Sprintf("grid3d-%dx%dx%d", x, y, z))
	id := func(i, j, k int) int32 { return int32((i*y+j)*z + k) }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					b.AddEdge(id(i, j, k), id(i+1, j, k))
				}
				if j+1 < y {
					b.AddEdge(id(i, j, k), id(i, j+1, k))
				}
				if k+1 < z {
					b.AddEdge(id(i, j, k), id(i, j, k+1))
				}
			}
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube Q_d with 2^d nodes.
func Hypercube(d int) *graph.Graph {
	if d < 0 || d > 30 {
		panic("gen: Hypercube dimension out of range [0,30]")
	}
	n := 1 << uint(d)
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("hypercube-%d", d))
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << uint(bit))
			if u < v {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// BalancedTree returns the complete arity-ary tree of the given depth
// (depth 0 is a single node).  Node 0 is the root and children of node v are
// contiguous, in breadth-first order.
func BalancedTree(arity, depth int) *graph.Graph {
	if arity < 1 {
		panic("gen: BalancedTree requires arity >= 1")
	}
	if depth < 0 {
		panic("gen: BalancedTree requires depth >= 0")
	}
	// count nodes
	n := 1
	levelSize := 1
	for d := 0; d < depth; d++ {
		levelSize *= arity
		n += levelSize
	}
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("tree-%dary-d%d", arity, depth))
	// Breadth-first numbering: children of node v are arity*v+1 .. arity*v+arity.
	for v := 0; v < n; v++ {
		for c := 1; c <= arity; c++ {
			child := arity*v + c
			if child < n {
				b.AddEdge(int32(v), int32(child))
			}
		}
	}
	return b.Build()
}

// BinaryTree returns the complete binary tree with exactly n nodes
// (heap numbering: children of v are 2v+1, 2v+2).
func BinaryTree(n int) *graph.Graph {
	requirePositive(n, "BinaryTree")
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("bintree-%d", n))
	for v := 0; v < n; v++ {
		if l := 2*v + 1; l < n {
			b.AddEdge(int32(v), int32(l))
		}
		if r := 2*v + 2; r < n {
			b.AddEdge(int32(v), int32(r))
		}
	}
	return b.Build()
}

// Caterpillar returns a caterpillar tree: a spine path of spine nodes where
// every spine node carries legs pendant leaves.  Total size spine*(1+legs).
func Caterpillar(spine, legs int) *graph.Graph {
	requirePositive(spine, "Caterpillar spine")
	if legs < 0 {
		panic("gen: Caterpillar requires legs >= 0")
	}
	n := spine * (1 + legs)
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("caterpillar-%dx%d", spine, legs))
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	next := spine
	for i := 0; i < spine; i++ {
		for l := 0; l < legs; l++ {
			b.AddEdge(int32(i), int32(next))
			next++
		}
	}
	return b.Build()
}

// Spider returns a spider (a set of legs paths of length legLen glued at a
// centre node 0).  Total size 1 + legs*legLen.
func Spider(legs, legLen int) *graph.Graph {
	if legs < 1 || legLen < 1 {
		panic("gen: Spider requires legs >= 1 and legLen >= 1")
	}
	n := 1 + legs*legLen
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("spider-%dx%d", legs, legLen))
	next := int32(1)
	for l := 0; l < legs; l++ {
		prev := int32(0)
		for s := 0; s < legLen; s++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
	}
	return b.Build()
}

// Comb returns a comb: a spine path of spine nodes with a tooth path of
// length toothLen hanging off every spine node.  Combs have pathwidth 1 but
// unbounded pathlength, which makes them useful pathshape test cases.
func Comb(spine, toothLen int) *graph.Graph {
	requirePositive(spine, "Comb spine")
	if toothLen < 0 {
		panic("gen: Comb requires toothLen >= 0")
	}
	n := spine * (1 + toothLen)
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("comb-%dx%d", spine, toothLen))
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	next := int32(spine)
	for i := 0; i < spine; i++ {
		prev := int32(i)
		for s := 0; s < toothLen; s++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
	}
	return b.Build()
}

// Lollipop returns a lollipop graph: a clique of cliqueSize nodes attached
// to a path of pathLen extra nodes.
func Lollipop(cliqueSize, pathLen int) *graph.Graph {
	requirePositive(cliqueSize, "Lollipop clique")
	if pathLen < 0 {
		panic("gen: Lollipop requires pathLen >= 0")
	}
	n := cliqueSize + pathLen
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("lollipop-%d+%d", cliqueSize, pathLen))
	for i := 0; i < cliqueSize; i++ {
		for j := i + 1; j < cliqueSize; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	prev := int32(cliqueSize - 1)
	for i := 0; i < pathLen; i++ {
		b.AddEdge(prev, int32(cliqueSize+i))
		prev = int32(cliqueSize + i)
	}
	return b.Build()
}

// Barbell returns two cliques of cliqueSize nodes joined by a path of
// pathLen intermediate nodes.
func Barbell(cliqueSize, pathLen int) *graph.Graph {
	requirePositive(cliqueSize, "Barbell clique")
	if pathLen < 0 {
		panic("gen: Barbell requires pathLen >= 0")
	}
	n := 2*cliqueSize + pathLen
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("barbell-%d+%d", cliqueSize, pathLen))
	clique := func(start int) {
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				b.AddEdge(int32(start+i), int32(start+j))
			}
		}
	}
	clique(0)
	clique(cliqueSize + pathLen)
	prev := int32(cliqueSize - 1)
	for i := 0; i < pathLen; i++ {
		b.AddEdge(prev, int32(cliqueSize+i))
		prev = int32(cliqueSize + i)
	}
	b.AddEdge(prev, int32(cliqueSize+pathLen))
	return b.Build()
}

func requirePositive(n int, what string) {
	if n < 1 {
		panic("gen: " + what + " requires n >= 1")
	}
}
