package gen

import (
	"fmt"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// PowerLawAttachment returns a Barabási–Albert preferential-attachment
// graph: starting from a star on m+1 seed nodes, every new node attaches m
// edges to m distinct existing nodes chosen with probability proportional
// to their current degree.  The stationary degree distribution is the
// power law
//
//	P(deg = k) = 2m(m+1) / (k(k+1)(k+2))  for k >= m,
//
// i.e. P(k) ~ k^-3 in the tail (pinned by a chi-square goodness-of-fit
// test).  The graph is connected by construction and has m(n−m) edges (the
// seed star contributes m).  Preferential attachment is implemented with
// the repeated-endpoint list — every node appears once per incident edge,
// so a degree-weighted draw is one uniform index draw — making generation
// O(n·m) expected time.
//
// Skewed degrees are what make this family the friendly case for the 2-hop
// distance oracle (dist.TwoHop): the early high-degree nodes lie on almost
// every shortest path, so degree-ordered pruning keeps labels polylog-sized
// where expander-like families (random regular, sparse GNP) grow ~sqrt(n)
// labels.  It requires n >= m+1 and m >= 1.
func PowerLawAttachment(n, m int, rng *xrand.RNG) *graph.Graph {
	if m < 1 {
		panic("gen: PowerLawAttachment requires m >= 1")
	}
	if n < m+1 {
		panic(fmt.Sprintf("gen: PowerLawAttachment requires n >= m+1 (got n=%d, m=%d)", n, m))
	}
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("plaw-%d-%d", n, m))
	// Seed: a star on nodes 0..m with centre 0, so every seed node starts
	// with degree >= 1 and the graph is connected from the first draw.
	endpoints := make([]int32, 0, 2*m*(n-m))
	for v := 1; v <= m; v++ {
		b.AddEdge(0, int32(v))
		endpoints = append(endpoints, 0, int32(v))
	}
	// targets collects the m distinct attachment points of one node.
	targets := make([]int32, 0, m)
	for v := m + 1; v < n; v++ {
		targets = targets[:0]
		for len(targets) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			dup := false
			for _, seen := range targets {
				if seen == t {
					dup = true
					break
				}
			}
			if !dup {
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			b.AddEdge(int32(v), t)
			endpoints = append(endpoints, int32(v), t)
		}
	}
	return b.Build()
}
