package gen

import (
	"math"
	"testing"

	"navaug/internal/xrand"
)

func TestPowerLawAttachmentStructure(t *testing.T) {
	for _, m := range []int{1, 2, 3} {
		for _, n := range []int{m + 1, 50, 1000} {
			g := PowerLawAttachment(n, m, xrand.New(uint64(7*n+m)))
			if g.N() != n {
				t.Fatalf("m=%d n=%d: got %d nodes", m, n, g.N())
			}
			wantM := m * (n - m)
			if g.M() != wantM {
				t.Fatalf("m=%d n=%d: got %d edges, want %d", m, n, g.M(), wantM)
			}
			if !g.IsConnected() {
				t.Fatalf("m=%d n=%d: graph is disconnected", m, n)
			}
			for u := 0; u < n; u++ {
				if d := g.Degree(int32(u)); d < m && n > m+1 {
					t.Fatalf("m=%d n=%d: node %d has degree %d < m", m, n, u, d)
				}
			}
		}
	}
}

func TestPowerLawAttachmentDeterministicPerSeed(t *testing.T) {
	a := PowerLawAttachment(500, 2, xrand.New(42))
	b := PowerLawAttachment(500, 2, xrand.New(42))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

// baDegreeProb is the stationary degree law of the Barabási–Albert model:
// P(deg = k) = 2m(m+1) / (k(k+1)(k+2)) for k >= m.
func baDegreeProb(m, k int) float64 {
	return 2 * float64(m) * float64(m+1) / (float64(k) * float64(k+1) * float64(k+2))
}

// TestPowerLawAttachmentChiSquareGOF is the statistical contract of the
// generator, mirroring the sampler goodness-of-fit tests in
// internal/augment: the empirical degree histogram must fit the analytic
// BA power law under a χ² test.  Degree counts are pooled across several
// independent graphs (finite-size fluctuations average out but a
// systematically wrong attachment rule does not), bins with expected count
// below 5 are pooled, and the deep tail is folded into one overflow bin.
// The significance level (z = 5, ~3e-7 one-sided) keeps false alarms
// negligible while failing hard on non-preferential attachment — e.g.
// uniform attachment yields an exponential degree law whose χ² here is
// orders of magnitude over the limit.
func TestPowerLawAttachmentChiSquareGOF(t *testing.T) {
	const n = 20000
	const graphs = 4
	for _, m := range []int{1, 2} {
		// Pool degree counts over independent graphs.
		counts := map[int]float64{}
		for rep := 0; rep < graphs; rep++ {
			g := PowerLawAttachment(n, m, xrand.New(uint64(1000*m+rep)))
			for u := 0; u < g.N(); u++ {
				counts[g.Degree(int32(u))]++
			}
		}
		samples := float64(graphs * n)
		// Build bins k = m, m+1, ... while the expected count stays >= 5;
		// everything beyond (including the power-law tail mass) pools into
		// one overflow bin.
		chi2 := 0.0
		bins := 0
		tailProb := 1.0
		tailObs := samples
		for k := m; ; k++ {
			p := baDegreeProb(m, k)
			if p*samples < 5 || tailProb-p < 1e-12 {
				break
			}
			obs := counts[k]
			exp := p * samples
			diff := obs - exp
			chi2 += diff * diff / exp
			bins++
			tailProb -= p
			tailObs -= obs
		}
		if exp := tailProb * samples; exp >= 5 {
			diff := tailObs - exp
			chi2 += diff * diff / exp
			bins++
		}
		if bins < 3 {
			t.Fatalf("m=%d: degenerate binning (%d bins)", m, bins)
		}
		if limit := chiSquareQuantileGen(bins-1, 5); chi2 > limit {
			t.Fatalf("m=%d: χ² = %.1f over %d bins exceeds %.1f — degree distribution does not match the BA power law",
				m, chi2, bins, limit)
		}
	}
}

// chiSquareQuantileGen approximates the upper quantile of the χ²
// distribution with df degrees of freedom via the Wilson–Hilferty
// transform; z is the standard-normal quantile of the significance level.
func chiSquareQuantileGen(df int, z float64) float64 {
	d := float64(df)
	c := 2.0 / (9.0 * d)
	x := 1 - c + z*math.Sqrt(c)
	return d * x * x * x
}
