package gen

import (
	"testing"

	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// metricCase is one (constructor, size) instance of the property test.
type metricCase struct {
	// family is the constructor's canonical name prefix.
	family string
	// wantMetric says whether the family must have a registered analytic
	// metric; a family listed with wantMetric=false documents that its
	// closed form is intentionally absent.
	wantMetric bool
	// build returns instances at roughly the requested size.
	build func(n int, rng *xrand.RNG) *graph.Graph
}

// metricCases is the table-driven inventory of every gen constructor.  The
// companion TestMetricRegistryCovered cross-checks it against the metric
// registry in both directions, so adding a family metric without a test
// entry — or a test entry claiming a metric that is not registered — fails
// loudly.  (A brand-new constructor must be added here by hand; the
// registry cross-check then forces a decision about its metric.)
var metricCases = []metricCase{
	{"path", true, func(n int, _ *xrand.RNG) *graph.Graph { return Path(n) }},
	{"cycle", true, func(n int, _ *xrand.RNG) *graph.Graph { return Cycle(max(3, n)) }},
	{"complete", true, func(n int, _ *xrand.RNG) *graph.Graph { return Complete(min(n, 96)) }},
	{"star", true, func(n int, _ *xrand.RNG) *graph.Graph { return Star(n) }},
	{"grid", true, func(n int, _ *xrand.RNG) *graph.Graph {
		side := intSqrtT(n)
		return Grid2D(side, side+1)
	}},
	{"torus", true, func(n int, _ *xrand.RNG) *graph.Graph {
		side := max(3, intSqrtT(n))
		return Torus2D(side, side+2)
	}},
	{"grid3d", true, func(n int, _ *xrand.RNG) *graph.Graph {
		s := max(2, intCbrtT(n))
		return Grid3D(s, s+1, max(1, s-1))
	}},
	{"hypercube", true, func(n int, _ *xrand.RNG) *graph.Graph {
		d := 0
		for 1<<uint(d+1) <= n {
			d++
		}
		return Hypercube(d)
	}},
	{"tree", true, func(n int, _ *xrand.RNG) *graph.Graph {
		depth := 0
		for sz := 1; sz*3+1 <= n; depth++ {
			sz = sz*3 + 1
		}
		return BalancedTree(3, depth)
	}},
	{"bintree", true, func(n int, _ *xrand.RNG) *graph.Graph { return BinaryTree(n) }},

	// Families below have no registered closed form (irregular or random).
	{"caterpillar", false, func(n int, _ *xrand.RNG) *graph.Graph { return Caterpillar(max(1, n/4), 3) }},
	{"spider", false, func(n int, _ *xrand.RNG) *graph.Graph { return Spider(5, max(1, n/5)) }},
	{"comb", false, func(n int, _ *xrand.RNG) *graph.Graph { return Comb(max(1, n/3), 2) }},
	{"lollipop", false, func(n int, _ *xrand.RNG) *graph.Graph { return Lollipop(max(1, min(n/2, 48)), n/2) }},
	{"barbell", false, func(n int, _ *xrand.RNG) *graph.Graph { return Barbell(max(1, min(n/3, 48)), n/3) }},
	{"rtree", false, func(n int, rng *xrand.RNG) *graph.Graph { return RandomTree(n, rng) }},
	{"cgnp", false, func(n int, rng *xrand.RNG) *graph.Graph { return ConnectedGNP(n, 3.0/float64(n), rng) }},
	{"plaw", false, func(n int, rng *xrand.RNG) *graph.Graph { return PowerLawAttachment(max(3, n), 2, rng) }},
	{"ratree", false, func(n int, rng *xrand.RNG) *graph.Graph { return RandomAttachmentTree(n, rng) }},
}

// TestMetricMatchesBFSExhaustive checks every registered analytic metric
// against BFS on all pairs of small instances (n <= 512).
func TestMetricMatchesBFSExhaustive(t *testing.T) {
	rng := xrand.New(11)
	for _, tc := range metricCases {
		for _, size := range []int{5, 24, 130, 512} {
			g := tc.build(size, rng)
			src, ok := MetricFor(g)
			if ok != tc.wantMetric {
				t.Fatalf("%s (n=%d, name %q): MetricFor ok=%v, want %v", tc.family, g.N(), g.Name(), ok, tc.wantMetric)
			}
			if !ok {
				continue
			}
			n := g.N()
			for u := 0; u < n; u++ {
				d := g.BFS(graph.NodeID(u))
				for v := 0; v < n; v++ {
					got := src.Dist(graph.NodeID(u), graph.NodeID(v))
					if got != d[v] {
						t.Fatalf("%s (n=%d): metric dist(%d,%d)=%d, BFS says %d", tc.family, n, u, v, got, d[v])
					}
				}
			}
		}
	}
}

// TestMetricMatchesBFSSampled checks the metrics on sampled pairs of
// larger instances (n up to 4096), where exhaustive pair enumeration is
// too slow for the race job.
func TestMetricMatchesBFSSampled(t *testing.T) {
	rng := xrand.New(12)
	for _, tc := range metricCases {
		if !tc.wantMetric {
			continue
		}
		for _, size := range []int{1500, 4096} {
			g := tc.build(size, rng)
			src, ok := MetricFor(g)
			if !ok {
				t.Fatalf("%s (n=%d, name %q): no metric", tc.family, g.N(), g.Name())
			}
			n := g.N()
			for trial := 0; trial < 64; trial++ {
				u := graph.NodeID(rng.Intn(n))
				d := g.BFS(u)
				for probe := 0; probe < 32; probe++ {
					v := graph.NodeID(rng.Intn(n))
					if got := src.Dist(u, v); got != d[v] {
						t.Fatalf("%s (n=%d): metric dist(%d,%d)=%d, BFS says %d", tc.family, n, u, v, got, d[v])
					}
				}
			}
		}
	}
}

// TestMetricRegistryCovered cross-checks the test table against the
// registry: every registered family must appear in the table with
// wantMetric=true, and vice versa.  A new family registered without a
// property-test entry (or expected here but never registered) fails.
func TestMetricRegistryCovered(t *testing.T) {
	registered := map[string]bool{}
	for _, fam := range MetricFamilies() {
		registered[fam] = true
	}
	tabled := map[string]bool{}
	for _, tc := range metricCases {
		tabled[tc.family] = tc.wantMetric
		if tc.wantMetric && !registered[tc.family] {
			t.Errorf("family %q claims a metric in the test table but none is registered", tc.family)
		}
		if !tc.wantMetric && registered[tc.family] {
			t.Errorf("family %q has a registered metric but the test table says it should not", tc.family)
		}
	}
	for fam := range registered {
		if _, ok := tabled[fam]; !ok {
			t.Errorf("registered metric family %q has no entry in the property-test table", fam)
		}
	}
}

// TestMetricForRejectsMismatchedGraph ensures a graph renamed into a
// family it does not belong to can never pick up that family's metric.
func TestMetricForRejectsMismatchedGraph(t *testing.T) {
	g := Path(10).WithName("path-99") // wrong n for the claimed family
	if _, ok := MetricFor(g); ok {
		t.Fatal("metric accepted for a graph whose size contradicts its name")
	}
	h := Path(10).WithName("gibberish")
	if _, ok := MetricFor(h); ok {
		t.Fatal("metric invented for an unknown name")
	}
	k := Path(10).WithName("torus-axb")
	if _, ok := MetricFor(k); ok {
		t.Fatal("metric accepted for unparsable parameters")
	}
}

// TestTransitiveProfiles checks the vertex-transitive extensions: the
// sphere sizes must match BFS distance histograms from every node, the
// profile must sum to n, and SampleAtDistance must return nodes at exactly
// the requested distance with full support over small spheres.
func TestTransitiveProfiles(t *testing.T) {
	rng := xrand.New(13)
	builds := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle-odd", Cycle(31)},
		{"cycle-even", Cycle(32)},
		{"torus-odd", Torus2D(5, 7)},
		{"torus-even", Torus2D(6, 8)},
		{"torus-mixed", Torus2D(5, 8)},
		{"hypercube", Hypercube(5)},
		{"complete", Complete(17)},
	}
	for _, b := range builds {
		src, ok := MetricFor(b.g)
		if !ok {
			t.Fatalf("%s: no metric", b.name)
		}
		tr, ok := src.(dist.Transitive)
		if !ok {
			t.Fatalf("%s: metric is not Transitive", b.name)
		}
		n := b.g.N()
		if tr.N() != n {
			t.Fatalf("%s: N()=%d, want %d", b.name, tr.N(), n)
		}
		ecc := tr.Eccentricity()
		// Profile vs BFS histogram from every node (vertex-transitivity
		// means they must all agree).
		for u := 0; u < n; u++ {
			hist := make([]float64, ecc+1)
			for _, d := range b.g.BFS(graph.NodeID(u)) {
				if d < 0 || d > ecc {
					t.Fatalf("%s: BFS distance %d outside [0,%d]", b.name, d, ecc)
				}
				hist[d]++
			}
			for d := int32(0); d <= ecc; d++ {
				if tr.SphereSize(d) != hist[d] {
					t.Fatalf("%s: SphereSize(%d)=%g, BFS histogram says %g (from node %d)",
						b.name, d, tr.SphereSize(d), hist[d], u)
				}
			}
		}
		// SampleAtDistance: right distance always; full support on spheres
		// of size <= 4 within a generous sample budget.
		for u := 0; u < min(n, 8); u++ {
			for d := int32(0); d <= ecc; d++ {
				seen := map[graph.NodeID]bool{}
				for trial := 0; trial < 256; trial++ {
					v := tr.SampleAtDistance(graph.NodeID(u), d, rng)
					if got := tr.Dist(graph.NodeID(u), v); got != d {
						t.Fatalf("%s: SampleAtDistance(%d, %d) returned node at distance %d", b.name, u, d, got)
					}
					seen[v] = true
				}
				if size := tr.SphereSize(d); size <= 4 && float64(len(seen)) != size {
					t.Fatalf("%s: sphere(%d, d=%d) has %g nodes but sampling hit %d", b.name, u, d, size, len(seen))
				}
			}
		}
	}
}

func intSqrtT(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

func intCbrtT(n int) int {
	s := 1
	for (s+1)*(s+1)*(s+1) <= n {
		s++
	}
	return s
}
