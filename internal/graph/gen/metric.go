package gen

import (
	"math/bits"
	"strconv"
	"strings"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// This file gives the structured generator families their closed-form
// ("analytic") distance metrics: dist.Source implementations that answer
// Dist(u, v) in O(1) time and O(1) memory from the family's size parameters
// alone, with no BFS and no per-target field.  This is what makes routing
// experiments at n >= 10^6 feasible — the per-query cost no longer scales
// with the graph.
//
// Every family registers its metric in a name-keyed registry: the
// constructors stamp a canonical name ("torus-1000x1000") on the graphs
// they build, and MetricFor parses that name back into the metric.  The
// registry is the single source of truth for which families are analytic;
// metric_test.go exhaustively checks every registered metric against BFS,
// so a family whose closed form drifts from its generator fails loudly.
//
// Vertex-transitive families (cycle, torus, hypercube, complete) register
// metrics that additionally implement dist.Transitive — the distance
// profile plus uniform sphere sampling that the analytic contact samplers
// in internal/augment build on.
//
// The Metric and TransitiveMetric interfaces here mirror dist.Source and
// dist.Transitive method-for-method (kept local so that gen does not
// import dist, whose own tests build graphs through gen); values satisfy
// the dist interfaces structurally and convert implicitly.

// Metric mirrors dist.Source: an O(1) point-to-point distance query.
type Metric interface {
	Dist(u, v graph.NodeID) int32
}

// TransitiveMetric mirrors dist.Transitive: a Metric over a
// vertex-transitive graph exposing its distance profile and uniform sphere
// sampling.
type TransitiveMetric interface {
	Metric
	N() int
	Eccentricity() int32
	SphereSize(d int32) float64
	SampleAtDistance(u graph.NodeID, d int32, rng *xrand.RNG) graph.NodeID
}

// metricFamily is one registry entry: Family is the constructor's name
// prefix (up to the first '-'), parse turns the parameter suffix into the
// metric.
type metricFamily struct {
	family string
	parse  func(rest string) (Metric, bool)
}

// sized is implemented by every metric here so MetricFor can reject a
// name-collision with a graph of the wrong size.
type sized interface {
	Metric
	N() int
}

var metricRegistry []metricFamily

func registerMetric(family string, parse func(rest string) (Metric, bool)) {
	metricRegistry = append(metricRegistry, metricFamily{family: family, parse: parse})
}

// MetricFamilies returns the registered family name prefixes, in
// registration order.  The metric property test uses it to ensure every
// registered family is covered.
func MetricFamilies() []string {
	out := make([]string, 0, len(metricRegistry))
	for _, e := range metricRegistry {
		out = append(out, e.family)
	}
	return out
}

// MetricFor returns the closed-form distance metric of g, keyed by the
// canonical family name its generator stamped on it, or (nil, false) when
// the family has no registered metric (random families, graphs built
// elsewhere, renamed graphs).  A parsed metric whose node count does not
// match g is rejected, so a renamed or truncated graph can never silently
// pick up a wrong metric.
func MetricFor(g *graph.Graph) (Metric, bool) {
	name := g.Name()
	for _, e := range metricRegistry {
		rest, ok := strings.CutPrefix(name, e.family+"-")
		if !ok {
			continue
		}
		src, ok := e.parse(rest)
		if !ok {
			continue
		}
		if s, okSized := src.(sized); !okSized || s.N() != g.N() {
			return nil, false
		}
		return src, true
	}
	return nil, false
}

func init() {
	registerMetric("path", func(rest string) (Metric, bool) {
		n, ok := parseInt(rest)
		if !ok || n < 1 {
			return nil, false
		}
		return PathMetric(n), true
	})
	registerMetric("cycle", func(rest string) (Metric, bool) {
		n, ok := parseInt(rest)
		if !ok || n < 3 {
			return nil, false
		}
		return CycleMetric(n), true
	})
	registerMetric("complete", func(rest string) (Metric, bool) {
		n, ok := parseInt(rest)
		if !ok || n < 1 {
			return nil, false
		}
		return CompleteMetric(n), true
	})
	registerMetric("star", func(rest string) (Metric, bool) {
		n, ok := parseInt(rest)
		if !ok || n < 1 {
			return nil, false
		}
		return StarMetric(n), true
	})
	registerMetric("grid", func(rest string) (Metric, bool) {
		p, ok := parseInts(rest, "x", 2)
		if !ok || p[0] < 1 || p[1] < 1 {
			return nil, false
		}
		return Grid2DMetric(p[0], p[1]), true
	})
	registerMetric("torus", func(rest string) (Metric, bool) {
		p, ok := parseInts(rest, "x", 2)
		if !ok || p[0] < 3 || p[1] < 3 {
			return nil, false
		}
		return Torus2DMetric(p[0], p[1]), true
	})
	registerMetric("grid3d", func(rest string) (Metric, bool) {
		p, ok := parseInts(rest, "x", 3)
		if !ok || p[0] < 1 || p[1] < 1 || p[2] < 1 {
			return nil, false
		}
		return Grid3DMetric(p[0], p[1], p[2]), true
	})
	registerMetric("hypercube", func(rest string) (Metric, bool) {
		d, ok := parseInt(rest)
		if !ok || d < 0 || d > 30 {
			return nil, false
		}
		return HypercubeMetric(d), true
	})
	registerMetric("tree", func(rest string) (Metric, bool) {
		// "tree-%dary-d%d": arity then depth.
		aryStr, depthStr, ok := strings.Cut(rest, "ary-d")
		if !ok {
			return nil, false
		}
		arity, ok1 := parseInt(aryStr)
		depth, ok2 := parseInt(depthStr)
		if !ok1 || !ok2 || arity < 1 || depth < 0 {
			return nil, false
		}
		n, levelSize := 1, 1
		for d := 0; d < depth; d++ {
			levelSize *= arity
			n += levelSize
		}
		return TreeMetric(arity, n), true
	})
	registerMetric("bintree", func(rest string) (Metric, bool) {
		n, ok := parseInt(rest)
		if !ok || n < 1 {
			return nil, false
		}
		return TreeMetric(2, n), true
	})
}

// parseInt parses a full-string non-negative decimal integer.
func parseInt(s string) (int, bool) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// parseInts parses exactly count sep-separated integers spanning the whole
// string.
func parseInts(s, sep string, count int) ([]int, bool) {
	parts := strings.Split(s, sep)
	if len(parts) != count {
		return nil, false
	}
	out := make([]int, count)
	for i, p := range parts {
		v, ok := parseInt(p)
		if !ok {
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// ---------------------------------------------------------------------------
// Path, grids
// ---------------------------------------------------------------------------

type pathMetric struct{ n int }

// PathMetric returns the closed-form metric of Path(n): |u - v|.
func PathMetric(n int) Metric { return pathMetric{n: n} }

func (m pathMetric) N() int { return m.n }

func (m pathMetric) Dist(u, v graph.NodeID) int32 {
	if u > v {
		u, v = v, u
	}
	return v - u
}

type grid2dMetric struct{ rows, cols int }

// Grid2DMetric returns the closed-form metric of Grid2D(rows, cols): the
// Manhattan distance between cell coordinates.
func Grid2DMetric(rows, cols int) Metric { return grid2dMetric{rows: rows, cols: cols} }

func (m grid2dMetric) N() int { return m.rows * m.cols }

func (m grid2dMetric) Dist(u, v graph.NodeID) int32 {
	c := int32(m.cols)
	r1, c1 := u/c, u%c
	r2, c2 := v/c, v%c
	return absi32(r1-r2) + absi32(c1-c2)
}

type grid3dMetric struct{ x, y, z int }

// Grid3DMetric returns the closed-form metric of Grid3D(x, y, z).
func Grid3DMetric(x, y, z int) Metric { return grid3dMetric{x: x, y: y, z: z} }

func (m grid3dMetric) N() int { return m.x * m.y * m.z }

func (m grid3dMetric) Dist(u, v graph.NodeID) int32 {
	yz := int32(m.y) * int32(m.z)
	z := int32(m.z)
	i1, r1 := u/yz, u%yz
	i2, r2 := v/yz, v%yz
	return absi32(i1-i2) + absi32(r1/z-r2/z) + absi32(r1%z-r2%z)
}

type starMetric struct{ n int }

// StarMetric returns the closed-form metric of Star(n): 1 through the
// centre (node 0), 2 between leaves.
func StarMetric(n int) Metric { return starMetric{n: n} }

func (m starMetric) N() int { return m.n }

func (m starMetric) Dist(u, v graph.NodeID) int32 {
	switch {
	case u == v:
		return 0
	case u == 0 || v == 0:
		return 1
	default:
		return 2
	}
}

// ---------------------------------------------------------------------------
// Trees (balanced arity trees and heap-numbered binary trees)
// ---------------------------------------------------------------------------

type treeMetric struct {
	arity int
	n     int
}

// TreeMetric returns the closed-form metric of the arity-ary tree with
// contiguous breadth-first child numbering (children of v are
// arity*v+1 .. arity*v+arity), which covers both BalancedTree and
// BinaryTree.  Queries climb to the lowest common ancestor, so Dist costs
// O(depth) = O(log_arity n) rather than strictly O(1); still field-free and
// allocation-free.
func TreeMetric(arity, n int) Metric { return treeMetric{arity: arity, n: n} }

func (m treeMetric) N() int { return m.n }

func (m treeMetric) parent(v graph.NodeID) graph.NodeID {
	return (v - 1) / int32(m.arity)
}

func (m treeMetric) depth(v graph.NodeID) int32 {
	var d int32
	for v != 0 {
		v = m.parent(v)
		d++
	}
	return d
}

func (m treeMetric) Dist(u, v graph.NodeID) int32 {
	du, dv := m.depth(u), m.depth(v)
	var steps int32
	for du > dv {
		u = m.parent(u)
		du--
		steps++
	}
	for dv > du {
		v = m.parent(v)
		dv--
		steps++
	}
	for u != v {
		u, v = m.parent(u), m.parent(v)
		steps += 2
	}
	return steps
}

// ---------------------------------------------------------------------------
// Vertex-transitive families: cycle, complete, torus, hypercube
// ---------------------------------------------------------------------------

type cycleMetric struct{ n int }

// CycleMetric returns the closed-form metric of Cycle(n); it implements
// dist.Transitive.
func CycleMetric(n int) TransitiveMetric { return cycleMetric{n: n} }

func (m cycleMetric) N() int { return m.n }

func (m cycleMetric) Dist(u, v graph.NodeID) int32 {
	d := absi32(u - v)
	if alt := int32(m.n) - d; alt < d {
		return alt
	}
	return d
}

func (m cycleMetric) Eccentricity() int32 { return int32(m.n / 2) }

func (m cycleMetric) SphereSize(d int32) float64 {
	switch {
	case d == 0:
		return 1
	case m.n%2 == 0 && d == int32(m.n/2):
		return 1
	default:
		return 2
	}
}

func (m cycleMetric) SampleAtDistance(u graph.NodeID, d int32, rng *xrand.RNG) graph.NodeID {
	if d < 0 || d > m.Eccentricity() {
		panic("gen: cycle sphere distance out of range")
	}
	if d == 0 {
		return u
	}
	off := d
	if m.SphereSize(d) == 2 && rng.Bool() {
		off = -d
	}
	return graph.NodeID(((int(u)+int(off))%m.n + m.n) % m.n)
}

type completeMetric struct{ n int }

// CompleteMetric returns the closed-form metric of Complete(n); it
// implements dist.Transitive.
func CompleteMetric(n int) TransitiveMetric { return completeMetric{n: n} }

func (m completeMetric) N() int { return m.n }

func (m completeMetric) Dist(u, v graph.NodeID) int32 {
	if u == v {
		return 0
	}
	return 1
}

func (m completeMetric) Eccentricity() int32 {
	if m.n <= 1 {
		return 0
	}
	return 1
}

func (m completeMetric) SphereSize(d int32) float64 {
	if d == 0 {
		return 1
	}
	return float64(m.n - 1)
}

func (m completeMetric) SampleAtDistance(u graph.NodeID, d int32, rng *xrand.RNG) graph.NodeID {
	if d < 0 || d > m.Eccentricity() {
		panic("gen: complete-graph sphere distance out of range")
	}
	if d == 0 {
		return u
	}
	v := graph.NodeID(rng.Intn(m.n - 1))
	if v >= u {
		v++
	}
	return v
}

// torusMetric is the wraparound Manhattan metric of Torus2D.  The distance
// profile N(d) = Σ_a mRow(a)·mCol(d-a) is precomputed once (O(ecc²) work at
// construction, ecc = ⌊R/2⌋+⌊C/2⌋), where mRow(a) counts row offsets at
// wrap-distance a (1 for a = 0 and for the antipodal offset of an even
// dimension, 2 otherwise).
type torusMetric struct {
	rows, cols int
	profile    []float64 // profile[d] = |sphere at distance d|
}

// Torus2DMetric returns the closed-form metric of Torus2D(rows, cols); it
// implements dist.Transitive.
func Torus2DMetric(rows, cols int) TransitiveMetric {
	m := &torusMetric{rows: rows, cols: cols}
	ecc := rows/2 + cols/2
	m.profile = make([]float64, ecc+1)
	for d := 0; d <= ecc; d++ {
		total := 0.0
		for a := max(0, d-cols/2); a <= min(d, rows/2); a++ {
			total += wrapMultiplicity(a, rows) * wrapMultiplicity(d-a, cols)
		}
		m.profile[d] = total
	}
	return m
}

// wrapMultiplicity counts the offsets of a cyclic dimension of the given
// length at wrap-distance a.
func wrapMultiplicity(a, length int) float64 {
	if a == 0 || (length%2 == 0 && a == length/2) {
		return 1
	}
	return 2
}

func (m *torusMetric) N() int { return m.rows * m.cols }

func (m *torusMetric) Dist(u, v graph.NodeID) int32 {
	c := int32(m.cols)
	dr := absi32(u/c - v/c)
	if alt := int32(m.rows) - dr; alt < dr {
		dr = alt
	}
	dc := absi32(u%c - v%c)
	if alt := int32(m.cols) - dc; alt < dc {
		dc = alt
	}
	return dr + dc
}

func (m *torusMetric) Eccentricity() int32 { return int32(len(m.profile) - 1) }

func (m *torusMetric) SphereSize(d int32) float64 { return m.profile[d] }

func (m *torusMetric) SampleAtDistance(u graph.NodeID, d int32, rng *xrand.RNG) graph.NodeID {
	if d < 0 || int(d) >= len(m.profile) {
		panic("gen: torus sphere distance out of range")
	}
	if d == 0 {
		return u
	}
	// Split d into (row part a, column part d-a) with probability
	// proportional to mRow(a)·mCol(d-a), then pick a uniform sign per part.
	lo, hi := max(0, int(d)-m.cols/2), min(int(d), m.rows/2)
	x := rng.Float64() * m.profile[d]
	a := lo
	for ; a < hi; a++ {
		w := wrapMultiplicity(a, m.rows) * wrapMultiplicity(int(d)-a, m.cols)
		if x < w {
			break
		}
		x -= w
	}
	b := int(d) - a
	dr := wrapOffset(a, m.rows, rng)
	dc := wrapOffset(b, m.cols, rng)
	c := m.cols
	r2 := ((int(u)/c+dr)%m.rows + m.rows) % m.rows
	c2 := ((int(u)%c+dc)%c + c) % c
	return graph.NodeID(r2*c + c2)
}

// wrapOffset turns a wrap-distance a into a signed offset, choosing the
// sign uniformly when both representatives exist.
func wrapOffset(a, length int, rng *xrand.RNG) int {
	if a == 0 || (length%2 == 0 && a == length/2) {
		return a
	}
	if rng.Bool() {
		return -a
	}
	return a
}

// hypercubeMetric is the Hamming metric of Hypercube(d): dist(u, v) is the
// popcount of u XOR v, and the sphere at distance k is the set of nodes
// differing in exactly k of the d bits.
type hypercubeMetric struct {
	d        int
	binomial []float64 // binomial[k] = C(d, k)
}

// HypercubeMetric returns the closed-form metric of Hypercube(d); it
// implements dist.Transitive.
func HypercubeMetric(d int) TransitiveMetric {
	m := &hypercubeMetric{d: d, binomial: make([]float64, d+1)}
	m.binomial[0] = 1
	for k := 1; k <= d; k++ {
		m.binomial[k] = m.binomial[k-1] * float64(d-k+1) / float64(k)
	}
	return m
}

func (m *hypercubeMetric) N() int { return 1 << uint(m.d) }

func (m *hypercubeMetric) Dist(u, v graph.NodeID) int32 {
	return int32(bits.OnesCount32(uint32(u ^ v)))
}

func (m *hypercubeMetric) Eccentricity() int32 { return int32(m.d) }

func (m *hypercubeMetric) SphereSize(d int32) float64 { return m.binomial[d] }

func (m *hypercubeMetric) SampleAtDistance(u graph.NodeID, d int32, rng *xrand.RNG) graph.NodeID {
	if d < 0 || int(d) > m.d {
		panic("gen: hypercube sphere distance out of range")
	}
	// Flip a uniformly random d-subset of the bit positions: partial
	// Fisher-Yates over the (at most 31) positions, allocation-free.
	var posArr [31]int8
	for i := 0; i < m.d; i++ {
		posArr[i] = int8(i)
	}
	var mask uint32
	for i := 0; i < int(d); i++ {
		j := i + rng.Intn(m.d-i)
		posArr[i], posArr[j] = posArr[j], posArr[i]
		mask |= 1 << uint(posArr[i])
	}
	return u ^ graph.NodeID(mask)
}

func absi32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
