package gen

import (
	"fmt"
	"sort"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// Interval is a closed interval [Lo, Hi] on the real line.
type Interval struct {
	Lo, Hi float64
}

// Overlaps reports whether the two closed intervals intersect.
func (iv Interval) Overlaps(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// IntervalModel is the geometric representation of an interval graph:
// Model[v] is the interval of node v.  The model is what the decomposition
// package uses to build a clique path of pathlength 1.
type IntervalModel []Interval

// IntervalGraph builds the intersection graph of the given intervals.
func IntervalGraph(model IntervalModel) *graph.Graph {
	n := len(model)
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("interval-%d", n))
	// Sweep by left endpoint: maintain the set of intervals whose Hi has not
	// yet passed; this keeps the construction near-linear in the output size.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return model[order[a]].Lo < model[order[b]].Lo })
	active := make([]int, 0, n)
	for _, v := range order {
		iv := model[v]
		keep := active[:0]
		for _, u := range active {
			if model[u].Hi >= iv.Lo {
				keep = append(keep, u)
				b.AddEdge(int32(u), int32(v))
			}
		}
		active = append(keep, v)
	}
	return b.Build()
}

// RandomIntervalGraph generates a connected random interval graph on n
// nodes together with its interval model.  Interval left endpoints are
// uniform in [0, n) and lengths are uniform in (0, meanLen*2); afterwards the
// intervals are stitched left-to-right so the union is a single overlapping
// chain, which guarantees connectivity without changing the graph class.
func RandomIntervalGraph(n int, meanLen float64, rng *xrand.RNG) (*graph.Graph, IntervalModel) {
	requirePositive(n, "RandomIntervalGraph")
	if meanLen <= 0 {
		panic("gen: RandomIntervalGraph requires meanLen > 0")
	}
	model := make(IntervalModel, n)
	for i := range model {
		lo := rng.Float64() * float64(n)
		length := rng.Float64() * 2 * meanLen
		model[i] = Interval{Lo: lo, Hi: lo + length}
	}
	// Stitch: scan by Lo; if the next interval starts after everything seen so
	// far ends, extend the interval with the current maximum Hi to bridge.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return model[order[a]].Lo < model[order[b]].Lo })
	maxHiIdx := order[0]
	for _, v := range order[1:] {
		if model[v].Lo > model[maxHiIdx].Hi {
			model[maxHiIdx].Hi = model[v].Lo
		}
		if model[v].Hi > model[maxHiIdx].Hi {
			maxHiIdx = v
		}
	}
	g := IntervalGraph(model).WithName(fmt.Sprintf("rinterval-%d", n))
	return g, model
}

// UnitIntervalPath returns the "thick path" unit interval graph: n nodes
// whose intervals have unit length and are spaced so that each node overlaps
// roughly `overlap` neighbours on each side.  With overlap=1 the graph is a
// path.  The interval model is returned for decomposition.
func UnitIntervalPath(n, overlap int) (*graph.Graph, IntervalModel) {
	requirePositive(n, "UnitIntervalPath")
	if overlap < 1 {
		panic("gen: UnitIntervalPath requires overlap >= 1")
	}
	model := make(IntervalModel, n)
	step := 1.0 / float64(overlap)
	for i := range model {
		lo := float64(i) * step
		model[i] = Interval{Lo: lo, Hi: lo + 1}
	}
	g := IntervalGraph(model).WithName(fmt.Sprintf("unitinterval-%d-%d", n, overlap))
	return g, model
}

// PermutationGraph builds the permutation graph of perm: nodes i < j are
// adjacent iff perm inverts them (perm[i] > perm[j]).  Permutation graphs
// are AT-free; they appear in Corollary 1 of the paper.
func PermutationGraph(perm []int) *graph.Graph {
	n := len(perm)
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("permutation-%d", n))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if perm[i] > perm[j] {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.Build()
}

// RandomConnectedPermutationGraph draws random permutations until the
// resulting permutation graph is connected (which happens quickly for
// moderately shuffled permutations) and returns it with the permutation.
// To bound the work, after maxTries failures it falls back to a permutation
// built from a single long displaced cycle, whose graph is connected.
func RandomConnectedPermutationGraph(n int, rng *xrand.RNG) (*graph.Graph, []int) {
	requirePositive(n, "RandomConnectedPermutationGraph")
	const maxTries = 50
	for try := 0; try < maxTries; try++ {
		perm := rng.Perm(n)
		g := PermutationGraph(perm)
		if g.IsConnected() {
			return g, perm
		}
	}
	// Fallback: reverse permutation gives the complete graph; shift-by-half
	// keeps it connected but sparse-ish.  Use reversal for guaranteed
	// connectivity (n>=2).
	perm := make([]int, n)
	for i := range perm {
		perm[i] = n - 1 - i
	}
	return PermutationGraph(perm), perm
}
