package gen

import (
	"fmt"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// RandomTree returns a uniformly random labelled tree on n nodes, generated
// by decoding a random Prüfer sequence.  For n <= 2 the unique tree is
// returned.
func RandomTree(n int, rng *xrand.RNG) *graph.Graph {
	requirePositive(n, "RandomTree")
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("rtree-%d", n))
	if n == 1 {
		return b.Build()
	}
	if n == 2 {
		return b.AddEdge(0, 1).Build()
	}
	seq := make([]int, n-2)
	for i := range seq {
		seq[i] = rng.Intn(n)
	}
	degree := make([]int, n)
	for i := range degree {
		degree[i] = 1
	}
	for _, v := range seq {
		degree[v]++
	}
	// Standard Prüfer decoding with a pointer scan: no heap needed because we
	// always pick the smallest leaf.
	ptr := 0
	for degree[ptr] != 1 {
		ptr++
	}
	leaf := ptr
	for _, v := range seq {
		b.AddEdge(int32(leaf), int32(v))
		degree[v]--
		if degree[v] == 1 && v < ptr {
			leaf = v
		} else {
			ptr++
			for degree[ptr] != 1 {
				ptr++
			}
			leaf = ptr
		}
	}
	// Join the last two leaves: leaf and n-1.
	b.AddEdge(int32(leaf), int32(n-1))
	return b.Build()
}

// RandomAttachmentTree returns a random recursive tree: node v (v >= 1)
// attaches to a uniformly random earlier node.  Such trees have expected
// depth O(log n), so they are good polylog-navigability test cases.
func RandomAttachmentTree(n int, rng *xrand.RNG) *graph.Graph {
	requirePositive(n, "RandomAttachmentTree")
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("ratree-%d", n))
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v), int32(rng.Intn(v)))
	}
	return b.Build()
}

// GNP returns an Erdős–Rényi graph G(n,p).  The result may be disconnected;
// use ConnectedGNP when connectivity is required.
func GNP(n int, p float64, rng *xrand.RNG) *graph.Graph {
	requirePositive(n, "GNP")
	if p < 0 || p > 1 {
		panic("gen: GNP requires p in [0,1]")
	}
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("gnp-%d-%g", n, p))
	if p == 0 {
		return b.Build()
	}
	if p == 1 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				b.AddEdge(int32(i), int32(j))
			}
		}
		return b.Build()
	}
	// Batagelj–Brandes geometric skipping over the (n choose 2) potential
	// edges keeps the cost proportional to the number of edges generated.
	v, w := 1, -1
	for v < n {
		w += 1 + rng.Geometric(p)
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(int32(v), int32(w))
		}
	}
	return b.Build()
}

// ConnectedGNP returns G(n,p) made connected by chaining the components with
// random bridge edges.  The bridges slightly bias the model but preserve the
// sparse, locally unstructured character needed by the experiments.
func ConnectedGNP(n int, p float64, rng *xrand.RNG) *graph.Graph {
	g := GNP(n, p, rng)
	comps := g.Components()
	if len(comps) == 1 {
		return g.WithName(fmt.Sprintf("cgnp-%d-%g", n, p))
	}
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("cgnp-%d-%g", n, p))
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for i := 1; i < len(comps); i++ {
		u := comps[i-1][rng.Intn(len(comps[i-1]))]
		v := comps[i][rng.Intn(len(comps[i]))]
		b.AddEdge(u, v)
	}
	return b.Build()
}

// RandomRegular returns a random d-regular simple graph on n nodes using the
// configuration model with restarts.  It returns an error if n*d is odd,
// d >= n, or no simple pairing is found within a generous retry budget.
func RandomRegular(n, d int, rng *xrand.RNG) (*graph.Graph, error) {
	if n < 1 || d < 0 {
		return nil, fmt.Errorf("gen: RandomRegular requires n >= 1, d >= 0")
	}
	if d >= n {
		return nil, fmt.Errorf("gen: RandomRegular requires d < n (got d=%d, n=%d)", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("gen: RandomRegular requires n*d even (got n=%d, d=%d)", n, d)
	}
	if d == 0 {
		return graph.NewBuilder(n).SetName(fmt.Sprintf("regular-%d-%d", n, d)).Build(), nil
	}
	// The pairing is simple with probability ~e^{-λ-λ²}, λ = (d-1)/2,
	// independently of n — about 2.4% per attempt at d=4, 0.25% at d=5 —
	// so the expected attempt count is a (d-dependent) constant and the
	// budget only bounds the astronomically unlikely tail: at d=4 the
	// failure probability under 5000 attempts is e^{-120}.  (200 attempts,
	// the previous budget, failed a real E12 build at n=16384: that is a
	// 0.8% event per graph, far too often for a deterministic suite.)
	// Failed attempts are cheap — the scan breaks at the first collision.
	const maxAttempts = 5000
	stubs := make([]int32, 0, n*d)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		stubs = stubs[:0]
		for v := 0; v < n; v++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, int32(v))
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		seen := make(map[[2]int32]bool, len(stubs)/2)
		b := graph.NewBuilder(n).SetName(fmt.Sprintf("regular-%d-%d", n, d))
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			key := [2]int32{min32(u, v), max32(u, v)}
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			b.AddEdge(u, v)
		}
		if ok {
			return b.Build(), nil
		}
	}
	return nil, fmt.Errorf("gen: RandomRegular(%d,%d) failed to find a simple pairing", n, d)
}

// WattsStrogatz returns a Watts–Strogatz small-world substrate: a ring where
// every node connects to its k nearest neighbours on each side, with each
// edge rewired to a random endpoint with probability beta.  Rewiring keeps
// the graph connected by never removing ring edges to immediate neighbours.
func WattsStrogatz(n, k int, beta float64, rng *xrand.RNG) *graph.Graph {
	if n < 3 || k < 1 || 2*k >= n {
		panic("gen: WattsStrogatz requires n >= 3 and 1 <= k < n/2")
	}
	if beta < 0 || beta > 1 {
		panic("gen: WattsStrogatz requires beta in [0,1]")
	}
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("ws-%d-%d-%g", n, k, beta))
	for u := 0; u < n; u++ {
		for off := 1; off <= k; off++ {
			v := (u + off) % n
			// Keep the off==1 ring intact so connectivity is guaranteed.
			if off > 1 && rng.Float64() < beta {
				w := rng.Intn(n)
				for w == u || w == v {
					w = rng.Intn(n)
				}
				v = w
			}
			if u != v {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build()
}

// LongPathWithBushes returns a path of spine nodes where every node carries
// a random tree of bushSize nodes.  Its pathshape is governed by the bushes
// while its diameter is governed by the spine, which makes it useful for
// contrasting the Theorem 2 and Theorem 4 schemes.
func LongPathWithBushes(spine, bushSize int, rng *xrand.RNG) *graph.Graph {
	requirePositive(spine, "LongPathWithBushes spine")
	if bushSize < 0 {
		panic("gen: LongPathWithBushes requires bushSize >= 0")
	}
	n := spine * (1 + bushSize)
	b := graph.NewBuilder(n).SetName(fmt.Sprintf("bushpath-%dx%d", spine, bushSize))
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	next := spine
	for i := 0; i < spine; i++ {
		// Random recursive bush rooted at spine node i.
		local := make([]int32, 0, bushSize+1)
		local = append(local, int32(i))
		for s := 0; s < bushSize; s++ {
			parent := local[rng.Intn(len(local))]
			b.AddEdge(parent, int32(next))
			local = append(local, int32(next))
			next++
		}
	}
	return b.Build()
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
