package gen

import (
	"testing"
	"testing/quick"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

func TestPath(t *testing.T) {
	g := Path(10)
	if g.N() != 10 || g.M() != 9 {
		t.Fatalf("path-10: n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("path not connected")
	}
	if g.Diameter() != 9 {
		t.Fatalf("path-10 diameter %d", g.Diameter())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("path max degree %d", g.MaxDegree())
	}
}

func TestPathSingleton(t *testing.T) {
	g := Path(1)
	if g.N() != 1 || g.M() != 0 {
		t.Fatal("Path(1) wrong")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(12)
	if g.N() != 12 || g.M() != 12 {
		t.Fatalf("cycle-12: n=%d m=%d", g.N(), g.M())
	}
	for u := int32(0); u < 12; u++ {
		if g.Degree(u) != 2 {
			t.Fatalf("cycle node %d degree %d", u, g.Degree(u))
		}
	}
	if g.Diameter() != 6 {
		t.Fatalf("cycle-12 diameter %d", g.Diameter())
	}
}

func TestCyclePanicsSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Cycle(2)
}

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("K6 has %d edges", g.M())
	}
	if g.Diameter() != 1 {
		t.Fatalf("K6 diameter %d", g.Diameter())
	}
}

func TestStar(t *testing.T) {
	g := Star(7)
	if g.M() != 6 || g.Degree(0) != 6 {
		t.Fatalf("star-7: m=%d deg0=%d", g.M(), g.Degree(0))
	}
	if g.Diameter() != 2 {
		t.Fatalf("star diameter %d", g.Diameter())
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(5, 7)
	if g.N() != 35 {
		t.Fatalf("grid n=%d", g.N())
	}
	wantM := 5*6 + 7*4 // horizontal + vertical edges
	if g.M() != wantM {
		t.Fatalf("grid m=%d, want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Fatal("grid not connected")
	}
	if g.Diameter() != 4+6 {
		t.Fatalf("grid diameter %d, want 10", g.Diameter())
	}
}

func TestTorus2D(t *testing.T) {
	g := Torus2D(4, 5)
	if g.N() != 20 || g.M() != 40 {
		t.Fatalf("torus n=%d m=%d", g.N(), g.M())
	}
	for u := int32(0); u < 20; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("torus node %d degree %d", u, g.Degree(u))
		}
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(3, 4, 5)
	if g.N() != 60 {
		t.Fatalf("grid3d n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("grid3d not connected")
	}
	if g.Diameter() != 2+3+4 {
		t.Fatalf("grid3d diameter %d", g.Diameter())
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(5)
	if g.N() != 32 || g.M() != 80 {
		t.Fatalf("Q5 n=%d m=%d", g.N(), g.M())
	}
	if g.Diameter() != 5 {
		t.Fatalf("Q5 diameter %d", g.Diameter())
	}
}

func TestHypercubeZero(t *testing.T) {
	g := Hypercube(0)
	if g.N() != 1 || g.M() != 0 {
		t.Fatal("Q0 should be a single node")
	}
}

func TestBalancedTree(t *testing.T) {
	g := BalancedTree(3, 3) // 1+3+9+27 = 40 nodes
	if g.N() != 40 {
		t.Fatalf("tree n=%d", g.N())
	}
	if g.M() != g.N()-1 {
		t.Fatalf("tree m=%d", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("tree disconnected")
	}
	if g.Diameter() != 6 {
		t.Fatalf("tree diameter %d", g.Diameter())
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(15)
	if g.M() != 14 || !g.IsConnected() {
		t.Fatal("binary tree malformed")
	}
	if g.Diameter() != 6 {
		t.Fatalf("binary tree diameter %d", g.Diameter())
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 3)
	if g.N() != 40 || g.M() != 39 || !g.IsConnected() {
		t.Fatalf("caterpillar n=%d m=%d", g.N(), g.M())
	}
}

func TestSpider(t *testing.T) {
	g := Spider(5, 4)
	if g.N() != 21 || g.M() != 20 {
		t.Fatalf("spider n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 5 {
		t.Fatalf("spider centre degree %d", g.Degree(0))
	}
	if g.Diameter() != 8 {
		t.Fatalf("spider diameter %d", g.Diameter())
	}
}

func TestComb(t *testing.T) {
	g := Comb(8, 4)
	if g.N() != 40 || g.M() != 39 || !g.IsConnected() {
		t.Fatalf("comb n=%d m=%d", g.N(), g.M())
	}
}

func TestLollipopAndBarbell(t *testing.T) {
	l := Lollipop(5, 10)
	if l.N() != 15 || !l.IsConnected() {
		t.Fatal("lollipop malformed")
	}
	if l.M() != 10+10 {
		t.Fatalf("lollipop m=%d", l.M())
	}
	b := Barbell(4, 3)
	if b.N() != 11 || !b.IsConnected() {
		t.Fatal("barbell malformed")
	}
	if b.M() != 6+6+4 {
		t.Fatalf("barbell m=%d", b.M())
	}
}

func isTree(g *graph.Graph) bool {
	return g.M() == g.N()-1 && g.IsConnected()
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := xrand.New(1)
	check := func(raw uint16) bool {
		n := 1 + int(raw%200)
		return isTree(RandomTree(n, rng))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeDeterministicForSeed(t *testing.T) {
	a := RandomTree(50, xrand.New(99))
	b := RandomTree(50, xrand.New(99))
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("different edge counts")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed produced different trees")
		}
	}
}

func TestRandomAttachmentTreeIsTree(t *testing.T) {
	rng := xrand.New(2)
	for _, n := range []int{1, 2, 10, 100, 1000} {
		if !isTree(RandomAttachmentTree(n, rng)) {
			t.Fatalf("attachment tree n=%d not a tree", n)
		}
	}
}

func TestGNPEdgeCount(t *testing.T) {
	rng := xrand.New(3)
	n := 400
	p := 0.02
	g := GNP(n, p, rng)
	expected := p * float64(n) * float64(n-1) / 2
	if float64(g.M()) < 0.7*expected || float64(g.M()) > 1.3*expected {
		t.Fatalf("GNP edge count %d far from expectation %v", g.M(), expected)
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := xrand.New(4)
	if g := GNP(50, 0, rng); g.M() != 0 {
		t.Fatal("GNP(p=0) has edges")
	}
	if g := GNP(20, 1, rng); g.M() != 190 {
		t.Fatalf("GNP(p=1) m=%d", g.M())
	}
}

func TestConnectedGNPIsConnected(t *testing.T) {
	rng := xrand.New(5)
	for _, n := range []int{10, 100, 500} {
		g := ConnectedGNP(n, 1.2/float64(n), rng)
		if !g.IsConnected() {
			t.Fatalf("ConnectedGNP(%d) disconnected", n)
		}
		if g.N() != n {
			t.Fatalf("ConnectedGNP changed n")
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := xrand.New(6)
	g, err := RandomRegular(100, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	for u := int32(0); u < int32(g.N()); u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("node %d degree %d", u, g.Degree(u))
		}
	}
}

func TestRandomRegularRejectsBadArgs(t *testing.T) {
	rng := xrand.New(7)
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Fatal("odd n*d accepted")
	}
	if _, err := RandomRegular(4, 4, rng); err == nil {
		t.Fatal("d >= n accepted")
	}
	g, err := RandomRegular(10, 0, rng)
	if err != nil || g.M() != 0 {
		t.Fatal("0-regular should be empty graph")
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := xrand.New(8)
	g := WattsStrogatz(200, 3, 0.1, rng)
	if g.N() != 200 {
		t.Fatalf("WS n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Fatal("WS disconnected")
	}
	// With beta=0 the graph is the deterministic ring lattice.
	g0 := WattsStrogatz(50, 2, 0, rng)
	if g0.M() != 100 {
		t.Fatalf("WS beta=0 m=%d, want 100", g0.M())
	}
}

func TestLongPathWithBushes(t *testing.T) {
	rng := xrand.New(9)
	g := LongPathWithBushes(20, 5, rng)
	if g.N() != 120 || !g.IsConnected() {
		t.Fatalf("bushpath n=%d connected=%v", g.N(), g.IsConnected())
	}
	if g.M() != g.N()-1 {
		t.Fatalf("bushpath should be a tree, m=%d", g.M())
	}
}

func TestIntervalGraphMatchesBruteForce(t *testing.T) {
	rng := xrand.New(10)
	check := func(raw uint16) bool {
		n := 2 + int(raw%40)
		model := make(IntervalModel, n)
		for i := range model {
			lo := rng.Float64() * 10
			model[i] = Interval{Lo: lo, Hi: lo + rng.Float64()*3}
		}
		g := IntervalGraph(model)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := model[i].Overlaps(model[j])
				if g.HasEdge(int32(i), int32(j)) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomIntervalGraphConnected(t *testing.T) {
	rng := xrand.New(11)
	for _, n := range []int{5, 50, 500} {
		g, model := RandomIntervalGraph(n, 2.0, rng)
		if !g.IsConnected() {
			t.Fatalf("random interval graph n=%d disconnected", n)
		}
		if len(model) != n {
			t.Fatalf("model length %d", len(model))
		}
		// The returned graph must still be the intersection graph of the model.
		g2 := IntervalGraph(model)
		if g2.M() != g.M() {
			t.Fatalf("graph/model mismatch: %d vs %d edges", g.M(), g2.M())
		}
	}
}

func TestUnitIntervalPath(t *testing.T) {
	g, model := UnitIntervalPath(30, 1)
	if len(model) != 30 {
		t.Fatal("model size")
	}
	if !g.IsConnected() {
		t.Fatal("unit interval path disconnected")
	}
	// overlap=1 gives each interior node exactly 2 neighbours.
	if g.MaxDegree() > 2 {
		t.Fatalf("overlap=1 should be a path, max degree %d", g.MaxDegree())
	}
	g3, _ := UnitIntervalPath(30, 3)
	if g3.MaxDegree() <= 2 {
		t.Fatal("overlap=3 should be thicker than a path")
	}
	if !g3.IsConnected() {
		t.Fatal("thick unit interval graph disconnected")
	}
}

func TestPermutationGraphIdentityAndReverse(t *testing.T) {
	idPerm := []int{0, 1, 2, 3, 4}
	if g := PermutationGraph(idPerm); g.M() != 0 {
		t.Fatal("identity permutation graph should have no edges")
	}
	rev := []int{4, 3, 2, 1, 0}
	if g := PermutationGraph(rev); g.M() != 10 {
		t.Fatalf("reverse permutation graph should be complete, m=%d", g.M())
	}
}

func TestRandomConnectedPermutationGraph(t *testing.T) {
	rng := xrand.New(12)
	g, perm := RandomConnectedPermutationGraph(40, rng)
	if !g.IsConnected() {
		t.Fatal("permutation graph disconnected")
	}
	if len(perm) != 40 {
		t.Fatal("permutation length")
	}
	// Edges must agree with the inversion rule.
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			if g.HasEdge(int32(i), int32(j)) != (perm[i] > perm[j]) {
				t.Fatal("edge does not match inversion")
			}
		}
	}
}

func TestGeneratorsProduceExpectedNames(t *testing.T) {
	if Path(4).Name() == "" || Cycle(4).Name() == "" || Grid2D(2, 2).Name() == "" {
		t.Fatal("generators should name their graphs")
	}
}
