// Package serve is the query front-end of the routing service: it takes a
// loaded snapshot (see internal/snapshot) and exposes its distance oracle
// and frozen augmented graphs over HTTP/JSON, turning the repository's
// in-process experiment artefacts into a standing service — build once,
// snapshot, serve many.
//
// Endpoints (all JSON):
//
//	GET  /v1/healthz            liveness plus snapshot identity
//	GET  /v1/dist?u=&v=         one exact distance
//	POST /v1/dist               {"pairs":[[u,v],...]} batched distances
//	GET  /v1/route?s=&t=        one greedy routing trial (scheme=, draw=,
//	                            trace=1 optional)
//	POST /v1/route              {"pairs":[[s,t],...],...} batched trials
//	GET  /v1/stats              counters, snapshot meta, peak RSS
//
// Queries dispatch onto a fixed pool of workers, each owning a
// route.Scratch and RNG (the sim.Engine worker discipline), so the hot
// path is lock-free and allocation-free per routing hop.  Distances come
// from the snapshot's O(1) tier — the analytic metric or the packed 2-hop
// labels — and fall back to a bounded BFS field cache when the snapshot
// packs neither.  Routing always uses the frozen contact tables, so every
// /v1/route answer is fully deterministic and reproducible from the
// snapshot file alone.
package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/snapshot"
)

// Options configures a Server.
type Options struct {
	// Workers is the query pool size; 0 means one per CPU.
	Workers int
	// RequestTimeout bounds each request end to end (default 2s); the
	// handler chain is wrapped in http.TimeoutHandler.
	RequestTimeout time.Duration
	// MaxBatch caps the pairs accepted by the batched endpoints
	// (default 8192): one batch is one pool task, so the cap bounds how
	// long a single request can monopolise a worker.
	MaxBatch int
	// FieldCacheSize is the per-target BFS field cache capacity used only
	// when the snapshot packs no O(1) distance tier (default 64 fields).
	FieldCacheSize int
	// Seed drives the worker RNG split (default 1).  It only matters for
	// hypothetical non-frozen augmentations; all current query answers are
	// seed-independent.
	Seed uint64
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = defaultWorkers()
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8192
	}
	if o.FieldCacheSize <= 0 {
		o.FieldCacheSize = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Server answers distance and routing queries for one snapshot.
type Server struct {
	snap   *snapshot.Snapshot
	g      *graph.Graph
	src    dist.Source      // O(1) tier; nil → field-cache fallback
	fields *dist.FieldCache // lazy BFS fallback, always non-nil
	// instances are the frozen augment.Static tables, validated once at
	// construction and shared read-only by every worker.
	instances map[string][]augment.Instance
	pool      *pool
	opts      Options
	start     time.Time
	mux       *http.ServeMux

	requests     atomic.Int64
	distQueries  atomic.Int64
	routeQueries atomic.Int64
	errors       atomic.Int64
}

// New builds a Server over a loaded snapshot.  The snapshot must contain a
// graph (snapshot.ReadBytes guarantees it); everything else is optional
// and degrades gracefully: no O(1) tier → BFS field fallback, no frozen
// schemes → /v1/route returns an explanatory error.
func New(snap *snapshot.Snapshot, opts Options) (*Server, error) {
	if snap == nil || snap.Graph == nil {
		return nil, fmt.Errorf("serve: snapshot has no graph")
	}
	opts.fill()
	instances := make(map[string][]augment.Instance, len(snap.Schemes))
	for i := range snap.Schemes {
		st := &snap.Schemes[i]
		for k := range st.Draws {
			inst, err := st.Instance(k)
			if err != nil {
				return nil, fmt.Errorf("serve: scheme %s draw %d: %w", st.Name, k, err)
			}
			instances[st.Name] = append(instances[st.Name], inst)
		}
	}
	s := &Server{
		snap:      snap,
		g:         snap.Graph,
		src:       snap.Source(),
		fields:    dist.NewFieldCache(snap.Graph, opts.FieldCacheSize),
		instances: instances,
		pool:      newPool(snap.Graph.N(), opts.Workers, opts.Seed),
		opts:      opts,
		start:     time.Now(),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/dist", s.handleDist)
	s.mux.HandleFunc("/v1/route", s.handleRoute)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s, nil
}

// Handler returns the full middleware chain: counting, then the mux, all
// under the request timeout.
func (s *Server) Handler() http.Handler {
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		s.mux.ServeHTTP(w, r)
	})
	return http.TimeoutHandler(counted, s.opts.RequestTimeout,
		`{"error":"request timed out"}`)
}

// Close stops the worker pool.  In-flight pool tasks finish first.
func (s *Server) Close() { s.pool.Close() }

// oracle names the distance tier answering queries, for /v1/stats and logs.
func (s *Server) oracle() string {
	switch {
	case s.snap.Metric != nil:
		return "analytic"
	case s.snap.TwoHop != nil:
		return "twohop"
	default:
		return "field-cache"
	}
}

// distance answers one exact distance query through the fastest available
// tier.
func (s *Server) distance(u, v graph.NodeID) int32 {
	if s.src != nil {
		return s.src.Dist(u, v)
	}
	return s.fields.Field(v)[u]
}

// targetSource returns a dist.Source rooted at t for routing.
func (s *Server) targetSource(t graph.NodeID) dist.Source {
	if s.src != nil {
		return s.src
	}
	return dist.NewField(s.fields.Field(t), t)
}
