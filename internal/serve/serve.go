// Package serve is the query front-end of the routing service: it takes a
// loaded snapshot (see internal/snapshot) and exposes its distance oracle
// and frozen augmented graphs over HTTP/JSON, turning the repository's
// in-process experiment artefacts into a standing service — build once,
// snapshot, serve many.
//
// Endpoints (all JSON):
//
//	GET  /v1/livez              liveness: 200 while the process serves
//	GET  /v1/readyz             readiness: 503 while draining
//	GET  /v1/healthz            readiness plus snapshot identity
//	GET  /v1/dist?u=&v=         one distance
//	POST /v1/dist               {"pairs":[[u,v],...]} batched distances
//	GET  /v1/route?s=&t=        one greedy routing trial (scheme=, draw=,
//	                            trace=1 optional)
//	POST /v1/route              {"pairs":[[s,t],...],...} batched trials
//	GET  /v1/stats              counters, snapshot meta, peak RSS
//
// Queries dispatch onto a fixed pool of workers, each owning a
// route.Scratch and RNG (the sim.Engine worker discipline), so the hot
// path is lock-free and allocation-free per routing hop.  Distances come
// from the snapshot's O(1) tier — the analytic metric or the packed 2-hop
// labels — and fall back down the degradation ladder (BFS field cache,
// then approximate landmark bounds) when tiers are missing, quarantined or
// unaffordable; see degrade.go.  Routing uses the frozen contact tables,
// so every healthy /v1/route answer is fully deterministic and
// reproducible from the snapshot file alone; degraded answers carry
// "approx": true.
//
// The serving stack is built to stay up under faults: the task queue is
// bounded and overflows shed with 429 + Retry-After rather than queueing
// without bound, worker panics are recovered and counted, and a shard
// whose tasks keep dying is circuit-broken — quarantined, locally
// repaired, probed, and restored (pool.go, breaker.go).  The fault layer
// (internal/fault) injects the corresponding failures deterministically;
// a nil injector costs nothing.
package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/fault"
	"navaug/internal/graph"
	"navaug/internal/snapshot"
	"navaug/internal/xrand"
)

// Options configures a Server.
type Options struct {
	// Workers is the query pool size; 0 means one per CPU.
	Workers int
	// QueueDepth bounds the worker task queue; submissions beyond it are
	// shed with 429.  Default max(16, 4×Workers).
	QueueDepth int
	// RequestTimeout bounds each request end to end (default 2s); the
	// handler chain is wrapped in http.TimeoutHandler.
	RequestTimeout time.Duration
	// MaxBatch caps the pairs accepted by the batched endpoints
	// (default 8192): one batch is one pool task, so the cap bounds how
	// long a single request can monopolise a worker.
	MaxBatch int
	// FieldCacheSize is the per-target BFS field cache capacity used only
	// when the snapshot packs no O(1) distance tier (default 64 fields).
	FieldCacheSize int
	// Landmarks is the landmark count of the approximate degraded tier,
	// built once at startup (default 16; negative disables the tier, and
	// with it the approximate rung of the ladder).
	Landmarks int
	// BreakerThreshold is the consecutive-panic count that trips a shard's
	// circuit breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped shard stays quarantined before
	// a half-open probe (default 250ms).
	BreakerCooldown time.Duration
	// Faults, when non-nil, threads a deterministic fault-injection
	// schedule through the stack; nil (the default) injects nothing and
	// costs nothing on the hot path.
	Faults *fault.Injector
	// Seed drives the worker RNG split (default 1).  Frozen draws make all
	// healthy answers seed-independent; the seed shows only in the fresh
	// contact rows a quarantine-repair samples.
	Seed uint64
}

func (o *Options) fill() {
	if o.Workers <= 0 {
		o.Workers = defaultWorkers()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
		if o.QueueDepth < 16 {
			o.QueueDepth = 16
		}
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 2 * time.Second
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8192
	}
	if o.FieldCacheSize <= 0 {
		o.FieldCacheSize = 64
	}
	if o.Landmarks == 0 {
		o.Landmarks = 16
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Server answers distance and routing queries for one snapshot.
type Server struct {
	snap   *snapshot.Snapshot
	g      *graph.Graph
	src    dist.Source      // O(1) tier; nil → ladder below it
	fields *dist.FieldCache // BFS field tier, always non-nil
	// landmark is the approximate bottom tier, nil when disabled.
	landmark *dist.LandmarkOracle
	// live holds the frozen augment tables with their repair overlays,
	// validated once at construction and shared by every worker.
	live  map[string][]*liveInstance
	pool  *pool
	opts  Options
	start time.Time
	mux   *http.ServeMux

	draining atomic.Bool

	requests     atomic.Int64
	distQueries  atomic.Int64
	routeQueries atomic.Int64
	errors       atomic.Int64
	shed         atomic.Int64
	panics       atomic.Int64
	repairs      atomic.Int64
	// repairFailures counts repair/restore table rebuilds that failed
	// validation.  By construction it stays zero — uniform draws over
	// [0,n) and frozen original rows always validate — so any non-zero
	// value in /v1/stats is a loud bug report, not a silent no-op (the
	// shard would otherwise be marked clean with its rows never swapped).
	repairFailures atomic.Int64
	approxAnswers  atomic.Int64
	timeouts       atomic.Int64
}

// New builds a Server over a loaded snapshot.  The snapshot must contain a
// graph (snapshot.ReadBytes guarantees it); everything else is optional
// and degrades gracefully: no O(1) tier → the ladder's lower rungs, no
// frozen schemes → /v1/route returns an explanatory error.  Quarantined
// sections (from snapshot.ReadBytesTolerant) simply leave their tier
// absent — the server starts degraded instead of not at all.
func New(snap *snapshot.Snapshot, opts Options) (*Server, error) {
	if snap == nil || snap.Graph == nil {
		return nil, fmt.Errorf("serve: snapshot has no graph")
	}
	opts.fill()
	live := make(map[string][]*liveInstance, len(snap.Schemes))
	for i := range snap.Schemes {
		st := &snap.Schemes[i]
		for k := range st.Draws {
			inst, err := st.Instance(k)
			if err != nil {
				return nil, fmt.Errorf("serve: scheme %s draw %d: %w", st.Name, k, err)
			}
			static, ok := inst.(*augment.Static)
			if !ok {
				return nil, fmt.Errorf("serve: scheme %s draw %d is not a frozen table", st.Name, k)
			}
			live[st.Name] = append(live[st.Name], newLiveInstance(st.Name, k, static))
		}
	}
	s := &Server{
		snap:   snap,
		g:      snap.Graph,
		src:    snap.Source(),
		fields: dist.NewFieldCache(snap.Graph, opts.FieldCacheSize),
		live:   live,
		opts:   opts,
		start:  time.Now(),
	}
	if opts.Landmarks > 0 && snap.Graph.N() > 0 {
		// A derived seed keeps the landmark choice independent of the
		// worker RNG streams split from opts.Seed in newPool.
		s.landmark = dist.NewLandmarkOracle(snap.Graph, opts.Landmarks, xrand.New(opts.Seed).Split())
	}
	s.pool = newPool(poolConfig{
		n:                snap.Graph.N(),
		workers:          opts.Workers,
		queue:            opts.QueueDepth,
		seed:             opts.Seed,
		inj:              opts.Faults,
		breakerThreshold: opts.BreakerThreshold,
		breakerCooldown:  opts.BreakerCooldown,
		onPanic:          func(*Shard) { s.panics.Add(1) },
		onTrip:           s.repairShard,
		onRestore:        s.restoreShard,
	})
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/livez", s.handleLivez)
	s.mux.HandleFunc("/v1/readyz", s.handleHealthz)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/dist", s.handleDist)
	s.mux.HandleFunc("/v1/route", s.handleRoute)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s, nil
}

// Handler returns the full middleware chain: counting and injected
// request-level latency, then the mux, all under the request timeout.
func (s *Server) Handler() http.Handler {
	counted := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		if d := s.opts.Faults.RequestDelay(); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				s.timeouts.Add(1)
				return // TimeoutHandler already answered 503
			}
		}
		s.mux.ServeHTTP(w, r)
	})
	return http.TimeoutHandler(counted, s.opts.RequestTimeout,
		`{"error":"request timed out"}`)
}

// BeginDrain flips the server to draining: /v1/readyz (and /v1/healthz)
// answer 503 so load balancers stop routing here, while in-flight and
// already-accepted requests keep being served.  The caller then runs its
// http.Server.Shutdown, which waits for those in-flight requests.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the worker pool.  In-flight pool tasks finish first.
func (s *Server) Close() { s.pool.Close() }

// oracle names the snapshot's packed O(1) distance tier for /v1/stats and
// logs ("field-cache" when it packs none — or when the tier was
// quarantined at load).
func (s *Server) oracle() string {
	switch {
	case s.snap.Metric != nil:
		return "analytic"
	case s.snap.TwoHop != nil:
		if s.snap.TwoHop.Packed() {
			return "twohop-packed"
		}
		return "twohop"
	default:
		return "field-cache"
	}
}

// memPressure reports simulated memory pressure from the fault schedule.
func (s *Server) memPressure() bool { return s.opts.Faults.MemoryPressure() }

// tier resolves the ladder for the current instant.
func (s *Server) tier() (string, bool) {
	exact := ""
	if s.src != nil {
		exact = s.oracle()
	}
	return selectTier(exact, !s.memPressure(), s.landmark != nil)
}

// degradedNow reports whether answers may currently deviate from the
// healthy, snapshot-frozen ones: a section was quarantined at load, a
// shard repair is live, or the ladder is on its approximate rung.
func (s *Server) degradedNow() bool {
	if len(s.snap.Quarantined) > 0 || s.repairActive() {
		return true
	}
	_, approx := s.tier()
	return approx
}

// distance answers one distance query through the current tier; approx is
// true when the answer is a landmark upper bound rather than exact.
func (s *Server) distance(u, v graph.NodeID) (int32, bool) {
	if s.src != nil {
		return s.src.Dist(u, v), false
	}
	if _, approx := s.tier(); approx {
		return s.landmark.Dist(u, v), true
	}
	return s.fields.Field(v)[u], false
}

// targetSource returns a dist.Source rooted at t for routing, with the
// same approx contract as distance.
func (s *Server) targetSource(t graph.NodeID) (dist.Source, bool) {
	if s.src != nil {
		return s.src, false
	}
	if _, approx := s.tier(); approx {
		return s.landmark, true
	}
	return dist.NewField(s.fields.Field(t), t), false
}
