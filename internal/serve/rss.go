package serve

import (
	"os"
	"strconv"
	"strings"
)

// peakRSSBytes reports the process's high-water resident set size from
// /proc/self/status (VmHWM), the same source .github/peak-rss.sh uses, so
// serving benchmarks and CI record comparable numbers.  It returns 0 on
// platforms without procfs.
func peakRSSBytes() int64 {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}
