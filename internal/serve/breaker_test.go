package serve

import (
	"testing"
	"time"
)

// fakeClock drives the breaker without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	if !b.Allow() || b.Tripped() {
		t.Fatal("fresh breaker not closed")
	}
	if b.Fail() || b.Fail() {
		t.Fatal("tripped before threshold")
	}
	if !b.Fail() {
		t.Fatal("third consecutive failure did not trip")
	}
	if b.Allow() || !b.Tripped() {
		t.Fatal("open breaker admitted a task")
	}
	// Further failures while open change nothing.
	if b.Fail() {
		t.Fatal("failure while already open reported a fresh trip")
	}
}

func TestBreakerSuccessResetsFailStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Fail()
	b.Fail()
	if b.Success() {
		t.Fatal("success in closed state reported a restore")
	}
	// The streak restarted: two more failures still don't trip.
	if b.Fail() || b.Fail() {
		t.Fatal("streak not reset by success")
	}
	if !b.Fail() {
		t.Fatal("threshold not reached after reset streak")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	if !b.Fail() {
		t.Fatal("threshold 1 should trip on first failure")
	}
	if b.Allow() {
		t.Fatal("admitted during cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	// Probe success closes; restore fires exactly once.
	if !b.Success() {
		t.Fatal("half-open success did not close")
	}
	if b.Tripped() || b.Success() {
		t.Fatal("closed breaker still tripped or re-reporting restore")
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Fail()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	if !b.Fail() {
		t.Fatal("failed probe must count as a fresh trip (re-repair)")
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted before a second cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() || !b.Success() {
		t.Fatal("second probe did not recover")
	}
}
