package serve

// Graceful degradation: the answer ladder and the quarantine-repair
// overlay.
//
// The ladder orders the distance tiers by fidelity:
//
//	exact O(1) (analytic metric / 2-hop labels)
//	  → BFS field cache (exact, but costs an O(n) field per target)
//	    → landmark triangle bounds (approximate upper bounds, O(k)/query)
//
// A healthy server answers from the top tier its snapshot packs.  The
// server walks down — never by operator action, always automatically —
// when a tier is missing (section quarantined at load) or unaffordable
// (simulated memory pressure makes per-target BFS fields the wrong trade).
// Every answer produced below the exact tiers carries "approx": true, so a
// client can always tell a degraded answer from a healthy one.
//
// The repair overlay handles a different failure: a shard whose tasks keep
// panicking.  The pool quarantines the shard (see breaker.go) and the
// server re-samples the shard's slice of every frozen contact table
// locally — fresh uniform draws for just the nodes that shard owns, the
// paper's own augmentation act repeated at repair time — rather than
// crashing or serving the possibly-poisoned rows.  Answers routed over a
// repaired table are approximate (the draw is no longer the frozen one)
// and say so; when the breaker's probe succeeds the original rows are
// restored and answers are byte-identical to the pre-fault ones again.

import (
	"sync"
	"sync/atomic"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// selectTier is the pure ladder decision: exactTier is "" when the
// snapshot's O(1) tier is absent or quarantined, fieldsAffordable is false
// under memory pressure, haveLandmark reports the approximate tier was
// built.  The returned approx flag marks every answer served from the
// landmark tier.  Exactness outranks memory when there is no approximate
// tier to fall to: a server without landmarks keeps serving fields under
// pressure rather than refusing.
func selectTier(exactTier string, fieldsAffordable, haveLandmark bool) (tier string, approx bool) {
	switch {
	case exactTier != "":
		return exactTier, false
	case fieldsAffordable || !haveLandmark:
		return "field-cache", false
	default:
		return "landmark", true
	}
}

// liveInstance is one frozen contact table plus its copy-on-write repair
// overlay.  Readers (query workers) only ever touch cur — a single atomic
// pointer load on the hot path, no lock — while repair and restore swap in
// freshly built tables under mu.  cur == orig is the healthy state and
// doubles as the "answers are exact" test.
type liveInstance struct {
	scheme string
	draw   int
	orig   *augment.Static

	cur   atomic.Pointer[augment.Static]
	mu    sync.Mutex
	dirty map[int]bool // shard IDs whose node ranges are currently re-sampled
}

func newLiveInstance(scheme string, draw int, orig *augment.Static) *liveInstance {
	li := &liveInstance{scheme: scheme, draw: draw, orig: orig, dirty: make(map[int]bool)}
	li.cur.Store(orig)
	return li
}

// load returns the table to route over and whether it deviates from the
// frozen draw (some shard's rows are repaired).
func (li *liveInstance) load() (augment.Instance, bool) {
	cur := li.cur.Load()
	return cur, cur != li.orig
}

// repair re-samples the contact rows in [lo, hi) — the quarantined shard's
// slice of the node space — with fresh uniform draws, leaving every other
// row untouched.  The replacement table is a fresh allocation, so in-flight
// readers keep their consistent old view.  It reports whether the swap
// happened: a false return means the rebuilt table failed validation and
// the possibly-poisoned rows are still live, which the caller must surface
// (Server.repairFailures) rather than swallow.
func (li *liveInstance) repair(shardID, lo, hi int, rng *xrand.RNG) bool {
	li.mu.Lock()
	defer li.mu.Unlock()
	cur := li.cur.Load()
	table := append([]graph.NodeID(nil), cur.Contacts()...)
	n := len(table)
	for u := lo; u < hi && u < n; u++ {
		table[u] = graph.NodeID(rng.Intn(n))
	}
	st, err := augment.NewStatic(cur.Name(), table)
	if err != nil {
		// Impossible by construction: uniform draws over [0,n) always
		// validate.  Refuse to mark the shard clean.
		return false
	}
	li.dirty[shardID] = true
	li.cur.Store(st)
	return true
}

// restore copies the frozen rows [lo, hi) back.  When the last dirty shard
// restores, cur snaps back to the orig pointer itself, making recovery
// exact by construction — not merely value-equal but the same table.  A
// false return mirrors repair: the rebuild failed validation and the shard
// stays dirty.
func (li *liveInstance) restore(shardID, lo, hi int) bool {
	li.mu.Lock()
	defer li.mu.Unlock()
	if !li.dirty[shardID] {
		return true
	}
	delete(li.dirty, shardID)
	if len(li.dirty) == 0 {
		li.cur.Store(li.orig)
		return true
	}
	cur := li.cur.Load()
	table := append([]graph.NodeID(nil), cur.Contacts()...)
	n := len(table)
	for u := lo; u < hi && u < n; u++ {
		table[u] = li.orig.Contacts()[u]
	}
	st, err := augment.NewStatic(cur.Name(), table)
	if err != nil {
		// Impossible by construction (frozen rows already validated once);
		// keep the shard marked dirty so a later restore retries.
		li.dirty[shardID] = true
		return false
	}
	li.cur.Store(st)
	return true
}

// shardRange is the node slice shard id owns out of n nodes across w
// workers: contiguous, balanced, covering [0, n) exactly.
func shardRange(id, w, n int) (lo, hi int) {
	return id * n / w, (id + 1) * n / w
}

// repairShard re-samples shard sh's rows in every live table.  Runs on the
// worker goroutine (pool onTrip), so sh.RNG is safe to use.
func (s *Server) repairShard(sh *Shard) {
	lo, hi := shardRange(sh.ID, s.opts.Workers, s.g.N())
	for _, insts := range s.live {
		for _, li := range insts {
			if !li.repair(sh.ID, lo, hi, sh.RNG) {
				s.repairFailures.Add(1)
			}
		}
	}
	s.repairs.Add(1)
}

// restoreShard undoes repairShard after the shard's breaker closes.
func (s *Server) restoreShard(sh *Shard) {
	lo, hi := shardRange(sh.ID, s.opts.Workers, s.g.N())
	for _, insts := range s.live {
		for _, li := range insts {
			if !li.restore(sh.ID, lo, hi) {
				s.repairFailures.Add(1)
			}
		}
	}
}

// repairActive reports whether any table currently deviates from its
// frozen draw.
func (s *Server) repairActive() bool {
	for _, insts := range s.live {
		for _, li := range insts {
			if _, approx := li.load(); approx {
				return true
			}
		}
	}
	return false
}
