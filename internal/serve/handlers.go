package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/route"
)

// httpError writes a JSON error body and bumps the error counter.
func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// nodeParam parses one node-id query parameter and range-checks it.
func (s *Server) nodeParam(r *http.Request, name string) (graph.NodeID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if v < 0 || v >= int64(s.g.N()) {
		return 0, fmt.Errorf("parameter %q = %d out of range [0,%d)", name, v, s.g.N())
	}
	return graph.NodeID(v), nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"status":   "ok",
		"family":   s.snap.Meta.Family,
		"graph":    s.g.Name(),
		"n":        s.g.N(),
		"m":        s.g.M(),
		"oracle":   s.oracle(),
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

type distBatchRequest struct {
	Pairs [][2]int32 `json:"pairs"`
}

type distBatchResponse struct {
	Dists []int32 `json:"dists"`
}

// handleDist answers exact distance queries: GET for one (u, v) pair, POST
// for a batch.  A batch runs as a single pool task, which is what lets a
// one-CPU deployment amortise HTTP overhead across thousands of oracle
// lookups per request.
func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		u, err := s.nodeParam(r, "u")
		if err == nil {
			var v graph.NodeID
			v, err = s.nodeParam(r, "v")
			if err == nil {
				var d int32
				if poolErr := s.pool.Do(r.Context(), func(*Shard) { d = s.distance(u, v) }); poolErr != nil {
					s.httpError(w, http.StatusServiceUnavailable, "cancelled: %v", poolErr)
					return
				}
				s.distQueries.Add(1)
				writeJSON(w, map[string]any{"u": u, "v": v, "dist": d})
				return
			}
		}
		s.httpError(w, http.StatusBadRequest, "%v", err)
	case http.MethodPost:
		var req distBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad batch body: %v", err)
			return
		}
		if len(req.Pairs) == 0 || len(req.Pairs) > s.opts.MaxBatch {
			s.httpError(w, http.StatusBadRequest, "batch of %d pairs out of range [1,%d]", len(req.Pairs), s.opts.MaxBatch)
			return
		}
		n := int32(s.g.N())
		for i, p := range req.Pairs {
			if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
				s.httpError(w, http.StatusBadRequest, "pair %d = (%d,%d) out of range [0,%d)", i, p[0], p[1], n)
				return
			}
		}
		resp := distBatchResponse{Dists: make([]int32, len(req.Pairs))}
		if err := s.pool.Do(r.Context(), func(*Shard) {
			for i, p := range req.Pairs {
				resp.Dists[i] = s.distance(p[0], p[1])
			}
		}); err != nil {
			s.httpError(w, http.StatusServiceUnavailable, "cancelled: %v", err)
			return
		}
		s.distQueries.Add(int64(len(req.Pairs)))
		writeJSON(w, resp)
	default:
		s.httpError(w, http.StatusMethodNotAllowed, "use GET for single queries, POST for batches")
	}
}

type routeResult struct {
	S         graph.NodeID   `json:"s"`
	T         graph.NodeID   `json:"t"`
	Dist      int32          `json:"dist"`
	Steps     int            `json:"steps"`
	LongLinks int            `json:"long_links"`
	Reached   bool           `json:"reached"`
	Error     string         `json:"error,omitempty"`
	Path      []graph.NodeID `json:"path,omitempty"`
}

type routeBatchRequest struct {
	Pairs  [][2]int32 `json:"pairs"`
	Scheme string     `json:"scheme"`
	Draw   int        `json:"draw"`
	Trace  bool       `json:"trace"`
}

// routeOne runs one deterministic greedy trial on the frozen draw.  Routing
// errors (disconnected pair, for instance) are reported per-result, not as
// HTTP failures, so a batch with one unreachable pair still returns the
// other answers.
func (s *Server) routeOne(sh *Shard, inst routeInstance, from, to graph.NodeID, trace bool) routeResult {
	res := routeResult{S: from, T: to, Dist: s.distance(from, to)}
	out, err := route.Greedy(s.g, inst.inst, from, to, s.targetSource(to),
		sh.RNG, route.Options{Trace: trace, Scratch: sh.Scratch})
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Steps = out.Steps
	res.LongLinks = out.LongLinksUsed
	res.Reached = out.Reached
	res.Path = out.Path
	return res
}

// routeInstance is a resolved (scheme, draw) pair: the frozen contact
// table to route over, with the names echoed back in responses.
type routeInstance struct {
	scheme string
	draw   int
	inst   augment.Instance
}

// frozenInstance resolves a scheme name ("" = first packed) and draw index
// against the instances pre-built in New, so the request path never
// re-validates a contact table.
func (s *Server) frozenInstance(scheme string, draw int) (routeInstance, error) {
	st, err := s.snap.Scheme(scheme)
	if err != nil {
		return routeInstance{}, err
	}
	insts := s.instances[st.Name]
	if draw < 0 || draw >= len(insts) {
		return routeInstance{}, fmt.Errorf("scheme %s has %d draws, requested %d", st.Name, len(insts), draw)
	}
	return routeInstance{scheme: st.Name, draw: draw, inst: insts[draw]}, nil
}

// handleRoute runs greedy routing trials over a frozen augmentation: GET
// for one (s, t) pair, POST for a batch sharing one scheme/draw.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		from, err := s.nodeParam(r, "s")
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		to, err := s.nodeParam(r, "t")
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		q := r.URL.Query()
		draw := 0
		if raw := q.Get("draw"); raw != "" {
			if draw, err = strconv.Atoi(raw); err != nil {
				s.httpError(w, http.StatusBadRequest, "parameter draw: %v", err)
				return
			}
		}
		inst, err := s.frozenInstance(q.Get("scheme"), draw)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		trace := q.Get("trace") == "1" || q.Get("trace") == "true"
		var res routeResult
		if poolErr := s.pool.Do(r.Context(), func(sh *Shard) {
			res = s.routeOne(sh, inst, from, to, trace)
		}); poolErr != nil {
			s.httpError(w, http.StatusServiceUnavailable, "cancelled: %v", poolErr)
			return
		}
		s.routeQueries.Add(1)
		writeJSON(w, map[string]any{"scheme": inst.scheme, "draw": inst.draw, "result": res})
	case http.MethodPost:
		var req routeBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad batch body: %v", err)
			return
		}
		if len(req.Pairs) == 0 || len(req.Pairs) > s.opts.MaxBatch {
			s.httpError(w, http.StatusBadRequest, "batch of %d pairs out of range [1,%d]", len(req.Pairs), s.opts.MaxBatch)
			return
		}
		n := int32(s.g.N())
		for i, p := range req.Pairs {
			if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
				s.httpError(w, http.StatusBadRequest, "pair %d = (%d,%d) out of range [0,%d)", i, p[0], p[1], n)
				return
			}
		}
		inst, err := s.frozenInstance(req.Scheme, req.Draw)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		results := make([]routeResult, len(req.Pairs))
		if err := s.pool.Do(r.Context(), func(sh *Shard) {
			for i, p := range req.Pairs {
				results[i] = s.routeOne(sh, inst, p[0], p[1], req.Trace)
			}
		}); err != nil {
			s.httpError(w, http.StatusServiceUnavailable, "cancelled: %v", err)
			return
		}
		s.routeQueries.Add(int64(len(req.Pairs)))
		writeJSON(w, map[string]any{"scheme": inst.scheme, "draw": inst.draw, "results": results})
	default:
		s.httpError(w, http.StatusMethodNotAllowed, "use GET for single trials, POST for batches")
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	schemes := make([]string, 0, len(s.snap.Schemes))
	for i := range s.snap.Schemes {
		schemes = append(schemes, s.snap.Schemes[i].Name)
	}
	writeJSON(w, map[string]any{
		"family":         s.snap.Meta.Family,
		"graph":          s.g.Name(),
		"n":              s.g.N(),
		"m":              s.g.M(),
		"seed":           s.snap.Meta.Seed,
		"oracle":         s.oracle(),
		"schemes":        schemes,
		"workers":        s.opts.Workers,
		"uptime_s":       time.Since(s.start).Seconds(),
		"requests":       s.requests.Load(),
		"dist_queries":   s.distQueries.Load(),
		"route_queries":  s.routeQueries.Load(),
		"errors":         s.errors.Load(),
		"peak_rss_bytes": peakRSSBytes(),
		"goroutines":     runtime.NumGoroutine(),
		"cached_fields":  s.fields.Len(),
	})
}
