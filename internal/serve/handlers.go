package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/route"
)

// httpError writes a JSON error body and bumps the error counter.
func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shed answers 429 with a Retry-After hint: the bounded queue was full and
// this request was dropped at the door instead of parked.  Clients with
// retry enabled (loadgen's -retries) back off on exactly this signal.
func (s *Server) shedRequest(w http.ResponseWriter) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", "1")
	s.httpError(w, http.StatusTooManyRequests, "overloaded: worker queue full, retry later")
}

// admit rejects work whose deadline has already passed before it consumes
// a queue slot — under a timeout storm the queue should hold only requests
// that can still be answered in time.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) bool {
	ctx := r.Context()
	expired := ctx.Err() != nil
	if !expired {
		if d, ok := ctx.Deadline(); ok && time.Until(d) <= 0 {
			expired = true
		}
	}
	if expired {
		s.timeouts.Add(1)
		s.httpError(w, http.StatusServiceUnavailable, "deadline exceeded before dispatch")
		return false
	}
	return true
}

// poolError maps a TryDo failure (other than ErrOverloaded, which callers
// shed or degrade on) to an HTTP answer.
func (s *Server) poolError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrPanicked) {
		s.httpError(w, http.StatusInternalServerError, "worker panicked; shard quarantined for repair")
		return
	}
	s.httpError(w, http.StatusServiceUnavailable, "%v", err)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// nodeParam parses one node-id query parameter and range-checks it.
func (s *Server) nodeParam(r *http.Request, name string) (graph.NodeID, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing required parameter %q", name)
	}
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if v < 0 || v >= int64(s.g.N()) {
		return 0, fmt.Errorf("parameter %q = %d out of range [0,%d)", name, v, s.g.N())
	}
	return graph.NodeID(v), nil
}

// handleLivez is pure liveness: 200 whenever the process can answer HTTP
// at all, draining or not.  Orchestrators use it to decide restarts; they
// use readyz to decide routing.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{"status": "alive"})
}

// handleHealthz is readiness (also mounted at /v1/readyz): 503 while the
// server drains so load balancers stop sending traffic, 200 with snapshot
// identity and degradation state otherwise.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, map[string]any{
		"status":      "ok",
		"family":      s.snap.Meta.Family,
		"graph":       s.g.Name(),
		"n":           s.g.N(),
		"m":           s.g.M(),
		"oracle":      s.oracle(),
		"degraded":    s.degradedNow(),
		"quarantined": s.snap.Quarantined,
		"uptime_s":    time.Since(s.start).Seconds(),
	})
}

type distBatchRequest struct {
	Pairs [][2]int32 `json:"pairs"`
}

type distBatchResponse struct {
	Dists []int32 `json:"dists"`
	// Approx marks the batch as served from the approximate tier: every
	// dist is a landmark upper bound, not an exact distance.
	Approx bool `json:"approx,omitempty"`
}

// handleDist answers distance queries: GET for one (u, v) pair, POST for a
// batch.  A batch runs as a single pool task, which is what lets a one-CPU
// deployment amortise HTTP overhead across thousands of oracle lookups per
// request.  Under overload a single GET degrades inline to the landmark
// tier (no worker needed, answer marked approx); batches are shed.
func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		u, err := s.nodeParam(r, "u")
		if err == nil {
			var v graph.NodeID
			v, err = s.nodeParam(r, "v")
			if err == nil {
				if !s.admit(w, r) {
					return
				}
				var d int32
				var approx bool
				poolErr := s.pool.TryDo(func(*Shard) { d, approx = s.distance(u, v) })
				if errors.Is(poolErr, ErrOverloaded) {
					if s.landmark == nil {
						s.shedRequest(w)
						return
					}
					// Degrade instead of shedding: a landmark bound costs
					// O(k) right here on the handler goroutine, no worker
					// slot needed.
					d, approx = s.landmark.Dist(u, v), true
				} else if poolErr != nil {
					s.poolError(w, poolErr)
					return
				}
				s.distQueries.Add(1)
				resp := map[string]any{"u": u, "v": v, "dist": d}
				if approx {
					s.approxAnswers.Add(1)
					resp["approx"] = true
				}
				writeJSON(w, resp)
				return
			}
		}
		s.httpError(w, http.StatusBadRequest, "%v", err)
	case http.MethodPost:
		var req distBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad batch body: %v", err)
			return
		}
		if len(req.Pairs) == 0 || len(req.Pairs) > s.opts.MaxBatch {
			s.httpError(w, http.StatusBadRequest, "batch of %d pairs out of range [1,%d]", len(req.Pairs), s.opts.MaxBatch)
			return
		}
		n := int32(s.g.N())
		for i, p := range req.Pairs {
			if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
				s.httpError(w, http.StatusBadRequest, "pair %d = (%d,%d) out of range [0,%d)", i, p[0], p[1], n)
				return
			}
		}
		if !s.admit(w, r) {
			return
		}
		resp := distBatchResponse{Dists: make([]int32, len(req.Pairs))}
		err := s.pool.TryDo(func(*Shard) {
			for i, p := range req.Pairs {
				var approx bool
				resp.Dists[i], approx = s.distance(p[0], p[1])
				resp.Approx = resp.Approx || approx
			}
		})
		if errors.Is(err, ErrOverloaded) {
			s.shedRequest(w)
			return
		}
		if err != nil {
			s.poolError(w, err)
			return
		}
		s.distQueries.Add(int64(len(req.Pairs)))
		if resp.Approx {
			s.approxAnswers.Add(int64(len(req.Pairs)))
		}
		writeJSON(w, resp)
	default:
		s.httpError(w, http.StatusMethodNotAllowed, "use GET for single queries, POST for batches")
	}
}

type routeResult struct {
	S         graph.NodeID `json:"s"`
	T         graph.NodeID `json:"t"`
	Dist      int32        `json:"dist"`
	Steps     int          `json:"steps"`
	LongLinks int          `json:"long_links"`
	Reached   bool         `json:"reached"`
	// Approx marks a degraded answer: the distance is a landmark bound,
	// the steering was approximate, or the contact table had repaired
	// (re-sampled) rows when the trial ran.
	Approx bool           `json:"approx,omitempty"`
	Error  string         `json:"error,omitempty"`
	Path   []graph.NodeID `json:"path,omitempty"`
}

type routeBatchRequest struct {
	Pairs  [][2]int32 `json:"pairs"`
	Scheme string     `json:"scheme"`
	Draw   int        `json:"draw"`
	Trace  bool       `json:"trace"`
}

// routeOne runs one greedy trial on the live draw.  Routing errors
// (disconnected pair, for instance) are reported per-result, not as HTTP
// failures, so a batch with one unreachable pair still returns the other
// answers.
func (s *Server) routeOne(sh *Shard, inst routeInstance, from, to graph.NodeID, trace bool) routeResult {
	d, dApprox := s.distance(from, to)
	src, srcApprox := s.targetSource(to)
	res := routeResult{S: from, T: to, Dist: d, Approx: dApprox || srcApprox || inst.approx}
	out, err := route.Greedy(s.g, inst.inst, from, to, src,
		sh.RNG, route.Options{Trace: trace, Scratch: sh.Scratch})
	if err != nil {
		res.Error = err.Error()
		return res
	}
	res.Steps = out.Steps
	res.LongLinks = out.LongLinksUsed
	res.Reached = out.Reached
	res.Path = out.Path
	if res.Approx {
		s.approxAnswers.Add(1)
	}
	return res
}

// routeInstance is a resolved (scheme, draw) pair: the contact table to
// route over, with the names echoed back in responses.  approx is true
// when the table currently carries quarantine-repaired rows.
type routeInstance struct {
	scheme string
	draw   int
	inst   augment.Instance
	approx bool
}

// frozenInstance resolves a scheme name ("" = first packed) and draw index
// against the live tables pre-built in New, so the request path never
// re-validates a contact table.
func (s *Server) frozenInstance(scheme string, draw int) (routeInstance, error) {
	st, err := s.snap.Scheme(scheme)
	if err != nil {
		return routeInstance{}, err
	}
	insts := s.live[st.Name]
	if draw < 0 || draw >= len(insts) {
		return routeInstance{}, fmt.Errorf("scheme %s has %d draws, requested %d", st.Name, len(insts), draw)
	}
	inst, approx := insts[draw].load()
	return routeInstance{scheme: st.Name, draw: draw, inst: inst, approx: approx}, nil
}

// handleRoute runs greedy routing trials over a frozen augmentation: GET
// for one (s, t) pair, POST for a batch sharing one scheme/draw.  Routing
// needs a worker's scratch, so overload sheds (429) rather than degrading
// inline.
func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		from, err := s.nodeParam(r, "s")
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		to, err := s.nodeParam(r, "t")
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		q := r.URL.Query()
		draw := 0
		if raw := q.Get("draw"); raw != "" {
			if draw, err = strconv.Atoi(raw); err != nil {
				s.httpError(w, http.StatusBadRequest, "parameter draw: %v", err)
				return
			}
		}
		inst, err := s.frozenInstance(q.Get("scheme"), draw)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		trace := q.Get("trace") == "1" || q.Get("trace") == "true"
		if !s.admit(w, r) {
			return
		}
		var res routeResult
		poolErr := s.pool.TryDo(func(sh *Shard) {
			res = s.routeOne(sh, inst, from, to, trace)
		})
		if errors.Is(poolErr, ErrOverloaded) {
			s.shedRequest(w)
			return
		}
		if poolErr != nil {
			s.poolError(w, poolErr)
			return
		}
		s.routeQueries.Add(1)
		writeJSON(w, map[string]any{"scheme": inst.scheme, "draw": inst.draw, "result": res})
	case http.MethodPost:
		var req routeBatchRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			s.httpError(w, http.StatusBadRequest, "bad batch body: %v", err)
			return
		}
		if len(req.Pairs) == 0 || len(req.Pairs) > s.opts.MaxBatch {
			s.httpError(w, http.StatusBadRequest, "batch of %d pairs out of range [1,%d]", len(req.Pairs), s.opts.MaxBatch)
			return
		}
		n := int32(s.g.N())
		for i, p := range req.Pairs {
			if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
				s.httpError(w, http.StatusBadRequest, "pair %d = (%d,%d) out of range [0,%d)", i, p[0], p[1], n)
				return
			}
		}
		inst, err := s.frozenInstance(req.Scheme, req.Draw)
		if err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		if !s.admit(w, r) {
			return
		}
		results := make([]routeResult, len(req.Pairs))
		poolErr := s.pool.TryDo(func(sh *Shard) {
			for i, p := range req.Pairs {
				results[i] = s.routeOne(sh, inst, p[0], p[1], req.Trace)
			}
		})
		if errors.Is(poolErr, ErrOverloaded) {
			s.shedRequest(w)
			return
		}
		if poolErr != nil {
			s.poolError(w, poolErr)
			return
		}
		s.routeQueries.Add(int64(len(req.Pairs)))
		writeJSON(w, map[string]any{"scheme": inst.scheme, "draw": inst.draw, "results": results})
	default:
		s.httpError(w, http.StatusMethodNotAllowed, "use GET for single trials, POST for batches")
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	schemes := make([]string, 0, len(s.snap.Schemes))
	for i := range s.snap.Schemes {
		schemes = append(schemes, s.snap.Schemes[i].Name)
	}
	tier, _ := s.tier()
	landmarks := 0
	if s.landmark != nil {
		landmarks = s.landmark.K()
	}
	writeJSON(w, map[string]any{
		"family":          s.snap.Meta.Family,
		"graph":           s.g.Name(),
		"n":               s.g.N(),
		"m":               s.g.M(),
		"seed":            s.snap.Meta.Seed,
		"oracle":          s.oracle(),
		"tier":            tier,
		"degraded":        s.degradedNow(),
		"quarantined":     s.snap.Quarantined,
		"draining":        s.draining.Load(),
		"schemes":         schemes,
		"workers":         s.opts.Workers,
		"queue_depth":     s.opts.QueueDepth,
		"landmarks":       landmarks,
		"breakers_open":   s.pool.TrippedBreakers(),
		"uptime_s":        time.Since(s.start).Seconds(),
		"requests":        s.requests.Load(),
		"dist_queries":    s.distQueries.Load(),
		"route_queries":   s.routeQueries.Load(),
		"errors":          s.errors.Load(),
		"shed":            s.shed.Load(),
		"panics":          s.panics.Load(),
		"repairs":         s.repairs.Load(),
		"repair_failures": s.repairFailures.Load(),
		"approx_answers":  s.approxAnswers.Load(),
		"timeouts":        s.timeouts.Load(),
		"peak_rss_bytes":  peakRSSBytes(),
		"goroutines":      runtime.NumGoroutine(),
		"cached_fields":   s.fields.Len(),
	})
}
