package serve_test

// The serve tests drive the full HTTP handler chain over httptest: answer
// correctness against the in-process oracle, determinism of routing over
// frozen draws, input validation, counter accounting, pool concurrency
// (exercised hard under -race by the parallel client test), and the
// loadgen client end to end.  Everything is seed-pinned: no test outcome
// depends on wall clock or scheduling.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/serve"
	"navaug/internal/snapshot"
	"navaug/internal/xrand"
)

// newTestServer builds a snapshot, serves it, and returns everything a
// test needs.  The snapshot round-trips through bytes so tests exercise
// exactly what a file-loaded server would run.
func newTestServer(t *testing.T, family string, n int, oracle dist.SourcePolicy, opts serve.Options) (*snapshot.Snapshot, *serve.Server, *httptest.Server) {
	t.Helper()
	built, _, err := core.BuildSnapshot(core.SnapshotOptions{
		Family: family, N: n, Seed: 7,
		Schemes: []string{"ball", "uniform"}, Draws: 2,
		Oracle: oracle,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := built.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.ReadBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return snap, srv, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	return resp
}

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("POST %s: decoding body: %v", url, err)
	}
	return resp
}

func TestHealthz(t *testing.T) {
	snap, _, ts := newTestServer(t, "ratree", 128, dist.PolicyTwoHop, serve.Options{})
	var got struct {
		Status string `json:"status"`
		Family string `json:"family"`
		N      int    `json:"n"`
		Oracle string `json:"oracle"`
	}
	resp := getJSON(t, ts.URL+"/v1/healthz", &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if got.Status != "ok" || got.Family != "ratree" || got.N != snap.Graph.N() || got.Oracle != "twohop" {
		t.Fatalf("healthz = %+v", got)
	}
}

func TestDistMatchesOracle(t *testing.T) {
	snap, _, ts := newTestServer(t, "ratree", 128, dist.PolicyTwoHop, serve.Options{})
	src := snap.Source()
	rng := xrand.New(21)
	n := snap.Graph.N()
	for i := 0; i < 64; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		var got struct {
			Dist int32 `json:"dist"`
		}
		resp := getJSON(t, fmt.Sprintf("%s/v1/dist?u=%d&v=%d", ts.URL, u, v), &got)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("dist(%d,%d) status %d", u, v, resp.StatusCode)
		}
		if want := src.Dist(graph.NodeID(u), graph.NodeID(v)); got.Dist != want {
			t.Fatalf("dist(%d,%d) = %d over HTTP, oracle says %d", u, v, got.Dist, want)
		}
	}
}

func TestDistBatchMatchesOracle(t *testing.T) {
	snap, _, ts := newTestServer(t, "gnp", 200, dist.PolicyTwoHop, serve.Options{})
	src := snap.Source()
	rng := xrand.New(22)
	n := int32(snap.Graph.N())
	pairs := make([][2]int32, 500)
	for i := range pairs {
		pairs[i] = [2]int32{rng.Int31n(n), rng.Int31n(n)}
	}
	var got struct {
		Dists []int32 `json:"dists"`
	}
	resp := postJSON(t, ts.URL+"/v1/dist", map[string]any{"pairs": pairs}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(got.Dists) != len(pairs) {
		t.Fatalf("batch returned %d dists for %d pairs", len(got.Dists), len(pairs))
	}
	for i, p := range pairs {
		if want := src.Dist(p[0], p[1]); got.Dists[i] != want {
			t.Fatalf("pair %d (%d,%d): got %d, oracle says %d", i, p[0], p[1], got.Dists[i], want)
		}
	}
}

// TestFieldFallback serves a snapshot with no O(1) tier: answers must
// still be exact through the BFS field cache.
func TestFieldFallback(t *testing.T) {
	snap, _, ts := newTestServer(t, "ratree", 96, dist.PolicyField, serve.Options{FieldCacheSize: 4})
	if snap.Source() != nil {
		t.Fatalf("field-policy snapshot unexpectedly packs an O(1) tier")
	}
	g := snap.Graph
	rng := xrand.New(23)
	for i := 0; i < 32; i++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		want := g.BFS(graph.NodeID(u))[v]
		var got struct {
			Dist int32 `json:"dist"`
		}
		getJSON(t, fmt.Sprintf("%s/v1/dist?u=%d&v=%d", ts.URL, u, v), &got)
		if got.Dist != want {
			t.Fatalf("fallback dist(%d,%d) = %d, BFS says %d", u, v, got.Dist, want)
		}
	}
	var stats struct {
		Oracle string `json:"oracle"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Oracle != "field-cache" {
		t.Fatalf("stats oracle = %q, want field-cache", stats.Oracle)
	}
}

type routeResp struct {
	Scheme string `json:"scheme"`
	Draw   int    `json:"draw"`
	Result struct {
		S         int32   `json:"s"`
		T         int32   `json:"t"`
		Dist      int32   `json:"dist"`
		Steps     int     `json:"steps"`
		LongLinks int     `json:"long_links"`
		Reached   bool    `json:"reached"`
		Error     string  `json:"error"`
		Path      []int32 `json:"path"`
	} `json:"result"`
}

func TestRouteDeterministicAndValid(t *testing.T) {
	snap, _, ts := newTestServer(t, "ratree", 128, dist.PolicyTwoHop, serve.Options{})
	g := snap.Graph
	rng := xrand.New(31)
	for i := 0; i < 24; i++ {
		s, d := rng.Intn(g.N()), rng.Intn(g.N())
		url := fmt.Sprintf("%s/v1/route?s=%d&t=%d&scheme=ball&draw=1&trace=1", ts.URL, s, d)
		var first routeResp
		if resp := getJSON(t, url, &first); resp.StatusCode != http.StatusOK {
			t.Fatalf("route status %d", resp.StatusCode)
		}
		if first.Scheme != "ball" || first.Draw != 1 {
			t.Fatalf("route echoed scheme %q draw %d", first.Scheme, first.Draw)
		}
		if first.Result.Error != "" {
			t.Fatalf("route(%d,%d) errored: %s", s, d, first.Result.Error)
		}
		if !first.Result.Reached {
			t.Fatalf("route(%d,%d) did not reach on a connected tree", s, d)
		}
		// The traced path must be a real walk ending at the target with
		// the reported step count.
		p := first.Result.Path
		if len(p) != first.Result.Steps+1 || p[0] != int32(s) || p[len(p)-1] != int32(d) {
			t.Fatalf("route(%d,%d) path %v inconsistent with steps %d", s, d, p, first.Result.Steps)
		}
		// Frozen draws make answers reproducible across requests.
		var second routeResp
		getJSON(t, url, &second)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("route(%d,%d) is not deterministic: %+v vs %+v", s, d, first, second)
		}
	}
}

func TestRouteBatch(t *testing.T) {
	snap, _, ts := newTestServer(t, "ratree", 128, dist.PolicyTwoHop, serve.Options{})
	rng := xrand.New(32)
	n := int32(snap.Graph.N())
	pairs := make([][2]int32, 40)
	for i := range pairs {
		pairs[i] = [2]int32{rng.Int31n(n), rng.Int31n(n)}
	}
	var got struct {
		Scheme  string `json:"scheme"`
		Results []struct {
			Reached bool   `json:"reached"`
			Steps   int    `json:"steps"`
			Error   string `json:"error"`
		} `json:"results"`
	}
	resp := postJSON(t, ts.URL+"/v1/route", map[string]any{"pairs": pairs, "scheme": "uniform"}, &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("route batch status %d", resp.StatusCode)
	}
	if got.Scheme != "uniform" || len(got.Results) != len(pairs) {
		t.Fatalf("route batch: scheme %q, %d results for %d pairs", got.Scheme, len(got.Results), len(pairs))
	}
	for i, r := range got.Results {
		if r.Error != "" || !r.Reached {
			t.Fatalf("pair %d (%d,%d): %+v", i, pairs[i][0], pairs[i][1], r)
		}
	}
}

func TestRejectsBadRequests(t *testing.T) {
	_, _, ts := newTestServer(t, "ratree", 64, dist.PolicyTwoHop, serve.Options{MaxBatch: 8})
	for _, tc := range []struct {
		name string
		do   func() *http.Response
	}{
		{"missing param", func() *http.Response {
			r, _ := http.Get(ts.URL + "/v1/dist?u=1")
			return r
		}},
		{"non-numeric", func() *http.Response {
			r, _ := http.Get(ts.URL + "/v1/dist?u=1&v=abc")
			return r
		}},
		{"out of range", func() *http.Response {
			r, _ := http.Get(ts.URL + "/v1/dist?u=1&v=64")
			return r
		}},
		{"negative", func() *http.Response {
			r, _ := http.Get(ts.URL + "/v1/dist?u=-1&v=2")
			return r
		}},
		{"unknown scheme", func() *http.Response {
			r, _ := http.Get(ts.URL + "/v1/route?s=1&t=2&scheme=nope")
			return r
		}},
		{"bad draw", func() *http.Response {
			r, _ := http.Get(ts.URL + "/v1/route?s=1&t=2&draw=99")
			return r
		}},
		{"bad batch json", func() *http.Response {
			r, _ := http.Post(ts.URL+"/v1/dist", "application/json", bytes.NewReader([]byte("{")))
			return r
		}},
		{"oversized batch", func() *http.Response {
			body, _ := json.Marshal(map[string]any{"pairs": make([][2]int32, 9)})
			r, _ := http.Post(ts.URL+"/v1/dist", "application/json", bytes.NewReader(body))
			return r
		}},
		{"batch pair out of range", func() *http.Response {
			body, _ := json.Marshal(map[string]any{"pairs": [][2]int32{{0, 64}}})
			r, _ := http.Post(ts.URL+"/v1/dist", "application/json", bytes.NewReader(body))
			return r
		}},
	} {
		resp := tc.do()
		if resp == nil {
			t.Fatalf("%s: no response", tc.name)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	// Method misuse is its own status.
	resp, err := http.Post(ts.URL+"/v1/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}

func TestStatsCounters(t *testing.T) {
	snap, _, ts := newTestServer(t, "ratree", 64, dist.PolicyTwoHop, serve.Options{Workers: 2})
	for i := 0; i < 5; i++ {
		var out map[string]any
		getJSON(t, fmt.Sprintf("%s/v1/dist?u=%d&v=%d", ts.URL, i, i+1), &out)
	}
	var batch struct {
		Dists []int32 `json:"dists"`
	}
	postJSON(t, ts.URL+"/v1/dist", map[string]any{"pairs": [][2]int32{{0, 1}, {2, 3}, {4, 5}}}, &batch)
	resp, err := http.Get(ts.URL + "/v1/dist?u=bad&v=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var stats struct {
		Family      string `json:"family"`
		N           int    `json:"n"`
		DistQueries int64  `json:"dist_queries"`
		Requests    int64  `json:"requests"`
		Errors      int64  `json:"errors"`
		Workers     int    `json:"workers"`
		Schemes     []string
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.DistQueries != 5+3 {
		t.Fatalf("dist_queries = %d, want 8", stats.DistQueries)
	}
	if stats.Errors != 1 {
		t.Fatalf("errors = %d, want 1", stats.Errors)
	}
	if stats.Requests < 7 {
		t.Fatalf("requests = %d, want >= 7", stats.Requests)
	}
	if stats.Workers != 2 || stats.N != snap.Graph.N() || stats.Family != "ratree" {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestParallelClients hammers every endpoint from many goroutines; under
// -race this pins the pool's shard-ownership discipline and the read-only
// sharing of the snapshot artefacts.
func TestParallelClients(t *testing.T) {
	snap, _, ts := newTestServer(t, "ratree", 256, dist.PolicyTwoHop, serve.Options{Workers: 4})
	src := snap.Source()
	n := snap.Graph.N()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := xrand.New(uint64(worker) + 100)
			for i := 0; i < 40; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				switch i % 3 {
				case 0:
					resp, err := http.Get(fmt.Sprintf("%s/v1/dist?u=%d&v=%d", ts.URL, u, v))
					if err != nil {
						errs <- err
						return
					}
					var got struct {
						Dist int32 `json:"dist"`
					}
					err = json.NewDecoder(resp.Body).Decode(&got)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if want := src.Dist(graph.NodeID(u), graph.NodeID(v)); got.Dist != want {
						errs <- fmt.Errorf("dist(%d,%d) = %d, want %d", u, v, got.Dist, want)
						return
					}
				case 1:
					resp, err := http.Get(fmt.Sprintf("%s/v1/route?s=%d&t=%d", ts.URL, u, v))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				case 2:
					resp, err := http.Get(ts.URL + "/v1/stats")
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestLoadgenAgainstServer(t *testing.T) {
	_, _, ts := newTestServer(t, "ratree", 256, dist.PolicyTwoHop, serve.Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := serve.RunLoad(ctx, serve.LoadOptions{
		BaseURL:  ts.URL,
		Mode:     "dist",
		Duration: 300 * time.Millisecond,
		Warmup:   50 * time.Millisecond,
		Conns:    2,
		Batch:    16,
		KeyDist:  "zipf",
		Seed:     9,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if res.Requests == 0 || res.QueriesPerS <= 0 {
		t.Fatalf("loadgen measured no traffic: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", res.Errors)
	}
	if res.Queries != res.Requests*16 {
		t.Fatalf("queries = %d for %d requests of batch 16", res.Queries, res.Requests)
	}
	if res.Latency.P50 <= 0 || res.Latency.P99 < res.Latency.P50 {
		t.Fatalf("implausible percentiles: %+v", res.Latency)
	}
	if res.ServerN != 256 || res.ServerOracle != "twohop" {
		t.Fatalf("server info not captured: %+v", res)
	}

	// Open-loop route mode exercises the scheduled-arrival path.
	res2, err := serve.RunLoad(ctx, serve.LoadOptions{
		BaseURL:  ts.URL,
		Mode:     "route",
		Rate:     200,
		Duration: 300 * time.Millisecond,
		Warmup:   time.Duration(-1), // disable
		Conns:    2,
		Scheme:   "ball",
		Seed:     9,
	})
	if err != nil {
		t.Fatalf("RunLoad(route): %v", err)
	}
	if !res2.OpenLoop || res2.Requests == 0 || res2.Errors != 0 {
		t.Fatalf("open-loop route run: %+v", res2)
	}
}

func TestLoadgenRejectsBadOptions(t *testing.T) {
	ctx := context.Background()
	if _, err := serve.RunLoad(ctx, serve.LoadOptions{}); err == nil {
		t.Fatal("RunLoad with no URL should fail")
	}
	if _, err := serve.RunLoad(ctx, serve.LoadOptions{BaseURL: "http://127.0.0.1:1", Mode: "nope"}); err == nil {
		t.Fatal("RunLoad with unknown mode should fail")
	}
	if _, err := serve.RunLoad(ctx, serve.LoadOptions{BaseURL: "http://127.0.0.1:1"}); err == nil {
		t.Fatal("RunLoad against a dead server should fail at the probe")
	}
	_, _, ts := newTestServer(t, "ratree", 64, dist.PolicyTwoHop, serve.Options{})
	if _, err := serve.RunLoad(ctx, serve.LoadOptions{BaseURL: ts.URL, KeyDist: "nope"}); err == nil {
		t.Fatal("RunLoad with unknown key distribution should fail")
	}
}
