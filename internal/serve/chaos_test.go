package serve_test

// Chaos contract tests: the serving stack under injected faults.  Each
// test drives the real HTTP handler chain with a deterministic
// fault.Injector and asserts the robustness contract end to end — nonzero
// goodput and bounded shedding under overload, zero escaped panics,
// quarantine-repair-restore on panicking shards, the approximate answer
// tier on damaged snapshots, and byte-identical answers once faults clear.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"navaug/internal/core"
	"navaug/internal/dist"
	"navaug/internal/fault"
	"navaug/internal/serve"
	"navaug/internal/snapshot"
)

// chaosStats is the /v1/stats slice the chaos assertions read.
type chaosStats struct {
	Requests      int64    `json:"requests"`
	DistQueries   int64    `json:"dist_queries"`
	RouteQueries  int64    `json:"route_queries"`
	Errors        int64    `json:"errors"`
	Shed          int64    `json:"shed"`
	Panics        int64    `json:"panics"`
	Repairs       int64    `json:"repairs"`
	RepairFails   int64    `json:"repair_failures"`
	ApproxAnswers int64    `json:"approx_answers"`
	Timeouts      int64    `json:"timeouts"`
	BreakersOpen  int      `json:"breakers_open"`
	Degraded      bool     `json:"degraded"`
	Draining      bool     `json:"draining"`
	Tier          string   `json:"tier"`
	Quarantined   []string `json:"quarantined"`
}

func fetchChaosStats(t *testing.T, base string) chaosStats {
	t.Helper()
	var st chaosStats
	getJSON(t, base+"/v1/stats", &st)
	return st
}

// getBody fetches a URL and returns status and raw body, for byte-identity
// probes.
func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", url, err)
	}
	return resp.StatusCode, b
}

// probeSet is a fixed set of query URLs whose responses must be
// byte-identical before faults and after recovery.
func probeSet(base string) []string {
	return []string{
		base + "/v1/dist?u=3&v=97",
		base + "/v1/dist?u=0&v=200",
		base + "/v1/route?s=5&t=180",
		base + "/v1/route?s=42&t=7&scheme=uniform&draw=1",
	}
}

func captureProbes(t *testing.T, urls []string) [][]byte {
	t.Helper()
	out := make([][]byte, len(urls))
	for i, u := range urls {
		code, body := getBody(t, u)
		if code != http.StatusOK {
			t.Fatalf("probe %s returned %d: %s", u, code, body)
		}
		out[i] = body
	}
	return out
}

// TestChaosContractStallAndStorm is the headline contract: a stalled pool
// plus a latency storm bigger than the request timeout must yield (a)
// nonzero goodput, (b) load shed as 429s rather than unbounded queueing,
// (c) zero escaped panics, and (d) byte-identical answers once the fault
// window closes.
func TestChaosContractStallAndStorm(t *testing.T) {
	inj := fault.MustParse("stall:shard=-1,delay=40ms,dur=1200ms;storm:p=0.1,delay=500ms,dur=1200ms", 11)
	_, _, ts := newTestServer(t, "ratree", 256, dist.PolicyTwoHop, serve.Options{
		Workers: 2, QueueDepth: 2, RequestTimeout: 300 * time.Millisecond,
		Landmarks: 8, Faults: inj,
	})

	before := captureProbes(t, probeSet(ts.URL))
	inj.Activate()
	start := time.Now()

	var ok200, shed429, other atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; time.Since(start) < time.Second; i++ {
				var url string
				if (c+i)%2 == 0 {
					url = fmt.Sprintf("%s/v1/route?s=%d&t=%d", ts.URL, (c*31+i)%256, (i*17+3)%256)
				} else {
					url = fmt.Sprintf("%s/v1/dist?u=%d&v=%d", ts.URL, (c*13+i)%256, (i*7+1)%256)
				}
				resp, err := http.Get(url)
				if err != nil {
					other.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
				default:
					other.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	if ok200.Load() == 0 {
		t.Fatal("no goodput under chaos: every request failed")
	}
	if shed429.Load() == 0 {
		t.Fatal("overload never shed: queue must be unbounded or stall ineffective")
	}
	st := fetchChaosStats(t, ts.URL)
	if st.Panics != 0 {
		t.Fatalf("stall+storm chaos produced %d panics", st.Panics)
	}
	if st.Shed == 0 {
		t.Fatalf("server shed counter stayed 0 with %d client 429s", shed429.Load())
	}

	// Let the fault window close, then the exact same queries must answer
	// byte-identically to the pre-fault baseline.
	if sleepFor := 1400*time.Millisecond - time.Since(start); sleepFor > 0 {
		time.Sleep(sleepFor)
	}
	after := captureProbes(t, probeSet(ts.URL))
	for i := range before {
		if string(before[i]) != string(after[i]) {
			t.Fatalf("probe %d diverged after fault window:\n before: %s\n after:  %s",
				i, before[i], after[i])
		}
	}
	if st := fetchChaosStats(t, ts.URL); st.Degraded {
		t.Fatal("server still reports degraded after the fault window closed")
	}
}

// TestPanicQuarantineRepairRecover drives every shard through the full
// breaker lifecycle: injected panics are recovered (500s, not a crash),
// the breakers trip and the shards' contact rows are locally re-sampled,
// and once the fault window closes the half-open probes restore the
// original tables — answers are byte-identical again.
func TestPanicQuarantineRepairRecover(t *testing.T) {
	inj := fault.MustParse("panic:shard=-1,p=1,dur=300ms", 5)
	_, _, ts := newTestServer(t, "ratree", 256, dist.PolicyTwoHop, serve.Options{
		Workers: 2, QueueDepth: 4, BreakerThreshold: 2, BreakerCooldown: 100 * time.Millisecond,
		Faults: inj,
	})

	before := captureProbes(t, probeSet(ts.URL))
	inj.Activate()

	// Hammer during the window: every task panics, so we must observe 500s
	// and the breakers must trip without taking the process down.
	saw500 := false
	for i := 0; i < 24; i++ {
		code, _ := getBody(t, fmt.Sprintf("%s/v1/route?s=%d&t=%d", ts.URL, i%256, (i*31+9)%256))
		if code == http.StatusInternalServerError {
			saw500 = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !saw500 {
		t.Fatal("panic storm produced no 500s: injection or recovery path broken")
	}
	mid := fetchChaosStats(t, ts.URL)
	if mid.Panics == 0 {
		t.Fatal("no panics counted during a p=1 panic window")
	}
	if mid.Repairs == 0 {
		t.Fatal("breakers never tripped into quarantine-repair")
	}
	if mid.RepairFails != 0 {
		t.Fatalf("%d repair/restore rebuilds failed loudly (should be structurally impossible)", mid.RepairFails)
	}

	// Recovery: keep sending probe traffic until both shards have closed
	// their breakers and restored (degraded == false), then check
	// byte-identity.
	deadline := time.Now().Add(10 * time.Second)
	for {
		// Concurrent requests so both workers get probe tasks.
		var wg sync.WaitGroup
		for k := 0; k < 4; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				resp, err := http.Get(fmt.Sprintf("%s/v1/dist?u=%d&v=%d", ts.URL, k, k+100))
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}(k)
		}
		wg.Wait()
		st := fetchChaosStats(t, ts.URL)
		if !st.Degraded && st.BreakersOpen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never recovered: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	after := captureProbes(t, probeSet(ts.URL))
	for i := range before {
		if string(before[i]) != string(after[i]) {
			t.Fatalf("probe %d not byte-identical after repair/restore:\n before: %s\n after:  %s",
				i, before[i], after[i])
		}
	}
}

// TestQuarantinedSnapshotServesApprox is the load-path half of the ladder:
// a snapshot whose 2-hop section is corrupt loads tolerantly, starts
// degraded, and under memory pressure serves landmark upper bounds marked
// "approx": true — never an underestimate, never a refusal to start.
func TestQuarantinedSnapshotServesApprox(t *testing.T) {
	built, _, err := core.BuildSnapshot(core.SnapshotOptions{
		Family: "ratree", N: 256, Seed: 7,
		Schemes: []string{"ball"}, Draws: 1, Oracle: dist.PolicyTwoHop,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := built.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.CorruptSection(b, "twohop"); err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.ReadBytesTolerant(b)
	if err != nil {
		t.Fatalf("tolerant load: %v", err)
	}
	if len(snap.Quarantined) != 1 || snap.Quarantined[0] != "twohop" {
		t.Fatalf("Quarantined = %v", snap.Quarantined)
	}

	inj := fault.MustParse("mem", 3)
	inj.Activate()
	srv, err := serve.New(snap, serve.Options{Workers: 2, Landmarks: 8, Faults: inj})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	st := fetchChaosStats(t, ts.URL)
	if !st.Degraded || st.Tier != "landmark" || len(st.Quarantined) != 1 {
		t.Fatalf("degraded stats wrong: %+v", st)
	}

	// Landmark answers are upper bounds on the true distance, never less.
	exact := snap.Graph.BFS(5)
	for _, v := range []int{0, 17, 100, 255} {
		var got struct {
			Dist   int32 `json:"dist"`
			Approx bool  `json:"approx"`
		}
		getJSON(t, fmt.Sprintf("%s/v1/dist?u=5&v=%d", ts.URL, v), &got)
		if !got.Approx {
			t.Fatalf("dist(5,%d) under mem pressure not marked approx", v)
		}
		if got.Dist < exact[v] {
			t.Fatalf("landmark dist(5,%d) = %d underestimates exact %d", v, got.Dist, exact[v])
		}
	}

	// Pressure released: the ladder climbs back to the exact field tier,
	// but the quarantined section keeps the server marked degraded.
	inj.Deactivate()
	var got struct {
		Dist   int32 `json:"dist"`
		Approx bool  `json:"approx"`
	}
	getJSON(t, ts.URL+"/v1/dist?u=5&v=100", &got)
	if got.Approx || got.Dist != exact[100] {
		t.Fatalf("after pressure release dist(5,100) = %d approx=%v, want exact %d", got.Dist, got.Approx, exact[100])
	}
	if st := fetchChaosStats(t, ts.URL); !st.Degraded || st.Tier != "field-cache" {
		t.Fatalf("post-release stats wrong: %+v", st)
	}
}

// TestDrainSplitsLivenessFromReadiness pins the health split: draining
// flips readiness to 503 while liveness stays 200 and accepted queries
// still answer.
func TestDrainSplitsLivenessFromReadiness(t *testing.T) {
	_, srv, ts := newTestServer(t, "ratree", 64, dist.PolicyTwoHop, serve.Options{Workers: 2})
	for _, ep := range []string{"/v1/livez", "/v1/readyz", "/v1/healthz"} {
		if code, body := getBody(t, ts.URL+ep); code != http.StatusOK {
			t.Fatalf("%s = %d before drain: %s", ep, code, body)
		}
	}
	srv.BeginDrain()
	if code, _ := getBody(t, ts.URL+"/v1/livez"); code != http.StatusOK {
		t.Fatalf("livez = %d while draining, want 200", code)
	}
	for _, ep := range []string{"/v1/readyz", "/v1/healthz"} {
		code, body := getBody(t, ts.URL+ep)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s = %d while draining, want 503: %s", ep, code, body)
		}
	}
	// In-flight / late queries still answer: drain refuses readiness, not
	// work.
	if code, body := getBody(t, ts.URL+"/v1/dist?u=1&v=30"); code != http.StatusOK {
		t.Fatalf("dist while draining = %d: %s", code, body)
	}
}

// TestSoakChaos runs the full stack under simultaneous stall, storm and
// panic faults for several seconds, asserting zero escaped panics (the
// test binary itself would die) and monotonic stats counters throughout.
// Skipped under -short; the CI race job runs it explicitly.
func TestSoakChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test: several seconds of chaos traffic")
	}
	inj := fault.MustParse("stall:shard=-1,delay=2ms;storm:p=0.05,delay=80ms;panic:shard=-1,p=0.02", 17)
	_, _, ts := newTestServer(t, "ratree", 512, dist.PolicyTwoHop, serve.Options{
		Workers: 4, QueueDepth: 4, RequestTimeout: 250 * time.Millisecond,
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
		Landmarks: 8, Faults: inj,
	})
	inj.Activate()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var url string
				switch (c + i) % 3 {
				case 0:
					url = fmt.Sprintf("%s/v1/dist?u=%d&v=%d", ts.URL, (c*97+i)%512, (i*13+1)%512)
				case 1:
					url = fmt.Sprintf("%s/v1/route?s=%d&t=%d", ts.URL, (c*41+i)%512, (i*29+7)%512)
				default:
					url = ts.URL + "/v1/healthz"
				}
				resp, err := http.Get(url)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(c)
	}

	// Sample stats throughout; every counter must be monotonic.
	counters := func(st chaosStats) []int64 {
		return []int64{st.Requests, st.DistQueries, st.RouteQueries, st.Errors,
			st.Shed, st.Panics, st.Repairs, st.ApproxAnswers, st.Timeouts}
	}
	names := []string{"requests", "dist_queries", "route_queries", "errors",
		"shed", "panics", "repairs", "approx_answers", "timeouts"}
	prev := counters(fetchChaosStats(t, ts.URL))
	soakEnd := time.Now().Add(4 * time.Second)
	for time.Now().Before(soakEnd) {
		time.Sleep(200 * time.Millisecond)
		cur := counters(fetchChaosStats(t, ts.URL))
		for i := range cur {
			if cur[i] < prev[i] {
				t.Fatalf("counter %s went backwards: %d -> %d", names[i], prev[i], cur[i])
			}
		}
		prev = cur
	}
	close(stop)
	wg.Wait()

	// Every injected panic was recovered: reaching this line at all means
	// none escaped the worker shield (an escaped panic kills the process).
	st := fetchChaosStats(t, ts.URL)
	if st.Requests == 0 || st.Panics == 0 {
		t.Fatalf("soak exercised nothing: %+v", st)
	}
}
