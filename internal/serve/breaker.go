package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	bkClosed   breakerState = iota // healthy: tasks flow
	bkOpen                         // tripped: shard quarantined until cooldown
	bkHalfOpen                     // cooldown over: admit probe tasks
)

// breaker is the per-shard circuit breaker: threshold consecutive panics
// trip it open, quarantining the shard for cooldown; the first task after
// the cooldown runs as a probe (half-open) and either closes the breaker
// or re-trips it.  One breaker guards exactly one worker goroutine, but
// stats readers poll concurrently, hence the mutex.  now is injectable so
// the state machine is unit-testable without sleeping.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	fails     int
	threshold int
	cooldown  time.Duration
	openedAt  time.Time
	now       func() time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether the shard may take the next task.  An open breaker
// refuses until the cooldown elapses, then transitions to half-open and
// admits a single probe (the guarded worker is one goroutine, so "single"
// is structural).
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == bkOpen {
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = bkHalfOpen
	}
	return true
}

// Fail records a task failure.  It returns true when this failure tripped
// the breaker open (from closed via the threshold, or instantly from a
// failed half-open probe) — the caller's cue to quarantine-repair.
func (b *breaker) Fail() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case bkHalfOpen:
		b.state = bkOpen
		b.openedAt = b.now()
		b.fails = 0
		return true
	case bkClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = bkOpen
			b.openedAt = b.now()
			b.fails = 0
			return true
		}
	}
	return false
}

// Success records a clean task.  It returns true when it closed a
// half-open breaker — the caller's cue to restore the shard's original
// state.
func (b *breaker) Success() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state == bkHalfOpen {
		b.state = bkClosed
		return true
	}
	return false
}

// Tripped reports whether the breaker is currently not closed (open or
// probing), for stats.
func (b *breaker) Tripped() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != bkClosed
}
