package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"navaug/internal/sampler"
	"navaug/internal/xrand"
)

// LoadOptions configures one load-generation run against a serve instance.
type LoadOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Mode is "dist" or "route".
	Mode string
	// Rate is the target request arrival rate in requests/s.  Positive
	// rates run open loop (requests fire on a fixed schedule regardless of
	// completions, wrk2-style, so latency includes queueing delay under
	// overload); zero or negative runs closed loop at maximum throughput.
	Rate float64
	// Duration is the measured window (default 5s).
	Duration time.Duration
	// Warmup runs closed-loop unmeasured traffic first (default 500ms), so
	// connection setup and lazy caches are off the books.
	Warmup time.Duration
	// Conns is the number of concurrent client workers (default 4).
	Conns int
	// Batch is the pairs per request; 1 uses the GET endpoints, >1 POSTs a
	// batch (default 1).
	Batch int
	// KeyDist picks query endpoints: "uniform" or "zipf" (default uniform).
	KeyDist string
	// ZipfExp is the zipf exponent when KeyDist is "zipf" (default 1.1).
	ZipfExp float64
	// Seed drives all key sampling (default 1).
	Seed uint64
	// Scheme and Draw select the frozen augmentation for route mode
	// (defaults: first packed scheme, draw 0).
	Scheme string
	Draw   int
	// Retries is the per-request retry budget on retryable failures (429,
	// 5xx, timeouts, connection errors), with capped exponential backoff
	// plus jitter between attempts.  Default 0: off — a load generator
	// that silently retries hides exactly the overload behaviour this one
	// exists to measure, so retries are strictly opt-in.
	Retries int
}

// Percentiles are latency quantiles in milliseconds.
type Percentiles struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	P999 float64 `json:"p999_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// LoadResult is the measured outcome of RunLoad, shaped for BENCH_serve.json.
type LoadResult struct {
	Mode       string  `json:"mode"`
	KeyDist    string  `json:"key_dist"`
	Batch      int     `json:"batch"`
	Conns      int     `json:"conns"`
	OpenLoop   bool    `json:"open_loop"`
	TargetRate float64 `json:"target_rate_rps,omitempty"`
	DurationS  float64 `json:"duration_s"`
	Requests   int64   `json:"requests"`
	Queries    int64   `json:"queries"`
	// OK counts requests that ended in a 2xx (after retries, when
	// enabled); Errors = Requests − OK.  The taxonomy below counts
	// *attempts* per failure class, so with retries enabled the class
	// counts can exceed Errors — a request that got a 429 and then
	// succeeded shows up in Shed429 and OK both.
	OK         int64 `json:"ok"`
	Errors     int64 `json:"errors"`
	Shed429    int64 `json:"shed_429"`
	Timeouts   int64 `json:"timeouts"`
	Errors5xx  int64 `json:"errors_5xx"`
	ConnErrors int64 `json:"conn_errors"`
	// Retries counts extra attempts spent; 0 unless LoadOptions.Retries
	// is set.
	Retries       int64       `json:"retries,omitempty"`
	RequestsPerS  float64     `json:"requests_per_sec"`
	QueriesPerS   float64     `json:"queries_per_sec"`
	GoodputPerS   float64     `json:"goodput_per_sec"`
	Latency       Percentiles `json:"latency"`
	ServerFamily  string      `json:"server_family,omitempty"`
	ServerN       int         `json:"server_n,omitempty"`
	ServerOracle  string      `json:"server_oracle,omitempty"`
	ServerPeakRSS int64       `json:"server_peak_rss_bytes,omitempty"`
}

// RunLoad drives the server at BaseURL and reports throughput and latency.
// In open-loop mode latency is measured from each request's *scheduled*
// send time, so coordinated omission is accounted for: a server that
// stalls accrues the stall in every latency sample it delays.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadResult, error) {
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("loadgen: no base URL")
	}
	if opts.Mode == "" {
		opts.Mode = "dist"
	}
	if opts.Mode != "dist" && opts.Mode != "route" {
		return nil, fmt.Errorf("loadgen: unknown mode %q (dist or route)", opts.Mode)
	}
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.Warmup < 0 {
		opts.Warmup = 0
	} else if opts.Warmup == 0 {
		opts.Warmup = 500 * time.Millisecond
	}
	if opts.Conns <= 0 {
		opts.Conns = 4
	}
	if opts.Batch <= 0 {
		opts.Batch = 1
	}
	if opts.KeyDist == "" {
		opts.KeyDist = "uniform"
	}
	if opts.ZipfExp <= 0 {
		opts.ZipfExp = 1.1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opts.Conns,
		MaxIdleConnsPerHost: opts.Conns,
	}}
	defer client.CloseIdleConnections()

	// The server tells us the key space; failing here fails fast with a
	// useful error instead of a storm of 400s.
	info, err := fetchStats(ctx, client, opts.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("loadgen: probing %s: %w", opts.BaseURL, err)
	}
	if info.N < 2 {
		return nil, fmt.Errorf("loadgen: server key space has %d nodes", info.N)
	}

	keys, err := newKeySampler(opts.KeyDist, info.N, opts.ZipfExp)
	if err != nil {
		return nil, err
	}
	workers := make([]*loadWorker, opts.Conns)
	for i := range workers {
		workers[i] = &loadWorker{
			opts:   opts,
			client: client,
			keys:   keys,
			rng:    xrand.New(opts.Seed + uint64(i)*0x9e3779b97f4a7c15),
		}
	}

	if opts.Warmup > 0 {
		warmCtx, cancel := context.WithTimeout(ctx, opts.Warmup)
		var wg sync.WaitGroup
		for _, lw := range workers {
			wg.Add(1)
			go func(lw *loadWorker) {
				defer wg.Done()
				for warmCtx.Err() == nil {
					lw.fire(warmCtx, time.Time{})
				}
			}(lw)
		}
		wg.Wait()
		cancel()
		for _, lw := range workers {
			lw.reset()
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, opts.Duration+30*time.Second)
	defer cancel()
	start := time.Now()
	deadline := start.Add(opts.Duration)
	var next atomic.Int64 // open-loop request sequence number
	var wg sync.WaitGroup
	for _, lw := range workers {
		wg.Add(1)
		go func(lw *loadWorker) {
			defer wg.Done()
			if opts.Rate > 0 {
				interval := time.Duration(float64(time.Second) / opts.Rate)
				for {
					seq := next.Add(1) - 1
					scheduled := start.Add(time.Duration(seq) * interval)
					if scheduled.After(deadline) || runCtx.Err() != nil {
						return
					}
					if d := time.Until(scheduled); d > 0 {
						time.Sleep(d)
					}
					lw.fire(runCtx, scheduled)
				}
			}
			for time.Now().Before(deadline) && runCtx.Err() == nil {
				lw.fire(runCtx, time.Time{})
			}
		}(lw)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := &LoadResult{
		Mode: opts.Mode, KeyDist: opts.KeyDist, Batch: opts.Batch,
		Conns: opts.Conns, OpenLoop: opts.Rate > 0, TargetRate: opts.Rate,
		DurationS: elapsed,
	}
	var lats []float64
	for _, lw := range workers {
		res.Requests += lw.requests
		res.OK += lw.ok
		res.Shed429 += lw.shed429
		res.Timeouts += lw.timeouts
		res.Errors5xx += lw.errors5xx
		res.ConnErrors += lw.connErrors
		res.Retries += lw.retries
		lats = append(lats, lw.latencies...)
	}
	res.Errors = res.Requests - res.OK
	res.Queries = res.Requests * int64(opts.Batch)
	if elapsed > 0 {
		res.RequestsPerS = float64(res.Requests) / elapsed
		res.QueriesPerS = float64(res.Queries) / elapsed
		res.GoodputPerS = float64(res.OK*int64(opts.Batch)) / elapsed
	}
	// Percentiles cover only requests that ended OK, measured from their
	// scheduled send: failed requests report in the taxonomy, not as
	// (usually fast) latency samples that would flatter the distribution.
	res.Latency = percentiles(lats)

	if after, err := fetchStats(ctx, client, opts.BaseURL); err == nil {
		res.ServerFamily = after.Family
		res.ServerN = after.N
		res.ServerOracle = after.Oracle
		res.ServerPeakRSS = after.PeakRSSBytes
	}
	return res, nil
}

// serverInfo is the slice of /v1/stats the load generator needs.
type serverInfo struct {
	Family       string `json:"family"`
	N            int    `json:"n"`
	Oracle       string `json:"oracle"`
	PeakRSSBytes int64  `json:"peak_rss_bytes"`
}

func fetchStats(ctx context.Context, client *http.Client, base string) (*serverInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stats endpoint returned %s", resp.Status)
	}
	var info serverInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, err
	}
	return &info, nil
}

// keySampler draws query node ids; safe for concurrent use with per-worker
// RNGs (the alias table is read-only after construction).
type keySampler struct {
	n     int
	alias *sampler.Alias // nil → uniform
}

func newKeySampler(dist string, n int, zipfExp float64) (*keySampler, error) {
	switch dist {
	case "uniform":
		return &keySampler{n: n}, nil
	case "zipf":
		// Zipf over node ids: weight(i) ∝ 1/(i+1)^s.  This is the classic
		// skewed-popularity model for cache-unfriendly serving benchmarks.
		w := make([]float64, n)
		for i := range w {
			w[i] = math.Pow(float64(i+1), -zipfExp)
		}
		a, err := sampler.NewAlias(w)
		if err != nil {
			return nil, fmt.Errorf("loadgen: building zipf sampler: %w", err)
		}
		return &keySampler{n: n, alias: &a}, nil
	default:
		return nil, fmt.Errorf("loadgen: unknown key distribution %q (uniform or zipf)", dist)
	}
}

func (k *keySampler) draw(rng *xrand.RNG) int32 {
	if k.alias == nil {
		return int32(rng.Intn(k.n))
	}
	return k.alias.Draw(rng)
}

// attemptClass is the error taxonomy: every attempt lands in exactly one
// class, and the per-class counters separate "the server shed me" (429)
// from "the server timed out / was unready" (503, transport timeout) from
// "the server broke" (other 5xx) from "I never reached it" (connection
// errors).  Conflating these is how overload incidents get misdiagnosed.
type attemptClass int

const (
	attemptOK      attemptClass = iota
	attemptShed                 // HTTP 429: load shed, retryable
	attemptTimeout              // HTTP 503 or transport timeout, retryable
	attempt5xx                  // other 5xx, retryable
	attemptConn                 // transport/connection error, retryable
	attemptFatal                // 4xx etc.: retrying cannot help
)

// loadWorker is one client connection's state; owned by one goroutine.
type loadWorker struct {
	opts       LoadOptions
	client     *http.Client
	keys       *keySampler
	rng        *xrand.RNG
	body       bytes.Buffer
	requests   int64
	ok         int64
	shed429    int64
	timeouts   int64
	errors5xx  int64
	connErrors int64
	retries    int64
	latencies  []float64 // milliseconds, successful requests only
}

func (lw *loadWorker) reset() {
	lw.requests, lw.ok = 0, 0
	lw.shed429, lw.timeouts, lw.errors5xx, lw.connErrors, lw.retries = 0, 0, 0, 0, 0
	lw.latencies = lw.latencies[:0]
}

// fire sends one logical request (with retries when enabled).  A non-zero
// scheduled time is the open-loop arrival slot latency is measured from;
// otherwise (closed loop, warmup) latency starts at the actual send.
// Success-after-retry latency includes the backoff — that is the latency
// the caller experienced.
func (lw *loadWorker) fire(ctx context.Context, scheduled time.Time) {
	sent := time.Now()
	if scheduled.IsZero() {
		scheduled = sent
	}
	ok := lw.doRequest(ctx)
	if ctx.Err() != nil && !ok {
		return // cancellation mid-request is shutdown, not a server error
	}
	lw.requests++
	if ok {
		lw.ok++
		lw.latencies = append(lw.latencies, float64(time.Since(scheduled))/float64(time.Millisecond))
	}
}

// doRequest runs the attempt/backoff loop for one logical request: the
// same keys are resent on every attempt (a real client retries its
// request, not a fresh one), each failed attempt is counted in its class,
// and backoff is exponential from 10ms, capped at 500ms, with up to 25%
// jitter to keep retry storms from re-synchronising.
func (lw *loadWorker) doRequest(ctx context.Context) bool {
	method, url, payload := lw.buildRequest()
	for attempt := 0; ; attempt++ {
		c := lw.attempt(ctx, method, url, payload)
		switch c {
		case attemptOK:
			return true
		case attemptShed:
			lw.shed429++
		case attemptTimeout:
			lw.timeouts++
		case attempt5xx:
			lw.errors5xx++
		case attemptConn:
			lw.connErrors++
		case attemptFatal:
			return false
		}
		if attempt >= lw.opts.Retries {
			return false
		}
		back := 10 * time.Millisecond << attempt
		if back > 500*time.Millisecond {
			back = 500 * time.Millisecond
		}
		back += time.Duration(lw.rng.Intn(int(back)/4 + 1))
		lw.retries++
		select {
		case <-ctx.Done():
			return false
		case <-time.After(back):
		}
	}
}

// buildRequest draws the keys and renders the URL (batch 1) or JSON body
// (batch >1) once per logical request, so retries resend identical work.
func (lw *loadWorker) buildRequest() (method, url string, payload []byte) {
	n := int32(lw.keys.n)
	pair := func() (int32, int32) {
		u := lw.keys.draw(lw.rng)
		v := lw.keys.draw(lw.rng)
		if u == v {
			v = (v + 1) % n
		}
		return u, v
	}
	if lw.opts.Batch == 1 {
		u, v := pair()
		if lw.opts.Mode == "dist" {
			url = lw.opts.BaseURL + "/v1/dist?u=" + strconv.Itoa(int(u)) + "&v=" + strconv.Itoa(int(v))
		} else {
			url = lw.opts.BaseURL + "/v1/route?s=" + strconv.Itoa(int(u)) + "&t=" + strconv.Itoa(int(v))
			if lw.opts.Scheme != "" {
				url += "&scheme=" + lw.opts.Scheme
			}
			if lw.opts.Draw > 0 {
				url += "&draw=" + strconv.Itoa(lw.opts.Draw)
			}
		}
		return http.MethodGet, url, nil
	}
	lw.body.Reset()
	lw.body.WriteString(`{"pairs":[`)
	for i := 0; i < lw.opts.Batch; i++ {
		if i > 0 {
			lw.body.WriteByte(',')
		}
		u, v := pair()
		lw.body.WriteByte('[')
		lw.body.WriteString(strconv.Itoa(int(u)))
		lw.body.WriteByte(',')
		lw.body.WriteString(strconv.Itoa(int(v)))
		lw.body.WriteByte(']')
	}
	lw.body.WriteByte(']')
	if lw.opts.Mode == "route" && lw.opts.Scheme != "" {
		lw.body.WriteString(`,"scheme":"` + lw.opts.Scheme + `","draw":` + strconv.Itoa(lw.opts.Draw))
	}
	lw.body.WriteByte('}')
	return http.MethodPost, lw.opts.BaseURL + "/v1/" + lw.opts.Mode, lw.body.Bytes()
}

// attempt sends once and classifies the outcome.
func (lw *loadWorker) attempt(ctx context.Context, method, url string, payload []byte) attemptClass {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return attemptFatal
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := lw.client.Do(req)
	if err != nil {
		var t interface{ Timeout() bool }
		if errors.As(err, &t) && t.Timeout() {
			return attemptTimeout
		}
		return attemptConn
	}
	_, copyErr := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if copyErr != nil {
		return attemptConn
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return attemptOK
	case resp.StatusCode == http.StatusTooManyRequests:
		return attemptShed
	case resp.StatusCode == http.StatusServiceUnavailable:
		return attemptTimeout
	case resp.StatusCode >= 500:
		return attempt5xx
	default:
		return attemptFatal
	}
}

// percentiles summarises latencies (ms).
func percentiles(lats []float64) Percentiles {
	if len(lats) == 0 {
		return Percentiles{}
	}
	sort.Float64s(lats)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return lats[i]
	}
	sum := 0.0
	for _, l := range lats {
		sum += l
	}
	return Percentiles{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		P999: at(0.999),
		Max:  lats[len(lats)-1],
		Mean: sum / float64(len(lats)),
	}
}
