package serve

import (
	"testing"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// TestSelectTier pins the full ladder decision table: the exact tier when
// present, fields while affordable, landmarks only under pressure, and
// exactness over memory when there is nothing approximate to fall to.
func TestSelectTier(t *testing.T) {
	cases := []struct {
		exact            string
		fieldsAffordable bool
		haveLandmark     bool
		wantTier         string
		wantApprox       bool
	}{
		{"twohop", true, true, "twohop", false},
		{"twohop", false, true, "twohop", false}, // exact O(1) tier ignores memory pressure
		{"analytic", true, false, "analytic", false},
		{"", true, true, "field-cache", false},
		{"", true, false, "field-cache", false},
		{"", false, true, "landmark", true},
		{"", false, false, "field-cache", false}, // no approximate rung: stay exact
	}
	for _, c := range cases {
		tier, approx := selectTier(c.exact, c.fieldsAffordable, c.haveLandmark)
		if tier != c.wantTier || approx != c.wantApprox {
			t.Errorf("selectTier(%q, fields=%v, landmark=%v) = (%q, %v), want (%q, %v)",
				c.exact, c.fieldsAffordable, c.haveLandmark, tier, approx, c.wantTier, c.wantApprox)
		}
	}
}

// TestLiveInstanceRepairRestore pins the overlay lifecycle: repair touches
// only the shard's rows, concurrent shards compose, and full restore
// returns the *identical* original table pointer (byte-identical recovery
// by construction).
func TestLiveInstanceRepairRestore(t *testing.T) {
	n, workers := 100, 4
	table := make([]graph.NodeID, n)
	for u := range table {
		table[u] = graph.NodeID((u + 1) % n)
	}
	orig, err := augment.NewStatic("t", table)
	if err != nil {
		t.Fatal(err)
	}
	li := newLiveInstance("t", 0, orig)
	if inst, approx := li.load(); approx || inst != augment.Instance(orig) {
		t.Fatal("fresh overlay not serving the original table exactly")
	}

	rng := xrand.New(42)
	lo1, hi1 := shardRange(1, workers, n)
	if !li.repair(1, lo1, hi1, rng) {
		t.Fatal("repair of a healthy table reported failure")
	}
	inst, approx := li.load()
	if !approx {
		t.Fatal("repaired overlay not marked approximate")
	}
	got := inst.(*augment.Static).Contacts()
	for u := 0; u < n; u++ {
		inRange := u >= lo1 && u < hi1
		if !inRange && got[u] != table[u] {
			t.Fatalf("row %d outside shard 1's range changed", u)
		}
	}

	// A second shard repairs too; restoring shard 1 must keep shard 2's
	// rows repaired.
	lo2, hi2 := shardRange(2, workers, n)
	if !li.repair(2, lo2, hi2, rng) {
		t.Fatal("repair of shard 2 reported failure")
	}
	if !li.restore(1, lo1, hi1) {
		t.Fatal("restore of shard 1 reported failure")
	}
	inst, approx = li.load()
	if !approx {
		t.Fatal("overlay with shard 2 still dirty claims exact")
	}
	got = inst.(*augment.Static).Contacts()
	for u := lo1; u < hi1; u++ {
		if got[u] != table[u] {
			t.Fatalf("shard 1 row %d not restored", u)
		}
	}

	li.restore(2, lo2, hi2)
	inst, approx = li.load()
	if approx || inst != augment.Instance(orig) {
		t.Fatal("full restore did not snap back to the original table pointer")
	}
	// Restoring a shard that was never dirty is a no-op.
	li.restore(3, 0, n)
	if inst, _ := li.load(); inst != augment.Instance(orig) {
		t.Fatal("restore of a clean shard disturbed the table")
	}
}

func TestShardRangeCoversExactly(t *testing.T) {
	for _, n := range []int{1, 7, 100, 65536} {
		for _, w := range []int{1, 2, 3, 8} {
			prev := 0
			for id := 0; id < w; id++ {
				lo, hi := shardRange(id, w, n)
				if lo != prev {
					t.Fatalf("n=%d w=%d shard %d starts at %d, want %d", n, w, id, lo, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d w=%d ranges end at %d", n, w, prev)
			}
		}
	}
}
