package serve

import (
	"errors"
	"runtime"
	"sync"
	"time"

	"navaug/internal/fault"
	"navaug/internal/route"
	"navaug/internal/xrand"
)

// defaultWorkers sizes the pool at one worker per CPU: queries are pure
// compute, so extra workers only add scratch memory and queueing noise.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Pool submission errors, surfaced to handlers as load-shedding (429) and
// panic-isolation (500) responses respectively.
var (
	// ErrOverloaded means the bounded task queue was full at submission:
	// the request is shed rather than queued without bound.
	ErrOverloaded = errors.New("serve: worker queue full")
	// ErrPanicked means the task's closure panicked on the worker; the
	// worker recovered, rebuilt its scratch and counted the panic — the
	// request fails, the process does not.
	ErrPanicked = errors.New("serve: worker panicked")
	// ErrClosed means the pool shut down before a worker ran the task.
	ErrClosed = errors.New("serve: pool closed")
)

// Shard is the per-worker state of the query pool: a reusable routing
// scratch and a private RNG, owned exclusively by one worker goroutine —
// the same ownership discipline as sim.Engine's Monte Carlo workers, which
// is what lets query handlers route with zero per-request allocation and
// no locks on the hot path.
type Shard struct {
	ID      int
	Scratch *route.Scratch
	RNG     *xrand.RNG
}

type task struct {
	run  func(*Shard)
	done chan struct{}
	err  error // written (if at all) before done closes
}

// poolConfig wires the pool to its owner: fault injection, per-shard
// breaker tuning, and the quarantine lifecycle callbacks.  All callbacks
// run on the worker goroutine that owns the shard, so they may use
// shard.RNG and shard.Scratch freely.
type poolConfig struct {
	n, workers, queue int
	seed              uint64
	inj               *fault.Injector
	breakerThreshold  int
	breakerCooldown   time.Duration
	onPanic           func(*Shard) // after every recovered panic
	onTrip            func(*Shard) // breaker tripped open: quarantine-repair
	onRestore         func(*Shard) // half-open probe succeeded: restore
}

// pool is a fixed-size worker pool over Shards with a bounded queue.
// Requests submit closures with TryDo; each closure runs on exactly one
// worker with exclusive use of that worker's shard.  A full queue fails
// submission immediately (ErrOverloaded) instead of queueing without
// bound, which is what keeps p99 latency finite under overload: excess
// requests are shed at the door, not parked.  A panicking closure is
// recovered on the worker — the shard's breaker counts it, and enough
// consecutive panics quarantine just that shard while the rest of the
// pool keeps serving.
type pool struct {
	cfg      poolConfig
	tasks    chan *task
	stop     chan struct{}
	breakers []*breaker
	wg       sync.WaitGroup
	once     sync.Once
}

// newPool starts cfg.workers workers, each owning a Shard sized for an
// n-node graph.  Worker RNGs are split deterministically from cfg.seed.
func newPool(cfg poolConfig) *pool {
	p := &pool{
		cfg:      cfg,
		tasks:    make(chan *task, cfg.queue),
		stop:     make(chan struct{}),
		breakers: make([]*breaker, cfg.workers),
	}
	rngs := xrand.New(cfg.seed).SplitN(cfg.workers)
	for i := 0; i < cfg.workers; i++ {
		shard := &Shard{ID: i, Scratch: route.NewScratch(cfg.n), RNG: rngs[i]}
		br := newBreaker(cfg.breakerThreshold, cfg.breakerCooldown)
		p.breakers[i] = br
		p.wg.Add(1)
		go p.worker(shard, br)
	}
	return p
}

// worker is the shard's serving loop.  While the shard's breaker is open
// the worker refuses to pull tasks — they stay on the shared queue for
// healthy shards — and polls for the half-open transition.
func (p *pool) worker(shard *Shard, br *breaker) {
	defer p.wg.Done()
	poll := p.cfg.breakerCooldown / 8
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	for {
		if !br.Allow() {
			select {
			case <-p.stop:
				return
			case <-time.After(poll):
			}
			continue
		}
		t, ok := <-p.tasks
		if !ok {
			return
		}
		p.runTask(shard, br, t)
	}
}

// runTask executes one task under the shard's panic shield and breaker.
// Fault hooks fire here — a stalled shard sleeps, a poisoned shard panics
// — precisely because this is the layer the robustness machinery guards.
func (p *pool) runTask(shard *Shard, br *breaker, t *task) {
	defer close(t.done)
	panicked := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked = true
			}
		}()
		if d := p.cfg.inj.StallDelay(shard.ID); d > 0 {
			time.Sleep(d)
		}
		if p.cfg.inj.InjectPanic(shard.ID) {
			panic("fault: injected worker panic")
		}
		t.run(shard)
	}()
	if panicked {
		t.err = ErrPanicked
		// The scratch may hold a half-finished trial; rebuild it so the
		// shard's next answer starts clean.
		shard.Scratch = route.NewScratch(p.cfg.n)
		if p.cfg.onPanic != nil {
			p.cfg.onPanic(shard)
		}
		if br.Fail() && p.cfg.onTrip != nil {
			p.cfg.onTrip(shard)
		}
		return
	}
	if br.Success() && p.cfg.onRestore != nil {
		p.cfg.onRestore(shard)
	}
}

// TryDo runs fn on some worker's shard and waits for it to finish.  It
// never blocks on a full queue: submission either lands in the bounded
// queue or fails with ErrOverloaded on the spot.  ErrPanicked reports that
// fn started but died; the worker survived it.
func (p *pool) TryDo(fn func(*Shard)) error {
	t := &task{run: fn, done: make(chan struct{})}
	select {
	case p.tasks <- t:
	default:
		return ErrOverloaded
	}
	<-t.done
	return t.err
}

// TrippedBreakers counts shards currently quarantined or probing.
func (p *pool) TrippedBreakers() int {
	n := 0
	for _, br := range p.breakers {
		if br.Tripped() {
			n++
		}
	}
	return n
}

// Close stops the workers after the queued tasks drain; tasks stranded by
// quarantined workers fail with ErrClosed so no TryDo caller blocks
// forever.  TryDo must not be called after Close.
func (p *pool) Close() {
	p.once.Do(func() {
		close(p.stop)
		close(p.tasks)
	})
	p.wg.Wait()
	for t := range p.tasks {
		t.err = ErrClosed
		close(t.done)
	}
}
