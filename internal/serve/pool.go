package serve

import (
	"context"
	"runtime"
	"sync"

	"navaug/internal/route"
	"navaug/internal/xrand"
)

// defaultWorkers sizes the pool at one worker per CPU: queries are pure
// compute, so extra workers only add scratch memory and queueing noise.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Shard is the per-worker state of the query pool: a reusable routing
// scratch and a private RNG, owned exclusively by one worker goroutine —
// the same ownership discipline as sim.Engine's Monte Carlo workers, which
// is what lets query handlers route with zero per-request allocation and
// no locks on the hot path.
type Shard struct {
	ID      int
	Scratch *route.Scratch
	RNG     *xrand.RNG
}

type task struct {
	run  func(*Shard)
	done chan struct{}
}

// pool is a fixed-size worker pool over Shards.  Requests submit closures
// with Do; each closure runs on exactly one worker with exclusive use of
// that worker's shard.  Bounding the workers (rather than spawning per
// request) keeps p99 latency stable under overload: excess requests queue
// at the channel instead of thrashing the routing scratches.
type pool struct {
	tasks chan task
	wg    sync.WaitGroup
	once  sync.Once
}

// newPool starts workers goroutines, each owning a Shard sized for an
// n-node graph.  Worker RNGs are split deterministically from seed.
func newPool(n, workers int, seed uint64) *pool {
	p := &pool{tasks: make(chan task, workers)}
	rngs := xrand.New(seed).SplitN(workers)
	for i := 0; i < workers; i++ {
		shard := &Shard{ID: i, Scratch: route.NewScratch(n), RNG: rngs[i]}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range p.tasks {
				t.run(shard)
				close(t.done)
			}
		}()
	}
	return p
}

// Do runs fn on some worker's shard and waits for it to finish.  It
// returns early (without running fn) only when ctx is cancelled before a
// worker picks the task up.
func (p *pool) Do(ctx context.Context, fn func(*Shard)) error {
	t := task{run: fn, done: make(chan struct{})}
	select {
	case p.tasks <- t:
	case <-ctx.Done():
		return ctx.Err()
	}
	<-t.done
	return nil
}

// Close stops the workers after the queued tasks drain.  Do must not be
// called after Close.
func (p *pool) Close() {
	p.once.Do(func() { close(p.tasks) })
	p.wg.Wait()
}
