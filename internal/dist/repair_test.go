package dist_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"navaug/internal/dist"
	"navaug/internal/dist/disttest"
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// repairTestGraph builds a spanning path plus extra random edges — small
// enough for exhaustive conformance, cyclic enough that deletions both do
// and do not disconnect.
func repairTestGraph(n, extra int, seed uint64) *graph.Graph {
	rng := xrand.New(seed)
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	for i := 0; i < extra; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// churnStep builds one valid random delta batch against the current state
// of d: half deletions of existing edges, half insertions of non-edges.
func churnStep(d *graph.DynGraph, rng *xrand.RNG, k int) []graph.Delta {
	edges := d.Edges()
	deltas := make([]graph.Delta, 0, 2*k)
	pending := make(map[[2]int32]bool)
	for i := 0; i < k && len(edges) > 0; i++ {
		j := rng.Intn(len(edges))
		e := edges[j]
		edges[j] = edges[len(edges)-1]
		edges = edges[:len(edges)-1]
		deltas = append(deltas, graph.Delta{U: e.U, V: e.V, Op: graph.DeltaDelete})
		pending[[2]int32{e.U, e.V}] = true
	}
	n := d.N()
	for i := 0; i < k; i++ {
		for attempt := 0; attempt < 64; attempt++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if d.HasEdge(u, v) || pending[[2]int32{u, v}] {
				continue
			}
			pending[[2]int32{u, v}] = true
			deltas = append(deltas, graph.Delta{U: u, V: v, Op: graph.DeltaInsert})
			break
		}
	}
	return deltas
}

// TestDynTwoHopRepairMatchesRebuild pins the query-equivalence contract at
// every worker count: with an unlimited budget, the incrementally repaired
// oracle must answer exactly like a full rebuild — and like BFS ground
// truth — after every delta batch, including batches that disconnect and
// reconnect the graph.
func TestDynTwoHopRepairMatchesRebuild(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for _, packed := range []bool{false, true} {
			base := repairTestGraph(120, 40, 11)
			d := graph.NewDynGraph(base)
			oracle, err := dist.NewDynTwoHop(d, dist.TwoHopOptions{Workers: workers, Packed: packed})
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(99)
			for batch := 0; batch < 6; batch++ {
				deltas := churnStep(d, rng, 5)
				if _, err := oracle.ApplyBatch(d, deltas, -1); err != nil {
					t.Fatalf("workers=%d batch %d: %v", workers, batch, err)
				}
				if oracle.Debt() != 0 {
					t.Fatalf("workers=%d batch %d: debt %d under unlimited budget", workers, batch, oracle.Debt())
				}
				compacted := d.Compact()
				// Exhaustive conformance against BFS ground truth on the
				// current graph: repaired == rebuilt == exact.
				disttest.Exact(t, compacted, oracle)
				rebuilt := dist.NewTwoHopWith(compacted, dist.TwoHopOptions{Workers: workers})
				for probe := 0; probe < 200; probe++ {
					u := int32(rng.Intn(d.N()))
					v := int32(rng.Intn(d.N()))
					if got, want := oracle.Dist(u, v), rebuilt.Dist(u, v); got != want {
						t.Fatalf("workers=%d batch %d: Dist(%d,%d) = %d, rebuild says %d", workers, batch, u, v, got, want)
					}
				}
			}
		}
	}
}

// TestDynTwoHopBudgetedDebtDrains exercises the budget semantics: a zero
// budget only tracks debt (answers may be stale), small budgets drain it a
// few nodes per batch in deterministic order, and once the debt set is
// empty the oracle is exact again — without ever rebuilding.
func TestDynTwoHopBudgetedDebtDrains(t *testing.T) {
	base := repairTestGraph(100, 30, 5)
	d := graph.NewDynGraph(base)
	oracle, err := dist.NewDynTwoHop(d, dist.TwoHopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	dirty, err := oracle.ApplyBatch(d, churnStep(d, rng, 6), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) == 0 {
		t.Fatal("churn produced no dirty nodes")
	}
	if oracle.Debt() != len(dirty) {
		t.Fatalf("budget 0: debt %d, want the full dirty set %d", oracle.Debt(), len(dirty))
	}
	// Empty batches with a small budget are pure repair steps; the debt
	// must shrink by exactly the budget each time and reach zero.
	for oracle.Debt() > 0 {
		before := oracle.Debt()
		if _, err := oracle.ApplyBatch(d, nil, 4); err != nil {
			t.Fatal(err)
		}
		want := before - 4
		if want < 0 {
			want = 0
		}
		if oracle.Debt() != want {
			t.Fatalf("debt %d after repair step, want %d", oracle.Debt(), want)
		}
	}
	disttest.Exact(t, d.Compact(), oracle)
	st := oracle.Stats()
	if st.PatchedTotal != int64(len(dirty)) || st.DirtyTotal != int64(len(dirty)) {
		t.Fatalf("stats inconsistent: %+v vs %d dirty", st, len(dirty))
	}
}

// TestDynTwoHopGenerationMismatch is the regression pin for the loud
// generation check: a graph mutated behind the oracle's back must be
// rejected by ApplyBatch and CheckGen, never silently served.
func TestDynTwoHopGenerationMismatch(t *testing.T) {
	base := repairTestGraph(50, 10, 1)
	d := graph.NewDynGraph(base)
	oracle, err := dist.NewDynTwoHop(d, dist.TwoHopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Mutate the graph without telling the oracle.
	if err := d.Apply([]graph.Delta{{U: 0, V: 49, Op: graph.DeltaInsert}}); err != nil {
		t.Fatal(err)
	}
	if err := oracle.CheckGen(d.Gen()); err == nil {
		t.Fatal("CheckGen accepted a stale oracle")
	} else if !strings.Contains(err.Error(), "stale 2-hop oracle") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := oracle.ApplyBatch(d, nil, -1); err == nil {
		t.Fatal("ApplyBatch accepted a graph the oracle has not seen")
	}
	// Rebuild resynchronises.
	if err := oracle.Rebuild(d); err != nil {
		t.Fatal(err)
	}
	if err := oracle.CheckGen(d.Gen()); err != nil {
		t.Fatal(err)
	}
	disttest.Exact(t, d.Compact(), oracle)
	if oracle.Stats().Rebuilds != 2 {
		t.Fatalf("rebuilds = %d, want 2 (initial + explicit)", oracle.Stats().Rebuilds)
	}
}

// TestFieldCacheGeneration pins the stale-field guard: a generation-stamped
// cache serves FieldAt only at its own generation and fails loud otherwise.
func TestFieldCacheGeneration(t *testing.T) {
	g := repairTestGraph(40, 5, 2)
	c := dist.NewFieldCacheAt(g, 8, 7)
	if c.Generation() != 7 {
		t.Fatalf("generation = %d", c.Generation())
	}
	if _, err := c.FieldAt(0, 7); err != nil {
		t.Fatalf("matching generation rejected: %v", err)
	}
	if _, err := c.FieldAt(0, 8); err == nil {
		t.Fatal("stale generation served")
	} else if !strings.Contains(err.Error(), "stale field cache") {
		t.Fatalf("unexpected error: %v", err)
	}
	if dist.NewFieldCache(g, 8).Generation() != 0 {
		t.Fatal("plain caches must sit at generation 0")
	}
}

// TestDynTwoHopApplyQuerySoak is the concurrent apply/query soak the CI
// race job runs explicitly: one writer applies churn batches (state swaps
// via the atomic pointer) while readers hammer Dist throughout.  Readers
// assert invariants that hold in every state — symmetry on a stable
// snapshot is not one of them (a swap may interleave), but range sanity and
// self-distance are.
func TestDynTwoHopApplyQuerySoak(t *testing.T) {
	if testing.Short() {
		t.Skip("concurrency soak; run explicitly (the CI race job does)")
	}
	base := repairTestGraph(200, 80, 21)
	d := graph.NewDynGraph(base)
	oracle, err := dist.NewDynTwoHop(d, dist.TwoHopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	n := int32(d.N())
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			for !stop.Load() {
				u := int32(rng.Intn(int(n)))
				v := int32(rng.Intn(int(n)))
				dd := oracle.Dist(u, v)
				if dd < graph.Unreachable || dd >= n {
					t.Errorf("Dist(%d,%d) = %d out of range", u, v, dd)
					return
				}
				if oracle.Dist(u, u) != 0 {
					t.Errorf("Dist(%d,%d) != 0", u, u)
					return
				}
			}
		}(uint64(r + 1))
	}
	rng := xrand.New(77)
	for batch := 0; batch < 40; batch++ {
		budget := batch % 3 // exercise debt-carrying states too
		if _, err := oracle.ApplyBatch(d, churnStep(d, rng, 3), budget); err != nil {
			t.Fatal(err)
		}
		if batch%16 == 15 {
			d.Rebase()
			if err := oracle.Rebuild(d); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	// Drain the debt and finish exact.
	for oracle.Debt() > 0 {
		if _, err := oracle.ApplyBatch(d, nil, 16); err != nil {
			t.Fatal(err)
		}
	}
	disttest.Exact(t, d.Compact(), oracle)
}
