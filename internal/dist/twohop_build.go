package dist

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"navaug/internal/graph"
)

// This file holds the TwoHop construction engine.  The batch schedule —
// hubs processed in geometrically growing batches of at most
// twoHopMaxBatch, each batch pruning only against the labels committed by
// earlier batches — is fixed (see twoHopMaxBatch); what this engine changes
// is how one batch runs.  Instead of one pruned BFS per hub, a whole batch
// runs as a single bit-parallel multi-source BFS:
//
//   - Every node carries a 64-bit mask, one bit per batch root.  A level-
//     synchronous sweep ORs masks along edges, so the traversal work for up
//     to 64 roots collapses into one pass with one word-OR per edge.
//   - Pruning clears bits: when root k's arrival at node v is already
//     covered by the committed labels, bit k is dropped from v's
//     propagation mask — exactly the per-root prune, applied per bit.
//   - The coverage test runs once per (node, level) over the node's
//     committed label and answers all arrived roots at once: a rank-indexed
//     root-distance matrix holds dist(root_k, hub) in 16-bit lanes, and a
//     SWAR compare turns each label entry into a 4-roots-per-word coverage
//     nibble.  The label scan — the dominant cost on expander-like graphs,
//     where labels reach ~10^3 entries — is thus shared across the whole
//     batch instead of repeated per root.
//
// During construction each node's committed label is kept sorted by
// distance (a sorted run plus a small unsorted tail of recent additions,
// merged geometrically), not by hub rank: an entry (h, dhv) can only help
// cover an arrival at BFS distance d when dhv < d, so the distance-sorted
// scan stops at the first entry with dhv >= d — typically cutting the scan
// in half — and meets the near hubs most likely to certify coverage first.
// Hub-rank order is only needed by the final CSR pack, which sorts once.
//
// The result is byte-identical to running the per-root pruned BFS for each
// hub of the batch (twoHopScalarBFS below, also the fallback engine):
// level-synchronous per-bit propagation reaches node v at exactly the
// per-root pruned-BFS distance, the coverage test reads the same committed
// labels and the same root distances (coverage is an OR over label entries,
// so scan order cannot change it), and commits only need the per-node entry
// set — which batch-then-rank order fixes regardless of the engine, the
// worker count, or the order workers drain a level.
//
// Distances inside the bit-parallel engine live in 16-bit lanes, capped by
// twoHopMaxDepth; the rare graphs that exceed it mid-batch (diameter above
// ~16k, e.g. huge near-path graphs) bail out of the batch and fall back to
// the scalar engine permanently.  Both engines produce identical labels, so
// the switch point does not affect the output.

const (
	// twoHopInf16 is the "no entry" sentinel of the root-distance matrix
	// lanes.  It must never satisfy a coverage compare: compares test
	// lane <= T with T <= twoHopMaxDepth < twoHopInf16.
	twoHopInf16 = 0x3FFF
	// twoHopMaxDepth caps BFS depth and committed label distances for the
	// bit-parallel engine; beyond it 16-bit lanes could not represent
	// root-hub distances (and the SWAR compare, which needs every lane
	// strictly below 2^15, could see carries).
	twoHopMaxDepth = twoHopInf16 - 1
	// twoHopOnes16 has 1 in each of the four 16-bit lanes.
	twoHopOnes16 uint64 = 0x0001000100010001
	// twoHopHighs16 has the top bit of each 16-bit lane.
	twoHopHighs16 uint64 = 0x8000800080008000
	// twoHopSentinelRow is a root-distance word with every lane unset.
	twoHopSentinelRow uint64 = twoHopInf16 * twoHopOnes16
	// The 8-bit-lane counterparts: while every committed distance fits 7
	// bits — true for the expander-like families throughout their build —
	// the matrix packs 8 roots per word instead of 4, halving the words the
	// coverage scan touches.
	twoHopInf8                = 0x7F
	twoHopMaxDepth8           = twoHopInf8 - 1
	twoHopOnes8        uint64 = 0x0101010101010101
	twoHopHighs8       uint64 = 0x8080808080808080
	twoHopSentinelRow8 uint64 = twoHopInf8 * twoHopOnes8
	// twoHopMoveMask16/8 are movemask-by-multiply constants: with flag
	// bits only at the top bit of each lane, hit * K places lane j's flag
	// at result bit 60+j (16-bit lanes) / 56+j (8-bit lanes).  Every
	// partial product lands on a distinct bit (16(j-j') = 15(i'-i) and
	// 8(j-j') = 7(i'-i) have no non-zero solutions in lane range), so no
	// carries — the top nibble/byte is exactly the per-lane hit mask.
	twoHopMoveMask16 uint64 = 0x0000200040008001
	twoHopMoveMask8  uint64 = 0x0002040810204081
	// twoHopBPParallelMin is the level size below which processing a
	// bit-parallel level stays on one goroutine (fan-out costs more than
	// the work).
	twoHopBPParallelMin = 2048
	// twoHopBPChunk is the claim unit workers grab from a level's node
	// list.
	twoHopBPChunk = 256
	// twoHopTailMin / twoHopTailShare control when a node's unsorted tail
	// of fresh additions is folded into its sorted run: at twoHopTailMin
	// entries and at least 1/twoHopTailShare of the label.
	twoHopTailMin   = 48
	twoHopTailShare = 8
)

// twoHopAdditions is one root's label additions: the nodes the pruned BFS
// labeled, in visit order, with their BFS distances.
type twoHopAdditions struct {
	nodes []graph.NodeID
	dists []int32
}

// twoHopScratch is one scalar-engine worker's reusable state.
type twoHopScratch struct {
	dist     []int32 // per-node BFS distance, twoHopUnset when unvisited
	rootDist []int32 // per-hub-rank distance from the current root
	queue    []graph.NodeID
}

// twoHopBPWorker is one bit-parallel worker's private output buffers; kept
// per worker so a level can be drained without locks, then merged
// deterministically.
type twoHopBPWorker struct {
	// addNodes[k]/addDists[k] collect root k's label additions.  Within
	// one buffer distances are non-decreasing (levels are processed in
	// order), which commitBP exploits for max tracking.
	addNodes [twoHopMaxBatch][]graph.NodeID
	addDists [twoHopMaxBatch][]int32
	// curList collects the nodes that survived pruning this level (the
	// next level's frontier contribution).
	curList []graph.NodeID
	// arrived collects nodes first reached this batch, for O(visited)
	// scratch reset.
	arrived []graph.NodeID
}

// twoHopBPScratch is the bit-parallel engine's reusable state.
type twoHopBPScratch struct {
	// rd is the root-distance matrix: row h (a committed hub rank) holds
	// dist(root_k, hub_h) for the current batch's roots k in 16-bit lanes,
	// 4 lanes per word, words words per row; twoHopInf16 lanes mean "hub h
	// not in root k's label".  Rows revert to all-sentinel between batches
	// via touched.
	rd       []uint64
	words    int
	sentinel uint64 // all-unset row value for the current lane width
	touched  []int32
	// rdWordMask[h] flags which words of row h hold any real lane (bit w
	// set when some lane of word w is not the sentinel).  The coverage
	// scan intersects it with the words that still have uncovered
	// arrivals; for sparse batches most label entries hit an empty
	// intersection and skip the row entirely after one small-table load.
	rdWordMask []uint16
	// Per-node masks: seen accumulates the roots that have reached the
	// node this batch, propMask is the subset still propagating (arrived
	// uncovered), nextMask stages the next level's arrivals.
	seen     []uint64
	propMask []uint64
	nextMask []uint64
	curList  []graph.NodeID // current frontier (nodes with propMask bits)
	nextList []graph.NodeID // deduped nodes receiving nextMask bits
	arrived  []graph.NodeID // nodes with seen bits, for batch reset
	workers  []*twoHopBPWorker
}

// twoHopBuilder drives a full build: the batch loop, the engine choice per
// batch, and the shared committed-label state.
type twoHopBuilder struct {
	g       *graph.Graph
	n       int
	order   []graph.NodeID
	workers int

	// lab[v] is node v's committed label, one uint64 per entry packing
	// dist<<32 | hub-rank so the hot scan loads an entry in one read and
	// uint64 order is (dist, rank) order.  lab[v][:sortedLen[v]] is sorted
	// ascending, the rest is the unsorted tail of recent batch additions,
	// folded in by mergeTail once it outgrows its share.  Coverage scans
	// the sorted run with an early distance cutoff, then the (small) tail.
	lab       [][]uint64
	sortedLen []int32
	mergeBuf  []uint64 // scratch for the tail sort + merge (commit is serial)

	total   int64
	maxDist int32 // max committed label distance, gates the BP engine

	lanes8  bool // current batch runs 8-bit root-distance lanes
	bp8Dead bool // a batch exceeded twoHopMaxDepth8; stay on 16-bit lanes
	bpDead  bool // a batch exceeded twoHopMaxDepth; stay scalar
	bp      *twoHopBPScratch
	scalar  []*twoHopScratch
	results []twoHopAdditions
}

// twoHopBuildLabels runs the full pruned-labeling build and returns the
// per-node labels as packed rank<<32|dist entries with ranks strictly
// increasing, plus the total entry count.  ok is false when
// opts.MaxAvgLabel is set and exceeded.  The labels are a pure function of
// (graph, order): identical for every worker count and engine path.
func twoHopBuildLabels(g *graph.Graph, order []graph.NodeID, opts TwoHopOptions) (lab [][]uint64, total int64, ok bool) {
	n := g.N()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > twoHopMaxBatch {
		workers = twoHopMaxBatch
	}
	b := &twoHopBuilder{
		g:         g,
		n:         n,
		order:     order,
		workers:   workers,
		lab:       make([][]uint64, n),
		sortedLen: make([]int32, n),
	}
	budget := int64(-1)
	if opts.MaxAvgLabel > 0 {
		budget = int64(opts.MaxAvgLabel * float64(n))
	}
	// Test hooks: starting with an engine marked dead exercises the wider
	// engines on inputs the fast paths would otherwise own, so tests can
	// pin that every engine commits identical labels.
	b.bp8Dead = opts.force16 || opts.forceScalar
	b.bpDead = opts.forceScalar
	batch := 1
	for start := 0; start < n; {
		end := start + batch
		if end > n {
			end = n
		}
		// Engine choice per batch — a pure function of the committed labels
		// (via maxDist) and the batch's own BFS depth, never of worker
		// scheduling: 8-bit lanes while distances allow, 16-bit lanes
		// after, scalar once even those overflow.  A depth bailout redoes
		// the same batch with the next wider engine; all engines commit
		// identical labels.
		ran := false
		if !b.bpDead && b.maxDist <= twoHopMaxDepth {
			if !b.bp8Dead && b.maxDist <= twoHopMaxDepth8 {
				b.lanes8 = true
				ran = b.runBatchBP(start, end)
				if !ran {
					b.bp8Dead = true
				}
			}
			if !ran {
				b.lanes8 = false
				ran = b.runBatchBP(start, end)
				if !ran {
					b.bpDead = true
				}
			}
		}
		if ran {
			b.commitBP(start, end)
		} else {
			b.bpDead = true
			b.runBatchScalar(start, end)
		}
		if budget >= 0 && b.total > budget {
			return nil, 0, false
		}
		start = end
		if batch < twoHopMaxBatch {
			batch *= 2
		}
	}
	// Re-sort every label from construction (dist<<32|rank) order into the
	// rank-ascending (rank<<32|dist) order the query and serialisation
	// layers use: rotate each entry's halves, then sort.  Ranks are
	// distinct per node, so the result is unique.
	for v := 0; v < n; v++ {
		ents := b.lab[v]
		for i, e := range ents {
			ents[i] = e<<32 | e>>32
		}
		slices.Sort(ents)
	}
	return b.lab, b.total, true
}

// commitEntry appends one (rank, dist) label addition for node v, folding
// the unsorted tail into the sorted run whenever it exceeds its share.
// Called from the (serial) commit loops only.
func (b *twoHopBuilder) commitEntry(v graph.NodeID, rank, d int32) {
	b.lab[v] = append(b.lab[v], uint64(uint32(d))<<32|uint64(uint32(rank)))
	if tail := len(b.lab[v]) - int(b.sortedLen[v]); tail >= twoHopTailMin && tail*twoHopTailShare >= len(b.lab[v]) {
		b.mergeTail(v)
	}
}

// mergeTail sorts node v's tail additions by (dist, rank) and merges them
// into the sorted run.  Amortised cost is O(twoHopTailShare) moves per
// entry; the resulting order is a pure function of the entry set, so
// worker scheduling cannot perturb it.
func (b *twoHopBuilder) mergeTail(v graph.NodeID) {
	ents := b.lab[v]
	s := int(b.sortedLen[v])
	buf := append(b.mergeBuf[:0], ents[s:]...)
	b.mergeBuf = buf
	slices.Sort(buf)
	// Merge backward: sorted run ents[0:s] and the sorted tail in buf fill
	// ents back to front.  Keys (dist, rank) are unique.
	w := len(ents)
	i := s - 1
	for j := len(buf) - 1; j >= 0; j-- {
		t := buf[j]
		for i >= 0 && ents[i] > t {
			w--
			ents[w] = ents[i]
			i--
		}
		w--
		ents[w] = t
	}
	b.sortedLen[v] = int32(len(ents))
}

// ---------------------------------------------------------------------------
// Bit-parallel engine

// ensureBP sizes the bit-parallel scratch for a batch needing words
// root-distance words per row filled with sentinel (which fixes the lane
// width).
func (b *twoHopBuilder) ensureBP(words int, sentinel uint64) *twoHopBPScratch {
	bp := b.bp
	if bp == nil {
		bp = &twoHopBPScratch{
			seen:       make([]uint64, b.n),
			propMask:   make([]uint64, b.n),
			nextMask:   make([]uint64, b.n),
			rdWordMask: make([]uint16, b.n),
			workers:    make([]*twoHopBPWorker, b.workers),
			sentinel:   sentinel,
		}
		for w := range bp.workers {
			bp.workers[w] = &twoHopBPWorker{}
		}
		b.bp = bp
	}
	if len(bp.rd) < b.n*words || bp.sentinel != sentinel {
		// A lane-width switch refills the whole matrix; it happens at most
		// once per build (maxDist only grows).
		if len(bp.rd) < b.n*words {
			bp.rd = make([]uint64, b.n*words)
		}
		bp.sentinel = sentinel
		for i := range bp.rd {
			bp.rd[i] = sentinel
		}
	}
	bp.words = words
	return bp
}

// runBatchBP runs hubs [start, end) as one bit-parallel pruned multi-source
// BFS, leaving the additions in the worker buffers for commitBP.  It
// returns false — with all scratch state restored — when the BFS exceeds
// twoHopMaxDepth, in which case the caller falls back to the scalar
// engine.
func (b *twoHopBuilder) runBatchBP(start, end int) bool {
	B := end - start
	words := (B + 3) / 4
	maxDepth := int32(twoHopMaxDepth)
	sentinel := twoHopSentinelRow
	if b.lanes8 {
		words = (B + 7) / 8
		maxDepth = twoHopMaxDepth8
		sentinel = twoHopSentinelRow8
	}
	bp := b.ensureBP(words, sentinel)

	// Fill the root-distance matrix from the batch roots' committed
	// labels: lane k of row h gets dist(root_k, hub_h).
	for k := 0; k < B; k++ {
		root := b.order[start+k]
		if b.lanes8 {
			shift := uint(k&7) * 8
			for _, e := range b.lab[root] {
				h := int32(uint32(e))
				idx := int(h)*words + k>>3
				bp.rd[idx] = bp.rd[idx]&^(0xFF<<shift) | (e>>32)<<shift
				bp.rdWordMask[h] |= 1 << uint(k>>3)
				bp.touched = append(bp.touched, h)
			}
		} else {
			shift := uint(k&3) * 16
			for _, e := range b.lab[root] {
				h := int32(uint32(e))
				idx := int(h)*words + k>>2
				bp.rd[idx] = bp.rd[idx]&^(0xFFFF<<shift) | (e>>32)<<shift
				bp.rdWordMask[h] |= 1 << uint(k>>2)
				bp.touched = append(bp.touched, h)
			}
		}
	}

	// Seed the roots: each labels itself at distance 0 (its own hub rank
	// is not committed yet, so no coverage test can fire) and propagates
	// its bit.
	wk0 := bp.workers[0]
	for k := 0; k < B; k++ {
		root := b.order[start+k]
		bit := uint64(1) << uint(k)
		bp.seen[root] |= bit
		bp.propMask[root] |= bit
		bp.curList = append(bp.curList, root)
		bp.arrived = append(bp.arrived, root)
		wk0.addNodes[k] = append(wk0.addNodes[k], root)
		wk0.addDists[k] = append(wk0.addDists[k], 0)
	}

	ok := true
	for d := int32(1); len(bp.curList) > 0; d++ {
		if d > maxDepth {
			ok = false
			break
		}
		// Propagate: OR each frontier node's mask into its neighbours'
		// staging masks.  Serial — one word-OR per edge — so the nextList
		// dedup gives every staged node exactly one owner below.
		for _, u := range bp.curList {
			m := bp.propMask[u]
			for _, v := range b.g.Neighbors(u) {
				if bp.nextMask[v] == 0 {
					bp.nextList = append(bp.nextList, v)
				}
				bp.nextMask[v] |= m
			}
		}
		bp.curList = bp.curList[:0]
		b.processLevel(d)
		bp.nextList = bp.nextList[:0]
		for _, wk := range bp.workers {
			bp.curList = append(bp.curList, wk.curList...)
			bp.arrived = append(bp.arrived, wk.arrived...)
			wk.curList = wk.curList[:0]
			wk.arrived = wk.arrived[:0]
		}
	}

	// Restore the shared scratch (and, on bailout, the worker buffers) to
	// their all-clear state.  nextMask needs nothing: the depth check sits
	// before propagation, so the last processed level zeroed every entry.
	for _, v := range bp.arrived {
		bp.seen[v] = 0
		bp.propMask[v] = 0
	}
	bp.arrived = bp.arrived[:0]
	bp.curList = bp.curList[:0]
	for _, h := range bp.touched {
		row := bp.rd[int(h)*words:]
		for w := 0; w < words; w++ {
			row[w] = sentinel
		}
		bp.rdWordMask[h] = 0
	}
	bp.touched = bp.touched[:0]
	if !ok {
		for _, wk := range bp.workers {
			for k := 0; k < B; k++ {
				wk.addNodes[k] = wk.addNodes[k][:0]
				wk.addDists[k] = wk.addDists[k][:0]
			}
		}
	}
	return ok
}

// processLevel drains the staged arrivals of level d: coverage-tests every
// node on nextList and records survivors.  Parallel when the level is
// large; each staged node appears exactly once on nextList, so workers own
// disjoint nodes and all writes are race-free.
func (b *twoHopBuilder) processLevel(d int32) {
	bp := b.bp
	list := bp.nextList
	if len(list) < twoHopBPParallelMin || b.workers == 1 {
		b.processRange(bp.workers[0], list, d)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < b.workers; w++ {
		wg.Add(1)
		go func(wk *twoHopBPWorker) {
			defer wg.Done()
			for {
				lo := int(next.Add(twoHopBPChunk) - twoHopBPChunk)
				if lo >= len(list) {
					return
				}
				hi := lo + twoHopBPChunk
				if hi > len(list) {
					hi = len(list)
				}
				b.processRange(wk, list[lo:hi], d)
			}
		}(bp.workers[w])
	}
	wg.Wait()
}

// processRange handles a slice of level-d staged nodes: consume the staging
// mask, drop already-seen bits, coverage-test the rest, and record label
// additions and the propagating survivors.
func (b *twoHopBuilder) processRange(wk *twoHopBPWorker, list []graph.NodeID, d int32) {
	bp := b.bp
	for _, v := range list {
		nm := bp.nextMask[v]
		bp.nextMask[v] = 0
		arr := nm &^ bp.seen[v]
		if arr == 0 {
			continue
		}
		if bp.seen[v] == 0 {
			wk.arrived = append(wk.arrived, v)
		}
		bp.seen[v] |= arr
		var cov uint64
		if b.lanes8 {
			cov = b.coverage8(v, arr, d)
		} else {
			cov = b.coverage16(v, arr, d)
		}
		surv := arr &^ cov
		if surv == 0 {
			continue
		}
		bp.propMask[v] = surv
		wk.curList = append(wk.curList, v)
		for s := surv; s != 0; s &= s - 1 {
			k := bits.TrailingZeros64(s)
			wk.addNodes[k] = append(wk.addNodes[k], v)
			wk.addDists[k] = append(wk.addDists[k], d)
		}
	}
}

// coverage16 returns the subset of the arrival bits arr whose roots are
// covered at (v, d): root k is covered when some committed entry (h, dhv)
// of v's label satisfies dist(root_k, h) + dhv <= d.  One scan of v's
// label answers every arrived root: each entry becomes a per-root
// threshold test dist(root_k, h) <= d - dhv, evaluated four roots per word
// by an exact SWAR lane compare.  The scan runs over the distance-sorted
// run first — stopping at the first entry with dhv >= d, which no
// remaining entry can beat — and then over the small unsorted tail.  Words
// are visited only when they both hold a real lane of the entry's row
// (rdWordMask) and still have an uncovered arrival; most entries fail the
// intersection and never touch the matrix.
func (b *twoHopBuilder) coverage16(v graph.NodeID, arr uint64, d int32) uint64 {
	bp := b.bp
	rd := bp.rd
	wm := bp.rdWordMask
	words := bp.words
	ents := b.lab[v]
	var cov uint64
	rem := arr
	// remWW mirrors rem as a bit-per-word mask: bit w set when any of
	// word w's four roots is still uncovered.
	remWW := twoHopNibbleMask(rem)
	s := int(b.sortedLen[v])
	i, end := 0, s
	for pass := 0; pass < 2; pass++ {
		for ; i < end; i++ {
			e := ents[i]
			T := d - int32(e>>32)
			if T <= 0 {
				if pass == 0 {
					// Sorted by distance: no later run entry can help
					// (an entry with dhv >= d could only cover a root at
					// distance <= 0 from its hub — impossible, batch
					// roots are uncommitted).
					break
				}
				continue
			}
			h := uint32(e)
			mw := uint64(wm[h]) & remWW
			if mw == 0 {
				continue
			}
			// Exact 4-lane "lane <= T" compare: with every lane below
			// 2^15 (lanes cap at twoHopInf16, T+1 at twoHopMaxDepth+1),
			// setting the lane top bits before subtracting T+1 keeps each
			// lane's borrow inside the lane, so the surviving top bit is
			// exactly "lane < T+1".  (The classic hasless() trick is NOT
			// exact per lane — a lower lane's borrow can corrupt upper
			// lanes.)
			D := uint64(uint32(T+1)) * twoHopOnes16
			base := int(h) * words
			hitAny := false
			for ; mw != 0; mw &= mw - 1 {
				w := bits.TrailingZeros64(mw)
				z := (rd[base+w] | twoHopHighs16) - D
				hit := ^z & twoHopHighs16
				if hit == 0 {
					continue
				}
				cov |= (hit * twoHopMoveMask16 >> 60) << uint(w*4)
				hitAny = true
			}
			if hitAny {
				// Late in a scan most hits re-flag already-covered
				// lanes; only refresh the word mask when a root was
				// newly covered.
				if nr := arr &^ cov; nr != rem {
					if nr == 0 {
						return cov
					}
					rem = nr
					remWW = twoHopNibbleMask(nr)
				}
			}
		}
		i, end = s, len(ents)
	}
	return cov
}

// coverage8 is coverage16 for 8-bit root-distance lanes: 8 roots per word,
// same exact SWAR compare one bit-width down (every lane stays below 2^7,
// so per-lane borrows cannot escape their byte).
func (b *twoHopBuilder) coverage8(v graph.NodeID, arr uint64, d int32) uint64 {
	bp := b.bp
	rd := bp.rd
	wm := bp.rdWordMask
	words := bp.words
	ents := b.lab[v]
	var cov uint64
	rem := arr
	remWW := twoHopByteMask(rem)
	s := int(b.sortedLen[v])
	i, end := 0, s
	for pass := 0; pass < 2; pass++ {
		for ; i < end; i++ {
			e := ents[i]
			T := d - int32(e>>32)
			if T <= 0 {
				if pass == 0 {
					break
				}
				continue
			}
			h := uint32(e)
			mw := uint64(wm[h]) & remWW
			if mw == 0 {
				continue
			}
			D := uint64(uint32(T+1)) * twoHopOnes8
			base := int(h) * words
			hitAny := false
			for ; mw != 0; mw &= mw - 1 {
				w := bits.TrailingZeros64(mw)
				z := (rd[base+w] | twoHopHighs8) - D
				hit := ^z & twoHopHighs8
				if hit == 0 {
					continue
				}
				cov |= (hit * twoHopMoveMask8 >> 56) << uint(w*8)
				hitAny = true
			}
			if hitAny {
				// As in coverage16: refresh the word mask only when a
				// root was newly covered.
				if nr := arr &^ cov; nr != rem {
					if nr == 0 {
						return cov
					}
					rem = nr
					remWW = twoHopByteMask(nr)
				}
			}
		}
		i, end = s, len(ents)
	}
	return cov
}

// twoHopByteMask collapses each 8-bit root group of m into one bit: bit w
// of the result is set exactly when any of bits 8w..8w+7 of m is.  (Only
// shift 7w moves a flag bit at 8w into the low byte, so the cascade is
// alias-free after masking.)
func twoHopByteMask(m uint64) uint64 {
	m |= m >> 1
	m |= m >> 2
	m |= m >> 4
	m &= 0x0101010101010101
	return (m | m>>7 | m>>14 | m>>21 | m>>28 | m>>35 | m>>42 | m>>49) & 0xFF
}

// twoHopNibbleMask collapses each 4-bit root group of m into one bit: bit
// w of the result is set exactly when any of bits 4w..4w+3 of m is.
func twoHopNibbleMask(m uint64) uint64 {
	m |= m >> 1
	m |= m >> 2
	m &= 0x1111111111111111
	// One flag bit per nibble (at position 4w); compress to one bit per
	// position with a shift-or cascade.
	m = (m | m>>3) & 0x0303030303030303
	m = (m | m>>6) & 0x000F000F000F000F
	m = (m | m>>12) & 0x000000FF000000FF
	m = (m | m>>24) & 0xFFFF
	return m
}

// commitBP appends the batch's label additions.  Each node gains at most
// one entry per root, the k-ascending outer loop fixes the tail append
// order, and the merged order is by (dist, rank) — all pure functions of
// the entry set, so the committed bytes do not depend on how additions
// were split across workers.
func (b *twoHopBuilder) commitBP(start, end int) {
	bp := b.bp
	for k := 0; k < end-start; k++ {
		rank := int32(start + k)
		for _, wk := range bp.workers {
			nodes, dists := wk.addNodes[k], wk.addDists[k]
			for i, v := range nodes {
				b.commitEntry(v, rank, dists[i])
			}
			b.total += int64(len(nodes))
			if len(dists) > 0 {
				// Per-buffer distances are non-decreasing (levels are
				// processed in order), so the last one is the buffer max.
				if last := dists[len(dists)-1]; last > b.maxDist {
					b.maxDist = last
				}
			}
			wk.addNodes[k] = nodes[:0]
			wk.addDists[k] = dists[:0]
		}
	}
}

// ---------------------------------------------------------------------------
// Scalar engine (fallback for graphs deeper than the 16-bit lane budget)

// runBatchScalar runs hubs [start, end) as independent per-root pruned
// BFSes (in parallel across roots) and commits in hub order — the original
// engine, producing the same labels as the bit-parallel path.
func (b *twoHopBuilder) runBatchScalar(start, end int) {
	if b.scalar == nil {
		b.scalar = make([]*twoHopScratch, b.workers)
		for w := range b.scalar {
			sc := &twoHopScratch{
				dist:     make([]int32, b.n),
				rootDist: make([]int32, b.n),
				queue:    make([]graph.NodeID, 0, b.n),
			}
			for i := 0; i < b.n; i++ {
				sc.dist[i] = twoHopUnset
				sc.rootDist[i] = twoHopUnset
			}
			b.scalar[w] = sc
		}
		b.results = make([]twoHopAdditions, twoHopMaxBatch)
	}
	var next atomic.Int64
	next.Store(int64(start))
	var wg sync.WaitGroup
	for w := 0; w < b.workers; w++ {
		wg.Add(1)
		go func(sc *twoHopScratch) {
			defer wg.Done()
			for {
				k := int(next.Add(1) - 1)
				if k >= end {
					return
				}
				b.results[k-start] = b.scalarBFS(b.order[k], sc)
			}
		}(b.scalar[w])
	}
	wg.Wait()
	for k := start; k < end; k++ {
		res := b.results[k-start]
		for i, v := range res.nodes {
			b.commitEntry(v, int32(k), res.dists[i])
		}
		b.total += int64(len(res.nodes))
		if len(res.dists) > 0 {
			if last := res.dists[len(res.dists)-1]; last > b.maxDist {
				b.maxDist = last
			}
		}
		b.results[k-start] = twoHopAdditions{}
	}
}

// scalarBFS runs the pruned BFS from root against the committed labels: a
// node u reached at distance d is labeled (and expanded) only if no
// committed two-hop path already certifies dist(root, u) <= d.
func (b *twoHopBuilder) scalarBFS(root graph.NodeID, sc *twoHopScratch) twoHopAdditions {
	rootEnts := b.lab[root]
	for _, e := range rootEnts {
		sc.rootDist[uint32(e)] = int32(e >> 32)
	}
	queue := sc.queue[:0]
	queue = append(queue, root)
	sc.dist[root] = 0
	var out twoHopAdditions
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := sc.dist[u]
		// Prune when the committed labels already answer dist(root, u):
		// every two-hop estimate is an upper bound, so estimate <= du
		// means it equals the true distance and this entry is redundant.
		// The sorted run allows the same distance cutoff as coverage; the
		// unsorted tail is scanned in full.
		covered := false
		ents := b.lab[u]
		i, end := 0, int(b.sortedLen[u])
		for pass := 0; pass < 2 && !covered; pass++ {
			for ; i < end; i++ {
				e := ents[i]
				dhv := int32(e >> 32)
				if dhv >= du {
					if pass == 0 {
						break // sorted: no later run entry can help
					}
					continue
				}
				if rd := sc.rootDist[uint32(e)]; rd >= 0 && rd+dhv <= du {
					covered = true
					break
				}
			}
			i, end = int(b.sortedLen[u]), len(ents)
		}
		if covered {
			continue
		}
		out.nodes = append(out.nodes, u)
		out.dists = append(out.dists, du)
		for _, v := range b.g.Neighbors(u) {
			if sc.dist[v] == twoHopUnset {
				sc.dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	// Reset the touched scratch entries so the next BFS starts clean.
	for _, u := range queue {
		sc.dist[u] = twoHopUnset
	}
	for _, e := range rootEnts {
		sc.rootDist[uint32(e)] = twoHopUnset
	}
	sc.queue = queue
	return out
}
