package dist

import (
	"sync"
	"testing"

	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

func TestCeilLog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{16, 4}, {17, 5}, {64, 6}, {1000, 10}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := CeilLog2(c.n); got != c.want {
			t.Errorf("CeilLog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// testGraphs is the shared cross-check corpus: assorted shapes including a
// disconnected graph.
func testGraphs() []*graph.Graph {
	rng := xrand.New(42)
	return []*graph.Graph{
		gen.Path(1),
		gen.Path(30),
		gen.Cycle(25),
		gen.Grid2D(7, 9),
		gen.ConnectedGNP(60, 0.08, rng),
		gen.RandomTree(40, rng),
		graph.NewBuilder(6).AddEdge(0, 1).AddEdge(1, 2).AddEdge(3, 4).Build(), // disconnected + isolated node
	}
}

func TestAPSPMatchesBFS(t *testing.T) {
	for _, g := range testGraphs() {
		a := NewAPSP(g)
		for u := 0; u < g.N(); u++ {
			want := g.BFS(graph.NodeID(u))
			row := a.Row(graph.NodeID(u))
			for v := 0; v < g.N(); v++ {
				if row[v] != want[v] {
					t.Fatalf("%v: APSP(%d,%d) = %d, BFS says %d", g, u, v, row[v], want[v])
				}
				if a.Dist(graph.NodeID(u), graph.NodeID(v)) != want[v] {
					t.Fatalf("%v: Dist(%d,%d) disagrees with Row", g, u, v)
				}
			}
		}
	}
}

func TestAPSPDeterministicAcrossWorkers(t *testing.T) {
	g := gen.ConnectedGNP(120, 0.05, xrand.New(7))
	ref := NewAPSPWith(g, APSPOptions{Workers: 1})
	for _, workers := range []int{2, 3, 8, 200} {
		a := NewAPSPWith(g, APSPOptions{Workers: workers})
		for i := range ref.d {
			if a.d[i] != ref.d[i] {
				t.Fatalf("workers=%d: matrix differs at index %d", workers, i)
			}
		}
	}
}

func TestAPSPDiameterAndEccentricity(t *testing.T) {
	g := gen.Grid2D(5, 8)
	a := NewAPSP(g)
	if d, want := a.Diameter(), g.Diameter(); d != want {
		t.Fatalf("diameter %d, want %d", d, want)
	}
	if e, want := a.Eccentricity(0), g.Eccentricity(0); e != want {
		t.Fatalf("eccentricity %d, want %d", e, want)
	}
	dis := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).Build()
	if NewAPSP(dis).Diameter() != -1 {
		t.Fatal("disconnected diameter should be -1")
	}
	if NewAPSP(graph.NewBuilder(0).Build()).Diameter() != 0 {
		t.Fatal("empty graph diameter should be 0")
	}
}

func TestBallMatchesBFSBounded(t *testing.T) {
	for _, g := range testGraphs() {
		if g.N() == 0 {
			continue
		}
		for _, radius := range []int32{0, 1, 2, 5, int32(g.N())} {
			for u := 0; u < g.N(); u += 3 {
				src := graph.NodeID(u)
				nodes, dists := BallWithDists(g, src, radius)
				wantNodes, wantDists := g.BFSBounded(src, radius)
				if len(nodes) != len(wantNodes) {
					t.Fatalf("%v: |B(%d,%d)| = %d, BFSBounded says %d", g, u, radius, len(nodes), len(wantNodes))
				}
				got := make(map[graph.NodeID]int32, len(nodes))
				for i, v := range nodes {
					got[v] = dists[i]
				}
				for i, v := range wantNodes {
					if got[v] != wantDists[i] {
						t.Fatalf("%v: ball dist of %d is %d, want %d", g, v, got[v], wantDists[i])
					}
				}
				// Distances must come out non-decreasing, src first.
				if nodes[0] != src || dists[0] != 0 {
					t.Fatalf("ball must start at src")
				}
				for i := 1; i < len(dists); i++ {
					if dists[i] < dists[i-1] {
						t.Fatalf("ball distances not sorted: %v", dists)
					}
				}
			}
		}
	}
	if Ball(gen.Path(5), 0, -1) != nil {
		t.Fatal("negative radius must yield nil")
	}
}

func TestBallBufferReuse(t *testing.T) {
	g := gen.Grid2D(10, 10)
	b := NewBallBuffer(g.N())
	want := Ball(g, 37, 3)
	for i := 0; i < 100; i++ {
		nodes, dists := b.Ball(g, 37, 3)
		if len(nodes) != len(want) || len(dists) != len(nodes) {
			t.Fatalf("iteration %d: ball size changed: %d vs %d", i, len(nodes), len(want))
		}
		for j, v := range want {
			if nodes[j] != v {
				t.Fatalf("iteration %d: ball contents changed", i)
			}
		}
	}
	// Epoch wrap-around must not corrupt results.
	b.epoch = -2
	nodes, _ := b.Ball(g, 37, 3)
	if len(nodes) != len(want) {
		t.Fatalf("pre-wrap ball size %d, want %d", len(nodes), len(want))
	}
	nodes, _ = b.Ball(g, 37, 3) // epoch wraps to 0 → reset path
	if len(nodes) != len(want) {
		t.Fatalf("post-wrap ball size %d, want %d", len(nodes), len(want))
	}
}

func TestEstimateDiameterBounds(t *testing.T) {
	rng := xrand.New(3)
	if EstimateDiameter(graph.NewBuilder(0).Build(), 4, rng) != 0 {
		t.Fatal("empty graph estimate should be 0")
	}
	// Exact on trees (double sweep from any start).
	for _, g := range []*graph.Graph{gen.Path(50), gen.RandomTree(80, rng), gen.Star(20)} {
		if est, want := EstimateDiameter(g, 1, rng), g.Diameter(); est != want {
			t.Fatalf("%v: tree estimate %d, want exact %d", g, est, want)
		}
	}
	// On general connected graphs: a lower bound, never below half.
	for _, g := range []*graph.Graph{gen.Grid2D(9, 13), gen.Cycle(31), gen.ConnectedGNP(70, 0.07, rng)} {
		diam := g.Diameter()
		est := EstimateDiameter(g, 4, rng)
		if est > diam {
			t.Fatalf("%v: estimate %d exceeds diameter %d", g, est, diam)
		}
		if int32(2)*est < diam {
			t.Fatalf("%v: estimate %d below half the diameter %d", g, est, diam)
		}
	}
}

func TestExtremalPair(t *testing.T) {
	if a, b, d := ExtremalPair(graph.NewBuilder(0).Build()); a != 0 || b != 0 || d != 0 {
		t.Fatalf("empty graph pair (%d,%d,%d)", a, b, d)
	}
	// On a path the double sweep is exact: sweep one finds an end, sweep two
	// the other, and the distance is the diameter.
	a, b, d := ExtremalPair(gen.Path(50))
	if d != 49 {
		t.Fatalf("path extremal distance %d, want 49", d)
	}
	if !(a == 49 && b == 0) && !(a == 0 && b == 49) {
		t.Fatalf("path extremal pair (%d,%d), want the two ends", a, b)
	}
	// General connected graphs: the endpoints realise the returned distance
	// and it is a valid diameter lower bound.
	g := gen.Grid2D(8, 11)
	a, b, d = ExtremalPair(g)
	if got := g.BFS(a)[b]; got != d {
		t.Fatalf("extremal endpoints at distance %d, reported %d", got, d)
	}
	if diam := g.Diameter(); d > diam || 2*d < diam {
		t.Fatalf("extremal distance %d outside [diam/2, diam] for diameter %d", d, diam)
	}
	// Deterministic: a pure function of the graph.
	a2, b2, d2 := ExtremalPair(g)
	if a2 != a || b2 != b || d2 != d {
		t.Fatal("ExtremalPair is not deterministic")
	}
}

func TestLandmarkOracleBounds(t *testing.T) {
	rng := xrand.New(5)
	for _, g := range []*graph.Graph{gen.Path(40), gen.Grid2D(8, 8), gen.ConnectedGNP(80, 0.06, rng)} {
		exact := NewAPSP(g)
		for _, k := range []int{1, 4, 16} {
			o := NewLandmarkOracle(g, k, xrand.New(9))
			if o.K() != k {
				t.Fatalf("K() = %d, want %d", o.K(), k)
			}
			for u := 0; u < g.N(); u++ {
				for v := 0; v < g.N(); v++ {
					lo, hi := o.Bounds(graph.NodeID(u), graph.NodeID(v))
					d := exact.Dist(graph.NodeID(u), graph.NodeID(v))
					if lo > d || d > hi {
						t.Fatalf("%v k=%d: bounds [%d,%d] miss exact %d for (%d,%d)", g, k, lo, hi, d, u, v)
					}
					if o.Dist(graph.NodeID(u), graph.NodeID(v)) != hi {
						t.Fatalf("Dist must equal the upper bound")
					}
				}
			}
		}
	}
}

func TestLandmarkOracleExactThroughLandmarks(t *testing.T) {
	// With a landmark on every node the upper bound is exact.
	g := gen.Cycle(12)
	o := NewLandmarkOracle(g, 12, xrand.New(1))
	exact := NewAPSP(g)
	for u := 0; u < 12; u++ {
		for v := 0; v < 12; v++ {
			if o.Dist(graph.NodeID(u), graph.NodeID(v)) != exact.Dist(graph.NodeID(u), graph.NodeID(v)) {
				t.Fatalf("full landmark set not exact at (%d,%d)", u, v)
			}
		}
	}
}

func TestLandmarkOracleDisconnected(t *testing.T) {
	g := graph.NewBuilder(6).AddEdge(0, 1).AddEdge(1, 2).AddEdge(3, 4).AddEdge(4, 5).Build()
	// Farthest-point selection must claim both components by k=2.
	o := NewLandmarkOracle(g, 2, xrand.New(2))
	if d := o.Dist(0, 5); d != graph.Unreachable {
		t.Fatalf("cross-component Dist = %d, want Unreachable", d)
	}
	if d := o.Dist(0, 2); d == graph.Unreachable {
		t.Fatal("in-component pair reported unreachable")
	}
	if lo, hi := o.Bounds(3, 3); lo != 0 || hi != 0 {
		t.Fatalf("self pair bounds [%d,%d], want [0,0]", lo, hi)
	}
}

func TestLandmarkOracleDeterministic(t *testing.T) {
	g := gen.ConnectedGNP(100, 0.05, xrand.New(11))
	a := NewLandmarkOracle(g, 8, xrand.New(33))
	b := NewLandmarkOracle(g, 8, xrand.New(33))
	for i, l := range a.Landmarks() {
		if b.Landmarks()[i] != l {
			t.Fatal("same seed picked different landmarks")
		}
	}
}

func TestFieldCache(t *testing.T) {
	g := gen.Grid2D(12, 12)
	c := NewFieldCache(g, 0)
	f1 := c.Field(17)
	want := g.BFS(17)
	for v := range want {
		if f1[v] != want[v] {
			t.Fatalf("cached field differs from BFS at %d", v)
		}
	}
	f2 := c.Field(17)
	if &f1[0] != &f2[0] {
		t.Fatal("second lookup did not reuse the cached field")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestFieldCacheEviction(t *testing.T) {
	g := gen.Path(30)
	c := NewFieldCache(g, 3)
	for src := 0; src < 10; src++ {
		c.Field(graph.NodeID(src))
	}
	if c.Len() != 3 {
		t.Fatalf("capacity 3 cache holds %d fields", c.Len())
	}
	// Evicted entries recompute correctly.
	if d := c.Field(0); d[29] != 29 {
		t.Fatalf("recomputed field wrong: %d", d[29])
	}
}

func TestFieldCacheConcurrent(t *testing.T) {
	g := gen.Grid2D(20, 20)
	c := NewFieldCache(g, 0)
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				src := graph.NodeID((w*31 + i*7) % g.N())
				f := c.Field(src)
				if f[src] != 0 || len(f) != g.N() {
					errs <- "bad field"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestNewOracleSelection(t *testing.T) {
	small := gen.Grid2D(10, 10)
	if _, ok := NewOracle(small, nil).(*APSP); !ok {
		t.Fatal("small graph should get the exact APSP oracle")
	}
	big := gen.Path(apspMaxNodes + 10)
	o := NewOracle(big, xrand.New(1))
	lm, ok := o.(*LandmarkOracle)
	if !ok {
		t.Fatal("large graph should get the landmark oracle")
	}
	// Landmark estimates on a path must stay within the triangle bounds.
	if d := lm.Dist(0, 100); d < 100 {
		t.Fatalf("upper bound %d below exact distance 100", d)
	}
}

// TestNewOracleNilRNGIsPinned: large graphs with a nil rng must select
// landmarks from the pinned FixedOracleSeed, so repeated constructions
// report identical distances (large-graph oracle selection is reproducibly
// deterministic) and match an explicit rng carrying the same seed.
func TestNewOracleNilRNGIsPinned(t *testing.T) {
	if FixedOracleSeed != 1 {
		t.Fatalf("FixedOracleSeed changed to %d; this silently changes every nil-rng landmark oracle", FixedOracleSeed)
	}
	g := gen.Cycle(apspMaxNodes + 100) // just past the exact-matrix tier
	a := NewOracle(g, nil)
	b := NewOracle(g, nil)
	c := NewOracle(g, xrand.New(FixedOracleSeed))
	if _, ok := a.(*LandmarkOracle); !ok {
		t.Fatalf("expected the landmark tier above %d nodes, got %T", apspMaxNodes, a)
	}
	rng := xrand.New(3)
	for trial := 0; trial < 2000; trial++ {
		u := graph.NodeID(rng.Intn(g.N()))
		v := graph.NodeID(rng.Intn(g.N()))
		da, db, dc := a.Dist(u, v), b.Dist(u, v), c.Dist(u, v)
		if da != db {
			t.Fatalf("two nil-rng oracles disagree at (%d,%d): %d vs %d", u, v, da, db)
		}
		if da != dc {
			t.Fatalf("nil-rng oracle disagrees with explicit FixedOracleSeed at (%d,%d): %d vs %d", u, v, da, dc)
		}
	}
}

// TestFieldSource: the BFS-field adapter must report the wrapped field's
// values and its root.
func TestFieldSource(t *testing.T) {
	g := gen.Grid2D(7, 9)
	tgt := graph.NodeID(17)
	d := g.BFS(tgt)
	f := NewField(d, tgt)
	if f.Target() != tgt {
		t.Fatalf("Target()=%d, want %d", f.Target(), tgt)
	}
	if f.Dist(tgt, tgt) != 0 {
		t.Fatal("field not rooted at its target")
	}
	for u := 0; u < g.N(); u++ {
		if f.Dist(graph.NodeID(u), tgt) != d[u] {
			t.Fatalf("field source diverges from the wrapped slice at %d", u)
		}
	}
}
