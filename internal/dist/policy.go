package dist

import (
	"fmt"

	"navaug/internal/graph"
)

// SourcePolicy selects which distance-source tier greedy routing steers by
// on a given graph.  The tiers answer identical distances (each one is
// exact and pinned to BFS ground truth by the disttest conformance suite),
// so the policy never changes results — only build time, query time and
// memory.  It is threaded from the navsim -oracle flag through
// scenario.Config and sim.Config down to the per-graph resolution in
// Resolve.
type SourcePolicy string

const (
	// PolicyAuto picks the cheapest exact tier per graph: the closed-form
	// analytic metric when the family has one, else a 2-hop-cover oracle
	// for graphs of at least TwoHopAutoMinNodes nodes — abandoned at a
	// bounded label budget (TwoHopAutoMaxAvgLabel) on graphs whose covers
	// grow too fast — else per-target BFS fields.
	PolicyAuto SourcePolicy = "auto"
	// PolicyAnalytic uses the analytic metric when available and BFS
	// fields otherwise, never building labels (the pre-2-hop behaviour).
	PolicyAnalytic SourcePolicy = "analytic"
	// PolicyTwoHop always builds the exact 2-hop-cover oracle, even on
	// graphs with an analytic metric and with no label budget.
	PolicyTwoHop SourcePolicy = "twohop"
	// PolicyTwoHopPacked is PolicyTwoHop with the labels held in the
	// delta+varint compressed representation: identical distances from
	// roughly a quarter of the label memory, at a small per-query decode
	// cost.
	PolicyTwoHopPacked SourcePolicy = "twohop-packed"
	// PolicyField always steers by per-target BFS distance fields.
	PolicyField SourcePolicy = "field"
)

// TwoHopAutoMinNodes is the graph size at which PolicyAuto starts paying
// the 2-hop label build for graphs without an analytic metric.  Below it,
// the handful of per-target BFS fields an estimation needs is cheaper than
// any label build.
const TwoHopAutoMinNodes = 32768

// TwoHopAutoMaxAvgLabel is the per-node label budget PolicyAuto hands to
// the 2-hop build.  Graphs that exceed it (expander-like families whose
// 2-hop covers grow ~sqrt(n)) abort the build at bounded cost and fall
// back to BFS fields.  The budget is sized in memory, not entries: auto
// builds labels packed (delta+varint, ~2 bytes per entry instead of 8),
// so 256 packed entries cost what 64 raw entries did when the budget was
// introduced — hub-dominated families like powerlaw now clear it while
// the expander-like families still abort at bounded cost.  -oracle
// twohop/twohop-packed forces a build with no budget.
const TwoHopAutoMaxAvgLabel = 256

// ParseSourcePolicy converts a CLI string into a policy ("" means auto).
func ParseSourcePolicy(s string) (SourcePolicy, error) {
	switch SourcePolicy(s) {
	case "":
		return PolicyAuto, nil
	case PolicyAuto, PolicyAnalytic, PolicyTwoHop, PolicyTwoHopPacked, PolicyField:
		return SourcePolicy(s), nil
	}
	return "", fmt.Errorf("dist: unknown oracle policy %q (known: auto, analytic, twohop, field)", s)
}

// Resolve picks the distance Source for g under the policy.  metric is the
// graph's closed-form analytic metric when one exists (resolution is the
// caller's job — typically gen.MetricFor — to keep this package free of a
// generator dependency).  A nil return means "use per-target BFS fields";
// everything else is a shared exact Source.  Resolution is deterministic:
// for a fixed (graph, metric, policy) it always returns the same tier.
// An unknown policy string panics — a misspelled policy silently running a
// different tier than asked would be a debugging trap; CLI input goes
// through ParseSourcePolicy, so reaching here with garbage is a
// programming error (the same convention the gen generators follow).
func (p SourcePolicy) Resolve(g *graph.Graph, metric Source) Source {
	return p.ResolveWith(g, metric, 0)
}

// ResolveWith is Resolve with an explicit label-build worker count (0 means
// GOMAXPROCS); callers that own a worker pool — scenario.Runner — thread
// their -workers setting through so oracle builds respect the same
// parallelism budget as everything else in the run.  The built labels are
// byte-identical at every worker count.
func (p SourcePolicy) ResolveWith(g *graph.Graph, metric Source, workers int) Source {
	switch p {
	case PolicyField:
		return nil
	case PolicyAnalytic:
		return metric
	case PolicyTwoHop:
		return NewTwoHopWith(g, TwoHopOptions{Workers: workers})
	case PolicyTwoHopPacked:
		return NewTwoHopWith(g, TwoHopOptions{Workers: workers, Packed: true})
	case PolicyAuto, "":
		if metric != nil {
			return metric
		}
		if g.N() >= TwoHopAutoMinNodes {
			if t := NewTwoHopWith(g, TwoHopOptions{Workers: workers, MaxAvgLabel: TwoHopAutoMaxAvgLabel, Packed: true}); t != nil {
				return t
			}
		}
		return nil
	default:
		panic(fmt.Sprintf("dist: unknown oracle policy %q (use ParseSourcePolicy for untrusted input)", string(p)))
	}
}
