package dist

import "navaug/internal/graph"

// Ball returns the nodes of the ball B(src, radius) = {v : d(src,v) ≤
// radius} in non-decreasing distance order, src first.  A negative radius
// yields nil.  The slice is freshly allocated; hot loops should use a
// BallBuffer instead.
func Ball(g *graph.Graph, src graph.NodeID, radius int32) []graph.NodeID {
	nodes, _ := BallWithDists(g, src, radius)
	return nodes
}

// BallWithDists is Ball plus the distance of every returned node.
func BallWithDists(g *graph.Graph, src graph.NodeID, radius int32) ([]graph.NodeID, []int32) {
	if radius < 0 {
		return nil, nil
	}
	b := NewBallBuffer(g.N())
	nodes, dists := b.Ball(g, src, radius)
	return append([]graph.NodeID(nil), nodes...), append([]int32(nil), dists...)
}

// BallBuffer is reusable scratch space for bounded-ball enumeration.  An
// epoch-marked seen array lets consecutive enumerations skip the O(n)
// clearing step, so a buffer kept in a sync.Pool makes repeated ball draws
// allocation-free.  A BallBuffer is not safe for concurrent use.
type BallBuffer struct {
	seen  []int32 // epoch marks, len n
	epoch int32
	nodes []graph.NodeID
	dists []int32
}

// NewBallBuffer returns a buffer for graphs with n nodes.
func NewBallBuffer(n int) *BallBuffer {
	return &BallBuffer{
		seen:  make([]int32, n),
		nodes: make([]graph.NodeID, 0, 64),
		dists: make([]int32, 0, 64),
	}
}

// Ball enumerates B(src, radius) in non-decreasing distance order, src
// first at distance 0.  The returned slices are owned by the buffer and
// valid only until the next call.  A negative radius yields empty slices.
func (b *BallBuffer) Ball(g *graph.Graph, src graph.NodeID, radius int32) ([]graph.NodeID, []int32) {
	b.epoch++
	if b.epoch == 0 { // wrapped around; clear marks
		for i := range b.seen {
			b.seen[i] = 0
		}
		b.epoch = 1
	}
	b.nodes = b.nodes[:0]
	b.dists = b.dists[:0]
	if radius < 0 {
		return b.nodes, b.dists
	}
	b.seen[src] = b.epoch
	b.nodes = append(b.nodes, src)
	b.dists = append(b.dists, 0)
	for head := 0; head < len(b.nodes); head++ {
		u := b.nodes[head]
		du := b.dists[head]
		if du == radius {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if b.seen[v] != b.epoch {
				b.seen[v] = b.epoch
				b.nodes = append(b.nodes, v)
				b.dists = append(b.dists, du+1)
			}
		}
	}
	return b.nodes, b.dists
}
