package dist

import (
	"fmt"
	"sync"

	"navaug/internal/graph"
)

// FieldCache memoises single-source BFS distance fields ("fields") of one
// graph, keyed by source node.  It exists for the Monte Carlo engine:
// greedy routing needs the full distance field of the target, and the same
// targets recur across trials, across sampled pairs, and across the scheme
// comparisons that reuse one pair set — each such reuse would otherwise
// pay a fresh O(n+m) BFS.
//
// The cache is safe for concurrent use.  Each field is computed exactly
// once (concurrent requesters of the same source block on that one BFS,
// while different sources proceed in parallel) and handed out as a shared
// read-only slice that callers must not modify.
type FieldCache struct {
	g   *graph.Graph
	cap int
	gen uint64

	mu     sync.Mutex
	fields map[graph.NodeID]*fieldEntry
	order  []graph.NodeID // insertion order, for FIFO eviction
}

type fieldEntry struct {
	once sync.Once
	d    []int32
}

// NewFieldCache returns a cache over g holding at most capacity fields
// (capacity <= 0 means unbounded).  Eviction is FIFO; evicted slices stay
// valid for holders, the cache merely forgets them.
func NewFieldCache(g *graph.Graph, capacity int) *FieldCache {
	return &FieldCache{g: g, cap: capacity, fields: make(map[graph.NodeID]*fieldEntry)}
}

// NewFieldCacheAt is NewFieldCache with an explicit graph generation stamp.
// Dynamic-graph pipelines (internal/churn) create their field caches over a
// compacted CSR at a known graph.DynGraph generation; consumers that track
// the live generation then read through FieldAt, which refuses to serve
// fields once the stamps diverge — a field BFS'd on a pre-churn CSR must
// never steer routing on a post-churn graph.
func NewFieldCacheAt(g *graph.Graph, capacity int, gen uint64) *FieldCache {
	c := NewFieldCache(g, capacity)
	c.gen = gen
	return c
}

// Graph returns the graph the cache was built over, letting consumers
// reject a cache that does not match the graph they are working on.
func (c *FieldCache) Graph() *graph.Graph { return c.g }

// Generation returns the graph generation the cache was stamped with at
// construction (0 for caches over static graphs).
func (c *FieldCache) Generation() uint64 { return c.gen }

// FieldAt returns the BFS field from src like Field, but first checks the
// caller's graph generation against the cache's stamp and fails loud on a
// mismatch: serving a stale field would silently mis-steer routing, and
// a compacted or repaired graph must never answer from a cache built over
// an earlier edge set.
func (c *FieldCache) FieldAt(src graph.NodeID, gen uint64) ([]int32, error) {
	if gen != c.gen {
		return nil, fmt.Errorf("dist: stale field cache: cache at graph generation %d, caller at %d (rebuild the cache over the current graph)", c.gen, gen)
	}
	return c.Field(src), nil
}

// Field returns the BFS distance field from src (length N, unreachable
// nodes at graph.Unreachable), computing and caching it on first use.
func (c *FieldCache) Field(src graph.NodeID) []int32 {
	c.mu.Lock()
	e, ok := c.fields[src]
	if !ok {
		e = &fieldEntry{}
		c.fields[src] = e
		c.order = append(c.order, src)
		if c.cap > 0 && len(c.order) > c.cap {
			delete(c.fields, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		d := make([]int32, c.g.N())
		for i := range d {
			d[i] = graph.Unreachable
		}
		c.g.BFSInto(src, d, nil)
		e.d = d
	})
	return e.d
}

// Len returns the number of fields currently cached.
func (c *FieldCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fields)
}
