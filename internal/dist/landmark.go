package dist

import (
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// LandmarkOracle is an approximate distance oracle built from k landmark
// BFS trees.  For a query (u, v) every landmark l supplies the triangle
// bounds
//
//	|d(l,u) − d(l,v)|  ≤  d(u,v)  ≤  d(l,u) + d(l,v)
//
// and the oracle returns the tightest of each across landmarks.
//
// Approximation guarantee (pinned by the disttest conformance suite and
// TestLandmarkExactAtLandmarks): for every pair, Bounds returns
// lower ≤ d(u,v) ≤ upper, and Dist returns the upper bound — never an
// underestimate.  Both bounds are exact (equal to d(u,v)) whenever some
// landmark lies on a shortest u–v path; in particular whenever u or v *is*
// a landmark.  There is no bounded multiplicative error in general — a
// pair far from every landmark can have upper ≫ d(u,v) — which is why the
// oracle must not serve routing invariants that need exact distances
// (greedy progress checks); exact tiers (APSP, TwoHop, analytic metrics,
// BFS fields) exist for that.  The first
// landmark is drawn uniformly; the rest follow the farthest-point rule
// (maximise the distance to the landmarks chosen so far), which spreads
// the sketch over the graph and guarantees every component holding a
// landmark once k reaches the component count.  Preprocessing is k BFS
// traversals and k·n int32 of memory; queries cost O(k).  The oracle is
// immutable after construction and safe for concurrent readers.
type LandmarkOracle struct {
	n         int32
	landmarks []graph.NodeID
	rows      []int32 // row-major k×n, rows[i*n+v] = dist(landmarks[i], v)
}

// infDist stands in for "unreached" during farthest-point selection so
// that nodes in untouched components are preferred as the next landmark.
const infDist int32 = 1 << 30

// NewLandmarkOracle builds an oracle with k landmarks (clamped to [1, n]).
// The rng drives only the choice of the first landmark, so the whole
// construction is deterministic for a fixed seed.
func NewLandmarkOracle(g *graph.Graph, k int, rng *xrand.RNG) *LandmarkOracle {
	n := g.N()
	o := &LandmarkOracle{n: int32(n)}
	if n == 0 {
		return o
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	o.landmarks = make([]graph.NodeID, 0, k)
	o.rows = make([]int32, 0, k*n)
	queue := make([]int32, 0, n)
	// minDist[v] = distance from v to the nearest landmark so far.
	minDist := make([]int32, n)
	for i := range minDist {
		minDist[i] = infDist
	}
	next := graph.NodeID(rng.Intn(n))
	for len(o.landmarks) < k {
		o.landmarks = append(o.landmarks, next)
		row := make([]int32, n)
		for i := range row {
			row[i] = graph.Unreachable
		}
		g.BFSInto(next, row, queue)
		o.rows = append(o.rows, row...)
		// Farthest-point rule for the next landmark; unreached nodes count
		// as infinitely far, so fresh components are claimed first.
		best := int32(-1)
		for v := 0; v < n; v++ {
			d := row[v]
			if d == graph.Unreachable {
				d = infDist
			}
			if d < minDist[v] {
				minDist[v] = d
			}
			if minDist[v] > best {
				best = minDist[v]
				next = graph.NodeID(v)
			}
		}
	}
	return o
}

// K returns the number of landmarks.
func (o *LandmarkOracle) K() int { return len(o.landmarks) }

// N returns the number of nodes the oracle covers.  Exposing it lets
// consumers that steer by landmark bounds (the serve layer's degraded
// routing tier) reject an oracle built for a different graph, the same
// up-front check route.Greedy applies to fields and analytic metrics.
func (o *LandmarkOracle) N() int { return int(o.n) }

// Landmarks returns the landmark nodes as a shared, read-only slice.
func (o *LandmarkOracle) Landmarks() []graph.NodeID { return o.landmarks }

// Bounds returns triangle-inequality bounds lower ≤ d(u,v) ≤ upper.  When
// no landmark reaches both endpoints (which with enough landmarks only
// happens for pairs in different components) it returns (0,
// graph.Unreachable), i.e. "no finite upper bound is known".
func (o *LandmarkOracle) Bounds(u, v graph.NodeID) (lower, upper int32) {
	if u == v {
		return 0, 0
	}
	lower, upper = 0, graph.Unreachable
	n := int64(o.n)
	for i := range o.landmarks {
		du := o.rows[int64(i)*n+int64(u)]
		dv := o.rows[int64(i)*n+int64(v)]
		if du == graph.Unreachable || dv == graph.Unreachable {
			continue
		}
		if diff := du - dv; diff > lower {
			lower = diff
		} else if -diff > lower {
			lower = -diff
		}
		if sum := du + dv; upper == graph.Unreachable || sum < upper {
			upper = sum
		}
	}
	return lower, upper
}

// Dist implements Oracle with the landmark upper bound (the customary
// landmark estimate).  Pairs no landmark connects yield graph.Unreachable.
func (o *LandmarkOracle) Dist(u, v graph.NodeID) int32 {
	_, upper := o.Bounds(u, v)
	return upper
}
