package dist

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"navaug/internal/graph"
)

// TwoHop is an exact 2-hop-cover distance oracle (pruned landmark labeling)
// for arbitrary unweighted graphs.  Every node v stores a label: a sorted
// list of (hub, dist(hub, v)) pairs such that for every connected pair
// (u, v) some hub on a shortest u–v path appears in both labels.  A query
// is then one merged scan,
//
//	Dist(u, v) = min over common hubs h of dist(u, h) + dist(h, v),
//
// costing O(|label_u| + |label_v|) time and O(1) memory — which is what
// opens the million-node routing regime to graphs with no closed-form
// analytic metric (the structured families keep their O(1) metrics; see
// SourcePolicy for how the tiers are picked).
//
// Construction processes nodes as hubs in order of decreasing degree (ties
// by id) and runs a pruned BFS from each: a node u reached at distance d is
// skipped — neither labeled nor expanded — when the labels committed so far
// already certify dist(hub, u) <= d.  Hubs are processed in fixed-size
// batches; the BFS traversals of one batch run in parallel against the
// labels committed by earlier batches and their additions are merged in hub
// order, so the resulting labels are byte-for-byte identical for every
// worker count (they depend on the batch size, which is a fixed constant).
// Exactness does not depend on the hub order or batching — pruning only
// drops entries whose distance the committed labels already answer — but
// label sizes do: degree order keeps them small on graphs with skewed
// degrees or local structure, while on expander-like graphs (random
// regular, sparse GNP) 2-hop covers are inherently large and labels grow
// polynomially; see the E12 notes in BENCH_experiments.json.
//
// The oracle is immutable after construction and safe for concurrent
// readers.  Unreachable pairs yield graph.Unreachable: a hub's BFS never
// leaves its component, so cross-component labels share no hubs.
type TwoHop struct {
	n     int32
	order []graph.NodeID // hub rank -> node, decreasing degree
	// CSR-packed labels: node v's label is the parallel slices
	// hubs[index[v]:index[v+1]] (hub ranks, strictly increasing) and
	// dists[index[v]:index[v+1]].
	index []int64
	hubs  []int32
	dists []int32
}

// TwoHopOptions tunes NewTwoHopWith.
type TwoHopOptions struct {
	// Workers is the per-batch BFS worker count; <= 0 means GOMAXPROCS.
	// The labels are identical for every worker count.
	Workers int
	// MaxAvgLabel, when positive, aborts the build as soon as the total
	// label count exceeds MaxAvgLabel·n (NewTwoHopWith then returns nil).
	// On expander-like graphs 2-hop covers inherently grow ~sqrt(n) labels
	// per node; the budget lets the automatic SourcePolicy try the oracle
	// and fall back to BFS fields at bounded cost.  The check runs at batch
	// commits only, so whether a build aborts — like the labels themselves
	// — is a pure function of the graph, never of the worker count.
	MaxAvgLabel float64
}

// twoHopMaxBatch caps the number of hubs whose pruned BFS traversals run
// concurrently between label commits.  Batches grow geometrically from 1:
// the first hubs — whose traversals are the expensive, graph-spanning ones
// — run (nearly) sequentially so each sees the previous hubs' labels and
// prunes as aggressively as sequential PLL, while the long tail of cheap,
// quickly-pruned hubs runs wide.  The schedule is a fixed function of the
// hub index — not of the worker count — because batch boundaries (unlike
// scheduling) influence which prunes fire and therefore the exact label
// sets; workers only split a batch's fixed work.
const twoHopMaxBatch = 64

// twoHopUnset marks an absent entry in the dense per-root hub-distance
// scratch used during construction.
const twoHopUnset int32 = -1

// twoHopInf is the query accumulator's starting value; any realisable
// two-hop distance (< 2n) is below it.
const twoHopInf int32 = 1<<31 - 1

// NewTwoHop builds the exact 2-hop-cover oracle of g using all CPUs.
func NewTwoHop(g *graph.Graph) *TwoHop {
	return NewTwoHopWith(g, TwoHopOptions{})
}

// twoHopMix is the SplitMix64 finaliser, used as the deterministic
// tie-breaking hash of the hub order.
func twoHopMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// twoHopScratch is the per-worker reusable state of one pruned BFS.
type twoHopScratch struct {
	dist     []int32 // per-node BFS distance, twoHopUnset when untouched
	rootDist []int32 // per-hub-rank committed distance to the current root
	queue    []graph.NodeID
}

// twoHopAdditions is the outcome of one hub's pruned BFS: the nodes that
// received a label entry, in BFS order, with their exact distances.
type twoHopAdditions struct {
	nodes []graph.NodeID
	dists []int32
}

// NewTwoHopWith builds the oracle with the given options.  It returns nil
// when a MaxAvgLabel budget is set and exceeded (see TwoHopOptions).
func NewTwoHopWith(g *graph.Graph, opts TwoHopOptions) *TwoHop {
	n := g.N()
	t := &TwoHop{n: int32(n)}
	t.order = make([]graph.NodeID, n)
	for i := range t.order {
		t.order[i] = graph.NodeID(i)
	}
	sort.SliceStable(t.order, func(i, j int) bool {
		di, dj := g.Degree(t.order[i]), g.Degree(t.order[j])
		if di != dj {
			return di > dj
		}
		// Ties break by a deterministic hash of the node id, not the id
		// itself: on degree-flat graphs (cycles, tori, regular graphs) id
		// order degenerates — consecutive hubs cover almost the same pairs
		// and labels grow towards O(n) — while a pseudo-random order gives
		// the divide-and-conquer covers that keep them logarithmic.
		hi, hj := twoHopMix(uint64(t.order[i])), twoHopMix(uint64(t.order[j]))
		if hi != hj {
			return hi < hj
		}
		return t.order[i] < t.order[j]
	})
	t.index = make([]int64, n+1)
	if n == 0 {
		return t
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > twoHopMaxBatch {
		workers = twoHopMaxBatch
	}

	// Growable per-node labels during construction; packed into the CSR
	// arrays once every hub has been processed.
	labHubs := make([][]int32, n)
	labDists := make([][]int32, n)

	scratches := make([]*twoHopScratch, workers)
	for w := range scratches {
		sc := &twoHopScratch{
			dist:     make([]int32, n),
			rootDist: make([]int32, n),
			queue:    make([]graph.NodeID, 0, n),
		}
		for i := 0; i < n; i++ {
			sc.dist[i] = twoHopUnset
			sc.rootDist[i] = twoHopUnset
		}
		scratches[w] = sc
	}

	results := make([]twoHopAdditions, twoHopMaxBatch)
	var total int64
	budget := int64(-1)
	if opts.MaxAvgLabel > 0 {
		budget = int64(opts.MaxAvgLabel * float64(n))
	}
	batch := 1
	for start := 0; start < n; {
		end := start + batch
		if end > n {
			end = n
		}
		// Pruned BFS of every hub in the batch, in parallel, reading only
		// the labels committed by earlier batches.
		var next atomic.Int64
		next.Store(int64(start))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(sc *twoHopScratch) {
				defer wg.Done()
				for {
					k := int(next.Add(1) - 1)
					if k >= end {
						return
					}
					results[k-start] = twoHopPrunedBFS(g, t.order[k], labHubs, labDists, sc)
				}
			}(scratches[w])
		}
		wg.Wait()
		// Commit in hub order: hub ranks increase monotonically across
		// commits, so each node's hub list stays strictly increasing.
		for k := start; k < end; k++ {
			res := results[k-start]
			for i, u := range res.nodes {
				labHubs[u] = append(labHubs[u], int32(k))
				labDists[u] = append(labDists[u], res.dists[i])
			}
			total += int64(len(res.nodes))
		}
		if budget >= 0 && total > budget {
			return nil
		}
		start = end
		if batch < twoHopMaxBatch {
			batch *= 2
		}
	}

	t.hubs = make([]int32, total)
	t.dists = make([]int32, total)
	for v := 0; v < n; v++ {
		off := t.index[v]
		t.index[v+1] = off + int64(len(labHubs[v]))
		copy(t.hubs[off:], labHubs[v])
		copy(t.dists[off:], labDists[v])
		labHubs[v], labDists[v] = nil, nil
	}
	return t
}

// twoHopPrunedBFS runs the pruned BFS from root against the committed
// labels: a node u reached at distance d is labeled (and expanded) only if
// no committed two-hop path already certifies dist(root, u) <= d.
func twoHopPrunedBFS(g *graph.Graph, root graph.NodeID, labHubs, labDists [][]int32, sc *twoHopScratch) twoHopAdditions {
	rootHubs, rootDists := labHubs[root], labDists[root]
	for i, h := range rootHubs {
		sc.rootDist[h] = rootDists[i]
	}
	queue := sc.queue[:0]
	queue = append(queue, root)
	sc.dist[root] = 0
	var out twoHopAdditions
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := sc.dist[u]
		// Prune when the committed labels already answer dist(root, u):
		// every two-hop estimate is an upper bound, so estimate <= du
		// means it equals the true distance and this entry is redundant.
		covered := false
		lh, ld := labHubs[u], labDists[u]
		for i, h := range lh {
			if rd := sc.rootDist[h]; rd >= 0 && rd+ld[i] <= du {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		out.nodes = append(out.nodes, u)
		out.dists = append(out.dists, du)
		for _, v := range g.Neighbors(u) {
			if sc.dist[v] == twoHopUnset {
				sc.dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	// Reset the touched scratch entries so the next BFS starts clean.
	for _, u := range queue {
		sc.dist[u] = twoHopUnset
	}
	for _, h := range rootHubs {
		sc.rootDist[h] = twoHopUnset
	}
	sc.queue = queue
	return out
}

// N returns the number of nodes the oracle covers.
func (t *TwoHop) N() int { return int(t.n) }

// Dist implements Source (and Oracle) with one merged scan over the two
// sorted hub lists.  Pairs with no common hub are in different components
// and yield graph.Unreachable.
func (t *TwoHop) Dist(u, v graph.NodeID) int32 {
	if u == v {
		return 0
	}
	i, iEnd := t.index[u], t.index[u+1]
	j, jEnd := t.index[v], t.index[v+1]
	best := twoHopInf
	for i < iEnd && j < jEnd {
		hu, hv := t.hubs[i], t.hubs[j]
		switch {
		case hu == hv:
			if d := t.dists[i] + t.dists[j]; d < best {
				best = d
			}
			i++
			j++
		case hu < hv:
			i++
		default:
			j++
		}
	}
	if best == twoHopInf {
		return graph.Unreachable
	}
	return best
}

// Label returns node v's label as shared, read-only parallel slices: the
// hubs (as node ids, in increasing hub-rank order) and the exact distances
// to them.  Tests use it to compare builds entry by entry.
func (t *TwoHop) Label(v graph.NodeID) (hubs []graph.NodeID, dists []int32) {
	lo, hi := t.index[v], t.index[v+1]
	hubs = make([]graph.NodeID, hi-lo)
	for i := lo; i < hi; i++ {
		hubs[i-lo] = t.order[t.hubs[i]]
	}
	return hubs, t.dists[lo:hi]
}

// Raw exposes the oracle's packed arrays as shared, read-only slices: the
// hub order (rank -> node), the CSR index (length N+1), and the parallel
// hub-rank/distance arrays.  Callers must not modify them.  This is the
// serialisation entry point: the snapshot writer emits the arrays verbatim
// and TwoHopFromRaw reconstructs an identical oracle without re-running the
// pruned-labeling build.
func (t *TwoHop) Raw() (order []graph.NodeID, index []int64, hubs, dists []int32) {
	return t.order, t.index, t.hubs, t.dists
}

// TwoHopFromRaw reconstructs an oracle from arrays previously obtained via
// Raw, taking ownership of the slices (they may alias a read-only snapshot
// buffer).  It verifies every structural invariant the build establishes —
// order is a permutation of the nodes, the index is monotone from 0 and
// consistent with the label arrays, each node's hub ranks are strictly
// increasing and in range, and distances are non-negative — so corrupted
// or hostile serialised labels are rejected in O(n + entries).  Distance
// *correctness* (that the labels form an exact 2-hop cover of this graph)
// is not re-derivable cheaply; snapshot checksums guard integrity in
// transit and the conformance suite pins freshly-written snapshots to BFS.
func TwoHopFromRaw(n int, order []graph.NodeID, index []int64, hubs, dists []int32) (*TwoHop, error) {
	if n < 0 {
		return nil, fmt.Errorf("dist: negative node count %d", n)
	}
	if len(order) != n {
		return nil, fmt.Errorf("dist: hub order has %d entries, want n = %d", len(order), n)
	}
	if len(index) != n+1 {
		return nil, fmt.Errorf("dist: label index has length %d, want n+1 = %d", len(index), n+1)
	}
	seen := make([]bool, n)
	for i, v := range order {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("dist: hub order entry %d = %d out of range [0,%d)", i, v, n)
		}
		if seen[v] {
			return nil, fmt.Errorf("dist: hub order repeats node %d", v)
		}
		seen[v] = true
	}
	if index[0] != 0 {
		return nil, fmt.Errorf("dist: label index starts at %d, want 0", index[0])
	}
	if index[n] != int64(len(hubs)) || len(hubs) != len(dists) {
		return nil, fmt.Errorf("dist: label index promises %d entries, arrays hold %d hubs / %d dists",
			index[n], len(hubs), len(dists))
	}
	for v := 0; v < n; v++ {
		lo, hi := index[v], index[v+1]
		if lo > hi {
			return nil, fmt.Errorf("dist: label index decreases at node %d (%d > %d)", v, lo, hi)
		}
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			h := hubs[i]
			if h < 0 || int(h) >= n {
				return nil, fmt.Errorf("dist: node %d references hub rank %d out of range [0,%d)", v, h, n)
			}
			if h <= prev {
				return nil, fmt.Errorf("dist: node %d hub ranks not strictly increasing (%d after %d)", v, h, prev)
			}
			prev = h
			if dists[i] < 0 {
				return nil, fmt.Errorf("dist: node %d has negative label distance %d", v, dists[i])
			}
		}
	}
	return &TwoHop{n: int32(n), order: order, index: index, hubs: hubs, dists: dists}, nil
}

// Entries returns the total number of label entries across all nodes.
func (t *TwoHop) Entries() int64 { return int64(len(t.hubs)) }

// AvgLabel returns the mean label size per node.
func (t *TwoHop) AvgLabel() float64 {
	if t.n == 0 {
		return 0
	}
	return float64(len(t.hubs)) / float64(t.n)
}

// MaxLabel returns the largest single-node label size.
func (t *TwoHop) MaxLabel() int {
	best := int64(0)
	for v := int32(0); v < t.n; v++ {
		if sz := t.index[v+1] - t.index[v]; sz > best {
			best = sz
		}
	}
	return int(best)
}

// MemoryBytes returns the approximate resident size of the packed oracle.
func (t *TwoHop) MemoryBytes() int64 {
	return int64(len(t.hubs))*8 + int64(len(t.index))*8 + int64(len(t.order))*4
}
