package dist

import (
	"fmt"
	"sort"

	"navaug/internal/graph"
)

// TwoHop is an exact 2-hop-cover distance oracle (pruned landmark labeling)
// for arbitrary unweighted graphs.  Every node v stores a label: a sorted
// list of (hub, dist(hub, v)) pairs such that for every connected pair
// (u, v) some hub on a shortest u–v path appears in both labels.  A query
// is then one merged scan,
//
//	Dist(u, v) = min over common hubs h of dist(u, h) + dist(h, v),
//
// costing O(|label_u| + |label_v|) time and O(1) memory — which is what
// opens the million-node routing regime to graphs with no closed-form
// analytic metric (the structured families keep their O(1) metrics; see
// SourcePolicy for how the tiers are picked).
//
// Construction processes nodes as hubs in order of decreasing degree (ties
// by id) and runs a pruned BFS from each: a node u reached at distance d is
// skipped — neither labeled nor expanded — when the labels committed so far
// already certify dist(hub, u) <= d.  Hubs are processed in fixed-size
// batches against the labels committed by earlier batches; one batch runs
// as a single 64-wide bit-parallel multi-source BFS (per-node 64-bit
// reachability masks, one bit per hub; see twohop_build.go), so the
// traversal and the pruning scans are shared across the whole batch instead
// of repeated per hub.  Additions are merged in hub order, so the resulting
// labels are byte-for-byte identical for every worker count (they depend
// only on the batch schedule, which is a fixed function of the hub index).
// Exactness does not depend on the hub order or batching — pruning only
// drops entries whose distance the committed labels already answer — but
// label sizes do: degree order keeps them small on graphs with skewed
// degrees or local structure, while on expander-like graphs (random
// regular, sparse GNP) 2-hop covers are inherently large and labels grow
// polynomially; see the E12 notes in BENCH_experiments.json.
//
// Labels are stored either raw (two int32 CSR slabs, fastest queries) or
// packed (per-node delta+varint byte streams, ~2-3 bytes per entry instead
// of 8; see TwoHopOptions.Packed and Pack).  Both modes answer identical
// distances; the conformance tests pin them to each other entry by entry.
//
// The oracle is immutable after construction and safe for concurrent
// readers.  Unreachable pairs yield graph.Unreachable: a hub's BFS never
// leaves its component, so cross-component labels share no hubs.
type TwoHop struct {
	n       int32
	packed  bool
	entries int64
	order   []graph.NodeID // hub rank -> node, decreasing degree
	// Raw mode: node v's label is the parallel slices
	// hubs[index[v]:index[v+1]] (hub ranks, strictly increasing) and
	// dists[index[v]:index[v+1]].
	index []int64
	hubs  []int32
	dists []int32
	// Packed mode: node v's label is the varint stream
	// blob[poff[v]:poff[v+1]] of (hub-rank delta, dist) pairs.
	poff []int64
	blob []byte
}

// TwoHopOptions tunes NewTwoHopWith.
type TwoHopOptions struct {
	// Workers is the per-batch build worker count; <= 0 means GOMAXPROCS.
	// The labels are identical for every worker count.
	Workers int
	// MaxAvgLabel, when positive, aborts the build as soon as the total
	// label count exceeds MaxAvgLabel·n (NewTwoHopWith then returns nil).
	// On expander-like graphs 2-hop covers inherently grow ~sqrt(n) labels
	// per node; the budget lets the automatic SourcePolicy try the oracle
	// and fall back to BFS fields at bounded cost.  The check runs at batch
	// commits only, so whether a build aborts — like the labels themselves
	// — is a pure function of the graph, never of the worker count.
	MaxAvgLabel float64
	// Packed stores the finished labels delta+varint compressed (~2-3
	// bytes per entry instead of 8) at a modest per-query decode cost.
	// The label sets — and therefore every distance — are identical to an
	// unpacked build.
	Packed bool
	// forceScalar and force16 disable build engines (tests only): they pin
	// the byte-identity contract by diffing the engines against each other.
	forceScalar bool
	force16     bool
}

// twoHopMaxBatch caps the number of hubs per bit-parallel batch (the mask
// width).  Batches grow geometrically from 1: the first hubs — whose
// traversals are the expensive, graph-spanning ones — run (nearly)
// sequentially so each sees the previous hubs' labels and prunes as
// aggressively as sequential PLL, while the long tail of cheap, quickly
// pruned hubs runs 64 wide.  The schedule is a fixed function of the hub
// index — not of the worker count — because batch boundaries (unlike
// scheduling) influence which prunes fire and therefore the exact label
// sets; workers only split a batch's fixed work.
const twoHopMaxBatch = 64

// twoHopUnset marks an absent entry in the dense per-root hub-distance
// scratch used by the scalar construction fallback.
const twoHopUnset int32 = -1

// twoHopInf is the query accumulator's starting value; any realisable
// two-hop distance (< 2n) is below it.
const twoHopInf int32 = 1<<31 - 1

// twoHopMaxNodes bounds the node count FromRaw accepts: with distances
// validated < n, a two-hop sum stays < 2n and cannot overflow int32.
// (Snapshots are capped far lower; this is the API-level backstop.)
const twoHopMaxNodes = 1 << 30

// NewTwoHop builds the exact 2-hop-cover oracle of g using all CPUs.
func NewTwoHop(g *graph.Graph) *TwoHop {
	return NewTwoHopWith(g, TwoHopOptions{})
}

// twoHopMix is the SplitMix64 finaliser, used as the deterministic
// tie-breaking hash of the hub order.
func twoHopMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// twoHopOrder computes the hub order: decreasing degree, ties by a
// deterministic hash of the node id.
func twoHopOrder(g *graph.Graph) []graph.NodeID {
	order := make([]graph.NodeID, g.N())
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		// Ties break by a deterministic hash of the node id, not the id
		// itself: on degree-flat graphs (cycles, tori, regular graphs) id
		// order degenerates — consecutive hubs cover almost the same pairs
		// and labels grow towards O(n) — while a pseudo-random order gives
		// the divide-and-conquer covers that keep them logarithmic.
		hi, hj := twoHopMix(uint64(order[i])), twoHopMix(uint64(order[j]))
		if hi != hj {
			return hi < hj
		}
		return order[i] < order[j]
	})
	return order
}

// NewTwoHopWith builds the oracle with the given options.  It returns nil
// when a MaxAvgLabel budget is set and exceeded (see TwoHopOptions).
func NewTwoHopWith(g *graph.Graph, opts TwoHopOptions) *TwoHop {
	n := g.N()
	t := &TwoHop{n: int32(n), packed: opts.Packed}
	t.order = twoHopOrder(g)
	if n == 0 {
		t.index = make([]int64, 1)
		if opts.Packed {
			t.index, t.poff = nil, make([]int64, 1)
		}
		return t
	}
	lab, total, ok := twoHopBuildLabels(g, t.order, opts)
	if !ok {
		return nil
	}
	t.entries = total
	if opts.Packed {
		t.poff, t.blob = twoHopEncodeLabels(lab, total)
		return t
	}
	t.index = make([]int64, n+1)
	t.hubs = make([]int32, total)
	t.dists = make([]int32, total)
	for v := 0; v < n; v++ {
		off := t.index[v]
		for _, e := range lab[v] {
			t.hubs[off] = int32(e >> 32)
			t.dists[off] = int32(uint32(e))
			off++
		}
		t.index[v+1] = off
		lab[v] = nil
	}
	return t
}

// N returns the number of nodes the oracle covers.
func (t *TwoHop) N() int { return int(t.n) }

// Packed reports whether the labels are stored varint-compressed.
func (t *TwoHop) Packed() bool { return t.packed }

// Dist implements Source (and Oracle) with one merged scan over the two
// sorted hub lists.  Pairs with no common hub are in different components
// and yield graph.Unreachable.
func (t *TwoHop) Dist(u, v graph.NodeID) int32 {
	if u == v {
		return 0
	}
	if t.packed {
		return t.distPacked(u, v)
	}
	i, iEnd := t.index[u], t.index[u+1]
	j, jEnd := t.index[v], t.index[v+1]
	best := twoHopInf
	for i < iEnd && j < jEnd {
		hu, hv := t.hubs[i], t.hubs[j]
		switch {
		case hu == hv:
			if d := t.dists[i] + t.dists[j]; d < best {
				best = d
			}
			i++
			j++
		case hu < hv:
			i++
		default:
			j++
		}
	}
	if best == twoHopInf {
		return graph.Unreachable
	}
	return best
}

// distPacked is the merged scan over two packed label streams, decoding
// (hub delta, dist) varints on the fly.
func (t *TwoHop) distPacked(u, v graph.NodeID) int32 {
	i, iEnd := t.poff[u], t.poff[u+1]
	j, jEnd := t.poff[v], t.poff[v+1]
	if i == iEnd || j == jEnd {
		return graph.Unreachable
	}
	blob := t.blob
	best := twoHopInf
	hu, du, i := twoHopDecodePair(blob, i, -1)
	hv, dv, j := twoHopDecodePair(blob, j, -1)
	for {
		switch {
		case hu == hv:
			if d := du + dv; d < best {
				best = d
			}
			if i >= iEnd || j >= jEnd {
				goto done
			}
			hu, du, i = twoHopDecodePair(blob, i, hu)
			hv, dv, j = twoHopDecodePair(blob, j, hv)
		case hu < hv:
			if i >= iEnd {
				goto done
			}
			hu, du, i = twoHopDecodePair(blob, i, hu)
		default:
			if j >= jEnd {
				goto done
			}
			hv, dv, j = twoHopDecodePair(blob, j, hv)
		}
	}
done:
	if best == twoHopInf {
		return graph.Unreachable
	}
	return best
}

// twoHopDecodePair decodes one (hub delta, dist) pair at blob[i:],
// returning the absolute hub rank (prev is the previous entry's rank, -1
// before the first).  The hot path is the one-byte varint; FromRaw
// validation guarantees every stream is well formed and in bounds.
func twoHopDecodePair(blob []byte, i int64, prev int32) (h, d int32, next int64) {
	b := blob[i]
	i++
	delta := int32(b & 0x7f)
	if b >= 0x80 {
		for shift := 7; ; shift += 7 {
			b = blob[i]
			i++
			delta |= int32(b&0x7f) << shift
			if b < 0x80 {
				break
			}
		}
	}
	b = blob[i]
	i++
	d = int32(b & 0x7f)
	if b >= 0x80 {
		for shift := 7; ; shift += 7 {
			b = blob[i]
			i++
			d |= int32(b&0x7f) << shift
			if b < 0x80 {
				break
			}
		}
	}
	return prev + 1 + delta, d, i
}

// twoHopAppendUvarint appends v as a LEB128 varint.
func twoHopAppendUvarint(buf []byte, v uint32) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// twoHopEncodeLabels packs per-node interleaved (rank, dist) pair slices
// into the delta+varint blob representation.
func twoHopEncodeLabels(lab [][]uint64, total int64) (poff []int64, blob []byte) {
	poff = make([]int64, len(lab)+1)
	// Typical entries fit one byte of delta and one of distance.
	blob = make([]byte, 0, 2*total+total/2)
	for v := range lab {
		prev := int32(-1)
		for _, e := range lab[v] {
			rank := int32(e >> 32)
			blob = twoHopAppendUvarint(blob, uint32(rank-prev-1))
			blob = twoHopAppendUvarint(blob, uint32(uint32(e)))
			prev = rank
		}
		poff[v+1] = int64(len(blob))
		lab[v] = nil
	}
	return poff, blob
}

// Label returns node v's label as parallel slices: the hubs (as node ids,
// in increasing hub-rank order) and the exact distances to them.  Tests use
// it to compare builds — raw against packed — entry by entry.
func (t *TwoHop) Label(v graph.NodeID) (hubs []graph.NodeID, dists []int32) {
	if !t.packed {
		lo, hi := t.index[v], t.index[v+1]
		hubs = make([]graph.NodeID, hi-lo)
		for i := lo; i < hi; i++ {
			hubs[i-lo] = t.order[t.hubs[i]]
		}
		return hubs, t.dists[lo:hi]
	}
	i, end := t.poff[v], t.poff[v+1]
	prev := int32(-1)
	for i < end {
		var d int32
		prev, d, i = twoHopDecodePair(t.blob, i, prev)
		hubs = append(hubs, t.order[prev])
		dists = append(dists, d)
	}
	return hubs, dists
}

// Pack returns a varint-compressed view of the oracle (itself when already
// packed).  The label sets are identical; only the storage changes.
func (t *TwoHop) Pack() *TwoHop {
	if t.packed {
		return t
	}
	p := &TwoHop{n: t.n, packed: true, entries: t.entries, order: t.order}
	p.poff = make([]int64, t.n+1)
	p.blob = make([]byte, 0, 2*t.entries+t.entries/2)
	for v := int32(0); v < t.n; v++ {
		prev := int32(-1)
		for i := t.index[v]; i < t.index[v+1]; i++ {
			p.blob = twoHopAppendUvarint(p.blob, uint32(t.hubs[i]-prev-1))
			p.blob = twoHopAppendUvarint(p.blob, uint32(t.dists[i]))
			prev = t.hubs[i]
		}
		p.poff[v+1] = int64(len(p.blob))
	}
	return p
}

// Unpack returns a raw (uncompressed) view of the oracle (itself when
// already raw).
func (t *TwoHop) Unpack() *TwoHop {
	if !t.packed {
		return t
	}
	r := &TwoHop{n: t.n, entries: t.entries, order: t.order}
	r.index = make([]int64, t.n+1)
	r.hubs = make([]int32, 0, t.entries)
	r.dists = make([]int32, 0, t.entries)
	for v := int32(0); v < t.n; v++ {
		i, end := t.poff[v], t.poff[v+1]
		prev := int32(-1)
		for i < end {
			var d int32
			prev, d, i = twoHopDecodePair(t.blob, i, prev)
			r.hubs = append(r.hubs, prev)
			r.dists = append(r.dists, d)
		}
		r.index[v+1] = int64(len(r.hubs))
	}
	return r
}

// Raw exposes a raw-mode oracle's packed arrays as shared, read-only
// slices: the hub order (rank -> node), the CSR index (length N+1), and the
// parallel hub-rank/distance arrays.  Callers must not modify them.  This
// is the serialisation entry point: the snapshot writer emits the arrays
// verbatim and TwoHopFromRaw reconstructs an identical oracle without
// re-running the pruned-labeling build.  It panics on a packed oracle —
// use RawPacked there (or Unpack first).
func (t *TwoHop) Raw() (order []graph.NodeID, index []int64, hubs, dists []int32) {
	if t.packed {
		panic("dist: Raw called on a packed TwoHop (use RawPacked or Unpack)")
	}
	return t.order, t.index, t.hubs, t.dists
}

// RawPacked exposes a packed oracle's arrays as shared, read-only slices:
// the hub order, the per-node byte offsets (length N+1) and the varint
// blob.  It panics on a raw oracle — use Raw there (or Pack first).
func (t *TwoHop) RawPacked() (order []graph.NodeID, poff []int64, blob []byte) {
	if !t.packed {
		panic("dist: RawPacked called on a raw TwoHop (use Raw or Pack)")
	}
	return t.order, t.poff, t.blob
}

// twoHopValidateOrder checks that order is a permutation of [0, n).
func twoHopValidateOrder(n int, order []graph.NodeID) error {
	if len(order) != n {
		return fmt.Errorf("dist: hub order has %d entries, want n = %d", len(order), n)
	}
	seen := make([]bool, n)
	for i, v := range order {
		if v < 0 || int(v) >= n {
			return fmt.Errorf("dist: hub order entry %d = %d out of range [0,%d)", i, v, n)
		}
		if seen[v] {
			return fmt.Errorf("dist: hub order repeats node %d", v)
		}
		seen[v] = true
	}
	return nil
}

// TwoHopFromRaw reconstructs an oracle from arrays previously obtained via
// Raw, taking ownership of the slices (they may alias a read-only snapshot
// buffer).  It verifies every structural invariant the build establishes —
// order is a permutation of the nodes, the index is monotone from 0 and
// consistent with the label arrays, each node's hub ranks are strictly
// increasing and in range, and distances lie in [0, n) (an unweighted
// n-node graph has diameter at most n-1, and the bound keeps two-hop sums
// below 2n, so a hostile label can never overflow a Dist query into a
// negative "exact" distance) — so corrupted or hostile serialised labels
// are rejected in O(n + entries).  Distance *correctness* (that the labels
// form an exact 2-hop cover of this graph) is not re-derivable cheaply;
// snapshot checksums guard integrity in transit and the conformance suite
// pins freshly-written snapshots to BFS.
func TwoHopFromRaw(n int, order []graph.NodeID, index []int64, hubs, dists []int32) (*TwoHop, error) {
	if n < 0 {
		return nil, fmt.Errorf("dist: negative node count %d", n)
	}
	if n > twoHopMaxNodes {
		return nil, fmt.Errorf("dist: node count %d exceeds the supported cap %d", n, twoHopMaxNodes)
	}
	if err := twoHopValidateOrder(n, order); err != nil {
		return nil, err
	}
	if len(index) != n+1 {
		return nil, fmt.Errorf("dist: label index has length %d, want n+1 = %d", len(index), n+1)
	}
	if n >= 0 && len(index) > 0 && index[0] != 0 {
		return nil, fmt.Errorf("dist: label index starts at %d, want 0", index[0])
	}
	if index[n] != int64(len(hubs)) || len(hubs) != len(dists) {
		return nil, fmt.Errorf("dist: label index promises %d entries, arrays hold %d hubs / %d dists",
			index[n], len(hubs), len(dists))
	}
	for v := 0; v < n; v++ {
		lo, hi := index[v], index[v+1]
		if lo > hi {
			return nil, fmt.Errorf("dist: label index decreases at node %d (%d > %d)", v, lo, hi)
		}
		prev := int32(-1)
		for i := lo; i < hi; i++ {
			h := hubs[i]
			if h < 0 || int(h) >= n {
				return nil, fmt.Errorf("dist: node %d references hub rank %d out of range [0,%d)", v, h, n)
			}
			if h <= prev {
				return nil, fmt.Errorf("dist: node %d hub ranks not strictly increasing (%d after %d)", v, h, prev)
			}
			prev = h
			if dists[i] < 0 || int64(dists[i]) >= int64(n) {
				return nil, fmt.Errorf("dist: node %d has label distance %d out of range [0,%d)", v, dists[i], n)
			}
		}
	}
	return &TwoHop{n: int32(n), entries: int64(len(hubs)), order: order, index: index, hubs: hubs, dists: dists}, nil
}

// TwoHopPackedFromRaw reconstructs a packed oracle from arrays previously
// obtained via RawPacked, taking ownership of the slices.  It fully decodes
// every label stream once, enforcing the same invariants as TwoHopFromRaw —
// permutation order, monotone offsets, strictly increasing in-range hub
// ranks, distances in [0, n) — plus varint well-formedness: every stream
// must decode to exactly its declared byte length with no truncated or
// over-long varint, so a hostile blob can never send a query decode out of
// bounds.
func TwoHopPackedFromRaw(n int, order []graph.NodeID, poff []int64, blob []byte) (*TwoHop, error) {
	if n < 0 {
		return nil, fmt.Errorf("dist: negative node count %d", n)
	}
	if n > twoHopMaxNodes {
		return nil, fmt.Errorf("dist: node count %d exceeds the supported cap %d", n, twoHopMaxNodes)
	}
	if err := twoHopValidateOrder(n, order); err != nil {
		return nil, err
	}
	if len(poff) != n+1 {
		return nil, fmt.Errorf("dist: packed label index has length %d, want n+1 = %d", len(poff), n+1)
	}
	if poff[0] != 0 {
		return nil, fmt.Errorf("dist: packed label index starts at %d, want 0", poff[0])
	}
	if poff[n] != int64(len(blob)) {
		return nil, fmt.Errorf("dist: packed label index promises %d blob bytes, blob holds %d", poff[n], len(blob))
	}
	var entries int64
	for v := 0; v < n; v++ {
		lo, hi := poff[v], poff[v+1]
		if lo > hi {
			return nil, fmt.Errorf("dist: packed label index decreases at node %d (%d > %d)", v, lo, hi)
		}
		prev := int32(-1)
		for i := lo; i < hi; {
			delta, ni, err := twoHopCheckedUvarint(blob, i, hi)
			if err != nil {
				return nil, fmt.Errorf("dist: node %d label stream: %w", v, err)
			}
			d, ni, err := twoHopCheckedUvarint(blob, ni, hi)
			if err != nil {
				return nil, fmt.Errorf("dist: node %d label stream: %w", v, err)
			}
			h := int64(prev) + 1 + int64(delta)
			if h >= int64(n) {
				return nil, fmt.Errorf("dist: node %d references hub rank %d out of range [0,%d)", v, h, n)
			}
			if int64(d) >= int64(n) {
				return nil, fmt.Errorf("dist: node %d has label distance %d out of range [0,%d)", v, d, n)
			}
			prev = int32(h)
			i = ni
			entries++
		}
	}
	return &TwoHop{n: int32(n), packed: true, entries: entries, order: order, poff: poff, blob: blob}, nil
}

// twoHopCheckedUvarint decodes one bounds- and range-checked varint from
// blob[i:end): it must terminate before end and fit 31 bits.
func twoHopCheckedUvarint(blob []byte, i, end int64) (v uint32, next int64, err error) {
	var x uint64
	for shift := 0; ; shift += 7 {
		if i >= end {
			return 0, 0, fmt.Errorf("truncated varint")
		}
		b := blob[i]
		i++
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			break
		}
		if shift >= 28 {
			return 0, 0, fmt.Errorf("varint exceeds 31 bits")
		}
	}
	if x > 1<<31-1 {
		return 0, 0, fmt.Errorf("varint value %d exceeds 31 bits", x)
	}
	return uint32(x), i, nil
}

// Entries returns the total number of label entries across all nodes.
func (t *TwoHop) Entries() int64 { return t.entries }

// AvgLabel returns the mean label size per node.
func (t *TwoHop) AvgLabel() float64 {
	if t.n == 0 {
		return 0
	}
	return float64(t.entries) / float64(t.n)
}

// MaxLabel returns the largest single-node label size.
func (t *TwoHop) MaxLabel() int {
	best := int64(0)
	if t.packed {
		for v := int32(0); v < t.n; v++ {
			i, end := t.poff[v], t.poff[v+1]
			var sz int64
			prev := int32(-1)
			for i < end {
				prev, _, i = twoHopDecodePair(t.blob, i, prev)
				sz++
			}
			if sz > best {
				best = sz
			}
		}
		return int(best)
	}
	for v := int32(0); v < t.n; v++ {
		if sz := t.index[v+1] - t.index[v]; sz > best {
			best = sz
		}
	}
	return int(best)
}

// MemoryBytes returns the approximate resident size of the packed oracle.
func (t *TwoHop) MemoryBytes() int64 {
	if t.packed {
		return int64(len(t.blob)) + int64(len(t.poff))*8 + int64(len(t.order))*4
	}
	return int64(len(t.hubs))*8 + int64(len(t.index))*8 + int64(len(t.order))*4
}
