package dist

import (
	"testing"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// twoHopTestGraphs builds a mix of structured, unstructured and
// disconnected graphs sized for exhaustive checking.
func twoHopTestGraphs() map[string]*graph.Graph {
	b := graph.NewBuilder(7)
	b.AddPath(0, 1, 2, 3) // component {0..3}
	b.AddEdge(4, 5)       // component {4,5}; node 6 isolated
	disconnected := b.Build()
	line := graph.NewBuilder(1).Build()
	return map[string]*graph.Graph{
		"path":         pathGraph(64),
		"cycle":        cycleGraph(65),
		"grid":         gridGraph(9, 7),
		"rtree":        randomTreeLike(257, 3),
		"disconnected": disconnected,
		"singleton":    line,
	}
}

// pathGraph, cycleGraph, gridGraph and randomTreeLike are tiny local
// builders: the dist package cannot import gen (gen depends on dist).
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func gridGraph(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	return b.Build()
}

// randomTreeLike attaches node v to a pseudo-random earlier node, plus a
// few extra chords for cycles (duplicates merge at Build time).
func randomTreeLike(n, chords int) *graph.Graph {
	rng := xrand.New(99)
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(int32(v), int32(rng.Intn(v)))
	}
	for i := 0; i < chords; i++ {
		u := int32(rng.Intn(n - 1))
		b.AddEdge(u, u+1+int32(rng.Intn(n-1-int(u))))
	}
	return b.Build()
}

// TestTwoHopExactAllPairs checks the oracle against BFS on every pair of
// every test graph, including unreachable ones.  (The disttest package
// runs the richer cross-family conformance suite; this is the in-package
// smoke that survives even if disttest is skipped.)
func TestTwoHopExactAllPairs(t *testing.T) {
	for name, g := range twoHopTestGraphs() {
		o := NewTwoHop(g)
		n := g.N()
		for u := 0; u < n; u++ {
			d := g.BFS(graph.NodeID(u))
			for v := 0; v < n; v++ {
				if got := o.Dist(graph.NodeID(u), graph.NodeID(v)); got != d[v] {
					t.Fatalf("%s: Dist(%d,%d) = %d, BFS says %d", name, u, v, got, d[v])
				}
			}
		}
	}
}

// TestTwoHopDeterministicAcrossWorkers is the parallel-build contract: the
// packed label arrays must be identical — entry by entry, hub by hub — no
// matter how many workers built them.  It runs under -race in CI, which
// also exercises the batch barrier for data races.
func TestTwoHopDeterministicAcrossWorkers(t *testing.T) {
	for name, g := range twoHopTestGraphs() {
		base := NewTwoHopWith(g, TwoHopOptions{Workers: 1})
		for _, workers := range []int{2, 3, 8} {
			o := NewTwoHopWith(g, TwoHopOptions{Workers: workers})
			if o.Entries() != base.Entries() {
				t.Fatalf("%s: %d workers produced %d entries, 1 worker %d",
					name, workers, o.Entries(), base.Entries())
			}
			for v := 0; v < g.N(); v++ {
				bh, bd := base.Label(graph.NodeID(v))
				oh, od := o.Label(graph.NodeID(v))
				if len(bh) != len(oh) {
					t.Fatalf("%s: node %d label size %d at %d workers, %d at 1",
						name, v, len(oh), workers, len(bh))
				}
				for i := range bh {
					if bh[i] != oh[i] || bd[i] != od[i] {
						t.Fatalf("%s: node %d entry %d differs: (%d,%d) at %d workers vs (%d,%d) at 1",
							name, v, i, oh[i], od[i], workers, bh[i], bd[i])
					}
				}
			}
		}
	}
}

// TestTwoHopDeterministicAcrossBuilds pins bit-level reproducibility of
// two independent builds (same graph, same options) — the property the
// byte-identical-JSON CI smoke ultimately rests on.
func TestTwoHopDeterministicAcrossBuilds(t *testing.T) {
	g := gridGraph(16, 16)
	a, b := NewTwoHop(g), NewTwoHop(g)
	if a.Entries() != b.Entries() {
		t.Fatalf("entries differ: %d vs %d", a.Entries(), b.Entries())
	}
	for v := 0; v < g.N(); v++ {
		ah, ad := a.Label(graph.NodeID(v))
		bh, bd := b.Label(graph.NodeID(v))
		for i := range ah {
			if ah[i] != bh[i] || ad[i] != bd[i] {
				t.Fatalf("node %d entry %d differs", v, i)
			}
		}
	}
}

// TestTwoHopLabelBudget checks the auto-policy escape hatch: a tight
// budget aborts the build (nil return), a generous one succeeds, and
// whether the abort fires is independent of the worker count.
func TestTwoHopLabelBudget(t *testing.T) {
	g := gridGraph(24, 24) // grid labels grow ~sqrt(n), well over 4 per node
	for _, workers := range []int{1, 4} {
		if o := NewTwoHopWith(g, TwoHopOptions{Workers: workers, MaxAvgLabel: 4}); o != nil {
			t.Fatalf("workers=%d: expected nil for a 4-entry budget, got avg %.1f", workers, o.AvgLabel())
		}
		if o := NewTwoHopWith(g, TwoHopOptions{Workers: workers, MaxAvgLabel: 1e9}); o == nil {
			t.Fatalf("workers=%d: generous budget still aborted", workers)
		}
	}
}

// TestTwoHopStats sanity-checks the label statistics accessors.
func TestTwoHopStats(t *testing.T) {
	g := pathGraph(100)
	o := NewTwoHop(g)
	if o.N() != 100 {
		t.Fatalf("N() = %d", o.N())
	}
	if o.Entries() < int64(g.N()) {
		t.Fatalf("only %d entries for %d nodes (every node labels itself)", o.Entries(), g.N())
	}
	if avg := o.AvgLabel(); avg <= 0 || avg > float64(g.N()) {
		t.Fatalf("AvgLabel() = %v", avg)
	}
	if mx := o.MaxLabel(); mx < int(o.AvgLabel()) || mx > g.N() {
		t.Fatalf("MaxLabel() = %d", mx)
	}
	if o.MemoryBytes() <= 0 {
		t.Fatalf("MemoryBytes() = %d", o.MemoryBytes())
	}
}

// TestSourcePolicyResolve checks the resolver's tier choices.
func TestSourcePolicyResolve(t *testing.T) {
	small := gridGraph(8, 8)
	metric := NewField(small.BFS(3), 3) // stand-in analytic source
	isMetric := func(src Source) bool {
		f, ok := src.(Field)
		return ok && f.Target() == 3
	}
	if src := PolicyField.Resolve(small, metric); src != nil {
		t.Fatal("field policy must resolve to nil (BFS fields)")
	}
	if src := PolicyAnalytic.Resolve(small, metric); !isMetric(src) {
		t.Fatal("analytic policy must hand back the metric")
	}
	if src := PolicyAnalytic.Resolve(small, nil); src != nil {
		t.Fatal("analytic policy without a metric must fall back to fields")
	}
	if _, ok := PolicyTwoHop.Resolve(small, metric).(*TwoHop); !ok {
		t.Fatal("twohop policy must build the oracle even when a metric exists")
	}
	if th, ok := PolicyTwoHopPacked.Resolve(small, metric).(*TwoHop); !ok || !th.Packed() {
		t.Fatal("twohop-packed policy must build a packed oracle even when a metric exists")
	}
	if src := PolicyAuto.Resolve(small, metric); !isMetric(src) {
		t.Fatal("auto policy must prefer the metric")
	}
	if src := PolicyAuto.Resolve(small, nil); src != nil {
		t.Fatalf("auto policy on a small metric-less graph must use fields, got %T", src)
	}
	if _, err := ParseSourcePolicy("nope"); err == nil {
		t.Fatal("ParseSourcePolicy accepted garbage")
	}
	if p, err := ParseSourcePolicy(""); err != nil || p != PolicyAuto {
		t.Fatalf("ParseSourcePolicy(%q) = (%v, %v), want auto", "", p, err)
	}
}
