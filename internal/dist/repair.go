package dist

import (
	"fmt"
	"sort"
	"sync/atomic"

	"navaug/internal/graph"
)

// DynTwoHop is an exact 2-hop-cover distance oracle over a churning
// graph.DynGraph, repaired incrementally instead of rebuilt per batch.
//
// # Why stale base labels still answer clean pairs exactly
//
// Let G_old -> G_new be one applied delta batch with endpoint set E (every
// node incident to an inserted or deleted edge), and define the dirty set
//
//	D = { w : d_old(w, e) != d_new(w, e) for some e in E }.
//
// Claim: for u, v both outside D, d_old(u, v) = d_new(u, v).  Suppose the
// distance decreased.  A shortest G_new u–v path must use an inserted edge
// (otherwise it exists in G_old); let (a, b) be the first one, a, b in E.
// Its prefix gives d_new(u, v) >= d_new(u, a) + 1 + d_new(b, v), and
// cleanliness of u and v turns both terms into old distances.  In G_old,
// d_old(a, v) = d_new(a, v) <= 1 + d_new(b, v) (the edge exists in G_new,
// and a is in E with v clean), so the triangle inequality through a gives
// d_old(u, v) <= d_old(u, a) + 1 + d_old(b, v) <= d_new(u, v) — a
// contradiction.  An increase is refuted symmetrically on a shortest G_old
// path through its first deleted edge, using the triangle inequality in
// G_new.  The argument covers mixed insert/delete batches.  Hence the
// ORIGINAL label arrays — built on an older graph — still answer every
// clean pair exactly; only pairs touching D can be wrong.
//
// # Repair model
//
// Each applied batch computes D exactly (BFS from every endpoint on the old
// and the new graph, diffed) and adds it to the debt set.  A repair budget
// then patches debt nodes in ascending node id: a patch is one exact BFS
// field from the node on the current graph, stamped with the current
// generation.  A query prefers the fresher endpoint's patch, falling back
// to the base labels when neither endpoint was ever dirtied.  When the debt
// set is empty the oracle is query-equivalent to a full rebuild (the
// disttest conformance suite pins this); nodes still in debt serve their
// last-known answers — that bounded staleness, as a function of the budget,
// is exactly what experiment E13 measures.  Rebuild (the compaction path)
// re-labels from scratch and clears all patches and debt.
//
// # Concurrency
//
// All reads go through one atomic pointer to an immutable state; ApplyBatch
// and Rebuild construct a fresh state and swap it in.  Dist is therefore
// safe for any number of concurrent readers against one writer (the churn
// pipeline), which the race-detector soak exercises.  Writers are not safe
// against each other.
type DynTwoHop struct {
	opts  TwoHopOptions
	state atomic.Pointer[dynTwoHopState]
}

type dynTwoHopState struct {
	base *TwoHop
	n    int
	gen  uint64 // graph generation this state answers for

	// patchIdx[u] indexes patches, -1 when u has no patch.  Dense so the
	// query hot path pays an array read, not a map lookup.
	patchIdx []int32
	patches  []dynPatch

	// debt holds dirty nodes not yet re-patched at their latest dirtying,
	// sorted ascending.  Their answers (old patch or base labels) may be
	// stale until a later batch's budget — or a rebuild — drains them.
	debt []graph.NodeID

	stats DynTwoHopStats
}

// dynPatch is one repaired node: its exact BFS field at generation gen.
type dynPatch struct {
	node  graph.NodeID
	gen   uint64
	field []int32
}

// DynTwoHopStats summarises the repair history of a DynTwoHop.
type DynTwoHopStats struct {
	// Gen is the graph generation the oracle currently answers for.
	Gen uint64
	// Debt is the number of dirty nodes still serving stale answers.
	Debt int
	// Patched is the number of nodes currently carrying a patch field.
	Patched int
	// DirtyTotal counts dirty-set members summed over all batches;
	// PatchedTotal counts patch BFS runs; Rebuilds counts full re-labelings.
	DirtyTotal   int64
	PatchedTotal int64
	Rebuilds     int64
}

// NewDynTwoHop builds the base labels for the current state of d (compacted
// if the overlay is non-empty) and returns an oracle at d's generation.
// The options follow NewTwoHopWith, except that a MaxAvgLabel budget abort
// is an error here — a churn pipeline needs an oracle, not a nil fallback.
func NewDynTwoHop(d *graph.DynGraph, opts TwoHopOptions) (*DynTwoHop, error) {
	t := &DynTwoHop{opts: opts}
	if err := t.rebuild(d.Compact(), d.Gen()); err != nil {
		return nil, err
	}
	return t, nil
}

// rebuild labels g from scratch and installs a fresh state at gen.
func (t *DynTwoHop) rebuild(g *graph.Graph, gen uint64) error {
	base := NewTwoHopWith(g, t.opts)
	if base == nil {
		return fmt.Errorf("dist: 2-hop label build aborted by MaxAvgLabel budget %.0f on %s", t.opts.MaxAvgLabel, g)
	}
	idx := make([]int32, g.N())
	for i := range idx {
		idx[i] = -1
	}
	var prev DynTwoHopStats
	if s := t.state.Load(); s != nil {
		prev = s.stats
	}
	st := &dynTwoHopState{base: base, n: g.N(), gen: gen, patchIdx: idx}
	st.stats = prev
	st.stats.Gen = gen
	st.stats.Debt = 0
	st.stats.Patched = 0
	st.stats.Rebuilds++
	t.state.Store(st)
	return nil
}

// Rebuild re-labels the oracle from scratch on the current state of d —
// the compaction path: the churn pipeline rebases the DynGraph and rebuilds
// the oracle over the fresh CSR, clearing every patch and all debt.
func (t *DynTwoHop) Rebuild(d *graph.DynGraph) error {
	return t.rebuild(d.Compact(), d.Gen())
}

// N returns the node count, letting the routing validator check the oracle
// against the graph it routes on.
func (t *DynTwoHop) N() int { return t.state.Load().n }

// Gen returns the graph generation the oracle currently answers for.
func (t *DynTwoHop) Gen() uint64 { return t.state.Load().gen }

// Debt returns the number of nodes currently serving stale answers.
func (t *DynTwoHop) Debt() int { return len(t.state.Load().debt) }

// Stats returns the repair counters.
func (t *DynTwoHop) Stats() DynTwoHopStats { return t.state.Load().stats }

// CheckGen fails loud when the oracle's generation differs from the
// caller's graph generation: an oracle that missed a batch (or raced a
// compaction) must never silently serve distances for a graph state it has
// not seen.
func (t *DynTwoHop) CheckGen(gen uint64) error {
	if have := t.Gen(); have != gen {
		return fmt.Errorf("dist: stale 2-hop oracle: oracle at graph generation %d, graph at %d (every DynGraph.Apply must go through ApplyBatch)", have, gen)
	}
	return nil
}

// Dist implements Source.  The fresher-patched endpoint answers first (its
// field is exact for the pair whenever both endpoints are out of debt — see
// the package comment's dirty-set argument), then the base labels.
func (t *DynTwoHop) Dist(u, v graph.NodeID) int32 {
	if u == v {
		return 0
	}
	s := t.state.Load()
	iu, iv := s.patchIdx[u], s.patchIdx[v]
	if iu >= 0 {
		if iv >= 0 && s.patches[iv].gen > s.patches[iu].gen {
			return s.patches[iv].field[u]
		}
		return s.patches[iu].field[v]
	}
	if iv >= 0 {
		return s.patches[iv].field[u]
	}
	return s.base.Dist(u, v)
}

// ApplyBatch applies one delta batch to d and repairs the oracle: it
// computes the exact dirty set (old/new BFS diff from every delta
// endpoint), merges it into the debt set, patches up to budget debt nodes
// (budget < 0 means unlimited, 0 means track debt only), and swaps in a
// state at d's new generation.  It returns the dirty set, sorted ascending
// — the churn pipeline resamples those nodes' augmentation contacts.
//
// The oracle must be at d's current generation when called (every Apply on
// d has to go through here); otherwise it fails loud without mutating d.
func (t *DynTwoHop) ApplyBatch(d *graph.DynGraph, deltas []graph.Delta, budget int) ([]graph.NodeID, error) {
	old := t.state.Load()
	if old.n != d.N() {
		return nil, fmt.Errorf("dist: oracle covers %d nodes, graph has %d", old.n, d.N())
	}
	if err := t.CheckGen(d.Gen()); err != nil {
		return nil, err
	}

	// Unique delta endpoints, sorted for a deterministic BFS order.
	seen := make(map[graph.NodeID]bool, 2*len(deltas))
	endpoints := make([]graph.NodeID, 0, 2*len(deltas))
	for _, dl := range deltas {
		for _, e := range [2]graph.NodeID{dl.U, dl.V} {
			if !seen[e] {
				seen[e] = true
				endpoints = append(endpoints, e)
			}
		}
	}
	sort.Slice(endpoints, func(i, j int) bool { return endpoints[i] < endpoints[j] })

	oldFields := make([][]int32, len(endpoints))
	for i, e := range endpoints {
		oldFields[i] = d.BFS(e)
	}
	if err := d.Apply(deltas); err != nil {
		return nil, err
	}

	// Exact dirty set: nodes whose distance to some endpoint changed.
	dirty := make([]graph.NodeID, 0)
	if len(endpoints) > 0 {
		newField := make([]int32, d.N())
		queue := make([]int32, 0, d.N())
		isDirty := make([]bool, d.N())
		for i, e := range endpoints {
			for j := range newField {
				newField[j] = graph.Unreachable
			}
			d.BFSInto(e, newField, queue)
			for w, nd := range newField {
				if nd != oldFields[i][w] {
					isDirty[w] = true
				}
			}
		}
		for w, dirt := range isDirty {
			if dirt {
				dirty = append(dirty, graph.NodeID(w))
			}
		}
	}

	// Copy-on-write state: patches are immutable per entry, so a shallow
	// slice copy suffices; patchIdx is cloned.
	st := &dynTwoHopState{
		base:     old.base,
		n:        old.n,
		gen:      d.Gen(),
		patchIdx: append([]int32(nil), old.patchIdx...),
		patches:  append([]dynPatch(nil), old.patches...),
	}
	st.stats = old.stats
	st.stats.Gen = st.gen
	st.stats.DirtyTotal += int64(len(dirty))

	// Merge the dirty nodes into the (sorted) debt set.
	debtSet := make(map[graph.NodeID]bool, len(old.debt)+len(dirty))
	for _, w := range old.debt {
		debtSet[w] = true
	}
	for _, w := range dirty {
		debtSet[w] = true
	}
	debt := make([]graph.NodeID, 0, len(debtSet))
	for w := range debtSet {
		debt = append(debt, w)
	}
	sort.Slice(debt, func(i, j int) bool { return debt[i] < debt[j] })

	// Budgeted repair in ascending node id: one exact BFS field per node,
	// stamped with the new generation.
	repaired := 0
	remaining := debt[:0]
	for _, w := range debt {
		if budget >= 0 && repaired >= budget {
			remaining = append(remaining, w)
			continue
		}
		field := make([]int32, d.N())
		for j := range field {
			field[j] = graph.Unreachable
		}
		d.BFSInto(w, field, nil)
		p := dynPatch{node: w, gen: st.gen, field: field}
		if i := st.patchIdx[w]; i >= 0 {
			st.patches[i] = p
		} else {
			st.patchIdx[w] = int32(len(st.patches))
			st.patches = append(st.patches, p)
		}
		repaired++
	}
	st.debt = append([]graph.NodeID(nil), remaining...)
	st.stats.PatchedTotal += int64(repaired)
	st.stats.Debt = len(st.debt)
	st.stats.Patched = len(st.patches)
	t.state.Store(st)
	return dirty, nil
}
