package dist

import (
	"runtime"
	"sync"
	"sync/atomic"

	"navaug/internal/graph"
)

// APSP is an exact all-pairs shortest-path oracle.  Distances are stored in
// one flat row-major int32 matrix, so a query is a single indexed load and
// a whole row (a distance field) can be handed out without copying.  The
// matrix is immutable after construction and safe for concurrent readers.
type APSP struct {
	n int32
	d []int32 // row-major n×n, d[u*n+v] = dist(u, v)
}

// APSPOptions tunes NewAPSPWith.
type APSPOptions struct {
	// Workers is the BFS worker-pool size; <= 0 means GOMAXPROCS.  The
	// resulting matrix is identical for every worker count: each worker
	// claims whole rows and rows are pure functions of the graph.
	Workers int
}

// NewAPSP computes the exact distance matrix of g using all CPUs.
func NewAPSP(g *graph.Graph) *APSP {
	return NewAPSPWith(g, APSPOptions{})
}

// NewAPSPWith computes the exact distance matrix of g with the given
// options.  Construction costs O(n·(n+m)) time and n² int32 of memory.
func NewAPSPWith(g *graph.Graph, opts APSPOptions) *APSP {
	n := g.N()
	a := &APSP{n: int32(n), d: make([]int32, n*n)}
	if n == 0 {
		return a
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			queue := make([]int32, 0, n)
			for {
				u := next.Add(1) - 1
				if u >= int64(n) {
					return
				}
				row := a.d[int(u)*n : (int(u)+1)*n]
				for i := range row {
					row[i] = graph.Unreachable
				}
				g.BFSInto(graph.NodeID(u), row, queue)
			}
		}()
	}
	wg.Wait()
	return a
}

// N returns the number of nodes the oracle covers.
func (a *APSP) N() int { return int(a.n) }

// Dist returns the exact hop distance between u and v, or
// graph.Unreachable if they lie in different components.
func (a *APSP) Dist(u, v graph.NodeID) int32 {
	return a.d[int64(u)*int64(a.n)+int64(v)]
}

// Row returns the full distance field from u as a shared, read-only slice
// of length N.  Callers must not modify it.
func (a *APSP) Row(u graph.NodeID) []int32 {
	return a.d[int64(u)*int64(a.n) : (int64(u)+1)*int64(a.n)]
}

// Eccentricity returns the maximum distance from u to any node, or -1 if
// some node is unreachable from u.
func (a *APSP) Eccentricity(u graph.NodeID) int32 {
	ecc := int32(0)
	for _, d := range a.Row(u) {
		if d == graph.Unreachable {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the exact diameter, or -1 for disconnected graphs
// (0 for the empty graph).
func (a *APSP) Diameter() int32 {
	best := int32(0)
	for u := int32(0); u < a.n; u++ {
		e := a.Eccentricity(u)
		if e < 0 {
			return -1
		}
		if e > best {
			best = e
		}
	}
	return best
}
