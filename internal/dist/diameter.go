package dist

import (
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// EstimateDiameter returns a lower bound on the diameter of g obtained by
// repeated double sweeps: each sweep runs a BFS from a random start, then a
// BFS from the farthest node found, and records the largest distance seen.
// On trees a single sweep is exact; on general connected graphs the bound
// is always at least half the true diameter (any eccentricity is).  The
// cost is 2·sweeps BFS traversals, reusing one pair of scratch buffers.
// Disconnected graphs are bounded by the components the sweeps land in;
// the empty graph yields 0.
func EstimateDiameter(g *graph.Graph, sweeps int, rng *xrand.RNG) int32 {
	n := g.N()
	if n == 0 {
		return 0
	}
	if sweeps < 1 {
		sweeps = 1
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	best := int32(0)
	for s := 0; s < sweeps; s++ {
		start := graph.NodeID(rng.Intn(n))
		if _, _, d := doubleSweep(g, start, dist, queue); d > best {
			best = d
		}
	}
	return best
}

// ExtremalPair returns an approximately diametral pair (a, b) together with
// dist(a, b), via one deterministic double sweep from node 0: a is the
// farthest node from 0, b the farthest node from a (first-index
// tie-breaking, so the pair is a pure function of the graph).  The Monte
// Carlo engine seeds its pair sample with it to sharpen greedy-diameter
// estimates.  The empty graph yields (0, 0, 0).
func ExtremalPair(g *graph.Graph) (graph.NodeID, graph.NodeID, int32) {
	n := g.N()
	if n == 0 {
		return 0, 0, 0
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	return doubleSweep(g, 0, dist, queue)
}

// doubleSweep is the shared double-sweep primitive: BFS from start to find
// the farthest node a, BFS from a to find the farthest node b, returning
// (a, b, dist(a, b)).  Both sweeps reuse the provided scratch buffers.
func doubleSweep(g *graph.Graph, start graph.NodeID, dist []int32, queue []int32) (graph.NodeID, graph.NodeID, int32) {
	a, _ := farthest(g, start, dist, queue)
	b, d := farthest(g, a, dist, queue)
	return a, b, d
}

// farthest runs one BFS from src using the provided scratch buffers and
// returns a farthest reached node together with its distance.
func farthest(g *graph.Graph, src graph.NodeID, dist []int32, queue []int32) (graph.NodeID, int32) {
	for i := range dist {
		dist[i] = graph.Unreachable
	}
	g.BFSInto(src, dist, queue)
	far, fd := src, int32(0)
	for v, d := range dist {
		if d > fd {
			far, fd = graph.NodeID(v), d
		}
	}
	return far, fd
}
