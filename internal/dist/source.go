package dist

import (
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// Source answers point-to-point hop-distance queries in O(1) (or near-O(1))
// time and O(1) memory per query.  It is the abstraction the routing hot
// path steers by: greedy routing only ever asks "how far is v from the
// target t?", and a Source answers exactly that without materialising a
// per-target distance field.
//
// Implementations must be safe for concurrent readers once constructed and
// must agree with BFS hop distances exactly (analytic closed forms for
// structured graph families live in internal/graph/gen and are
// property-tested against BFS).  Unreachable pairs yield graph.Unreachable.
//
// Oracle implementations (APSP, LandmarkOracle) satisfy Source; the
// landmark tier only returns upper bounds, so it must not be used where the
// routing invariants require exact distances.  For graphs with no analytic
// metric, a BFS field wrapped by NewField is the exact fallback Source.
type Source interface {
	// Dist returns the hop distance from u to t.
	Dist(u, t graph.NodeID) int32
}

// Field is a Source backed by one single-source BFS distance field, rooted
// at a fixed target.  It answers Dist(u, t) by indexing the field, ignoring
// t — callers must only query the target the field was computed for (the
// route package validates Dist(t, t) == 0 up front, which catches
// mis-rooted fields).  Field is the adapter between the legacy per-target
// field machinery (FieldCache) and Source-driven routing.
type Field struct {
	target graph.NodeID
	d      []int32
}

// NewField wraps the BFS distance field d (d[v] = dist(v, target)) as a
// Source rooted at target.
func NewField(d []int32, target graph.NodeID) Field {
	return Field{target: target, d: d}
}

// Target returns the node the field is rooted at.
func (f Field) Target() graph.NodeID { return f.target }

// N returns the number of nodes the field covers.  Sources that know their
// node count (fields, the analytic family metrics) expose it so routing can
// reject a source built for a different graph instead of indexing out of
// range.
func (f Field) N() int { return len(f.d) }

// Dist implements Source by indexing the field; the queried target is
// trusted to be the field's root.
func (f Field) Dist(u, _ graph.NodeID) int32 { return f.d[u] }

// Transitive is a Source over a vertex-transitive graph that additionally
// exposes the graph's distance profile — the sphere sizes |{v : d(u,v)=d}|,
// which by vertex-transitivity do not depend on u — and uniform sampling on
// a sphere.  This is what turns an analytic metric into an analytic
// *sampler*: schemes whose contact law only depends on the distance to the
// contact (harmonic, ball) can draw a distance from the profile and then a
// uniform node at that distance, in O(profile) preprocessing and O(1)-ish
// per draw, instead of enumerating O(n) candidates per draw.
//
// The gen package implements Transitive for cycles, 2D tori, hypercubes and
// complete graphs.
type Transitive interface {
	Source

	// N returns the number of nodes of the underlying graph.
	N() int
	// Eccentricity returns the (common, by vertex-transitivity) eccentricity
	// of every node: the largest realised distance.
	Eccentricity() int32
	// SphereSize returns the number of nodes at distance exactly d from any
	// node, for 0 <= d <= Eccentricity().  SphereSize(0) is always 1.
	SphereSize(d int32) float64
	// SampleAtDistance returns a uniformly random node at distance exactly d
	// from u (d = 0 returns u itself).  It panics if d exceeds the
	// eccentricity.
	SampleAtDistance(u graph.NodeID, d int32, rng *xrand.RNG) graph.NodeID
}
