package dist

import (
	"bytes"
	"math"
	"testing"

	"navaug/internal/graph"
)

// twoHopBoundaryGraphs sizes graphs so their node counts straddle the
// geometric batch schedule's commit boundaries (cumulative hub counts 63,
// 127, 191, ...): off-by-one bugs in the bit-parallel batch engine live
// exactly where a batch is truncated or exactly full.
func twoHopBoundaryGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"cycle-63":  cycleGraph(63),
		"cycle-64":  cycleGraph(64),
		"cycle-65":  cycleGraph(65),
		"cycle-127": cycleGraph(127),
		"cycle-128": cycleGraph(128),
		"cycle-129": cycleGraph(129),
		"grid-8x16": gridGraph(8, 16),
		"rtree-191": randomTreeLike(191, 5),
	}
}

// twoHopRequireEqual fails unless the two oracles hold byte-identical
// label sets (entry by entry, node by node).
func twoHopRequireEqual(t *testing.T, name string, want, got *TwoHop) {
	t.Helper()
	if want.Entries() != got.Entries() {
		t.Fatalf("%s: entry totals differ: %d vs %d", name, got.Entries(), want.Entries())
	}
	for v := 0; v < want.N(); v++ {
		wh, wd := want.Label(graph.NodeID(v))
		gh, gd := got.Label(graph.NodeID(v))
		if len(wh) != len(gh) {
			t.Fatalf("%s: node %d label size %d, want %d", name, v, len(gh), len(wh))
		}
		for i := range wh {
			if wh[i] != gh[i] || wd[i] != gd[i] {
				t.Fatalf("%s: node %d entry %d differs: (%d,%d), want (%d,%d)",
					name, v, i, gh[i], gd[i], wh[i], wd[i])
			}
		}
	}
}

// TestTwoHopEngineByteIdentity is the engine-equivalence contract: the
// 8-bit-lane, 16-bit-lane and scalar batch engines must commit identical
// labels, so the (depth-driven) engine switch points can never change what
// a build produces.
func TestTwoHopEngineByteIdentity(t *testing.T) {
	graphs := twoHopTestGraphs()
	for name, g := range twoHopBoundaryGraphs() {
		graphs[name] = g
	}
	for name, g := range graphs {
		base := NewTwoHopWith(g, TwoHopOptions{Workers: 1})
		scalar := NewTwoHopWith(g, TwoHopOptions{Workers: 1, forceScalar: true})
		wide := NewTwoHopWith(g, TwoHopOptions{Workers: 1, force16: true})
		twoHopRequireEqual(t, name+"/scalar", base, scalar)
		twoHopRequireEqual(t, name+"/16-bit", base, wide)
	}
}

// TestTwoHopDepthFallback forces the mid-batch engine bailouts: a path of
// 200 nodes exceeds the 8-bit lane depth cap (126) partway through a
// traversal, and one of 17000 nodes exceeds the 16-bit cap (16382) too,
// driving the build through every fallback seam.  Labels must match the
// scalar engine exactly, and distances must match the path metric.
func TestTwoHopDepthFallback(t *testing.T) {
	g := pathGraph(200)
	twoHopRequireEqual(t, "path-200",
		NewTwoHopWith(g, TwoHopOptions{Workers: 1, forceScalar: true}),
		NewTwoHopWith(g, TwoHopOptions{Workers: 3}))

	deep := pathGraph(17000)
	o := NewTwoHopWith(deep, TwoHopOptions{Workers: 2})
	for _, pair := range [][2]int32{{0, 16999}, {0, 1}, {123, 16000}, {8500, 8500}} {
		want := pair[1] - pair[0]
		if got := o.Dist(graph.NodeID(pair[0]), graph.NodeID(pair[1])); got != want {
			t.Fatalf("deep path: Dist(%d,%d) = %d, want %d", pair[0], pair[1], got, want)
		}
	}
}

// TestTwoHopPackedMatchesRaw pins the compressed representation to the raw
// one: same label sets, same distances, same statistics, and the
// Pack/Unpack round trips are exact in both directions.
func TestTwoHopPackedMatchesRaw(t *testing.T) {
	graphs := twoHopTestGraphs()
	for name, g := range twoHopBoundaryGraphs() {
		graphs[name] = g
	}
	for name, g := range graphs {
		raw := NewTwoHopWith(g, TwoHopOptions{Workers: 1})
		packed := NewTwoHopWith(g, TwoHopOptions{Workers: 3, Packed: true})
		if !packed.Packed() || raw.Packed() {
			t.Fatalf("%s: Packed() flags wrong: packed=%v raw=%v", name, packed.Packed(), raw.Packed())
		}
		twoHopRequireEqual(t, name+"/packed", raw, packed)
		if raw.Entries() != packed.Entries() || raw.MaxLabel() != packed.MaxLabel() ||
			math.Abs(raw.AvgLabel()-packed.AvgLabel()) > 1e-12 {
			t.Fatalf("%s: label statistics differ between representations", name)
		}
		n := g.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if a, b := raw.Dist(graph.NodeID(u), graph.NodeID(v)), packed.Dist(graph.NodeID(u), graph.NodeID(v)); a != b {
					t.Fatalf("%s: Dist(%d,%d) = %d raw, %d packed", name, u, v, a, b)
				}
			}
		}
		// Round trips: packing the raw build must reproduce the packed
		// build byte for byte, and unpacking must restore the raw arrays.
		po, pp, pb := packed.RawPacked()
		ro, rp, rb := raw.Pack().RawPacked()
		if !bytes.Equal(pb, rb) {
			t.Fatalf("%s: Pack() blob differs from a Packed build", name)
		}
		for i := range pp {
			if pp[i] != rp[i] {
				t.Fatalf("%s: Pack() poff[%d] = %d, want %d", name, i, rp[i], pp[i])
			}
		}
		for i := range po {
			if po[i] != ro[i] {
				t.Fatalf("%s: Pack() order[%d] differs", name, i)
			}
		}
		twoHopRequireEqual(t, name+"/unpack", raw, packed.Unpack())
		if n > 8 && packed.MemoryBytes() >= raw.MemoryBytes() {
			t.Fatalf("%s: packed oracle (%d B) not smaller than raw (%d B)",
				name, packed.MemoryBytes(), raw.MemoryBytes())
		}
	}
}

// TestTwoHopPackedDeterministicAcrossWorkers extends the worker-identity
// contract to the compressed representation and the batch-boundary sizes:
// the varint blob itself — not just the decoded labels — must be the same
// bytes at every worker count.
func TestTwoHopPackedDeterministicAcrossWorkers(t *testing.T) {
	for name, g := range twoHopBoundaryGraphs() {
		_, bp, bb := NewTwoHopWith(g, TwoHopOptions{Workers: 1, Packed: true}).RawPacked()
		for _, workers := range []int{2, 3, 8, 64} {
			_, op, ob := NewTwoHopWith(g, TwoHopOptions{Workers: workers, Packed: true}).RawPacked()
			if !bytes.Equal(bb, ob) {
				t.Fatalf("%s: packed blob differs at %d workers", name, workers)
			}
			for i := range bp {
				if bp[i] != op[i] {
					t.Fatalf("%s: poff[%d] differs at %d workers", name, i, workers)
				}
			}
		}
	}
}

// TestTwoHopFromRawHostileDistance is the regression test for the hostile
// label overflow: a serialised label claiming a distance near MaxInt32
// used to be accepted, and two such entries at a shared hub summed past
// int32 in Dist, returning a negative "exact" distance.  FromRaw must
// bound every distance to [0, n).
func TestTwoHopFromRawHostileDistance(t *testing.T) {
	g := pathGraph(8)
	order, index, hubs, dists := NewTwoHopWith(g, TwoHopOptions{Workers: 1}).Raw()
	n := g.N()

	clone := func() []int32 { return append([]int32(nil), dists...) }
	// The unmodified arrays must round-trip.
	rt, err := TwoHopFromRaw(n, order, index, hubs, clone())
	if err != nil {
		t.Fatalf("valid arrays rejected: %v", err)
	}
	if got := rt.Dist(0, 7); got != 7 {
		t.Fatalf("round-tripped Dist(0,7) = %d, want 7", got)
	}
	for _, hostile := range []int32{math.MaxInt32, math.MaxInt32 - 1, int32(n), -1} {
		d := clone()
		d[0] = hostile
		if len(d) > 1 {
			d[1] = hostile // two entries: the pair that would overflow a Dist sum
		}
		if _, err := TwoHopFromRaw(n, order, index, hubs, d); err == nil {
			t.Fatalf("FromRaw accepted hostile label distance %d (n = %d)", hostile, n)
		}
	}
	// The largest legal distance must still be accepted (structure aside,
	// the bound is exactly [0, n)): dist n-1 on a self-consistent index.
	d := clone()
	for i := range d {
		if d[i] > int32(n-1) {
			t.Fatalf("build produced out-of-bound distance %d", d[i])
		}
	}
}

// TestTwoHopPackedFromRawHostile feeds TwoHopPackedFromRaw corrupt and
// hostile payloads: every one must be rejected before any query can walk
// the blob out of bounds or overflow.
func TestTwoHopPackedFromRawHostile(t *testing.T) {
	g := gridGraph(5, 5)
	order, poff, blob := NewTwoHopWith(g, TwoHopOptions{Workers: 1, Packed: true}).RawPacked()
	n := g.N()
	cloneOff := func() []int64 { return append([]int64(nil), poff...) }
	cloneBlob := func() []byte { return append([]byte(nil), blob...) }

	if _, err := TwoHopPackedFromRaw(n, order, cloneOff(), cloneBlob()); err != nil {
		t.Fatalf("valid packed arrays rejected: %v", err)
	}
	if _, err := TwoHopPackedFromRaw(n, order, cloneOff(), cloneBlob()[:len(blob)-1]); err == nil {
		t.Fatal("accepted a blob shorter than the index promises")
	}
	trunc := cloneBlob()
	trunc[len(trunc)-1] |= 0x80 // last byte now claims a continuation that never comes
	if _, err := TwoHopPackedFromRaw(n, order, cloneOff(), trunc); err == nil {
		t.Fatal("accepted a truncated varint")
	}
	bad := cloneOff()
	bad[0] = 1
	if _, err := TwoHopPackedFromRaw(n, order, bad, cloneBlob()); err == nil {
		t.Fatal("accepted poff[0] != 0")
	}
	bad = cloneOff()
	bad[1], bad[2] = bad[2], bad[1] // guaranteed non-monotone if unequal
	if bad[1] != bad[2] {
		if _, err := TwoHopPackedFromRaw(n, order, bad, cloneBlob()); err == nil {
			t.Fatal("accepted a decreasing packed index")
		}
	}

	// Hand-built tiny payloads (single-byte varints) for the semantic
	// checks: hub rank past n, distance past n-1, over-long varint.
	tiny := []graph.NodeID{0, 1}
	if _, err := TwoHopPackedFromRaw(2, tiny, []int64{0, 2, 2}, []byte{5, 0}); err == nil {
		t.Fatal("accepted hub rank 5 in a 2-node oracle")
	}
	if _, err := TwoHopPackedFromRaw(2, tiny, []int64{0, 2, 2}, []byte{0, 3}); err == nil {
		t.Fatal("accepted label distance 3 in a 2-node oracle")
	}
	if _, err := TwoHopPackedFromRaw(2, tiny, []int64{0, 7, 7},
		[]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x0f, 0x00}); err == nil {
		t.Fatal("accepted a varint exceeding 31 bits")
	}
	// Empty oracle: zero-length streams are fine.
	if o, err := TwoHopPackedFromRaw(1, []graph.NodeID{0}, []int64{0, 0}, nil); err != nil || o.Entries() != 0 {
		t.Fatalf("rejected an empty packed oracle: %v", err)
	}
}
