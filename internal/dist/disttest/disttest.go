// Package disttest is the conformance harness for distance sources: it
// pins every dist.Source implementation — BFS-field wrappers, analytic
// closed-form metrics, the exact oracles — to BFS ground truth, and the
// approximate landmark tier to its bound contract.  Every new Source
// implementation gets wired into the suite in conformance_test.go; the
// helpers are exported so other packages (gen's metric tests, future
// oracle tiers) can reuse the same checks instead of re-deriving them.
//
// The harness is deterministic: sampled checks derive all their choices
// from fixed seeds, so a conformance failure always reproduces.
package disttest

import (
	"testing"

	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// ExhaustiveMaxNodes is the graph size up to which Exact compares every
// pair against ground truth; larger graphs are checked on sampled sources
// and probes.
const ExhaustiveMaxNodes = 512

// sampledSources and sampledProbes size the sampled tier: for each of
// sampledSources BFS-rooted nodes, every node is checked when the graph is
// small enough, otherwise sampledProbes random probes plus the row's
// extremes.
const (
	sampledSources = 48
	sampledProbes  = 64
)

// Exact checks an all-pairs Source against BFS ground truth: every pair
// exhaustively for graphs up to ExhaustiveMaxNodes nodes, sampled
// source rows with random probes beyond that.  Unreachable pairs must
// yield graph.Unreachable, and Dist(u, u) must be 0 for every checked u.
func Exact(t testing.TB, g *graph.Graph, src dist.Source) {
	t.Helper()
	n := g.N()
	if n == 0 {
		return
	}
	if n <= ExhaustiveMaxNodes {
		for u := 0; u < n; u++ {
			checkRow(t, g, graph.NodeID(u), src, nil)
		}
		return
	}
	rng := xrand.New(0xd157c0de)
	for s := 0; s < sampledSources; s++ {
		checkRow(t, g, graph.NodeID(rng.Intn(n)), src, rng)
	}
}

// checkRow compares src against the BFS field of u — every node when rng
// is nil, sampled probes plus the farthest node otherwise.
func checkRow(t testing.TB, g *graph.Graph, u graph.NodeID, src dist.Source, rng *xrand.RNG) {
	t.Helper()
	d := g.BFS(u)
	if got := src.Dist(u, u); got != 0 {
		t.Fatalf("%v: Dist(%d,%d) = %d, want 0", g, u, u, got)
	}
	probe := func(v graph.NodeID) {
		if got := src.Dist(u, v); got != d[v] {
			t.Fatalf("%v: Dist(%d,%d) = %d, BFS says %d", g, u, v, got, d[v])
		}
	}
	if rng == nil {
		for v := 0; v < g.N(); v++ {
			probe(graph.NodeID(v))
		}
		return
	}
	far := u
	for v, dv := range d {
		if dv > d[far] {
			far = graph.NodeID(v)
		}
	}
	probe(far)
	for i := 0; i < sampledProbes; i++ {
		probe(graph.NodeID(rng.Intn(g.N())))
	}
}

// ExactAt checks a single-target Source (a BFS field wrapped by
// dist.NewField) against the target's BFS field: such sources only answer
// Dist(u, target), which is exactly what greedy routing asks.
func ExactAt(t testing.TB, g *graph.Graph, target graph.NodeID, src dist.Source) {
	t.Helper()
	d := g.BFS(target)
	for u := 0; u < g.N(); u++ {
		if got := src.Dist(graph.NodeID(u), target); got != d[u] {
			t.Fatalf("%v: field Dist(%d,%d) = %d, BFS says %d", g, u, target, got, d[u])
		}
	}
}

// Bounded is the contract of approximate oracles that return triangle
// bounds (dist.LandmarkOracle).
type Bounded interface {
	dist.Oracle
	Bounds(u, v graph.NodeID) (lower, upper int32)
}

// UpperLower checks a Bounded oracle's approximation guarantee on every
// pair (small graphs) or sampled pairs: lower <= d(u,v) <= upper for
// connected pairs (upper == graph.Unreachable means "no finite upper bound
// is known" and is only allowed when the oracle genuinely connects no
// landmark to both endpoints), bounds are symmetric in the pair, Dist
// returns exactly the upper bound, and both bounds collapse to the exact
// distance when u == v.
func UpperLower(t testing.TB, g *graph.Graph, o Bounded) {
	t.Helper()
	n := g.N()
	if n == 0 {
		return
	}
	check := func(u, v graph.NodeID, duv int32) {
		lower, upper := o.Bounds(u, v)
		if l2, u2 := o.Bounds(v, u); l2 != lower || u2 != upper {
			t.Fatalf("%v: Bounds(%d,%d) = (%d,%d) but Bounds(%d,%d) = (%d,%d)", g, u, v, lower, upper, v, u, l2, u2)
		}
		if got := o.Dist(u, v); got != upper {
			t.Fatalf("%v: Dist(%d,%d) = %d but upper bound is %d", g, u, v, got, upper)
		}
		if u == v {
			if lower != 0 || upper != 0 {
				t.Fatalf("%v: Bounds(%d,%d) = (%d,%d), want (0,0)", g, u, v, lower, upper)
			}
			return
		}
		if duv == graph.Unreachable {
			// Disconnected pair: any lower bound is vacuously true, but a
			// finite upper bound would claim a path that does not exist.
			if upper != graph.Unreachable {
				t.Fatalf("%v: disconnected pair (%d,%d) got finite upper bound %d", g, u, v, upper)
			}
			return
		}
		if lower < 0 || lower > duv {
			t.Fatalf("%v: lower bound %d for pair (%d,%d) exceeds true distance %d", g, lower, u, v, duv)
		}
		if upper != graph.Unreachable && upper < duv {
			t.Fatalf("%v: upper bound %d for pair (%d,%d) is below true distance %d", g, upper, u, v, duv)
		}
	}
	if n <= ExhaustiveMaxNodes {
		for u := 0; u < n; u++ {
			d := g.BFS(graph.NodeID(u))
			for v := u; v < n; v++ {
				check(graph.NodeID(u), graph.NodeID(v), d[v])
			}
		}
		return
	}
	rng := xrand.New(0xb0a2d5)
	for s := 0; s < sampledSources; s++ {
		u := graph.NodeID(rng.Intn(n))
		d := g.BFS(u)
		check(u, u, 0)
		for i := 0; i < sampledProbes; i++ {
			v := graph.NodeID(rng.Intn(n))
			check(u, v, d[v])
		}
	}
}
