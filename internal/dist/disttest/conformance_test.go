package disttest

import (
	"testing"

	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

// conformanceGraphs is the cross-implementation inventory: structural
// families with analytic metrics, unstructured random families (the 2-hop
// oracle's home turf), degree-flat expanders (its hard case), and a
// disconnected graph so unreachable-pair handling is pinned too.  Small
// instances are checked pair-exhaustively, the large tier (n up to 4096)
// on sampled sources.
func conformanceGraphs(t testing.TB, small bool) []*graph.Graph {
	t.Helper()
	rng := xrand.New(0xc0f0)
	mustRegular := func(n, d int) *graph.Graph {
		g, err := gen.RandomRegular(n, d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", n, d, err)
		}
		return g
	}
	if small {
		return []*graph.Graph{
			gen.Path(65),
			gen.Star(41),
			gen.Grid2D(8, 9),
			gen.Torus2D(6, 8),
			gen.Hypercube(6),
			gen.BinaryTree(127),
			gen.Barbell(9, 14),
			gen.RandomTree(300, rng),
			gen.RandomAttachmentTree(256, rng),
			gen.PowerLawAttachment(400, 2, rng),
			gen.WattsStrogatz(256, 2, 0.1, rng),
			mustRegular(128, 4),
			gen.GNP(350, 1.2/350.0, rng), // deliberately disconnected
		}
	}
	return []*graph.Graph{
		gen.Grid2D(64, 64),
		gen.RandomTree(4096, rng),
		gen.PowerLawAttachment(4096, 2, rng),
		gen.WattsStrogatz(2048, 2, 0.1, rng),
		gen.GNP(4096, 2.0/4096.0, rng), // deliberately disconnected
	}
}

func forAllConformanceGraphs(t *testing.T, f func(t *testing.T, g *graph.Graph)) {
	t.Helper()
	for _, small := range []bool{true, false} {
		for _, g := range conformanceGraphs(t, small) {
			g := g
			t.Run(g.String(), func(t *testing.T) { f(t, g) })
		}
	}
}

// TestConformanceTwoHop pins the 2-hop-cover oracle to BFS ground truth on
// every conformance graph, at two worker counts (the labels must be
// identical, which TestTwoHopDeterministicAcrossWorkers in the dist
// package checks entry-by-entry; here both builds must simply be exact).
func TestConformanceTwoHop(t *testing.T) {
	forAllConformanceGraphs(t, func(t *testing.T, g *graph.Graph) {
		Exact(t, g, dist.NewTwoHopWith(g, dist.TwoHopOptions{Workers: 1}))
		Exact(t, g, dist.NewTwoHopWith(g, dist.TwoHopOptions{Workers: 5}))
	})
}

// TestConformanceTwoHopPacked pins the compressed label representation to
// BFS ground truth through the same harness: the packed decode path must
// answer every query exactly as the raw CSR path does.
func TestConformanceTwoHopPacked(t *testing.T) {
	forAllConformanceGraphs(t, func(t *testing.T, g *graph.Graph) {
		Exact(t, g, dist.NewTwoHopWith(g, dist.TwoHopOptions{Workers: 5, Packed: true}))
	})
}

// TestConformanceAPSP pins the exact all-pairs matrix oracle.
func TestConformanceAPSP(t *testing.T) {
	forAllConformanceGraphs(t, func(t *testing.T, g *graph.Graph) {
		if g.N() > ExhaustiveMaxNodes {
			t.Skip("matrix oracle is for the small tier")
		}
		Exact(t, g, dist.NewAPSP(g))
	})
}

// TestConformanceField pins the per-target BFS field wrapper on sampled
// targets of every conformance graph.
func TestConformanceField(t *testing.T) {
	rng := xrand.New(0xf1e1d)
	forAllConformanceGraphs(t, func(t *testing.T, g *graph.Graph) {
		for i := 0; i < 4; i++ {
			target := graph.NodeID(rng.Intn(g.N()))
			ExactAt(t, g, target, dist.NewField(g.BFS(target), target))
		}
	})
}

// TestConformanceAnalyticMetrics pins every registered closed-form family
// metric through the same harness the oracles go through (the gen package
// additionally property-tests the metrics on its own instances).
func TestConformanceAnalyticMetrics(t *testing.T) {
	forAllConformanceGraphs(t, func(t *testing.T, g *graph.Graph) {
		src, ok := gen.MetricFor(g)
		if !ok {
			t.Skip("family has no analytic metric")
		}
		Exact(t, g, src)
	})
}

// TestConformanceLandmarkBounds pins the approximate landmark tier to its
// documented guarantee — triangle lower bound <= true distance <= upper
// bound, Dist returning the upper bound — at several sketch sizes
// including k = 1 and k > component count.
func TestConformanceLandmarkBounds(t *testing.T) {
	forAllConformanceGraphs(t, func(t *testing.T, g *graph.Graph) {
		for _, k := range []int{1, 4, 16} {
			UpperLower(t, g, dist.NewLandmarkOracle(g, k, xrand.New(uint64(k)+7)))
		}
	})
}
