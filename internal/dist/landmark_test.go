package dist

import (
	"testing"

	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// TestLandmarkExactAtLandmarks pins the tight half of the landmark
// guarantee: when one endpoint is a landmark l, the triangle bounds from l
// itself collapse — |d(l,l) − d(l,v)| = d(l,v) = d(l,l) + d(l,v) — so
// Bounds must return the exact distance on both sides, and Dist must be
// exact too.
func TestLandmarkExactAtLandmarks(t *testing.T) {
	for name, g := range twoHopTestGraphs() {
		if g.N() < 2 {
			continue
		}
		o := NewLandmarkOracle(g, 4, xrand.New(5))
		for _, l := range o.Landmarks() {
			d := g.BFS(l)
			for v := 0; v < g.N(); v++ {
				want := d[v]
				lower, upper := o.Bounds(l, graph.NodeID(v))
				if want == graph.Unreachable {
					if upper != graph.Unreachable {
						t.Fatalf("%s: landmark %d to unreachable %d got finite upper %d", name, l, v, upper)
					}
					continue
				}
				if lower != want || upper != want {
					t.Fatalf("%s: Bounds(%d,%d) = (%d,%d), want exact (%d,%d) at a landmark endpoint",
						name, l, v, lower, upper, want, want)
				}
				if got := o.Dist(l, graph.NodeID(v)); got != want {
					t.Fatalf("%s: Dist(%d,%d) = %d, want exact %d at a landmark endpoint", name, l, v, got, want)
				}
			}
		}
	}
}

// TestLandmarkNeverUnderestimates is the safe half of the guarantee on
// whole graphs: Dist (the upper bound) is never below the true distance,
// and the lower bound never above it.
func TestLandmarkNeverUnderestimates(t *testing.T) {
	for name, g := range twoHopTestGraphs() {
		if g.N() < 2 {
			continue
		}
		for _, k := range []int{1, 3, 8} {
			o := NewLandmarkOracle(g, k, xrand.New(uint64(k)))
			for u := 0; u < g.N(); u++ {
				d := g.BFS(graph.NodeID(u))
				for v := 0; v < g.N(); v++ {
					lower, upper := o.Bounds(graph.NodeID(u), graph.NodeID(v))
					if d[v] == graph.Unreachable {
						if upper != graph.Unreachable {
							t.Fatalf("%s k=%d: unreachable pair (%d,%d) got finite upper %d", name, k, u, v, upper)
						}
						continue
					}
					if upper != graph.Unreachable && upper < d[v] {
						t.Fatalf("%s k=%d: upper bound %d below true distance %d for (%d,%d)", name, k, upper, d[v], u, v)
					}
					if lower > d[v] {
						t.Fatalf("%s k=%d: lower bound %d above true distance %d for (%d,%d)", name, k, lower, d[v], u, v)
					}
				}
			}
		}
	}
}
