// Package dist is the distance-oracle layer shared by every augmentation
// scheme and by the Monte Carlo engine.
//
// The package offers five tiers of distance information, trading
// preprocessing cost against query cost:
//
//   - Source: the point-to-point query interface the routing hot path
//     steers by.  Analytic implementations for structured graph families
//     (internal/graph/gen) answer Dist(u, t) in O(1) time and memory with
//     no preprocessing at all, which is what makes million-node routing
//     experiments feasible; every other tier plugs in behind the same
//     interface (a BFS field wraps into a Source via NewField).
//   - TwoHop: an exact 2-hop-cover oracle (pruned landmark labeling) for
//     arbitrary graphs.  Degree-ordered pruned BFS construction, CSR-packed
//     labels, O(|label_u| + |label_v|) queries in O(1) memory.  Labels stay
//     polylog on tree-like and hub-dominated families (E12 rides it to
//     n = 2^20) and grow ~sqrt(n) on expanders — the SourcePolicy budget
//     decides when it is worth building.
//   - APSP: an exact all-pairs oracle backed by one flat int32 matrix,
//     computed by a worker pool of BFS sweeps.  O(n·(n+m)) preprocessing and
//     O(n²) memory, O(1) queries.  The right tool up to a few thousand
//     nodes, and what the path-decomposition machinery feeds on.
//   - LandmarkOracle: an approximate oracle built from k landmark BFS
//     trees.  O(k·(n+m)) preprocessing, O(k) queries returning triangle-
//     inequality lower/upper bounds (never an underestimate from Dist;
//     exact when an endpoint is a landmark).
//   - FieldCache: a concurrent cache of single-source distance fields,
//     amortising the per-target BFS that greedy routing needs across
//     trials, pairs and scheme comparisons on graphs with no analytic
//     metric.
//
// Every exact tier is pinned to BFS ground truth — and the landmark tier
// to its bound contract — by the reusable conformance harness in
// internal/dist/disttest.  SourcePolicy (policy.go) picks the tier a run
// steers by (analytic metric, 2-hop labels, BFS fields); the choice never
// affects results, only cost.  NewOracle picks between the matrix and
// landmark tiers automatically.  The bounded-ball enumeration used by the
// Theorem 4 scheme (Ball, BallBuffer) lives here too so that its
// scratch-buffer discipline is shared rather than duplicated per scheme.
package dist

import (
	"navaug/internal/graph"
	"navaug/internal/xrand"
)

// Oracle answers hop-distance queries on a fixed graph.  Implementations
// must be safe for concurrent readers once constructed.  Exact oracles
// (APSP) return the true distance; approximate ones (LandmarkOracle) return
// an upper bound.  Unreachable pairs yield graph.Unreachable (-1).
type Oracle interface {
	Dist(u, v graph.NodeID) int32
}

// apspMaxNodes is the largest node count for which NewOracle builds the
// exact matrix: beyond it the n² int32 matrix (≥ 1 GiB at 16k nodes)
// stops being a sensible default and landmark sketches take over.
const apspMaxNodes = 8192

// defaultLandmarks is the sketch size NewOracle uses for large graphs.
const defaultLandmarks = 32

// FixedOracleSeed is the pinned RNG seed NewOracle falls back to when a
// large graph is passed with a nil rng.  It is exported (and pinned by a
// test) so that landmark selection — and therefore every distance the
// resulting oracle reports — is reproducibly deterministic across runs and
// releases: changing this value silently changes large-graph oracle
// answers.
const FixedOracleSeed uint64 = 1

// NewOracle returns a distance oracle suitable for g's size: the exact
// APSP matrix up to apspMaxNodes nodes, a landmark sketch beyond that.
// The rng only influences landmark selection and may be nil for small
// graphs; large graphs with a nil rng use the pinned FixedOracleSeed, so
// two nil-rng calls on the same graph build identical oracles.
func NewOracle(g *graph.Graph, rng *xrand.RNG) Oracle {
	if g.N() <= apspMaxNodes {
		return NewAPSP(g)
	}
	if rng == nil {
		rng = xrand.New(FixedOracleSeed)
	}
	return NewLandmarkOracle(g, defaultLandmarks, rng)
}

// CeilLog2 returns ⌈log₂ n⌉ for n ≥ 1 (and 0 for n ≤ 1).  It is the number
// of ball scales the Theorem 4 scheme mixes over.
func CeilLog2(n int) int {
	k := 0
	for s := 1; s < n; s *= 2 {
		k++
	}
	return k
}
