// Package sampler provides the O(1) discrete-sampling primitives behind the
// augmentation schemes' Contact implementations: Walker/Vose alias tables
// (O(k) build, O(1) draw, zero allocations per draw) and epoch-marked dense
// memo buffers that reset in O(1).
//
// The package exists so that every scheme can honour the augment.Instance
// cost contract — Prepare may be arbitrarily heavy, Contact must be O(1)
// amortised and allocation-free — without each scheme reinventing the same
// machinery.  Outcomes are int32 so the tables compose directly with
// graph.NodeID and with 1-based matrix column labels alike.
package sampler

import (
	"fmt"
	"math"

	"navaug/internal/xrand"
)

// Alias is a Walker alias table over k discrete outcomes 0..k-1.  It is
// immutable after construction and safe for concurrent Draw calls (all
// mutable state lives in the caller's RNG).
//
// A zero-weight outcome is never drawn: its acceptance probability is
// exactly 0 and no positive-weight outcome ever aliases to it.
type Alias struct {
	prob  []float64 // acceptance probability of outcome i
	alias []int32   // outcome drawn when i is rejected
}

// NewAlias builds an alias table from the given non-negative weights.  The
// distribution is weights normalised by their sum.  It errors on an empty
// slice, a negative/NaN/Inf weight, or an all-zero total.
func NewAlias(weights []float64) (Alias, error) {
	a := Alias{
		prob:  make([]float64, len(weights)),
		alias: make([]int32, len(weights)),
	}
	scratch := make([]int32, len(weights))
	if err := BuildInto(a.prob, a.alias, weights, scratch); err != nil {
		return Alias{}, err
	}
	return a, nil
}

// K returns the number of outcomes.
func (a Alias) K() int { return len(a.prob) }

// Draw returns an outcome in [0, K) with probability proportional to the
// weight it was built with.  O(1), allocation-free.
func (a Alias) Draw(rng *xrand.RNG) int32 {
	return Draw(a.prob, a.alias, rng)
}

// Draw samples from a (prob, alias) pair previously filled by BuildInto.
// Exposed as a free function so flat table groups (many rows sharing two
// backing arrays) can draw without wrapping each row in an Alias.
func Draw(prob []float64, alias []int32, rng *xrand.RNG) int32 {
	i := int32(rng.Uint64n(uint64(len(prob))))
	if rng.Float64() < prob[i] {
		return i
	}
	return alias[i]
}

// BuildInto fills prob and alias (both len(weights)) with the Walker alias
// table of weights using Vose's O(k) construction.  scratch must have length
// len(weights); it is used for the small/large worklists so repeated builds
// (e.g. one per node or per matrix row) allocate nothing.
//
// Invariant established: an outcome with weight exactly 0 gets acceptance
// probability 0 and is aliased to a positive-weight outcome, so it can never
// be returned by Draw.
func BuildInto(prob []float64, alias []int32, weights []float64, scratch []int32) error {
	k := len(weights)
	if k == 0 {
		return fmt.Errorf("sampler: alias table needs at least one outcome")
	}
	if len(prob) != k || len(alias) != k || len(scratch) != k {
		return fmt.Errorf("sampler: table buffers have length (%d,%d,%d), want %d",
			len(prob), len(alias), len(scratch), k)
	}
	total := 0.0
	heaviest := int32(-1)
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("sampler: weight %d is %v, want finite and >= 0", i, w)
		}
		if heaviest < 0 || w > weights[heaviest] {
			heaviest = int32(i)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("sampler: weights sum to %v, want > 0", total)
	}

	// Scale weights so they average to 1; the worklists partition outcomes
	// into donors (scaled < 1, stored from the front of scratch) and
	// receivers (scaled >= 1, stored from the back).
	scale := float64(k) / total
	smallTop, largeBot := 0, k
	for i, w := range weights {
		prob[i] = w * scale
		if prob[i] < 1 {
			scratch[smallTop] = int32(i)
			smallTop++
		} else {
			largeBot--
			scratch[largeBot] = int32(i)
		}
	}
	for smallTop > 0 && largeBot < k {
		smallTop--
		s := scratch[smallTop]
		l := scratch[largeBot]
		alias[s] = l
		// l donates the deficit 1-prob[s] of s's column.
		prob[l] -= 1 - prob[s]
		if prob[l] < 1 {
			// l has given away enough mass to become a donor itself; its slot
			// in the worklist moves from the large end to the small end.
			largeBot++
			scratch[smallTop] = l
			smallTop++
		}
	}
	// Leftovers hold (up to rounding) exactly their own column: accept
	// always.  A zero-weight leftover can only appear through floating-point
	// drift; keep it undrawable by aliasing it to the heaviest outcome.
	finalise := func(i int32) {
		if weights[i] == 0 {
			prob[i] = 0
			alias[i] = heaviest
			return
		}
		prob[i] = 1
		alias[i] = i
	}
	for ; largeBot < k; largeBot++ {
		finalise(scratch[largeBot])
	}
	for smallTop > 0 {
		smallTop--
		finalise(scratch[smallTop])
	}
	return nil
}
