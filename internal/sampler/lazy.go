package sampler

import (
	"fmt"
	"sync"
	"sync/atomic"

	"navaug/internal/xrand"
)

// RowFiller computes the unnormalised weights of one sampling row.  It must
// be safe for concurrent use (LazyRows may build different rows from
// different goroutines at once) and must write only finite, non-negative
// weights.
type RowFiller interface {
	// FillRow writes the weights of outcome 0..k-1 for the given row into
	// weights (length k, arbitrary prior contents).
	FillRow(row int32, weights []float64)
}

// LazyRows is a square family of Walker alias tables — one row of k
// outcomes per key in [0, rows) — whose rows are built on first draw.
// It is the memory/compute middle ground the augmentation schemes need:
// the flat backing arrays are reserved up front (the OS faults pages in
// per row), but the O(k) fill-and-build cost of a row is only ever paid
// for rows that are actually drawn from, under a striped lock so
// concurrent first draws stay race-free.
//
// Draws are deterministic regardless of build interleaving: building never
// touches the drawing RNG (a draw consumes RNG values only through Draw
// against the row's finished table), and tables are pure functions of the
// filler, so seed-fixed simulations give identical results for any worker
// count.
//
// A row whose weights are all zero keeps its whole mass on the row index
// itself (outcome == row), the schemes' "no long-range link" convention.
type LazyRows struct {
	k      int
	filler RowFiller
	probs  []float64
	alias  []int32
	ready  []uint32 // atomic 0/1 per row
	locks  []sync.Mutex
	pool   sync.Pool // *rowScratch
}

type rowScratch struct {
	weights []float64
	work    []int32
}

// lazyStripes is the number of build locks; first builds of distinct rows
// rarely collide, they only need to not race.
const lazyStripes = 64

// NewLazyRows reserves tables for rows×k outcomes filled by filler.  Every
// row index must itself be a valid outcome (rows <= k) so the all-zero-row
// fallback can park the mass on the row; it panics otherwise.
func NewLazyRows(rows, k int, filler RowFiller) *LazyRows {
	if rows > k {
		panic(fmt.Sprintf("sampler: LazyRows needs rows <= k for the no-outcome fallback, got %d rows over %d outcomes", rows, k))
	}
	l := &LazyRows{
		k:      k,
		filler: filler,
		probs:  make([]float64, rows*k),
		alias:  make([]int32, rows*k),
		ready:  make([]uint32, rows),
		locks:  make([]sync.Mutex, lazyStripes),
	}
	l.pool.New = func() any {
		return &rowScratch{weights: make([]float64, k), work: make([]int32, k)}
	}
	return l
}

// Rows returns the number of rows the table family covers.
func (l *LazyRows) Rows() int { return len(l.ready) }

// Draw samples an outcome from the given row, building the row's table on
// first use.  Amortised O(1); allocation-free once the row exists.
func (l *LazyRows) Draw(row int32, rng *xrand.RNG) int32 {
	if atomic.LoadUint32(&l.ready[row]) == 0 {
		l.build(row)
	}
	base := int(row) * l.k
	return Draw(l.probs[base:base+l.k], l.alias[base:base+l.k], rng)
}

// build fills and finalises one row under its stripe lock.
func (l *LazyRows) build(row int32) {
	lock := &l.locks[int(row)%lazyStripes]
	lock.Lock()
	defer lock.Unlock()
	if atomic.LoadUint32(&l.ready[row]) != 0 { // lost the race: already built
		return
	}
	sc := l.pool.Get().(*rowScratch)
	defer l.pool.Put(sc)
	l.filler.FillRow(row, sc.weights)
	total := 0.0
	for _, w := range sc.weights {
		total += w
	}
	if total == 0 {
		// No admissible outcome: all mass stays on the row itself.
		sc.weights[row] = 1
	}
	base := int(row) * l.k
	if err := BuildInto(l.probs[base:base+l.k], l.alias[base:base+l.k], sc.weights, sc.work); err != nil {
		// The filler contract (finite, non-negative) plus the zero-total
		// fallback above make this unreachable; failing loud beats sampling
		// from a half-built row.
		panic(fmt.Sprintf("sampler: lazy row %d: %v", row, err))
	}
	atomic.StoreUint32(&l.ready[row], 1)
}

// BuildAll eagerly builds every missing row using the given number of
// workers (<= 0 means one).  Useful when a caller knows it will draw far
// more than Rows() times and wants the fills to run in parallel up front
// rather than lazily on the drawing goroutines.
func (l *LazyRows) BuildAll(workers int) {
	rows := len(l.ready)
	if workers <= 0 {
		workers = 1
	}
	if workers > rows {
		workers = rows
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				row := int32(next.Add(1) - 1)
				if int(row) >= rows {
					return
				}
				if atomic.LoadUint32(&l.ready[row]) == 0 {
					l.build(row)
				}
			}
		}()
	}
	wg.Wait()
}
