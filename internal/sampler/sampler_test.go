package sampler

import (
	"math"
	"testing"

	"navaug/internal/xrand"
)

func TestNewAliasValidation(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Fatal("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Fatal("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -0.5}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, err := NewAlias([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN weight accepted")
	}
	if _, err := NewAlias([]float64{1, math.Inf(1)}); err == nil {
		t.Fatal("infinite weight accepted")
	}
}

func TestBuildIntoValidatesLengths(t *testing.T) {
	w := []float64{1, 2}
	if err := BuildInto(make([]float64, 1), make([]int32, 2), w, make([]int32, 2)); err == nil {
		t.Fatal("short prob buffer accepted")
	}
	if err := BuildInto(make([]float64, 2), make([]int32, 2), w, make([]int32, 1)); err == nil {
		t.Fatal("short scratch buffer accepted")
	}
}

// aliasEmpirical draws many samples and returns the empirical frequencies.
func aliasEmpirical(t *testing.T, a Alias, draws int, seed uint64) []float64 {
	t.Helper()
	rng := xrand.New(seed)
	counts := make([]int, a.K())
	for i := 0; i < draws; i++ {
		v := a.Draw(rng)
		if v < 0 || int(v) >= a.K() {
			t.Fatalf("draw %d out of range [0,%d)", v, a.K())
		}
		counts[v]++
	}
	freq := make([]float64, a.K())
	for i, c := range counts {
		freq[i] = float64(c) / float64(draws)
	}
	return freq
}

func TestAliasMatchesDistribution(t *testing.T) {
	cases := map[string][]float64{
		"uniform4":    {1, 1, 1, 1},
		"skewed":      {10, 1, 0.1, 5, 3},
		"single":      {7},
		"with-zeros":  {0, 3, 0, 1, 0},
		"one-hot":     {0, 0, 1, 0},
		"tiny-vs-big": {1e-9, 1},
		"harmonic":    {1, 0.5, 1.0 / 3, 0.25, 0.2, 1.0 / 6, 1.0 / 7, 0.125},
	}
	for name, weights := range cases {
		a, err := NewAlias(weights)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 0.0
		for _, w := range weights {
			total += w
		}
		const draws = 200000
		freq := aliasEmpirical(t, a, draws, 42)
		for i, w := range weights {
			want := w / total
			if math.Abs(freq[i]-want) > 0.01+3*math.Sqrt(want*(1-want)/draws)*3 {
				t.Fatalf("%s: outcome %d frequency %v, want %v", name, i, freq[i], want)
			}
		}
	}
}

func TestAliasNeverReturnsZeroWeightOutcome(t *testing.T) {
	weights := []float64{0, 5, 0, 0.001, 0, 2, 0, 0}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(7)
	for i := 0; i < 500000; i++ {
		if v := a.Draw(rng); weights[v] == 0 {
			t.Fatalf("drew zero-weight outcome %d", v)
		}
	}
}

func TestBuildIntoIsDeterministic(t *testing.T) {
	weights := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	p1, a1 := make([]float64, 8), make([]int32, 8)
	p2, a2 := make([]float64, 8), make([]int32, 8)
	scratch := make([]int32, 8)
	if err := BuildInto(p1, a1, weights, scratch); err != nil {
		t.Fatal(err)
	}
	if err := BuildInto(p2, a2, weights, scratch); err != nil {
		t.Fatal(err)
	}
	for i := range p1 {
		if p1[i] != p2[i] || a1[i] != a2[i] {
			t.Fatal("rebuild produced a different table")
		}
	}
}

func TestAliasColumnMassIsExact(t *testing.T) {
	// Structural check of the table itself: summing each outcome's
	// acceptance mass plus the mass aliased to it must reproduce the
	// normalised weights (each column holds 1/k total mass).
	weights := []float64{2, 0, 1, 7, 0.5, 0.5}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	k := float64(a.K())
	mass := make([]float64, a.K())
	for i := range a.prob {
		mass[i] += a.prob[i] / k
		if a.prob[i] < 1 {
			mass[a.alias[i]] += (1 - a.prob[i]) / k
		}
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		if math.Abs(mass[i]-w/total) > 1e-12 {
			t.Fatalf("column %d carries mass %v, want %v", i, mass[i], w/total)
		}
	}
}

func TestAliasDrawZeroAlloc(t *testing.T) {
	a, err := NewAlias([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	allocs := testing.AllocsPerRun(1000, func() { a.Draw(rng) })
	if allocs != 0 {
		t.Fatalf("Draw allocates %v per call", allocs)
	}
}

func TestEpochMemoBasics(t *testing.T) {
	m := NewEpochMemo(10)
	if m.Len() != 10 {
		t.Fatalf("Len %d", m.Len())
	}
	if _, ok := m.Get(3); ok {
		t.Fatal("fresh memo has an entry")
	}
	m.Set(3, 77)
	if v, ok := m.Get(3); !ok || v != 77 {
		t.Fatalf("Get after Set: %v %v", v, ok)
	}
	m.Reset()
	if _, ok := m.Get(3); ok {
		t.Fatal("Reset did not invalidate the entry")
	}
	m.Set(3, 5)
	if v, ok := m.Get(3); !ok || v != 5 {
		t.Fatalf("Set after Reset: %v %v", v, ok)
	}
}

func TestEpochMemoEpochWrap(t *testing.T) {
	m := NewEpochMemo(4)
	m.Set(1, 42)
	m.epoch = ^uint32(0) // next Reset wraps
	m.Reset()
	if m.epoch != 1 {
		t.Fatalf("epoch after wrap %d, want 1", m.epoch)
	}
	// The stale mark from the pre-wrap epoch must not read as valid.
	if _, ok := m.Get(1); ok {
		t.Fatal("stale entry visible after epoch wrap")
	}
}

func TestEpochMemoResetZeroAlloc(t *testing.T) {
	m := NewEpochMemo(1024)
	allocs := testing.AllocsPerRun(1000, func() {
		m.Reset()
		m.Set(5, 6)
		m.Get(5)
	})
	if allocs != 0 {
		t.Fatalf("memo cycle allocates %v per run", allocs)
	}
}

func TestLazyRowsRejectsNonSquareFallback(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rows > k accepted despite the row-as-outcome fallback")
		}
	}()
	NewLazyRows(10, 4, nil)
}
