package sampler

// EpochMemo is a dense int32-keyed, int32-valued memo table with O(1)
// reset: entries are validated against an epoch counter instead of being
// cleared, so reusing the memo for a fresh trial costs one increment rather
// than an O(n) wipe or a map reallocation.  It backs the per-trial contact
// memoisation of the routing layer.  An EpochMemo is not safe for
// concurrent use; keep one per worker.
type EpochMemo struct {
	vals  []int32
	marks []uint32
	epoch uint32
}

// NewEpochMemo returns a memo for keys in [0, n).
func NewEpochMemo(n int) *EpochMemo {
	return &EpochMemo{
		vals:  make([]int32, n),
		marks: make([]uint32, n),
		epoch: 1,
	}
}

// Len returns the key-space size the memo was built for.
func (m *EpochMemo) Len() int { return len(m.vals) }

// Reset invalidates every entry in O(1).
func (m *EpochMemo) Reset() {
	m.epoch++
	if m.epoch == 0 { // wrapped: marks from 2^32 trials ago could collide
		clear(m.marks)
		m.epoch = 1
	}
}

// Get returns the memoised value for key i and whether one is set this epoch.
func (m *EpochMemo) Get(i int32) (int32, bool) {
	if m.marks[i] != m.epoch {
		return 0, false
	}
	return m.vals[i], true
}

// Set memoises v for key i until the next Reset.
func (m *EpochMemo) Set(i, v int32) {
	m.marks[i] = m.epoch
	m.vals[i] = v
}
