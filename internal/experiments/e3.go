package experiments

import (
	"math"

	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// E3 reproduces the first half of Corollary 1: the Theorem 2 scheme (M, L),
// with the labeling derived from a centroid path decomposition, yields a
// polylogarithmic (O(log³ n)) greedy diameter on trees, while the uniform
// scheme stays polynomial on the same instances.
//
// The tree families are chosen so that the uniform baseline genuinely needs
// ~√n steps (long paths inside the tree), which is where the Corollary 1
// separation shows: on shallow bushy trees every scheme is trivially fast
// because the diameter itself is small.
func E3() scenario.Spec {
	log2cubed := func(n int) float64 { return math.Pow(math.Log2(float64(n)), 3) }
	return scenario.Sweep{
		ID:    "E3",
		Title: "Theorem 2 scheme is polylog on trees",
		Claim: "greedy diameter of (M,L) on trees stays below the log³ n envelope and grows with a visibly smaller exponent than the uniform scheme's ~0.5, with the gap widening as n grows",
		Families: []scenario.Family{
			scenario.GraphFamily("caterpillar", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
				spine := n / 4
				if spine < 1 {
					spine = 1
				}
				return gen.Caterpillar(spine, 3), nil
			}),
			scenario.GraphFamily("spider", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
				legs := 8
				legLen := (n - 1) / legs
				if legLen < 1 {
					legLen = 1
				}
				return gen.Spider(legs, legLen), nil
			}),
			scenario.GraphFamily("random-tree", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
				return gen.RandomTree(n, rng), nil
			}),
		},
		// The polylog-vs-√n separation needs larger sizes than the other
		// sweeps because the O(log³ n) bound carries a sizeable constant; the
		// sweep is still cheap because contact draws under (M, L) cost
		// O(log n).
		Sizes:   []int{4096, 16384, 65536, 262144},
		Schemes: []scenario.SchemeRef{theorem2TreeScheme(), uniformScheme()},
		Pairs:   10,
		Trials:  6,

		DetailTitle: "E3: trees, Theorem 2 scheme vs uniform",
		Columns: []scenario.Column{
			{Name: "log2^3(n)", Value: func(r scenario.CellResult) any {
				return log2cubed(r.Est.N)
			}},
			{Name: "gd/log2^3(n)", Value: func(r scenario.CellResult) any {
				return r.Est.GreedyDiameter / log2cubed(r.Est.N)
			}},
		},
		FitTitle: "E3: fitted power-law exponents (theorem2 ≪ uniform ≈ 0.5)",
		FitNote: "Corollary 1: trees have pathshape O(log n), so (M,L) gives O(log³ n) greedy diameter; " +
			"its fitted power-law exponent should be far below the uniform scheme's ~0.5",
	}.Spec()
}
