package experiments

import (
	"math"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/stats"
	"navaug/internal/xrand"
)

// E3 reproduces the first half of Corollary 1: the Theorem 2 scheme (M, L),
// with the labeling derived from a centroid path decomposition, yields a
// polylogarithmic (O(log³ n)) greedy diameter on trees, while the uniform
// scheme stays polynomial on the same instances.
func E3() Experiment {
	return Experiment{
		ID:    "E3",
		Title: "Theorem 2 scheme is polylog on trees",
		Claim: "greedy diameter of (M,L) on trees stays below the log³ n envelope and grows with a visibly smaller exponent than the uniform scheme's ~0.5, with the gap widening as n grows",
		Run:   runE3,
	}
}

// treeFamilies are the tree families used by E3.  They are chosen so that
// the uniform baseline genuinely needs ~√n steps (long paths inside the
// tree), which is where the Corollary 1 separation shows: on shallow bushy
// trees every scheme is trivially fast because the diameter itself is small.
func treeFamilies() []familyBuilder {
	return []familyBuilder{
		{name: "caterpillar", build: func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			spine := n / 4
			if spine < 1 {
				spine = 1
			}
			return gen.Caterpillar(spine, 3), nil
		}},
		{name: "spider", build: func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			legs := 8
			legLen := (n - 1) / legs
			if legLen < 1 {
				legLen = 1
			}
			return gen.Spider(legs, legLen), nil
		}},
		{name: "random-tree", build: func(n int, rng *xrand.RNG) (*graph.Graph, error) { return gen.RandomTree(n, rng), nil }},
	}
}

// theorem2TreeScheme is the (M, L) scheme wired to the centroid
// decomposition, the construction Corollary 1 relies on for trees.
func theorem2TreeScheme() augment.Scheme {
	return augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.TreeCentroid(g)
	})
}

func runE3(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	// The polylog-vs-√n separation needs larger sizes than the other sweeps
	// because the O(log³ n) bound carries a sizeable constant; the sweep is
	// still cheap because contact draws under (M, L) cost O(log n).
	sizes := cfg.scaleSizes(4096, 16384, 65536, 262144)
	detail := report.NewTable("E3: trees, Theorem 2 scheme vs uniform",
		"family", "n", "scheme", "greedy_diam", "mean_steps", "ci95", "log2^3(n)", "gd/log2^3(n)")
	fits := report.NewTable("E3: fitted power-law exponents (theorem2 ≪ uniform ≈ 0.5)",
		"family", "scheme", "exponent", "R2")

	schemes := []augment.Scheme{theorem2TreeScheme(), augment.NewUniformScheme()}
	for _, fam := range treeFamilies() {
		for _, scheme := range schemes {
			xs, ys, err := runFamilySweep(detail, fam, sizes, scheme, cfg, 10, 6,
				func(n int, est *sim.Estimate) []any {
					l := math.Pow(math.Log2(float64(n)), 3)
					return []any{l, est.GreedyDiameter / l}
				})
			if err != nil {
				return nil, err
			}
			fit, err := stats.PowerLaw(xs, ys)
			if err != nil {
				return nil, err
			}
			fits.AddRow(fam.name, scheme.Name(), fit.Exponent, fit.R2)
		}
	}
	fits.AddNote("Corollary 1: trees have pathshape O(log n), so (M,L) gives O(log³ n) greedy diameter; " +
		"its fitted power-law exponent should be far below the uniform scheme's ~0.5")
	return []*report.Table{detail, fits}, nil
}
