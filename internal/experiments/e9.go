package experiments

import (
	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// E9 measures the classical baseline the paper positions itself against:
// Kleinberg's distance-harmonic augmentation [13].  With the exponent tuned
// to the growth rate of the graph (r = 1 on the path/cycle, r = 2 on the 2D
// grid) it is polylogarithmic, but it is not universal — the same matrix
// applied to the wrong family degrades to a polynomial greedy diameter,
// whereas the Theorem 4 ball scheme stays sub-√n everywhere.
func E9() scenario.Spec {
	return scenario.Sweep{
		ID:    "E9",
		Title: "Kleinberg harmonic baseline: excellent when tuned, not universal",
		Claim: "harmonic-r is polylog when r matches the family's dimension and polynomial otherwise; the ball scheme is uniformly sub-√n",
		Families: []scenario.Family{
			scenario.GraphFamily("path", func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Path(n), nil }),
			scenario.GraphFamily("grid", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
				side := intSqrt(n)
				return gen.Grid2D(side, side), nil
			}),
		},
		Sizes: []int{512, 1024, 2048, 4096, 8192},
		Schemes: []scenario.SchemeRef{
			scenario.Scheme(augment.NewHarmonicScheme(1)),
			scenario.Scheme(augment.NewHarmonicScheme(2)),
			ballScheme(),
		},
		Pairs:  6,
		Trials: 4,

		DetailTitle: "E9: harmonic schemes vs the ball scheme",
		FitTitle:    "E9: fitted scaling exponents",
		FitNote: "Kleinberg [13]: harmonic-r1 matches the path's dimension and harmonic-r2 the grid's; the " +
			"mismatch is dramatic on the path (harmonic-r2 degrades to a clearly polynomial exponent) and milder " +
			"on the grid at these sizes, while the ball scheme stays below ~0.5 everywhere without any tuning",
	}.Spec()
}
