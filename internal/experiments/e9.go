package experiments

import (
	"fmt"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/stats"
	"navaug/internal/xrand"
)

// E9 measures the classical baseline the paper positions itself against:
// Kleinberg's distance-harmonic augmentation [13].  With the exponent tuned
// to the growth rate of the graph (r = 1 on the path/cycle, r = 2 on the 2D
// grid) it is polylogarithmic, but it is not universal — the same matrix
// applied to the wrong family degrades to a polynomial greedy diameter,
// whereas the Theorem 4 ball scheme stays sub-√n everywhere.
func E9() Experiment {
	return Experiment{
		ID:    "E9",
		Title: "Kleinberg harmonic baseline: excellent when tuned, not universal",
		Claim: "harmonic-r is polylog when r matches the family's dimension and polynomial otherwise; the ball scheme is uniformly sub-√n",
		Run:   runE9,
	}
}

func runE9(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.scaleSizes(512, 1024, 2048, 4096, 8192)
	detail := report.NewTable("E9: harmonic schemes vs the ball scheme",
		"family", "n", "scheme", "greedy_diam", "mean_steps", "ci95")
	fits := report.NewTable("E9: fitted scaling exponents",
		"family", "scheme", "exponent", "R2")

	families := []familyBuilder{
		{name: "path", build: func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Path(n), nil }},
		{name: "grid", build: func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			side := intSqrt(n)
			return gen.Grid2D(side, side), nil
		}},
	}
	schemes := []augment.Scheme{
		augment.NewHarmonicScheme(1),
		augment.NewHarmonicScheme(2),
		augment.NewBallScheme(),
	}

	for _, fam := range families {
		for _, scheme := range schemes {
			rng := xrand.New(cfg.Seed ^ hashString(fam.name+scheme.Name()))
			var xs, ys []float64
			for _, n := range sizes {
				g, err := fam.build(n, rng)
				if err != nil {
					return nil, err
				}
				est, err := sim.EstimateGreedyDiameter(g, scheme, cfg.simConfig(6, 4))
				if err != nil {
					return nil, fmt.Errorf("E9: %s/%s n=%d: %w", fam.name, scheme.Name(), n, err)
				}
				detail.AddRow(fam.name, g.N(), scheme.Name(), est.GreedyDiameter, est.MeanSteps, est.CI95)
				xs = append(xs, float64(g.N()))
				ys = append(ys, est.GreedyDiameter)
			}
			fit, err := stats.PowerLaw(xs, ys)
			if err != nil {
				return nil, err
			}
			fits.AddRow(fam.name, scheme.Name(), fit.Exponent, fit.R2)
		}
	}
	fits.AddNote("Kleinberg [13]: harmonic-r1 matches the path's dimension and harmonic-r2 the grid's; the " +
		"mismatch is dramatic on the path (harmonic-r2 degrades to a clearly polynomial exponent) and milder " +
		"on the grid at these sizes, while the ball scheme stays below ~0.5 everywhere without any tuning")
	return []*report.Table{detail, fits}, nil
}
