package experiments

import (
	"fmt"
	"math"

	"navaug/internal/augment"
	"navaug/internal/dist"
	"navaug/internal/graph/gen"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// E11 is the large-n mode: the regime where the paper's separations become
// visible.  The Õ(n^{1/3}) ball scheme, the Θ(√n) uniform (matrix-U)
// scheme and Kleinberg's harmonic scheme are only clearly separable from
// one another well beyond n = 10^4 — but classic field-backed routing needs
// an O(n) BFS distance field per target, capping experiments at small n.
// On vertex-transitive structured families (2D tori, hypercubes) both
// sides of a trial are analytic: distances come from the family's
// closed-form metric (dist.Source, O(1) per query, no field) and contacts
// from profile-based samplers (augment.NewAnalyticBall / NewAnalyticHarmonic,
// O(1) per draw, no ball enumeration).  That drops the per-trial cost to
// O(route length) time and O(1) extra memory, which is what lets this
// sweep reach n >= 10^6 nodes even in a CI smoke run.
func E11() scenario.Spec {
	return scenario.Sweep{
		ID:    "E11",
		Title: "Large-n mode: analytic oracles separate ball, uniform and harmonic at n up to 10^6",
		Claim: "on 2D tori and hypercubes up to a million nodes, greedy diameter under the ball scheme scales clearly below the uniform scheme's ~n^{1/2} (approaching the Õ(n^{1/3}) bound), while harmonic r=2 is polylog on tori (Kleinberg) and far from universal on hypercubes",
		Families: []scenario.Family{
			{Name: "torus", Build: func(n int, _ *xrand.RNG) (*scenario.BuiltGraph, error) {
				side := intSqrt(n)
				if side < 3 {
					side = 3
				}
				return &scenario.BuiltGraph{
					G:      gen.Torus2D(side, side),
					Metric: gen.Torus2DMetric(side, side),
				}, nil
			}},
			{Name: "hypercube", Build: func(n int, _ *xrand.RNG) (*scenario.BuiltGraph, error) {
				d := 0
				for 1<<uint(d+1) <= n {
					d++
				}
				return &scenario.BuiltGraph{
					G:      gen.Hypercube(d),
					Metric: gen.HypercubeMetric(d),
				}, nil
			}},
		},
		Sizes:   []int{65536, 262144, 1048576},
		Schemes: []scenario.SchemeRef{uniformScheme(), analyticBallScheme(), analyticHarmonicScheme(2)},
		Pairs:   4,
		Trials:  3,

		DetailTitle: "E11: million-node torus/hypercube sweep (analytic oracles, O(1) memory per distance query)",
		Columns: []scenario.Column{
			{Name: "sqrt(n)", Value: func(r scenario.CellResult) any {
				return math.Sqrt(float64(r.Est.N))
			}},
			{Name: "n^1/3", Value: func(r scenario.CellResult) any {
				return math.Cbrt(float64(r.Est.N))
			}},
			{Name: "gd/sqrt(n)", Value: func(r scenario.CellResult) any {
				return r.Est.GreedyDiameter / math.Sqrt(float64(r.Est.N))
			}},
		},
		FitTitle: "E11: fitted scaling exponents (greedy diameter ~ C*n^e)",
		FitNote: "expected shape: uniform e ~ 0.5 on both families; ball clearly below uniform (the Õ(n^{1/3}) " +
			"bound carries polylog factors, so the finite-size fit sits above 1/3); harmonic-r2 e ~ 0 (polylog) on " +
			"tori where the exponent matches the growth dimension",
	}.Spec()
}

// analyticBallScheme is the Theorem 4 ball scheme drawn through the
// family's vertex-transitive analytic metric — same contact law as
// ballScheme (the equality is tested), O(1) per draw at any n.
func analyticBallScheme() scenario.SchemeRef {
	return scenario.SchemeRef{Key: "ball-analytic", New: func(bg *scenario.BuiltGraph) (augment.Scheme, error) {
		t, err := transitiveMetric(bg)
		if err != nil {
			return nil, err
		}
		return augment.NewAnalyticBall(t), nil
	}}
}

// analyticHarmonicScheme is the distance-harmonic scheme with exponent r
// drawn through the family's vertex-transitive analytic metric.
func analyticHarmonicScheme(r float64) scenario.SchemeRef {
	key := fmt.Sprintf("harmonic-analytic-r%g", r)
	return scenario.SchemeRef{Key: key, New: func(bg *scenario.BuiltGraph) (augment.Scheme, error) {
		t, err := transitiveMetric(bg)
		if err != nil {
			return nil, err
		}
		return augment.NewAnalyticHarmonic(r, t), nil
	}}
}

func transitiveMetric(bg *scenario.BuiltGraph) (dist.Transitive, error) {
	t, ok := bg.Metric.(dist.Transitive)
	if !ok {
		return nil, fmt.Errorf("experiments: %s has no vertex-transitive analytic metric", bg.G.Name())
	}
	return t, nil
}
