// Package experiments contains one runnable experiment per claim of the
// paper (see DESIGN.md §3 and EXPERIMENTS.md).  The paper is purely
// theoretical — it has no tables or figures — so every theorem and corollary
// is turned into a measurable sweep whose *shape* (scaling exponent, who
// wins, where the crossover falls) can be compared against the stated
// bounds.
//
// Each experiment produces report.Tables; the navsim CLI renders them and
// the top-level benchmark harness runs them under `go test -bench`.
package experiments

import (
	"fmt"
	"sort"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

// Config controls how heavy an experiment run is.
type Config struct {
	// Seed drives every random choice; equal seeds give equal tables.
	Seed uint64
	// Workers is the simulation worker pool size (0 = GOMAXPROCS).
	Workers int
	// Scale multiplies the default sweep sizes; 1.0 reproduces the numbers
	// recorded in EXPERIMENTS.md, smaller values give quicker smoke runs.
	Scale float64
	// Pairs and Trials override the per-experiment defaults when positive.
	Pairs  int
	Trials int
}

// DefaultConfig is the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Seed: 20070610, Scale: 1.0}
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = DefaultConfig().Seed
	}
	return c
}

// scaleSizes multiplies the base sweep sizes by the config scale, keeping
// them at least 64 and strictly increasing.
func (c Config) scaleSizes(base ...int) []int {
	c = c.withDefaults()
	out := make([]int, 0, len(base))
	for _, n := range base {
		v := int(float64(n) * c.Scale)
		if v < 64 {
			v = 64
		}
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// simConfig builds the Monte Carlo configuration for one estimation run.
func (c Config) simConfig(pairs, trials int) sim.Config {
	c = c.withDefaults()
	if c.Pairs > 0 {
		pairs = c.Pairs
	}
	if c.Trials > 0 {
		trials = c.Trials
	}
	return sim.Config{
		Pairs:               pairs,
		Trials:              trials,
		Seed:                c.Seed,
		Workers:             c.Workers,
		IncludeExtremalPair: true,
	}
}

// Experiment couples an identifier with a runnable reproduction.
type Experiment struct {
	// ID is the short identifier used by the CLI and benchmarks (e.g. "E7").
	ID string
	// Title is a one-line description.
	Title string
	// Claim states the paper result being reproduced and the expected shape.
	Claim string
	// Run executes the experiment.
	Run func(cfg Config) ([]*report.Table, error)
}

// All returns every experiment in order E1..E10.
func All() []Experiment {
	return []Experiment{
		E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E10(),
	}
}

// ByID returns the experiment with the given (case-sensitive) identifier.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// familyBuilder produces graphs of a named family at a requested size.  The
// actual size may differ slightly from the request (grids round to the
// nearest rectangle); builders always return connected graphs.
type familyBuilder struct {
	name  string
	build func(n int, rng *xrand.RNG) (*graph.Graph, error)
}

// standardFamilies returns the graph families shared by E1/E7/E8: the ones
// the paper's universal claims must hold on.
func standardFamilies() []familyBuilder {
	return []familyBuilder{
		{name: "path", build: func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Path(n), nil }},
		{name: "cycle", build: func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Cycle(n), nil }},
		{name: "grid", build: func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			side := intSqrt(n)
			return gen.Grid2D(side, side), nil
		}},
		{name: "random-tree", build: func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.RandomTree(n, rng), nil
		}},
		{name: "gnp", build: func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.ConnectedGNP(n, 3.0/float64(n), rng), nil
		}},
	}
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// runFamilySweep estimates the greedy diameter of one scheme over a size
// sweep of one family and appends rows to the table.  It returns the
// (n, greedyDiameter) points for exponent fitting.
func runFamilySweep(t *report.Table, fam familyBuilder, sizes []int, scheme augment.Scheme,
	cfg Config, pairs, trials int, extraCols func(n int, est *sim.Estimate) []any) ([]float64, []float64, error) {

	c := cfg.withDefaults()
	rng := xrand.New(c.Seed ^ hashString(fam.name))
	build := func(n int) (*graph.Graph, error) { return fam.build(n, rng) }
	results, err := sim.Sweep(sizes, build, scheme, c.simConfig(pairs, trials))
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%s: %w", fam.name, scheme.Name(), err)
	}
	var xs, ys []float64
	for _, r := range results {
		xs = append(xs, float64(r.N))
		ys = append(ys, r.Estimate.GreedyDiameter)
		row := []any{fam.name, r.N, scheme.Name(), r.Estimate.GreedyDiameter, r.Estimate.MeanSteps, r.Estimate.CI95}
		if extraCols != nil {
			row = append(row, extraCols(r.N, r.Estimate)...)
		}
		t.AddRow(row...)
	}
	return xs, ys, nil
}

// hashString produces a stable 64-bit hash for deriving per-family seeds.
func hashString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
