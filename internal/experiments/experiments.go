// Package experiments defines one scenario spec per claim of the paper,
// plus the E11 large-n mode built on analytic distance oracles
// (see EXPERIMENTS.md, which is generated from this registry via
// `navsim list -format md`).  The paper is purely theoretical — it has no
// tables or figures — so every theorem and corollary is turned into a
// measurable sweep whose *shape* (scaling exponent, who wins, where the
// crossover falls) can be compared against the stated bounds.
//
// The specs are declarative (internal/scenario): each experiment names the
// graph instances and schemes it measures and how to tabulate them, while
// the scenario runner shares graph builds, distance fields, and prepared
// schemes across all experiments of a run and executes their cells
// concurrently.  The navsim CLI renders the resulting tables and the
// top-level benchmark harness runs them under `go test -bench`.
package experiments

import (
	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// Config is the scenario run configuration (seed, scale, precision,
// parallelism); equal configs give equal tables.
type Config = scenario.Config

// DefaultConfig is the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config { return scenario.DefaultConfig() }

func init() {
	for _, s := range []scenario.Spec{E1(), E2(), E3(), E4(), E5(), E6(), E7(), E8(), E9(), E10(), E11(), E12(), E13()} {
		scenario.Register(s)
	}
}

// All returns every experiment spec in order E1..E13.
func All() []scenario.Spec { return scenario.All() }

// ByID returns the experiment with the given (case-sensitive) identifier.
func ByID(id string) (scenario.Spec, bool) { return scenario.ByID(id) }

// IDs returns the sorted experiment identifiers.
func IDs() []string { return scenario.IDs() }

// standardFamilies returns the graph families shared by E1/E7/E8: the ones
// the paper's universal claims must hold on.  Family names are cache
// identities in the scenario runner — experiments that use the same names
// and sizes measure the very same graph instances.
func standardFamilies() []scenario.Family {
	return []scenario.Family{
		scenario.GraphFamily("path", func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Path(n), nil }),
		scenario.GraphFamily("cycle", func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Cycle(n), nil }),
		scenario.GraphFamily("grid", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			side := intSqrt(n)
			return gen.Grid2D(side, side), nil
		}),
		scenario.GraphFamily("random-tree", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.RandomTree(n, rng), nil
		}),
		scenario.GraphFamily("gnp", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.ConnectedGNP(n, 3.0/float64(n), rng), nil
		}),
	}
}

// uniformScheme and ballScheme are the two universal schemes referenced all
// over the suite; sharing the refs (and their keys) across experiments is
// what lets the runner prepare each of them once per graph instance.
func uniformScheme() scenario.SchemeRef { return scenario.Scheme(augment.NewUniformScheme()) }

func ballScheme() scenario.SchemeRef { return scenario.Scheme(augment.NewBallScheme()) }

// theorem2TreeScheme is the (M, L) scheme wired to the centroid
// decomposition, the construction Corollary 1 relies on for trees.  The
// cache key distinguishes the decomposition even though both variants
// report as "theorem2".
func theorem2TreeScheme() scenario.SchemeRef {
	return scenario.SchemeRef{Key: "theorem2-tree", New: func(*scenario.BuiltGraph) (augment.Scheme, error) {
		return augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
			return decomp.TreeCentroid(g)
		}), nil
	}}
}

// theorem2BFSScheme is the (M, L) scheme wired to the generic BFS-layer
// decomposition used on graphs with no special structure.
func theorem2BFSScheme() scenario.SchemeRef {
	return scenario.SchemeRef{Key: "theorem2-bfs", New: func(*scenario.BuiltGraph) (augment.Scheme, error) {
		return augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
			return decomp.BFSLayers(g, 0)
		}), nil
	}}
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
