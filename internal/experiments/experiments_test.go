package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"navaug/internal/dist"
	"navaug/internal/report"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// smokeConfig keeps experiment runs tiny: sizes are scaled down to the
// 64-node floor and the sampling effort is minimal.
func smokeConfig() Config {
	return Config{Seed: 1, Scale: 0.02, Pairs: 2, Trials: 1}
}

// runSpec executes one spec on a fresh runner.
func runSpec(t *testing.T, spec scenario.Spec, cfg Config) []*report.Table {
	t.Helper()
	runner := scenario.NewRunner(cfg)
	defer runner.Close()
	tables, err := runner.RunSpec(spec)
	if err != nil {
		t.Fatalf("%s failed: %v", spec.ID, err)
	}
	return tables
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("expected 13 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.CellsFn == nil || e.RenderFn == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(IDs()) != 13 {
		t.Fatal("IDs() length mismatch")
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("E7")
	if !ok || e.ID != "E7" {
		t.Fatal("ByID failed for E7")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestStandardFamiliesConnected(t *testing.T) {
	for _, fam := range standardFamilies() {
		bg, err := fam.Build(200, xrand.New(scenario.Hash64(fam.Name)))
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		if !bg.G.IsConnected() {
			t.Fatalf("%s: disconnected", fam.Name)
		}
	}
}

// Every experiment must run end to end at smoke scale and produce at least
// one non-empty table whose rows match the declared column count.
func TestAllExperimentsSmoke(t *testing.T) {
	runner := scenario.NewRunner(smokeConfig())
	defer runner.Close()
	results := runner.RunAll(All())
	for _, res := range results {
		if res.Err != nil {
			t.Fatalf("%s failed: %v", res.Spec.ID, res.Err)
		}
		if len(res.Tables) == 0 {
			t.Fatalf("%s produced no tables", res.Spec.ID)
		}
		for _, tbl := range res.Tables {
			if tbl.Title == "" {
				t.Fatalf("%s produced an untitled table", res.Spec.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatalf("%s produced empty table %q", res.Spec.ID, tbl.Title)
			}
			for _, row := range tbl.Rows {
				if len(row) != len(tbl.Columns) {
					t.Fatalf("%s table %q row has %d cells for %d columns",
						res.Spec.ID, tbl.Title, len(row), len(tbl.Columns))
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf, "text"); err != nil {
				t.Fatalf("%s render: %v", res.Spec.ID, err)
			}
		}
	}
	// The whole point of the shared runner: the suite references far fewer
	// distinct graph instances than it has cells, and the ones it shares
	// (standard families at standard sizes) must be built exactly once.
	stats := runner.Stats()
	if stats.GraphsBuilt >= stats.GraphLookups {
		t.Fatalf("no graph sharing happened: built %d of %d lookups", stats.GraphsBuilt, stats.GraphLookups)
	}
	if stats.Prepares >= stats.InstLookups {
		t.Fatalf("no prepared-scheme sharing happened: %d prepares for %d lookups", stats.Prepares, stats.InstLookups)
	}
}

// TestE12OraclePoliciesAgree pins the cross-oracle determinism contract
// in-tree (the CI smoke pins it end-to-end through navsim): the E12 tables
// must be byte-identical whether distances come from per-target BFS
// fields, the exact 2-hop-cover oracle, or the auto policy mixing the
// tiers per graph.  Any divergence means an oracle returned a wrong
// distance somewhere, so this doubles as an integration-level exactness
// test on the exact graphs E12 measures.
func TestE12OraclePoliciesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds unbudgeted 2-hop labels on expander families; skipped under -short (the race job covers the build via the dist tests)")
	}
	e12, ok := ByID("E12")
	if !ok {
		t.Fatal("E12 not registered")
	}
	render := func(policy dist.SourcePolicy) string {
		cfg := smokeConfig()
		// Scale below the smoke default: the twohop policy builds labels
		// with no budget, and expander-like families (random regular) pay
		// ~sqrt(n)-sized labels — fine at n <= ~5000, minutes at 20000.
		cfg.Scale = 0.005
		cfg.Oracle = policy
		var buf bytes.Buffer
		for _, tbl := range runSpec(t, e12, cfg) {
			if err := tbl.Render(&buf, "csv"); err != nil {
				t.Fatalf("render under %q: %v", policy, err)
			}
		}
		return buf.String()
	}
	want := render(dist.PolicyField)
	for _, policy := range []dist.SourcePolicy{dist.PolicyTwoHop, dist.PolicyAuto, dist.PolicyAnalytic} {
		if got := render(policy); got != want {
			t.Fatalf("E12 tables under %q differ from the field-backed tables:\n%s\nvs\n%s", policy, got, want)
		}
	}
}

// E1 at a slightly larger scale must produce a √n-like exponent for the
// uniform scheme on the path family.
func TestE1ExponentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check skipped in -short mode")
	}
	tables := runSpec(t, E1(), Config{Seed: 7, Scale: 0.25, Pairs: 8, Trials: 4})
	fit := tables[1]
	found := false
	for _, row := range fit.Rows {
		if row[0] != "path" {
			continue
		}
		found = true
		exp := mustFloat(t, row[2])
		if exp < 0.3 || exp > 0.75 {
			t.Fatalf("uniform-on-path exponent %v outside the √n band", exp)
		}
	}
	if !found {
		t.Fatal("no path row in the fit table")
	}
}

// E7 at moderate scale must show the ball scheme beating the uniform scheme
// in fitted exponent on the path family.
func TestE7BallBeatsUniformExponent(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check skipped in -short mode")
	}
	tables := runSpec(t, E7(), Config{Seed: 7, Scale: 0.25, Pairs: 6, Trials: 3})
	fit := tables[1]
	var ballExp, uniExp float64
	var haveBall, haveUni bool
	for _, row := range fit.Rows {
		if row[0] != "path" {
			continue
		}
		switch row[1] {
		case "ball":
			ballExp = mustFloat(t, row[2])
			haveBall = true
		case "uniform":
			uniExp = mustFloat(t, row[2])
			haveUni = true
		}
	}
	if !haveBall || !haveUni {
		t.Fatal("missing fit rows for path")
	}
	if ballExp >= uniExp {
		t.Fatalf("ball exponent %v not below uniform exponent %v", ballExp, uniExp)
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", s, err)
	}
	return v
}

func TestTablesAreRenderableInAllFormats(t *testing.T) {
	tables := runSpec(t, E2(), smokeConfig())
	for _, format := range []string{"text", "csv", "markdown"} {
		var buf bytes.Buffer
		for _, tbl := range tables {
			if err := tbl.Render(&buf, format); err != nil {
				t.Fatalf("format %s: %v", format, err)
			}
		}
		if buf.Len() == 0 {
			t.Fatalf("format %s produced nothing", format)
		}
	}
	_ = report.Cell(1.0)
}
