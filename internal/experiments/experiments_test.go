package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"navaug/internal/report"
	"navaug/internal/xrand"
)

// smokeConfig keeps experiment runs tiny: sizes are scaled down to the
// 64-node floor and the sampling effort is minimal.
func smokeConfig() Config {
	return Config{Seed: 1, Scale: 0.02, Pairs: 2, Trials: 1}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("expected 10 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if len(IDs()) != 10 {
		t.Fatal("IDs() length mismatch")
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("E7")
	if !ok || e.ID != "E7" {
		t.Fatal("ByID failed for E7")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID accepted unknown id")
	}
}

func TestConfigHelpers(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1.0 || c.Seed == 0 {
		t.Fatalf("defaults %+v", c)
	}
	sizes := Config{Scale: 0.01}.scaleSizes(1000, 2000, 4000)
	if len(sizes) == 0 {
		t.Fatal("no sizes")
	}
	for i, n := range sizes {
		if n < 64 {
			t.Fatalf("size %d below floor", n)
		}
		if i > 0 && sizes[i] <= sizes[i-1] {
			t.Fatal("sizes not strictly increasing")
		}
	}
	sc := Config{Pairs: 3, Trials: 2}.simConfig(10, 10)
	if sc.Pairs != 3 || sc.Trials != 2 {
		t.Fatalf("overrides not applied: %+v", sc)
	}
	sc2 := Config{}.simConfig(10, 7)
	if sc2.Pairs != 10 || sc2.Trials != 7 {
		t.Fatalf("defaults not applied: %+v", sc2)
	}
}

func TestHashStringStable(t *testing.T) {
	if hashString("path") != hashString("path") {
		t.Fatal("hash unstable")
	}
	if hashString("path") == hashString("grid") {
		t.Fatal("distinct strings collide (unlucky but fix the seed)")
	}
}

func TestStandardFamiliesConnected(t *testing.T) {
	for _, fam := range standardFamilies() {
		g, err := fam.build(200, xrand.New(hashString(fam.name)))
		if err != nil {
			t.Fatalf("%s: %v", fam.name, err)
		}
		if !g.IsConnected() {
			t.Fatalf("%s: disconnected", fam.name)
		}
	}
}

// Every experiment must run end to end at smoke scale and produce at least
// one non-empty table whose rows match the declared column count.
func TestAllExperimentsSmoke(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(smokeConfig())
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if tbl.Title == "" {
					t.Fatalf("%s produced an untitled table", e.ID)
				}
				if len(tbl.Rows) == 0 {
					t.Fatalf("%s produced empty table %q", e.ID, tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Fatalf("%s table %q row has %d cells for %d columns",
							e.ID, tbl.Title, len(row), len(tbl.Columns))
					}
				}
				var buf bytes.Buffer
				if err := tbl.Render(&buf, "text"); err != nil {
					t.Fatalf("%s render: %v", e.ID, err)
				}
			}
		})
	}
}

// E1 at a slightly larger scale must produce a √n-like exponent for the
// uniform scheme on the path family.
func TestE1ExponentShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check skipped in -short mode")
	}
	tables, err := E1().Run(Config{Seed: 7, Scale: 0.25, Pairs: 8, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	fit := tables[1]
	found := false
	for _, row := range fit.Rows {
		if row[0] != "path" {
			continue
		}
		found = true
		exp := mustFloat(t, row[1])
		if exp < 0.3 || exp > 0.75 {
			t.Fatalf("uniform-on-path exponent %v outside the √n band", exp)
		}
	}
	if !found {
		t.Fatal("no path row in the fit table")
	}
}

// E7 at moderate scale must show the ball scheme beating the uniform scheme
// in fitted exponent on the path family.
func TestE7BallBeatsUniformExponent(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling check skipped in -short mode")
	}
	tables, err := E7().Run(Config{Seed: 7, Scale: 0.25, Pairs: 6, Trials: 3})
	if err != nil {
		t.Fatal(err)
	}
	fit := tables[1]
	var ballExp, uniExp float64
	var haveBall, haveUni bool
	for _, row := range fit.Rows {
		if row[0] != "path" {
			continue
		}
		switch row[1] {
		case "ball":
			ballExp = mustFloat(t, row[2])
			haveBall = true
		case "uniform":
			uniExp = mustFloat(t, row[2])
			haveUni = true
		}
	}
	if !haveBall || !haveUni {
		t.Fatal("missing fit rows for path")
	}
	if ballExp >= uniExp {
		t.Fatalf("ball exponent %v not below uniform exponent %v", ballExp, uniExp)
	}
}

func mustFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", s, err)
	}
	return v
}

func TestTablesAreRenderableInAllFormats(t *testing.T) {
	tables, err := E2().Run(smokeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []string{"text", "csv", "markdown"} {
		var buf bytes.Buffer
		for _, tbl := range tables {
			if err := tbl.Render(&buf, format); err != nil {
				t.Fatalf("format %s: %v", format, err)
			}
		}
		if buf.Len() == 0 {
			t.Fatalf("format %s produced nothing", format)
		}
	}
	_ = report.Cell(1.0)
}
