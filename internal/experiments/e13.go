package experiments

import (
	"fmt"

	"navaug/internal/churn"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// e13Params is the per-cell churn configuration carried through Cell.Data to
// the renderer.
type e13Params struct {
	Rate   float64
	Budget int
}

// e13Families are the E12 unstructured families (same names and builders, so
// the base instances are the very graphs E12 measures), restricted to one
// moderate size — churn cells pay per-batch BFS diffs on top of routing, and
// the experiment's axis is the repair budget, not n.
func e13Families() []scenario.Family {
	return []scenario.Family{
		scenario.GraphFamily("ws", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.WattsStrogatz(max(n, 5), 2, 0.1, rng), nil
		}),
		scenario.GraphFamily("gnp", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.ConnectedGNP(n, 3.0/float64(n), rng), nil
		}),
		scenario.GraphFamily("regular", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.RandomRegular(n, 4, rng)
		}),
		scenario.GraphFamily("powerlaw", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.PowerLawAttachment(max(n, 3), 2, rng), nil
		}),
		scenario.GraphFamily("plaw-tree", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.PowerLawAttachment(n, 1, rng), nil
		}),
		scenario.GraphFamily("ratree", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.RandomAttachmentTree(n, rng), nil
		}),
	}
}

// E13 is the churn experiment: the paper's schemes assume a fixed graph, but
// any deployed overlay must survive edge churn.  Each cell builds an E12
// family instance, then runs a deterministic churn stream through the
// dynamic-graph pipeline (internal/churn): per batch, a fraction of the
// edges is deleted and replaced by fresh random edges, the incremental
// 2-hop repair oracle (dist.DynTwoHop) re-labels up to `budget` dirtied
// nodes, and exactly those nodes' frozen augmentation contacts are locally
// resampled.  Routing then runs on the final churned graph, steered by the
// repaired — possibly still debt-carrying — oracle.
//
// The stream is seeded independently of the budget, so every budget cell of
// a (family, rate) group churns the identical edge sequence: differences in
// greedy diameter, stretch and failure rate are attributable to the repair
// budget alone.  Disconnected pairs (churn legitimately cuts graphs apart,
// especially the tree families, where every deletion splits a component
// until an insertion rejoins it) are counted in the `unreachable` column —
// never errored, never resampled, never spun against the step cap.
func E13() scenario.Spec {
	rates := []float64{0.002, 0.01}
	budgets := []int{0, 8, -1}
	schemes := []scenario.SchemeRef{uniformScheme(), ballScheme()}
	return scenario.Spec{
		ID:    "E13",
		Title: "Churn: greedy routing degradation vs. incremental label-repair budget on dynamic graphs",
		Claim: "greedy routing degrades gracefully under edge churn and recovers with the repair budget: " +
			"unlimited-budget cells match a freshly rebuilt oracle (conformance-pinned), zero-budget cells pay " +
			"visible stretch and failures from stale steering, and tree-like families disconnect (unreachable > 0) " +
			"where cyclic families absorb the same churn",
		CellsFn: func(cfg scenario.Config) ([]scenario.Cell, error) {
			sizes := cfg.ScaleSizes(4096)
			n := sizes[len(sizes)-1]
			var cells []scenario.Cell
			for _, fam := range e13Families() {
				for _, rate := range rates {
					for _, budget := range budgets {
						spec := &churn.Spec{Rate: rate, Batches: 8, RepairBudget: budget, CompactEvery: 4}
						ref := fam.Ref(n)
						ref.Churn = spec
						for _, scheme := range schemes {
							cells = append(cells, scenario.Cell{
								Graph:  ref,
								Scheme: scheme,
								Pairs:  24,
								Trials: 2,
								Tag:    fmt.Sprintf("%s/%s", fam.Name, spec.Key()),
								Data:   e13Params{Rate: rate, Budget: budget},
							})
						}
					}
				}
			}
			return cells, nil
		},
		RenderFn: func(cfg scenario.Config, res []scenario.CellResult) ([]*report.Table, error) {
			detail := report.NewTable(
				"E13: routing on churned graphs, by per-batch repair budget (-1 = unlimited, 0 = no repair)",
				"family", "n", "scheme", "rate", "budget",
				"greedy_diam", "mean_steps", "stretch", "failed", "unreachable",
				"dirty", "repaired", "debt", "rebuilds", "comps")
			for _, r := range res {
				p, ok := r.Cell.Data.(e13Params)
				if !ok {
					return nil, fmt.Errorf("E13: cell %s has no churn params", r.Cell.Tag)
				}
				cres, ok := r.Aux.(*churn.Result)
				if !ok {
					return nil, fmt.Errorf("E13: cell %s has no churn result", r.Cell.Tag)
				}
				// Mean multiplicative stretch over reachable pairs: routed
				// steps relative to the true shortest path on the final graph.
				var stretch float64
				var failed, reached int
				for _, ps := range r.Est.PairStats {
					if ps.Unreachable {
						continue
					}
					failed += ps.Failed
					if ps.Steps.Count > 0 && ps.Dist > 0 {
						stretch += ps.Steps.Mean / float64(ps.Dist)
						reached++
					}
				}
				if reached > 0 {
					stretch /= float64(reached)
				}
				detail.AddRow(r.Cell.Graph.Family, r.Est.N, r.Est.Scheme, p.Rate, p.Budget,
					r.Est.GreedyDiameter, r.Est.MeanSteps, stretch, failed, r.Est.Unreachable,
					cres.DirtyTotal, cres.PatchedTotal, cres.DebtRemaining, cres.Rebuilds, cres.Components)
			}
			detail.AddNote("per (family, rate) group the delta stream is identical across budgets " +
				"(seeded from the stream key, which excludes the budget); dirty counts match row-for-row and " +
				"only repair quality — debt, and with it stretch/failures — varies")
			return []*report.Table{detail}, nil
		},
	}
}
