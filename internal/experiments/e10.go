package experiments

import (
	"fmt"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/sim"
)

// E10 runs the ablations called out in DESIGN.md: each design ingredient of
// the paper's two constructions is removed in turn to show it is load
// bearing.
//
//	(a) Theorem 2 without the uniform half of M: loses the √n fallback on
//	    large-pathshape graphs (grids), while remaining fine on trees.
//	(b) Theorem 4 with a single fixed scale instead of mixing all ⌈log n⌉
//	    scales: a small scale degenerates towards plain walking, the largest
//	    scale degenerates towards the uniform scheme — only the mixture gets
//	    Õ(n^{1/3}).
//	(c) Theorem 4 drawing contacts uniformly over distances ("rank uniform")
//	    instead of uniformly over the ball.
func E10() Experiment {
	return Experiment{
		ID:    "E10",
		Title: "Ablations of the Theorem 2 and Theorem 4 constructions",
		Claim: "removing the uniform half (Thm 2) or the scale mixture (Thm 4) visibly degrades the corresponding guarantee",
		Run:   runE10,
	}
}

func runE10(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()

	ta, err := runE10Theorem2Ablation(cfg)
	if err != nil {
		return nil, err
	}
	tb, err := runE10BallAblation(cfg)
	if err != nil {
		return nil, err
	}
	return []*report.Table{ta, tb}, nil
}

func runE10Theorem2Ablation(cfg Config) (*report.Table, error) {
	t := report.NewTable("E10a: Theorem 2 with and without the uniform half of M",
		"graph", "n", "scheme", "greedy_diam", "mean_steps", "ci95")

	sizes := cfg.scaleSizes(4096, 16384)
	for _, n := range sizes {
		side := intSqrt(n)
		grid := gen.Grid2D(side, side)
		tree := gen.BinaryTree(n)

		gridDecomp := func(g *graph.Graph) (*decomp.PathDecomposition, error) { return decomp.BFSLayers(g, 0) }
		treeDecomp := func(g *graph.Graph) (*decomp.PathDecomposition, error) { return decomp.TreeCentroid(g) }

		cases := []struct {
			g      *graph.Graph
			scheme augment.Scheme
		}{
			{grid, augment.NewTheorem2Scheme(gridDecomp)},
			{grid, &augment.Theorem2Scheme{Decompose: gridDecomp, AncestorOnly: true}},
			{tree, augment.NewTheorem2Scheme(treeDecomp)},
			{tree, &augment.Theorem2Scheme{Decompose: treeDecomp, AncestorOnly: true}},
		}
		for _, c := range cases {
			est, err := sim.EstimateGreedyDiameter(c.g, c.scheme, cfg.simConfig(8, 4))
			if err != nil {
				return nil, fmt.Errorf("E10a: %s on %s: %w", c.scheme.Name(), c.g.Name(), err)
			}
			t.AddRow(c.g.Name(), c.g.N(), c.scheme.Name(), est.GreedyDiameter, est.MeanSteps, est.CI95)
		}
	}
	t.AddNote("expected: on grids the ancestor-only variant is clearly worse than the full scheme (the uniform " +
		"half provides the O(√n) fallback); on trees both variants are polylog")
	return t, nil
}

func runE10BallAblation(cfg Config) (*report.Table, error) {
	t := report.NewTable("E10b: ball scheme scale-mixture and sampling ablations",
		"graph", "n", "scheme", "greedy_diam", "mean_steps", "ci95")

	sizes := cfg.scaleSizes(4096, 16384)
	for _, n := range sizes {
		path := gen.Path(n)
		side := intSqrt(n)
		grid := gen.Grid2D(side, side)
		maxScale := 1
		for 1<<uint(maxScale) < n {
			maxScale++
		}
		schemes := []augment.Scheme{
			augment.NewBallScheme(),
			&augment.BallScheme{FixedScale: 2},
			&augment.BallScheme{FixedScale: maxScale},
			&augment.BallScheme{RankUniform: true},
			augment.NewUniformScheme(),
		}
		for _, g := range []*graph.Graph{path, grid} {
			for _, s := range schemes {
				est, err := sim.EstimateGreedyDiameter(g, s, cfg.simConfig(6, 3))
				if err != nil {
					return nil, fmt.Errorf("E10b: %s on %s: %w", s.Name(), g.Name(), err)
				}
				t.AddRow(g.Name(), g.N(), s.Name(), est.GreedyDiameter, est.MeanSteps, est.CI95)
			}
		}
	}
	t.AddNote("expected: the full mixed-scale ball scheme beats both fixed-scale ablations (tiny scale ≈ plain " +
		"walking, maximal scale ≈ uniform scheme ≈ √n); rank-uniform sampling remains competitive")
	return t, nil
}
