package experiments

import (
	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// E10 runs the construction ablations: each design ingredient of the
// paper's two constructions is removed in turn to show it is load bearing.
//
//	(a) Theorem 2 without the uniform half of M: loses the √n fallback on
//	    large-pathshape graphs (grids), while remaining fine on trees.
//	(b) Theorem 4 with a single fixed scale instead of mixing all ⌈log n⌉
//	    scales: a small scale degenerates towards plain walking, the largest
//	    scale degenerates towards the uniform scheme — only the mixture gets
//	    Õ(n^{1/3}).
//	(c) Theorem 4 drawing contacts uniformly over distances ("rank uniform")
//	    instead of uniformly over the ball.
func E10() scenario.Spec {
	gridFamily := scenario.GraphFamily("grid", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
		side := intSqrt(n)
		return gen.Grid2D(side, side), nil
	})
	treeFamily := scenario.GraphFamily("binary-tree", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
		return gen.BinaryTree(n), nil
	})
	pathFamily := scenario.GraphFamily("path",
		func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Path(n), nil })

	gridDecomp := func(g *graph.Graph) (*decomp.PathDecomposition, error) { return decomp.BFSLayers(g, 0) }
	treeDecomp := func(g *graph.Graph) (*decomp.PathDecomposition, error) { return decomp.TreeCentroid(g) }
	// The cache key must identify the decomposition, not just the ablation:
	// both variants report as "theorem2-ancestor-only", but preparing one
	// must never satisfy a cell that asked for the other.
	ancestorOnly := func(kind string, dec func(*graph.Graph) (*decomp.PathDecomposition, error)) scenario.SchemeRef {
		return scenario.SchemeRef{Key: "theorem2-ancestor-" + kind, New: func(*scenario.BuiltGraph) (augment.Scheme, error) {
			return &augment.Theorem2Scheme{Decompose: dec, AncestorOnly: true}, nil
		}}
	}

	const tagA, tagB = "a", "b"
	return scenario.Spec{
		ID:    "E10",
		Title: "Ablations of the Theorem 2 and Theorem 4 constructions",
		Claim: "removing the uniform half (Thm 2) or the scale mixture (Thm 4) visibly degrades the corresponding guarantee",
		CellsFn: func(cfg Config) ([]scenario.Cell, error) {
			sizes := cfg.ScaleSizes(4096, 16384)
			var cells []scenario.Cell
			add := func(tag string, fam scenario.Family, n int, scheme scenario.SchemeRef, pairs, trials int) {
				cells = append(cells, scenario.Cell{
					Graph: fam.Ref(n), Scheme: scheme, Pairs: pairs, Trials: trials, Tag: tag,
				})
			}
			for _, n := range sizes {
				// (a) Theorem 2 with and without the uniform half of M.
				add(tagA, gridFamily, n, theorem2BFSScheme(), 8, 4)
				add(tagA, gridFamily, n, ancestorOnly("bfs", gridDecomp), 8, 4)
				add(tagA, treeFamily, n, theorem2TreeScheme(), 8, 4)
				add(tagA, treeFamily, n, ancestorOnly("centroid", treeDecomp), 8, 4)
			}
			for _, n := range sizes {
				// (b) Ball-scheme scale-mixture and sampling ablations.
				maxScale := 1
				for 1<<uint(maxScale) < n {
					maxScale++
				}
				schemes := []scenario.SchemeRef{
					ballScheme(),
					scenario.Scheme(&augment.BallScheme{FixedScale: 2}),
					scenario.Scheme(&augment.BallScheme{FixedScale: maxScale}),
					scenario.Scheme(&augment.BallScheme{RankUniform: true}),
					uniformScheme(),
				}
				for _, fam := range []scenario.Family{pathFamily, gridFamily} {
					for _, s := range schemes {
						add(tagB, fam, n, s, 6, 3)
					}
				}
			}
			return cells, nil
		},
		RenderFn: func(cfg Config, res []scenario.CellResult) ([]*report.Table, error) {
			ta := report.NewTable("E10a: Theorem 2 with and without the uniform half of M",
				"graph", "n", "scheme", "greedy_diam", "mean_steps", "ci95")
			tb := report.NewTable("E10b: ball scheme scale-mixture and sampling ablations",
				"graph", "n", "scheme", "greedy_diam", "mean_steps", "ci95")
			for _, r := range res {
				t := ta
				if r.Cell.Tag == tagB {
					t = tb
				}
				t.AddRow(r.Est.GraphName, r.Est.N, r.Est.Scheme, r.Est.GreedyDiameter, r.Est.MeanSteps, r.Est.CI95)
			}
			ta.AddNote("expected: on grids the ancestor-only variant is clearly worse than the full scheme (the uniform " +
				"half provides the O(√n) fallback); on trees both variants are polylog")
			tb.AddNote("expected: the full mixed-scale ball scheme beats both fixed-scale ablations (tiny scale ≈ plain " +
				"walking, maximal scale ≈ uniform scheme ≈ √n); rank-uniform sampling remains competitive")
			return []*report.Table{ta, tb}, nil
		},
	}
}
