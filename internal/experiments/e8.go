package experiments

import (
	"fmt"

	"navaug/internal/report"
	"navaug/internal/scenario"
)

// E8 examines the √n-barrier crossover directly: at which sizes does the
// Theorem 4 ball scheme overtake the uniform scheme?  Asymptotically the
// ratio uniform/ball grows like n^{1/6} (up to logs), so the ball scheme
// must win on every family once n is large enough.
func E8() scenario.Spec {
	families := []scenario.Family{
		standardFamilies()[0], // path
		standardFamilies()[2], // grid
		standardFamilies()[3], // random-tree
	}
	return scenario.Spec{
		ID:    "E8",
		Title: "√n-barrier crossover: ball scheme vs uniform scheme",
		Claim: "the ratio uniform/ball exceeds 1 for large n on every family and grows with n",
		CellsFn: func(cfg Config) ([]scenario.Cell, error) {
			sizes := cfg.ScaleSizes(512, 1024, 2048, 4096, 8192, 16384, 32768, 65536)
			var cells []scenario.Cell
			for _, fam := range families {
				for _, n := range sizes {
					for _, scheme := range []scenario.SchemeRef{uniformScheme(), ballScheme()} {
						cells = append(cells, scenario.Cell{
							Graph:  fam.Ref(n),
							Scheme: scheme,
							Pairs:  8,
							Trials: 4,
						})
					}
				}
			}
			return cells, nil
		},
		RenderFn: func(cfg Config, res []scenario.CellResult) ([]*report.Table, error) {
			t := report.NewTable("E8: uniform vs ball greedy diameter and crossover",
				"family", "n", "uniform_gd", "ball_gd", "ratio_uniform/ball")
			crossovers := report.NewTable("E8: first measured size where the ball scheme wins",
				"family", "crossover_n")
			// Match cells on their identity (family, requested n, scheme key)
			// rather than on emission order.
			for _, fam := range families {
				crossover := -1
				for _, r := range res {
					if r.Cell.Graph.Family != fam.Name || r.Cell.Scheme.Key != "uniform" {
						continue
					}
					uni := r.Est
					ball := scenario.EstimateOf(res, fam.Name, r.Cell.Graph.N, "ball")
					if ball == nil {
						return nil, fmt.Errorf("E8: no ball estimate for %s n=%d", fam.Name, r.Cell.Graph.N)
					}
					ratio := 0.0
					if ball.GreedyDiameter > 0 {
						ratio = uni.GreedyDiameter / ball.GreedyDiameter
					}
					if ratio > 1 && crossover < 0 {
						crossover = uni.N
					}
					t.AddRow(fam.Name, uni.N, uni.GreedyDiameter, ball.GreedyDiameter, ratio)
				}
				if crossover < 0 {
					crossovers.AddRow(fam.Name, "not reached in sweep")
				} else {
					crossovers.AddRow(fam.Name, crossover)
				}
			}
			t.AddNote("Theorem 4 vs Theorem 1: asymptotically uniform/ball ~ n^{1/6} (up to polylogs), so the ratio " +
				"must exceed 1 and keep growing across the sweep")
			return []*report.Table{t, crossovers}, nil
		},
	}
}
