package experiments

import (
	"fmt"

	"navaug/internal/augment"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

// E8 examines the √n-barrier crossover directly: at which sizes does the
// Theorem 4 ball scheme overtake the uniform scheme?  Asymptotically the
// ratio uniform/ball grows like n^{1/6} (up to logs), so the ball scheme
// must win on every family once n is large enough.
func E8() Experiment {
	return Experiment{
		ID:    "E8",
		Title: "√n-barrier crossover: ball scheme vs uniform scheme",
		Claim: "the ratio uniform/ball exceeds 1 for large n on every family and grows with n",
		Run:   runE8,
	}
}

func runE8(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.scaleSizes(512, 1024, 2048, 4096, 8192, 16384, 32768, 65536)
	t := report.NewTable("E8: uniform vs ball greedy diameter and crossover",
		"family", "n", "uniform_gd", "ball_gd", "ratio_uniform/ball")

	families := []familyBuilder{
		standardFamilies()[0], // path
		standardFamilies()[2], // grid
		standardFamilies()[3], // random-tree
	}
	crossovers := report.NewTable("E8: first measured size where the ball scheme wins",
		"family", "crossover_n")
	for _, fam := range families {
		rng := xrand.New(cfg.Seed ^ hashString(fam.name))
		crossover := -1
		for _, n := range sizes {
			g, err := fam.build(n, rng)
			if err != nil {
				return nil, err
			}
			simCfg := cfg.simConfig(8, 4)
			ests, err := sim.CompareSchemes(g,
				[]augment.Scheme{augment.NewUniformScheme(), augment.NewBallScheme()}, simCfg)
			if err != nil {
				return nil, fmt.Errorf("E8: %s n=%d: %w", fam.name, n, err)
			}
			uni, ball := ests[0], ests[1]
			ratio := 0.0
			if ball.GreedyDiameter > 0 {
				ratio = uni.GreedyDiameter / ball.GreedyDiameter
			}
			if ratio > 1 && crossover < 0 {
				crossover = g.N()
			}
			t.AddRow(fam.name, g.N(), uni.GreedyDiameter, ball.GreedyDiameter, ratio)
		}
		if crossover < 0 {
			crossovers.AddRow(fam.name, "not reached in sweep")
		} else {
			crossovers.AddRow(fam.name, crossover)
		}
	}
	t.AddNote("Theorem 4 vs Theorem 1: asymptotically uniform/ball ~ n^{1/6} (up to polylogs), so the ratio " +
		"must exceed 1 and keep growing across the sweep")
	return []*report.Table{t, crossovers}, nil
}
