package experiments

import (
	"math"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// E12 is the large-n universality sweep: the paper's headline claim is that
// the augmentation schemes work on *any* graph, yet before the 2-hop-cover
// oracle only closed-form families (E11's tori and hypercubes) scaled past
// n ~ 10^4 — unstructured graphs have no analytic metric.  E12 sweeps the
// three universal schemes over six unstructured random families.  Distances
// come from the run's oracle policy (default auto): the exact 2-hop-cover
// oracle (dist.TwoHop) where labels stay small, per-target BFS fields
// where they do not — the estimates are byte-identical either way, which
// the CI determinism smoke pins.
//
// The families are chosen to straddle the 2-hop feasibility boundary, and
// their measured label sizes are part of the experiment's story (recorded
// in BENCH_experiments.json):
//
//   - plaw-tree (preferential attachment, m=1) and ratree (random
//     recursive tree): tree-like with skewed degrees; labels stay polylog
//     (avg ~8 and ~23 at n = 2^20) and the sweep reaches 2^20 nodes.
//   - powerlaw (preferential attachment, m=2): hub-dominated but cyclic;
//     labels grow ~n^{0.45} (avg 92 at n = 2^16), workable to ~2^18.
//   - ws (Watts–Strogatz), gnp (connected G(n,p)), regular (random
//     4-regular): expander-like, 2-hop covers inherently grow ~sqrt(n)
//     (avg 390-1500 at n = 2^14).  The bit-parallel batch engine and the
//     packed label representation moved the build wall (a regular-graph
//     label build that took ~3 min now takes ~35 s, see
//     BENCH_experiments.json twohop_builds), so ws and gnp sweep to 2^17;
//     above the auto label budget the policy still falls back to BFS
//     fields at bounded cost, identically.
func E12() scenario.Spec {
	return scenario.Sweep{
		ID:    "E12",
		Title: "Large-n universality: unstructured families up to 2^20 nodes via the exact 2-hop-cover oracle",
		Claim: "greedy diameters keep the paper's universal shape on unstructured graphs as n grows: " +
			"uniform stays ~n^{1/2} while the ball scheme scales clearly below it on every family, " +
			"with no structured metric to lean on — distances come from exact 2-hop labels (or BFS fields, identically)",
		Families: []scenario.Family{
			scenario.GraphFamily("ws", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
				return gen.WattsStrogatz(max(n, 5), 2, 0.1, rng), nil
			}),
			scenario.GraphFamily("gnp", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
				return gen.ConnectedGNP(n, 3.0/float64(n), rng), nil
			}),
			scenario.GraphFamily("regular", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
				return gen.RandomRegular(n, 4, rng)
			}),
			scenario.GraphFamily("powerlaw", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
				return gen.PowerLawAttachment(max(n, 3), 2, rng), nil
			}),
			scenario.GraphFamily("plaw-tree", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
				return gen.PowerLawAttachment(n, 1, rng), nil
			}),
			scenario.GraphFamily("ratree", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
				return gen.RandomAttachmentTree(n, rng), nil
			}),
		},
		Sizes:   []int{4096, 16384, 65536, 131072, 262144, 1048576},
		Schemes: []scenario.SchemeRef{uniformScheme(), ballScheme(), scenario.Scheme(augment.NewHarmonicScheme(2))},
		Pairs:   4,
		Trials:  3,
		// Expander-like families are capped: their 2-hop labels grow
		// ~sqrt(n) (the documented infeasibility half of the experiment)
		// and their per-draw ball/harmonic sampling has no analytic
		// shortcut either.  ws and gnp run past 2^16 since the bit-parallel
		// + packed-label build moved the wall; regular (the densest cover,
		// ~1500 avg entries already at 2^14) stays at 2^16.  The tree-like
		// families carry the sweep to 2^20.
		CellFilter: func(family, _ string, n int) bool {
			switch family {
			case "plaw-tree", "ratree":
				return true
			case "powerlaw":
				return n <= 262144
			case "ws", "gnp":
				return n <= 131072
			default:
				return n <= 65536
			}
		},
		DetailTitle: "E12: universality sweep on unstructured families (exact 2-hop-cover oracle above the auto threshold)",
		Columns: []scenario.Column{
			{Name: "sqrt(n)", Value: func(r scenario.CellResult) any {
				return math.Sqrt(float64(r.Est.N))
			}},
			{Name: "gd/sqrt(n)", Value: func(r scenario.CellResult) any {
				return r.Est.GreedyDiameter / math.Sqrt(float64(r.Est.N))
			}},
		},
		FitTitle: "E12: fitted scaling exponents (greedy diameter ~ C*n^e)",
		FitNote: "expected shape: uniform e ~ 0.5 on every family (the universal Theorem 1 bound is metric-free); " +
			"ball clearly below uniform everywhere (Theorem 4's Õ(n^{1/3}) holds on any graph); harmonic-r2 has no " +
			"universal guarantee — its exponent tracks the family's growth structure and degrades off it",
	}.Spec()
}
