package experiments

import (
	"math"

	"navaug/internal/scenario"
)

// E7 reproduces the headline result, Theorem 4: the ball scheme (uniform
// scale k ∈ {1..⌈log n⌉}, contact uniform in B(u, 2^k)) achieves greedy
// diameter Õ(n^{1/3}) on every graph, breaking the √n barrier that no
// matrix-based or uniform scheme can cross.
func E7() scenario.Spec {
	return scenario.Sweep{
		ID:       "E7",
		Title:    "Ball scheme achieves Õ(n^{1/3}) on every family (Theorem 4)",
		Claim:    "the fitted scaling exponent of the ball scheme is well below 0.5 on every family (≈ 1/3 up to log factors), while the uniform scheme stays at ≈ 0.5",
		Families: standardFamilies(),
		Sizes:    []int{1024, 2048, 4096, 8192, 16384, 32768},
		Schemes:  []scenario.SchemeRef{ballScheme(), uniformScheme()},
		Pairs:    10,
		Trials:   5,

		DetailTitle: "E7: ball scheme, greedy diameter vs n",
		Columns: []scenario.Column{
			{Name: "n^(1/3)", Value: func(r scenario.CellResult) any {
				return math.Cbrt(float64(r.Est.N))
			}},
			{Name: "gd/n^(1/3)", Value: func(r scenario.CellResult) any {
				return r.Est.GreedyDiameter / math.Cbrt(float64(r.Est.N))
			}},
		},
		FitTitle: "E7: fitted scaling exponents (ball ≪ uniform ≈ 0.5)",
		FitNote: "Theorem 4: the ball scheme's greedy diameter is Õ(n^{1/3}); at laptop sizes the hidden " +
			"polylog factors inflate the fitted exponent somewhat above 1/3, but it must sit clearly below the " +
			"uniform scheme's ~0.5 on every family",
	}.Spec()
}
