package experiments

import (
	"math"

	"navaug/internal/augment"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/stats"
)

// E7 reproduces the headline result, Theorem 4: the ball scheme (uniform
// scale k ∈ {1..⌈log n⌉}, contact uniform in B(u, 2^k)) achieves greedy
// diameter Õ(n^{1/3}) on every graph, breaking the √n barrier that no
// matrix-based or uniform scheme can cross.
func E7() Experiment {
	return Experiment{
		ID:    "E7",
		Title: "Ball scheme achieves Õ(n^{1/3}) on every family (Theorem 4)",
		Claim: "the fitted scaling exponent of the ball scheme is well below 0.5 on every family (≈ 1/3 up to log factors), while the uniform scheme stays at ≈ 0.5",
		Run:   runE7,
	}
}

func runE7(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.scaleSizes(1024, 2048, 4096, 8192, 16384, 32768)
	detail := report.NewTable("E7: ball scheme, greedy diameter vs n",
		"family", "n", "scheme", "greedy_diam", "mean_steps", "ci95", "n^(1/3)", "gd/n^(1/3)")
	fits := report.NewTable("E7: fitted scaling exponents (ball ≪ uniform ≈ 0.5)",
		"family", "scheme", "exponent", "R2")

	schemes := []augment.Scheme{augment.NewBallScheme(), augment.NewUniformScheme()}
	for _, fam := range standardFamilies() {
		for _, scheme := range schemes {
			xs, ys, err := runFamilySweep(detail, fam, sizes, scheme, cfg, 10, 5,
				func(n int, est *sim.Estimate) []any {
					cr := math.Cbrt(float64(n))
					return []any{cr, est.GreedyDiameter / cr}
				})
			if err != nil {
				return nil, err
			}
			fit, err := stats.PowerLaw(xs, ys)
			if err != nil {
				return nil, err
			}
			fits.AddRow(fam.name, scheme.Name(), fit.Exponent, fit.R2)
		}
	}
	fits.AddNote("Theorem 4: the ball scheme's greedy diameter is Õ(n^{1/3}); at laptop sizes the hidden " +
		"polylog factors inflate the fitted exponent somewhat above 1/3, but it must sit clearly below the " +
		"uniform scheme's ~0.5 on every family")
	return []*report.Table{detail, fits}, nil
}
