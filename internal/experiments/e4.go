package experiments

import (
	"fmt"
	"math"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/stats"
	"navaug/internal/xrand"
)

// E4 reproduces the second half of Corollary 1: on AT-free graphs —
// represented here by random interval graphs and thick unit-interval graphs,
// whose clique-path decompositions have pathlength 1 and hence pathshape 1 —
// the Theorem 2 scheme yields an O(log² n) greedy diameter.
func E4() Experiment {
	return Experiment{
		ID:    "E4",
		Title: "Theorem 2 scheme is O(log² n) on interval (AT-free) graphs",
		Claim: "with the clique-path labeling, greedy diameter on interval graphs grows like polylog(n) (≤ ~log² n); the uniform scheme remains polynomial",
		Run:   runE4,
	}
}

func runE4(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	// As in E3, larger sizes are needed before the O(log² n) regime beats the
	// √n baseline; interval-graph instances stay cheap (sparse models, O(log n)
	// contact draws).
	sizes := cfg.scaleSizes(4096, 16384, 65536, 262144)
	detail := report.NewTable("E4: interval graphs, Theorem 2 scheme vs uniform",
		"family", "n", "scheme", "greedy_diam", "mean_steps", "ci95", "log2^2(n)", "gd/log2^2(n)")
	fits := report.NewTable("E4: fitted power-law exponents (theorem2 ≪ uniform)",
		"family", "scheme", "exponent", "R2")

	type intervalFamily struct {
		name  string
		build func(n int, rng *xrand.RNG) (*graph.Graph, gen.IntervalModel, error)
	}
	families := []intervalFamily{
		{name: "random-interval", build: func(n int, rng *xrand.RNG) (*graph.Graph, gen.IntervalModel, error) {
			g, model := gen.RandomIntervalGraph(n, 3.0, rng)
			return g, model, nil
		}},
		{name: "unit-interval", build: func(n int, _ *xrand.RNG) (*graph.Graph, gen.IntervalModel, error) {
			g, model := gen.UnitIntervalPath(n, 4)
			return g, model, nil
		}},
	}

	for _, fam := range families {
		rng := xrand.New(cfg.Seed ^ hashString(fam.name))
		for _, schemeKind := range []string{"theorem2", "uniform"} {
			var xs, ys []float64
			for _, n := range sizes {
				g, model, err := fam.build(n, rng)
				if err != nil {
					return nil, err
				}
				var scheme augment.Scheme
				if schemeKind == "theorem2" {
					// The clique-path decomposition comes from the interval model of
					// this specific graph, so the scheme is bound per instance.
					pd := decomp.IntervalCliquePath(model)
					scheme = augment.NewTheorem2Scheme(func(*graph.Graph) (*decomp.PathDecomposition, error) {
						return pd, nil
					})
				} else {
					scheme = augment.NewUniformScheme()
				}
				est, err := sim.EstimateGreedyDiameter(g, scheme, cfg.simConfig(10, 6))
				if err != nil {
					return nil, fmt.Errorf("E4: %s/%s n=%d: %w", fam.name, schemeKind, n, err)
				}
				l2 := math.Pow(math.Log2(float64(g.N())), 2)
				detail.AddRow(fam.name, g.N(), scheme.Name(), est.GreedyDiameter, est.MeanSteps, est.CI95, l2, est.GreedyDiameter/l2)
				xs = append(xs, float64(g.N()))
				ys = append(ys, est.GreedyDiameter)
			}
			fit, err := stats.PowerLaw(xs, ys)
			if err != nil {
				return nil, err
			}
			fits.AddRow(fam.name, schemeKind, fit.Exponent, fit.R2)
		}
	}
	fits.AddNote("Corollary 1: AT-free graphs (interval graphs included) have constant pathlength, hence " +
		"pathshape O(1), so (M,L) gives O(log² n) greedy diameter")
	return []*report.Table{detail, fits}, nil
}
