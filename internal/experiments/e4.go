package experiments

import (
	"fmt"
	"math"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// E4 reproduces the second half of Corollary 1: on AT-free graphs —
// represented here by random interval graphs and thick unit-interval graphs,
// whose clique-path decompositions have pathlength 1 and hence pathshape 1 —
// the Theorem 2 scheme yields an O(log² n) greedy diameter.
//
// The interval families carry their interval model through BuiltGraph.Aux:
// the clique-path decomposition the scheme labels with comes from the model
// of the specific instance, so the scheme is bound per graph.
func E4() scenario.Spec {
	log2sq := func(n int) float64 { return math.Pow(math.Log2(float64(n)), 2) }
	theorem2Interval := scenario.SchemeRef{
		Key: "theorem2-interval",
		New: func(bg *scenario.BuiltGraph) (augment.Scheme, error) {
			model, ok := bg.Aux.(gen.IntervalModel)
			if !ok {
				return nil, fmt.Errorf("E4: graph %s carries no interval model", bg.G.Name())
			}
			pd := decomp.IntervalCliquePath(model)
			return augment.NewTheorem2Scheme(func(*graph.Graph) (*decomp.PathDecomposition, error) {
				return pd, nil
			}), nil
		},
	}
	return scenario.Sweep{
		ID:    "E4",
		Title: "Theorem 2 scheme is O(log² n) on interval (AT-free) graphs",
		Claim: "with the clique-path labeling, greedy diameter on interval graphs grows like polylog(n) (≤ ~log² n); the uniform scheme remains polynomial",
		Families: []scenario.Family{
			{Name: "random-interval", Build: func(n int, rng *xrand.RNG) (*scenario.BuiltGraph, error) {
				g, model := gen.RandomIntervalGraph(n, 3.0, rng)
				return &scenario.BuiltGraph{G: g, Aux: model}, nil
			}},
			{Name: "unit-interval", Build: func(n int, _ *xrand.RNG) (*scenario.BuiltGraph, error) {
				g, model := gen.UnitIntervalPath(n, 4)
				return &scenario.BuiltGraph{G: g, Aux: model}, nil
			}},
		},
		// As in E3, larger sizes are needed before the O(log² n) regime beats
		// the √n baseline; interval-graph instances stay cheap (sparse
		// models, O(log n) contact draws).
		Sizes:   []int{4096, 16384, 65536, 262144},
		Schemes: []scenario.SchemeRef{theorem2Interval, uniformScheme()},
		Pairs:   10,
		Trials:  6,

		DetailTitle: "E4: interval graphs, Theorem 2 scheme vs uniform",
		Columns: []scenario.Column{
			{Name: "log2^2(n)", Value: func(r scenario.CellResult) any {
				return log2sq(r.Est.N)
			}},
			{Name: "gd/log2^2(n)", Value: func(r scenario.CellResult) any {
				return r.Est.GreedyDiameter / log2sq(r.Est.N)
			}},
		},
		FitTitle: "E4: fitted power-law exponents (theorem2 ≪ uniform)",
		FitNote: "Corollary 1: AT-free graphs (interval graphs included) have constant pathlength, hence " +
			"pathshape O(1), so (M,L) gives O(log² n) greedy diameter",
	}.Spec()
}
