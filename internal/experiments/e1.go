package experiments

import (
	"math"

	"navaug/internal/scenario"
)

// E1 reproduces the O(√n) upper bound for the uniform scheme (Peleg's
// observation, restated before Theorem 1): for every graph family the greedy
// diameter under uniform augmentation grows like √n.
func E1() scenario.Spec {
	return scenario.Sweep{
		ID:       "E1",
		Title:    "Uniform scheme is O(√n) on every family",
		Claim:    "greedy diameter under φ_unif scales as ~n^0.5 on paths, cycles, grids, trees and sparse random graphs",
		Families: standardFamilies(),
		Sizes:    []int{1024, 2048, 4096, 8192, 16384},
		Schemes:  []scenario.SchemeRef{uniformScheme()},
		Pairs:    12,
		Trials:   6,

		DetailTitle: "E1: uniform scheme, greedy diameter vs n",
		Columns: []scenario.Column{
			{Name: "sqrt(n)", Value: func(r scenario.CellResult) any {
				return math.Sqrt(float64(r.Est.N))
			}},
			{Name: "gd/sqrt(n)", Value: func(r scenario.CellResult) any {
				return r.Est.GreedyDiameter / math.Sqrt(float64(r.Est.N))
			}},
		},
		FitTitle: "E1: fitted scaling exponents (expect ≈ 0.5)",
		FitNote: "Theorem 1 / Peleg: uniform augmentation gives O(√n) greedy diameter on every graph; " +
			"the fitted exponents should cluster near 0.5",
	}.Spec()
}
