package experiments

import (
	"math"

	"navaug/internal/augment"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/stats"
)

// E1 reproduces the O(√n) upper bound for the uniform scheme (Peleg's
// observation, restated before Theorem 1): for every graph family the greedy
// diameter under uniform augmentation grows like √n.
func E1() Experiment {
	return Experiment{
		ID:    "E1",
		Title: "Uniform scheme is O(√n) on every family",
		Claim: "greedy diameter under φ_unif scales as ~n^0.5 on paths, cycles, grids, trees and sparse random graphs",
		Run:   runE1,
	}
}

func runE1(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.scaleSizes(1024, 2048, 4096, 8192, 16384)
	detail := report.NewTable("E1: uniform scheme, greedy diameter vs n",
		"family", "n", "scheme", "greedy_diam", "mean_steps", "ci95", "sqrt(n)", "gd/sqrt(n)")
	fits := report.NewTable("E1: fitted scaling exponents (expect ≈ 0.5)",
		"family", "exponent", "R2", "points")

	scheme := augment.NewUniformScheme()
	for _, fam := range standardFamilies() {
		xs, ys, err := runFamilySweep(detail, fam, sizes, scheme, cfg, 12, 6,
			func(n int, est *sim.Estimate) []any {
				sq := math.Sqrt(float64(n))
				return []any{sq, est.GreedyDiameter / sq}
			})
		if err != nil {
			return nil, err
		}
		fit, err := stats.PowerLaw(xs, ys)
		if err != nil {
			return nil, err
		}
		fits.AddRow(fam.name, fit.Exponent, fit.R2, fit.N)
	}
	fits.AddNote("Theorem 1 / Peleg: uniform augmentation gives O(√n) greedy diameter on every graph; "+
		"the fitted exponents should cluster near 0.5 (seed %d)", cfg.Seed)
	return []*report.Table{detail, fits}, nil
}
