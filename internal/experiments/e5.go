package experiments

import (
	"math"

	"navaug/internal/augment"
	"navaug/internal/decomp"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

// E5 verifies the other half of Theorem 2's guarantee: on graphs whose
// pathshape is large (2D grids, sparse random graphs decomposed with the
// generic BFS-layer construction) the uniform component of M keeps greedy
// routing within O(√n) — the scheme never does substantially worse than the
// plain uniform scheme.
func E5() Experiment {
	return Experiment{
		ID:    "E5",
		Title: "Theorem 2 scheme preserves the O(√n) fallback on large-pathshape graphs",
		Claim: "on grids and sparse random graphs, the (M,L) greedy diameter stays within a small constant factor of the uniform scheme's (and of ~3√n)",
		Run:   runE5,
	}
}

func runE5(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.scaleSizes(1024, 2048, 4096, 8192, 16384)
	t := report.NewTable("E5: Theorem 2 scheme on large-pathshape graphs",
		"family", "n", "scheme", "greedy_diam", "mean_steps", "ci95", "sqrt(n)", "gd/sqrt(n)")

	families := []familyBuilder{
		{name: "grid", build: func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			side := intSqrt(n)
			return gen.Grid2D(side, side), nil
		}},
		{name: "gnp", build: func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			return gen.ConnectedGNP(n, 3.0/float64(n), rng), nil
		}},
	}
	theorem2 := augment.NewTheorem2Scheme(func(g *graph.Graph) (*decomp.PathDecomposition, error) {
		return decomp.BFSLayers(g, 0)
	})
	schemes := []augment.Scheme{theorem2, augment.NewUniformScheme()}

	maxRatio := 0.0
	for _, fam := range families {
		for _, scheme := range schemes {
			_, ys, err := runFamilySweep(t, fam, sizes, scheme, cfg, 10, 6,
				func(n int, est *sim.Estimate) []any {
					sq := math.Sqrt(float64(n))
					r := est.GreedyDiameter / sq
					if scheme == schemes[0] && r > maxRatio {
						maxRatio = r
					}
					return []any{sq, r}
				})
			if err != nil {
				return nil, err
			}
			_ = ys
		}
	}
	t.AddNote("Theorem 2 analysis: when √n ≤ ps(G)·log² n the uniform half of M alone bounds the expected "+
		"number of steps by ~3√n; the largest observed gd/√n ratio for the (M,L) scheme in this run is %.2f", maxRatio)
	return []*report.Table{t}, nil
}
