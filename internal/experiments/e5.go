package experiments

import (
	"math"

	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/scenario"
	"navaug/internal/xrand"
)

// E5 verifies the other half of Theorem 2's guarantee: on graphs whose
// pathshape is large (2D grids, sparse random graphs decomposed with the
// generic BFS-layer construction) the uniform component of M keeps greedy
// routing within O(√n) — the scheme never does substantially worse than the
// plain uniform scheme.
func E5() scenario.Spec {
	return scenario.Sweep{
		ID:    "E5",
		Title: "Theorem 2 scheme preserves the O(√n) fallback on large-pathshape graphs",
		Claim: "on grids and sparse random graphs, the (M,L) greedy diameter stays within a small constant factor of the uniform scheme's (and of ~3√n)",
		Families: []scenario.Family{
			scenario.GraphFamily("grid", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
				side := intSqrt(n)
				return gen.Grid2D(side, side), nil
			}),
			scenario.GraphFamily("gnp", func(n int, rng *xrand.RNG) (*graph.Graph, error) {
				return gen.ConnectedGNP(n, 3.0/float64(n), rng), nil
			}),
		},
		Sizes:   []int{1024, 2048, 4096, 8192, 16384},
		Schemes: []scenario.SchemeRef{theorem2BFSScheme(), uniformScheme()},
		Pairs:   10,
		Trials:  6,

		DetailTitle: "E5: Theorem 2 scheme on large-pathshape graphs",
		Columns: []scenario.Column{
			{Name: "sqrt(n)", Value: func(r scenario.CellResult) any {
				return math.Sqrt(float64(r.Est.N))
			}},
			{Name: "gd/sqrt(n)", Value: func(r scenario.CellResult) any {
				return r.Est.GreedyDiameter / math.Sqrt(float64(r.Est.N))
			}},
		},
		Finalize: func(res []scenario.CellResult, tables []*report.Table) {
			maxRatio := 0.0
			for _, r := range res {
				if r.Cell.Scheme.Key != "theorem2-bfs" {
					continue
				}
				if ratio := r.Est.GreedyDiameter / math.Sqrt(float64(r.Est.N)); ratio > maxRatio {
					maxRatio = ratio
				}
			}
			tables[0].AddNote("Theorem 2 analysis: when √n ≤ ps(G)·log² n the uniform half of M alone bounds the "+
				"expected number of steps by ~3√n; the largest observed gd/√n ratio for the (M,L) scheme in this "+
				"run is %.2f", maxRatio)
		},
	}.Spec()
}
