package experiments

import (
	"fmt"

	"navaug/internal/augment"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/stats"
)

// E6 reproduces Theorem 3: matrix-based augmentation of the path with labels
// of only ε·log n bits (i.e. k = n^ε distinct labels) cannot achieve a
// sub-polynomial greedy diameter — the bound is Ω(n^β) for every
// β < (1-ε)/3.  The experiment measures the natural block-harmonic scheme
// with k labels and fits its scaling exponent, which should decrease towards
// 0 as ε grows and always sit above the theorem's lower-bound exponent.
func E6() Experiment {
	return Experiment{
		ID:    "E6",
		Title: "Compressed labels force polynomial greedy diameter on the path (Theorem 3)",
		Claim: "with k = n^ε labels the measured scaling exponent stays ≥ (1-ε)/3 and decreases as ε grows",
		Run:   runE6,
	}
}

func runE6(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	sizes := cfg.scaleSizes(1024, 2048, 4096, 8192)
	epsilons := []float64{0, 0.25, 0.5, 0.75}

	detail := report.NewTable("E6: block-harmonic scheme on the path with n^ε labels",
		"epsilon", "n", "labels_k", "greedy_diam", "mean_steps", "ci95")
	summary := report.NewTable("E6: fitted exponent vs the Theorem 3 lower bound",
		"epsilon", "fitted_exponent", "thm3_lower_bound_(1-eps)/3", "R2")

	for _, eps := range epsilons {
		var xs, ys []float64
		for _, n := range sizes {
			g := gen.Path(n)
			scheme, err := augment.NewCompressedLabelPathScheme(n, eps)
			if err != nil {
				return nil, fmt.Errorf("E6: eps=%g n=%d: %w", eps, n, err)
			}
			est, err := sim.EstimateGreedyDiameter(g, scheme, cfg.simConfig(8, 6))
			if err != nil {
				return nil, fmt.Errorf("E6: eps=%g n=%d: %w", eps, n, err)
			}
			k := augment.LabelsForGraphSize(n, eps)
			detail.AddRow(eps, n, k, est.GreedyDiameter, est.MeanSteps, est.CI95)
			xs = append(xs, float64(n))
			ys = append(ys, est.GreedyDiameter)
		}
		fit, err := stats.PowerLaw(xs, ys)
		if err != nil {
			return nil, err
		}
		summary.AddRow(eps, fit.Exponent, augment.Theorem3LowerBoundExponent(eps), fit.R2)
	}
	summary.AddNote("Theorem 3: any matrix scheme with ε·log n-bit labels has greedy diameter Ω(n^β) for all " +
		"β < (1-ε)/3 on the path; measured exponents must stay above that line and shrink as ε grows")
	return []*report.Table{detail, summary}, nil
}
