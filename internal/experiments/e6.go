package experiments

import (
	"fmt"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/scenario"
	"navaug/internal/stats"
	"navaug/internal/xrand"
)

// E6 reproduces Theorem 3: matrix-based augmentation of the path with labels
// of only ε·log n bits (i.e. k = n^ε distinct labels) cannot achieve a
// sub-polynomial greedy diameter — the bound is Ω(n^β) for every
// β < (1-ε)/3.  The experiment measures the natural block-harmonic scheme
// with k labels and fits its scaling exponent, which should decrease towards
// 0 as ε grows and always sit above the theorem's lower-bound exponent.
func E6() scenario.Spec {
	pathFamily := scenario.GraphFamily("path",
		func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Path(n), nil })
	epsilons := []float64{0, 0.25, 0.5, 0.75}
	return scenario.Spec{
		ID:    "E6",
		Title: "Compressed labels force polynomial greedy diameter on the path (Theorem 3)",
		Claim: "with k = n^ε labels the measured scaling exponent stays ≥ (1-ε)/3 and decreases as ε grows",
		CellsFn: func(cfg Config) ([]scenario.Cell, error) {
			sizes := cfg.ScaleSizes(1024, 2048, 4096, 8192)
			var cells []scenario.Cell
			for _, eps := range epsilons {
				eps := eps
				for _, n := range sizes {
					n := n
					cells = append(cells, scenario.Cell{
						Graph: pathFamily.Ref(n),
						Scheme: scenario.SchemeRef{
							Key: fmt.Sprintf("compressed-eps%g", eps),
							New: func(*scenario.BuiltGraph) (augment.Scheme, error) {
								return augment.NewCompressedLabelPathScheme(n, eps)
							},
						},
						Pairs:  8,
						Trials: 6,
						Data:   eps,
					})
				}
			}
			return cells, nil
		},
		RenderFn: func(cfg Config, res []scenario.CellResult) ([]*report.Table, error) {
			detail := report.NewTable("E6: block-harmonic scheme on the path with n^ε labels",
				"epsilon", "n", "labels_k", "greedy_diam", "mean_steps", "ci95")
			summary := report.NewTable("E6: fitted exponent vs the Theorem 3 lower bound",
				"epsilon", "fitted_exponent", "thm3_lower_bound_(1-eps)/3", "R2")
			for _, eps := range epsilons {
				var xs, ys []float64
				for _, r := range res {
					if r.Cell.Data.(float64) != eps {
						continue
					}
					k := augment.LabelsForGraphSize(r.Est.N, eps)
					detail.AddRow(eps, r.Est.N, k, r.Est.GreedyDiameter, r.Est.MeanSteps, r.Est.CI95)
					xs = append(xs, float64(r.Est.N))
					ys = append(ys, r.Est.GreedyDiameter)
				}
				fit, err := stats.PowerLaw(xs, ys)
				if err != nil {
					return nil, fmt.Errorf("E6: eps=%g: %w", eps, err)
				}
				summary.AddRow(eps, fit.Exponent, augment.Theorem3LowerBoundExponent(eps), fit.R2)
			}
			summary.AddNote("Theorem 3: any matrix scheme with ε·log n-bit labels has greedy diameter Ω(n^β) for all " +
				"β < (1-ε)/3 on the path; measured exponents must stay above that line and shrink as ε grows")
			return []*report.Table{detail, summary}, nil
		},
	}
}
