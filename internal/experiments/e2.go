package experiments

import (
	"fmt"
	"math"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

// E2 reproduces Theorem 1's lower bound: every name-independent matrix-based
// scheme is Ω(√n) on the path under its worst-case labeling.  The experiment
// takes two matrices — the uniform matrix and the "cheating"
// distance-harmonic matrix that is excellent under the identity labeling —
// and shows that the adversarial labeling found by the Theorem 1 counting
// argument forces both back to Θ(√n): routing across the low-mass segment
// gains essentially nothing over plain walking, so the greedy diameter is at
// least the segment pair distance ≈ √n/3.
func E2() Experiment {
	return Experiment{
		ID:    "E2",
		Title: "Name-independent matrix schemes are Ω(√n) on the path",
		Claim: "for any matrix there is a labeling of the path whose greedy diameter is ≥ ~√n/3; the harmonic matrix drops from polylog (identity labels) to Ω(√n) (adversarial labels)",
		Run:   runE2,
	}
}

func runE2(cfg Config) ([]*report.Table, error) {
	cfg = cfg.withDefaults()
	// Dense n×n matrices: keep n moderate (perfect squares make √n exact).
	sizes := cfg.scaleSizes(900, 1600, 2500)
	t := report.NewTable("E2: matrix schemes on the path, identity vs adversarial labeling",
		"n", "matrix", "labeling", "pair_dist", "mean_steps", "ci95", "steps/pair_dist", "sqrt(n)/3", "segment_mass")

	for _, n := range sizes {
		g := gen.Path(n)
		rng := xrand.New(cfg.Seed + uint64(n))
		matrices := []struct {
			name string
			m    *augment.Matrix
		}{
			{"uniform", augment.NewUniformMatrix(n)},
			{"harmonic", augment.NewHarmonicMatrix(n)},
		}
		for _, mat := range matrices {
			// Identity labeling, routing the extremal pair (0, n-1).
			idPair := sim.Pair{Source: 0, Target: graph.NodeID(n - 1)}
			if err := runE2Case(t, g, mat.m, mat.name, "identity", nil, -1, cfg, idPair); err != nil {
				return nil, err
			}
			// Adversarial labeling from the Theorem 1 construction, routing the
			// pair inside the shortcut-free segment.
			adv, err := augment.AdversarialPathLabeling(mat.m, rng)
			if err != nil {
				return nil, fmt.Errorf("E2: adversarial labeling for %s n=%d: %w", mat.name, n, err)
			}
			advPair := sim.Pair{Source: graph.NodeID(adv.Source), Target: graph.NodeID(adv.Target)}
			if err := runE2Case(t, g, mat.m, mat.name, "adversarial", adv.Perm, adv.Mass, cfg, advPair); err != nil {
				return nil, err
			}
		}
	}
	t.AddNote("identity rows route the extremal pair (0, n-1); adversarial rows route the pair inside the " +
		"low-mass segment prescribed by the Theorem 1 proof (distance ≈ √n/3)")
	t.AddNote("expected shape: harmonic/identity compresses an (n-1)-hop pair into polylog steps " +
		"(steps/pair_dist ≪ 1) while every adversarial row stays at steps/pair_dist ≈ 1, i.e. Ω(√n) greedy diameter")
	return []*report.Table{t}, nil
}

func runE2Case(t *report.Table, g *graph.Graph, m *augment.Matrix, matName, labName string,
	perm []int, mass float64, cfg Config, pair sim.Pair) error {

	n := g.N()
	scheme := &augment.NameIndependentScheme{Matrix: m, Perm: perm, SchemeName: matName + "-" + labName}
	simCfg := cfg.simConfig(1, 12)
	simCfg.FixedPairs = []sim.Pair{pair}
	est, err := sim.EstimateGreedyDiameter(g, scheme, simCfg)
	if err != nil {
		return fmt.Errorf("E2: %s/%s n=%d: %w", matName, labName, n, err)
	}
	pairDist := math.Abs(float64(pair.Target - pair.Source))
	massCell := "-"
	if mass >= 0 {
		massCell = report.Cell(mass)
	}
	t.AddRow(n, matName, labName, pairDist, est.MeanSteps, est.CI95,
		est.MeanSteps/pairDist, math.Sqrt(float64(n))/3, massCell)
	return nil
}
