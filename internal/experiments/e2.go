package experiments

import (
	"fmt"
	"math"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/scenario"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

// E2 reproduces Theorem 1's lower bound: every name-independent matrix-based
// scheme is Ω(√n) on the path under its worst-case labeling.  The experiment
// takes two matrices — the uniform matrix and the "cheating"
// distance-harmonic matrix that is excellent under the identity labeling —
// and shows that the adversarial labeling found by the Theorem 1 counting
// argument forces both back to Θ(√n): routing across the low-mass segment
// gains essentially nothing over plain walking, so the greedy diameter is at
// least the segment pair distance ≈ √n/3.
func E2() scenario.Spec {
	pathFamily := scenario.GraphFamily("path",
		func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Path(n), nil })
	snapToSquares := func(sizes []int) []int {
		out := make([]int, 0, len(sizes))
		for _, n := range sizes {
			s := intSqrt(n)
			if n-s*s > (s+1)*(s+1)-n {
				s++
			}
			sq := s * s
			if sq < 64 {
				sq = 64
			}
			if len(out) == 0 || sq > out[len(out)-1] {
				out = append(out, sq)
			}
		}
		return out
	}
	return scenario.Spec{
		ID:    "E2",
		Title: "Name-independent matrix schemes are Ω(√n) on the path",
		Claim: "for any matrix there is a labeling of the path whose greedy diameter is ≥ ~√n/3; the harmonic matrix drops from polylog (identity labels) to Ω(√n) (adversarial labels)",
		CellsFn: func(cfg Config) ([]scenario.Cell, error) {
			// Dense n×n matrices: keep n moderate.  Sizes are snapped to
			// perfect squares after scaling: the Theorem 1 counting argument
			// needs a ⌈√n⌉-label set of internal mass < 1, which for the
			// uniform matrix requires ⌈√n⌉·(⌈√n⌉-1) < n — guaranteed at n=s²,
			// impossible just below it.
			sizes := snapToSquares(cfg.ScaleSizes(900, 1600, 2500))
			var cells []scenario.Cell
			for _, n := range sizes {
				n := n
				for _, matName := range []string{"uniform", "harmonic"} {
					matName := matName
					// The dense n×n matrix is deliberately NOT captured by the
					// cells: it is rebuilt inside SchemeRef.New so the
					// runner's refcounted instance cache bounds its lifetime
					// to the cells that measure it, instead of pinning every
					// size's matrix from enumeration to the end of the run.
					build := func() *augment.Matrix {
						if matName == "harmonic" {
							return augment.NewHarmonicMatrix(n)
						}
						return augment.NewUniformMatrix(n)
					}
					// Identity labeling, routing the extremal pair (0, n-1).
					cells = append(cells, scenario.Cell{
						Graph: pathFamily.Ref(n),
						Scheme: scenario.SchemeRef{
							Key: matName + "-identity",
							New: func(*scenario.BuiltGraph) (augment.Scheme, error) {
								return &augment.NameIndependentScheme{Matrix: build(), SchemeName: matName + "-identity"}, nil
							},
						},
						Trials:     12,
						FixedPairs: []sim.Pair{{Source: 0, Target: graph.NodeID(n - 1)}},
						Tag:        matName,
						Data:       -1.0,
					})
					// Adversarial labeling from the Theorem 1 construction,
					// routing the pair inside the shortcut-free segment.  The
					// labeling RNG is derived from (seed, n, matrix) alone so
					// cells stay independent of execution order; only the
					// permutation and pair survive enumeration.
					rng := xrand.New(cfg.Seed + uint64(n)*0x9e3779b97f4a7c15 + scenario.Hash64(matName))
					adv, err := augment.AdversarialPathLabeling(build(), rng)
					if err != nil {
						return nil, fmt.Errorf("E2: adversarial labeling for %s n=%d: %w", matName, n, err)
					}
					cells = append(cells, scenario.Cell{
						Graph: pathFamily.Ref(n),
						Scheme: scenario.SchemeRef{
							Key: matName + "-adversarial",
							New: func(*scenario.BuiltGraph) (augment.Scheme, error) {
								return &augment.NameIndependentScheme{Matrix: build(), Perm: adv.Perm, SchemeName: matName + "-adversarial"}, nil
							},
						},
						Trials:     12,
						FixedPairs: []sim.Pair{{Source: graph.NodeID(adv.Source), Target: graph.NodeID(adv.Target)}},
						Tag:        matName,
						Data:       adv.Mass,
					})
				}
			}
			return cells, nil
		},
		RenderFn: func(cfg Config, res []scenario.CellResult) ([]*report.Table, error) {
			t := report.NewTable("E2: matrix schemes on the path, identity vs adversarial labeling",
				"n", "matrix", "labeling", "pair_dist", "mean_steps", "ci95", "steps/pair_dist", "sqrt(n)/3", "segment_mass")
			for _, r := range res {
				pair := r.Cell.FixedPairs[0]
				pairDist := math.Abs(float64(pair.Target - pair.Source))
				labeling := "adversarial"
				massCell := report.Cell(r.Cell.Data)
				if mass := r.Cell.Data.(float64); mass < 0 {
					labeling = "identity"
					massCell = "-"
				}
				t.AddRow(r.Est.N, r.Cell.Tag, labeling, pairDist, r.Est.MeanSteps, r.Est.CI95,
					r.Est.MeanSteps/pairDist, math.Sqrt(float64(r.Est.N))/3, massCell)
			}
			t.AddNote("identity rows route the extremal pair (0, n-1); adversarial rows route the pair inside the " +
				"low-mass segment prescribed by the Theorem 1 proof (distance ≈ √n/3)")
			t.AddNote("expected shape: harmonic/identity compresses an (n-1)-hop pair into polylog steps " +
				"(steps/pair_dist ≪ 1) while every adversarial row stays at steps/pair_dist ≈ 1, i.e. Ω(√n) greedy diameter")
			return []*report.Table{t}, nil
		},
	}
}
