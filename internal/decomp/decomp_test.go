package decomp

import (
	"testing"
	"testing/quick"

	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

func distFn(g *graph.Graph) func(u, v graph.NodeID) int32 {
	a := dist.NewAPSP(g)
	return a.Dist
}

func TestValidateAcceptsHandDecomposition(t *testing.T) {
	g := gen.Path(4)
	pd := NewPathDecomposition([][]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	if err := pd.Validate(g); err != nil {
		t.Fatal(err)
	}
	if pd.Width() != 1 {
		t.Fatalf("width %d, want 1", pd.Width())
	}
}

func TestValidateRejectsMissingNode(t *testing.T) {
	g := gen.Path(4)
	pd := NewPathDecomposition([][]graph.NodeID{{0, 1}, {1, 2}})
	if err := pd.Validate(g); err == nil {
		t.Fatal("missing node accepted")
	}
}

func TestValidateRejectsMissingEdge(t *testing.T) {
	g := gen.Cycle(4)
	pd := NewPathDecomposition([][]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	if err := pd.Validate(g); err == nil {
		t.Fatal("missing edge accepted")
	}
}

func TestValidateRejectsNonContiguous(t *testing.T) {
	g := gen.Path(3)
	pd := NewPathDecomposition([][]graph.NodeID{{0, 1}, {1, 2}, {0, 2}})
	if err := pd.Validate(g); err == nil {
		t.Fatal("non-contiguous occurrence accepted")
	}
}

func TestValidateRejectsOutOfRange(t *testing.T) {
	g := gen.Path(3)
	pd := NewPathDecomposition([][]graph.NodeID{{0, 1}, {1, 2, 7}})
	if err := pd.Validate(g); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestWidthLengthShape(t *testing.T) {
	g := gen.Path(6)
	d := distFn(g)
	// One big bag: width 5, length 5 (it spans the whole path), shape 5.
	single := SingleBag(g)
	if single.Width() != 5 {
		t.Fatalf("single bag width %d", single.Width())
	}
	if single.Length(d, g.N()) != 5 {
		t.Fatalf("single bag length %d", single.Length(d, g.N()))
	}
	if single.Shape(d, g.N()) != 5 {
		t.Fatalf("single bag shape %d", single.Shape(d, g.N()))
	}
	// Natural decomposition: width 1, length 1, shape 1.
	pd, err := OfPathGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if pd.Width() != 1 || pd.Length(d, g.N()) != 1 || pd.Shape(d, g.N()) != 1 {
		t.Fatalf("path decomposition w=%d l=%d s=%d", pd.Width(), pd.Length(d, g.N()), pd.Shape(d, g.N()))
	}
}

func TestShapeIsMinOfWidthAndLength(t *testing.T) {
	// A clique bag has width n-1 but length 1, so shape must be 1.
	g := gen.Complete(6)
	d := distFn(g)
	pd := SingleBag(g)
	if pd.Shape(d, g.N()) != 1 {
		t.Fatalf("clique bag shape %d, want 1", pd.Shape(d, g.N()))
	}
}

func TestBagLengthUnreachable(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).Build()
	d := distFn(g)
	l := BagLength([]graph.NodeID{0, 2}, d, g.N())
	if l != g.N() {
		t.Fatalf("unreachable pair length %d, want %d", l, g.N())
	}
}

func TestReduceRemovesContainedBags(t *testing.T) {
	pd := NewPathDecomposition([][]graph.NodeID{{0, 1}, {1}, {1, 2}, {1, 2, 3}, {2, 3}})
	r := pd.Reduce()
	if r.B() != 2 {
		t.Fatalf("reduced to %d bags, want 2", r.B())
	}
	g := gen.Path(4)
	if err := r.Validate(g); err != nil {
		t.Fatalf("reduced decomposition invalid: %v", err)
	}
}

func TestReducePreservesValidity(t *testing.T) {
	rng := xrand.New(5)
	check := func(raw uint16) bool {
		n := 2 + int(raw%50)
		g := gen.RandomTree(n, rng)
		pd, err := TreeCentroid(g)
		if err != nil {
			return false
		}
		return pd.Reduce().Validate(g) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeIntervals(t *testing.T) {
	pd := NewPathDecomposition([][]graph.NodeID{{0, 1}, {1, 2}, {2, 3}})
	first, last := pd.NodeIntervals(4)
	if first[1] != 0 || last[1] != 1 {
		t.Fatalf("node 1 interval [%d,%d]", first[1], last[1])
	}
	if first[3] != 2 || last[3] != 2 {
		t.Fatalf("node 3 interval [%d,%d]", first[3], last[3])
	}
}

func TestOfPathGraph(t *testing.T) {
	g := gen.Path(20)
	pd, err := OfPathGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := pd.Validate(g); err != nil {
		t.Fatal(err)
	}
	if pd.Width() != 1 {
		t.Fatalf("path width %d", pd.Width())
	}
	if pd.B() != 19 {
		t.Fatalf("path decomposition has %d bags", pd.B())
	}
}

func TestOfPathGraphRejectsNonPath(t *testing.T) {
	if _, err := OfPathGraph(gen.Cycle(5)); err == nil {
		t.Fatal("cycle accepted as path")
	}
	if _, err := OfPathGraph(gen.Star(5)); err == nil {
		t.Fatal("star accepted as path")
	}
}

func TestOfPathGraphTinyCases(t *testing.T) {
	pd, err := OfPathGraph(gen.Path(1))
	if err != nil || pd.B() != 1 {
		t.Fatalf("Path(1): %v, %d bags", err, pd.B())
	}
	pd, err = OfPathGraph(gen.Path(2))
	if err != nil || pd.Width() != 1 {
		t.Fatalf("Path(2): %v width %d", err, pd.Width())
	}
}

func TestIntervalCliquePath(t *testing.T) {
	rng := xrand.New(7)
	for _, n := range []int{5, 50, 300} {
		g, model := gen.RandomIntervalGraph(n, 3.0, rng)
		pd := IntervalCliquePath(model)
		if err := pd.Validate(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		d := distFn(g)
		if s := pd.Shape(d, g.N()); s > 1 {
			t.Fatalf("interval clique path shape %d, want <= 1", s)
		}
	}
}

func TestIntervalCliquePathOnUnitIntervals(t *testing.T) {
	g, model := gen.UnitIntervalPath(100, 4)
	pd := IntervalCliquePath(model)
	if err := pd.Validate(g); err != nil {
		t.Fatal(err)
	}
	if pd.Length(distFn(g), g.N()) > 1 {
		t.Fatal("clique path bags should have length <= 1")
	}
}

func TestTreeCentroidValidAndLogWidth(t *testing.T) {
	rng := xrand.New(11)
	for _, n := range []int{1, 2, 3, 10, 100, 1000} {
		g := gen.RandomTree(n, rng)
		pd, err := TreeCentroid(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := pd.Validate(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		bound := 1
		for s := 1; s < n; s *= 2 {
			bound++
		}
		if pd.Width() > bound+1 {
			t.Fatalf("n=%d: centroid width %d exceeds log bound %d", n, pd.Width(), bound+1)
		}
	}
}

func TestTreeCentroidOnPathHasLogWidth(t *testing.T) {
	g := gen.Path(1024)
	pd, err := TreeCentroid(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := pd.Validate(g); err != nil {
		t.Fatal(err)
	}
	if pd.Width() > 12 {
		t.Fatalf("centroid width on P_1024 is %d, want <= 12", pd.Width())
	}
}

func TestTreeCentroidRejectsNonTree(t *testing.T) {
	if _, err := TreeCentroid(gen.Cycle(5)); err == nil {
		t.Fatal("cycle accepted as tree")
	}
}

func TestBFSLayersValid(t *testing.T) {
	rng := xrand.New(13)
	graphs := []*graph.Graph{
		gen.Grid2D(8, 8),
		gen.Cycle(20),
		gen.ConnectedGNP(100, 0.05, rng),
		gen.Hypercube(6),
	}
	for _, g := range graphs {
		pd, err := BFSLayers(g, 0)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if err := pd.Validate(g); err != nil {
			t.Fatalf("%v: %v", g, err)
		}
	}
}

func TestBFSLayersRejectsDisconnected(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).Build()
	if _, err := BFSLayers(g, 0); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestBFSLayersSingleNode(t *testing.T) {
	g := gen.Path(1)
	pd, err := BFSLayers(g, 0)
	if err != nil || pd.B() != 1 {
		t.Fatalf("single node: %v, %d bags", err, pd.B())
	}
}

func TestBestPicksGoodDecomposition(t *testing.T) {
	// On a path, Best should find shape 1 (via the path decomposition).
	g := gen.Path(50)
	d := distFn(g)
	pd, shape := Best(g, d)
	if shape > 1 {
		t.Fatalf("Best shape on path = %d", shape)
	}
	if err := pd.Validate(g); err != nil {
		t.Fatal(err)
	}
	// On a complete graph, the single bag has shape 1.
	k := gen.Complete(10)
	_, shapeK := Best(k, distFn(k))
	if shapeK > 1 {
		t.Fatalf("Best shape on clique = %d", shapeK)
	}
	// On a balanced tree, shape should be logarithmic (centroid construction).
	tr := gen.BalancedTree(2, 9) // 1023 nodes
	_, shapeT := Best(tr, distFn(tr))
	if shapeT > 12 {
		t.Fatalf("Best shape on tree = %d", shapeT)
	}
}

func TestExactPathwidthKnownValues(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{gen.Path(6), 1},
		{gen.Cycle(6), 2},
		{gen.Complete(5), 4},
		{gen.Star(6), 1},
		{gen.Grid2D(3, 3), 3},
		{gen.Path(1), 0},
	}
	for _, c := range cases {
		got, err := ExactPathwidth(c.g)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Fatalf("%v: exact pathwidth %d, want %d", c.g, got, c.want)
		}
	}
}

func TestExactPathwidthRejectsLargeGraphs(t *testing.T) {
	if _, err := ExactPathwidth(gen.Path(40)); err == nil {
		t.Fatal("expected size error")
	}
}

func TestExactDecompositionMatchesExactWidth(t *testing.T) {
	rng := xrand.New(17)
	check := func(raw uint16) bool {
		n := 2 + int(raw%10)
		g := gen.ConnectedGNP(n, 0.4, rng)
		pw, err := ExactPathwidth(g)
		if err != nil {
			return false
		}
		pd, pw2, err := ExactPathwidthDecomposition(g)
		if err != nil {
			return false
		}
		if pw != pw2 {
			return false
		}
		if pd.Validate(g) != nil {
			return false
		}
		return pd.Width() == pw
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCentroidDecompositionNearOptimalOnSmallTrees(t *testing.T) {
	rng := xrand.New(19)
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(12)
		g := gen.RandomTree(n, rng)
		exact, err := ExactPathwidth(g)
		if err != nil {
			t.Fatal(err)
		}
		pd, err := TreeCentroid(g)
		if err != nil {
			t.Fatal(err)
		}
		// The centroid construction is within a log factor; on tiny trees it
		// should never exceed exact + 3.
		if pd.Width() > exact+3 {
			t.Fatalf("n=%d centroid width %d vs exact %d", n, pd.Width(), exact)
		}
	}
}

func TestShapeNeverBelowExactForPath(t *testing.T) {
	// pathshape of a path is 1 (width-1 decomposition); sanity check Best
	// never reports 0 for graphs with at least one edge.
	g := gen.Path(10)
	_, shape := Best(g, distFn(g))
	if shape < 1 {
		t.Fatalf("shape %d below 1 on a graph with edges", shape)
	}
}
