package decomp

import (
	"testing"
	"testing/quick"

	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/xrand"
)

func TestNewTreeDecompositionValidation(t *testing.T) {
	if _, err := NewTreeDecomposition([][]graph.NodeID{{0}}, []int{0}); err == nil {
		t.Fatal("self-parent accepted")
	}
	if _, err := NewTreeDecomposition([][]graph.NodeID{{0}}, []int{5}); err == nil {
		t.Fatal("out-of-range parent accepted")
	}
	if _, err := NewTreeDecomposition([][]graph.NodeID{{0}}, []int{-1, -1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	td, err := NewTreeDecomposition([][]graph.NodeID{{1, 0, 1}}, []int{-1})
	if err != nil {
		t.Fatal(err)
	}
	if len(td.Bags[0]) != 2 {
		t.Fatal("duplicates not removed")
	}
}

func TestOfTreeOnTrees(t *testing.T) {
	rng := xrand.New(1)
	for _, n := range []int{1, 2, 5, 50, 500} {
		g := gen.RandomTree(n, rng)
		td, err := OfTree(g)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := td.Validate(g); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 1 && td.Width() != 1 {
			t.Fatalf("n=%d: width %d, want 1", n, td.Width())
		}
		if n > 1 && td.B() != n-1 {
			t.Fatalf("n=%d: %d bags, want %d", n, td.B(), n-1)
		}
	}
}

func TestOfTreeOnForest(t *testing.T) {
	g := graph.NewBuilder(5).AddEdge(0, 1).AddEdge(2, 3).Build() // node 4 isolated
	td, err := OfTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := td.Validate(g); err != nil {
		t.Fatal(err)
	}
	if td.B() != 3 { // two edge bags + one isolated-node bag
		t.Fatalf("%d bags", td.B())
	}
}

func TestOfTreeRejectsCycles(t *testing.T) {
	if _, err := OfTree(gen.Cycle(5)); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := OfTree(gen.Complete(4)); err == nil {
		t.Fatal("clique accepted")
	}
}

func TestTreeDecompositionMeasures(t *testing.T) {
	g := gen.Star(6)
	td, err := OfTree(g)
	if err != nil {
		t.Fatal(err)
	}
	d := distFn(g)
	if td.Width() != 1 {
		t.Fatalf("width %d", td.Width())
	}
	if td.Length(d, g.N()) != 1 {
		t.Fatalf("length %d", td.Length(d, g.N()))
	}
	if td.Shape(d, g.N()) != 1 {
		t.Fatalf("shape %d", td.Shape(d, g.N()))
	}
	// A single big bag over a clique: width n-1, length 1, shape 1.
	k := gen.Complete(5)
	all := []graph.NodeID{0, 1, 2, 3, 4}
	tdK, err := NewTreeDecomposition([][]graph.NodeID{all}, []int{-1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tdK.Validate(k); err != nil {
		t.Fatal(err)
	}
	dk := distFn(k)
	if tdK.Width() != 4 || tdK.Shape(dk, 5) != 1 {
		t.Fatalf("clique bag width %d shape %d", tdK.Width(), tdK.Shape(dk, 5))
	}
}

func TestValidateCatchesBrokenTreeDecompositions(t *testing.T) {
	g := gen.Path(4)
	// Missing node 3.
	td, _ := NewTreeDecomposition([][]graph.NodeID{{0, 1}, {1, 2}}, []int{-1, 0})
	if err := td.Validate(g); err == nil {
		t.Fatal("missing node accepted")
	}
	// Edge (2,3) uncovered.
	td2, _ := NewTreeDecomposition([][]graph.NodeID{{0, 1}, {1, 2}, {3}}, []int{-1, 0, 1})
	if err := td2.Validate(g); err == nil {
		t.Fatal("missing edge accepted")
	}
	// Node 1's bags do not induce a subtree (bags 0 and 2 are not adjacent).
	td3, _ := NewTreeDecomposition([][]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {1, 3}}, []int{-1, 0, 1, 2})
	_ = td3
	td4, _ := NewTreeDecomposition([][]graph.NodeID{{0, 1}, {2}, {1, 2, 3}}, []int{-1, 0, 1})
	if err := td4.Validate(g); err != nil {
		// {0,1} - {2} - {1,2,3}: node 1 appears in bags 0 and 2 which are not
		// adjacent, so validation must fail.
		t.Logf("connectivity violation correctly reported: %v", err)
	} else {
		t.Fatal("non-subtree occurrence accepted")
	}
}

func TestFromPathDecomposition(t *testing.T) {
	g := gen.Path(10)
	pd, err := OfPathGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	td := FromPathDecomposition(pd)
	if err := td.Validate(g); err != nil {
		t.Fatal(err)
	}
	if td.Width() != pd.Width() {
		t.Fatal("width changed by conversion")
	}
}

func TestToPathDecompositionValid(t *testing.T) {
	rng := xrand.New(7)
	check := func(raw uint16) bool {
		n := 2 + int(raw%60)
		g := gen.RandomTree(n, rng)
		td, err := OfTree(g)
		if err != nil {
			return false
		}
		pd := td.ToPathDecomposition()
		return pd.Validate(g) == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestToPathDecompositionWidthBound(t *testing.T) {
	// On a balanced binary tree the edge-bag tree is balanced, so the
	// conversion's width is O(width · depth) = O(log n).
	g := gen.BinaryTree(127)
	td, err := OfTree(g)
	if err != nil {
		t.Fatal(err)
	}
	pd := td.ToPathDecomposition()
	if err := pd.Validate(g); err != nil {
		t.Fatal(err)
	}
	if pd.Width() > 16 {
		t.Fatalf("converted pathwidth %d too large for a 127-node balanced tree", pd.Width())
	}
}

func TestTreeshapeVsPathshapeOrdering(t *testing.T) {
	// Treeshape is never larger than pathshape for the constructions we can
	// compare: the edge-bag decomposition of a tree has shape 1 while the
	// centroid path decomposition typically has shape ~log n.
	g := gen.BinaryTree(255)
	d := distFn(g)
	td, err := OfTree(g)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := TreeCentroid(g)
	if err != nil {
		t.Fatal(err)
	}
	ts := td.Shape(d, g.N())
	ps := pd.Shape(d, g.N())
	if ts > ps {
		t.Fatalf("treeshape upper bound %d exceeds pathshape upper bound %d", ts, ps)
	}
	if ts != 1 {
		t.Fatalf("edge-bag treeshape %d, want 1", ts)
	}
}

func TestEmptyTreeDecomposition(t *testing.T) {
	td := &TreeDecomposition{}
	empty := graph.NewBuilder(0).Build()
	if err := td.Validate(empty); err != nil {
		t.Fatal(err)
	}
	if td.Width() != -1 {
		t.Fatal("empty width")
	}
	if td.ToPathDecomposition().B() != 0 {
		t.Fatal("empty conversion")
	}
	nonEmpty := gen.Path(2)
	if err := td.Validate(nonEmpty); err == nil {
		t.Fatal("empty decomposition accepted for non-empty graph")
	}
}
