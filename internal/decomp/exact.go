package decomp

import (
	"fmt"
	"math/bits"

	"navaug/internal/graph"
)

// This file implements exact pathwidth for small graphs via the vertex
// separation number, which equals pathwidth.  The dynamic program runs over
// all 2^n vertex subsets, so it is restricted to n <= MaxExactNodes.  Tests
// use it to certify that the constructive decompositions are close to
// optimal on small instances.

// MaxExactNodes bounds the graph size accepted by ExactPathwidth.
const MaxExactNodes = 22

// ExactPathwidth computes the pathwidth of g exactly via the vertex
// separation DP.  It returns an error when g has more than MaxExactNodes
// nodes.
func ExactPathwidth(g *graph.Graph) (int, error) {
	n := g.N()
	if n > MaxExactNodes {
		return 0, fmt.Errorf("decomp: ExactPathwidth limited to %d nodes, got %d", MaxExactNodes, n)
	}
	if n == 0 {
		return 0, nil
	}
	// neighbour bitmasks
	nbr := make([]uint32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			nbr[u] |= 1 << uint(v)
		}
	}
	full := uint32(1)<<uint(n) - 1
	// dp[S] = minimal achievable maximum boundary over orderings whose prefix
	// is exactly S; boundary(S) = |{v in S : v has a neighbour outside S}|.
	const inf = int32(1 << 30)
	dp := make([]int32, full+1)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	boundary := func(S uint32) int32 {
		cnt := int32(0)
		rest := S
		for rest != 0 {
			v := bits.TrailingZeros32(rest)
			rest &= rest - 1
			if nbr[v]&^S != 0 {
				cnt++
			}
		}
		return cnt
	}
	for S := uint32(1); S <= full; S++ {
		b := boundary(S)
		best := inf
		rest := S
		for rest != 0 {
			v := bits.TrailingZeros32(rest)
			rest &= rest - 1
			prev := dp[S&^(1<<uint(v))]
			if prev < best {
				best = prev
			}
		}
		if b > best {
			best = b
		}
		dp[S] = best
	}
	return int(dp[full]), nil
}

// ExactPathwidthDecomposition returns an optimal-width path decomposition
// for small graphs by recovering an optimal vertex ordering from the DP and
// converting it into bags.  Bag i contains vertex v_i plus all earlier
// vertices that still have a neighbour among v_i..v_{n-1}.
func ExactPathwidthDecomposition(g *graph.Graph) (*PathDecomposition, int, error) {
	n := g.N()
	if n > MaxExactNodes {
		return nil, 0, fmt.Errorf("decomp: ExactPathwidthDecomposition limited to %d nodes, got %d", MaxExactNodes, n)
	}
	if n == 0 {
		return &PathDecomposition{}, 0, nil
	}
	nbr := make([]uint32, n)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.NodeID(u)) {
			nbr[u] |= 1 << uint(v)
		}
	}
	full := uint32(1)<<uint(n) - 1
	const inf = int32(1 << 30)
	dp := make([]int32, full+1)
	choice := make([]int8, full+1)
	for i := range dp {
		dp[i] = inf
		choice[i] = -1
	}
	dp[0] = 0
	boundary := func(S uint32) int32 {
		cnt := int32(0)
		rest := S
		for rest != 0 {
			v := bits.TrailingZeros32(rest)
			rest &= rest - 1
			if nbr[v]&^S != 0 {
				cnt++
			}
		}
		return cnt
	}
	for S := uint32(1); S <= full; S++ {
		b := boundary(S)
		best := inf
		bestV := int8(-1)
		rest := S
		for rest != 0 {
			v := bits.TrailingZeros32(rest)
			rest &= rest - 1
			prev := dp[S&^(1<<uint(v))]
			if prev < best {
				best = prev
				bestV = int8(v)
			}
		}
		if b > best {
			best = b
		}
		dp[S] = best
		choice[S] = bestV
	}
	// Recover the ordering by walking back from the full set.
	order := make([]graph.NodeID, 0, n)
	S := full
	for S != 0 {
		v := choice[S]
		order = append(order, graph.NodeID(v))
		S &^= 1 << uint(v)
	}
	// order currently lists vertices last-to-first.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	// Convert ordering to bags.
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	bags := make([][]graph.NodeID, n)
	for i, v := range order {
		bag := []graph.NodeID{v}
		for _, u := range order[:i] {
			// u stays active if it has a neighbour not yet placed (position >= i).
			for _, w := range g.Neighbors(u) {
				if pos[w] >= i {
					bag = append(bag, u)
					break
				}
			}
		}
		bags[i] = bag
	}
	pd := NewPathDecomposition(bags).Reduce()
	return pd, int(dp[full]), nil
}
