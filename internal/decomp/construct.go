package decomp

import (
	"fmt"
	"sort"

	"navaug/internal/graph"
	"navaug/internal/graph/gen"
)

// This file contains the concrete path-decomposition constructions used by
// the Theorem 2 experiments:
//
//   - SingleBag: the trivial decomposition (shape ≤ min(n-1, diam)).
//   - OfPathGraph: the natural width-1 decomposition of a path.
//   - IntervalCliquePath: the clique path of an interval graph, which has
//     length ≤ 1 and therefore shape ≤ 1 (the AT-free corollary).
//   - TreeCentroid: a recursive centroid construction giving width (and thus
//     shape) at most ~log2(n) on any tree.
//   - BFSLayers: the generic fallback for arbitrary graphs (bags are unions
//     of two consecutive BFS layers).
//   - Best: picks the smallest-shape decomposition among the applicable
//     constructions, which is how experiments obtain a pathshape upper bound.

// SingleBag returns the trivial decomposition with one bag holding all
// nodes.
func SingleBag(g *graph.Graph) *PathDecomposition {
	bag := make([]graph.NodeID, g.N())
	for i := range bag {
		bag[i] = graph.NodeID(i)
	}
	return &PathDecomposition{Bags: [][]graph.NodeID{bag}}
}

// OfPathGraph returns the width-1 decomposition of a graph that is a simple
// path: bags {v_i, v_{i+1}} along the path order.  It returns an error if g
// is not a path.
func OfPathGraph(g *graph.Graph) (*PathDecomposition, error) {
	n := g.N()
	if n == 0 {
		return &PathDecomposition{}, nil
	}
	if n == 1 {
		return &PathDecomposition{Bags: [][]graph.NodeID{{0}}}, nil
	}
	if g.M() != n-1 || !g.IsConnected() || g.MaxDegree() > 2 {
		return nil, fmt.Errorf("decomp: graph %v is not a path", g)
	}
	// Find an endpoint and walk.
	var start graph.NodeID = -1
	for u := graph.NodeID(0); int(u) < n; u++ {
		if g.Degree(u) == 1 {
			start = u
			break
		}
	}
	if start == -1 {
		return nil, fmt.Errorf("decomp: graph %v has no degree-1 endpoint", g)
	}
	order := make([]graph.NodeID, 0, n)
	prev := graph.NodeID(-1)
	cur := start
	for {
		order = append(order, cur)
		next := graph.NodeID(-1)
		for _, v := range g.Neighbors(cur) {
			if v != prev {
				next = v
				break
			}
		}
		if next == -1 {
			break
		}
		prev, cur = cur, next
	}
	if len(order) != n {
		return nil, fmt.Errorf("decomp: path walk covered %d of %d nodes", len(order), n)
	}
	bags := make([][]graph.NodeID, 0, n-1)
	for i := 0; i+1 < n; i++ {
		bags = append(bags, []graph.NodeID{order[i], order[i+1]})
	}
	return NewPathDecomposition(bags), nil
}

// IntervalCliquePath builds the clique-path decomposition of an interval
// graph from its interval model.  Bag i (in order of left endpoints) is the
// set of intervals containing the left endpoint of the i-th interval, so
// every bag is a clique and the decomposition has length ≤ 1.
func IntervalCliquePath(model gen.IntervalModel) *PathDecomposition {
	n := len(model)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return model[order[a]].Lo < model[order[b]].Lo })
	bags := make([][]graph.NodeID, 0, n)
	// Sweep by left endpoint keeping the set of intervals that are still
	// "open" (their right endpoint has not been passed), so the total work is
	// proportional to the sum of bag sizes rather than n².
	active := make([]int, 0, 8)
	for _, v := range order {
		point := model[v].Lo
		keep := active[:0]
		bag := make([]graph.NodeID, 0, 8)
		for _, u := range active {
			if model[u].Hi >= point {
				keep = append(keep, u)
				bag = append(bag, graph.NodeID(u))
			}
		}
		active = append(keep, v)
		bag = append(bag, graph.NodeID(v))
		bags = append(bags, bag)
	}
	return NewPathDecomposition(bags).Reduce()
}

// TreeCentroid builds a path decomposition of a tree with width at most
// about log2(n): it finds a centroid, recursively decomposes each remaining
// component, concatenates those decompositions and adds the centroid to
// every bag.  It returns an error if g is not a tree.
func TreeCentroid(g *graph.Graph) (*PathDecomposition, error) {
	n := g.N()
	if n == 0 {
		return &PathDecomposition{}, nil
	}
	if g.M() != n-1 || !g.IsConnected() {
		return nil, fmt.Errorf("decomp: graph %v is not a tree", g)
	}
	all := make([]graph.NodeID, n)
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	bags := centroidBags(g, all)
	if len(bags) == 0 {
		bags = [][]graph.NodeID{{0}}
	}
	return NewPathDecomposition(bags).Reduce(), nil
}

// centroidBags recursively decomposes the subtree induced by nodes (which
// must induce a connected subtree of g) and returns its bags.
func centroidBags(g *graph.Graph, nodes []graph.NodeID) [][]graph.NodeID {
	if len(nodes) == 0 {
		return nil
	}
	if len(nodes) == 1 {
		return [][]graph.NodeID{{nodes[0]}}
	}
	inSet := make(map[graph.NodeID]bool, len(nodes))
	for _, v := range nodes {
		inSet[v] = true
	}
	c := centroid(g, nodes, inSet)
	// Split into components of nodes \ {c}.
	delete(inSet, c)
	var comps [][]graph.NodeID
	visited := make(map[graph.NodeID]bool, len(nodes))
	for _, root := range g.Neighbors(c) {
		if !inSet[root] || visited[root] {
			continue
		}
		comp := []graph.NodeID{root}
		visited[root] = true
		for head := 0; head < len(comp); head++ {
			u := comp[head]
			for _, v := range g.Neighbors(u) {
				if inSet[v] && !visited[v] {
					visited[v] = true
					comp = append(comp, v)
				}
			}
		}
		comps = append(comps, comp)
	}
	var bags [][]graph.NodeID
	for _, comp := range comps {
		for _, bag := range centroidBags(g, comp) {
			bags = append(bags, append(bag, c))
		}
	}
	if len(bags) == 0 {
		bags = [][]graph.NodeID{{c}}
	}
	return bags
}

// centroid returns a node of the induced subtree whose removal leaves
// components of size at most len(nodes)/2.
func centroid(g *graph.Graph, nodes []graph.NodeID, inSet map[graph.NodeID]bool) graph.NodeID {
	total := len(nodes)
	root := nodes[0]
	// Iterative post-order subtree size computation over the induced subtree.
	size := make(map[graph.NodeID]int, total)
	parent := make(map[graph.NodeID]graph.NodeID, total)
	order := make([]graph.NodeID, 0, total)
	stack := []graph.NodeID{root}
	parent[root] = -1
	seen := map[graph.NodeID]bool{root: true}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		for _, v := range g.Neighbors(u) {
			if inSet[v] && !seen[v] {
				seen[v] = true
				parent[v] = u
				stack = append(stack, v)
			}
		}
	}
	for i := len(order) - 1; i >= 0; i-- {
		u := order[i]
		size[u]++
		if p := parent[u]; p != -1 {
			size[p] += size[u]
		}
	}
	// The centroid is the node where the largest component after removal is
	// minimal; walking down from the root towards the heaviest child finds it.
	best := root
	bestWorst := total
	for _, u := range order {
		worst := total - size[u] // the component containing the parent side
		for _, v := range g.Neighbors(u) {
			if inSet[v] && parent[v] == u && size[v] > worst {
				worst = size[v]
			}
		}
		if worst < bestWorst {
			bestWorst = worst
			best = u
		}
	}
	return best
}

// BFSLayers builds the generic path decomposition whose i-th bag is the
// union of BFS layers i and i+1 from the given root.  Every edge of a graph
// joins nodes in the same or adjacent layers, so this is always a valid path
// decomposition.  Width is governed by the largest pair of adjacent layers.
func BFSLayers(g *graph.Graph, root graph.NodeID) (*PathDecomposition, error) {
	if g.N() == 0 {
		return &PathDecomposition{}, nil
	}
	dist := g.BFS(root)
	maxD := int32(0)
	for _, d := range dist {
		if d == graph.Unreachable {
			return nil, fmt.Errorf("decomp: BFSLayers requires a connected graph")
		}
		if d > maxD {
			maxD = d
		}
	}
	layers := make([][]graph.NodeID, maxD+1)
	for v, d := range dist {
		layers[d] = append(layers[d], graph.NodeID(v))
	}
	if maxD == 0 {
		return NewPathDecomposition([][]graph.NodeID{layers[0]}), nil
	}
	bags := make([][]graph.NodeID, 0, maxD)
	for i := int32(0); i < maxD; i++ {
		bag := append(append([]graph.NodeID(nil), layers[i]...), layers[i+1]...)
		bags = append(bags, bag)
	}
	return NewPathDecomposition(bags).Reduce(), nil
}

// Best returns the decomposition of smallest shape among the constructions
// that apply to g, together with that shape value.  The distFn is used to
// evaluate bag lengths.  Best always succeeds on connected graphs because
// BFSLayers and SingleBag always apply.
func Best(g *graph.Graph, distFn func(u, v graph.NodeID) int32) (*PathDecomposition, int) {
	type candidate struct {
		pd  *PathDecomposition
		err error
	}
	var cands []candidate
	if pd, err := OfPathGraph(g); err == nil {
		cands = append(cands, candidate{pd: pd})
	}
	if pd, err := TreeCentroid(g); err == nil {
		cands = append(cands, candidate{pd: pd})
	}
	if pd, err := BFSLayers(g, 0); err == nil {
		cands = append(cands, candidate{pd: pd})
	}
	cands = append(cands, candidate{pd: SingleBag(g)})

	bestShape := -1
	var bestPD *PathDecomposition
	for _, c := range cands {
		if c.pd == nil || c.pd.B() == 0 {
			continue
		}
		s := c.pd.Shape(distFn, g.N())
		if bestShape == -1 || s < bestShape {
			bestShape = s
			bestPD = c.pd
		}
	}
	return bestPD, bestShape
}
