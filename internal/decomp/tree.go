package decomp

import (
	"fmt"
	"sort"

	"navaug/internal/graph"
)

// This file implements tree decompositions and the paper's treeshape
// parameter ts(G) (Definition 2 applies the shape measure to both tree and
// path decompositions).  Path decompositions are what Theorem 2 consumes,
// but treeshape is the natural companion notion and the conversion
// TreeDecomposition.ToPathDecomposition documents the ps(G) ≤ (ts(G)+1)·O(log n)
// style relationships the paper's corollaries rest on.

// TreeDecomposition is a tree of bags over the nodes of a graph.  The tree
// is stored as a parent forest over bag indices: Parent[i] == -1 marks a
// root.  Bags are sorted slices of node ids.
type TreeDecomposition struct {
	Bags   [][]graph.NodeID
	Parent []int
}

// NewTreeDecomposition copies, sorts and deduplicates the given bags and
// parent pointers.
func NewTreeDecomposition(bags [][]graph.NodeID, parent []int) (*TreeDecomposition, error) {
	if len(bags) != len(parent) {
		return nil, fmt.Errorf("decomp: %d bags but %d parent pointers", len(bags), len(parent))
	}
	td := &TreeDecomposition{Bags: make([][]graph.NodeID, len(bags)), Parent: append([]int(nil), parent...)}
	for i, bag := range bags {
		cp := append([]graph.NodeID(nil), bag...)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
		out := cp[:0]
		for j, v := range cp {
			if j == 0 || v != cp[j-1] {
				out = append(out, v)
			}
		}
		td.Bags[i] = out
	}
	for i, p := range parent {
		if p < -1 || p >= len(bags) || p == i {
			return nil, fmt.Errorf("decomp: bag %d has invalid parent %d", i, p)
		}
	}
	return td, nil
}

// B returns the number of bags.
func (td *TreeDecomposition) B() int { return len(td.Bags) }

// Validate checks the tree-decomposition conditions against g: the parent
// pointers form a single tree (or forest whose every tree is trivially
// acceptable only when the graph is disconnected), every node and edge is
// covered, and every node's bags induce a connected subtree.
func (td *TreeDecomposition) Validate(g *graph.Graph) error {
	b := td.B()
	if b == 0 {
		if g.N() == 0 {
			return nil
		}
		return fmt.Errorf("decomp: no bags for a non-empty graph")
	}
	// Acyclicity / reachability of the parent forest.
	for i := range td.Parent {
		seen := map[int]bool{}
		for j := i; j != -1; j = td.Parent[j] {
			if seen[j] {
				return fmt.Errorf("decomp: parent pointers contain a cycle through bag %d", j)
			}
			seen[j] = true
		}
	}
	// Node coverage and subtree connectivity.
	n := g.N()
	bagsOf := make([][]int, n)
	for i, bag := range td.Bags {
		for _, v := range bag {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("decomp: bag %d contains out-of-range node %d", i, v)
			}
			bagsOf[v] = append(bagsOf[v], i)
		}
	}
	for v := 0; v < n; v++ {
		if len(bagsOf[v]) == 0 {
			return fmt.Errorf("decomp: node %d appears in no bag", v)
		}
		if !inducesSubtree(td, bagsOf[v]) {
			return fmt.Errorf("decomp: bags containing node %d do not induce a subtree", v)
		}
	}
	// Edge coverage.
	for _, e := range g.Edges() {
		if !shareBag(bagsOf[e.U], bagsOf[e.V]) {
			return fmt.Errorf("decomp: edge (%d,%d) not covered by any bag", e.U, e.V)
		}
	}
	return nil
}

// inducesSubtree reports whether the given bag indices form a connected
// subtree of the decomposition tree.
func inducesSubtree(td *TreeDecomposition, bags []int) bool {
	if len(bags) <= 1 {
		return true
	}
	inSet := make(map[int]bool, len(bags))
	for _, i := range bags {
		inSet[i] = true
	}
	// Adjacency within the set: bag i is adjacent to Parent[i] when both are
	// in the set.  BFS from the first bag must reach all of them.
	adj := make(map[int][]int, len(bags))
	for _, i := range bags {
		if p := td.Parent[i]; p != -1 && inSet[p] {
			adj[i] = append(adj[i], p)
			adj[p] = append(adj[p], i)
		}
	}
	visited := map[int]bool{bags[0]: true}
	queue := []int{bags[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	return len(visited) == len(bags)
}

func shareBag(a, b []int) bool {
	set := make(map[int]bool, len(a))
	for _, i := range a {
		set[i] = true
	}
	for _, j := range b {
		if set[j] {
			return true
		}
	}
	return false
}

// Width returns max |bag| - 1.
func (td *TreeDecomposition) Width() int {
	w := -1
	for _, bag := range td.Bags {
		if len(bag)-1 > w {
			w = len(bag) - 1
		}
	}
	return w
}

// Length returns the maximum bag length under the given distance function.
func (td *TreeDecomposition) Length(distFn func(u, v graph.NodeID) int32, n int) int {
	best := 0
	for _, bag := range td.Bags {
		if l := BagLength(bag, distFn, n); l > best {
			best = l
		}
	}
	return best
}

// Shape returns the maximum over bags of min(width(bag), length(bag)) — the
// paper's shape measure applied to a tree decomposition.
func (td *TreeDecomposition) Shape(distFn func(u, v graph.NodeID) int32, n int) int {
	best := 0
	for _, bag := range td.Bags {
		w := len(bag) - 1
		s := w
		if w > 0 {
			if l := BagLength(bag, distFn, n); l < s {
				s = l
			}
		}
		if s > best {
			best = s
		}
	}
	return best
}

// OfTree returns the natural width-1 tree decomposition of a tree graph:
// one bag per edge plus one bag per isolated node, with bags glued along the
// tree structure.  It returns an error when g is not a forest; for the
// Theorem 2 machinery use TreeCentroid instead (path decompositions).
func OfTree(g *graph.Graph) (*TreeDecomposition, error) {
	n := g.N()
	if g.M() > n-1 {
		return nil, fmt.Errorf("decomp: graph %v has too many edges to be a forest", g)
	}
	comps := g.Components()
	if g.M() != n-len(comps) {
		return nil, fmt.Errorf("decomp: graph %v contains a cycle", g)
	}
	var bags [][]graph.NodeID
	var parent []int
	// bagOfNode[v] is the index of the bag whose "lower" endpoint is v (the
	// bag for the edge from v to its BFS parent), used to glue children.
	bagOfNode := make([]int, n)
	for i := range bagOfNode {
		bagOfNode[i] = -1
	}
	for _, comp := range comps {
		root := comp[0]
		// BFS from the component root creating one bag per tree edge.
		type item struct{ node, parentBag int32 }
		queue := []item{{node: root, parentBag: -1}}
		visited := map[graph.NodeID]bool{root: true}
		if len(comp) == 1 {
			bags = append(bags, []graph.NodeID{root})
			parent = append(parent, -1)
			bagOfNode[root] = len(bags) - 1
			continue
		}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			// attach is where bags for cur's child edges hang: normally the bag
			// of the edge towards cur's own parent; at the component root the
			// first child-edge bag becomes the tree root and the remaining
			// child-edge bags attach to it (they all share the root node, so
			// the node-connectivity condition holds).
			attach := int(cur.parentBag)
			for _, nb := range g.Neighbors(graph.NodeID(cur.node)) {
				if visited[nb] {
					continue
				}
				visited[nb] = true
				bags = append(bags, []graph.NodeID{graph.NodeID(cur.node), nb})
				parent = append(parent, attach)
				idx := len(bags) - 1
				if attach == -1 {
					attach = idx
				}
				bagOfNode[nb] = idx
				queue = append(queue, item{node: int32(nb), parentBag: int32(idx)})
			}
		}
	}
	return NewTreeDecomposition(bags, parent)
}

// FromPathDecomposition views a path decomposition as a tree decomposition
// whose tree is a path.
func FromPathDecomposition(pd *PathDecomposition) *TreeDecomposition {
	parent := make([]int, pd.B())
	for i := range parent {
		parent[i] = i - 1
	}
	td, err := NewTreeDecomposition(pd.Bags, parent)
	if err != nil {
		// A valid path decomposition always converts cleanly.
		panic("decomp: FromPathDecomposition: " + err.Error())
	}
	return td
}

// ToPathDecomposition converts a tree decomposition into a path
// decomposition by walking the bag tree in depth-first order and emitting,
// at every bag, the union of the bags on the root-to-current path.  The
// resulting width is at most (width+1)·depth - 1, which is the classical
// pw ≤ O(tw · log n) route when the bag tree is balanced.
func (td *TreeDecomposition) ToPathDecomposition() *PathDecomposition {
	b := td.B()
	if b == 0 {
		return &PathDecomposition{}
	}
	children := make([][]int, b)
	roots := []int{}
	for i, p := range td.Parent {
		if p == -1 {
			roots = append(roots, i)
		} else {
			children[p] = append(children[p], i)
		}
	}
	var bags [][]graph.NodeID
	var stack []graph.NodeID // multiset of nodes on the current root path
	var walk func(i int)
	walk = func(i int) {
		stack = append(stack, td.Bags[i]...)
		union := append([]graph.NodeID(nil), stack...)
		bags = append(bags, union)
		for _, c := range children[i] {
			walk(c)
		}
		stack = stack[:len(stack)-len(td.Bags[i])]
	}
	for _, r := range roots {
		walk(r)
	}
	return NewPathDecomposition(bags).Reduce()
}
