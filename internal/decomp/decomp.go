// Package decomp implements path decompositions and the width, length and
// shape measures the paper builds on.
//
// A path decomposition of G is a sequence of bags X_1..X_b (subsets of
// V(G)) such that every node appears in at least one bag, every edge has
// both endpoints in some bag, and the bags containing any fixed node are
// consecutive.  The paper's new parameter is the *shape* of a bag,
// min(width, length), and the *pathshape* ps(G) is the smallest achievable
// maximum bag shape.  Computing ps(G) exactly is NP-hard in general, so the
// package provides exact computation for tiny graphs plus the constructions
// used by Theorem 2's corollaries (interval clique paths, centroid
// decompositions of trees, BFS-layer decompositions of arbitrary graphs).
package decomp

import (
	"fmt"
	"sort"

	"navaug/internal/graph"
)

// PathDecomposition is an ordered sequence of bags over the nodes of a
// graph.  Bags are stored as sorted slices of node ids.
type PathDecomposition struct {
	Bags [][]graph.NodeID
}

// NewPathDecomposition copies and sorts the given bags.
func NewPathDecomposition(bags [][]graph.NodeID) *PathDecomposition {
	pd := &PathDecomposition{Bags: make([][]graph.NodeID, len(bags))}
	for i, bag := range bags {
		cp := append([]graph.NodeID(nil), bag...)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
		// drop duplicates within a bag
		out := cp[:0]
		for j, v := range cp {
			if j == 0 || v != cp[j-1] {
				out = append(out, v)
			}
		}
		pd.Bags[i] = out
	}
	return pd
}

// B returns the number of bags.
func (pd *PathDecomposition) B() int { return len(pd.Bags) }

// Validate checks the three path-decomposition conditions against g and
// returns a descriptive error when one fails.
func (pd *PathDecomposition) Validate(g *graph.Graph) error {
	n := g.N()
	first := make([]int, n)
	last := make([]int, n)
	count := make([]int, n)
	for i := range first {
		first[i] = -1
	}
	for idx, bag := range pd.Bags {
		for _, v := range bag {
			if v < 0 || int(v) >= n {
				return fmt.Errorf("decomp: bag %d contains out-of-range node %d", idx, v)
			}
			if first[v] == -1 {
				first[v] = idx
			}
			last[v] = idx
			count[v]++
		}
	}
	for v := 0; v < n; v++ {
		if first[v] == -1 {
			return fmt.Errorf("decomp: node %d appears in no bag", v)
		}
		// Contiguity: the node must appear in every bag between first and last.
		if count[v] != last[v]-first[v]+1 {
			return fmt.Errorf("decomp: node %d appears in non-consecutive bags", v)
		}
	}
	for _, e := range g.Edges() {
		covered := false
		lo := max(first[e.U], first[e.V])
		hi := min(last[e.U], last[e.V])
		if lo <= hi {
			covered = true
		}
		if !covered {
			return fmt.Errorf("decomp: edge (%d,%d) not covered by any bag", e.U, e.V)
		}
	}
	return nil
}

// Width returns max_i |X_i| - 1, the classical pathwidth of this particular
// decomposition.  The empty decomposition has width -1.
func (pd *PathDecomposition) Width() int {
	w := -1
	for _, bag := range pd.Bags {
		if len(bag)-1 > w {
			w = len(bag) - 1
		}
	}
	return w
}

// BagLength returns max_{x,y in bag} dist_G(x,y) using the provided
// distance function.  Unreachable pairs contribute the value of g's node
// count (an effectively infinite length).
func BagLength(bag []graph.NodeID, distFn func(u, v graph.NodeID) int32, n int) int {
	best := 0
	for i := 0; i < len(bag); i++ {
		for j := i + 1; j < len(bag); j++ {
			d := distFn(bag[i], bag[j])
			if d < 0 {
				d = int32(n)
			}
			if int(d) > best {
				best = int(d)
			}
		}
	}
	return best
}

// Length returns the maximum bag length of the decomposition under the
// given distance function (typically dist.APSP.Dist or a TargetOracle).
func (pd *PathDecomposition) Length(distFn func(u, v graph.NodeID) int32, n int) int {
	best := 0
	for _, bag := range pd.Bags {
		if l := BagLength(bag, distFn, n); l > best {
			best = l
		}
	}
	return best
}

// Shape returns the shape of this decomposition: the maximum over bags of
// min(width(bag), length(bag)).
func (pd *PathDecomposition) Shape(distFn func(u, v graph.NodeID) int32, n int) int {
	best := 0
	for _, bag := range pd.Bags {
		w := len(bag) - 1
		s := w
		// Only compute the quadratic bag length when the width alone does not
		// already determine a small shape.
		if w > 0 {
			l := BagLength(bag, distFn, n)
			if l < s {
				s = l
			}
		}
		if s > best {
			best = s
		}
	}
	return best
}

// Reduce removes bags that are subsets of an adjacent bag.  Reduced
// decompositions never have more than max(1, n-1) bags for connected graphs
// and reducing can only decrease width, length and shape.
func (pd *PathDecomposition) Reduce() *PathDecomposition {
	bags := make([][]graph.NodeID, 0, len(pd.Bags))
	for _, bag := range pd.Bags {
		if len(bags) > 0 {
			prev := bags[len(bags)-1]
			if isSubset(bag, prev) {
				continue
			}
			if isSubset(prev, bag) {
				bags[len(bags)-1] = bag
				continue
			}
		}
		bags = append(bags, bag)
	}
	// A second left-to-right pass does not help with chains of containment
	// created by the replacement above, so run until fixpoint (cheap: the
	// number of bags strictly decreases every effective round).
	for {
		changed := false
		out := bags[:0:0]
		for _, bag := range bags {
			if len(out) > 0 {
				prev := out[len(out)-1]
				if isSubset(bag, prev) {
					changed = true
					continue
				}
				if isSubset(prev, bag) {
					out[len(out)-1] = bag
					changed = true
					continue
				}
			}
			out = append(out, bag)
		}
		bags = out
		if !changed {
			break
		}
	}
	return &PathDecomposition{Bags: bags}
}

// NodeIntervals returns, for every node, the (first, last) bag indices
// (0-based, inclusive) of the bags containing it.  It assumes a valid
// decomposition.
func (pd *PathDecomposition) NodeIntervals(n int) (first, last []int) {
	first = make([]int, n)
	last = make([]int, n)
	for i := range first {
		first[i] = -1
		last[i] = -1
	}
	for idx, bag := range pd.Bags {
		for _, v := range bag {
			if first[v] == -1 {
				first[v] = idx
			}
			last[v] = idx
		}
	}
	return first, last
}

// isSubset reports whether sorted slice a is a subset of sorted slice b.
func isSubset(a, b []graph.NodeID) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}
