package stats

import (
	"math"
	"testing"
	"testing/quick"

	"navaug/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	s := NewSummary([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary %+v", s)
	}
	if !almostEqual(s.Variance, 2.5, 1e-12) {
		t.Fatalf("variance %v", s.Variance)
	}
	if !almostEqual(s.Std, math.Sqrt(2.5), 1e-12) {
		t.Fatalf("std %v", s.Std)
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	if s := NewSummary(nil); s.Count != 0 || s.CI95() != 0 {
		t.Fatal("empty summary should be zero")
	}
	s := NewSummary([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.CI95() != 0 || s.StdErr() != 0 {
		t.Fatalf("single-element summary %+v", s)
	}
}

func TestSummaryCIShrinksWithSampleSize(t *testing.T) {
	rng := xrand.New(1)
	small := make([]float64, 100)
	large := make([]float64, 10000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range large {
		large[i] = rng.NormFloat64()
	}
	if NewSummary(large).CI95() >= NewSummary(small).CI95() {
		t.Fatal("CI should shrink with more samples")
	}
}

func TestSummaryString(t *testing.T) {
	if NewSummary([]float64{1, 2}).String() == "" {
		t.Fatal("empty string")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if Quantile(vals, 0) != 1 || Quantile(vals, 1) != 5 {
		t.Fatal("extremes wrong")
	}
	if Median(vals) != 3 {
		t.Fatalf("median %v", Median(vals))
	}
	if q := Quantile([]float64{1, 2}, 0.5); !almostEqual(q, 1.5, 1e-12) {
		t.Fatalf("interpolated quantile %v", q)
	}
	if q := Quantile([]float64{9}, 0.75); q != 9 {
		t.Fatal("single element quantile")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Fatalf("fit %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Fatalf("R2 %v", fit.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := Linear([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("degenerate x accepted")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func TestLinearFitNoisy(t *testing.T) {
	rng := xrand.New(2)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xv := float64(i)
		x = append(x, xv)
		y = append(y, 4+0.5*xv+rng.NormFloat64())
	}
	fit, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 0.5, 0.01) {
		t.Fatalf("slope %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 %v too low", fit.R2)
	}
}

func TestPowerLawRecoverExponent(t *testing.T) {
	// y = 3 * x^0.5
	var x, y []float64
	for _, n := range []float64{100, 200, 400, 800, 1600, 3200} {
		x = append(x, n)
		y = append(y, 3*math.Sqrt(n))
	}
	fit, err := PowerLaw(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Exponent, 0.5, 1e-9) {
		t.Fatalf("exponent %v", fit.Exponent)
	}
	if !almostEqual(fit.Constant, 3, 1e-6) {
		t.Fatalf("constant %v", fit.Constant)
	}
}

func TestPowerLawSkipsNonPositive(t *testing.T) {
	x := []float64{0, -1, 10, 100, 1000}
	y := []float64{5, 5, 1, 10, 100}
	fit, err := PowerLaw(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 3 {
		t.Fatalf("used %d points, want 3", fit.N)
	}
	if !almostEqual(fit.Exponent, 1, 1e-9) {
		t.Fatalf("exponent %v", fit.Exponent)
	}
}

func TestPowerLawErrors(t *testing.T) {
	if _, err := PowerLaw([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := PowerLaw([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("all non-positive accepted")
	}
}

func TestPolylogFit(t *testing.T) {
	// y = 2 * (log x)^3
	var x, y []float64
	for _, n := range []float64{16, 64, 256, 1024, 4096, 16384} {
		x = append(x, n)
		y = append(y, 2*math.Pow(math.Log(n), 3))
	}
	fit, err := PolylogFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Exponent, 3, 1e-6) {
		t.Fatalf("polylog exponent %v", fit.Exponent)
	}
}

func TestGeometricSizes(t *testing.T) {
	sizes := GeometricSizes(100, 10000, 5)
	if sizes[0] != 100 {
		t.Fatalf("first size %d", sizes[0])
	}
	if sizes[len(sizes)-1] != 10000 {
		t.Fatalf("last size %d", sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatal("sizes not strictly increasing")
		}
	}
	if got := GeometricSizes(50, 50, 3); len(got) != 1 || got[0] != 50 {
		t.Fatalf("degenerate range: %v", got)
	}
	if got := GeometricSizes(10, 1000, 1); len(got) != 1 || got[0] != 1000 {
		t.Fatalf("single point: %v", got)
	}
}

func TestGeometricSizesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	GeometricSizes(0, 10, 3)
}

// Property: the summary mean always lies between min and max, and the
// quantile function is monotone in q.
func TestSummaryAndQuantileProperties(t *testing.T) {
	rng := xrand.New(3)
	check := func(raw uint8) bool {
		n := 1 + int(raw%60)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 10
		}
		s := NewSummary(vals)
		if s.Mean < s.Min-1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := Quantile(vals, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
