// Package stats provides the small statistical toolkit the experiments
// need: summary statistics with confidence intervals, quantiles, and
// least-squares fits (including log-log exponent fits used to verify the
// paper's √n and n^(1/3) scaling claims).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count    int
	Mean     float64
	Variance float64 // unbiased (n-1) sample variance
	Std      float64
	Min      float64
	Max      float64
}

// NewSummary computes summary statistics; an empty sample yields a zero
// Summary with Count == 0.
func NewSummary(values []float64) Summary {
	s := Summary{Count: len(values)}
	if s.Count == 0 {
		return s
	}
	s.Min = values[0]
	s.Max = values[0]
	sum := 0.0
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.Count)
	if s.Count > 1 {
		ss := 0.0
		for _, v := range values {
			d := v - s.Mean
			ss += d * d
		}
		s.Variance = ss / float64(s.Count-1)
		s.Std = math.Sqrt(s.Variance)
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 {
	if s.Count < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.Count))
}

// StdErr returns the standard error of the mean.
func (s Summary) StdErr() float64 {
	if s.Count < 1 {
		return 0
	}
	return s.Std / math.Sqrt(float64(s.Count))
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f ±%.3f [%.3f, %.3f]", s.Count, s.Mean, s.CI95(), s.Min, s.Max)
}

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics.  It panics on an empty sample or
// q outside [0,1].
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic("stats: quantile must be in [0,1]")
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the sample median.
func Median(values []float64) float64 { return Quantile(values, 0.5) }

// LinearFit is the result of an ordinary least squares fit y = a + b·x.
type LinearFit struct {
	Intercept float64 // a
	Slope     float64 // b
	R2        float64 // coefficient of determination
	N         int
}

// Linear fits y = a + b·x by least squares.  It returns an error when fewer
// than two points are given or the x values are all identical.
func Linear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	n := len(x)
	if n < 2 {
		return LinearFit{}, fmt.Errorf("stats: need at least 2 points, got %d", n)
	}
	var sumX, sumY float64
	for i := range x {
		sumX += x[i]
		sumY += y[i]
	}
	meanX := sumX / float64(n)
	meanY := sumY / float64(n)
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - meanX
		dy := y[i] - meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, fmt.Errorf("stats: degenerate fit, all x values identical")
	}
	slope := sxy / sxx
	intercept := meanY - slope*meanX
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range x {
			pred := intercept + slope*x[i]
			ssRes += (y[i] - pred) * (y[i] - pred)
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Intercept: intercept, Slope: slope, R2: r2, N: n}, nil
}

// PowerFit is the result of fitting y = C · x^Exponent in log-log space.
type PowerFit struct {
	Exponent float64
	Constant float64
	R2       float64
	N        int
}

// PowerLaw fits y ≈ C·x^e by least squares on (log x, log y).  Points with
// non-positive coordinates are skipped; it returns an error if fewer than
// two usable points remain.  This is the fit the experiments use to recover
// the 0.5 and 1/3 exponents of Theorems 1 and 4.
func PowerLaw(x, y []float64) (PowerFit, error) {
	if len(x) != len(y) {
		return PowerFit{}, fmt.Errorf("stats: mismatched lengths %d vs %d", len(x), len(y))
	}
	var lx, ly []float64
	for i := range x {
		if x[i] > 0 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, math.Log(y[i]))
		}
	}
	fit, err := Linear(lx, ly)
	if err != nil {
		return PowerFit{}, err
	}
	return PowerFit{
		Exponent: fit.Slope,
		Constant: math.Exp(fit.Intercept),
		R2:       fit.R2,
		N:        fit.N,
	}, nil
}

// PolylogFit fits y ≈ C · (log x)^Exponent, used to sanity-check the
// polylogarithmic regimes of Theorem 2's corollaries.
func PolylogFit(x, y []float64) (PowerFit, error) {
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] > 1 && y[i] > 0 {
			lx = append(lx, math.Log(x[i]))
			ly = append(ly, y[i])
		}
	}
	return PowerLaw(lx, ly)
}

// GeometricSizes returns approximately geometrically spaced integer sizes
// from lo to hi (inclusive of both ends, deduplicated, increasing), with the
// given number of points.  Experiments use it for n sweeps.
func GeometricSizes(lo, hi, points int) []int {
	if lo < 1 || hi < lo || points < 1 {
		panic("stats: GeometricSizes requires 1 <= lo <= hi and points >= 1")
	}
	if points == 1 {
		return []int{hi}
	}
	out := make([]int, 0, points)
	ratio := math.Pow(float64(hi)/float64(lo), 1/float64(points-1))
	val := float64(lo)
	for i := 0; i < points; i++ {
		v := int(math.Round(val))
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
		val *= ratio
	}
	if out[len(out)-1] != hi {
		out = append(out, hi)
	}
	return out
}
