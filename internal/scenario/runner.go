package scenario

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"navaug/internal/augment"
	"navaug/internal/churn"
	"navaug/internal/dist"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

// Runner executes scenarios on one persistent sim.Engine, building each
// graph, its distance-field cache, and each prepared scheme instance exactly
// once and sharing them across every cell — of any scenario — that measures
// the same instance.  Cells run concurrently (bounded by Config.Parallel);
// artefacts are released as soon as the last cell referencing them
// completes, so a full-suite run never pins more graphs than the scenarios
// still in flight need.
type Runner struct {
	cfg    Config
	engine *sim.Engine

	graphs sync.Map // graph key -> *graphEntry
	insts  sync.Map // instance key -> *instEntry

	refMu     sync.Mutex
	graphRefs map[string]int
	instRefs  map[string]int

	progressMu sync.Mutex
	start      time.Time

	stats struct {
		graphsBuilt  atomic.Int64
		graphLookups atomic.Int64
		prepares     atomic.Int64
		instLookups  atomic.Int64
		cells        atomic.Int64
		trials       atomic.Int64
	}
}

// RunStats summarises the sharing a run achieved: how often a cell needed a
// graph or prepared scheme versus how often one actually had to be built.
type RunStats struct {
	GraphsBuilt  int64
	GraphLookups int64
	Prepares     int64
	InstLookups  int64
	Cells        int64
	Trials       int64
}

type graphEntry struct {
	once   sync.Once
	bg     *BuiltGraph
	fields *dist.FieldCache
	// source is the shared distance source the Oracle policy resolved for
	// this graph — an analytic metric or a 2-hop-cover oracle (nil when
	// the policy settled on per-target BFS fields); cells of this graph
	// steer by it instead of BFS fields when present.
	source dist.Source
	err    error
}

type instEntry struct {
	once sync.Once
	inst augment.Instance
	name string
	err  error
}

// NewRunner creates a runner (and its engine) for one configuration.
// Callers should Close it to release the worker pool.
func NewRunner(cfg Config) *Runner {
	cfg = cfg.WithDefaults()
	return &Runner{
		cfg:       cfg,
		engine:    sim.NewEngine(cfg.Workers),
		graphRefs: make(map[string]int),
		instRefs:  make(map[string]int),
		start:     time.Now(),
	}
}

// Close shuts the runner's engine down.
func (r *Runner) Close() { r.engine.Close() }

// Config returns the runner's (defaulted) configuration.
func (r *Runner) Config() Config { return r.cfg }

// Engine exposes the underlying engine for ad-hoc estimations that want to
// share the pool.
func (r *Runner) Engine() *sim.Engine { return r.engine }

// Stats returns the sharing counters accumulated so far.
func (r *Runner) Stats() RunStats {
	return RunStats{
		GraphsBuilt:  r.stats.graphsBuilt.Load(),
		GraphLookups: r.stats.graphLookups.Load(),
		Prepares:     r.stats.prepares.Load(),
		InstLookups:  r.stats.instLookups.Load(),
		Cells:        r.stats.cells.Load(),
		Trials:       r.stats.trials.Load(),
	}
}

// SpecResult is the outcome of one spec in a run.
type SpecResult struct {
	Spec   Spec
	Tables []*report.Table
	Err    error
}

// RunSpec executes a single spec.
func (r *Runner) RunSpec(spec Spec) ([]*report.Table, error) {
	res := r.RunAll([]Spec{spec})
	return res[0].Tables, res[0].Err
}

// RunAll executes the given specs, interleaving their cells on the shared
// engine, and returns per-spec results in the given order.  A failing spec
// reports its error without aborting the others.
func (r *Runner) RunAll(specs []Spec) []SpecResult {
	out := make([]SpecResult, len(specs))
	cells := make([][]Cell, len(specs))
	total := 0
	for i, spec := range specs {
		out[i].Spec = spec
		cs, err := spec.Cells(r.cfg)
		if err != nil {
			out[i].Err = fmt.Errorf("%s: enumerating cells: %w", spec.ID, err)
			continue
		}
		cells[i] = cs
		total += len(cs)
		r.retain(cs)
	}

	parallel := r.cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, parallel)
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := range specs {
		if out[i].Err != nil || cells[i] == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i].Tables, out[i].Err = r.runSpecCells(specs[i], cells[i], sem, &done, total)
		}(i)
	}
	wg.Wait()
	return out
}

// runSpecCells measures one spec's cells concurrently and renders them.
func (r *Runner) runSpecCells(spec Spec, cs []Cell, sem chan struct{}, done *atomic.Int64, total int) ([]*report.Table, error) {
	results := make([]CellResult, len(cs))
	errs := make([]error, len(cs))
	var wg sync.WaitGroup
	for idx := range cs {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cellStart := time.Now()
			est, aux, err := r.runCell(cs[idx])
			r.release(cs[idx])
			if err != nil {
				errs[idx] = err
				return
			}
			results[idx] = CellResult{Cell: cs[idx], Est: est, Aux: aux}
			r.progress(spec.ID, done.Add(1), int64(total), cs[idx], est, time.Since(cellStart))
		}(idx)
	}
	wg.Wait()
	// Report the first error in cell order so failures are deterministic.
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.ID, err)
		}
	}
	return spec.Render(r.cfg, results)
}

// runCell resolves the cell's graph and prepared scheme through the shared
// caches and runs the estimation on the engine.  The second return is the
// graph's auxiliary artefact (the *churn.Result for churned graphs),
// surfaced to renderers through CellResult.Aux.
func (r *Runner) runCell(cell Cell) (*sim.Estimate, any, error) {
	gkey := graphKey(cell.Graph)
	bg, fields, source, err := r.builtGraph(gkey, cell.Graph)
	if err != nil {
		return nil, nil, err
	}
	inst, name, err := r.prepared(gkey, cell, bg)
	if err != nil {
		return nil, nil, err
	}
	est, err := r.engine.EstimateInstance(bg.G, name, inst, r.cellSimConfig(gkey, cell, fields, source))
	if err != nil {
		return nil, nil, fmt.Errorf("%s/%s: %w", cell.Graph.Family, cell.Scheme.Key, err)
	}
	r.stats.cells.Add(1)
	r.stats.trials.Add(int64(est.Samples))
	return est, bg.Aux, nil
}

// cellSimConfig resolves the effective sampling budget of a cell: the cell's
// base pairs/trials, the Config overrides, and the precision target.  In
// adaptive mode the first batch is half the base trials (the target decides
// where between that floor and MaxTrials a pair actually stops).
func (r *Runner) cellSimConfig(gkey string, cell Cell, fields *dist.FieldCache, source dist.Source) sim.Config {
	pairs, trials := cell.Pairs, cell.Trials
	if r.cfg.Pairs > 0 {
		pairs = r.cfg.Pairs
	}
	if r.cfg.Trials > 0 {
		trials = r.cfg.Trials
	}
	if trials <= 0 {
		trials = 8
	}
	c := sim.Config{
		Pairs:               pairs,
		Trials:              trials,
		Seed:                r.cfg.Seed ^ hash64(gkey),
		FixedPairs:          cell.FixedPairs,
		IncludeExtremalPair: true,
		// A shared source (analytic metric or 2-hop oracle) replaces the
		// field cache entirely: O(1)-ish memory per distance query and no
		// per-target BFS.  Results are identical either way (every tier is
		// exact; see the disttest conformance suite).
		DistSource: source,
	}
	if source == nil {
		c.DistFields = fields
	}
	target := r.cfg.Precision
	if target == 0 {
		target = cell.Precision
	}
	if target > 0 {
		c.TargetCI = target
		c.Trials = (trials + 1) / 2
		if c.Trials < 2 {
			c.Trials = 2
		}
		c.MaxTrials = r.cfg.MaxTrials
		if c.MaxTrials <= 0 {
			c.MaxTrials = 8 * trials
		}
	}
	return c
}

func graphKey(ref GraphRef) string {
	k := ref.Family + "#" + strconv.Itoa(ref.N)
	if ref.Churn != nil {
		// The full churn spec — budget included — is part of the cache
		// identity: two cells differing only in repair budget measure
		// different oracles and must not share a pipeline.
		k += "|churn:" + ref.Churn.Key()
	}
	return k
}

func instKey(gkey string, ref SchemeRef) string {
	return gkey + "|" + ref.Key
}

// builtGraph returns the shared graph instance for a ref, building it at
// most once per run.  The builder RNG is derived from (seed, family, n)
// only, so the instance is identical no matter which cell arrives first.
func (r *Runner) builtGraph(gkey string, ref GraphRef) (*BuiltGraph, *dist.FieldCache, dist.Source, error) {
	r.stats.graphLookups.Add(1)
	v, _ := r.graphs.LoadOrStore(gkey, &graphEntry{})
	e := v.(*graphEntry)
	e.once.Do(func() {
		r.stats.graphsBuilt.Add(1)
		rng := xrand.New(GraphSeed(r.cfg.Seed, ref.Family, ref.N))
		bg, err := ref.Build(ref.N, rng)
		if err != nil {
			e.err = fmt.Errorf("building %s n=%d: %w", ref.Family, ref.N, err)
			return
		}
		if ref.Churn != nil {
			// Churn pipeline: the stream seed depends on the family, size and
			// StreamKey only — NOT the repair budget — so budget cells churn
			// identical edges.  The measured artefacts are the final compacted
			// graph, the repaired (possibly debt-carrying) oracle, and the
			// generation-stamped field cache; the base graph's analytic metric
			// no longer describes the churned edge set and is dropped.
			cseed := GraphSeed(r.cfg.Seed, "churn|"+ref.Family+"|"+ref.Churn.StreamKey(), ref.N)
			res, cerr := churn.Run(bg.G, cseed, *ref.Churn, r.cfg.Workers)
			if cerr != nil {
				e.err = fmt.Errorf("churning %s n=%d: %w", ref.Family, ref.N, cerr)
				return
			}
			e.bg = &BuiltGraph{G: res.Final, Aux: res}
			e.fields = res.Fields
			e.source = res.Oracle
			return
		}
		e.bg = bg
		// Bounded per-graph cache: pair sets are seeded per graph, so the
		// same handful of targets recurs across every scheme and scenario
		// measuring this instance.  Lazy — graphs routed through a shared
		// source never compute a field.
		e.fields = dist.NewFieldCache(bg.G, 64)
		// Resolve the distance tier once per graph under the run's Oracle
		// policy: analytic metric, 2-hop-cover oracle, or nil for fields.
		metric := bg.Metric
		if metric == nil {
			if m, ok := gen.MetricFor(bg.G); ok {
				metric = m
			}
		}
		oracleStart := time.Now()
		e.source = r.cfg.Oracle.ResolveWith(bg.G, metric, r.cfg.Workers)
		if th, ok := e.source.(*dist.TwoHop); ok {
			r.oracleProgress(ref, th, time.Since(oracleStart))
		}
	})
	return e.bg, e.fields, e.source, e.err
}

// oracleProgress reports a built 2-hop oracle's cost on the progress
// stream: the one-off label build time and the label-size statistics that
// dominate its memory footprint.  (Progress is stderr-only diagnostics;
// report tables stay byte-identical across oracle policies.)
func (r *Runner) oracleProgress(ref GraphRef, th *dist.TwoHop, took time.Duration) {
	if r.cfg.Progress == nil {
		return
	}
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	fmt.Fprintf(r.cfg.Progress, "[oracle %6.1fs] %s n=%d: 2-hop labels built in %.2fs (avg %.1f, max %d, %.1f MB)\n",
		time.Since(r.start).Seconds(), ref.Family, ref.N, took.Seconds(),
		th.AvgLabel(), th.MaxLabel(), float64(th.MemoryBytes())/1e6)
}

// prepared returns the shared prepared instance for (graph, scheme),
// preparing it at most once per run.
func (r *Runner) prepared(gkey string, cell Cell, bg *BuiltGraph) (augment.Instance, string, error) {
	r.stats.instLookups.Add(1)
	v, _ := r.insts.LoadOrStore(instKey(gkey, cell.Scheme), &instEntry{})
	e := v.(*instEntry)
	e.once.Do(func() {
		r.stats.prepares.Add(1)
		scheme, err := cell.Scheme.New(bg)
		if err != nil {
			e.err = fmt.Errorf("constructing scheme %s on %s: %w", cell.Scheme.Key, gkey, err)
			return
		}
		// Churned graphs route over the churn-maintained frozen contact
		// table: one draw over the pre-churn graph, then per-batch local
		// resampling of exactly the nodes the deltas dirtied.  The contacts
		// of clean nodes intentionally reflect the pre-churn distribution —
		// that residual mismatch is part of what churn cells measure.
		if res, ok := bg.Aux.(*churn.Result); ok {
			table, terr := churn.FrozenTable(res, scheme)
			if terr != nil {
				e.err = fmt.Errorf("freezing scheme %s on %s: %w", scheme.Name(), gkey, terr)
				return
			}
			e.inst = table
			e.name = scheme.Name()
			return
		}
		inst, err := scheme.Prepare(bg.G)
		if err != nil {
			e.err = fmt.Errorf("preparing scheme %s on %s: %w", scheme.Name(), gkey, err)
			return
		}
		e.inst = inst
		e.name = scheme.Name()
	})
	return e.inst, e.name, e.err
}

// retain records that each of the given cells will need its graph and
// prepared instance, so release can evict artefacts as soon as the last
// referencing cell finishes.
func (r *Runner) retain(cs []Cell) {
	r.refMu.Lock()
	defer r.refMu.Unlock()
	for _, c := range cs {
		gk := graphKey(c.Graph)
		r.graphRefs[gk]++
		r.instRefs[instKey(gk, c.Scheme)]++
	}
}

// release drops one reference from a finished cell and evicts cache entries
// nobody else will use, keeping a long multi-scenario run's memory bounded
// by the scenarios still in flight.
func (r *Runner) release(c Cell) {
	r.refMu.Lock()
	defer r.refMu.Unlock()
	gk := graphKey(c.Graph)
	ik := instKey(gk, c.Scheme)
	if r.instRefs[ik]--; r.instRefs[ik] <= 0 {
		delete(r.instRefs, ik)
		r.insts.Delete(ik)
	}
	if r.graphRefs[gk]--; r.graphRefs[gk] <= 0 {
		delete(r.graphRefs, gk)
		r.graphs.Delete(gk)
	}
}

// progress emits one line per completed cell to the configured writer.
func (r *Runner) progress(specID string, done, total int64, cell Cell, est *sim.Estimate, took time.Duration) {
	if r.cfg.Progress == nil {
		return
	}
	r.progressMu.Lock()
	defer r.progressMu.Unlock()
	fmt.Fprintf(r.cfg.Progress, "[%3d/%d %6.1fs] %s %s n=%d %s: gd=%.1f trials=%d in %.1fs\n",
		done, total, time.Since(r.start).Seconds(), specID,
		cell.Graph.Family, est.N, est.Scheme, est.GreedyDiameter, est.Samples, took.Seconds())
}
