package scenario

import (
	"fmt"

	"navaug/internal/graph"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/stats"
	"navaug/internal/xrand"
)

// Family is a named graph family for sweep specs.
type Family struct {
	Name  string
	Build func(n int, rng *xrand.RNG) (*BuiltGraph, error)
}

// GraphFamily wraps a plain graph builder into a Family.
func GraphFamily(name string, build func(n int, rng *xrand.RNG) (*graph.Graph, error)) Family {
	return Family{Name: name, Build: func(n int, rng *xrand.RNG) (*BuiltGraph, error) {
		g, err := build(n, rng)
		if err != nil {
			return nil, err
		}
		return &BuiltGraph{G: g}, nil
	}}
}

// Ref returns the GraphRef of this family at one size.
func (f Family) Ref(n int) GraphRef {
	return GraphRef{Family: f.Name, N: n, Build: f.Build}
}

// Column is a derived detail-table column computed from a measured cell.
type Column struct {
	Name  string
	Value func(res CellResult) any
}

// Sweep is the declarative core shape shared by most experiments: measure
// every scheme on every family at every size, tabulate the estimates with
// optional derived columns, and fit a power law per (family, scheme).
// Cells are enumerated family-major, then scheme, then size, which is also
// the detail-table row order.
type Sweep struct {
	ID, Title, Claim string
	Families         []Family
	// Sizes are the base sweep sizes, scaled by Config.Scale at run time.
	Sizes   []int
	Schemes []SchemeRef
	// Pairs and Trials are the per-cell base budget.
	Pairs, Trials int
	// CellFilter, when non-nil, keeps only the (family, scheme, size)
	// combinations it returns true for; n is the scaled size.  Sweeps use
	// it to cap individual families or schemes below the full size range
	// (e.g. E12 stops expander-like families where 2-hop labels grow
	// ~sqrt(n) while tree-like families continue to n = 2^20).  A group
	// left with fewer than two sizes simply gets no fit-table row.
	CellFilter func(family, schemeKey string, n int) bool
	// Precision is the cells' default adaptive CI target (0 = fixed budget
	// unless the Config sets one).
	Precision float64
	// DetailTitle titles the measurement table; Columns appends derived
	// columns to its standard ones.
	DetailTitle string
	Columns     []Column
	// FitTitle, when non-empty, adds a power-law fit table (one row per
	// family × scheme) with FitNote as its footnote.
	FitTitle string
	FitNote  string
	// Finalize, when non-nil, may post-process the rendered tables (e.g.
	// append a note computed over all results).
	Finalize func(res []CellResult, tables []*report.Table)
}

// Spec compiles the sweep into a runnable Spec.
func (s Sweep) Spec() Spec {
	return Spec{
		ID:    s.ID,
		Title: s.Title,
		Claim: s.Claim,
		CellsFn: func(cfg Config) ([]Cell, error) {
			sizes := cfg.ScaleSizes(s.Sizes...)
			cells := make([]Cell, 0, len(s.Families)*len(s.Schemes)*len(sizes))
			for _, fam := range s.Families {
				for _, scheme := range s.Schemes {
					for _, n := range sizes {
						if s.CellFilter != nil && !s.CellFilter(fam.Name, scheme.Key, n) {
							continue
						}
						cells = append(cells, Cell{
							Graph:     fam.Ref(n),
							Scheme:    scheme,
							Pairs:     s.Pairs,
							Trials:    s.Trials,
							Precision: s.Precision,
						})
					}
				}
			}
			return cells, nil
		},
		RenderFn: func(cfg Config, res []CellResult) ([]*report.Table, error) {
			return s.render(res)
		},
	}
}

// render builds the detail table (standard columns plus derived ones) and,
// when requested, the per-(family, scheme) power-law fit table.
func (s Sweep) render(res []CellResult) ([]*report.Table, error) {
	cols := []string{"family", "n", "scheme", "greedy_diam", "mean_steps", "ci95", "trials"}
	for _, c := range s.Columns {
		cols = append(cols, c.Name)
	}
	detail := report.NewTable(s.DetailTitle, cols...)
	for _, r := range res {
		row := []any{r.Cell.Graph.Family, r.Est.N, r.Est.Scheme,
			r.Est.GreedyDiameter, r.Est.MeanSteps, r.Est.CI95, r.Est.Samples}
		for _, c := range s.Columns {
			row = append(row, c.Value(r))
		}
		detail.AddRow(row...)
	}
	tables := []*report.Table{detail}

	if s.FitTitle != "" {
		fits := report.NewTable(s.FitTitle, "family", "scheme", "exponent", "R2", "points")
		// res is family-major then scheme then size, so each (family, scheme)
		// group is a contiguous run of cells — of variable length once a
		// CellFilter has dropped sizes, hence the key-change boundary scan.
		group := 0
		for group < len(res) {
			famKey, schemeKey := res[group].Cell.Graph.Family, res[group].Cell.Scheme.Key
			var xs, ys []float64
			end := group
			for end < len(res) && res[end].Cell.Graph.Family == famKey && res[end].Cell.Scheme.Key == schemeKey {
				xs = append(xs, float64(res[end].Est.N))
				ys = append(ys, res[end].Est.GreedyDiameter)
				end++
			}
			// A group collapsed to one point — extreme Config.Scale values,
			// or a CellFilter cap falling below the second size — has no
			// fittable shape; skip its row rather than failing the whole
			// spec after every cell has already been measured.
			if len(xs) >= 2 {
				fit, err := stats.PowerLaw(xs, ys)
				if err != nil {
					return nil, fmt.Errorf("%s: fitting %s/%s: %w", s.ID, famKey, schemeKey, err)
				}
				fits.AddRow(famKey, res[group].Est.Scheme, fit.Exponent, fit.R2, fit.N)
			}
			group = end
		}
		if len(fits.Rows) > 0 {
			if s.FitNote != "" {
				fits.AddNote("%s", s.FitNote)
			}
			tables = append(tables, fits)
		}
	}
	if s.Finalize != nil {
		s.Finalize(res, tables)
	}
	return tables, nil
}

// FitFor extracts the fitted power law of one (family, scheme) group from
// sweep results — a convenience for Finalize hooks and tests.
func FitFor(res []CellResult, family, schemeKey string) (stats.PowerFit, error) {
	var xs, ys []float64
	for _, r := range res {
		if r.Cell.Graph.Family == family && r.Cell.Scheme.Key == schemeKey {
			xs = append(xs, float64(r.Est.N))
			ys = append(ys, r.Est.GreedyDiameter)
		}
	}
	return stats.PowerLaw(xs, ys)
}

// EstimateOf finds the estimate of one (family, n, scheme) cell in sweep
// results, or nil.
func EstimateOf(res []CellResult, family string, n int, schemeKey string) *sim.Estimate {
	for _, r := range res {
		if r.Cell.Graph.Family == family && r.Cell.Graph.N == n && r.Cell.Scheme.Key == schemeKey {
			return r.Est
		}
	}
	return nil
}
