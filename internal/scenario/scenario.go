// Package scenario is the declarative experiment layer of the repository.
//
// A Spec describes one scenario — which graphs to build (family × sizes),
// which augmentation schemes to measure on them, how precisely, and how to
// render the measurements into report tables.  Specs are registered in a
// process-wide registry (the paper experiments E1..E10 and the E11 large-n
// mode live in internal/experiments) and executed by a Runner, which shares
// every expensive artefact — built graphs, analytic distance metrics or
// per-target distance fields, prepared scheme instances — across all cells
// of all scenarios that measure the same instance, and runs cells
// concurrently on one persistent sim.Engine.
//
// Determinism contract: for a fixed Config (seed, scale, precision, pair and
// trial overrides) the produced tables are byte-identical regardless of
// Config.Workers, Config.Parallel, or how cell execution interleaves.
// Every random choice is derived from the seed plus stable identifiers
// (family name, size, pair index), never from scheduling.
package scenario

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"navaug/internal/augment"
	"navaug/internal/churn"
	"navaug/internal/dist"
	"navaug/internal/graph"
	"navaug/internal/report"
	"navaug/internal/sim"
	"navaug/internal/xrand"
)

// Config controls how heavy a scenario run is.
type Config struct {
	// Seed drives every random choice; equal seeds give equal tables.
	Seed uint64
	// Scale multiplies the spec sweep sizes; 1.0 reproduces the numbers
	// recorded in EXPERIMENTS.md, smaller values give quicker smoke runs.
	Scale float64
	// Workers is the sim.Engine worker-pool size (0 = GOMAXPROCS).
	// It never affects results.
	Workers int
	// Parallel bounds how many scenario cells run concurrently
	// (0 = GOMAXPROCS).  It never affects results.
	Parallel int
	// Pairs and Trials override the per-cell defaults when positive.
	Pairs  int
	Trials int
	// Precision, when positive, switches estimation to the streaming
	// adaptive mode: each pair keeps running trial batches until the 95% CI
	// half-width of its mean step count is at most Precision·max(1, mean)
	// or the MaxTrials cap.  When negative, adaptive mode is disabled even
	// for cells that declare their own precision target.
	Precision float64
	// MaxTrials caps the per-pair budget in adaptive mode
	// (default 8× the cell's base trials).
	MaxTrials int
	// Oracle picks the distance-source tier cells steer by: auto (analytic
	// metric, else a 2-hop-cover oracle above dist.TwoHopAutoMinNodes with
	// a bounded label budget, else BFS fields), analytic, twohop or field.
	// Estimates are identical under every policy (all tiers are exact and
	// pinned to BFS by the disttest conformance suite), so the policy only
	// trades build time, query time and memory — the CI determinism smoke
	// compares the tiers byte-for-byte.  Empty means PolicyAuto.
	Oracle dist.SourcePolicy
	// NoAnalytic forces BFS-field-backed distances regardless of Oracle
	// (it predates the Oracle knob and is kept as the CLI cross-check
	// toggle; it is exactly Oracle = PolicyField).
	NoAnalytic bool
	// Progress, when non-nil, receives one line per completed cell.
	Progress io.Writer
}

// DefaultConfig is the configuration used for EXPERIMENTS.md.
func DefaultConfig() Config {
	return Config{Seed: 20070610, Scale: 1.0}
}

// WithDefaults fills the zero fields that have non-zero defaults.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = DefaultConfig().Seed
	}
	if c.Oracle == "" {
		c.Oracle = dist.PolicyAuto
	}
	if c.NoAnalytic {
		c.Oracle = dist.PolicyField
	}
	return c
}

// ScaleSizes multiplies the base sweep sizes by the config scale, keeping
// them at least 64 and strictly increasing.
func (c Config) ScaleSizes(base ...int) []int {
	c = c.WithDefaults()
	out := make([]int, 0, len(base))
	for _, n := range base {
		v := int(float64(n) * c.Scale)
		if v < 64 {
			v = 64
		}
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// BuiltGraph is a constructed graph plus whatever auxiliary artefact its
// builder wants to hand to scheme constructors (e.g. the interval model a
// random interval graph was drawn from).
type BuiltGraph struct {
	G   *graph.Graph
	Aux any
	// Metric, when non-nil, is the graph's closed-form analytic distance
	// metric (dist.Source).  The runner then routes this graph's cells
	// through it instead of BFS distance fields — O(1) memory per query,
	// which is what the large-n mode (E11) relies on.  Builders may leave
	// it nil; the runner falls back to gen.MetricFor for graphs whose
	// generator stamped a recognised family name.
	Metric dist.Source
}

// GraphRef names one graph instance declaratively.  (Family, N) is the
// cache identity: two cells — in the same or different scenarios — that
// reference the same (Family, N) share one built graph, one distance-field
// cache, and one prepared instance per scheme.  Build receives an RNG
// derived from the run seed, Family and N only, so the instance is the same
// no matter which cell builds it first.
type GraphRef struct {
	Family string
	N      int
	Build  func(n int, rng *xrand.RNG) (*BuiltGraph, error)
	// Churn, when non-nil, runs the built graph through a churn pipeline
	// (internal/churn) before any cell measures it: the cell then routes on
	// the churned (final) graph, steered by the incrementally repaired
	// DynTwoHop oracle — whose budget-bounded staleness is part of what the
	// cell measures.  The churn spec (budget included) joins the cache
	// identity, so cells differing only in budget get separate pipelines,
	// while the delta stream itself is seeded from Spec.StreamKey and is
	// therefore identical across budgets.  The churn.Result is handed to the
	// spec's renderer via CellResult.Aux.
	Churn *churn.Spec
}

// SchemeRef names one augmentation scheme declaratively.  Key is the cache
// identity within a graph instance; New may inspect the built graph (for
// schemes bound to a per-instance artefact such as a clique-path
// decomposition).
type SchemeRef struct {
	Key string
	New func(bg *BuiltGraph) (augment.Scheme, error)
}

// Scheme wraps an already-constructed scheme into a SchemeRef keyed by its
// name.
func Scheme(s augment.Scheme) SchemeRef {
	return SchemeRef{Key: s.Name(), New: func(*BuiltGraph) (augment.Scheme, error) { return s, nil }}
}

// Cell is one measurement request: estimate the greedy diameter of one
// scheme on one graph instance with the given sampling budget.
type Cell struct {
	Graph  GraphRef
	Scheme SchemeRef
	// Pairs and Trials are the cell's base budget (subject to the Config
	// overrides; zero falls back to the sim defaults).
	Pairs  int
	Trials int
	// Precision is the cell's own adaptive CI target, used when the Config
	// does not set one.
	Precision float64
	// FixedPairs, when non-empty, replaces pair sampling (e.g. the
	// adversarial pair of the Theorem 1 construction).
	FixedPairs []sim.Pair
	// Tag and Data are opaque annotations carried through to the CellResult
	// for the spec's Render function.
	Tag  string
	Data any
}

// CellResult pairs a cell with its estimate.  Aux carries the graph's
// auxiliary pipeline artefact when one exists — for churned graphs the
// *churn.Result, so renderers can report repair debt and connectivity next
// to the routing estimates.
type CellResult struct {
	Cell Cell
	Est  *sim.Estimate
	Aux  any
}

// Spec is one registered scenario: an identifier, the cells to measure, and
// the rendering of their results into tables.
type Spec struct {
	// ID is the short identifier used by the CLI and benchmarks (e.g. "E7").
	ID string
	// Title is a one-line description.
	Title string
	// Claim states the paper result being reproduced and the expected shape.
	Claim string
	// CellsFn enumerates the measurement cells for a config.  The runner
	// calls it once per run; the returned order is the order CellResults are
	// handed to RenderFn.
	CellsFn func(cfg Config) ([]Cell, error)
	// RenderFn turns the measured cells into report tables.
	RenderFn func(cfg Config, res []CellResult) ([]*report.Table, error)
}

// Cells enumerates the spec's measurement cells.
func (s Spec) Cells(cfg Config) ([]Cell, error) {
	if s.CellsFn == nil {
		return nil, fmt.Errorf("scenario: spec %s has no cells", s.ID)
	}
	return s.CellsFn(cfg)
}

// Render turns measured cells into tables.
func (s Spec) Render(cfg Config, res []CellResult) ([]*report.Table, error) {
	if s.RenderFn == nil {
		return nil, fmt.Errorf("scenario: spec %s has no renderer", s.ID)
	}
	return s.RenderFn(cfg, res)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

var registry = struct {
	mu    sync.Mutex
	specs []Spec
	byID  map[string]Spec
}{byID: make(map[string]Spec)}

// Register adds a spec to the process-wide registry.  It panics on an empty
// or duplicate ID — registration happens from init functions, where a panic
// is the loudest available diagnostic.
func Register(s Spec) {
	if s.ID == "" || s.Title == "" || s.CellsFn == nil || s.RenderFn == nil {
		panic(fmt.Sprintf("scenario: incomplete spec %+v", s.ID))
	}
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byID[s.ID]; dup {
		panic(fmt.Sprintf("scenario: duplicate spec id %q", s.ID))
	}
	registry.byID[s.ID] = s
	registry.specs = append(registry.specs, s)
}

// All returns the registered specs in registration order.
func All() []Spec {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	return append([]Spec(nil), registry.specs...)
}

// ByID returns the spec with the given (case-sensitive) identifier.
func ByID(id string) (Spec, bool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	s, ok := registry.byID[id]
	return s, ok
}

// IDs returns the sorted registered identifiers.
func IDs() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	ids := make([]string, 0, len(registry.specs))
	for _, s := range registry.specs {
		ids = append(ids, s.ID)
	}
	sort.Strings(ids)
	return ids
}

// hash64 produces a stable FNV-1a hash for deriving per-family seeds.
func hash64(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Hash64 exposes the stable string hash used for seed derivation, for specs
// that need their own seed streams (e.g. per-(n, matrix) labelings).
func Hash64(s string) uint64 { return hash64(s) }

// GraphSeed derives the deterministic builder seed a run with the given
// run seed uses for the (family, n) graph instance.  It is exported so
// out-of-band builders — the snapshot writer in particular — construct the
// exact instance a live run at that seed would build: a snapshot of
// (family, n, seed) then answers for the same graph the scenario engine
// measures.
func GraphSeed(seed uint64, family string, n int) uint64 {
	return seed ^ hash64(family) ^ (uint64(n)+1)*0x9e3779b97f4a7c15
}
