package scenario

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"

	"navaug/internal/augment"
	"navaug/internal/graph"
	"navaug/internal/graph/gen"
	"navaug/internal/report"
	"navaug/internal/xrand"
)

// testSweep builds a small two-family, two-scheme sweep whose graph builds
// are counted through the passed counter.
func testSweep(id string, builds *atomic.Int64) Spec {
	fam := func(name string) Family {
		return GraphFamily(name, func(n int, rng *xrand.RNG) (*graph.Graph, error) {
			if builds != nil {
				builds.Add(1)
			}
			if name == "cycle" {
				return gen.Cycle(n), nil
			}
			return gen.Path(n), nil
		})
	}
	return Sweep{
		ID:          id,
		Title:       "test sweep " + id,
		Claim:       "testing only",
		Families:    []Family{fam("path"), fam("cycle")},
		Sizes:       []int{3200, 6400},
		Schemes:     []SchemeRef{Scheme(augment.NewUniformScheme()), Scheme(augment.NewNoAugmentation())},
		Pairs:       3,
		Trials:      2,
		DetailTitle: id + ": detail",
		FitTitle:    id + ": fits",
	}.Spec()
}

func TestConfigScaleSizes(t *testing.T) {
	sizes := Config{Scale: 0.01}.ScaleSizes(1000, 2000, 4000)
	if len(sizes) == 0 {
		t.Fatal("no sizes")
	}
	for i, n := range sizes {
		if n < 64 {
			t.Fatalf("size %d below floor", n)
		}
		if i > 0 && sizes[i] <= sizes[i-1] {
			t.Fatal("sizes not strictly increasing")
		}
	}
	c := Config{}.WithDefaults()
	if c.Scale != 1.0 || c.Seed == 0 {
		t.Fatalf("defaults %+v", c)
	}
}

func TestHash64Stable(t *testing.T) {
	if Hash64("path") != Hash64("path") {
		t.Fatal("hash unstable")
	}
	if Hash64("path") == Hash64("grid") {
		t.Fatal("distinct strings collide (unlucky but fix the seed)")
	}
}

func TestRunnerSharesGraphsAndInstances(t *testing.T) {
	var builds atomic.Int64
	// Two specs over the same families and sizes: every graph must be built
	// once, not once per spec, and the uniform scheme prepared once per
	// graph instance.
	specA := testSweep("SA", &builds)
	specB := testSweep("SB", &builds)
	runner := NewRunner(Config{Seed: 5, Scale: 0.05, Parallel: 4, Workers: 2})
	defer runner.Close()
	results := runner.RunAll([]Spec{specA, specB})
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if len(r.Tables) != 2 {
			t.Fatalf("%s: %d tables", r.Spec.ID, len(r.Tables))
		}
	}
	if got := builds.Load(); got != 4 {
		t.Fatalf("expected 4 graph builds (2 families x 2 sizes, shared by both specs), got %d", got)
	}
	stats := runner.Stats()
	if stats.GraphsBuilt != 4 || stats.GraphLookups != 16 {
		t.Fatalf("sharing counters off: %+v", stats)
	}
	if stats.Prepares != 8 || stats.InstLookups != 16 {
		t.Fatalf("prepare sharing counters off: %+v", stats)
	}
	if stats.Cells != 16 || stats.Trials == 0 {
		t.Fatalf("cell counters off: %+v", stats)
	}
}

func TestRunnerReleasesArtefacts(t *testing.T) {
	runner := NewRunner(Config{Seed: 5, Scale: 0.05, Parallel: 2})
	defer runner.Close()
	if _, err := runner.RunSpec(testSweep("SR", nil)); err != nil {
		t.Fatal(err)
	}
	left := 0
	runner.graphs.Range(func(any, any) bool { left++; return true })
	runner.insts.Range(func(any, any) bool { left++; return true })
	if left != 0 {
		t.Fatalf("%d cached artefacts survived the run", left)
	}
}

// renderAll renders a run's tables to one deterministic byte stream.
func renderAll(t *testing.T, results []SpecResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		for _, tbl := range r.Tables {
			if err := tbl.Render(&buf, "csv"); err != nil {
				t.Fatal(err)
			}
		}
	}
	return buf.Bytes()
}

func TestRunDeterministicAcrossWorkersAndParallelism(t *testing.T) {
	specs := func() []Spec { return []Spec{testSweep("SD", nil), testSweep("SE", nil)} }
	run := func(workers, parallel int, precision float64) []byte {
		runner := NewRunner(Config{Seed: 11, Scale: 0.05, Workers: workers, Parallel: parallel, Precision: precision})
		defer runner.Close()
		return renderAll(t, runner.RunAll(specs()))
	}
	for _, precision := range []float64{0, 0.1} {
		serial := run(1, 1, precision)
		concurrent := run(4, 8, precision)
		if !bytes.Equal(serial, concurrent) {
			t.Fatalf("precision %v: output depends on workers/parallelism:\n%s\nvs\n%s",
				precision, serial, concurrent)
		}
	}
}

func TestAdaptivePrecisionUsesFewerTrialsThanFixed(t *testing.T) {
	// A sweep with a generous fixed budget, the regime the experiment suite
	// runs in: the paper sweeps hand every pair the worst-case budget, while
	// adaptive mode lets low-variance pairs stop at half of it.
	spec := Sweep{
		ID: "SF", Title: "adaptive test", Claim: "testing only",
		Families: []Family{GraphFamily("path", func(n int, _ *xrand.RNG) (*graph.Graph, error) {
			return gen.Path(n), nil
		})},
		Sizes:       []int{3200, 6400},
		Schemes:     []SchemeRef{Scheme(augment.NewUniformScheme()), Scheme(augment.NewNoAugmentation())},
		Pairs:       4,
		Trials:      12,
		DetailTitle: "SF: detail",
	}.Spec()
	run := func(precision float64) RunStats {
		runner := NewRunner(Config{Seed: 3, Scale: 0.2, Precision: precision})
		defer runner.Close()
		results := runner.RunAll([]Spec{spec})
		for _, r := range results {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
		return runner.Stats()
	}
	fixed := run(0)
	// The no-augmentation cells are deterministic walks and the uniform
	// cells on small paths converge quickly, so a loose target must spend
	// fewer trials than the fixed budget overall.
	adaptive := run(0.4)
	if adaptive.Trials >= fixed.Trials {
		t.Fatalf("adaptive (%d trials) did not beat the fixed budget (%d trials)",
			adaptive.Trials, fixed.Trials)
	}
}

func TestRunnerPropagatesCellErrors(t *testing.T) {
	spec := Spec{
		ID: "SBAD", Title: "bad", Claim: "bad",
		CellsFn: func(cfg Config) ([]Cell, error) {
			return []Cell{{
				Graph: GraphRef{Family: "broken", N: 64, Build: func(int, *xrand.RNG) (*BuiltGraph, error) {
					return nil, fmt.Errorf("boom")
				}},
				Scheme: Scheme(augment.NewUniformScheme()),
			}}, nil
		},
		RenderFn: func(cfg Config, res []CellResult) ([]*report.Table, error) {
			t.Fatal("render must not run after a cell error")
			return nil, nil
		},
	}
	runner := NewRunner(Config{Seed: 1})
	defer runner.Close()
	if _, err := runner.RunSpec(spec); err == nil {
		t.Fatal("cell error not propagated")
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	spec := testSweep("SDUP", nil)
	Register(spec)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(spec)
}

func TestProgressOutput(t *testing.T) {
	var buf bytes.Buffer
	runner := NewRunner(Config{Seed: 2, Scale: 0.05, Progress: &buf})
	defer runner.Close()
	if _, err := runner.RunSpec(testSweep("SP", nil)); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("no progress emitted")
	}
	if !bytes.Contains(buf.Bytes(), []byte("SP")) {
		t.Fatalf("progress lines carry no spec id: %s", buf.String())
	}
}

// TestSweepCellFilterSinglePointGroupSkipsFit pins the graceful-degradation
// contract of filtered sweeps: a (family, scheme) group reduced to one size
// — a CellFilter cap falling below the second scaled size, or an extreme
// Config.Scale — gets no fit row instead of failing the whole spec after
// every cell has been measured.
func TestSweepCellFilterSinglePointGroupSkipsFit(t *testing.T) {
	spec := Sweep{
		ID:       "FILT",
		Title:    "filtered sweep",
		Claim:    "testing only",
		Families: []Family{GraphFamily("path", func(n int, _ *xrand.RNG) (*graph.Graph, error) { return gen.Path(n), nil })},
		Sizes:    []int{3200, 6400},
		Schemes:  []SchemeRef{Scheme(augment.NewUniformScheme()), Scheme(augment.NewNoAugmentation())},
		Pairs:    2,
		Trials:   1,
		// Keep both sizes for uniform but only the first for none.
		CellFilter: func(_, schemeKey string, n int) bool {
			return schemeKey == "uniform" || n <= 64
		},
		DetailTitle: "FILT: detail",
		FitTitle:    "FILT: fits",
	}.Spec()
	r := NewRunner(Config{Seed: 5, Scale: 0.02, Workers: 2})
	defer r.Close()
	tables, err := r.RunSpec(spec)
	if err != nil {
		t.Fatalf("filtered sweep failed: %v", err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want detail + fits", len(tables))
	}
	if rows := len(tables[0].Rows); rows != 3 {
		t.Fatalf("detail has %d rows, want 3 (2 uniform sizes + 1 filtered none size)", rows)
	}
	if rows := len(tables[1].Rows); rows != 1 {
		t.Fatalf("fit table has %d rows, want 1 (the single-point group is skipped)", rows)
	}
}
