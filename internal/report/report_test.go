package report

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("sample", "n", "scheme", "steps")
	t.AddRow(100, "uniform", 12.345678)
	t.AddRow(10000, "ball", 45.6)
	t.AddNote("seed %d", 7)
	return t
}

func TestCellFormatting(t *testing.T) {
	if Cell(12.3456) != "12.3" {
		t.Fatalf("Cell(12.3456) = %q", Cell(12.3456))
	}
	if Cell(1.23456) != "1.235" {
		t.Fatalf("Cell(1.23456) = %q", Cell(1.23456))
	}
	if Cell(12345.6) != "12346" {
		t.Fatalf("Cell(12345.6) = %q", Cell(12345.6))
	}
	if Cell(0.0) != "0" {
		t.Fatalf("Cell(0) = %q", Cell(0.0))
	}
	if Cell("x") != "x" || Cell(42) != "42" {
		t.Fatal("string/int formatting")
	}
	if Cell(float32(2.5)) != "2.500" {
		t.Fatalf("float32 cell %q", Cell(float32(2.5)))
	}
}

func TestRenderText(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== sample ==", "n", "scheme", "steps", "uniform", "ball", "note: seed 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns must be aligned: every data line must be at least as long as
	// the header line's column start positions.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 5 {
		t.Fatalf("unexpected line count %d", len(lines))
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv has %d lines, want 3", len(lines))
	}
	if lines[0] != "n,scheme,steps" {
		t.Fatalf("csv header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "100,uniform,") {
		t.Fatalf("csv row %q", lines[1])
	}
}

func TestRenderMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### sample") {
		t.Fatal("markdown missing title")
	}
	if !strings.Contains(out, "| n | scheme | steps |") {
		t.Fatalf("markdown missing header: %s", out)
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Fatal("markdown missing separator")
	}
	if !strings.Contains(out, "*seed 7*") {
		t.Fatal("markdown missing note")
	}
}

func TestRenderDispatch(t *testing.T) {
	var buf bytes.Buffer
	tbl := sampleTable()
	for _, f := range []string{"", "text", "csv", "markdown", "md"} {
		buf.Reset()
		if err := tbl.Render(&buf, f); err != nil {
			t.Fatalf("format %q: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("format %q produced no output", f)
		}
	}
	if err := tbl.Render(&buf, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := NewTable("", "a")
	var buf bytes.Buffer
	if err := tbl.RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "==") {
		t.Fatal("untitled table should not print a title banner")
	}
}

func TestRowsShorterThanColumns(t *testing.T) {
	tbl := NewTable("t", "a", "b", "c")
	tbl.Rows = append(tbl.Rows, []string{"only-one"})
	var buf bytes.Buffer
	if err := tbl.RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "only-one") {
		t.Fatal("short row lost")
	}
}
