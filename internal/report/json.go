// JSON rendering: a whole run — manifest plus per-experiment tables — as one
// machine-readable document.
//
// Determinism contract: the JSON produced for a given (seed, scale,
// precision, pairs/trials overrides, experiment selection) is byte
// identical on every run, at any worker or parallelism setting.  That is
// why the Manifest records only result-determining configuration — worker
// counts and scenario parallelism affect wall-clock, never results, and
// deliberately stay out of the document.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// FormatVersion identifies the JSON document layout.
const FormatVersion = 1

// Manifest records the result-determining configuration of a run.
type Manifest struct {
	Tool           string   `json:"tool"`
	FormatVersion  int      `json:"format_version"`
	Seed           uint64   `json:"seed"`
	Scale          float64  `json:"scale"`
	Precision      float64  `json:"precision,omitempty"`
	PairsOverride  int      `json:"pairs_override,omitempty"`
	TrialsOverride int      `json:"trials_override,omitempty"`
	MaxTrials      int      `json:"max_trials,omitempty"`
	Experiments    []string `json:"experiments"`
}

// ExperimentResult is one experiment's identity and tables.
type ExperimentResult struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Claim  string   `json:"claim"`
	Error  string   `json:"error,omitempty"`
	Tables []*Table `json:"tables,omitempty"`
}

// Report is a whole run: the manifest plus every experiment's tables.
type Report struct {
	Manifest    Manifest           `json:"manifest"`
	Experiments []ExperimentResult `json:"experiments"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	return enc.Encode(r)
}

// Render writes the report in the requested format: "json" emits the whole
// document; the table formats ("text", "csv", "markdown"/"md") emit each
// experiment's header followed by its tables.
func (r *Report) Render(w io.Writer, format string) error {
	if strings.ToLower(format) == "json" {
		return r.WriteJSON(w)
	}
	for _, e := range r.Experiments {
		if e.Error != "" {
			return fmt.Errorf("%s: %s", e.ID, e.Error)
		}
		if _, err := fmt.Fprintf(w, "\n#### %s — %s\nclaim: %s\n\n", e.ID, e.Title, e.Claim); err != nil {
			return err
		}
		for _, t := range e.Tables {
			if err := t.Render(w, format); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
